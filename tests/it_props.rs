//! Cross-crate property tests: determinism of the whole world, matcher /
//! server parse agreements, and wire fidelity of live traffic.
//!
//! The drawn-input properties run on the `lucent-check` harness with its
//! shared `packets` generators, so a failure reports a shrunk,
//! replayable choice tape; the two whole-world tests are deterministic
//! fixtures and need no harness.

use lucent_check::{check, packets, Config, Source};

use lucent_core::lab::{Lab, FETCH_TIMEOUT_MS};
use lucent_middlebox::HostMatcher;
use lucent_packet::http::{HttpRequest, RequestBuilder, RequestParseMode};
use lucent_packet::Packet;
use lucent_topology::{India, IndiaConfig, IspId};

#[test]
fn world_build_and_first_fetch_are_deterministic() {
    let run = || {
        let mut lab = Lab::new(India::build(IndiaConfig::tiny()));
        lab.india.net.trace().enable_all();
        let site = lab.india.corpus.pbw[0];
        let domain = lab.india.corpus.site(site).domain.clone();
        let Some(&ip) = lab.india.corpus.site(site).replicas.first() else {
            return (String::new(), 0);
        };
        let client = lab.client_of(IspId::Airtel);
        let _ = lab.http_get(client, ip, &domain, FETCH_TIMEOUT_MS);
        (lab.india.net.trace().transcript(), lab.india.net.events_processed())
    };
    let (t1, e1) = run();
    let (t2, e2) = run();
    assert_eq!(e1, e2, "event counts diverge");
    assert_eq!(t1, t2, "packet traces diverge");
}

/// Whatever a middlebox matcher extracts from a *canonical* browser
/// request, the RFC server parse agrees with — the arms race only
/// exists for non-canonical requests.
#[test]
fn matchers_and_server_agree_on_canonical_requests() {
    check(&Config::cases(64), |s: &mut Source| {
        let host = packets::host_name(s);
        let path = packets::url_path(s);
        let bytes = RequestBuilder::browser(&host, &path).build();
        let (req, _) = HttpRequest::parse(&bytes, RequestParseMode::Rfc).unwrap();
        let server_view = req.host().map(|h| h.to_ascii_lowercase());
        for matcher in [HostMatcher::ExactToken, HostMatcher::StrictPattern, HostMatcher::LastHost]
        {
            assert_eq!(matcher.extract(&bytes), server_view.clone(), "{matcher:?}");
        }
    });
}

/// Fudged whitespace variants are always served identically by the
/// RFC parser regardless of what the matchers think.
#[test]
fn rfc_server_parse_is_whitespace_invariant() {
    check(&Config::cases(64), |s: &mut Source| {
        let host = packets::host_name(s);
        let lead = *s.pick(&[" ", "  ", "\t", " \t"]);
        let trail = *s.pick(&["", " ", "\t", "  "]);
        let canonical = RequestBuilder::get("/").header("Host", &host).build();
        let fudged =
            RequestBuilder::get("/").raw_line(&format!("Host:{lead}{host}{trail}")).build();
        let (a, _) = HttpRequest::parse(&canonical, RequestParseMode::Rfc).unwrap();
        let (b, _) = HttpRequest::parse(&fudged, RequestParseMode::Rfc).unwrap();
        assert_eq!(a.host(), b.host());
    });
}

#[test]
fn live_traffic_survives_wire_roundtrip() {
    // Capture a real censored exchange and serialize every packet to
    // octets and back: the structured fast path hides nothing.
    let mut lab = Lab::new(India::build(IndiaConfig::tiny()));
    lab.india.net.trace().enable_all();
    let site = lab.india.truth.http_master[&IspId::Idea]
        .iter()
        .copied()
        .find(|&s| lab.india.corpus.site(s).is_alive())
        .unwrap();
    let domain = lab.india.corpus.site(site).domain.clone();
    let ip = lab.india.corpus.site(site).replicas[0];
    let client = lab.client_of(IspId::Idea);
    let _ = lab.http_get(client, ip, &domain, FETCH_TIMEOUT_MS);
    let entries = lab.india.net.trace().entries();
    assert!(entries.len() > 20, "expected a full exchange, got {}", entries.len());
    for e in entries {
        let wire = e.packet.emit();
        let parsed = Packet::parse(&wire).expect("roundtrip");
        assert_eq!(parsed, e.packet);
    }
}
