//! Integration tests for the `lucent-check` campaign: the §5
//! header-permutation invariant exercised against the *real* India
//! topology (not the synthetic rig), and byte-identical campaign
//! transcripts across runs and thread counts — the property behind the
//! `fuzz-smoke` CI gate.

use lucent_check::invariants::permuted_request;
use lucent_check::report::campaign;
use lucent_check::runner::DEFAULT_SEED;
use lucent_check::Source;

use lucent_core::lab::Lab;
use lucent_packet::http::RequestBuilder;
use lucent_packet::tcp::TcpFlags;
use lucent_topology::{India, IndiaConfig, IspId};

/// The §5 invariant on the full India build: an interceptive ISP's
/// verdict on a TTL-limited request (which can never reach the origin)
/// depends only on the `Host` header, not on innocuous extra headers or
/// their order.
#[test]
fn india_middlebox_verdicts_ignore_innocuous_headers() {
    let mut lab = Lab::new(India::build(IndiaConfig::tiny()));
    let site = lab.india.truth.http_master[&IspId::Idea]
        .iter()
        .copied()
        .find(|&s| lab.india.corpus.site(s).is_alive())
        .expect("a censored, alive Idea site exists at tiny scale");
    let domain = lab.india.corpus.site(site).domain.clone();
    let ip = lab.india.corpus.site(site).replicas[0];
    let client = lab.client_of(IspId::Idea);
    let penultimate = lab.hops_to(client, ip, 30).expect("path to the site") - 1;

    // Did the middlebox answer a request the origin can never see?
    let mut probe = |req: &[u8]| -> bool {
        let mut conn = lab.raw_connect(client, ip, 80, None);
        assert!(conn.established, "handshake to an alive site must succeed");
        lab.raw_send(&mut conn, req, Some(penultimate));
        let got = lab.raw_observe(&mut conn, 800);
        lab.raw_close(&conn);
        got.iter().any(|p| {
            p.as_tcp()
                .map(|(h, payload)| h.flags.contains(TcpFlags::RST) || !payload.is_empty())
                .unwrap_or(false)
        })
    };

    let canonical = RequestBuilder::browser(&domain, "/").build();
    assert!(probe(&canonical), "the canonical request for {domain} must be censored");
    let mut s = Source::new(0xC0FFEE, 0);
    for round in 0..4 {
        let permuted = permuted_request(&mut s, &domain, "/");
        assert!(
            probe(&permuted),
            "permutation round {round} changed the verdict for {domain}:\n{:?}",
            String::from_utf8_lossy(&permuted)
        );
    }
    let control = RequestBuilder::browser(&format!("not-{domain}"), "/").build();
    assert!(!probe(&control), "an unlisted host must not be censored");
}

/// The whole campaign — oracles plus live-rig simulation invariants —
/// prints a byte-identical transcript at the same seed regardless of the
/// run or the `--threads` value, and finds nothing on a clean tree.
#[test]
fn campaign_transcripts_are_byte_identical_across_runs_and_threads() {
    let (t1, f1) = campaign(4, DEFAULT_SEED, 1, true);
    let (t4, f4) = campaign(4, DEFAULT_SEED, 4, true);
    assert_eq!(t1, t4, "campaign transcript differs between --threads 1 and --threads 4");
    assert_eq!((f1, f4), (0, 0), "clean tree must produce no findings:\n{t1}");
    let (again, _) = campaign(4, DEFAULT_SEED, 1, true);
    assert_eq!(t1, again, "campaign transcript differs between identical runs");
}
