//! The profiler's two-plane contract, end to end:
//!
//! 1. the **deterministic plane** (scheduler dwell histograms, pop
//!    counts, middlebox paths, per-shard totals) is byte-identical at
//!    `--threads 1`, `2`, and `4`;
//! 2. profiling is **observation only** — results with the profiler on
//!    are byte-identical to results with it off;
//! 3. the dwell histograms **conserve events**: every popped event
//!    lands in exactly one bucket of its kind's histogram.

use lucent_bench::drive::Driver;
use lucent_bench::Scale;
use lucent_core::experiments::race;
use lucent_obs::{prof, Telemetry};
use lucent_support::json::to_string_pretty;

fn race_opts() -> race::RaceOptions {
    race::RaceOptions::default()
}

/// Run the race experiment under a profiled driver; return the result
/// JSON, the deterministic profile, and the hub for further inspection.
fn profiled_race(threads: usize) -> (String, String, Telemetry) {
    let drv = Driver::new(Scale::Tiny, threads, None).with_prof(true);
    let hub = Telemetry::new();
    let json = to_string_pretty(&drv.race(&hub, &race_opts()));
    let det = prof::deterministic_json(&hub, 0).to_string_pretty();
    (json, det, hub)
}

#[test]
fn deterministic_plane_is_byte_identical_across_thread_counts() {
    let (json1, det1, _) = profiled_race(1);
    for threads in [2usize, 4] {
        let (json, det) = {
            let (j, d, _) = profiled_race(threads);
            (j, d)
        };
        assert_eq!(json1, json, "results differ between --threads 1 and --threads {threads}");
        assert_eq!(
            det1, det,
            "deterministic profile differs between --threads 1 and --threads {threads}"
        );
    }
    // The profile actually carries data, not just an empty skeleton.
    assert!(det1.contains("prof.sched.pops") || det1.contains("pops"), "{det1}");
    assert!(det1.contains("race/shard-00"), "{det1}");
}

#[test]
fn profiling_is_observation_only() {
    let plain = {
        let drv = Driver::new(Scale::Tiny, 2, None);
        let hub = Telemetry::new();
        to_string_pretty(&drv.race(&hub, &race_opts()))
    };
    let (profiled, _, _) = profiled_race(2);
    assert_eq!(plain, profiled, "turning the profiler on changed an experiment result");
}

#[test]
fn dwell_histograms_conserve_popped_events() {
    let scale = Scale::Tiny;
    let mut lab = scale.lab();
    let obs = lab.india.net.telemetry();
    obs.enable_prof(true);
    let before = lab.india.net.events_processed();
    let r = race::run(&mut lab, &race_opts());
    assert!(!r.rows.is_empty());
    let after = lab.india.net.events_processed();
    let popped = obs.counter_total(prof::SCHED_POPS);
    assert_eq!(popped, after - before, "every pop while profiling must be counted");
    let mut bucketed = 0u64;
    for kind in prof::KINDS {
        if let Some(buckets) = obs.histogram_buckets(prof::dwell_metric(kind)) {
            bucketed += buckets.iter().sum::<u64>();
        }
    }
    assert_eq!(bucketed, popped, "every popped event lands in exactly one dwell bucket");
}
