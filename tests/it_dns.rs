//! DNS-layer integration: poisoning end-to-end, the resolver survey
//! against ground truth, and the poisoning-vs-injection discriminator.

use lucent_core::lab::Lab;
use lucent_core::probe::dns_scan::{find_open_resolvers, survey};
use lucent_core::probe::tracer::{dns_tracer, DnsMechanism};
use lucent_packet::ipv4::is_bogon;
use lucent_topology::{India, IndiaConfig, IspId};

fn lab() -> Lab {
    Lab::new(India::build(IndiaConfig::tiny()))
}

#[test]
fn poisoned_resolver_lies_only_about_its_blocklist() {
    let mut lab = lab();
    let client = lab.client_of(IspId::Mtnl);
    let (resolver, blocklist) = lab.india.truth.dns_resolvers[&IspId::Mtnl]
        .iter()
        .find(|(_, bl)| !bl.is_empty())
        .cloned()
        .expect("a poisoned resolver");
    let notice_ip = lab.india.isps[&IspId::Mtnl].notice_ip;
    let prefix = lab.india.isps[&IspId::Mtnl].prefix;

    // A blocked name gets a manipulated answer.
    let blocked = blocklist.iter().next().copied().unwrap();
    let blocked_domain = lab.india.corpus.site(blocked).domain.clone();
    let out = lab.resolve(client, resolver, &blocked_domain);
    assert!(!out.timed_out);
    assert!(
        out.ips.iter().all(|&ip| ip == notice_ip || prefix.contains(ip) || is_bogon(ip)),
        "{out:?}"
    );

    // An unblocked alive name resolves honestly.
    let honest = lab
        .india
        .corpus
        .pbw
        .iter()
        .copied()
        .find(|s| !blocklist.contains(s) && lab.india.corpus.site(*s).is_alive())
        .unwrap();
    let honest_domain = lab.india.corpus.site(honest).domain.clone();
    let truth = lab.india.corpus.site(honest).replicas.clone();
    let out = lab.resolve(client, resolver, &honest_domain);
    assert!(out.ips.iter().all(|ip| truth.contains(ip)), "{out:?} vs {truth:?}");
}

#[test]
fn survey_matches_ground_truth_blocklists() {
    let mut lab = lab();
    let resolvers: Vec<_> =
        lab.india.isps[&IspId::Mtnl].resolvers.iter().map(|(ip, _)| *ip).collect();
    let pbw = lab.india.corpus.pbw.clone();
    let s = survey(&mut lab, IspId::Mtnl, &resolvers, &pbw);
    // Every measured manipulation is a true one (no false accusations);
    // sites whose names are dead still count (the paper: stale lists).
    let truth = lab.india.truth.dns_resolvers[&IspId::Mtnl].clone();
    for scan in &s.poisoned {
        let (_, true_list) = truth
            .iter()
            .find(|(ip, _)| *ip == scan.resolver)
            .expect("measured resolver is truly poisoned");
        for site in &scan.manipulated {
            assert!(
                true_list.contains(&lucent_web::SiteId(*site)),
                "resolver {} falsely accused of blocking {site}",
                scan.resolver
            );
        }
    }
}

#[test]
fn dead_sites_remain_on_blocklists() {
    // §6.3: "some websites are now unavailable but still blocked by the
    // ISPs — ISPs are not updating their blacklists". The deployment
    // samples blocklists from all PBWs including dead ones. (The small
    // world has enough dead sites for this to be statistically certain;
    // the tiny one does not.)
    let lab = Lab::new(India::build(IndiaConfig::small()));
    let mut found_dead_blocked = false;
    for master in lab.india.truth.dns_master.values() {
        for &site in master.iter() {
            if !lab.india.corpus.site(site).is_alive() {
                found_dead_blocked = true;
            }
        }
    }
    for master in lab.india.truth.http_master.values() {
        for &site in master.iter() {
            if !lab.india.corpus.site(site).is_alive() {
                found_dead_blocked = true;
            }
        }
    }
    assert!(found_dead_blocked, "at least one dead site should remain blocklisted");
}

#[test]
fn open_resolver_scan_is_precise() {
    let mut lab = lab();
    for isp in [IspId::Mtnl, IspId::Bsnl] {
        let deployed: Vec<_> = lab.india.isps[&isp].resolvers.iter().map(|(ip, _)| *ip).collect();
        let found = find_open_resolvers(&mut lab, isp, 1);
        assert_eq!(found.len(), deployed.len(), "{isp}: {found:?}");
        for ip in &found {
            assert!(deployed.contains(ip), "{isp}: {ip} is not a resolver");
        }
    }
}

#[test]
fn tracer_never_misreads_poisoning_as_injection() {
    let mut lab = lab();
    for isp in [IspId::Mtnl, IspId::Bsnl] {
        let client = lab.client_of(isp);
        let notice_ip = lab.india.isps[&isp].notice_ip;
        let prefix = lab.india.isps[&isp].prefix;
        let poisoned: Vec<_> = lab.india.truth.dns_resolvers[&isp]
            .iter()
            .filter(|(_, bl)| !bl.is_empty())
            .take(2)
            .cloned()
            .collect();
        for (resolver, bl) in poisoned {
            let site = bl.iter().next().copied().unwrap();
            let domain = lab.india.corpus.site(site).domain.clone();
            let mech = dns_tracer(
                &mut lab,
                client,
                resolver,
                &domain,
                |ips| ips.iter().any(|&ip| ip == notice_ip || prefix.contains(ip) || is_bogon(ip)),
                24,
            );
            assert_eq!(mech, DnsMechanism::Poisoning, "{isp} {resolver}");
        }
    }
}
