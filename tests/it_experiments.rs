//! Experiment-level integration: run every table/figure generator on the
//! tiny world and check the paper's qualitative shapes.

use lucent_core::experiments::{
    dns_mechanism, evasion, fig2, mechanism, race, table1, table2, table3, tracer_demo, triggers,
};
use lucent_core::lab::Lab;
use lucent_topology::{India, IndiaConfig, IspId};

fn lab() -> Lab {
    Lab::new(India::build(IndiaConfig::tiny()))
}

#[test]
fn tracer_demo_always_locates_the_idea_device_before_the_server() {
    let mut lab = lab();
    let demo = tracer_demo::run(&mut lab, IspId::Idea).expect("blocked path");
    let at = demo.trace.censored_at_ttl.unwrap();
    let n = demo.trace.path_len.unwrap();
    assert!(at < n);
}

#[test]
fn table1_mtnl_is_the_only_isp_with_dns_positives() {
    let mut lab = lab();
    let t = table1::run(
        &mut lab,
        &table1::Table1Options {
            isps: vec![IspId::Mtnl, IspId::Idea, IspId::Jio],
            max_sites: Some(20),
        },
    );
    let by_name = |n: &str| t.rows.iter().find(|r| r.isp == n).unwrap().clone();
    assert!(by_name("MTNL").dns.tp + by_name("MTNL").dns.fp > 0 || by_name("MTNL").manual_blocked == 0);
    assert_eq!(by_name("Idea").dns.tp, 0);
    assert_eq!(by_name("Jio").dns.tp, 0);
    // Nobody ever truly censors at TCP/IP level.
    for row in &t.rows {
        assert_eq!(row.tcp.tp, 0, "{}", row.isp);
        assert_eq!(row.tcp.fn_, 0, "{}", row.isp);
    }
}

#[test]
fn table2_idea_dominates_every_other_isp_on_coverage() {
    let mut lab = lab();
    let opts = table2::Table2Options {
        isps: vec![IspId::Airtel, IspId::Idea, IspId::Vodafone, IspId::Jio],
        inside_targets: 16,
        hosts_per_path: 40,
        max_sites: Some(40),
        consistency_paths: 6,
    };
    let t = table2::run(&mut lab, &opts);
    let idea = t.scans.iter().find(|s| s.isp == "Idea").unwrap();
    for other in t.scans.iter().filter(|s| s.isp != "Idea") {
        assert!(
            idea.inside.coverage() >= other.inside.coverage(),
            "Idea ({}) vs {} ({})",
            idea.inside.coverage(),
            other.isp,
            other.inside.coverage()
        );
    }
    let jio = t.scans.iter().find(|s| s.isp == "Jio").unwrap();
    assert_eq!(jio.outside.coverage(), 0.0, "Jio invisible from outside");
    // Blocked counts track the master lists (partition guarantee + scan).
    let truth_counts: Vec<usize> = ["Airtel", "Idea", "Vodafone", "Jio"]
        .iter()
        .map(|n| {
            let isp = IspId::ALL.into_iter().find(|i| i.name() == *n).unwrap();
            lab.india.truth.http_master[&isp].len()
        })
        .collect();
    for (scan, &truth) in t.scans.iter().zip(&truth_counts) {
        assert!(
            scan.blocked_sites.len() <= truth,
            "{}: measured {} > truth {truth}",
            scan.isp,
            scan.blocked_sites.len()
        );
    }
}

#[test]
fn table3_victims_never_attribute_blocks_to_themselves() {
    let mut lab = lab();
    let t = table3::run(
        &mut lab,
        &table3::Table3Options {
            victims: vec![IspId::Nkn, IspId::Siti],
            max_sites: None,
        },
    );
    for row in &t.rows {
        assert!(!row.by_censor.contains_key(&row.victim), "{row:?}");
        // Every attributed censor is one of the victim's actual transits.
        let victim = IspId::ALL.into_iter().find(|i| i.name() == row.victim).unwrap();
        let (a, b) = victim.transits().unwrap();
        for censor in row.by_censor.keys() {
            if censor == "?" {
                continue;
            }
            assert!(
                censor == a.name() || censor == b.name(),
                "{}: unexpected censor {censor}",
                row.victim
            );
        }
    }
}

#[test]
fn fig2_counts_match_deployment() {
    let mut lab = lab();
    let f = fig2::run(&mut lab, &fig2::Fig2Options::default());
    for row in &f.rows {
        let isp = IspId::ALL.into_iter().find(|i| i.name() == row.isp).unwrap();
        assert_eq!(row.open, lab.india.isps[&isp].resolvers.len(), "{}", row.isp);
        let truth_poisoned = lab.india.truth.dns_resolvers[&isp].len();
        assert!(row.poisoned <= truth_poisoned, "{}", row.isp);
        assert!(row.poisoned + 1 >= truth_poisoned, "{}: found {} of {}", row.isp, row.poisoned, truth_poisoned);
    }
}

#[test]
fn figure3_and_race_agree_interceptive_never_loses() {
    let mut lab = lab();
    let fig3 = mechanism::figure3(&mut lab).expect("covered Idea path");
    assert!(!fig3.get_reached_remote);
    let r = race::run(
        &mut lab,
        &race::RaceOptions { isps: vec![IspId::Idea], attempts: 6, sites_per_isp: 2 },
    );
    assert_eq!(r.rows[0].rendered, 0, "{r}");
}

#[test]
fn triggers_report_statefulness_everywhere_applicable() {
    let mut lab = lab();
    let t = triggers::run(&mut lab, &[IspId::Idea]);
    let ladder = t.rows[0].ladder.as_ref().expect("ladder ran");
    assert!(ladder.is_stateful());
}

#[test]
fn evasion_and_dns_mechanism_reports_are_serializable() {
    let mut lab = lab();
    let e = evasion::run(
        &mut lab,
        &evasion::EvasionOptions {
            isps: vec![IspId::Idea],
            sites_per_isp: 1,
            techniques: vec![
                lucent_core::anticensor::Technique::ExtraSpaceBeforeValue,
                lucent_core::anticensor::Technique::SegmentedRequest,
            ],
        },
    );
    assert!(!lucent_support::json::to_string(&e).is_empty());
    let d = dns_mechanism::run(&mut lab, 1);
    assert!(!lucent_support::json::to_string(&d).is_empty());
    assert!(d.synthetic_injection_detected);
}

#[test]
fn https_audit_and_anonymity_shapes() {
    let mut lab = lab();
    // HTTPS: the HTTP censor never touches 443; MTNL failures are DNS.
    let h = lucent_core::experiments::https_note::run(&mut lab, &[IspId::Idea, IspId::Mtnl], 6);
    let idea = h.rows.iter().find(|r| r.isp == "Idea").unwrap();
    assert_eq!(idea.https_blocked, 0, "{h}");
    let mtnl = h.rows.iter().find(|r| r.isp == "MTNL").unwrap();
    assert_eq!(mtnl.https_blocked, mtnl.dns_caused, "{h}");

    // Anonymity: censored paths always cross an asterisked hop.
    let a = lucent_core::experiments::anonymity::run(&mut lab, &[IspId::Idea], 8);
    let row = &a.rows[0];
    assert_eq!(row.censored, row.censored_and_asterisk, "{a}");
}

#[test]
fn category_breakdown_covers_all_seven() {
    let mut lab = lab();
    let opts = table2::Table2Options {
        isps: vec![IspId::Idea],
        inside_targets: 10,
        hosts_per_path: 40,
        max_sites: Some(40),
        consistency_paths: 6,
    };
    let scan = table2::scan_isp(&mut lab, IspId::Idea, &opts);
    let cats = lucent_core::experiments::categories::from_scans(&lab, &[scan]);
    let row = &cats.rows[0];
    let sum: usize = row.by_category.values().sum();
    assert_eq!(sum, row.total);
    // With a 16-site tiny master, most categories appear; at least 4 of 7.
    assert!(row.by_category.len() >= 4, "{cats}");
}
