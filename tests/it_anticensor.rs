//! Evasion integration: the Section-5 matrix, checked against the
//! matcher semantics each deployment uses.

use lucent_core::anticensor::{attempt, Technique};
use lucent_core::lab::{Lab, FETCH_TIMEOUT_MS};
use lucent_middlebox::notice::looks_like_notice;
use lucent_topology::{India, IndiaConfig, IspId};
use lucent_web::SiteId;

fn lab() -> Lab {
    Lab::new(India::build(IndiaConfig::small()))
}

fn censored_site(lab: &mut Lab, isp: IspId) -> Option<SiteId> {
    let master: Vec<SiteId> = lab.india.truth.http_master[&isp].iter().copied().collect();
    let client = lab.client_of(isp);
    for site in master {
        let s = lab.india.corpus.site(site);
        if !s.is_alive() || s.kind != lucent_web::SiteKind::Normal {
            continue;
        }
        // The matrix checks *this* deployment's matcher semantics, so the
        // site must not also sit on another censor's blocklist — a second
        // middlebox on the path would mix its semantics into the result.
        let shared = lab
            .india
            .truth
            .http_master
            .iter()
            .any(|(&other, bl)| other != isp && bl.contains(&site));
        if shared {
            continue;
        }
        let (domain, ip) = (s.domain.clone(), s.replicas[0]);
        for _ in 0..2 {
            let f = lab.http_get(client, ip, &domain, FETCH_TIMEOUT_MS);
            if f.was_reset()
                || f.hit_timeout()
                || f.response.as_ref().map(looks_like_notice).unwrap_or(false)
            {
                return Some(site);
            }
        }
    }
    None
}

#[test]
fn idea_full_matrix_matches_strict_pattern_semantics() {
    let mut lab = lab();
    let site = censored_site(&mut lab, IspId::Idea).expect("a censored site in Idea");
    // Works: anything the rigid `Host: value` parser chokes on.
    for tech in [
        Technique::ExtraSpaceBeforeValue,
        Technique::TabBeforeValue,
        Technique::TrailingSpace,
        Technique::Http2Version,
        Technique::SegmentedRequest,
        Technique::PrependWww,
    ] {
        assert!(attempt(&mut lab, IspId::Idea, site, tech).success, "{tech:?} should evade Idea");
    }
    // Fails: case fudging (matcher is case-insensitive), the firewall
    // tricks (nothing to drop — the device intercepts, it does not
    // inject alongside a real response), and the decoy Host (first wins).
    for tech in [
        Technique::HostKeywordCase,
        Technique::FirewallByIpId,
        Technique::FirewallBySource,
        Technique::DuplicateHostDecoy,
    ] {
        assert!(!attempt(&mut lab, IspId::Idea, site, tech).success, "{tech:?} should fail in Idea");
    }
}

#[test]
fn vodafone_matrix_matches_last_host_semantics() {
    let mut lab = lab();
    let Some(site) = censored_site(&mut lab, IspId::Vodafone) else {
        return; // 11% coverage may miss the small-world client entirely
    };
    assert!(attempt(&mut lab, IspId::Vodafone, site, Technique::DuplicateHostDecoy).success);
    assert!(attempt(&mut lab, IspId::Vodafone, site, Technique::SegmentedRequest).success);
    for tech in [
        Technique::ExtraSpaceBeforeValue,
        Technique::HostKeywordCase,
        Technique::Http2Version,
    ] {
        assert!(!attempt(&mut lab, IspId::Vodafone, site, tech).success, "{tech:?}");
    }
}

#[test]
fn airtel_matrix_matches_exact_token_semantics() {
    let mut lab = lab();
    let Some(site) = censored_site(&mut lab, IspId::Airtel) else {
        return;
    };
    for tech in [
        Technique::HostKeywordCase,
        Technique::FirewallByIpId,
        Technique::FirewallBySource,
        Technique::SegmentedRequest,
        Technique::PrependWww,
    ] {
        assert!(attempt(&mut lab, IspId::Airtel, site, tech).success, "{tech:?} should evade Airtel");
    }
    for tech in [Technique::ExtraSpaceBeforeValue, Technique::DuplicateHostDecoy] {
        assert!(!attempt(&mut lab, IspId::Airtel, site, tech).success, "{tech:?}");
    }
}

#[test]
fn firewall_rules_do_not_break_normal_traffic() {
    // Installing the evasion firewall must not disturb unrelated fetches:
    // legitimate FINs (ordinary IP-ID, other sources) still pass.
    let mut lab = lab();
    let client = lab.client_of(IspId::Airtel);
    lab.india
        .net
        .node_mut::<lucent_tcp::TcpHost>(client).unwrap()
        .firewall
        .add(lucent_tcp::FilterRule::drop_fin_rst_with_ip_id(242));
    let clean = lab
        .india
        .corpus
        .pbw
        .iter()
        .copied()
        .find(|&s| {
            let st = lab.india.corpus.site(s);
            st.is_alive()
                && st.kind == lucent_web::SiteKind::Normal
                && !lab.india.truth.blocked_for_client(IspId::Airtel, s)
        })
        .unwrap();
    let domain = lab.india.corpus.site(clean).domain.clone();
    let ip = lab.india.corpus.site(clean).replicas[0];
    let f = lab.http_get(client, ip, &domain, FETCH_TIMEOUT_MS);
    // The orderly server FIN got through: the socket saw the close.
    assert!(f.peer_fin(), "legitimate FIN must not be filtered");
    let resp = f.response.expect("normal fetch still completes");
    assert_eq!(resp.status, 200);
}

#[test]
fn public_resolver_full_pipeline_in_bsnl() {
    let mut lab = lab();
    let default = lab.india.isps[&IspId::Bsnl].default_resolver;
    let Some((_, blocklist)) = lab
        .india
        .truth
        .dns_resolvers
        .get(&IspId::Bsnl)
        .and_then(|rs| rs.iter().find(|(ip, _)| *ip == default))
        .cloned()
    else {
        return; // BSNL's default resolver may be honest at this scale
    };
    let Some(site) = blocklist.iter().copied().find(|&s| {
        lab.india.corpus.site(s).is_alive()
            && !lab
                .india
                .truth
                .borders
                .iter()
                .any(|((v, _), set)| *v == IspId::Bsnl && set.contains(&s))
    }) else {
        return;
    };
    let a = attempt(&mut lab, IspId::Bsnl, site, Technique::PublicResolver);
    assert!(a.success, "{a:?}");
}
