//! Tier-1 gate: `cargo test` fails if the workspace violates the
//! lucent-lint rules (hermeticity, layering, determinism, panic budget,
//! unsafe hygiene, print hygiene, panic provenance, shard isolation).
//! Equivalent to running the binary:
//! `cargo run -p lucent-devtools --bin lucent-lint`.
//!
//! Also pins the machine-readable report: `--json` output must be
//! byte-identical across runs and across `--threads` values (CI diffs
//! it against `tests/golden/lint-report.json`), and the L7/L8 rule
//! fixtures under `crates/devtools/fixtures/` must go red/green
//! exactly as designed.

use std::path::{Path, PathBuf};

use lucent_devtools::{run_root, run_root_with, Options};

fn workspace_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR")).parent().expect("workspace root")
}

fn fixture(name: &str) -> PathBuf {
    workspace_root().join("crates/devtools/fixtures").join(name)
}

#[test]
fn workspace_passes_the_lint_gate() {
    let report = run_root(workspace_root()).expect("lint scan");
    for v in &report.violations {
        eprintln!("{v}");
    }
    assert!(report.ok(), "{} lint violation(s) — see stderr", report.violations.len());
    // Sanity: the scan actually covered the tree, the symbol graph is
    // populated, and the panic-site ratchet stays at or below the
    // PR-5 baseline of 4 (seed was 142).
    assert!(report.files_scanned > 60, "only {} files scanned", report.files_scanned);
    assert!(report.functions > 400, "only {} fns indexed", report.functions);
    assert!(report.call_edges > 1000, "only {} call edges", report.call_edges);
    assert!(report.panic_total <= 4, "panic ratchet regressed: {}", report.panic_total);
}

#[test]
fn json_report_is_byte_identical_across_runs_and_thread_counts() {
    let root = workspace_root();
    let serial = run_root_with(root, &Options { threads: 1 }).expect("scan").to_json();
    let again = run_root_with(root, &Options { threads: 1 }).expect("scan").to_json();
    assert_eq!(serial, again, "two serial runs diverged");
    let wide = run_root_with(root, &Options { threads: 4 }).expect("scan").to_json();
    assert_eq!(serial, wide, "threads=1 and threads=4 diverged");
    assert!(serial.contains("\"schema\": \"lucent-lint/2\""));
}

#[test]
fn l7_fixture_goes_red_without_a_reach_baseline() {
    let report = run_root(&fixture("reach-red")).expect("fixture scan");
    let reach: Vec<_> = report
        .violations
        .iter()
        .filter(|v| v.rule.code() == "L7-panic-reach")
        .collect();
    assert_eq!(reach.len(), 1, "{:?}", report.violations);
    assert!(reach[0].msg.contains("run_isp"), "{}", reach[0].msg);
    assert!(reach[0].msg.contains("exp.rs:8"), "{}", reach[0].msg);
}

#[test]
fn l7_fixture_goes_green_with_the_reach_baseline() {
    let report = run_root(&fixture("reach-green")).expect("fixture scan");
    assert!(report.ok(), "{:?}", report.violations);
    assert_eq!(
        report.panic_reach["crates/core/src/experiments/exp.rs::run_isp"],
        vec!["crates/core/src/experiments/exp.rs:9"]
    );
}

#[test]
fn l8_fixture_goes_red_on_static_mut_and_unallowlisted_statics() {
    let report = run_root(&fixture("shared-red")).expect("fixture scan");
    let shared: Vec<_> = report
        .violations
        .iter()
        .filter(|v| v.rule.code() == "L8-shared-state")
        .collect();
    assert_eq!(shared.len(), 2, "{:?}", report.violations);
    assert!(shared.iter().any(|v| v.msg.contains("static mut")), "{shared:?}");
    assert!(shared.iter().any(|v| v.msg.contains("Mutex")), "{shared:?}");
}

#[test]
fn l8_fixture_goes_green_when_allowlisted() {
    let report = run_root(&fixture("shared-green")).expect("fixture scan");
    assert!(report.ok(), "{:?}", report.violations);
}

#[test]
fn the_real_gate_never_scans_fixture_trees() {
    // The fixtures seed deliberate violations; if the workspace walk
    // ever descends into them the main gate test above would go red in
    // a confusing place. Pin the exclusion directly.
    let report = run_root(workspace_root()).expect("lint scan");
    assert!(
        !report.panic_by_file.keys().any(|p| p.contains("fixtures/")),
        "fixture files leaked into the workspace scan"
    );
}
