//! Tier-1 gate: `cargo test` fails if the workspace violates the
//! lucent-lint rules (hermeticity, layering, determinism, panic budget,
//! unsafe hygiene). Equivalent to running the binary:
//! `cargo run -p lucent-devtools --bin lucent-lint`.

use std::path::Path;

#[test]
fn workspace_passes_the_lint_gate() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).parent().expect("workspace root");
    let report = lucent_devtools::run_root(root).expect("lint scan");
    for v in &report.violations {
        eprintln!("{v}");
    }
    assert!(report.ok(), "{} lint violation(s) — see stderr", report.violations.len());
    // Sanity: the scan actually covered the tree, and the panic-site
    // ratchet stays below the seed's 142-site baseline.
    assert!(report.files_scanned > 60, "only {} files scanned", report.files_scanned);
    assert!(report.panic_total < 142, "panic ratchet regressed: {}", report.panic_total);
}
