//! Tier-1 gate: `cargo test` fails if the workspace violates the
//! lucent-lint rules (hermeticity, layering, determinism, panic budget,
//! unsafe hygiene, print hygiene, panic provenance, shard isolation,
//! allocation provenance, per-event heap discipline, policy anomaly,
//! policy coverage). Equivalent to running the binary:
//! `cargo run -p lucent-devtools --bin lucent-lint`.
//!
//! Also pins the machine-readable report: `--json` output must be
//! byte-identical across runs and across `--threads` values (CI diffs
//! it against `tests/golden/lint-report.json`), the L7/L8/L9/L10/L11
//! rule fixtures under `crates/devtools/fixtures/` must go red/green
//! exactly as designed, and `--update-baseline` must refuse to raise
//! any generated ceiling.

use std::path::{Path, PathBuf};

use lucent_devtools::{run_root, run_root_with, Options};

fn workspace_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR")).parent().expect("workspace root")
}

fn fixture(name: &str) -> PathBuf {
    workspace_root().join("crates/devtools/fixtures").join(name)
}

#[test]
fn workspace_passes_the_lint_gate() {
    let report = run_root(workspace_root()).expect("lint scan");
    for v in &report.violations {
        eprintln!("{v}");
    }
    assert!(report.ok(), "{} lint violation(s) — see stderr", report.violations.len());
    // Sanity: the scan actually covered the tree, the symbol graph is
    // populated, and the panic-site ratchet stays at or below the
    // PR-5 baseline of 4 (seed was 142).
    assert!(report.files_scanned > 60, "only {} files scanned", report.files_scanned);
    assert!(report.functions > 400, "only {} fns indexed", report.functions);
    assert!(report.call_edges > 1000, "only {} call edges", report.call_edges);
    assert!(report.panic_total <= 4, "panic ratchet regressed: {}", report.panic_total);
    // The allocation census actually ran: the detector saw the tree and
    // every configured hot root resolved with a reachable count.
    assert!(report.alloc_total > 500, "only {} alloc sites detected", report.alloc_total);
    assert!(!report.alloc_reach.is_empty(), "no hot roots produced reach counts");
    for krate in ["netsim", "middlebox", "packet"] {
        assert!(
            report.hot_alloc_census.contains_key(krate),
            "census missing crate {krate}: {:?}",
            report.hot_alloc_census
        );
    }
}

#[test]
fn json_report_is_byte_identical_across_runs_and_thread_counts() {
    let root = workspace_root();
    let serial = run_root_with(root, &Options { threads: 1 }).expect("scan").to_json();
    let again = run_root_with(root, &Options { threads: 1 }).expect("scan").to_json();
    assert_eq!(serial, again, "two serial runs diverged");
    let wide = run_root_with(root, &Options { threads: 4 }).expect("scan").to_json();
    assert_eq!(serial, wide, "threads=1 and threads=4 diverged");
    assert!(serial.contains("\"schema\": \"lucent-lint/4\""));
    assert!(serial.contains("\"alloc_total\""), "schema 4 carries the alloc census");
    assert!(serial.contains("\"hot_alloc_census\""), "schema 4 carries the alloc census");
    assert!(serial.contains("\"policy_files\""), "schema 4 carries the policy census");
    assert!(serial.contains("\"policy_anomaly\""), "schema 4 carries the policy census");
}

#[test]
fn l7_fixture_goes_red_without_a_reach_baseline() {
    let report = run_root(&fixture("reach-red")).expect("fixture scan");
    let reach: Vec<_> = report
        .violations
        .iter()
        .filter(|v| v.rule.code() == "L7-panic-reach")
        .collect();
    assert_eq!(reach.len(), 1, "{:?}", report.violations);
    assert!(reach[0].msg.contains("run_isp"), "{}", reach[0].msg);
    assert!(reach[0].msg.contains("exp.rs:8"), "{}", reach[0].msg);
}

#[test]
fn l7_fixture_goes_green_with_the_reach_baseline() {
    let report = run_root(&fixture("reach-green")).expect("fixture scan");
    assert!(report.ok(), "{:?}", report.violations);
    assert_eq!(
        report.panic_reach["crates/core/src/experiments/exp.rs::run_isp"],
        vec!["crates/core/src/experiments/exp.rs:9"]
    );
}

#[test]
fn l9_l10_fixture_goes_red_without_alloc_baselines() {
    let report = run_root(&fixture("alloc-red")).expect("fixture scan");
    let l9: Vec<_> = report
        .violations
        .iter()
        .filter(|v| v.rule.code() == "L9-alloc-reach")
        .collect();
    let l10: Vec<_> = report
        .violations
        .iter()
        .filter(|v| v.rule.code() == "L10-alloc-in-loop")
        .collect();
    assert_eq!(l9.len(), 1, "{:?}", report.violations);
    assert_eq!(l10.len(), 1, "{:?}", report.violations);
    assert!(l9[0].msg.contains("step"), "{}", l9[0].msg);
    assert!(l9[0].msg.contains("lib.rs:6 (clone)"), "{}", l9[0].msg);
    assert!(l10[0].msg.contains("per-event"), "{}", l10[0].msg);
    assert!(l10[0].msg.contains("lib.rs:6 (clone)"), "{}", l10[0].msg);
}

#[test]
fn l9_l10_fixture_goes_green_with_alloc_baselines() {
    let report = run_root(&fixture("alloc-green")).expect("fixture scan");
    assert!(report.ok(), "{:?}", report.violations);
    assert_eq!(report.alloc_reach["crates/engine/src/lib.rs::step"], 1);
    assert_eq!(report.alloc_in_loop["crates/engine/src/lib.rs::step"], 1);
    assert_eq!(report.hot_alloc_census["engine"], (1, 1));
}

#[test]
fn l11_fixture_goes_red_on_a_seeded_dead_rule() {
    let report = run_root(&fixture("policy-red")).expect("fixture scan");
    let l11: Vec<_> = report
        .violations
        .iter()
        .filter(|v| v.rule.code() == "L11-policy-anomaly")
        .collect();
    assert_eq!(l11.len(), 1, "{:?}", report.violations);
    assert!(l11[0].msg.contains("dead rule: fully shadowed by rule #1"), "{}", l11[0].msg);
    assert!(
        format!("{}", l11[0]).contains("shadowed.toml:19"),
        "finding must pin the shadowed [[rule]] header line: {}",
        l11[0]
    );
    // Both families are present, so nothing else goes red: the single
    // violation above is the whole report.
    assert_eq!(report.violations.len(), 1, "{:?}", report.violations);
    assert_eq!(report.policy_files, 2);
}

#[test]
fn l11_fixture_goes_green_without_the_dead_rule() {
    let report = run_root(&fixture("policy-green")).expect("fixture scan");
    assert!(report.ok(), "{:?}", report.violations);
    assert_eq!(report.policy_files, 2);
    assert!(report.policy_anomaly.is_empty(), "{:?}", report.policy_anomaly);
}

#[test]
fn l8_fixture_goes_red_on_static_mut_and_unallowlisted_statics() {
    let report = run_root(&fixture("shared-red")).expect("fixture scan");
    let shared: Vec<_> = report
        .violations
        .iter()
        .filter(|v| v.rule.code() == "L8-shared-state")
        .collect();
    assert_eq!(shared.len(), 2, "{:?}", report.violations);
    assert!(shared.iter().any(|v| v.msg.contains("static mut")), "{shared:?}");
    assert!(shared.iter().any(|v| v.msg.contains("Mutex")), "{shared:?}");
}

#[test]
fn l8_fixture_goes_green_when_allowlisted() {
    let report = run_root(&fixture("shared-green")).expect("fixture scan");
    assert!(report.ok(), "{:?}", report.violations);
}

/// Build a throwaway copy of the `alloc-green` hot path under the
/// cargo-managed tmpdir with a caller-chosen allowlist, for exercising
/// `--update-baseline` (which rewrites the allowlist in place).
fn scratch_workspace(name: &str, allow: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    let engine = dir.join("crates/engine/src");
    std::fs::create_dir_all(&engine).expect("mkdir");
    std::fs::write(dir.join("Cargo.toml"), "[workspace]\nmembers = [\"crates/engine\"]\n")
        .expect("write");
    std::fs::write(
        dir.join("crates/engine/Cargo.toml"),
        "[package]\nname = \"fixture-engine\"\nversion = \"0.0.0\"\nedition = \"2021\"\n",
    )
    .expect("write");
    std::fs::write(
        engine.join("lib.rs"),
        "pub fn step(packets: &[Vec<u8>]) -> usize {\n    let mut total = 0;\n    for p in \
         packets {\n        total += handle(p.clone());\n    }\n    total\n}\n\nfn handle(p: \
         Vec<u8>) -> usize {\n    p.len()\n}\n",
    )
    .expect("write");
    std::fs::write(dir.join("lint-allow.toml"), allow).expect("write");
    dir
}

#[test]
fn update_baseline_refuses_to_raise_a_generated_ceiling() {
    let allow = "[hot_roots]\nroots = [\"crates/engine/src/lib.rs::step\"]\n\n\
                 [alloc_reach]\n\"crates/engine/src/lib.rs::step\" = 0\n";
    let dir = scratch_workspace("ratchet-raise", allow);
    let report = lucent_devtools::update_baseline(&dir).expect("update");
    assert!(
        report
            .violations
            .iter()
            .any(|v| v.msg.contains("refusing to raise the [alloc_reach] baseline")),
        "{:?}",
        report.violations
    );
    let after = std::fs::read_to_string(dir.join("lint-allow.toml")).expect("read");
    assert_eq!(after, allow, "a refused update must not rewrite the allowlist");
}

#[test]
fn update_baseline_emits_all_generated_tables_in_one_pass() {
    let allow = "[hot_roots]\nroots = [\"crates/engine/src/lib.rs::step\"]\n\n\
                 [alloc_reach]\n\"crates/engine/src/lib.rs::step\" = 5\n\n\
                 [alloc_in_loop]\n\"crates/engine/src/lib.rs::step\" = 4\n";
    let dir = scratch_workspace("ratchet-shrink", allow);
    let report = lucent_devtools::update_baseline(&dir).expect("update");
    assert!(report.ok(), "{:?}", report.violations);
    let after = std::fs::read_to_string(dir.join("lint-allow.toml")).expect("read");
    // One deterministic pass rewrote every generated table — the alloc
    // ceilings ratcheted down to the real counts, the panic tables are
    // present (empty), and the hot-root configuration survived.
    assert!(after.contains("[panic_sites]"), "{after}");
    assert!(after.contains("[panic_reach]"), "{after}");
    assert!(
        after.contains("roots = [\"crates/engine/src/lib.rs::step\"]"),
        "hot_roots config lost: {after}"
    );
    assert!(after.contains("\"crates/engine/src/lib.rs::step\" = 1\n"), "{after}");
    assert!(!after.contains("= 5"), "stale ceiling survived: {after}");
    assert!(!after.contains("= 4"), "stale ceiling survived: {after}");
    // Idempotent: a second pass writes the same bytes.
    let report2 = lucent_devtools::update_baseline(&dir).expect("update");
    assert!(report2.ok(), "{:?}", report2.violations);
    let again = std::fs::read_to_string(dir.join("lint-allow.toml")).expect("read");
    assert_eq!(after, again);
}

#[test]
fn update_baseline_rejects_a_stale_hot_root() {
    let allow = "[hot_roots]\nroots = [\"crates/engine/src/lib.rs::gone\"]\n";
    let dir = scratch_workspace("ratchet-stale", allow);
    let report = lucent_devtools::update_baseline(&dir).expect("update");
    assert!(
        report.violations.iter().any(|v| v.msg.contains("stale [hot_roots] entry")),
        "{:?}",
        report.violations
    );
    let after = std::fs::read_to_string(dir.join("lint-allow.toml")).expect("read");
    assert_eq!(after, allow, "a stale root must block the rewrite");
}

#[test]
fn the_real_gate_never_scans_fixture_trees() {
    // The fixtures seed deliberate violations; if the workspace walk
    // ever descends into them the main gate test above would go red in
    // a confusing place. Pin the exclusion directly.
    let report = run_root(workspace_root()).expect("lint scan");
    assert!(
        !report.panic_by_file.keys().any(|p| p.contains("fixtures/")),
        "fixture files leaked into the workspace scan"
    );
}
