//! placeholder
