//! End-to-end integration: the whole world, exercised the way a study
//! would — resolve, fetch, trace — across censoring and clean ISPs.

use lucent_core::lab::{Lab, FETCH_TIMEOUT_MS};
use lucent_middlebox::notice::looks_like_notice;
use lucent_topology::{India, IndiaConfig, IspId};
use lucent_web::SiteKind;

fn lab() -> Lab {
    Lab::new(India::build(IndiaConfig::tiny()))
}

#[test]
fn every_isp_client_can_reach_an_unblocked_site() {
    let mut lab = lab();
    for isp in IspId::MEASURED {
        let client = lab.client_of(isp);
        let site = lab
            .india
            .corpus
            .pbw
            .iter()
            .copied()
            .find(|&s| {
                let st = lab.india.corpus.site(s);
                st.is_alive()
                    && st.kind == SiteKind::Normal
                    && !st.regional_dns
                    && !lab.india.truth.blocked_for_client(isp, s)
            })
            .expect("an unblocked site exists");
        let domain = lab.india.corpus.site(site).domain.clone();
        let resolver = lab.india.public_dns_ip;
        let dns = lab.resolve(client, resolver, &domain);
        assert!(!dns.failed(), "{isp}: {domain} must resolve");
        let fetch = lab.http_get(client, dns.ips[0], &domain, FETCH_TIMEOUT_MS);
        let resp = fetch.response.expect("response");
        assert_eq!(resp.status, 200, "{isp}: {domain}");
        assert!(!looks_like_notice(&resp), "{isp}: {domain} wrongly censored");
    }
}

#[test]
fn ideas_list_is_censored_exactly_where_devices_sit() {
    // Direct fetches of Idea's master list are censored precisely when
    // the client's ECMP path crosses a device whose blocklist carries the
    // site — the per-path oracle behind the paper's consistency numbers.
    // (An aggregate "most censored" claim only holds at paper scale; at
    // tiny scale the handful of flows hash onto too few cores for the
    // fraction to concentrate.)
    let mut lab = lab();
    let client = lab.client_of(IspId::Idea);
    let client_ip = lab.india.isps[&IspId::Idea].client_ip;
    let leaf = lab.india.isps[&IspId::Idea].leaves[0];
    let devices = lab.india.truth.http_devices[&IspId::Idea].clone();
    // The leaf's default route lists its core-facing interfaces in core
    // order, so the position of the ECMP pick is the core index.
    let core_ifaces: Vec<_> = lab
        .india
        .net
        .node_mut::<lucent_netsim::RouterNode>(leaf).unwrap()
        .table
        .iter()
        .find(|(p, _)| p.len == 0)
        .expect("leaf default route")
        .1
        .clone();
    let master: Vec<_> = lab.india.truth.http_master[&IspId::Idea].iter().copied().collect();
    let mut censored = 0;
    let mut alive = 0;
    for site in master {
        let s = lab.india.corpus.site(site);
        if !s.is_alive() {
            continue;
        }
        alive += 1;
        let (domain, ip) = (s.domain.clone(), s.replicas[0]);
        let chosen = lab
            .india
            .net
            .node_mut::<lucent_netsim::RouterNode>(leaf).unwrap()
            .table
            .lookup_flow(client_ip, ip)
            .expect("client has a route out");
        let core = core_ifaces.iter().position(|&i| i == chosen).expect("a core iface");
        let predicted = devices.iter().any(|(c, _, bl)| *c == core && bl.contains(&site));
        let f = lab.http_get(client, ip, &domain, FETCH_TIMEOUT_MS);
        let observed = f.was_reset()
            || f.hit_timeout()
            || f.response.as_ref().map(looks_like_notice).unwrap_or(false);
        assert_eq!(observed, predicted, "site {site:?} via core {core}");
        censored += usize::from(observed);
    }
    assert!(alive > 0);
    assert!(censored > 0, "at least one direct path must be censored");
}

#[test]
fn virtual_hosting_serves_multiple_sites_from_one_address() {
    let mut lab = lab();
    let dir = lab.india.corpus.directory();
    let shared_ip = lab
        .india
        .corpus
        .hosting_ips()
        .into_iter()
        .find(|&ip| dir.sites_at(ip).len() > 1)
        .expect("shared hosting exists");
    let site_ids: Vec<_> = dir.sites_at(shared_ip).to_vec();
    drop(dir);
    let client = lab.india.tor;
    let mut served = 0;
    for id in site_ids.iter().take(2) {
        let domain = lab.india.corpus.site(*id).domain.clone();
        let f = lab.http_get(client, shared_ip, &domain, FETCH_TIMEOUT_MS);
        if let Some(resp) = f.response {
            if resp.status == 200 || resp.status == 302 {
                served += 1;
            }
        }
    }
    assert_eq!(served, 2, "both virtual hosts answer at {shared_ip}");
}

#[test]
fn traceroutes_reach_hosting_from_every_isp() {
    let mut lab = lab();
    let dst = lab.india.corpus.site(lab.india.corpus.popular[0]).replicas[0];
    for isp in IspId::MEASURED {
        let client = lab.client_of(isp);
        let tr = lab.traceroute(client, dst, 24);
        assert!(tr.reached, "{isp}: {:?}", tr.hops);
        assert!(tr.hops.len() >= 4, "{isp}: implausibly short path: {:?}", tr.hops);
    }
}

#[test]
fn cdn_steering_answers_are_always_genuine_replicas() {
    let mut lab = lab();
    let cdn = lab
        .india
        .corpus
        .pbw
        .iter()
        .chain(lab.india.corpus.popular.iter())
        .copied()
        .find(|&s| {
            let st = lab.india.corpus.site(s);
            st.regional_dns && st.replicas.len() >= 3
        })
        .expect("a CDN site exists");
    let domain = lab.india.corpus.site(cdn).domain.clone();
    let truth = lab.india.corpus.site(cdn).replicas.clone();
    // Resolve from two differently-located honest resolvers.
    let airtel_client = lab.client_of(IspId::Airtel);
    let airtel_resolver = lab.india.isps[&IspId::Airtel].default_resolver;
    let a = lab.resolve(airtel_client, airtel_resolver, &domain);
    let jio_client = lab.client_of(IspId::Jio);
    let jio_resolver = lab.india.isps[&IspId::Jio].default_resolver;
    let b = lab.resolve(jio_client, jio_resolver, &domain);
    assert!(!a.failed() && !b.failed());
    for ip in a.ips.iter().chain(b.ips.iter()) {
        assert!(truth.contains(ip), "{ip} is not a replica of {domain}");
    }
}

#[test]
fn world_scale_matches_config() {
    let lab = lab();
    let cfg = &lab.india.cfg;
    assert_eq!(lab.india.corpus.pbw.len(), cfg.corpus.pbw_count);
    assert_eq!(lab.india.corpus.popular.len(), cfg.corpus.popular_count);
    for (isp_id, isp) in &lab.india.isps {
        assert_eq!(isp.cores.len(), cfg.cores_per_isp, "{isp_id}");
        assert_eq!(isp.leaves.len(), cfg.leaves_per_isp, "{isp_id}");
        assert_eq!(isp.edge_hosts.len(), 2 * cfg.leaves_per_isp, "{isp_id}");
    }
}
