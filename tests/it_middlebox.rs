//! Middlebox-behaviour integration: the full inferred machine of §4.2.1,
//! exercised through the built India rather than hand-wired rigs.

use lucent_core::lab::{Lab, FETCH_TIMEOUT_MS};
use lucent_core::probe::classify::{classify_by_remote_hosts, MeasuredKind};
use lucent_middlebox::notice::{looks_like_notice, NoticeStyle};
use lucent_packet::tcp::TcpFlags;
use lucent_topology::{India, IndiaConfig, IspId};
use lucent_web::SiteId;

fn lab() -> Lab {
    Lab::new(India::build(IndiaConfig::tiny()))
}

/// A (site, ip, domain) censored on the client's direct path.
fn censored_fixture(lab: &mut Lab, isp: IspId) -> Option<(SiteId, std::net::Ipv4Addr, String)> {
    let master: Vec<SiteId> = lab.india.truth.http_master[&isp].iter().copied().collect();
    let client = lab.client_of(isp);
    for site in master {
        let s = lab.india.corpus.site(site);
        if !s.is_alive() {
            continue;
        }
        let (domain, ip) = (s.domain.clone(), s.replicas[0]);
        for _ in 0..2 {
            let f = lab.http_get(client, ip, &domain, FETCH_TIMEOUT_MS);
            if f.was_reset()
                || f.hit_timeout()
                || f.response.as_ref().map(looks_like_notice).unwrap_or(false)
            {
                return Some((site, ip, domain));
            }
        }
    }
    None
}

#[test]
fn deployed_kinds_match_config() {
    let india = India::build(IndiaConfig::tiny());
    for (isp_id, profile) in &india.cfg.http {
        for (_, _, kind) in &india.isps[isp_id].devices {
            assert_eq!(kind, &profile.kind, "{isp_id}");
        }
    }
}

#[test]
fn idea_notice_page_carries_idea_signature() {
    let mut lab = lab();
    let (_, ip, domain) = censored_fixture(&mut lab, IspId::Idea).expect("censored path");
    let client = lab.client_of(IspId::Idea);
    let f = lab.http_get(client, ip, &domain, FETCH_TIMEOUT_MS);
    let resp = f.response.expect("notice");
    assert!(NoticeStyle::idea_like().matches(&resp), "wrong signature");
    assert!(!NoticeStyle::airtel_like().matches(&resp));
    // The paper's FN analysis: notices carry no title and mimic ordinary
    // header names.
    assert!(resp.title().is_none());
    assert!(resp.header("server").is_some());
}

#[test]
fn remote_host_classification_agrees_with_deployment() {
    let mut lab = lab();
    // Idea (~92% coverage): some VP path is covered with near certainty.
    let blocked: Vec<String> = lab.india.truth.http_master[&IspId::Idea]
        .iter()
        .take(6)
        .map(|&s| lab.india.corpus.site(s).domain.clone())
        .collect();
    let mut got = None;
    for domain in &blocked {
        if let Some((kind, _)) = classify_by_remote_hosts(&mut lab, IspId::Idea, domain) {
            got = Some(kind);
            break;
        }
    }
    assert_eq!(got, Some(MeasuredKind::Interceptive));
}

#[test]
fn wiretap_injections_carry_the_airtel_ip_id() {
    let mut lab = lab();
    let Some((_, ip, domain)) = censored_fixture(&mut lab, IspId::Airtel) else {
        return; // tiny world: the Airtel client may dodge all devices
    };
    let client = lab.client_of(IspId::Airtel);
    // The wiretap races the real response and its slow tail (30% of
    // flows) can lose outright, so one fetch may see no injection at
    // all; collect stamped packets across a handful of flows.
    let mut stamped = Vec::new();
    for _ in 0..5 {
        lab.india.net.node_mut::<lucent_tcp::TcpHost>(client).unwrap().enable_pcap();
        let _ = lab.http_get(client, ip, &domain, FETCH_TIMEOUT_MS);
        let pcap = lab.india.net.node_mut::<lucent_tcp::TcpHost>(client).unwrap().take_pcap();
        stamped.extend(pcap.into_iter().filter(|(_, p)| p.ip.identification == 242));
    }
    assert!(!stamped.is_empty(), "Airtel middlebox packets are stamped 242");
    for (_, p) in &stamped {
        let (h, _) = p.as_tcp().expect("TCP");
        assert!(
            h.flags.intersects(TcpFlags::FIN | TcpFlags::RST),
            "only teardown packets are injected"
        );
    }
}

#[test]
fn covert_vodafone_resets_without_a_page() {
    let mut lab = lab();
    let Some((_, ip, domain)) = censored_fixture(&mut lab, IspId::Vodafone) else {
        return; // 11% coverage: often unobserved in the tiny world
    };
    let client = lab.client_of(IspId::Vodafone);
    let f = lab.http_get(client, ip, &domain, FETCH_TIMEOUT_MS);
    assert!(f.was_reset(), "covert devices reset");
    let got_notice = f.response.as_ref().map(looks_like_notice).unwrap_or(false);
    assert!(!got_notice, "no notification page from a covert device");
}

#[test]
fn non_port_80_flows_are_never_inspected() {
    // §6.3: the deployed middleboxes inspect only TCP port 80. Install a
    // listener on 8080 at a hosting node, then request a blocked domain
    // through Idea's (92%-covered) network: content must flow.
    let mut lab = lab();
    let (_, ip, domain) = censored_fixture(&mut lab, IspId::Idea).expect("censored path");
    let server_node = lab
        .india
        .hosting
        .iter()
        .find(|(hip, _)| *hip == ip)
        .map(|(_, node)| *node)
        .expect("server node exists");
    lab.india
        .net
        .node_mut::<lucent_tcp::TcpHost>(server_node).unwrap()
        .listen(8080, || Box::new(lucent_tcp::FixedResponder::new(b"HTTP/1.1 200 OK\r\nContent-Length: 4\r\n\r\nalt!".to_vec())));
    let client = lab.client_of(IspId::Idea);
    let request = lucent_packet::http::RequestBuilder::browser(&domain, "/").build();
    let f = lab.http_fetch(client, ip, 8080, request, FETCH_TIMEOUT_MS);
    assert!(!f.was_reset());
    let resp = f.response.expect("alt service answers despite the blocked Host");
    assert_eq!(resp.status, 200);
    assert!(!looks_like_notice(&resp));
}

#[test]
fn every_kind_of_isp_builds_with_consistent_truth() {
    let india = India::build(IndiaConfig::tiny());
    for (isp_id, master) in &india.truth.http_master {
        let devices = &india.truth.http_devices[isp_id];
        // Union of devices equals master (partition guarantee).
        let mut union = std::collections::BTreeSet::new();
        for (_, _, bl) in devices {
            union.extend(bl.iter().copied());
        }
        if !devices.is_empty() {
            assert_eq!(&union, master, "{isp_id}");
        }
    }
}
