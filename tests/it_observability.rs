//! Telemetry determinism: the observability layer must neither perturb
//! experiment results nor itself vary between same-seed runs.

use lucent_core::experiments::{mechanism, race};
use lucent_core::lab::Lab;
use lucent_obs::Telemetry;
use lucent_support::ToJson;
use lucent_topology::{India, IndiaConfig, IspId};

fn lab() -> Lab {
    Lab::new(India::build(IndiaConfig::tiny()))
}

fn race_opts() -> race::RaceOptions {
    race::RaceOptions {
        isps: vec![IspId::Airtel, IspId::Idea],
        attempts: 4,
        sites_per_isp: 2,
    }
}

/// Run fig4 + a small race with full tracing on and hand back the
/// deterministic exporter artifacts.
fn traced_run() -> (String, String, String) {
    let mut lab = lab();
    let obs: Telemetry = lab.india.net.telemetry();
    obs.set_filter_spec("trace").expect("blanket spec parses");
    obs.enable_spans(true);
    mechanism::figure4(&mut lab);
    race::run(&mut lab, &race_opts());
    (obs.event_log(), obs.metrics_snapshot_pretty(), obs.chrome_trace())
}

#[test]
fn same_seed_runs_produce_byte_identical_telemetry() {
    let (log_a, metrics_a, chrome_a) = traced_run();
    let (log_b, metrics_b, chrome_b) = traced_run();
    assert!(!log_a.is_empty(), "a traced fig4 run must record events");
    assert_eq!(log_a, log_b, "event log must be byte-identical across same-seed runs");
    assert_eq!(metrics_a, metrics_b, "metrics snapshot must be byte-identical");
    assert_eq!(chrome_a, chrome_b, "chrome trace must be byte-identical");
}

#[test]
fn telemetry_on_or_off_does_not_change_experiment_results() {
    // Quiet run: default telemetry (events off, spans off).
    let mut quiet = lab();
    let quiet_fig4 = mechanism::figure4(&mut quiet).expect("fig4 path exists");
    let quiet_race = race::run(&mut quiet, &race_opts());

    // Loud run: everything on.
    let mut loud = lab();
    let obs = loud.india.net.telemetry();
    obs.set_filter_spec("trace").expect("blanket spec parses");
    obs.enable_spans(true);
    let loud_fig4 = mechanism::figure4(&mut loud).expect("fig4 path exists");
    let loud_race = race::run(&mut loud, &race_opts());

    assert!(obs.event_count() > 0, "the loud run must actually have traced");
    assert_eq!(
        quiet_fig4.to_json().to_string_pretty(),
        loud_fig4.to_json().to_string_pretty(),
        "fig4 result JSON must not depend on tracing"
    );
    assert_eq!(
        quiet_race.to_json().to_string_pretty(),
        loud_race.to_json().to_string_pretty(),
        "race result JSON must not depend on tracing"
    );
}

#[test]
fn event_ring_cap_is_honoured_under_blanket_tracing() {
    let mut lab = lab();
    let obs = lab.india.net.telemetry();
    obs.set_filter_spec("trace").expect("blanket spec parses");
    obs.set_event_cap(8);
    mechanism::figure4(&mut lab);
    assert!(obs.event_count() <= 8, "ring must never exceed its cap");
    assert!(obs.events_dropped() > 0, "a full fig4 trace overflows a cap of 8");
    // The log renders exactly the retained events, one JSON line each.
    assert_eq!(obs.event_log().lines().count(), obs.event_count());
}
