//! The declarative policy engine at system level.
//!
//! Every censor in the topology is a [`lucent_middlebox::PolicyBox`]
//! interpreting a compiled program; the hardcoded reference middleboxes
//! are gone. What holds the interpreter to the retired behaviour is a
//! pair of *recorded transcripts* (`tests/golden/mb-*.transcript`):
//! canonical renderings of everything a censor device does — state
//! after every scripted packet, the exact bytes it injects on both
//! sides, and its final telemetry — captured while the reference
//! implementations were still alive. This suite proves:
//!
//! 1. the committed tiny goldens (`tests/golden/*-tiny-metrics.json`),
//!    produced before the policy engine existed, still reproduce
//!    byte-for-byte at `--threads 1` and `4`;
//! 2. the committed Airtel and Idea programs replay their recorded
//!    transcripts byte-for-byte — one recording per middlebox family;
//! 3. the planted `wrong-airtel.toml` fixture (one flipped action) must
//!    diverge from the Airtel recording, and its byte-equivalent green
//!    twin must match — proving the suite detects what it claims to.
//!
//! To re-record after an *intentional* behaviour change, run with
//! `LUCENT_REGEN_TRANSCRIPTS=1` and commit the diff.

use std::path::{Path, PathBuf};

use lucent_bench::drive::Driver;
use lucent_bench::Scale;
use lucent_check::diffmb::{airtel_spec, canned_script, idea_spec, render_transcript, run_diff, MbSpec};
use lucent_core::experiments::{fig2, race, table1};
use lucent_middlebox::compile::{builtin, builtin_names, compile};
use lucent_middlebox::policy::Family;
use lucent_obs::Telemetry;
use lucent_support::json::to_string_pretty;

const TRACE: &str = "wiretap=debug";

/// Run one experiment the exact way `repro` produces the goldens:
/// trace spec on the hub and replicated to the shards, tiny scale.
fn tiny_run(exp: &str, threads: usize) -> (String, String) {
    let drv = Driver::new(Scale::Tiny, threads, Some(TRACE.to_string()));
    let hub = Telemetry::new();
    hub.set_filter_spec(TRACE).unwrap();
    let json = match exp {
        "race" => to_string_pretty(&drv.race(&hub, &race::RaceOptions::default())),
        "table1" => to_string_pretty(&drv.table1(&hub, &table1::Table1Options::default())),
        _ => to_string_pretty(&drv.fig2(&hub, &fig2::Fig2Options::default())),
    };
    (json, hub.metrics_snapshot_pretty())
}

#[test]
fn policy_engine_reproduces_the_committed_goldens() {
    let goldens = [
        ("race", include_str!("golden/race-tiny-metrics.json")),
        ("table1", include_str!("golden/table1-tiny-metrics.json")),
        ("fig2", include_str!("golden/fig2-tiny-metrics.json")),
    ];
    for (exp, golden) in goldens {
        for threads in [1usize, 4] {
            let (_, metrics) = tiny_run(exp, threads);
            assert_eq!(
                metrics, golden,
                "{exp} metrics under the policy engine at --threads {threads} \
                 diverged from the pre-policy golden"
            );
        }
    }
}

fn transcript_path(file: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("golden").join(file)
}

/// Read a recorded transcript — or, under `LUCENT_REGEN_TRANSCRIPTS`,
/// re-record it from the named committed program. A regeneration run
/// can never pass as a test: [`regen_mode_always_fails`] goes red
/// whenever the variable is set.
fn recorded_transcript(file: &str, program: &str, spec: &MbSpec) -> String {
    let path = transcript_path(file);
    if std::env::var_os("LUCENT_REGEN_TRANSCRIPTS").is_some() {
        let live =
            render_transcript(builtin(program).unwrap(), spec, &canned_script(spec)).unwrap();
        std::fs::write(&path, &live).unwrap();
        return live;
    }
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing recording {}: {e}", path.display()))
}

#[test]
fn regen_mode_always_fails() {
    assert!(
        std::env::var_os("LUCENT_REGEN_TRANSCRIPTS").is_none(),
        "LUCENT_REGEN_TRANSCRIPTS re-recorded tests/golden/mb-*.transcript; \
         inspect the diff, commit it, and rerun without the variable"
    );
}

#[test]
fn the_committed_programs_replay_their_recorded_transcripts() {
    let cases = [
        ("mb-airtel.transcript", "airtel-wm", airtel_spec()),
        ("mb-idea.transcript", "idea-im", idea_spec()),
    ];
    for (file, program, spec) in cases {
        let recorded = recorded_transcript(file, program, &spec);
        run_diff(builtin(program).unwrap(), &spec, &canned_script(&spec), &recorded)
            .unwrap_or_else(|e| panic!("{program} no longer replays {file}: {e}"));
    }
}

#[test]
fn the_planted_wrong_policy_diverges_from_the_recording() {
    let spec = airtel_spec();
    let steps = canned_script(&spec);
    let recorded = recorded_transcript("mb-airtel.transcript", "airtel-wm", &spec);
    let wrong =
        compile(include_str!("../crates/middlebox/policies/fixtures/wrong-airtel.toml")).unwrap();
    let msg = run_diff(wrong, &spec, &steps, &recorded)
        .expect_err("wrong-airtel.toml (one flipped action) must diverge from the recording");
    assert!(msg.contains("diverged"), "CI greps for 'diverged': {msg}");
    // The green twin is the same program with the action restored:
    // passing proves the red above is the flip's fault, not the rig's.
    let right =
        compile(include_str!("../crates/middlebox/policies/fixtures/right-airtel.toml")).unwrap();
    run_diff(right, &spec, &steps, &recorded).unwrap();
}

/// CI's negative-control hook: when `LUCENT_POLICY_UNDER_TEST` names a
/// policy file (relative to the workspace root), it must replay the
/// recorded Airtel transcript byte-for-byte. CI feeds it the planted
/// `wrong-airtel.toml` and demands the red, then the byte-equivalent
/// `right-airtel.toml` and demands the green. Without the variable the
/// test is a no-op.
#[test]
fn policy_file_under_test_matches_the_airtel_recording() {
    let Some(rel) = std::env::var_os("LUCENT_POLICY_UNDER_TEST") else { return };
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join(rel);
    let text = std::fs::read_to_string(&path).unwrap();
    let policy = compile(&text).unwrap();
    let spec = airtel_spec();
    let recorded = recorded_transcript("mb-airtel.transcript", "airtel-wm", &spec);
    run_diff(policy, &spec, &canned_script(&spec), &recorded).unwrap();
}

#[test]
fn every_committed_isp_policy_compiles_to_its_family() {
    for name in builtin_names() {
        let p = builtin(name).unwrap();
        let want = if name.ends_with("-wm") { Family::Wiretap } else { Family::Interceptive };
        assert_eq!(p.family, want, "{name}");
        assert!(!p.rules.is_empty(), "{name} has no rules");
    }
}
