//! The declarative policy engine at system level.
//!
//! The topology now instantiates every censor through the policy
//! interpreter ([`lucent_topology::MbBackend::Policy`] is the default),
//! with the hardcoded middleboxes kept for one PR as the reference
//! implementation. This suite holds the swap to the golden standard:
//!
//! 1. the committed tiny goldens (`tests/golden/*-tiny-metrics.json`),
//!    produced before the policy engine existed, must reproduce
//!    byte-for-byte under the policy backend at `--threads 1` and `4` —
//!    **no golden was regenerated for this change**;
//! 2. flipping [`MbBackend`] between `Legacy` and `Policy` must not
//!    change a single byte of experiment JSON or metrics;
//! 3. the planted `wrong-airtel.toml` fixture (one flipped action) must
//!    turn the differential suite red, and its byte-equivalent green
//!    twin must pass — proving the suite detects what it claims to.

use lucent_bench::drive::Driver;
use lucent_bench::Scale;
use lucent_check::diffmb::{airtel_spec, canned_script, run_diff};
use lucent_core::experiments::{fig2, race, table1};
use lucent_middlebox::compile::{builtin, builtin_names, compile};
use lucent_middlebox::policy::Family;
use lucent_obs::Telemetry;
use lucent_support::json::to_string_pretty;
use lucent_topology::MbBackend;

const TRACE: &str = "wiretap=debug";

/// Run one experiment the exact way `repro` produces the goldens:
/// trace spec on the hub and replicated to the shards, tiny scale.
fn tiny_run(
    exp: &str,
    threads: usize,
    backend: Option<MbBackend>,
) -> (String, String) {
    let mut drv = Driver::new(Scale::Tiny, threads, Some(TRACE.to_string()));
    if let Some(b) = backend {
        drv = drv.with_backend(b);
    }
    let hub = Telemetry::new();
    hub.set_filter_spec(TRACE).unwrap();
    let json = match exp {
        "race" => to_string_pretty(&drv.race(&hub, &race::RaceOptions::default())),
        "table1" => to_string_pretty(&drv.table1(&hub, &table1::Table1Options::default())),
        _ => to_string_pretty(&drv.fig2(&hub, &fig2::Fig2Options::default())),
    };
    (json, hub.metrics_snapshot_pretty())
}

#[test]
fn policy_backend_reproduces_the_committed_goldens() {
    let goldens = [
        ("race", include_str!("golden/race-tiny-metrics.json")),
        ("table1", include_str!("golden/table1-tiny-metrics.json")),
        ("fig2", include_str!("golden/fig2-tiny-metrics.json")),
    ];
    for (exp, golden) in goldens {
        for threads in [1usize, 4] {
            let (_, metrics) = tiny_run(exp, threads, None);
            assert_eq!(
                metrics, golden,
                "{exp} metrics under the policy backend at --threads {threads} \
                 diverged from the pre-policy golden"
            );
        }
    }
}

#[test]
fn legacy_and_policy_backends_are_byte_identical() {
    for exp in ["race", "table1", "fig2"] {
        for threads in [1usize, 4] {
            let legacy = tiny_run(exp, threads, Some(MbBackend::Legacy));
            let policy = tiny_run(exp, threads, Some(MbBackend::Policy));
            assert_eq!(
                legacy.0, policy.0,
                "{exp} JSON differs between backends at --threads {threads}"
            );
            assert_eq!(
                legacy.1, policy.1,
                "{exp} metrics differ between backends at --threads {threads}"
            );
        }
    }
}

#[test]
fn the_planted_wrong_policy_turns_the_differential_red() {
    let spec = airtel_spec();
    let steps = canned_script(&spec);
    let wrong =
        compile(include_str!("../crates/middlebox/policies/fixtures/wrong-airtel.toml")).unwrap();
    let out = run_diff(wrong, &spec, &steps);
    assert!(
        out.is_err(),
        "wrong-airtel.toml (one flipped action) must fail the differential suite"
    );
    // The green twin is the same program with the action restored:
    // passing proves the red above is the flip's fault, not the rig's.
    let right =
        compile(include_str!("../crates/middlebox/policies/fixtures/right-airtel.toml")).unwrap();
    run_diff(right, &spec, &steps).unwrap();
}

/// CI's negative-control hook: when `LUCENT_POLICY_UNDER_TEST` names a
/// policy file (relative to the workspace root), it must be
/// behaviourally identical to the Airtel reference. CI feeds it the
/// planted `wrong-airtel.toml` and demands the red, then the
/// byte-equivalent `right-airtel.toml` and demands the green. Without
/// the variable the test is a no-op.
#[test]
fn policy_file_under_test_matches_the_airtel_reference() {
    let Some(rel) = std::env::var_os("LUCENT_POLICY_UNDER_TEST") else { return };
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("..").join(rel);
    let text = std::fs::read_to_string(&path).unwrap();
    let policy = compile(&text).unwrap();
    let spec = airtel_spec();
    run_diff(policy, &spec, &canned_script(&spec)).unwrap();
}

#[test]
fn every_committed_isp_policy_compiles_to_its_family() {
    for name in builtin_names() {
        let p = builtin(name).unwrap();
        let want = if name.ends_with("-wm") { Family::Wiretap } else { Family::Interceptive };
        assert_eq!(p.family, want, "{name}");
        assert!(!p.rules.is_empty(), "{name} has no rules");
    }
}
