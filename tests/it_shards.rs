//! Cross-thread-count determinism: the sharded driver must produce
//! byte-identical JSON results and metrics snapshots at `--threads 1`,
//! `2`, and `4` for the same seed. This is the contract that lets CI
//! diff golden artifacts produced at any thread count against each
//! other.

use lucent_bench::drive::Driver;
use lucent_bench::Scale;
use lucent_core::experiments::{fig2, race, table1};
use lucent_obs::Telemetry;
use lucent_support::json::to_string_pretty;

/// Run `f` under a fresh driver + hub at each thread count and return
/// the (result JSON, metrics snapshot) pairs.
fn at_thread_counts<F>(f: F) -> Vec<(String, String)>
where
    F: Fn(&Driver, &Telemetry) -> String,
{
    [1usize, 2, 4]
        .into_iter()
        .map(|threads| {
            let drv = Driver::new(Scale::Tiny, threads, None);
            let hub = Telemetry::new();
            let json = f(&drv, &hub);
            (json, hub.metrics_snapshot_pretty())
        })
        .collect()
}

fn assert_all_identical(runs: &[(String, String)], what: &str) {
    let (json1, metrics1) = &runs[0];
    for (i, (json, metrics)) in runs.iter().enumerate().skip(1) {
        let threads = [1, 2, 4][i];
        assert_eq!(
            json1, json,
            "{what}: JSON differs between --threads 1 and --threads {threads}"
        );
        assert_eq!(
            metrics1, metrics,
            "{what}: metrics snapshot differs between --threads 1 and --threads {threads}"
        );
    }
    assert!(!json1.is_empty() && !metrics1.is_empty(), "{what}: empty artifacts");
}

#[test]
fn race_is_byte_identical_across_thread_counts() {
    let runs = at_thread_counts(|drv, hub| {
        to_string_pretty(&drv.race(hub, &race::RaceOptions::default()))
    });
    assert_all_identical(&runs, "race");
}

#[test]
fn table1_is_byte_identical_across_thread_counts() {
    let runs = at_thread_counts(|drv, hub| {
        to_string_pretty(&drv.table1(hub, &table1::Table1Options::default()))
    });
    assert_all_identical(&runs, "table1");
}

#[test]
fn fig2_is_byte_identical_across_thread_counts() {
    let runs = at_thread_counts(|drv, hub| {
        to_string_pretty(&drv.fig2(hub, &fig2::Fig2Options::default()))
    });
    assert_all_identical(&runs, "fig2");
}
