//! Locate a censorship middlebox with the Iterative Network Tracer
//! (Figure 1 of the paper), then characterize what triggers it.
//!
//! ```sh
//! cargo run -p lucent-examples --bin trace_middlebox -- [ISP]
//! ```

use lucent_core::experiments::{tracer_demo, triggers};
use lucent_core::lab::Lab;
use lucent_topology::{India, IndiaConfig, IspId};

fn main() {
    let isp_name = std::env::args().nth(1).unwrap_or_else(|| "Idea".into());
    let isp = IspId::ALL
        .into_iter()
        .find(|i| i.name().eq_ignore_ascii_case(&isp_name))
        .unwrap_or(IspId::Idea);

    println!("building the simulated India…");
    let mut lab = Lab::new(India::build(IndiaConfig::small()));

    match tracer_demo::run(&mut lab, isp) {
        Some(demo) => println!("{demo}"),
        None => {
            println!("no censored path found from the {} client — try Idea or Airtel", isp.name());
            return;
        }
    }

    println!("\ncharacterizing the trigger…\n");
    let t = triggers::run(&mut lab, &[isp]);
    println!("{t}");
}
