//! Collateral damage (Section 4.3, Table 3): watch a non-censorious
//! ISP's traffic get censored by its transit providers, with per-censor
//! attribution via block-page signatures and path tracing.
//!
//! ```sh
//! cargo run -p lucent-examples --bin collateral
//! ```

use lucent_core::experiments::table3::{run, Table3Options};
use lucent_core::lab::Lab;
use lucent_topology::{India, IndiaConfig, IspId};

fn main() {
    println!("building the simulated India…");
    let mut lab = Lab::new(India::build(IndiaConfig::small()));

    // NKN deploys no censorship of its own…
    assert!(lab.india.isps[&IspId::Nkn].devices.is_empty());
    assert!(!lab.india.truth.http_master.contains_key(&IspId::Nkn));
    println!("NKN deploys no middleboxes and poisons no resolvers.\n");

    // …yet its clients see blocks, inherited from Vodafone and TATA.
    let t = run(
        &mut lab,
        &Table3Options {
            victims: vec![IspId::Nkn, IspId::Sify, IspId::Siti],
            max_sites: Some(120),
        },
    );
    println!("{t}");
    println!("Attribution uses the censors' distinctive notification pages where present,");
    println!("and falls back to locating the injecting hop inside the censor's prefix");
    println!("with the Iterative Network Tracer (§6.1 of the paper).");
}
