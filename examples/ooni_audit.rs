//! OONI audit: run the OONI web-connectivity model and the paper's own
//! detection pipeline side by side over a batch of potentially blocked
//! websites, scoring both against manual inspection — a miniature
//! Table 1.
//!
//! ```sh
//! cargo run -p lucent-examples --bin ooni_audit -- [ISP] [SITES]
//! ```

use lucent_core::lab::Lab;
use lucent_core::metrics::PrecisionRecall;
use lucent_core::probe::detect::detect_site;
use lucent_core::probe::manual::inspect;
use lucent_core::probe::ooni::web_connectivity;
use lucent_topology::{India, IndiaConfig, IspId};

fn main() {
    let mut args = std::env::args().skip(1);
    let isp_name = args.next().unwrap_or_else(|| "Airtel".into());
    let max: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(40);
    let isp = IspId::ALL
        .into_iter()
        .find(|i| i.name().eq_ignore_ascii_case(&isp_name))
        .unwrap_or(IspId::Airtel);

    println!("building the simulated India…");
    let mut lab = Lab::new(India::build(IndiaConfig::small()));
    let sites: Vec<_> = lab.india.corpus.pbw.iter().copied().take(max).collect();
    println!("auditing {} sites in {}\n", sites.len(), isp.name());

    let mut ooni_pr = PrecisionRecall::default();
    let mut ours_pr = PrecisionRecall::default();
    for site in sites {
        let domain = lab.india.corpus.site(site).domain.clone();
        let manual = inspect(&mut lab, isp, site);
        let ooni = web_connectivity(&mut lab, isp, site);
        let ours = detect_site(&mut lab, isp, site);
        let mark = |b: bool| if b { "X" } else { "." };
        println!(
            "  {:<22} manual:{} ooni:{} ours:{}",
            domain,
            mark(manual.blocked),
            mark(ooni.verdict.is_some()),
            mark(ours.blocked),
        );
        ooni_pr.record(ooni.verdict.is_some(), manual.blocked);
        ours_pr.record(ours.blocked, manual.blocked);
    }
    println!("\nOONI:     precision {:.2}, recall {:.2}", ooni_pr.precision(), ooni_pr.recall());
    println!("pipeline: precision {:.2}, recall {:.2}", ours_pr.precision(), ours_pr.recall());
    println!("\nThe pipeline's manual-confirmation step is what closes the gap —");
    println!("exactly the paper's point about OONI (§3.1, §6.2).");
}
