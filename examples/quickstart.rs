//! Quickstart: build the simulated India, fetch one site from inside a
//! censoring ISP and from an uncensored vantage, and see the difference.
//!
//! ```sh
//! cargo run -p lucent-examples --bin quickstart
//! ```

use lucent_core::lab::{Lab, FETCH_TIMEOUT_MS};
use lucent_topology::{India, IndiaConfig, IspId};

fn main() {
    // A small world: same structure as the paper-scale one, ~10× fewer
    // sites and resolvers. Use `IndiaConfig::paper()` for full scale.
    println!("building the simulated India…");
    let mut lab = Lab::new(India::build(IndiaConfig::small()));

    // Pick a site Idea Cellular censors *on this client's path* (each
    // destination rides its own ECMP path; ~90% are covered in Idea).
    let client = lab.client_of(IspId::Idea);
    let candidates: Vec<_> = lab.india.truth.http_master[&IspId::Idea]
        .iter()
        .copied()
        .filter(|&s| lab.india.corpus.site(s).is_alive())
        .collect();
    let mut chosen = None;
    for site in candidates {
        let domain = lab.india.corpus.site(site).domain.clone();
        let ip = lab.india.corpus.site(site).replicas[0];
        let f = lab.http_get(client, ip, &domain, FETCH_TIMEOUT_MS);
        let blocked = f.was_reset()
            || f.hit_timeout()
            || f.response.as_ref().map(lucent_middlebox::notice::looks_like_notice).unwrap_or(false);
        if blocked {
            chosen = Some((site, domain, ip));
            break;
        }
    }
    let (_, domain, ip) = chosen.expect("Idea censors something on this path");
    println!("target: http://{domain}/ at {ip}\n");

    // 1. From the Idea client.
    let censored = lab.http_get(client, ip, &domain, FETCH_TIMEOUT_MS);
    match &censored.response {
        Some(resp) if lucent_middlebox::notice::looks_like_notice(resp) => {
            println!("from Idea: BLOCKED — censorship notification ({} bytes)", resp.body.len());
        }
        Some(resp) => println!("from Idea: got status {} (uncovered path?)", resp.status),
        None => println!(
            "from Idea: connection died (reset: {}, timeout: {})",
            censored.was_reset(),
            censored.hit_timeout()
        ),
    }

    // 2. From the Tor-exit-like uncensored vantage.
    let tor = lab.india.tor;
    let free = lab.http_get(tor, ip, &domain, FETCH_TIMEOUT_MS);
    match &free.response {
        Some(resp) => println!(
            "from Tor exit: status {} — {:?}",
            resp.status,
            resp.title().unwrap_or_else(|| "(no title)".into())
        ),
        None => println!("from Tor exit: no response (site down)"),
    }

    // 3. Evade without any proxy: fudge the Host header's whitespace —
    //    the overt interceptive middlebox misparses it, the server does not.
    let fudged = lucent_packet::http::RequestBuilder::get("/")
        .raw_line(&format!("Host:  {domain}"))
        .build();
    let evaded = lab.http_fetch(client, ip, 80, fudged, FETCH_TIMEOUT_MS);
    match &evaded.response {
        Some(resp) if resp.status == 200 => {
            println!("from Idea with whitespace fudging: EVADED — status 200");
        }
        Some(resp) => println!("evasion attempt got status {}", resp.status),
        None => println!("evasion attempt got no response"),
    }
}
