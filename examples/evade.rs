//! Evade censorship without proxies, VPNs or Tor (Section 5 of the
//! paper): try every technique against every censoring ISP and print the
//! success matrix.
//!
//! ```sh
//! cargo run -p lucent-examples --bin evade -- [SITES_PER_ISP]
//! ```

use lucent_core::experiments::evasion::{run, EvasionOptions};
use lucent_core::lab::Lab;
use lucent_topology::{India, IndiaConfig};

fn main() {
    let sites: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(3);
    println!("building the simulated India…");
    let mut lab = Lab::new(India::build(IndiaConfig::small()));
    let opts = EvasionOptions { sites_per_isp: sites, ..Default::default() };
    let e = run(&mut lab, &opts);
    println!("{e}");
    println!("Reading the matrix:");
    println!("  host-case works on wiretaps (Airtel, Jio): their devices match `Host` case-sensitively;");
    println!("  extra-space/tab defeat the overt interceptive devices (Idea): rigid `Host: value` parser;");
    println!("  dup-host defeats the covert interceptive devices (Vodafone): last-Host-wins scanner;");
    println!("  segmented works everywhere: no middlebox reassembles TCP streams;");
    println!("  fw-ipid/fw-src drop the wiretaps' injected FIN/RST at the client;");
    println!("  alt-dns bypasses MTNL/BSNL resolver poisoning.");
}
