//! The transmission control block: a pure, host-independent TCP state
//! machine. All I/O is explicit — segments in via [`Tcb::on_segment`],
//! segments out via [`Tcb::poll`] — which makes every transition unit
//! testable without a network.

use std::collections::VecDeque;
use std::net::Ipv4Addr;

use lucent_support::Bytes;
use lucent_packet::tcp::{seq, TcpFlags, TcpHeader};
use lucent_netsim::SimTime;

use crate::socket::{LoggedEvent, SocketEvent, TcpState};

/// Default maximum segment size used by hosts in the simulator.
pub const DEFAULT_MSS: usize = 1400;
/// SYN retransmission limit (the paper's TCP/IP-filtering probe makes five
/// independent connect attempts; each must fail in bounded virtual time).
pub const SYN_RETRIES: u32 = 2;
/// Data/FIN retransmission limit.
pub const DATA_RETRIES: u32 = 4;
/// Base retransmission timeout; doubles per retry.
pub const RTO_BASE_MS: u64 = 400;
/// TIME-WAIT duration (smoltcp uses a fixed 10 s; we follow).
pub const TIME_WAIT_MS: u64 = 10_000;

/// A segment sitting in the retransmission queue.
#[derive(Debug, Clone)]
struct RtxSeg {
    seq: u32,
    data: Bytes,
    syn: bool,
    fin: bool,
}

impl RtxSeg {
    /// First sequence number after this segment.
    fn end_seq(&self) -> u32 {
        self.seq
            .wrapping_add(self.data.len() as u32)
            .wrapping_add(u32::from(self.syn))
            .wrapping_add(u32::from(self.fin))
    }
}

/// What the host should do about timers after a `poll`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimerAsk {
    /// Nothing outstanding; no timer needed.
    None,
    /// Arm the retransmission timer for the given generation after `ms`.
    Retransmit {
        /// Millisecond delay until the timer should fire.
        ms: u64,
        /// Generation that must still match when it fires.
        gen: u64,
    },
    /// Arm the TIME-WAIT expiry timer.
    TimeWait {
        /// Millisecond delay until expiry.
        ms: u64,
        /// Generation that must still match when it fires.
        gen: u64,
    },
}

/// The connection state machine.
#[derive(Debug)]
pub struct Tcb {
    /// Current state.
    pub state: TcpState,
    /// Local (address, port).
    pub local: (Ipv4Addr, u16),
    /// Remote (address, port).
    pub remote: (Ipv4Addr, u16),
    iss: u32,
    irs: u32,
    snd_una: u32,
    snd_nxt: u32,
    rcv_nxt: u32,
    send_buf: VecDeque<u8>,
    rtx: VecDeque<RtxSeg>,
    /// Ordered received byte stream, not yet consumed by the application.
    pub recv_buf: Vec<u8>,
    /// Timestamped event log.
    pub events: Vec<LoggedEvent>,
    fin_queued: bool,
    fin_seq: Option<u32>,
    /// Browser-like behaviour: on receiving the peer's FIN while
    /// established, immediately close our side too (the paper's clients
    /// do this, which is what makes the forged-FIN censorship effective).
    pub auto_close_on_fin: bool,
    mss: usize,
    pending_ack: bool,
    retransmit_now: bool,
    rtx_count: u32,
    timer_armed: bool,
    /// Bumped whenever outstanding timers become stale.
    pub timer_gen: u64,
    /// Set when the state machine wants to emit a RST (abort).
    rst_pending: bool,
}

impl Tcb {
    /// Active open: returns a TCB in `SynSent`; `poll` will emit the SYN.
    pub fn connect(local: (Ipv4Addr, u16), remote: (Ipv4Addr, u16), iss: u32, now: SimTime) -> Self {
        let _ = now;
        Tcb {
            state: TcpState::SynSent,
            local,
            remote,
            iss,
            irs: 0,
            snd_una: iss,
            snd_nxt: iss,
            rcv_nxt: 0,
            send_buf: VecDeque::new(),
            rtx: VecDeque::new(),
            recv_buf: Vec::new(),
            events: Vec::new(),
            fin_queued: false,
            fin_seq: None,
            auto_close_on_fin: true,
            mss: DEFAULT_MSS,
            pending_ack: false,
            retransmit_now: false,
            rtx_count: 0,
            timer_armed: false,
            timer_gen: 0,
            rst_pending: false,
        }
    }

    /// Passive open from a received SYN: returns a TCB in `SynRcvd`;
    /// `poll` will emit the SYN-ACK.
    pub fn accept(
        local: (Ipv4Addr, u16),
        remote: (Ipv4Addr, u16),
        iss: u32,
        syn: &TcpHeader,
        now: SimTime,
    ) -> Self {
        let mut tcb = Tcb::connect(local, remote, iss, now);
        tcb.state = TcpState::SynRcvd;
        tcb.irs = syn.seq;
        tcb.rcv_nxt = syn.seq.wrapping_add(1);
        if let Some(mss) = syn.mss {
            tcb.mss = tcb.mss.min(usize::from(mss));
        }
        tcb
    }

    /// Queue application bytes for transmission.
    pub fn send(&mut self, bytes: &[u8]) {
        self.send_buf.extend(bytes);
    }

    /// Orderly close: a FIN is emitted once queued data has been sent.
    pub fn close(&mut self) {
        self.fin_queued = true;
    }

    /// Abort: transition to `Closed` and emit a RST on the next poll.
    pub fn abort(&mut self) {
        if self.state != TcpState::Closed {
            self.rst_pending = true;
            self.enter_closed(None);
        }
    }

    /// Take all received bytes, draining the buffer.
    pub fn take_received(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.recv_buf)
    }

    /// Number of bytes not yet acknowledged by the peer.
    pub fn bytes_in_flight(&self) -> usize {
        self.rtx.iter().map(|s| s.data.len()).sum()
    }

    /// True when the peer has acknowledged everything we sent so far and
    /// our send queue is empty.
    pub fn send_drained(&self) -> bool {
        self.send_buf.is_empty() && self.rtx.is_empty()
    }

    fn log(&mut self, now: SimTime, event: SocketEvent) {
        self.events.push(LoggedEvent { at: now, event });
    }

    fn enter_closed(&mut self, _now: Option<SimTime>) {
        self.state = TcpState::Closed;
        self.rtx.clear();
        self.send_buf.clear();
        self.timer_gen += 1;
        self.timer_armed = false;
    }

    fn fin_acked(&self, ack: u32) -> bool {
        self.fin_seq
            .map(|fs| seq::le(fs.wrapping_add(1), ack))
            .unwrap_or(false)
    }

    /// Handle an inbound segment addressed to this connection.
    pub fn on_segment(&mut self, h: &TcpHeader, payload: &[u8], now: SimTime) {
        if self.state == TcpState::Closed {
            return;
        }

        // --- RST processing -------------------------------------------------
        if h.flags.contains(TcpFlags::RST) {
            let acceptable = match self.state {
                // Before synchronization a RST is believable only when it
                // acknowledges our SYN.
                TcpState::SynSent => h.flags.contains(TcpFlags::ACK) && h.ack == self.snd_nxt,
                _ => {
                    // Accept RSTs in a generous window around rcv_nxt: the
                    // middleboxes forge plausible but not always exact
                    // sequence numbers.
                    seq::in_range(
                        h.seq,
                        self.rcv_nxt.wrapping_sub(4096),
                        self.rcv_nxt.wrapping_add(65536),
                    )
                }
            };
            if acceptable {
                self.log(now, SocketEvent::Reset);
                self.enter_closed(Some(now));
            }
            return;
        }

        // --- SYN processing -------------------------------------------------
        if h.flags.contains(TcpFlags::SYN) {
            match self.state {
                TcpState::SynSent if h.flags.contains(TcpFlags::ACK) => {
                    if h.ack != self.iss.wrapping_add(1) {
                        return; // bogus SYN-ACK
                    }
                    self.irs = h.seq;
                    self.rcv_nxt = h.seq.wrapping_add(1);
                    self.snd_una = h.ack;
                    self.rtx.retain(|s| !s.syn);
                    if let Some(mss) = h.mss {
                        self.mss = self.mss.min(usize::from(mss));
                    }
                    self.state = TcpState::Established;
                    self.pending_ack = true;
                    self.rtx_count = 0;
                    self.timer_gen += 1;
                    self.timer_armed = false;
                    self.log(now, SocketEvent::Established);
                }
                TcpState::SynRcvd => {
                    // Duplicate SYN: let the queued SYN-ACK retransmit.
                    self.pending_ack = false;
                }
                _ => {
                    // SYN on a synchronized connection: acknowledge and
                    // otherwise ignore (challenge-ACK style).
                    self.pending_ack = true;
                }
            }
            return;
        }

        // --- ACK processing -------------------------------------------------
        if h.flags.contains(TcpFlags::ACK) {
            self.process_ack(h.ack, now);
        } else if self.state == TcpState::SynSent {
            return; // only SYN/RST are meaningful before synchronization
        }
        if self.state == TcpState::Closed {
            return; // LastAck completion
        }

        // --- Data processing ------------------------------------------------
        let seg_len = payload.len();
        if seg_len > 0 {
            let receivable = matches!(
                self.state,
                TcpState::Established | TcpState::FinWait1 | TcpState::FinWait2
            );
            if receivable {
                if h.seq == self.rcv_nxt {
                    self.recv_buf.extend_from_slice(payload);
                    self.rcv_nxt = self.rcv_nxt.wrapping_add(seg_len as u32);
                    self.pending_ack = true;
                    self.log(now, SocketEvent::Data { len: seg_len });
                } else if seq::lt(h.seq, self.rcv_nxt)
                    && seq::lt(self.rcv_nxt, h.seq.wrapping_add(seg_len as u32))
                {
                    // Overlapping retransmission: take the new suffix.
                    let skip = self.rcv_nxt.wrapping_sub(h.seq) as usize;
                    let fresh = &payload[skip..];
                    self.recv_buf.extend_from_slice(fresh);
                    self.rcv_nxt = self.rcv_nxt.wrapping_add(fresh.len() as u32);
                    self.pending_ack = true;
                    self.log(now, SocketEvent::Data { len: fresh.len() });
                } else {
                    // Out of order or stale duplicate: drop, re-ACK.
                    self.pending_ack = true;
                }
            } else {
                self.pending_ack = true;
            }
        }

        // --- FIN processing -------------------------------------------------
        if h.flags.contains(TcpFlags::FIN) {
            let fin_pos = h.seq.wrapping_add(seg_len as u32);
            if fin_pos == self.rcv_nxt && self.state.is_synchronized() {
                self.rcv_nxt = self.rcv_nxt.wrapping_add(1);
                self.pending_ack = true;
                self.log(now, SocketEvent::PeerFin);
                match self.state {
                    TcpState::Established => {
                        self.state = TcpState::CloseWait;
                        if self.auto_close_on_fin {
                            self.fin_queued = true;
                        }
                    }
                    TcpState::FinWait1 => {
                        // Whether we advance to TimeWait or Closing depends
                        // on whether our FIN was acknowledged by this
                        // segment (already processed above).
                        if self.fin_acked(self.snd_una) {
                            self.state = TcpState::TimeWait;
                        } else {
                            self.state = TcpState::Closing;
                        }
                    }
                    TcpState::FinWait2 => self.state = TcpState::TimeWait,
                    _ => {}
                }
            } else if self.state.is_synchronized() {
                self.pending_ack = true; // duplicate FIN
            }
        }
    }

    fn process_ack(&mut self, ack: u32, now: SimTime) {
        if !seq::lt(self.snd_una, ack) {
            return; // duplicate or old ACK
        }
        if seq::lt(self.snd_nxt, ack) {
            self.pending_ack = true; // acks data we never sent
            return;
        }
        self.snd_una = ack;
        while let Some(front) = self.rtx.front_mut() {
            if seq::le(front.end_seq(), ack) {
                self.rtx.pop_front();
                continue;
            }
            // Partial ACK: trim the acknowledged prefix off the front
            // segment (data only; SYN/FIN are atomic).
            if !front.syn && !front.fin && seq::lt(front.seq, ack) {
                let skip = ack.wrapping_sub(front.seq) as usize;
                if skip < front.data.len() {
                    front.data = front.data.slice(skip..);
                    front.seq = ack;
                }
            }
            break;
        }
        self.rtx_count = 0;
        self.timer_gen += 1;
        self.timer_armed = false;

        match self.state {
            TcpState::SynRcvd if seq::le(self.iss.wrapping_add(1), ack) => {
                self.state = TcpState::Established;
                self.log(now, SocketEvent::Established);
            }
            TcpState::FinWait1 if self.fin_acked(ack) => self.state = TcpState::FinWait2,
            TcpState::Closing if self.fin_acked(ack) => self.state = TcpState::TimeWait,
            TcpState::LastAck if self.fin_acked(ack) => {
                self.log(now, SocketEvent::Closed);
                self.enter_closed(Some(now));
            }
            _ => {}
        }
    }

    /// Retransmission timer fired (host verified the generation).
    pub fn on_retransmit_timeout(&mut self, now: SimTime) {
        if self.rtx.is_empty() || self.state == TcpState::Closed {
            return;
        }
        let limit = if self.rtx.front().map(|s| s.syn).unwrap_or(false) {
            SYN_RETRIES
        } else {
            DATA_RETRIES
        };
        if self.rtx_count >= limit {
            self.log(now, SocketEvent::TimedOut);
            // A host that gives up on an unresponsive peer tears the
            // connection down with a RST — the paper observes exactly this
            // from clients whose FIN handshake is black-holed by an
            // interceptive middlebox.
            self.rst_pending = true;
            self.enter_closed(Some(now));
            return;
        }
        self.rtx_count += 1;
        self.retransmit_now = true;
        self.timer_armed = false;
    }

    /// TIME-WAIT expired (host verified the generation).
    pub fn on_time_wait_timeout(&mut self, now: SimTime) {
        if self.state == TcpState::TimeWait {
            self.log(now, SocketEvent::Closed);
            self.enter_closed(Some(now));
        }
    }

    /// Produce every segment the connection currently owes the wire, plus
    /// a timer request. Idempotent between events: a second call without
    /// intervening input yields nothing new.
    pub fn poll(&mut self, _now: SimTime) -> (Vec<(TcpHeader, Bytes)>, TimerAsk) {
        let mut out = Vec::new();

        if self.rst_pending {
            self.rst_pending = false;
            let mut h = TcpHeader::new(self.local.1, self.remote.1, TcpFlags::RST | TcpFlags::ACK);
            h.seq = self.snd_nxt;
            h.ack = self.rcv_nxt;
            out.push((h, Bytes::new()));
            return (out, TimerAsk::None);
        }
        if self.state == TcpState::Closed {
            return (out, TimerAsk::None);
        }

        // Retransmit everything outstanding when the timer fired.
        if self.retransmit_now {
            self.retransmit_now = false;
            for seg in &self.rtx {
                out.push((self.header_for(seg), seg.data.clone()));
            }
            self.pending_ack = false;
        }

        // Initial SYN (active) / SYN-ACK (passive).
        if self.snd_nxt == self.iss {
            let syn = RtxSeg { seq: self.iss, data: Bytes::new(), syn: true, fin: false };
            out.push((self.header_for(&syn), Bytes::new()));
            self.rtx.push_back(syn);
            self.snd_nxt = self.iss.wrapping_add(1);
        }

        // Data segments.
        if self.state.can_send() || self.state == TcpState::SynRcvd {
            while !self.send_buf.is_empty() && self.state != TcpState::SynRcvd {
                let take = self.send_buf.len().min(self.mss);
                let chunk: Vec<u8> = self.send_buf.drain(..take).collect();
                let seg = RtxSeg { seq: self.snd_nxt, data: Bytes::from(chunk), syn: false, fin: false };
                out.push((self.header_for(&seg), seg.data.clone()));
                self.snd_nxt = self.snd_nxt.wrapping_add(take as u32);
                self.rtx.push_back(seg);
                self.pending_ack = false;
            }
        }

        // FIN.
        if self.fin_queued
            && self.fin_seq.is_none()
            && self.send_buf.is_empty()
            && matches!(self.state, TcpState::Established | TcpState::CloseWait)
        {
            let seg = RtxSeg { seq: self.snd_nxt, data: Bytes::new(), syn: false, fin: true };
            out.push((self.header_for(&seg), Bytes::new()));
            self.fin_seq = Some(self.snd_nxt);
            self.snd_nxt = self.snd_nxt.wrapping_add(1);
            self.rtx.push_back(seg);
            self.pending_ack = false;
            self.state = match self.state {
                TcpState::Established => TcpState::FinWait1,
                TcpState::CloseWait => TcpState::LastAck,
                s => s,
            };
        }

        // Bare ACK if still owed.
        if self.pending_ack {
            self.pending_ack = false;
            let mut h = TcpHeader::new(self.local.1, self.remote.1, TcpFlags::ACK);
            h.seq = self.snd_nxt;
            h.ack = self.rcv_nxt;
            out.push((h, Bytes::new()));
        }

        // Timer request.
        let ask = if self.state == TcpState::TimeWait {
            if !self.timer_armed {
                self.timer_armed = true;
                self.timer_gen += 1;
                TimerAsk::TimeWait { ms: TIME_WAIT_MS, gen: self.timer_gen }
            } else {
                TimerAsk::None
            }
        } else if !self.rtx.is_empty() && !self.timer_armed {
            self.timer_armed = true;
            let ms = RTO_BASE_MS << self.rtx_count.min(6);
            TimerAsk::Retransmit { ms, gen: self.timer_gen }
        } else {
            TimerAsk::None
        };
        (out, ask)
    }

    fn header_for(&self, seg: &RtxSeg) -> TcpHeader {
        let mut flags = TcpFlags::empty();
        let mut mss = None;
        if seg.syn {
            flags = flags | TcpFlags::SYN;
            mss = Some(self.mss as u16);
            if self.state == TcpState::SynRcvd {
                flags = flags | TcpFlags::ACK;
            }
        } else {
            flags = flags | TcpFlags::ACK;
        }
        if seg.fin {
            flags = flags | TcpFlags::FIN;
        }
        if !seg.data.is_empty() {
            flags = flags | TcpFlags::PSH;
        }
        let mut h = TcpHeader::new(self.local.1, self.remote.1, flags);
        h.seq = seg.seq;
        h.ack = if self.state == TcpState::SynSent && seg.syn { 0 } else { self.rcv_nxt };
        h.mss = mss;
        h
    }

    /// Current receive-side next expected sequence number (used by raw
    /// probe tooling to craft in-window packets).
    pub fn rcv_nxt(&self) -> u32 {
        self.rcv_nxt
    }

    /// Next sequence number we would send.
    pub fn snd_nxt(&self) -> u32 {
        self.snd_nxt
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const B_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

    fn t(ms: u64) -> SimTime {
        SimTime(ms * 1000)
    }

    fn pair() -> (Tcb, Tcb) {
        let a = Tcb::connect((A_IP, 4000), (B_IP, 80), 1000, t(0));
        // b is created on SYN arrival by the host; tests do it manually.
        let b_placeholder = Tcb::connect((B_IP, 80), (A_IP, 4000), 9000, t(0));
        (a, b_placeholder)
    }

    /// Shuttle segments between two TCBs until both are quiescent.
    fn pump(a: &mut Tcb, b: &mut Tcb, now: SimTime) {
        for _ in 0..64 {
            let (from_a, _) = a.poll(now);
            let (from_b, _) = b.poll(now);
            if from_a.is_empty() && from_b.is_empty() {
                return;
            }
            for (h, p) in from_a {
                b.on_segment(&h, &p, now);
            }
            for (h, p) in from_b {
                a.on_segment(&h, &p, now);
            }
        }
        panic!("pump did not quiesce");
    }

    /// Full client/server setup through the handshake.
    fn established() -> (Tcb, Tcb) {
        let (mut a, _) = pair();
        let (syn_out, _) = a.poll(t(0));
        assert_eq!(syn_out.len(), 1);
        let (syn, _) = &syn_out[0];
        assert!(syn.flags.contains(TcpFlags::SYN));
        let mut b = Tcb::accept((B_IP, 80), (A_IP, 4000), 9000, syn, t(0));
        pump(&mut a, &mut b, t(1));
        assert_eq!(a.state, TcpState::Established);
        assert_eq!(b.state, TcpState::Established);
        (a, b)
    }

    #[test]
    fn three_way_handshake_establishes_both_ends() {
        let (a, b) = established();
        assert!(a.events.iter().any(|e| e.event == SocketEvent::Established));
        assert!(b.events.iter().any(|e| e.event == SocketEvent::Established));
    }

    #[test]
    fn data_flows_both_directions() {
        let (mut a, mut b) = established();
        a.send(b"GET / HTTP/1.1\r\nHost: x\r\n\r\n");
        pump(&mut a, &mut b, t(2));
        assert_eq!(b.take_received(), b"GET / HTTP/1.1\r\nHost: x\r\n\r\n");
        b.send(b"HTTP/1.1 200 OK\r\n\r\nhello");
        pump(&mut a, &mut b, t(3));
        assert_eq!(a.take_received(), b"HTTP/1.1 200 OK\r\n\r\nhello");
        assert!(a.send_drained() && b.send_drained());
    }

    #[test]
    fn large_send_is_segmented_at_mss() {
        let (mut a, mut b) = established();
        let big = vec![0xabu8; DEFAULT_MSS * 3 + 17];
        a.send(&big);
        let (segs, _) = a.poll(t(2));
        assert_eq!(segs.len(), 4);
        assert!(segs[..3].iter().all(|(_, p)| p.len() == DEFAULT_MSS));
        assert_eq!(segs[3].1.len(), 17);
        for (h, p) in segs {
            b.on_segment(&h, &p, t(2));
        }
        assert_eq!(b.recv_buf, big);
    }

    #[test]
    fn orderly_close_reaches_closed_on_both_ends() {
        let (mut a, mut b) = established();
        a.close();
        pump(&mut a, &mut b, t(2));
        // b auto-closes on FIN (browser-like default), so both FINs fly.
        assert_eq!(b.state, TcpState::Closed);
        assert_eq!(a.state, TcpState::TimeWait);
        a.on_time_wait_timeout(t(20_000));
        assert_eq!(a.state, TcpState::Closed);
        assert!(a.events.iter().any(|e| e.event == SocketEvent::PeerFin));
        assert!(b.events.iter().any(|e| e.event == SocketEvent::PeerFin));
    }

    #[test]
    fn manual_close_without_auto() {
        let (mut a, mut b) = established();
        b.auto_close_on_fin = false;
        a.close();
        pump(&mut a, &mut b, t(2));
        assert_eq!(a.state, TcpState::FinWait2);
        assert_eq!(b.state, TcpState::CloseWait);
        // b can still send data in CloseWait.
        b.send(b"late data");
        pump(&mut a, &mut b, t(3));
        assert_eq!(a.take_received(), b"late data");
        b.close();
        pump(&mut a, &mut b, t(4));
        assert_eq!(b.state, TcpState::Closed);
        assert_eq!(a.state, TcpState::TimeWait);
    }

    #[test]
    fn forged_fin_with_payload_terminates_like_the_censor_does() {
        // A wiretap middlebox injects `200 OK` + FIN with the server's
        // address; the client must accept the data, see PeerFin, and
        // auto-close.
        let (mut a, _b) = established();
        let notif = b"HTTP/1.1 200 OK\r\n\r\n<html>blocked</html>";
        let mut h = TcpHeader::new(80, 4000, TcpFlags::ACK | TcpFlags::FIN | TcpFlags::PSH);
        h.seq = a.rcv_nxt();
        h.ack = a.snd_nxt();
        a.on_segment(&h, notif, t(5));
        assert_eq!(a.recv_buf, notif);
        assert!(a.events.iter().any(|e| e.event == SocketEvent::PeerFin));
        // Client responds with its own FIN (auto-close), entering LastAck.
        let (out, _) = a.poll(t(5));
        assert!(out.iter().any(|(h, _)| h.flags.contains(TcpFlags::FIN)));
        assert_eq!(a.state, TcpState::LastAck);
    }

    #[test]
    fn rst_tears_down_connection() {
        let (mut a, _b) = established();
        let mut h = TcpHeader::new(80, 4000, TcpFlags::RST);
        h.seq = a.rcv_nxt();
        a.on_segment(&h, b"", t(5));
        assert_eq!(a.state, TcpState::Closed);
        assert!(a.events.iter().any(|e| e.event == SocketEvent::Reset));
    }

    #[test]
    fn rst_with_wildly_wrong_seq_is_ignored() {
        let (mut a, _b) = established();
        let mut h = TcpHeader::new(80, 4000, TcpFlags::RST);
        h.seq = a.rcv_nxt().wrapping_add(1_000_000);
        a.on_segment(&h, b"", t(5));
        assert_eq!(a.state, TcpState::Established);
    }

    #[test]
    fn out_of_order_data_is_dropped_and_reacked() {
        let (mut a, _b) = established();
        let mut h = TcpHeader::new(80, 4000, TcpFlags::ACK | TcpFlags::PSH);
        h.seq = a.rcv_nxt().wrapping_add(100); // a gap
        h.ack = a.snd_nxt();
        a.on_segment(&h, b"future data", t(5));
        assert!(a.recv_buf.is_empty());
        let (out, _) = a.poll(t(5));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0.ack, a.rcv_nxt());
    }

    #[test]
    fn overlapping_retransmission_takes_only_fresh_suffix() {
        let (mut a, _b) = established();
        let start = a.rcv_nxt();
        let mut h = TcpHeader::new(80, 4000, TcpFlags::ACK | TcpFlags::PSH);
        h.seq = start;
        h.ack = a.snd_nxt();
        a.on_segment(&h, b"hello ", t(5));
        // Retransmission covering old + new bytes.
        let mut h2 = h.clone();
        h2.seq = start;
        a.on_segment(&h2, b"hello world", t(6));
        assert_eq!(a.recv_buf, b"hello world");
    }

    #[test]
    fn syn_retransmission_then_timeout_gives_up_with_rst() {
        let (mut a, _) = pair();
        let (_, ask) = a.poll(t(0));
        let TimerAsk::Retransmit { gen, .. } = ask else { panic!("want rtx timer") };
        assert_eq!(gen, a.timer_gen);
        for i in 0..=SYN_RETRIES {
            a.on_retransmit_timeout(t(1000 * u64::from(i + 1)));
            let _ = a.poll(t(1000 * u64::from(i + 1)));
        }
        assert_eq!(a.state, TcpState::Closed);
        assert!(a.events.iter().any(|e| e.event == SocketEvent::TimedOut));
    }

    #[test]
    fn data_retransmits_until_acked() {
        let (mut a, mut b) = established();
        a.send(b"lost once");
        let (segs, _) = a.poll(t(2));
        assert_eq!(segs.len(), 1);
        // Segment lost; timer fires.
        a.on_retransmit_timeout(t(500));
        let (segs, _) = a.poll(t(500));
        assert_eq!(segs.len(), 1, "retransmission of the lost segment");
        let (h, p) = &segs[0];
        b.on_segment(h, p, t(501));
        assert_eq!(b.recv_buf, b"lost once");
        pump(&mut a, &mut b, t(502));
        assert!(a.send_drained());
    }

    #[test]
    fn blackholed_fin_times_out_and_emits_rst() {
        // The interceptive-middlebox scenario: our FIN handshake is
        // black-holed; retransmissions exhaust; the TCB aborts with RST.
        let (mut a, mut b) = established();
        a.close();
        let _ = a.poll(t(2)); // FIN leaves, never answered
        assert_eq!(a.state, TcpState::FinWait1);
        let mut now = 2;
        for _ in 0..=DATA_RETRIES {
            now += 1000;
            a.on_retransmit_timeout(t(now));
            let _ = a.poll(t(now));
        }
        assert_eq!(a.state, TcpState::Closed);
        // The final poll emitted a RST.
        a.rst_pending = false; // already polled inside loop
        assert!(a.events.iter().any(|e| e.event == SocketEvent::TimedOut));
        // b never heard anything past the handshake.
        assert_eq!(b.state, TcpState::Established);
        assert!(b.take_received().is_empty());
    }

    #[test]
    fn abort_emits_rst_once() {
        let (mut a, _b) = established();
        a.abort();
        let (out, _) = a.poll(t(3));
        assert_eq!(out.len(), 1);
        assert!(out[0].0.flags.contains(TcpFlags::RST));
        let (out2, _) = a.poll(t(3));
        assert!(out2.is_empty());
        assert_eq!(a.state, TcpState::Closed);
    }

    #[test]
    fn poll_is_idempotent_when_quiescent() {
        let (mut a, mut b) = established();
        let (out_a, _) = a.poll(t(9));
        let (out_b, _) = b.poll(t(9));
        assert!(out_a.is_empty());
        assert!(out_b.is_empty());
    }

    #[test]
    fn simultaneous_close_passes_through_closing() {
        let (mut a, mut b) = established();
        b.auto_close_on_fin = false;
        a.close();
        b.close();
        // Exchange FINs "simultaneously": poll both before delivering.
        let (fa, _) = a.poll(t(2));
        let (fb, _) = b.poll(t(2));
        for (h, p) in fb {
            a.on_segment(&h, &p, t(2));
        }
        for (h, p) in fa {
            b.on_segment(&h, &p, t(2));
        }
        pump(&mut a, &mut b, t(3));
        assert_eq!(a.state, TcpState::TimeWait);
        assert_eq!(b.state, TcpState::TimeWait);
    }

    #[test]
    fn mss_is_negotiated_downward() {
        let (mut a, _) = pair();
        let (syn_out, _) = a.poll(t(0));
        let (mut syn, _) = syn_out[0].clone();
        syn.mss = Some(500);
        let b = Tcb::accept((B_IP, 80), (A_IP, 4000), 9000, &syn, t(0));
        assert_eq!(b.mss, 500);
    }

    #[test]
    fn events_carry_timestamps() {
        let (a, _) = established();
        let est = a.events.iter().find(|e| e.event == SocketEvent::Established).unwrap();
        assert!(est.at >= t(0));
    }
}
