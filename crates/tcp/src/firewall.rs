//! A client-side inbound packet filter — the `iptables` stand-in.
//!
//! Section 5 of the paper evades wiretap middleboxes by dropping, at the
//! client, injected packets with FIN or RST set (keyed on Airtel's fixed
//! IP-Identifier 242, or on the blocked site's address for middleboxes
//! with variable IP-ID). This module is that mechanism.

use std::net::Ipv4Addr;

use lucent_packet::{Packet, TcpFlags, Transport};

/// What to do with a matching packet. (Only `Drop` exists today; the enum
/// leaves room for logging/reject semantics.)
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FilterAction {
    /// Silently discard the packet before the stack sees it.
    Drop,
}

/// One match rule. All present fields must match; absent fields match
/// anything. `flags_any` non-empty restricts the rule to TCP packets
/// carrying at least one of those flags.
#[derive(Debug, Clone)]
pub struct FilterRule {
    /// Match the IP source address.
    pub src: Option<Ipv4Addr>,
    /// Match TCP packets with any of these flags (empty = no flag
    /// requirement, still TCP-only if `tcp_only`).
    pub flags_any: TcpFlags,
    /// Match the IP identification field (Airtel's 242).
    pub ip_id: Option<u16>,
    /// Action on match.
    pub action: FilterAction,
}

impl FilterRule {
    /// Drop TCP packets from `src` that carry FIN or RST — the generic
    /// wiretap-middlebox evasion rule.
    pub fn drop_fin_rst_from(src: Ipv4Addr) -> Self {
        FilterRule {
            src: Some(src),
            flags_any: TcpFlags::FIN | TcpFlags::RST,
            ip_id: None,
            action: FilterAction::Drop,
        }
    }

    /// Drop FIN/RST packets whose IP-Identifier equals `id` — the Airtel
    /// rule (id 242) that spares legitimate server FINs.
    pub fn drop_fin_rst_with_ip_id(id: u16) -> Self {
        FilterRule {
            src: None,
            flags_any: TcpFlags::FIN | TcpFlags::RST,
            ip_id: Some(id),
            action: FilterAction::Drop,
        }
    }

    fn matches(&self, pkt: &Packet) -> bool {
        if let Some(src) = self.src {
            if pkt.src() != src {
                return false;
            }
        }
        if let Some(id) = self.ip_id {
            if pkt.ip.identification != id {
                return false;
            }
        }
        if self.flags_any.0 != 0 {
            match &pkt.transport {
                Transport::Tcp(h, _) if h.flags.intersects(self.flags_any) => {}
                _ => return false,
            }
        }
        true
    }
}

/// An ordered rule list applied to inbound packets.
#[derive(Debug, Default)]
pub struct Firewall {
    rules: Vec<FilterRule>,
    /// Packets dropped so far.
    pub dropped: u64,
}

impl Firewall {
    /// Empty firewall (accepts everything).
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a rule.
    pub fn add(&mut self, rule: FilterRule) {
        self.rules.push(rule);
    }

    /// Remove all rules.
    pub fn clear(&mut self) {
        self.rules.clear();
    }

    /// Number of installed rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True when no rules are installed.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Evaluate a packet; returns the action of the first matching rule.
    pub fn check(&mut self, pkt: &Packet) -> Option<FilterAction> {
        for rule in &self.rules {
            if rule.matches(pkt) {
                self.dropped += 1;
                return Some(rule.action);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lucent_packet::{TcpHeader, UdpHeader};

    const MB: Ipv4Addr = Ipv4Addr::new(203, 0, 113, 80);
    const OTHER: Ipv4Addr = Ipv4Addr::new(198, 51, 100, 1);
    const ME: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 5);

    fn tcp_pkt(src: Ipv4Addr, flags: TcpFlags, ip_id: u16) -> Packet {
        Packet::tcp(src, ME, TcpHeader::new(80, 4000, flags), &b""[..]).with_ip_id(ip_id)
    }

    #[test]
    fn drop_fin_rst_from_source() {
        let mut fw = Firewall::new();
        fw.add(FilterRule::drop_fin_rst_from(MB));
        assert_eq!(fw.check(&tcp_pkt(MB, TcpFlags::FIN | TcpFlags::ACK, 7)), Some(FilterAction::Drop));
        assert_eq!(fw.check(&tcp_pkt(MB, TcpFlags::RST, 7)), Some(FilterAction::Drop));
        // Data from the same source passes — that's the whole point: the
        // real response still gets through.
        assert_eq!(fw.check(&tcp_pkt(MB, TcpFlags::ACK | TcpFlags::PSH, 7)), None);
        // FIN from another host passes.
        assert_eq!(fw.check(&tcp_pkt(OTHER, TcpFlags::FIN, 7)), None);
        assert_eq!(fw.dropped, 2);
    }

    #[test]
    fn airtel_ip_id_rule_spares_legitimate_fins() {
        let mut fw = Firewall::new();
        fw.add(FilterRule::drop_fin_rst_with_ip_id(242));
        // Middlebox packet: FIN with IP-ID 242 → dropped.
        assert_eq!(fw.check(&tcp_pkt(MB, TcpFlags::FIN | TcpFlags::ACK, 242)), Some(FilterAction::Drop));
        // Legitimate server FIN with ordinary IP-ID → passes.
        assert_eq!(fw.check(&tcp_pkt(MB, TcpFlags::FIN | TcpFlags::ACK, 31337)), None);
    }

    #[test]
    fn flag_rules_do_not_match_udp() {
        let mut fw = Firewall::new();
        fw.add(FilterRule::drop_fin_rst_with_ip_id(242));
        let udp = Packet::udp(MB, ME, UdpHeader::new(53, 5000), &b"x"[..]).with_ip_id(242);
        assert_eq!(fw.check(&udp), None);
    }

    #[test]
    fn clear_removes_rules() {
        let mut fw = Firewall::new();
        fw.add(FilterRule::drop_fin_rst_from(MB));
        assert_eq!(fw.len(), 1);
        fw.clear();
        assert!(fw.is_empty());
        assert_eq!(fw.check(&tcp_pkt(MB, TcpFlags::RST, 0)), None);
    }
}
