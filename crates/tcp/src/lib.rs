//! # lucent-tcp
//!
//! A TCP state machine and socket layer for the `lucent` simulator.
//!
//! The paper's findings all hinge on protocol-faithful endpoint behaviour:
//!
//! * a browser that receives a forged `200 OK + FIN` terminates the
//!   connection and discards the real response that arrives later,
//!   answering it with `RST`;
//! * a host answers segments for unknown connections with `RST`;
//! * middleboxes distinguish complete 3-way handshakes from bare SYNs;
//! * crafted probes need raw-socket control (arbitrary TTL, fudged bytes)
//!   *without* the kernel stack interfering.
//!
//! This crate implements all of that: a pure, unit-testable state machine
//! ([`tcb::Tcb`]), a host node ([`TcpHost`]) wiring sockets + listeners +
//! UDP + ICMP + raw sockets + a client-side packet filter (the `iptables`
//! stand-in used by the paper's evasion technique), and the small
//! [`SocketApp`] trait server applications implement.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod app;
pub mod firewall;
pub mod host;
pub mod socket;
pub mod tcb;

pub use app::{FixedResponder, SocketApp, SocketIo};
pub use firewall::{FilterAction, FilterRule, Firewall};
pub use host::{TcpHost, UdpApp, UdpDatagram, UdpIo};
pub use socket::{LoggedEvent, SocketEvent, SocketId, TcpState};
