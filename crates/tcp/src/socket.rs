//! Socket identifiers, connection states and the event log drivers poll.

use lucent_netsim::SimTime;

/// Index of a socket within one [`crate::TcpHost`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SocketId(pub u32);

/// TCP connection state (RFC 793 names).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TcpState {
    /// SYN sent, awaiting SYN-ACK.
    SynSent,
    /// SYN received (passive open), SYN-ACK sent.
    SynRcvd,
    /// Connection established.
    Established,
    /// Our FIN sent from Established, not yet acknowledged.
    FinWait1,
    /// Our FIN acknowledged; awaiting peer's FIN.
    FinWait2,
    /// Peer's FIN received while Established; we have not closed yet.
    CloseWait,
    /// Both FINs in flight; ours unacknowledged.
    Closing,
    /// Peer closed first and we sent our FIN.
    LastAck,
    /// Connection done; absorbing stray segments.
    TimeWait,
    /// Fully closed (or aborted).
    Closed,
}

impl TcpState {
    /// True for states in which the connection is usable for sending data.
    pub fn can_send(self) -> bool {
        matches!(self, TcpState::Established | TcpState::CloseWait)
    }

    /// True once the connection has been fully opened at some point.
    pub fn is_synchronized(self) -> bool {
        !matches!(self, TcpState::SynSent | TcpState::SynRcvd | TcpState::Closed)
    }
}

/// Things that happened on a socket, timestamped with virtual time.
///
/// The measurement harness reconstructs the paper's observations ("the
/// censorship notification arrived, then the connection died, then the
/// *real* response was answered with RST") from this log plus the pcap.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SocketEvent {
    /// Three-way handshake completed.
    Established,
    /// New bytes were appended to the receive buffer.
    Data {
        /// Number of bytes in this delivery.
        len: usize,
    },
    /// Peer's FIN arrived (orderly shutdown from the remote side).
    PeerFin,
    /// A RST arrived and the connection was torn down.
    Reset,
    /// Retransmissions were exhausted; the connection was aborted.
    TimedOut,
    /// The connection reached `Closed` through the normal FIN handshake.
    Closed,
}

/// A timestamped socket event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoggedEvent {
    /// When the event occurred.
    pub at: SimTime,
    /// What happened.
    pub event: SocketEvent,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn can_send_only_when_open_for_writing() {
        assert!(TcpState::Established.can_send());
        assert!(TcpState::CloseWait.can_send());
        for s in [
            TcpState::SynSent,
            TcpState::SynRcvd,
            TcpState::FinWait1,
            TcpState::FinWait2,
            TcpState::Closing,
            TcpState::LastAck,
            TcpState::TimeWait,
            TcpState::Closed,
        ] {
            assert!(!s.can_send(), "{s:?}");
        }
    }

    #[test]
    fn synchronized_states() {
        assert!(!TcpState::SynSent.is_synchronized());
        assert!(!TcpState::SynRcvd.is_synchronized());
        assert!(TcpState::Established.is_synchronized());
        assert!(TcpState::TimeWait.is_synchronized());
        assert!(!TcpState::Closed.is_synchronized());
    }
}
