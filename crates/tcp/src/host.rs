//! [`TcpHost`]: a single-homed end host node combining the TCP socket
//! table, listeners, UDP, ICMP plumbing, raw sockets and the client-side
//! firewall.

use std::any::Any;
use std::collections::{BTreeMap, BTreeSet};
use std::net::Ipv4Addr;

use lucent_obs::{Level, Telemetry};
use lucent_support::{Bytes, ToJson};
use lucent_netsim::SimRng;

use lucent_netsim::{IfaceId, Node, NodeCtx, SimTime, WAKE};
use lucent_packet::tcp::{TcpFlags, TcpHeader};
use lucent_packet::{IcmpMessage, Packet, Transport, UdpHeader};

use crate::app::{SocketApp, SocketIo};
use crate::firewall::Firewall;
use crate::socket::{LoggedEvent, SocketId, TcpState};
use crate::tcb::{Tcb, TimerAsk};

/// A received UDP datagram, queued for a driver-bound port.
#[derive(Debug, Clone)]
pub struct UdpDatagram {
    /// Arrival time.
    pub at: SimTime,
    /// Sender address.
    pub src: Ipv4Addr,
    /// Sender port.
    pub src_port: u16,
    /// Local destination port.
    pub dst_port: u16,
    /// Payload bytes.
    pub payload: Bytes,
}

/// Reply channel handed to [`UdpApp`] callbacks.
pub struct UdpIo {
    /// (destination address, destination port, payload) triples to send
    /// when the callback returns.
    pub out: Vec<(Ipv4Addr, u16, Vec<u8>)>,
    /// Virtual time of the datagram being handled.
    pub now: SimTime,
    /// Telemetry handle for the app to count verdicts and emit events.
    pub obs: Telemetry,
}

/// An in-node UDP service (DNS resolvers implement this).
pub trait UdpApp {
    /// Handle one datagram; queue replies on `io`.
    fn on_datagram(&mut self, io: &mut UdpIo, src: Ipv4Addr, src_port: u16, payload: &[u8]);
}

const TIMER_KIND_RTX: u64 = 1;
const TIMER_KIND_TIMEWAIT: u64 = 2;

fn encode_timer(kind: u64, socket: SocketId, gen: u64) -> u64 {
    // 8 bits kind | 24 bits socket | 32 bits generation. The socket width
    // must match `decode_timer`; a host would need 16.7M live sockets to
    // overflow it, which the assert turns from silent misdelivery into a
    // loud failure.
    debug_assert!(socket.0 < (1 << 24), "socket index exceeds timer-token width");
    (kind << 56) | (u64::from(socket.0 & 0x00ff_ffff) << 32) | (gen & 0xffff_ffff)
}

fn decode_timer(token: u64) -> (u64, SocketId, u64) {
    (token >> 56, SocketId(((token >> 32) & 0x00ff_ffff) as u32), token & 0xffff_ffff)
}

/// A general-purpose end host.
pub struct TcpHost {
    /// The host's address.
    pub ip: Ipv4Addr,
    label: String,
    rng: SimRng,
    sockets: Vec<Option<Tcb>>,
    apps: BTreeMap<SocketId, Box<dyn SocketApp>>,
    dispatched: BTreeMap<SocketId, usize>,
    /// (local port, remote ip, remote port) → socket.
    tuples: BTreeMap<(u16, Ipv4Addr, u16), SocketId>,
    listeners: BTreeMap<u16, Box<dyn Fn() -> Box<dyn SocketApp>>>,
    next_port: u16,
    /// Inbound packet filter (the `iptables` model).
    ///
    /// Note on lifetime: closed sockets are retained (with drained
    /// buffers) so drivers can inspect their event logs after the fact;
    /// a host's memory therefore grows with its total connection count,
    /// which is bounded by the experiment driving it.
    pub firewall: Firewall,
    pcap_enabled: bool,
    pcap: Vec<(SimTime, Packet)>,
    raw_ports: BTreeSet<u16>,
    raw_tcp_inbox: Vec<(SimTime, Packet)>,
    raw_outbox: Vec<Packet>,
    udp_ports: BTreeSet<u16>,
    udp_inbox: Vec<UdpDatagram>,
    udp_apps: BTreeMap<u16, Box<dyn UdpApp>>,
    outbox: Vec<Packet>,
    icmp_inbox: Vec<(SimTime, Packet)>,
    /// TTL stamped on packets this host originates.
    pub default_ttl: u8,
}

impl TcpHost {
    /// A host with the given address; `seed` drives ISS generation.
    pub fn new(ip: Ipv4Addr, label: impl Into<String>, seed: u64) -> Self {
        TcpHost {
            ip,
            label: label.into(),
            rng: SimRng::seed_from_u64(seed ^ u64::from(u32::from(ip))),
            sockets: Vec::new(),
            apps: BTreeMap::new(),
            dispatched: BTreeMap::new(),
            tuples: BTreeMap::new(),
            listeners: BTreeMap::new(),
            next_port: 40_000,
            firewall: Firewall::new(),
            pcap_enabled: false,
            pcap: Vec::new(),
            raw_ports: BTreeSet::new(),
            raw_tcp_inbox: Vec::new(),
            raw_outbox: Vec::new(),
            udp_ports: BTreeSet::new(),
            udp_inbox: Vec::new(),
            udp_apps: BTreeMap::new(),
            outbox: Vec::new(),
            icmp_inbox: Vec::new(),
            default_ttl: 64,
        }
    }

    // ------------------------------------------------------------------
    // Driver API: TCP
    // ------------------------------------------------------------------

    /// Allocate an ephemeral local port.
    pub fn alloc_port(&mut self) -> u16 {
        let p = self.next_port;
        self.next_port = self.next_port.checked_add(1).unwrap_or(40_000);
        p
    }

    /// Begin an active open to `(dst, dst_port)`. The SYN is sent on the
    /// next wake ([`lucent_netsim::Network::wake`]).
    pub fn connect(&mut self, dst: Ipv4Addr, dst_port: u16) -> SocketId {
        let port = self.alloc_port();
        self.connect_from(port, dst, dst_port)
    }

    /// Active open from a specific local port.
    pub fn connect_from(&mut self, local_port: u16, dst: Ipv4Addr, dst_port: u16) -> SocketId {
        let iss: u32 = self.rng.gen();
        let tcb = Tcb::connect((self.ip, local_port), (dst, dst_port), iss, SimTime::ZERO);
        let id = SocketId(self.sockets.len() as u32);
        self.sockets.push(Some(tcb));
        self.tuples.insert((local_port, dst, dst_port), id);
        id
    }

    /// Install a listener whose factory creates one app per accepted
    /// connection.
    pub fn listen(&mut self, port: u16, factory: impl Fn() -> Box<dyn SocketApp> + 'static) {
        self.listeners.insert(port, Box::new(factory));
    }

    /// Remove a listener.
    pub fn unlisten(&mut self, port: u16) {
        self.listeners.remove(&port);
    }

    /// True if a listener is installed on `port`.
    pub fn is_listening(&self, port: u16) -> bool {
        self.listeners.contains_key(&port)
    }

    /// Queue bytes on a socket (flushed on next wake or inbound event).
    pub fn send(&mut self, id: SocketId, bytes: &[u8]) {
        if let Some(tcb) = self.tcb_mut(id) {
            tcb.send(bytes);
        }
    }

    /// Orderly close.
    pub fn close(&mut self, id: SocketId) {
        if let Some(tcb) = self.tcb_mut(id) {
            tcb.close();
        }
    }

    /// Abort with RST.
    pub fn abort(&mut self, id: SocketId) {
        if let Some(tcb) = self.tcb_mut(id) {
            tcb.abort();
        }
    }

    /// Disable the browser-like auto-close-on-FIN for a socket.
    pub fn set_auto_close(&mut self, id: SocketId, auto: bool) {
        if let Some(tcb) = self.tcb_mut(id) {
            tcb.auto_close_on_fin = auto;
        }
    }

    /// Connection state (Closed if the socket never existed).
    pub fn state(&self, id: SocketId) -> TcpState {
        self.tcb(id).map(|t| t.state).unwrap_or(TcpState::Closed)
    }

    /// The socket's event log.
    pub fn events(&self, id: SocketId) -> &[LoggedEvent] {
        self.tcb(id).map(|t| t.events.as_slice()).unwrap_or(&[])
    }

    /// Received bytes so far (without draining).
    pub fn received(&self, id: SocketId) -> &[u8] {
        self.tcb(id).map(|t| t.recv_buf.as_slice()).unwrap_or(&[])
    }

    /// Drain received bytes.
    pub fn take_received(&mut self, id: SocketId) -> Vec<u8> {
        self.tcb_mut(id).map(|t| t.take_received()).unwrap_or_default()
    }

    /// Local (ip, port) of a socket.
    pub fn local_addr(&self, id: SocketId) -> Option<(Ipv4Addr, u16)> {
        self.tcb(id).map(|t| t.local)
    }

    /// Current send/receive sequence cursors `(snd_nxt, rcv_nxt)` — raw
    /// probe tooling uses these to craft in-window packets.
    pub fn seq_cursors(&self, id: SocketId) -> Option<(u32, u32)> {
        self.tcb(id).map(|t| (t.snd_nxt(), t.rcv_nxt()))
    }

    fn tcb(&self, id: SocketId) -> Option<&Tcb> {
        self.sockets.get(id.0 as usize).and_then(|s| s.as_ref())
    }

    fn tcb_mut(&mut self, id: SocketId) -> Option<&mut Tcb> {
        self.sockets.get_mut(id.0 as usize).and_then(|s| s.as_mut())
    }

    // ------------------------------------------------------------------
    // Driver API: pcap / raw / UDP / ICMP
    // ------------------------------------------------------------------

    /// Start capturing every inbound packet (pre-firewall, like tcpdump).
    pub fn enable_pcap(&mut self) {
        self.pcap_enabled = true;
    }

    /// Drain the capture.
    pub fn take_pcap(&mut self) -> Vec<(SimTime, Packet)> {
        std::mem::take(&mut self.pcap)
    }

    /// Stop capturing (and drop anything captured so far).
    pub fn disable_pcap(&mut self) {
        self.pcap_enabled = false;
        self.pcap.clear();
    }

    /// Claim a local TCP port for raw use: inbound segments to it bypass
    /// the stack (no RST generation) and queue in the raw inbox.
    pub fn raw_claim_port(&mut self, port: u16) {
        self.raw_ports.insert(port);
    }

    /// Release a raw port claim.
    pub fn raw_release_port(&mut self, port: u16) {
        self.raw_ports.remove(&port);
    }

    /// Drain raw-port TCP arrivals.
    pub fn raw_take_inbox(&mut self) -> Vec<(SimTime, Packet)> {
        std::mem::take(&mut self.raw_tcp_inbox)
    }

    /// Queue an arbitrary crafted packet for transmission on next wake.
    pub fn raw_send(&mut self, pkt: Packet) {
        self.raw_outbox.push(pkt);
    }

    /// Bind a UDP port for driver use.
    pub fn udp_bind(&mut self, port: u16) {
        self.udp_ports.insert(port);
    }

    /// Queue a UDP datagram for transmission on next wake.
    pub fn udp_send(&mut self, src_port: u16, dst: Ipv4Addr, dst_port: u16, payload: &[u8]) {
        let mut pkt = Packet::udp(self.ip, dst, UdpHeader::new(src_port, dst_port), payload.to_vec());
        pkt.ip.ttl = self.default_ttl;
        self.outbox.push(pkt);
    }

    /// Drain received datagrams on driver-bound ports.
    pub fn take_udp_inbox(&mut self) -> Vec<UdpDatagram> {
        std::mem::take(&mut self.udp_inbox)
    }

    /// Install an in-node UDP service on `port`.
    pub fn set_udp_app(&mut self, port: u16, app: Box<dyn UdpApp>) {
        self.udp_apps.insert(port, app);
    }

    /// Access an installed UDP app (for driver inspection), downcast by
    /// the caller.
    pub fn udp_app_mut(&mut self, port: u16) -> Option<&mut Box<dyn UdpApp>> {
        self.udp_apps.get_mut(&port)
    }

    /// Drain ICMP arrivals (time-exceeded, unreachable, echo replies).
    pub fn take_icmp_inbox(&mut self) -> Vec<(SimTime, Packet)> {
        std::mem::take(&mut self.icmp_inbox)
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    fn poll_socket(&mut self, ctx: &mut NodeCtx<'_>, id: SocketId) {
        let ip = self.ip;
        let ttl = self.default_ttl;
        let Some(tcb) = self.tcb_mut(id) else { return };
        let remote_ip = tcb.remote.0;
        let (segs, ask) = tcb.poll(ctx.now());
        for (h, payload) in segs {
            if h.flags.contains(TcpFlags::RST) {
                ctx.obs().counter_inc("tcp.rst_tx", ctx.label());
            }
            let mut pkt = Packet::tcp(ip, remote_ip, h, payload);
            pkt.ip.ttl = ttl;
            // Ordinary hosts stamp a varying IP-Identifier. Deriving it
            // from the sequence number keeps it deterministic; 242 is
            // avoided so the Airtel middlebox signature stays unique to
            // the middlebox.
            let mut id16 = (pkt.as_tcp().map(|(h, _)| h.seq).unwrap_or(0) & 0xffff) as u16;
            if id16 == 242 {
                id16 = 243;
            }
            pkt.ip.identification = id16;
            ctx.send(IfaceId::PRIMARY, pkt);
        }
        match ask {
            TimerAsk::None => {}
            TimerAsk::Retransmit { ms, gen } => {
                ctx.set_timer(
                    lucent_netsim::SimDuration::from_millis(ms),
                    encode_timer(TIMER_KIND_RTX, id, gen),
                );
            }
            TimerAsk::TimeWait { ms, gen } => {
                ctx.set_timer(
                    lucent_netsim::SimDuration::from_millis(ms),
                    encode_timer(TIMER_KIND_TIMEWAIT, id, gen),
                );
            }
        }
        // Unmap fully closed connections so late segments draw RSTs.
        let Some(tcb) = self.tcb(id) else { return };
        if tcb.state == TcpState::Closed {
            let key = (tcb.local.1, tcb.remote.0, tcb.remote.1);
            if self.tuples.get(&key) == Some(&id) {
                self.tuples.remove(&key);
            }
        }
    }

    fn dispatch_app_events(&mut self, ctx: &mut NodeCtx<'_>, id: SocketId) {
        let Some(mut app) = self.apps.remove(&id) else { return };
        let cursor = self.dispatched.entry(id).or_insert(0);
        let start = *cursor;
        let now = ctx.now();
        if let Some(tcb) = self.sockets.get_mut(id.0 as usize).and_then(|s| s.as_mut()) {
            let events: Vec<_> = tcb.events[start..].iter().map(|e| e.event.clone()).collect();
            let mut io = SocketIo { tcb, now };
            for ev in &events {
                app.on_event(&mut io, ev);
            }
        }
        if let Some(tcb) = self.tcb(id) {
            self.dispatched.insert(id, tcb.events.len());
        }
        self.apps.insert(id, app);
    }

    fn handle_tcp(&mut self, ctx: &mut NodeCtx<'_>, pkt: &Packet) {
        let Some((h, payload)) = pkt.as_tcp() else { return };
        if self.raw_ports.contains(&h.dst_port) {
            self.raw_tcp_inbox.push((ctx.now(), pkt.clone()));
            return;
        }
        if h.flags.contains(TcpFlags::RST) {
            ctx.obs().counter_inc("tcp.rst_rx", ctx.label());
        }
        let key = (h.dst_port, pkt.src(), h.src_port);
        if let Some(&id) = self.tuples.get(&key) {
            let now = ctx.now();
            if let Some(tcb) = self.tcb_mut(id) {
                let was = tcb.state;
                let buffered = tcb.recv_buf.len();
                tcb.on_segment(h, payload, now);
                // In-order payload the stack *accepted* — distinct from
                // bytes merely seen on the wire. Figure 3's "the server
                // never receives the GET" claim is asserted on this.
                let accepted = tcb.recv_buf.len().saturating_sub(buffered);
                if accepted > 0 {
                    ctx.obs().counter_add("tcp.payload_bytes_rx", ctx.label(), accepted as u64);
                }
                if was != TcpState::Established && tcb.state == TcpState::Established {
                    ctx.obs().counter_inc("tcp.established", ctx.label());
                }
                if was != tcb.state && ctx.obs().enabled("tcp", Level::Debug) {
                    let fields = vec![
                        ("host".to_string(), ctx.label().to_json()),
                        ("from".to_string(), format!("{was:?}").to_json()),
                        ("to".to_string(), format!("{:?}", tcb.state).to_json()),
                        ("port".to_string(), u64::from(h.dst_port).to_json()),
                    ];
                    ctx.obs().event(now.micros(), Level::Debug, "tcp", "state", fields);
                }
            }
            self.dispatch_app_events(ctx, id);
            self.poll_socket(ctx, id);
            // Apps may have queued more output in their callbacks.
            self.poll_socket(ctx, id);
            return;
        }
        // No connection. New SYN to a listening port?
        if h.flags.contains(TcpFlags::SYN) && !h.flags.contains(TcpFlags::ACK) {
            if let Some(factory) = self.listeners.get(&h.dst_port) {
                let app = factory();
                let iss: u32 = self.rng.gen();
                let tcb =
                    Tcb::accept((self.ip, h.dst_port), (pkt.src(), h.src_port), iss, h, ctx.now());
                let id = SocketId(self.sockets.len() as u32);
                self.sockets.push(Some(tcb));
                self.tuples.insert(key, id);
                self.apps.insert(id, app);
                self.dispatched.insert(id, 0);
                self.poll_socket(ctx, id); // emits the SYN-ACK
                return;
            }
        }
        // Otherwise: RST, per RFC 793 — this is the behaviour that makes a
        // client reject the *real* response arriving after a forged FIN
        // already closed the connection (Figure 4 of the paper).
        if !h.flags.contains(TcpFlags::RST) {
            let seg_len = payload.len() as u32
                + u32::from(h.flags.contains(TcpFlags::SYN))
                + u32::from(h.flags.contains(TcpFlags::FIN));
            let mut rst = if h.flags.contains(TcpFlags::ACK) {
                let mut r = TcpHeader::new(h.dst_port, h.src_port, TcpFlags::RST);
                r.seq = h.ack;
                r
            } else {
                let mut r = TcpHeader::new(h.dst_port, h.src_port, TcpFlags::RST | TcpFlags::ACK);
                r.ack = h.seq.wrapping_add(seg_len);
                r
            };
            rst.window = 0;
            ctx.obs().counter_inc("tcp.rst_tx", ctx.label());
            let mut out = Packet::tcp(self.ip, pkt.src(), rst, Bytes::new());
            out.ip.ttl = self.default_ttl;
            ctx.send(IfaceId::PRIMARY, out);
        }
    }

    fn handle_udp(&mut self, ctx: &mut NodeCtx<'_>, pkt: &Packet) {
        let Some((h, payload)) = pkt.as_udp() else { return };
        if let Some(mut app) = self.udp_apps.remove(&h.dst_port) {
            let mut io = UdpIo { out: Vec::new(), now: ctx.now(), obs: ctx.obs().clone() };
            app.on_datagram(&mut io, pkt.src(), h.src_port, payload);
            for (dst, dst_port, bytes) in io.out {
                let mut reply =
                    Packet::udp(self.ip, dst, UdpHeader::new(h.dst_port, dst_port), bytes);
                reply.ip.ttl = self.default_ttl;
                ctx.send(IfaceId::PRIMARY, reply);
            }
            self.udp_apps.insert(h.dst_port, app);
            return;
        }
        if self.udp_ports.contains(&h.dst_port) {
            self.udp_inbox.push(UdpDatagram {
                at: ctx.now(),
                src: pkt.src(),
                src_port: h.src_port,
                dst_port: h.dst_port,
                payload: payload.clone(),
            });
            return;
        }
        // Closed UDP port: ICMP port unreachable (what UDP traceroute
        // relies on when its probe finally reaches the destination).
        let msg = IcmpMessage::DestUnreachable { code: 3, original: pkt.icmp_quote() };
        let mut out = Packet::icmp(self.ip, pkt.src(), msg);
        out.ip.ttl = self.default_ttl;
        ctx.send(IfaceId::PRIMARY, out);
    }

    fn handle_icmp(&mut self, ctx: &mut NodeCtx<'_>, pkt: &Packet) {
        let Some(msg) = pkt.as_icmp() else { return };
        match msg {
            IcmpMessage::EchoRequest { ident, seq } => {
                let reply = IcmpMessage::EchoReply { ident: *ident, seq: *seq };
                let mut out = Packet::icmp(self.ip, pkt.src(), reply);
                out.ip.ttl = self.default_ttl;
                ctx.send(IfaceId::PRIMARY, out);
            }
            _ => self.icmp_inbox.push((ctx.now(), pkt.clone())),
        }
    }
}

impl Node for TcpHost {
    fn on_packet(&mut self, ctx: &mut NodeCtx<'_>, _iface: IfaceId, pkt: Packet) {
        if self.pcap_enabled {
            self.pcap.push((ctx.now(), pkt.clone()));
        }
        if self.firewall.check(&pkt).is_some() {
            ctx.trace_drop(&pkt, "firewall");
            return;
        }
        if pkt.dst() != self.ip {
            ctx.trace_drop(&pkt, "not-mine");
            return;
        }
        match pkt.transport {
            Transport::Tcp(..) => self.handle_tcp(ctx, &pkt),
            Transport::Udp(..) => self.handle_udp(ctx, &pkt),
            Transport::Icmp(..) => self.handle_icmp(ctx, &pkt),
        }
    }

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, token: u64) {
        if token == WAKE {
            for pkt in std::mem::take(&mut self.raw_outbox) {
                ctx.send(IfaceId::PRIMARY, pkt);
            }
            for pkt in std::mem::take(&mut self.outbox) {
                ctx.send(IfaceId::PRIMARY, pkt);
            }
            for i in 0..self.sockets.len() {
                let id = SocketId(i as u32);
                if self.tcb(id).is_some() {
                    self.poll_socket(ctx, id);
                }
            }
            return;
        }
        let (kind, id, gen) = decode_timer(token);
        let now = ctx.now();
        let Some(tcb) = self.tcb_mut(id) else { return };
        if tcb.timer_gen & 0xffff_ffff != gen {
            return; // stale timer
        }
        match kind {
            TIMER_KIND_RTX => {
                tcb.on_retransmit_timeout(now);
                ctx.obs().counter_inc("tcp.retransmissions", ctx.label());
            }
            TIMER_KIND_TIMEWAIT => tcb.on_time_wait_timeout(now),
            _ => return,
        }
        self.dispatch_app_events(ctx, id);
        self.poll_socket(ctx, id);
    }

    fn label(&self) -> &str {
        &self.label
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}
