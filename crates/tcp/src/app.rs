//! The [`SocketApp`] trait: in-node applications attached to sockets
//! (origin web servers, notification pages, test echoes). Driver-side
//! code (the measurement harness) does not use apps — it polls sockets
//! through [`crate::TcpHost`] accessors instead.

use std::net::Ipv4Addr;

use lucent_netsim::SimTime;

use crate::socket::{SocketEvent, TcpState};
use crate::tcb::Tcb;

/// Narrow, borrow-safe view of one socket handed to application
/// callbacks.
pub struct SocketIo<'a> {
    pub(crate) tcb: &'a mut Tcb,
    pub(crate) now: SimTime,
}

impl SocketIo<'_> {
    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Connection state.
    pub fn state(&self) -> TcpState {
        self.tcb.state
    }

    /// Peer address and port.
    pub fn peer(&self) -> (Ipv4Addr, u16) {
        self.tcb.remote
    }

    /// Local address and port.
    pub fn local(&self) -> (Ipv4Addr, u16) {
        self.tcb.local
    }

    /// Bytes received so far and not yet taken.
    pub fn received(&self) -> &[u8] {
        &self.tcb.recv_buf
    }

    /// Drain the receive buffer.
    pub fn take_received(&mut self) -> Vec<u8> {
        self.tcb.take_received()
    }

    /// Queue bytes for transmission (flushed when the callback returns).
    pub fn send(&mut self, bytes: &[u8]) {
        self.tcb.send(bytes);
    }

    /// Orderly close after queued data drains.
    pub fn close(&mut self) {
        self.tcb.close();
    }

    /// Abort with RST.
    pub fn abort(&mut self) {
        self.tcb.abort();
    }
}

/// An application living inside a [`crate::TcpHost`], driven by socket
/// events. One instance exists per accepted connection (listeners clone a
/// factory).
pub trait SocketApp {
    /// Called once per socket event, in order.
    fn on_event(&mut self, io: &mut SocketIo<'_>, event: &SocketEvent);
}

/// A trivial app that answers every received chunk with a fixed response
/// and closes. Used by tests and by the port-80 "live host" stand-ins the
/// outside-vantage scans probe.
pub struct FixedResponder {
    /// Bytes to send when the first data arrives.
    pub response: Vec<u8>,
    sent: bool,
}

impl FixedResponder {
    /// Respond with `response` to the first data received.
    pub fn new(response: Vec<u8>) -> Self {
        FixedResponder { response, sent: false }
    }
}

impl SocketApp for FixedResponder {
    fn on_event(&mut self, io: &mut SocketIo<'_>, event: &SocketEvent) {
        if matches!(event, SocketEvent::Data { .. }) && !self.sent {
            self.sent = true;
            let response = std::mem::take(&mut self.response);
            io.send(&response);
            io.close();
        }
    }
}
