//! End-to-end tests of the TCP host over a simulated routed network:
//! handshake, HTTP-ish exchange, RST behaviour, raw sockets, firewall.

use std::net::Ipv4Addr;

use lucent_netsim::routing::Cidr;
use lucent_netsim::{IfaceId, Network, NodeId, RouterNode, SimDuration};
use lucent_packet::tcp::{TcpFlags, TcpHeader};
use lucent_packet::{Packet, Transport};
use lucent_tcp::{FilterRule, FixedResponder, SocketEvent, TcpHost, TcpState};

const CLIENT_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);
const SERVER_IP: Ipv4Addr = Ipv4Addr::new(203, 0, 113, 2);

struct Net {
    net: Network,
    client: NodeId,
    server: NodeId,
}

/// client -- r1 -- r2 -- server
fn build() -> Net {
    let mut net = Network::new();
    let client = net.add_node(Box::new(TcpHost::new(CLIENT_IP, "client", 1)));
    let server = net.add_node(Box::new(TcpHost::new(SERVER_IP, "server", 2)));
    let mut r1 = RouterNode::new(Ipv4Addr::new(10, 0, 0, 1), "r1");
    r1.table.add(Cidr::new(CLIENT_IP, 24), IfaceId(0));
    r1.table.add(Cidr::new(SERVER_IP, 24), IfaceId(1));
    let mut r2 = RouterNode::new(Ipv4Addr::new(203, 0, 113, 1), "r2");
    r2.table.add(Cidr::new(CLIENT_IP, 24), IfaceId(0));
    r2.table.add(Cidr::new(SERVER_IP, 24), IfaceId(1));
    let r1 = net.add_node(Box::new(r1));
    let r2 = net.add_node(Box::new(r2));
    let ms = SimDuration::from_millis(2);
    net.connect(client, IfaceId::PRIMARY, r1, IfaceId(0), ms);
    net.connect(r1, IfaceId(1), r2, IfaceId(0), ms);
    net.connect(r2, IfaceId(1), server, IfaceId::PRIMARY, ms);
    Net { net, client, server }
}

fn run(net: &mut Network, ms: u64) {
    let deadline = net.now() + SimDuration::from_millis(ms);
    net.run_until(deadline);
}

#[test]
fn connect_exchange_close() {
    let mut t = build();
    t.net
        .node_mut::<TcpHost>(t.server).unwrap()
        .listen(80, || Box::new(FixedResponder::new(b"HTTP/1.1 200 OK\r\n\r\nhello".to_vec())));
    let sock = t.net.node_mut::<TcpHost>(t.client).unwrap().connect(SERVER_IP, 80);
    t.net.wake(t.client);
    run(&mut t.net, 100);
    assert_eq!(t.net.node_ref::<TcpHost>(t.client).unwrap().state(sock), TcpState::Established);

    t.net.node_mut::<TcpHost>(t.client).unwrap().send(sock, b"GET / HTTP/1.1\r\nHost: x\r\n\r\n");
    t.net.wake(t.client);
    run(&mut t.net, 200);
    let got = t.net.node_mut::<TcpHost>(t.client).unwrap().take_received(sock);
    assert_eq!(got, b"HTTP/1.1 200 OK\r\n\r\nhello");
    // Server closed after responding; client auto-closed in return.
    let events = t.net.node_ref::<TcpHost>(t.client).unwrap().events(sock);
    assert!(events.iter().any(|e| e.event == SocketEvent::PeerFin));
    // After TIME-WAIT expiry everything reaches Closed.
    run(&mut t.net, 20_000);
    assert_eq!(t.net.node_ref::<TcpHost>(t.client).unwrap().state(sock), TcpState::Closed);
}

#[test]
fn syn_to_closed_port_draws_rst() {
    let mut t = build();
    let sock = t.net.node_mut::<TcpHost>(t.client).unwrap().connect(SERVER_IP, 8080);
    t.net.wake(t.client);
    run(&mut t.net, 100);
    let client = t.net.node_ref::<TcpHost>(t.client).unwrap();
    assert_eq!(client.state(sock), TcpState::Closed);
    assert!(client.events(sock).iter().any(|e| e.event == SocketEvent::Reset));
}

#[test]
fn syn_to_unreachable_host_times_out() {
    let mut t = build();
    // 203.0.113.77 is routed (same /24) but no host answers: packets die
    // on the unconnected leaf. SYN retries then exhaust.
    let sock = t.net.node_mut::<TcpHost>(t.client).unwrap().connect(Ipv4Addr::new(203, 0, 113, 77), 80);
    t.net.wake(t.client);
    run(&mut t.net, 30_000);
    let client = t.net.node_ref::<TcpHost>(t.client).unwrap();
    assert_eq!(client.state(sock), TcpState::Closed);
    assert!(client.events(sock).iter().any(|e| e.event == SocketEvent::TimedOut));
}

#[test]
fn late_segment_after_close_draws_rst() {
    // Forge a data segment for a connection the client has never had;
    // the client must answer RST — the Figure 4 behaviour.
    let mut t = build();
    t.net.node_mut::<TcpHost>(t.server).unwrap().enable_pcap();
    let mut h = TcpHeader::new(4999, 80, TcpFlags::ACK | TcpFlags::PSH);
    h.seq = 12345;
    h.ack = 999;
    let stray = Packet::tcp(SERVER_IP, CLIENT_IP, TcpHeader { src_port: 80, dst_port: 4999, ..h }, &b"late"[..]);
    t.net.inject(t.client, IfaceId::PRIMARY, stray);
    run(&mut t.net, 100);
    let pcap = t.net.node_mut::<TcpHost>(t.server).unwrap().take_pcap();
    assert_eq!(pcap.len(), 1);
    let (hdr, _) = pcap[0].1.as_tcp().unwrap();
    assert!(hdr.flags.contains(TcpFlags::RST));
    assert_eq!(hdr.src_port, 4999);
}

#[test]
fn raw_port_bypasses_stack_and_collects_packets() {
    let mut t = build();
    t.net.node_mut::<TcpHost>(t.server).unwrap().listen(80, || {
        Box::new(FixedResponder::new(b"resp".to_vec()))
    });
    // Claim port 5555 raw on the client and hand-run a SYN.
    {
        let c = t.net.node_mut::<TcpHost>(t.client).unwrap();
        c.raw_claim_port(5555);
        let mut syn = TcpHeader::new(5555, 80, TcpFlags::SYN);
        syn.seq = 100;
        c.raw_send(Packet::tcp(CLIENT_IP, SERVER_IP, syn, &b""[..]));
    }
    t.net.wake(t.client);
    run(&mut t.net, 100);
    let inbox = t.net.node_mut::<TcpHost>(t.client).unwrap().raw_take_inbox();
    assert_eq!(inbox.len(), 1, "exactly the SYN-ACK, no stack interference");
    let (h, _) = inbox[0].1.as_tcp().unwrap();
    assert!(h.flags.contains(TcpFlags::SYN) && h.flags.contains(TcpFlags::ACK));
    assert_eq!(h.ack, 101);
}

#[test]
fn firewall_drops_forged_fin_but_passes_data() {
    let mut t = build();
    t.net
        .node_mut::<TcpHost>(t.server).unwrap()
        .listen(80, || Box::new(FixedResponder::new(b"CONTENT".to_vec())));
    let sock = t.net.node_mut::<TcpHost>(t.client).unwrap().connect(SERVER_IP, 80);
    t.net.wake(t.client);
    run(&mut t.net, 100);

    // Install the evasion rule, then inject a forged FIN "from the server".
    {
        let c = t.net.node_mut::<TcpHost>(t.client).unwrap();
        c.firewall.add(FilterRule::drop_fin_rst_with_ip_id(242));
    }
    let (snd_nxt, rcv_nxt) = t.net.node_ref::<TcpHost>(t.client).unwrap().seq_cursors(sock).unwrap();
    let local_port = t.net.node_ref::<TcpHost>(t.client).unwrap().local_addr(sock).unwrap().1;
    let mut forged = TcpHeader::new(80, local_port, TcpFlags::FIN | TcpFlags::PSH | TcpFlags::ACK);
    forged.seq = rcv_nxt;
    forged.ack = snd_nxt;
    let forged_pkt =
        Packet::tcp(SERVER_IP, CLIENT_IP, forged, &b"BLOCKED"[..]).with_ip_id(242);
    t.net.inject(t.client, IfaceId::PRIMARY, forged_pkt);
    run(&mut t.net, 50);
    // Connection survives; the forged notification never reached the TCB.
    assert_eq!(t.net.node_ref::<TcpHost>(t.client).unwrap().state(sock), TcpState::Established);
    assert!(t.net.node_ref::<TcpHost>(t.client).unwrap().received(sock).is_empty());

    // Real request/response still works through the firewall.
    t.net.node_mut::<TcpHost>(t.client).unwrap().send(sock, b"GET /");
    t.net.wake(t.client);
    run(&mut t.net, 200);
    assert_eq!(t.net.node_mut::<TcpHost>(t.client).unwrap().take_received(sock), b"CONTENT");
}

#[test]
fn udp_roundtrip_and_icmp_unreachable() {
    let mut t = build();
    t.net.node_mut::<TcpHost>(t.server).unwrap().udp_bind(53);
    t.net.node_mut::<TcpHost>(t.client).unwrap().udp_bind(5353);
    t.net.node_mut::<TcpHost>(t.client).unwrap().udp_send(5353, SERVER_IP, 53, b"query");
    t.net.wake(t.client);
    run(&mut t.net, 100);
    let inbox = t.net.node_mut::<TcpHost>(t.server).unwrap().take_udp_inbox();
    assert_eq!(inbox.len(), 1);
    assert_eq!(&inbox[0].payload[..], b"query");
    assert_eq!(inbox[0].src, CLIENT_IP);

    // Datagram to a closed port draws ICMP port-unreachable.
    t.net.node_mut::<TcpHost>(t.client).unwrap().udp_send(5353, SERVER_IP, 999, b"stray");
    t.net.wake(t.client);
    run(&mut t.net, 100);
    let icmp = t.net.node_mut::<TcpHost>(t.client).unwrap().take_icmp_inbox();
    assert_eq!(icmp.len(), 1);
    match icmp[0].1.as_icmp() {
        Some(lucent_packet::IcmpMessage::DestUnreachable { code: 3, .. }) => {}
        other => panic!("expected port unreachable, got {other:?}"),
    }
}

#[test]
fn pcap_sees_packets_firewall_drops() {
    let mut t = build();
    {
        let c = t.net.node_mut::<TcpHost>(t.client).unwrap();
        c.enable_pcap();
        c.firewall.add(FilterRule::drop_fin_rst_from(SERVER_IP));
    }
    let mut fin = TcpHeader::new(80, 6000, TcpFlags::FIN | TcpFlags::ACK);
    fin.seq = 1;
    let pkt = Packet::tcp(SERVER_IP, CLIENT_IP, fin, &b""[..]);
    t.net.inject(t.client, IfaceId::PRIMARY, pkt);
    run(&mut t.net, 10);
    let c = t.net.node_mut::<TcpHost>(t.client).unwrap();
    assert_eq!(c.take_pcap().len(), 1, "tcpdump-style capture precedes the filter");
    assert_eq!(c.firewall.dropped, 1);
}

#[test]
fn two_concurrent_connections_do_not_interfere() {
    let mut t = build();
    t.net.node_mut::<TcpHost>(t.server).unwrap().listen(80, || {
        Box::new(FixedResponder::new(b"A".to_vec()))
    });
    t.net.node_mut::<TcpHost>(t.server).unwrap().listen(81, || {
        Box::new(FixedResponder::new(b"B".to_vec()))
    });
    let s1 = t.net.node_mut::<TcpHost>(t.client).unwrap().connect(SERVER_IP, 80);
    let s2 = t.net.node_mut::<TcpHost>(t.client).unwrap().connect(SERVER_IP, 81);
    t.net.wake(t.client);
    run(&mut t.net, 100);
    t.net.node_mut::<TcpHost>(t.client).unwrap().send(s1, b"one");
    t.net.node_mut::<TcpHost>(t.client).unwrap().send(s2, b"two");
    t.net.wake(t.client);
    run(&mut t.net, 300);
    assert_eq!(t.net.node_mut::<TcpHost>(t.client).unwrap().take_received(s1), b"A");
    assert_eq!(t.net.node_mut::<TcpHost>(t.client).unwrap().take_received(s2), b"B");
}

#[test]
fn deterministic_replay_same_seed() {
    let trace_a = {
        let mut t = build();
        t.net.trace().enable_all();
        t.net.node_mut::<TcpHost>(t.server).unwrap().listen(80, || {
            Box::new(FixedResponder::new(b"x".to_vec()))
        });
        let s = t.net.node_mut::<TcpHost>(t.client).unwrap().connect(SERVER_IP, 80);
        t.net.wake(t.client);
        run(&mut t.net, 50);
        t.net.node_mut::<TcpHost>(t.client).unwrap().send(s, b"req");
        t.net.wake(t.client);
        run(&mut t.net, 200);
        t.net.trace().transcript()
    };
    let trace_b = {
        let mut t = build();
        t.net.trace().enable_all();
        t.net.node_mut::<TcpHost>(t.server).unwrap().listen(80, || {
            Box::new(FixedResponder::new(b"x".to_vec()))
        });
        let s = t.net.node_mut::<TcpHost>(t.client).unwrap().connect(SERVER_IP, 80);
        t.net.wake(t.client);
        run(&mut t.net, 50);
        t.net.node_mut::<TcpHost>(t.client).unwrap().send(s, b"req");
        t.net.wake(t.client);
        run(&mut t.net, 200);
        t.net.trace().transcript()
    };
    assert_eq!(trace_a, trace_b);
    assert!(trace_a.contains("SYN"));
}

#[test]
fn wire_fidelity_all_segments_serialize() {
    // Every packet of a full HTTP-over-TCP exchange must survive
    // emit→parse roundtripping (structured mode hides nothing).
    let mut t = build();
    t.net.trace().enable_all();
    t.net.node_mut::<TcpHost>(t.server).unwrap().listen(80, || {
        Box::new(FixedResponder::new(b"HTTP/1.1 200 OK\r\n\r\nbody".to_vec()))
    });
    let s = t.net.node_mut::<TcpHost>(t.client).unwrap().connect(SERVER_IP, 80);
    t.net.wake(t.client);
    run(&mut t.net, 50);
    t.net.node_mut::<TcpHost>(t.client).unwrap().send(s, b"GET / HTTP/1.1\r\nHost: h\r\n\r\n");
    t.net.wake(t.client);
    run(&mut t.net, 300);
    let entries = t.net.trace().entries();
    assert!(entries.len() > 10);
    for e in entries {
        if matches!(e.packet.transport, Transport::Tcp(..)) {
            let wire = e.packet.emit();
            let parsed = Packet::parse(&wire).expect("wire roundtrip");
            assert_eq!(parsed, e.packet);
        }
    }
}
