//! Property tests for the TCP state machine, driven by the
//! `lucent-check` harness: safety under arbitrary segments, and delivery
//! correctness under duplication and bounded loss with retransmission.
//!
//! The handshake rig (`established_pair`) and the arbitrary-segment
//! safety property live in `lucent_check::oracles`, shared with the
//! fuzz campaign; the delivery properties below draw their inputs from
//! a [`Source`] so a failure shrinks to a minimal chunk list or loss
//! pattern and reports a replayable tape.

use lucent_check::oracles::established_pair;
use lucent_check::{check, oracles, Config, Source};
use lucent_netsim::SimTime;
use lucent_tcp::tcb::TimerAsk;

fn t(ms: u64) -> SimTime {
    SimTime(ms * 1_000)
}

/// Arbitrary segments never panic the state machine, and the receive
/// buffer never shrinks.
#[test]
fn arbitrary_segments_are_safe() {
    check(&Config::cases(128), oracles::tcb_arbitrary_segments_safe);
}

/// Lossless in-order exchange delivers exactly the sent bytes.
#[test]
fn lossless_delivery_is_exact() {
    check(&Config::cases(128), |s: &mut Source| {
        let n = s.len_in(1, 11);
        let chunks: Vec<Vec<u8>> = (0..n).map(|_| s.bytes(1, 511)).collect();
        let (mut a, mut b) = established_pair();
        let mut expected = Vec::new();
        for chunk in &chunks {
            expected.extend_from_slice(chunk);
            a.send(chunk);
        }
        for step in 0..128u64 {
            let (fa, _) = a.poll(t(100 + step));
            let (fb, _) = b.poll(t(100 + step));
            if fa.is_empty() && fb.is_empty() {
                break;
            }
            for (h, p) in fa {
                b.on_segment(&h, &p, t(100 + step));
            }
            for (h, p) in fb {
                a.on_segment(&h, &p, t(100 + step));
            }
        }
        assert_eq!(b.take_received(), expected);
        assert!(a.send_drained());
    });
}

/// Under random segment loss (bounded below the retry budget, as a
/// correctness property must be — unbounded loss legitimately aborts
/// the connection), retransmission timeouts still deliver every byte
/// in order.
#[test]
fn lossy_delivery_recovers_via_retransmission() {
    check(&Config::cases(128), |s: &mut Source| {
        let payload = s.bytes(1, 1_999);
        let loss_seed = s.any_u64();
        let (mut a, mut b) = established_pair();
        a.send(&payload);
        let mut x = loss_seed | 1;
        let mut dropped: std::collections::BTreeMap<u32, u8> = std::collections::BTreeMap::new();
        let mut roll = move |seq: u32| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let count = dropped.entry(seq).or_insert(0);
            if x % 100 < 30 && *count < 2 {
                *count += 1;
                true
            } else {
                false
            }
        };
        let mut now = 100u64;
        for _round in 0..64 {
            now += 500;
            let (fa, ask) = a.poll(t(now));
            for (h, p) in fa {
                if !roll(h.seq) {
                    b.on_segment(&h, &p, t(now));
                }
            }
            let (fb, _) = b.poll(t(now));
            for (h, p) in fb {
                a.on_segment(&h, &p, t(now)); // ACK path is lossless
            }
            if a.send_drained() {
                break;
            }
            if let TimerAsk::Retransmit { .. } = ask {
                a.on_retransmit_timeout(t(now + 400));
            } else if !a.send_drained() {
                a.on_retransmit_timeout(t(now + 400));
            }
        }
        assert_eq!(b.take_received(), payload);
    });
}

/// Duplicated (replayed) data segments never corrupt the stream.
#[test]
fn duplicate_segments_do_not_corrupt() {
    check(&Config::cases(128), |s: &mut Source| {
        let payload = s.bytes(1, 599);
        let dup_every = s.len_in(1, 3);
        let (mut a, mut b) = established_pair();
        a.send(&payload);
        let mut now = 100u64;
        for _ in 0..64 {
            now += 1;
            let (fa, _) = a.poll(t(now));
            if fa.is_empty() {
                let (fb, _) = b.poll(t(now));
                if fb.is_empty() {
                    break;
                }
                for (h, p) in fb {
                    a.on_segment(&h, &p, t(now));
                }
                continue;
            }
            for (i, (h, p)) in fa.iter().enumerate() {
                b.on_segment(h, p, t(now));
                if i % dup_every == 0 {
                    b.on_segment(h, p, t(now)); // replay
                }
            }
            let (fb, _) = b.poll(t(now));
            for (h, p) in fb {
                a.on_segment(&h, &p, t(now));
            }
        }
        assert_eq!(b.take_received(), payload);
    });
}
