//! Property tests for the TCP state machine: safety under arbitrary
//! segments, and delivery correctness under loss with retransmission.

use std::net::Ipv4Addr;

use lucent_support::prop;

use lucent_netsim::SimTime;
use lucent_packet::tcp::{TcpFlags, TcpHeader};
use lucent_tcp::tcb::{Tcb, TimerAsk};
use lucent_tcp::TcpState;

const A_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
const B_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

fn t(ms: u64) -> SimTime {
    SimTime(ms * 1_000)
}

/// Drive both ends through the handshake.
fn established() -> (Tcb, Tcb) {
    let mut a = Tcb::connect((A_IP, 4000), (B_IP, 80), 1_000, t(0));
    let (syn_out, _) = a.poll(t(0));
    let (syn, _) = &syn_out[0];
    let mut b = Tcb::accept((B_IP, 80), (A_IP, 4000), 9_000, syn, t(0));
    for _ in 0..8 {
        let (fa, _) = a.poll(t(1));
        let (fb, _) = b.poll(t(1));
        if fa.is_empty() && fb.is_empty() {
            break;
        }
        for (h, p) in fa {
            b.on_segment(&h, &p, t(1));
        }
        for (h, p) in fb {
            a.on_segment(&h, &p, t(1));
        }
    }
    assert_eq!(a.state, TcpState::Established);
    assert_eq!(b.state, TcpState::Established);
    (a, b)
}

/// Arbitrary segments never panic the state machine, and the receive
/// buffer never shrinks.
#[test]
fn arbitrary_segments_are_safe() {
    prop::check(128, |rng| {
        let segs = prop::vec_of(rng, 0..48, |rng| {
            (
                rng.gen_range(0u8..0x40),
                rng.gen::<u32>(),
                rng.gen::<u32>(),
                prop::vec_u8(rng, 0..64),
            )
        });
        let (mut a, _b) = established();
        let mut last_len = 0usize;
        for (i, (flags, seq, ack, payload)) in segs.into_iter().enumerate() {
            let mut h = TcpHeader::new(80, 4000, TcpFlags(flags));
            h.seq = seq;
            h.ack = ack;
            a.on_segment(&h, &payload, t(10 + i as u64));
            let _ = a.poll(t(10 + i as u64));
            assert!(a.recv_buf.len() >= last_len || a.recv_buf.is_empty());
            last_len = a.recv_buf.len();
        }
    });
}

/// Lossless in-order exchange delivers exactly the sent bytes.
#[test]
fn lossless_delivery_is_exact() {
    prop::check(128, |rng| {
        let chunks = prop::vec_of(rng, 1..12, |rng| prop::vec_u8(rng, 1..512));
        let (mut a, mut b) = established();
        let mut expected = Vec::new();
        for chunk in &chunks {
            expected.extend_from_slice(chunk);
            a.send(chunk);
        }
        for step in 0..128u64 {
            let (fa, _) = a.poll(t(100 + step));
            let (fb, _) = b.poll(t(100 + step));
            if fa.is_empty() && fb.is_empty() {
                break;
            }
            for (h, p) in fa {
                b.on_segment(&h, &p, t(100 + step));
            }
            for (h, p) in fb {
                a.on_segment(&h, &p, t(100 + step));
            }
        }
        assert_eq!(b.take_received(), expected);
        assert!(a.send_drained());
    });
}

/// Under random segment loss (bounded below the retry budget, as a
/// correctness property must be — unbounded loss legitimately aborts
/// the connection), retransmission timeouts still deliver every byte
/// in order.
#[test]
fn lossy_delivery_recovers_via_retransmission() {
    prop::check(128, |rng| {
        let payload = prop::vec_u8(rng, 1..2_000);
        let loss_seed = rng.gen::<u64>();
        let (mut a, mut b) = established();
        a.send(&payload);
        let mut x = loss_seed | 1;
        let mut dropped: std::collections::BTreeMap<u32, u8> = std::collections::BTreeMap::new();
        let mut roll = move |seq: u32| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let count = dropped.entry(seq).or_insert(0);
            if x % 100 < 30 && *count < 2 {
                *count += 1;
                true
            } else {
                false
            }
        };
        let mut now = 100u64;
        for _round in 0..64 {
            now += 500;
            let (fa, ask) = a.poll(t(now));
            for (h, p) in fa {
                if !roll(h.seq) {
                    b.on_segment(&h, &p, t(now));
                }
            }
            let (fb, _) = b.poll(t(now));
            for (h, p) in fb {
                a.on_segment(&h, &p, t(now)); // ACK path is lossless
            }
            if a.send_drained() {
                break;
            }
            if let TimerAsk::Retransmit { .. } = ask {
                a.on_retransmit_timeout(t(now + 400));
            } else if !a.send_drained() {
                a.on_retransmit_timeout(t(now + 400));
            }
        }
        assert_eq!(b.take_received(), payload);
    });
}

/// Duplicated (replayed) data segments never corrupt the stream.
#[test]
fn duplicate_segments_do_not_corrupt() {
    prop::check(128, |rng| {
        let payload = prop::vec_u8(rng, 1..600);
        let dup_every = rng.gen_range(1usize..4);
        let (mut a, mut b) = established();
        a.send(&payload);
        let mut now = 100u64;
        for _ in 0..64 {
            now += 1;
            let (fa, _) = a.poll(t(now));
            if fa.is_empty() {
                let (fb, _) = b.poll(t(now));
                if fb.is_empty() {
                    break;
                }
                for (h, p) in fb {
                    a.on_segment(&h, &p, t(now));
                }
                continue;
            }
            for (i, (h, p)) in fa.iter().enumerate() {
                b.on_segment(h, p, t(now));
                if i % dup_every == 0 {
                    b.on_segment(h, p, t(now)); // replay
                }
            }
            let (fb, _) = b.poll(t(now));
            for (h, p) in fb {
                a.on_segment(&h, &p, t(now));
            }
        }
        assert_eq!(b.take_received(), payload);
    });
}
