//! # lucent-web
//!
//! The website corpus and origin-server substrate.
//!
//! The paper probes ~1200 *potentially blocked websites* (PBWs) across 7
//! categories plus the Alexa top-1000; its false-positive/negative
//! analysis of OONI (Section 6.2) hinges on real-world content phenomena:
//! CDN-steered replicas, location-dependent dynamic content, parked and
//! dead domains, redirect-only responses, and pages without `<title>`
//! tags. This crate generates a deterministic corpus exhibiting exactly
//! those phenomena and implements the RFC-compliant origin servers that
//! host it — including the lenient header parsing and strict
//! `\r\n\r\n` framing that Section 5's evasion techniques exploit.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod content;
pub mod corpus;
pub mod server;
pub mod site;
pub mod tls;

pub use corpus::{Corpus, CorpusConfig, IpAllocator};
pub use server::{ServerConfig, WebServerApp};
pub use tls::TlsLikeApp;
pub use site::{Category, Site, SiteDirectory, SiteId, SiteKind, SharedDirectory};
