//! The origin web server: an RFC 2616-compliant virtual-hosting HTTP
//! server implemented as a [`SocketApp`].
//!
//! Behavioural commitments (each one load-bearing for the paper):
//!
//! * Header names are case-insensitive and values tolerate surrounding
//!   whitespace — so `HOst:`/`Host:  x` fudged requests are served.
//! * `www.`-prefixed hosts fall back to the bare domain.
//! * `\r\n\r\n` ends a request; trailing bytes are parsed as the next
//!   pipelined message, and malformed leftovers draw `400 Bad Request` —
//!   the exact two-response behaviour the covert-IM evasion relies on.
//! * A replica serves only sites hosted at its own address; a crafted
//!   request for `blocked.com` sent to an unrelated server is answered
//!   `404` (the controlled-remote-host corroboration experiments).

use lucent_dns::RegionId;
use lucent_packet::http::{find_head_end, HttpRequest, RequestParseMode};
use lucent_tcp::{SocketApp, SocketEvent, SocketIo};

use crate::content;
use crate::site::SharedDirectory;

/// Configuration shared by every connection app a server host spawns.
#[derive(Clone)]
pub struct ServerConfig {
    /// The region this replica serves from (drives CDN/dynamic content).
    pub region: RegionId,
    /// The site directory.
    pub directory: SharedDirectory,
}

/// Per-connection server application.
pub struct WebServerApp {
    cfg: ServerConfig,
    buf: Vec<u8>,
    responded: bool,
}

impl WebServerApp {
    /// New connection handler.
    pub fn new(cfg: ServerConfig) -> Self {
        WebServerApp { cfg, buf: Vec::new(), responded: false }
    }

    /// Convenience: a listener factory for [`lucent_tcp::TcpHost::listen`].
    pub fn factory(cfg: ServerConfig) -> impl Fn() -> Box<dyn SocketApp> {
        move || Box::new(WebServerApp::new(cfg.clone())) as Box<dyn SocketApp>
    }

    fn respond(&self, io: &mut SocketIo<'_>, req: &HttpRequest) -> Vec<u8> {
        if req.method != "GET" {
            return content::bad_request().emit();
        }
        let Some(host) = req.host() else {
            return content::bad_request().emit();
        };
        let dir = &self.cfg.directory;
        let site = dir
            .by_domain(host)
            .or_else(|| host.strip_prefix("www.").and_then(|bare| dir.by_domain(bare)));
        let local_ip = io.local().0;
        match site {
            Some(site) if site.replicas.contains(&local_ip) => {
                // Dynamic content varies with (virtual) fetch time: a new
                // "edition" every five virtual seconds — and parking
                // engines geo-target by visitor, so a client-derived hint
                // rides along.
                let variant = (io.now().micros() / 5_000_000) as u32;
                let viewer = (u32::from(io.peer().0) % 9973) as u16;
                content::render(site, self.cfg.region, variant, viewer).emit()
            }
            _ => content::not_found(host).emit(),
        }
    }

    fn drain_requests(&mut self, io: &mut SocketIo<'_>) {
        loop {
            let Some(end) = find_head_end(&self.buf) else {
                return; // incomplete head: wait for more bytes
            };
            let out = match HttpRequest::parse(&self.buf[..end], RequestParseMode::Rfc) {
                Ok((req, used)) => {
                    debug_assert_eq!(used, end);
                    self.respond(io, &req)
                }
                Err(_) => content::bad_request().emit(),
            };
            io.send(&out);
            self.responded = true;
            self.buf.drain(..end);
        }
    }
}

impl SocketApp for WebServerApp {
    fn on_event(&mut self, io: &mut SocketIo<'_>, event: &SocketEvent) {
        match event {
            SocketEvent::Data { .. } => {
                let chunk = io.take_received();
                self.buf.extend_from_slice(&chunk);
                self.drain_requests(io);
                if self.responded && self.buf.is_empty() {
                    // Responses queued; close after they drain (HTTP/1.0
                    // style, matching the `Connection: close` we emit).
                    io.close();
                }
            }
            SocketEvent::PeerFin => {
                io.close();
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::site::{Category, Site, SiteDirectory, SiteId, SiteKind};
    use lucent_netsim::routing::Cidr;
    use lucent_netsim::{IfaceId, Network, NodeId, RouterNode, SimDuration};
    use lucent_packet::http::RequestBuilder;
    use lucent_packet::HttpResponse;
    use lucent_tcp::{TcpHost, TcpState};
    use std::net::Ipv4Addr;
    use std::rc::Rc;

    const CLIENT_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);
    const SERVER_IP: Ipv4Addr = Ipv4Addr::new(203, 0, 113, 2);

    fn directory() -> SharedDirectory {
        Rc::new(SiteDirectory::new([
            Site {
                id: SiteId(0),
                domain: "hosted.example".into(),
                category: Category::Music,
                kind: SiteKind::Normal,
                dynamic: false,
                replicas: vec![SERVER_IP],
                regional_dns: false,
                seed: 99,
            },
            Site {
                id: SiteId(1),
                domain: "elsewhere.example".into(),
                category: Category::Music,
                kind: SiteKind::Normal,
                dynamic: false,
                replicas: vec![Ipv4Addr::new(192, 0, 2, 77)],
                regional_dns: false,
                seed: 100,
            },
        ]))
    }

    fn build() -> (Network, NodeId, NodeId) {
        let mut net = Network::new();
        let client = net.add_node(Box::new(TcpHost::new(CLIENT_IP, "client", 1)));
        let mut server_host = TcpHost::new(SERVER_IP, "server", 2);
        let cfg = ServerConfig { region: 0, directory: directory() };
        server_host.listen(80, WebServerApp::factory(cfg));
        let server = net.add_node(Box::new(server_host));
        let mut r = RouterNode::new(Ipv4Addr::new(10, 0, 0, 1), "r");
        r.table.add(Cidr::new(CLIENT_IP, 24), IfaceId(0));
        r.table.add(Cidr::new(SERVER_IP, 24), IfaceId(1));
        let r = net.add_node(Box::new(r));
        let ms = SimDuration::from_millis(1);
        net.connect(client, IfaceId::PRIMARY, r, IfaceId(0), ms);
        net.connect(r, IfaceId(1), server, IfaceId::PRIMARY, ms);
        (net, client, server)
    }

    /// Drive a raw request through a fresh connection; return all bytes
    /// the server sent back.
    fn fetch(request: &[u8]) -> Vec<u8> {
        let (mut net, client, _) = build();
        let sock = net.node_mut::<TcpHost>(client).unwrap().connect(SERVER_IP, 80);
        net.wake(client);
        net.run_for(SimDuration::from_millis(50));
        assert_eq!(net.node_ref::<TcpHost>(client).unwrap().state(sock), TcpState::Established);
        net.node_mut::<TcpHost>(client).unwrap().send(sock, request);
        net.wake(client);
        net.run_for(SimDuration::from_millis(500));
        net.node_mut::<TcpHost>(client).unwrap().take_received(sock)
    }

    #[test]
    fn serves_hosted_site() {
        let req = RequestBuilder::browser("hosted.example", "/").build();
        let resp = HttpResponse::parse(&fetch(&req)).unwrap();
        assert_eq!(resp.status, 200);
        assert!(resp.title().unwrap().contains("hosted.example"));
    }

    #[test]
    fn case_fudged_host_keyword_is_served() {
        for fudge in ["HOst", "HoST", "HOST"] {
            let req = RequestBuilder::get("/")
                .raw_line(&format!("{fudge}: hosted.example"))
                .build();
            let resp = HttpResponse::parse(&fetch(&req)).unwrap();
            assert_eq!(resp.status, 200, "fudge {fudge}");
        }
    }

    #[test]
    fn whitespace_fudged_host_value_is_served() {
        for line in ["Host:  hosted.example", "Host:\thosted.example", "Host: hosted.example  "] {
            let req = RequestBuilder::get("/").raw_line(line).build();
            let resp = HttpResponse::parse(&fetch(&req)).unwrap();
            assert_eq!(resp.status, 200, "line {line:?}");
        }
    }

    #[test]
    fn www_prefix_falls_back_to_bare_domain() {
        let req = RequestBuilder::browser("www.hosted.example", "/").build();
        let resp = HttpResponse::parse(&fetch(&req)).unwrap();
        assert_eq!(resp.status, 200);
    }

    #[test]
    fn unhosted_domain_gets_404() {
        // The controlled-remote-host experiment: a GET for a site this
        // server does not host is answered, but not with its content.
        let req = RequestBuilder::browser("elsewhere.example", "/").build();
        let resp = HttpResponse::parse(&fetch(&req)).unwrap();
        assert_eq!(resp.status, 404);
    }

    #[test]
    fn pipelined_garbage_draws_content_then_400() {
        // The covert-IM evasion shape: first a complete GET for the real
        // site, then a trailing "Host: allowed.com" fragment.
        let mut req = RequestBuilder::browser("hosted.example", "/").build();
        req.extend_from_slice(b"Host: allowed.example\r\n\r\n");
        let bytes = fetch(&req);
        let first = HttpResponse::parse(&bytes).unwrap();
        assert_eq!(first.status, 200);
        // Find the second response in the byte stream.
        let tail_at = find_subslice(&bytes, b"HTTP/1.1 400").expect("second response present");
        let second = HttpResponse::parse(&bytes[tail_at..]).unwrap();
        assert_eq!(second.status, 400);
    }

    #[test]
    fn segmented_request_is_reassembled() {
        let (mut net, client, _) = build();
        let sock = net.node_mut::<TcpHost>(client).unwrap().connect(SERVER_IP, 80);
        net.wake(client);
        net.run_for(SimDuration::from_millis(50));
        let req = RequestBuilder::browser("hosted.example", "/").build();
        let (a, b) = req.split_at(10);
        net.node_mut::<TcpHost>(client).unwrap().send(sock, a);
        net.wake(client);
        net.run_for(SimDuration::from_millis(30));
        net.node_mut::<TcpHost>(client).unwrap().send(sock, b);
        net.wake(client);
        net.run_for(SimDuration::from_millis(500));
        let resp = HttpResponse::parse(&net.node_mut::<TcpHost>(client).unwrap().take_received(sock)).unwrap();
        assert_eq!(resp.status, 200);
    }

    #[test]
    fn non_get_method_is_rejected() {
        let req = RequestBuilder::get("/").method("POST").header("Host", "hosted.example").build();
        let resp = HttpResponse::parse(&fetch(&req)).unwrap();
        assert_eq!(resp.status, 400);
    }

    #[test]
    fn missing_host_is_rejected() {
        let req = RequestBuilder::get("/").header("Accept", "*/*").build();
        let resp = HttpResponse::parse(&fetch(&req)).unwrap();
        assert_eq!(resp.status, 400);
    }

    fn find_subslice(haystack: &[u8], needle: &[u8]) -> Option<usize> {
        haystack.windows(needle.len()).position(|w| w == needle)
    }
}
