//! Deterministic page rendering, including the vantage-dependent
//! phenomena (dynamic ads, parking pages, redirects) that confound naive
//! censorship detection.

use lucent_dns::RegionId;
use lucent_packet::HttpResponse;

use crate::site::{Site, SiteKind};

/// Deterministic word generator: a small xorshift over a fixed lexicon,
/// so page bodies are stable for (site, region, variant) and cheaply
/// comparable.
fn words(seed: u64, count: usize) -> String {
    const LEXICON: [&str; 32] = [
        "network", "measurement", "content", "stream", "archive", "forum", "media", "report",
        "gallery", "index", "update", "daily", "local", "global", "public", "digital", "signal",
        "mirror", "channel", "portal", "review", "story", "music", "video", "listing", "session",
        "record", "journal", "notice", "bulletin", "feature", "edition",
    ];
    let mut x = seed | 1;
    let mut out = String::with_capacity(count * 8);
    for i in 0..count {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        if i > 0 {
            out.push(if i % 12 == 0 { '\n' } else { ' ' });
        }
        out.push_str(LEXICON[(x % 32) as usize]);
    }
    out
}

/// Core body length for a site (800–4000 bytes-ish, deterministic).
fn core_word_count(site: &Site) -> usize {
    120 + (site.seed % 400) as usize
}

/// Render the canonical response a replica of `site` in `region` serves
/// at `variant` (a fetch-time discriminator for dynamic content: two
/// fetches at different times get different ad blocks). `viewer` is a
/// client-derived hint (hash of the peer address): registrar parking
/// engines geo-target by visitor, which is one of the false-positive
/// phenomena §6.2 of the paper documents.
pub fn render(site: &Site, region: RegionId, variant: u32, viewer: u16) -> HttpResponse {
    match site.kind {
        SiteKind::Dead => {
            // Dead sites have no server; callers should not reach this,
            // but render a connection-refused-like stub defensively.
            HttpResponse::new(503, "Service Unavailable", b"<html>gone</html>".to_vec())
        }
        SiteKind::RedirectOnly => {
            let body = format!(
                "<html><body>Moved: <a href=\"http://www.{d}/home\">here</a></body></html>",
                d = site.domain
            );
            HttpResponse::new(302, "Found", body.into_bytes())
                .with_header("Location", &format!("http://www.{}/home", site.domain))
                .with_header("Server", "nginx")
        }
        SiteKind::Parked => {
            // Parking pages are served by the registrar's geo-targeted ad
            // engine: title, body and even the ad-network headers differ
            // per visitor origin — without any censorship involved. The
            // site seed mixes in so the variation decorrelates across
            // domains (two observers don't disagree on *every* parked
            // page or none).
            let mix = (u64::from(viewer) ^ site.seed ^ (site.seed >> 17)) as u16;
            let zone = mix % 5;
            let ads = words(
                site.seed ^ (u64::from(mix) << 32) ^ 0xad5,
                120 + usize::from(mix % 7) * 60,
            );
            let body = format!(
                "<html><head><title>{d} parked zone{zone}</title></head><body>\
                 <h1>This domain may be for sale</h1><div class=\"geo-ads\">{ads}</div>\
                 </body></html>",
                d = site.domain
            );
            HttpResponse::new(200, "OK", body.into_bytes())
                .with_header("Server", "Apache")
                .with_header(&format!("X-Adnet-{}", mix % 3), "served")
        }
        SiteKind::Normal | SiteKind::TitleLess => {
            let core = words(site.seed, core_word_count(site));
            let mut body = String::new();
            body.push_str("<html><head>");
            if site.kind == SiteKind::Normal {
                if site.dynamic {
                    // Live-feed sites retitle per edition; editions are
                    // cut per edge region (and slowly over time).
                    body.push_str(&format!(
                        "<title>{d} — {c} portal · edition {e}</title>",
                        d = site.domain,
                        c = site.category.slug(),
                        e = (u32::from(region) * 7 + variant) % 13,
                    ));
                } else {
                    body.push_str(&format!(
                        "<title>{d} — {c} portal</title>",
                        d = site.domain,
                        c = site.category.slug()
                    ));
                }
            }
            body.push_str("</head><body><main>");
            body.push_str(&core);
            body.push_str("</main>");
            if site.dynamic {
                // Location- and time-dependent block: live feeds and ads.
                let jitter = words(
                    site.seed ^ (u64::from(region) << 24) ^ u64::from(variant),
                    80 + (usize::from(region) * 31 + variant as usize * 17) % 160,
                );
                body.push_str(&format!("<aside class=\"live\">{jitter}</aside>"));
            }
            body.push_str("</body></html>");
            let mut resp = HttpResponse::new(200, "OK", body.into_bytes())
                .with_header("Server", "nginx")
                .with_header("Content-Type", "text/html");
            if site.regional_dns {
                // CDN edges tag responses with their own cache headers —
                // different replicas expose different header *names*.
                resp = resp.with_header(&format!("X-Edge-{}", region % 4), "HIT");
            }
            resp
        }
    }
}

/// Render the `400 Bad Request` an RFC server answers to garbage framing
/// — the second response the covert-IM evasion elicits.
pub fn bad_request() -> HttpResponse {
    HttpResponse::new(
        400,
        "Bad Request",
        b"<html><body><h1>400 Bad Request</h1></body></html>".to_vec(),
    )
    .with_header("Server", "nginx")
}

/// Render a `404` for an unknown `Host` on a shared IP.
pub fn not_found(host: &str) -> HttpResponse {
    let body = format!("<html><body><h1>404</h1>No site \"{host}\" here.</body></html>");
    HttpResponse::new(404, "Not Found", body.into_bytes()).with_header("Server", "nginx")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::site::{Category, SiteId};

    fn site(kind: SiteKind, dynamic: bool) -> Site {
        Site {
            id: SiteId(1),
            domain: "test.example".into(),
            category: Category::Politics,
            kind,
            dynamic,
            replicas: vec![],
            regional_dns: false,
            seed: 0xfeed,
        }
    }

    #[test]
    fn rendering_is_deterministic() {
        let s = site(SiteKind::Normal, true);
        assert_eq!(render(&s, 3, 9, 1).emit(), render(&s, 3, 9, 1).emit());
    }

    #[test]
    fn static_sites_are_identical_across_regions() {
        let s = site(SiteKind::Normal, false);
        assert_eq!(render(&s, 0, 1, 1).body, render(&s, 9, 2, 2).body);
    }

    #[test]
    fn dynamic_sites_differ_across_regions_but_share_core() {
        let s = site(SiteKind::Normal, true);
        let a = render(&s, 0, 1, 1);
        let b = render(&s, 5, 2, 1);
        assert_ne!(a.body, b.body);
        let core = words(s.seed, core_word_count(&s));
        let a_s = String::from_utf8(a.body).unwrap();
        let b_s = String::from_utf8(b.body).unwrap();
        assert!(a_s.contains(&core) && b_s.contains(&core));
    }

    #[test]
    fn normal_pages_have_titles_titleless_do_not() {
        assert!(render(&site(SiteKind::Normal, false), 0, 0, 1).title().is_some());
        assert!(render(&site(SiteKind::TitleLess, false), 0, 0, 1).title().is_none());
    }

    #[test]
    fn redirect_only_is_small_and_titleless() {
        let r = render(&site(SiteKind::RedirectOnly, false), 0, 0, 1);
        assert_eq!(r.status, 302);
        assert!(r.header("location").unwrap().contains("test.example"));
        assert!(r.body.len() < 200);
        assert!(r.title().is_none());
    }

    #[test]
    fn parked_pages_differ_dramatically_by_region() {
        let s = site(SiteKind::Parked, false);
        let a = render(&s, 0, 0, 3).body;
        let b = render(&s, 6, 0, 9).body;
        assert_ne!(a, b);
        // Both clearly parking pages.
        assert!(String::from_utf8(a).unwrap().contains("for sale"));
    }

    #[test]
    fn error_pages_have_expected_statuses() {
        assert_eq!(bad_request().status, 400);
        assert_eq!(not_found("x").status, 404);
        assert!(bad_request().title().is_none());
    }

    #[test]
    fn word_generator_is_seed_sensitive() {
        assert_ne!(words(1, 50), words(2, 50));
        assert_eq!(words(3, 50), words(3, 50));
    }
}
