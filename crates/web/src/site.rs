//! Site records: what exists on the simulated web.

use std::collections::BTreeMap;
use std::net::Ipv4Addr;
use std::rc::Rc;

/// Identifies a site within a [`crate::Corpus`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SiteId(pub u32);

/// The paper's seven PBW categories, plus `Popular` for the Alexa-style
/// top sites used as connection targets in the coverage experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Category {
    /// Escort services.
    Escort,
    /// Pornography.
    Porn,
    /// Music sharing.
    Music,
    /// Torrent indexes.
    Torrent,
    /// Political content.
    Politics,
    /// Circumvention / hacking tools.
    Tools,
    /// Social networks.
    Social,
    /// Alexa-style popular sites (not in the PBW list).
    Popular,
}

impl Category {
    /// The seven PBW categories in a fixed order.
    pub const PBW: [Category; 7] = [
        Category::Escort,
        Category::Porn,
        Category::Music,
        Category::Torrent,
        Category::Politics,
        Category::Tools,
        Category::Social,
    ];

    /// Short label used in generated domain names.
    pub fn slug(self) -> &'static str {
        match self {
            Category::Escort => "escort",
            Category::Porn => "adult",
            Category::Music => "music",
            Category::Torrent => "torrent",
            Category::Politics => "politics",
            Category::Tools => "tools",
            Category::Social => "social",
            Category::Popular => "popular",
        }
    }
}

/// Content behaviour of a site — the phenomena behind OONI's errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SiteKind {
    /// Ordinary page with a title and stable core content.
    Normal,
    /// Previously hosted, now a registrar parking page that differs
    /// wildly by vantage (OONI false-positive source).
    Parked,
    /// Domain no longer resolves anywhere (tested sites that are simply
    /// gone; some ISPs still blocklist them).
    Dead,
    /// Answers only a `302` redirect with a tiny body and no title
    /// (OONI false-negative source: body length ≈ a block page's).
    RedirectOnly,
    /// Real content but no `<title>` tag (defeats OONI's title check).
    TitleLess,
}

/// One site.
#[derive(Debug, Clone)]
pub struct Site {
    /// Stable id.
    pub id: SiteId,
    /// Domain name (lowercase).
    pub domain: String,
    /// Category.
    pub category: Category,
    /// Content behaviour.
    pub kind: SiteKind,
    /// True when the page embeds location-dependent dynamic content
    /// (ads, live feeds) — large diffs across vantages without any
    /// censorship.
    pub dynamic: bool,
    /// Replica addresses hosting the site.
    pub replicas: Vec<Ipv4Addr>,
    /// True when DNS answers vary by region (CDN steering).
    pub regional_dns: bool,
    /// Deterministic per-site seed for content generation.
    pub seed: u64,
}

impl Site {
    /// True if the site actually serves something somewhere.
    pub fn is_alive(&self) -> bool {
        self.kind != SiteKind::Dead && !self.replicas.is_empty()
    }

    /// URL path used for fetches (always `/` in the corpus).
    pub fn path(&self) -> &'static str {
        "/"
    }
}

/// The directory servers consult: domain → site, plus reverse IP lookup.
#[derive(Debug, Default)]
pub struct SiteDirectory {
    by_domain: BTreeMap<String, Site>,
    by_ip: BTreeMap<Ipv4Addr, Vec<SiteId>>,
}

impl SiteDirectory {
    /// Build from an iterator of sites.
    pub fn new(sites: impl IntoIterator<Item = Site>) -> Self {
        let mut dir = SiteDirectory::default();
        for site in sites {
            for &ip in &site.replicas {
                dir.by_ip.entry(ip).or_default().push(site.id);
            }
            dir.by_domain.insert(site.domain.clone(), site);
        }
        dir
    }

    /// Look up a site by domain.
    pub fn by_domain(&self, domain: &str) -> Option<&Site> {
        self.by_domain.get(&domain.to_ascii_lowercase())
    }

    /// The sites hosted at an address (shared hosting yields several).
    pub fn sites_at(&self, ip: Ipv4Addr) -> &[SiteId] {
        self.by_ip.get(&ip).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Iterate all sites.
    pub fn iter(&self) -> impl Iterator<Item = &Site> {
        self.by_domain.values()
    }

    /// Number of sites.
    pub fn len(&self) -> usize {
        self.by_domain.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.by_domain.is_empty()
    }
}

/// Shared handle used by server apps (single-threaded simulator).
pub type SharedDirectory = Rc<SiteDirectory>;

#[cfg(test)]
mod tests {
    use super::*;

    fn site(id: u32, domain: &str, ip: Ipv4Addr) -> Site {
        Site {
            id: SiteId(id),
            domain: domain.into(),
            category: Category::Porn,
            kind: SiteKind::Normal,
            dynamic: false,
            replicas: vec![ip],
            regional_dns: false,
            seed: 7,
        }
    }

    #[test]
    fn directory_lookup_by_domain_is_case_insensitive() {
        let dir = SiteDirectory::new([site(1, "blocked.example", Ipv4Addr::new(1, 2, 3, 4))]);
        assert!(dir.by_domain("BLOCKED.Example").is_some());
        assert!(dir.by_domain("other.example").is_none());
    }

    #[test]
    fn shared_hosting_maps_multiple_sites_to_one_ip() {
        let ip = Ipv4Addr::new(9, 9, 9, 9);
        let dir = SiteDirectory::new([site(1, "a.example", ip), site(2, "b.example", ip)]);
        assert_eq!(dir.sites_at(ip).len(), 2);
        assert!(dir.sites_at(Ipv4Addr::new(1, 1, 1, 1)).is_empty());
    }

    #[test]
    fn dead_sites_are_not_alive() {
        let mut s = site(1, "x.example", Ipv4Addr::new(1, 1, 1, 1));
        s.kind = SiteKind::Dead;
        s.replicas.clear();
        assert!(!s.is_alive());
    }

    #[test]
    fn categories_have_unique_slugs() {
        use std::collections::HashSet;
        let slugs: HashSet<_> = Category::PBW.iter().map(|c| c.slug()).collect();
        assert_eq!(slugs.len(), 7);
    }
}
