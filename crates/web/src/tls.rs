//! A TLS-shaped port-443 service.
//!
//! The paper's HTTPS finding (§4.2) is *negative*: the middleboxes watch
//! only plaintext port-80 traffic, and the handful of "HTTPS filtering"
//! instances observed were really DNS poisoning upstream of the TLS
//! connection. Reproducing that requires 443 to carry traffic the
//! middleboxes could have (but do not) interfere with. This module
//! provides the minimum honest stand-in: a server that answers a
//! ClientHello-shaped record with a ServerHello-shaped record followed by
//! opaque ciphertext-looking bytes. No actual cryptography — nothing in
//! the paper depends on it — just the traffic shape.

use lucent_tcp::{SocketApp, SocketEvent, SocketIo};

/// TLS record type: handshake.
pub const RECORD_HANDSHAKE: u8 = 0x16;
/// TLS record type: application data.
pub const RECORD_APPDATA: u8 = 0x17;

/// Build a ClientHello-shaped probe for `sni`.
///
/// Layout: record header (type 0x16, version 3.3, length), then the SNI
/// bytes in the clear — which is exactly what a censor *could* match on,
/// and what the deployed middleboxes demonstrably do not.
pub fn client_hello(sni: &str) -> Vec<u8> {
    let body = format!("CLIENTHELLO sni={sni}");
    let mut out = vec![RECORD_HANDSHAKE, 0x03, 0x03];
    out.extend_from_slice(&(body.len() as u16).to_be_bytes());
    out.extend_from_slice(body.as_bytes());
    out
}

/// Does a server response parse as our ServerHello shape?
pub fn is_server_hello(bytes: &[u8]) -> bool {
    bytes.len() > 5 && bytes[0] == RECORD_HANDSHAKE && bytes[1] == 0x03 && bytes[2] == 0x03
}

/// The port-443 application: one per accepted connection.
pub struct TlsLikeApp {
    responded: bool,
}

impl TlsLikeApp {
    /// New connection handler.
    pub fn new() -> Self {
        TlsLikeApp { responded: false }
    }

    /// Listener factory for [`lucent_tcp::TcpHost::listen`].
    pub fn factory() -> impl Fn() -> Box<dyn SocketApp> {
        || Box::new(TlsLikeApp::new()) as Box<dyn SocketApp>
    }
}

impl Default for TlsLikeApp {
    fn default() -> Self {
        Self::new()
    }
}

impl SocketApp for TlsLikeApp {
    fn on_event(&mut self, io: &mut SocketIo<'_>, event: &SocketEvent) {
        match event {
            SocketEvent::Data { .. } if !self.responded => {
                let got = io.take_received();
                if got.first() == Some(&RECORD_HANDSHAKE) {
                    self.responded = true;
                    let mut hello = vec![RECORD_HANDSHAKE, 0x03, 0x03];
                    let body = b"SERVERHELLO certificate ciphersuite";
                    hello.extend_from_slice(&(body.len() as u16).to_be_bytes());
                    hello.extend_from_slice(body);
                    // A burst of opaque application data.
                    hello.push(RECORD_APPDATA);
                    hello.extend_from_slice(&(64u16).to_be_bytes());
                    hello.extend((0u8..64).map(|i| i.wrapping_mul(37).wrapping_add(11)));
                    io.send(&hello);
                    io.close();
                } else {
                    io.abort(); // not TLS-shaped: hang up
                }
            }
            SocketEvent::PeerFin => io.close(),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lucent_netsim::{IfaceId, Network, SimDuration};
    use lucent_tcp::{TcpHost, TcpState};
    use std::net::Ipv4Addr;

    const CLIENT: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const SERVER: Ipv4Addr = Ipv4Addr::new(203, 0, 113, 2);

    fn rig() -> (Network, lucent_netsim::NodeId, lucent_netsim::NodeId) {
        let mut net = Network::new();
        let client = net.add_node(Box::new(TcpHost::new(CLIENT, "c", 1)));
        let mut server = TcpHost::new(SERVER, "s", 2);
        server.listen(443, TlsLikeApp::factory());
        let server = net.add_node(Box::new(server));
        net.connect(client, IfaceId::PRIMARY, server, IfaceId::PRIMARY, SimDuration::from_millis(2));
        (net, client, server)
    }

    #[test]
    fn handshake_shape_roundtrips() {
        let (mut net, client, _) = rig();
        let sock = net.node_mut::<TcpHost>(client).unwrap().connect(SERVER, 443);
        net.wake(client);
        net.run_for(SimDuration::from_millis(50));
        assert_eq!(net.node_ref::<TcpHost>(client).unwrap().state(sock), TcpState::Established);
        net.node_mut::<TcpHost>(client).unwrap().send(sock, &client_hello("secret.example"));
        net.wake(client);
        net.run_for(SimDuration::from_millis(200));
        let got = net.node_mut::<TcpHost>(client).unwrap().take_received(sock);
        assert!(is_server_hello(&got), "{got:?}");
        assert!(got.contains(&RECORD_APPDATA));
    }

    #[test]
    fn non_tls_bytes_are_rejected() {
        let (mut net, client, _) = rig();
        let sock = net.node_mut::<TcpHost>(client).unwrap().connect(SERVER, 443);
        net.wake(client);
        net.run_for(SimDuration::from_millis(50));
        net.node_mut::<TcpHost>(client).unwrap().send(sock, b"GET / HTTP/1.1\r\n\r\n");
        net.wake(client);
        net.run_for(SimDuration::from_millis(200));
        let host = net.node_ref::<TcpHost>(client).unwrap();
        assert!(host
            .events(sock)
            .iter()
            .any(|e| e.event == lucent_tcp::SocketEvent::Reset));
    }

    #[test]
    fn client_hello_carries_sni_in_the_clear() {
        let hello = client_hello("blocked.example");
        assert_eq!(hello[0], RECORD_HANDSHAKE);
        let text = String::from_utf8_lossy(&hello[5..]);
        assert!(text.contains("sni=blocked.example"));
    }
}
