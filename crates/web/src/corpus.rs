//! Deterministic corpus generation: ~1200 PBWs in 7 categories plus the
//! Alexa-style popular list, with configurable rates for every content
//! phenomenon the paper identifies.

use std::net::Ipv4Addr;
use std::rc::Rc;

use lucent_netsim::SimRng;

use lucent_dns::DnsCatalog;
use lucent_netsim::routing::Cidr;

use crate::site::{Category, SharedDirectory, Site, SiteDirectory, SiteId, SiteKind};

/// Hands out hosting addresses from a set of prefixes, round-robin.
#[derive(Debug, Clone)]
pub struct IpAllocator {
    pools: Vec<Cidr>,
    cursor: u32,
}

impl IpAllocator {
    /// Allocate from the given prefixes. Host index 0 of each prefix is
    /// skipped (reserved for routers).
    pub fn new(pools: Vec<Cidr>) -> Self {
        assert!(!pools.is_empty(), "need at least one hosting prefix");
        IpAllocator { pools, cursor: 0 }
    }

    /// Next address. Host numbering starts at `.10`: low addresses are
    /// reserved for routers and other infrastructure.
    pub fn next_ip(&mut self) -> Ipv4Addr {
        let pool = &self.pools[(self.cursor as usize) % self.pools.len()];
        let span = pool.size() as u32 - 12;
        let within = 10 + (self.cursor / self.pools.len() as u32) % span;
        self.cursor += 1;
        pool.nth(within)
    }
}

/// Generation parameters. Rates apply to PBW sites; popular sites are
/// mostly normal, CDN-heavy and dynamic.
#[derive(Debug, Clone)]
pub struct CorpusConfig {
    /// Number of potentially-blocked websites (paper: ~1200).
    pub pbw_count: usize,
    /// Number of popular sites (paper: Alexa top 1000).
    pub popular_count: usize,
    /// Master seed.
    pub seed: u64,
    /// Fraction of PBWs that are registrar-parked.
    pub parked: f64,
    /// Fraction of PBWs that are dead (no longer resolve).
    pub dead: f64,
    /// Fraction of PBWs answering only a redirect.
    pub redirect_only: f64,
    /// Fraction of PBWs without a `<title>`.
    pub titleless: f64,
    /// Fraction of sites with location-dependent dynamic content.
    pub dynamic: f64,
    /// Fraction of sites on region-steering CDNs.
    pub regional_cdn: f64,
    /// Fraction of PBWs sharing a hosting IP with the previous site.
    pub shared_hosting: f64,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            pbw_count: 1200,
            popular_count: 1000,
            seed: 0x1ead_5eed,
            parked: 0.05,
            dead: 0.05,
            redirect_only: 0.07,
            titleless: 0.10,
            dynamic: 0.22,
            regional_cdn: 0.18,
            shared_hosting: 0.05,
        }
    }
}

/// The generated web.
pub struct Corpus {
    sites: Vec<Site>,
    /// Ids of the potentially-blocked websites.
    pub pbw: Vec<SiteId>,
    /// Ids of the popular (Alexa-style) sites.
    pub popular: Vec<SiteId>,
    directory: SharedDirectory,
}

impl Corpus {
    /// Generate deterministically from `cfg`, hosting everything on
    /// addresses drawn from `alloc`.
    pub fn generate(cfg: &CorpusConfig, alloc: &mut IpAllocator) -> Corpus {
        let mut rng = SimRng::seed_from_u64(cfg.seed);
        let mut sites = Vec::with_capacity(cfg.pbw_count + cfg.popular_count);
        let mut pbw = Vec::with_capacity(cfg.pbw_count);
        let mut popular = Vec::with_capacity(cfg.popular_count);
        let tlds = ["com", "net", "org", "in", "info"];
        let mut last_ip: Option<Ipv4Addr> = None;

        for i in 0..cfg.pbw_count {
            let id = SiteId(sites.len() as u32);
            let category = Category::PBW[i % Category::PBW.len()];
            let tld = tlds[i % tlds.len()];
            let domain = format!("{}{:04}.{}", category.slug(), i, tld);
            let roll: f64 = rng.gen();
            let kind = if roll < cfg.dead {
                SiteKind::Dead
            } else if roll < cfg.dead + cfg.parked {
                SiteKind::Parked
            } else if roll < cfg.dead + cfg.parked + cfg.redirect_only {
                SiteKind::RedirectOnly
            } else if roll < cfg.dead + cfg.parked + cfg.redirect_only + cfg.titleless {
                SiteKind::TitleLess
            } else {
                SiteKind::Normal
            };
            let regional = kind == SiteKind::Normal && rng.gen_bool(cfg.regional_cdn);
            let replicas = if kind == SiteKind::Dead {
                Vec::new()
            } else if regional {
                (0..rng.gen_range(3..=6)).map(|_| alloc.next_ip()).collect()
            } else {
                // The Bernoulli draw happens unconditionally so the RNG
                // stream (and thus every later site) is independent of
                // whether a previous IP exists.
                let shared = rng.gen_bool(cfg.shared_hosting);
                match last_ip {
                    Some(ip) if shared => vec![ip],
                    _ => vec![alloc.next_ip()],
                }
            };
            last_ip = replicas.first().copied().or(last_ip);
            sites.push(Site {
                id,
                domain,
                category,
                kind,
                dynamic: kind == SiteKind::Normal && rng.gen_bool(cfg.dynamic),
                replicas,
                regional_dns: regional,
                seed: rng.gen(),
            });
            pbw.push(id);
        }

        for i in 0..cfg.popular_count {
            let id = SiteId(sites.len() as u32);
            let domain = format!("top{:04}.{}", i, tlds[i % tlds.len()]);
            let regional = rng.gen_bool(0.5);
            let replicas = if regional {
                (0..rng.gen_range(3..=6)).map(|_| alloc.next_ip()).collect()
            } else {
                vec![alloc.next_ip()]
            };
            sites.push(Site {
                id,
                domain,
                category: Category::Popular,
                kind: SiteKind::Normal,
                dynamic: rng.gen_bool(0.5),
                replicas,
                regional_dns: regional,
                seed: rng.gen(),
            });
            popular.push(id);
        }

        // Shared hosting is a structural property virtual-hosting
        // experiments rely on, not just a statistical one: the Bernoulli
        // draws above can miss it entirely at small corpus sizes, so
        // force one pair if none materialized.
        let any_shared = {
            let mut firsts: Vec<Ipv4Addr> =
                sites.iter().filter_map(|s| s.replicas.first().copied()).collect();
            firsts.sort_unstable();
            firsts.windows(2).any(|w| w[0] == w[1])
        };
        if !any_shared {
            let singles: Vec<usize> = sites
                .iter()
                .enumerate()
                .filter(|(_, s)| {
                    s.kind == SiteKind::Normal && !s.regional_dns && s.replicas.len() == 1
                })
                .map(|(i, _)| i)
                .collect();
            if let [first, .., last] = singles.as_slice() {
                sites[*last].replicas = sites[*first].replicas.clone();
            }
        }

        let directory = Rc::new(SiteDirectory::new(sites.clone()));
        Corpus { sites, pbw, popular, directory }
    }

    /// A site by id.
    pub fn site(&self, id: SiteId) -> &Site {
        &self.sites[id.0 as usize]
    }

    /// All sites.
    pub fn sites(&self) -> &[Site] {
        &self.sites
    }

    /// The shared directory server apps consult.
    pub fn directory(&self) -> SharedDirectory {
        Rc::clone(&self.directory)
    }

    /// Load every site into a DNS catalog.
    pub fn populate_dns(&self, catalog: &mut DnsCatalog) {
        for site in &self.sites {
            match site.kind {
                SiteKind::Dead => catalog.add_dead(&site.domain),
                _ if site.regional_dns => {
                    catalog.add_regional(&site.domain, site.replicas.clone())
                }
                _ => catalog.add_global(&site.domain, site.replicas.clone()),
            }
        }
    }

    /// Every distinct hosting address in the corpus (the set of web
    /// server nodes the topology must instantiate).
    pub fn hosting_ips(&self) -> Vec<Ipv4Addr> {
        let mut ips: Vec<Ipv4Addr> = self
            .sites
            .iter()
            .flat_map(|s| s.replicas.iter().copied())
            .collect();
        ips.sort();
        ips.dedup();
        ips
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> CorpusConfig {
        CorpusConfig { pbw_count: 140, popular_count: 50, ..CorpusConfig::default() }
    }

    fn alloc() -> IpAllocator {
        IpAllocator::new(vec![
            "198.51.100.0/24".parse().unwrap(),
            "203.0.113.0/24".parse().unwrap(),
            "192.0.2.0/24".parse().unwrap(),
        ])
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Corpus::generate(&small_cfg(), &mut alloc());
        let b = Corpus::generate(&small_cfg(), &mut alloc());
        assert_eq!(a.sites.len(), b.sites.len());
        for (x, y) in a.sites.iter().zip(b.sites.iter()) {
            assert_eq!(x.domain, y.domain);
            assert_eq!(x.replicas, y.replicas);
            assert_eq!(x.seed, y.seed);
        }
    }

    #[test]
    fn counts_and_categories() {
        let c = Corpus::generate(&small_cfg(), &mut alloc());
        assert_eq!(c.pbw.len(), 140);
        assert_eq!(c.popular.len(), 50);
        // All 7 categories represented.
        for cat in Category::PBW {
            assert!(c.sites().iter().any(|s| s.category == cat), "{cat:?}");
        }
    }

    #[test]
    fn phenomena_are_present() {
        let c = Corpus::generate(&CorpusConfig::default(), &mut alloc());
        let kinds: Vec<SiteKind> = c.sites().iter().map(|s| s.kind).collect();
        for want in [SiteKind::Normal, SiteKind::Parked, SiteKind::Dead, SiteKind::RedirectOnly, SiteKind::TitleLess] {
            assert!(kinds.contains(&want), "{want:?} missing");
        }
        assert!(c.sites().iter().any(|s| s.dynamic));
        assert!(c.sites().iter().any(|s| s.regional_dns && s.replicas.len() >= 3));
        // Shared hosting: some IP hosts more than one site.
        let dir = c.directory();
        assert!(c.hosting_ips().iter().any(|&ip| dir.sites_at(ip).len() > 1));
    }

    #[test]
    fn dns_population_matches_liveness() {
        let c = Corpus::generate(&small_cfg(), &mut alloc());
        let mut catalog = DnsCatalog::new();
        c.populate_dns(&mut catalog);
        assert_eq!(catalog.len(), c.sites().len());
        for site in c.sites() {
            let name = lucent_packet::dns::Name::new(&site.domain);
            let resolved = catalog.resolve(&name, 0);
            assert_eq!(resolved.is_some(), site.is_alive(), "{}", site.domain);
        }
    }

    #[test]
    fn allocator_reserves_infrastructure_addresses() {
        let mut a = IpAllocator::new(vec!["10.9.0.0/24".parse().unwrap()]);
        for _ in 0..600 {
            let ip = a.next_ip();
            let last = ip.octets()[3];
            assert!((10..=253).contains(&last), "{ip} outside host range");
        }
    }
}
