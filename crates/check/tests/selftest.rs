//! The harness self-test demanded by the acceptance criteria: plant a
//! known bug, prove the campaign *finds* it, *shrinks* it to the known
//! minimal counterexample, and that the printed seed/tape *replays* the
//! identical case on a second run.
//!
//! The planted bug lives in `lucent_check::planted`: `cap_with(bug, v)`
//! forgets to clamp values above `CAP` when `bug` is true. Its minimal
//! counterexample is exactly `CAP + 1 = 1001` — one tape word, hex
//! `3e9`.

use lucent_check::planted::{cap_with, CAP};
use lucent_check::{parse_tape, replay, run, Config, Source};

/// The buggy property: with the bug forced on, capping must still bound
/// the result — it does not for `v > CAP`.
fn buggy(s: &mut Source) {
    let v = s.any_u64();
    let capped = cap_with(true, v);
    assert!(capped <= CAP, "cap_with let {capped} through");
}

#[test]
fn the_harness_finds_and_shrinks_the_planted_bug() {
    let cfg = Config::cases(64).with_seed(0xBAD_5EED);
    let finding = run(&cfg, buggy).expect("the planted bug must be found");
    // Shrinking must land on the exact boundary counterexample.
    assert_eq!(finding.minimal, vec![CAP + 1], "minimal counterexample is CAP + 1");
    assert_eq!(finding.minimal_hex(), "3e9");
    assert_eq!(finding.minimal_message, format!("cap_with let {} through", CAP + 1));
    // The report must carry the seed and a replayable tape.
    let report = finding.report();
    assert!(report.contains("seed 0x0000000"), "report names the seed: {report}");
    assert!(report.contains("assert_replay(\"3e9\""), "report is replayable: {report}");
}

#[test]
fn the_printed_seed_replays_the_identical_minimal_case() {
    let cfg = Config::cases(64).with_seed(0xBAD_5EED);
    let first = run(&cfg, buggy).expect("must fail");
    let second = run(&cfg, buggy).expect("must fail");
    // Same seed, same config → byte-identical finding, twice.
    assert_eq!(first.report(), second.report());
    // The hex tape from the report round-trips and still fails with the
    // same message — the reproduce-from-a-CI-log loop.
    let tape = parse_tape(&first.minimal_hex()).expect("report tape parses");
    let err = replay(&tape, buggy).expect_err("minimal tape must still fail");
    assert_eq!(err, first.minimal_message);
}

#[test]
fn the_fixed_code_passes_the_same_property() {
    // With the bug off, the identical property holds at every seed the
    // buggy variant failed under — the find was real, not flaky.
    let ok = run(&Config::cases(256).with_seed(0xBAD_5EED), |s| {
        let v = s.any_u64();
        assert!(cap_with(false, v) <= CAP);
    });
    assert!(ok.is_none(), "the fixed cap must hold");
}

/// With `--features planted-bug` the *production* `cap` inherits the bug
/// and the campaign's oracle catalogue must go red — the CI negative
/// control that proves the fuzz-smoke gate can actually fail.
#[cfg(feature = "planted-bug")]
#[test]
fn the_campaign_goes_red_under_the_planted_feature() {
    let (transcript, findings) = lucent_check::report::campaign(64, 0xBAD_5EED, 1, false);
    assert!(findings > 0, "campaign must find the planted bug:\n{transcript}");
    assert!(transcript.contains("FAIL planted_cap_is_bounded"), "{transcript}");
}
