//! A deliberately planted defect, used to prove the harness closes the
//! find → shrink → replay loop.
//!
//! [`cap_with`] carries the bug explicitly so the in-tree self-test can
//! always exercise it; [`cap`] switches the bug on only under
//! `--features planted-bug`, which is how CI demonstrates that the
//! `fuzz-smoke` campaign actually detects a seeded defect (the campaign
//! must exit non-zero with that feature, and cleanly without it).

/// The cap the SUT must never exceed.
pub const CAP: u64 = 1000;

/// Clamp `v` to [`CAP`] — unless the bug is switched on, in which case
/// values above the cap leak through unchanged. The minimal
/// counterexample is exactly `CAP + 1`, which is what the shrinker must
/// recover from any failing draw.
pub fn cap_with(bug: bool, v: u64) -> u64 {
    if bug && v > CAP {
        v
    } else {
        v.min(CAP)
    }
}

/// The campaign-facing SUT: buggy only under `--features planted-bug`.
pub fn cap(v: u64) -> u64 {
    cap_with(cfg!(feature = "planted-bug"), v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_correct_path_clamps() {
        assert_eq!(cap_with(false, 0), 0);
        assert_eq!(cap_with(false, CAP), CAP);
        assert_eq!(cap_with(false, u64::MAX), CAP);
    }

    #[test]
    fn the_bug_leaks_above_the_cap_only() {
        assert_eq!(cap_with(true, CAP), CAP);
        assert_eq!(cap_with(true, CAP + 1), CAP + 1);
    }
}
