//! Corruption operators: mutate a *valid* wire image into an adversarial
//! one. Structure-aware fuzzing lives here — instead of feeding parsers
//! pure noise (which dies at the first length field), we take an image a
//! real emitter produced and damage it in protocol-plausible ways: bit
//! flips, byte stomps, truncation, slice duplication, insertion, swaps.

use crate::source::Source;

/// Cap on image growth under duplication/insertion.
const MAX_LEN: usize = 4096;

/// Apply 1–4 corruption operators to `wire` in place.
pub fn corrupt(s: &mut Source, wire: &mut Vec<u8>) {
    let ops = s.len_in(1, 4);
    for _ in 0..ops {
        apply_one(s, wire);
    }
}

fn apply_one(s: &mut Source, wire: &mut Vec<u8>) {
    if wire.is_empty() {
        wire.push(s.any_u8());
        return;
    }
    let len = wire.len();
    match s.below(6) {
        0 => {
            // Single-bit flip.
            let i = s.len_in(0, len - 1);
            let bit = s.below(8) as u8;
            wire[i] ^= 1 << bit;
        }
        1 => {
            // Byte stomp.
            let i = s.len_in(0, len - 1);
            wire[i] = s.any_u8();
        }
        2 => {
            // Truncate.
            let keep = s.len_in(0, len - 1);
            wire.truncate(keep);
        }
        3 => {
            // Duplicate a slice after itself (length-field confusion).
            let start = s.len_in(0, len - 1);
            let end = s.len_in(start, len);
            let slice: Vec<u8> = wire[start..end].to_vec();
            if wire.len() + slice.len() <= MAX_LEN {
                let at = end.min(wire.len());
                wire.splice(at..at, slice);
            }
        }
        4 => {
            // Insert a byte.
            if wire.len() < MAX_LEN {
                let i = s.len_in(0, len);
                wire.insert(i, s.any_u8());
            }
        }
        _ => {
            // Swap two positions.
            let i = s.len_in(0, len - 1);
            let j = s.len_in(0, len - 1);
            wire.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corruption_is_replayable() {
        let original: Vec<u8> = (0..64).collect();
        let mut a = Source::new(21, 0);
        let mut x = original.clone();
        corrupt(&mut a, &mut x);
        let mut b = Source::replay(a.tape());
        let mut y = original.clone();
        corrupt(&mut b, &mut y);
        assert_eq!(x, y);
    }

    #[test]
    fn corruption_always_changes_or_bounds_the_image() {
        let mut s = Source::new(9, 0);
        for _ in 0..256 {
            let mut wire: Vec<u8> = (0..32).collect();
            corrupt(&mut s, &mut wire);
            assert!(wire.len() <= MAX_LEN);
        }
    }

    #[test]
    fn empty_images_grow_a_byte() {
        let mut s = Source::replay(&[]);
        let mut wire = Vec::new();
        corrupt(&mut s, &mut wire);
        assert_eq!(wire.len(), 1);
    }
}
