//! # lucent-check
//!
//! Structure-aware deterministic fuzzing and property testing for the
//! lucent workspace — dependency-free, seeded, and replayable.
//!
//! The design is choice-tape (Hypothesis-style) rather than type-class
//! (QuickCheck-style): every random decision a generator makes is one
//! `u64` recorded on a tape ([`source::Source`]). Shrinking never needs
//! per-type shrinkers — [`shrink::minimize`] edits the *tape* (deleting
//! chunks, zeroing chunks, binary-searching values toward zero) and
//! re-runs the property, so any generator composed from a `Source`
//! shrinks for free, and a shrunk counterexample is replayed exactly by
//! feeding its tape back in ([`runner::assert_replay`]).
//!
//! Layers:
//!
//! - [`source`] — the recorded/replayed choice tape and primitive draws;
//! - [`gen`] — combinators ([`Gen`]) over a `Source`;
//! - [`packets`] — structured generators for every wire format in
//!   `lucent-packet`, plus [`corrupt`]'s mutate-a-valid-image operators;
//! - [`shrink`] — greedy tape minimization;
//! - [`runner`] — the case loop: [`check`] panics with a replayable
//!   report, [`run`] returns the [`Finding`];
//! - [`oracles`] — differential and round-trip properties over
//!   `lucent-packet`, `lucent-tcp`, `lucent-middlebox`, and the
//!   `lucent-devtools` lexer/parser (fed by [`rustish`]);
//! - [`rustish`] — Rust-ish token soup (raw strings, nested block
//!   comments, escaped literals) for the lint totality oracles;
//! - [`diffmb`] — the differential equivalence harness holding the
//!   declarative policy engine byte-identical to the legacy
//!   middleboxes (random spec → rendered policy TOML → twin rigs);
//! - [`invariants`] — metamorphic properties through the real simulation
//!   stack (header-permutation invariance, blocklist monotonicity,
//!   shard-count invariance);
//! - [`report`] — the deterministic `fuzz-smoke` campaign transcript;
//! - [`planted`] — a feature-gated seeded defect proving the
//!   find → shrink → replay loop end to end.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod corrupt;
pub mod diffmb;
pub mod gen;
pub mod invariants;
pub mod oracles;
pub mod packets;
pub mod planted;
pub mod report;
pub mod runner;
pub mod rustish;
pub mod shrink;
pub mod source;

pub use gen::Gen;
pub use runner::{assert_replay, check, parse_tape, replay, run, tape_hex, Config, Finding};
pub use source::Source;
