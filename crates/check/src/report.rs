//! Campaign assembly and the sanctioned console reporter.
//!
//! [`campaign`] runs the whole oracle catalogue plus the simulation
//! invariants at a fixed seed and returns a deterministic transcript:
//! byte-identical across runs at the same seed, and independent of the
//! thread count handed to the shard-invariance check (that is the very
//! property it verifies). [`print_report`] is the single place the
//! crate writes to stdout — it is allowlisted as an L6 print sink in
//! `lucent-devtools`; everything else returns strings to the caller.

use std::fmt::Write as _;

use crate::invariants;
use crate::oracles;
use crate::runner::{run, Config};
use crate::source::Source;

/// Append one property's outcome to the transcript; returns 1 on a
/// finding, 0 otherwise.
fn run_one(out: &mut String, name: &str, cfg: &Config, prop: fn(&mut Source)) -> u32 {
    match run(cfg, prop) {
        None => {
            let _ = writeln!(out, "  ok   {name} ({} cases)", cfg.cases);
            0
        }
        Some(f) => {
            let _ = writeln!(out, "  FAIL {name}");
            for line in f.report().lines() {
                let _ = writeln!(out, "       {line}");
            }
            1
        }
    }
}

/// Run the bounded campaign: every oracle in
/// [`oracles::all`] at `cases` cases, then (unless `with_sim` is off)
/// the metamorphic simulation invariants, including the shard-count
/// invariance check at `threads` threads. Returns the transcript and
/// the number of findings.
pub fn campaign(cases: u32, seed: u64, threads: usize, with_sim: bool) -> (String, u32) {
    let mut out = String::new();
    let mut findings = 0u32;
    let _ = writeln!(out, "lucent-check campaign: seed {seed:#x}, {cases} case(s) per oracle");
    let _ = writeln!(out, "== oracles ==");
    for (name, oracle) in oracles::all() {
        findings += run_one(&mut out, name, &Config::cases(cases).with_seed(seed), oracle);
    }
    if with_sim {
        let _ = writeln!(out, "== simulation invariants ==");
        findings += run_one(
            &mut out,
            "header_permutation_verdicts",
            &Config::cases(cases).with_seed(seed),
            invariants::header_permutation_verdicts,
        );
        findings += run_one(
            &mut out,
            "blocklist_monotonicity",
            &Config::cases(cases).with_seed(seed),
            invariants::blocklist_monotonicity,
        );
        // The live-rig property runs whole simulations per case; scale
        // its budget down so the smoke campaign stays CI-sized.
        findings += run_one(
            &mut out,
            "wiretap_verdicts_are_header_invariant",
            &Config::cases((cases / 16).max(1)).with_seed(seed),
            invariants::wiretap_verdicts_are_header_invariant,
        );
        match invariants::shard_invariance(threads) {
            Ok(()) => {
                let _ = writeln!(out, "  ok   shard_invariance");
            }
            Err(e) => {
                findings += 1;
                let _ = writeln!(out, "  FAIL shard_invariance");
                let _ = writeln!(out, "       {e}");
            }
        }
    }
    let _ = writeln!(
        out,
        "campaign finished: {findings} finding(s){}",
        if findings == 0 { "" } else { " — replay each with lucent_check::assert_replay" }
    );
    (out, findings)
}

/// Print a campaign transcript to stdout. The crate's one sanctioned
/// console sink.
pub fn print_report(transcript: &str) {
    print!("{transcript}");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::DEFAULT_SEED;

    #[test]
    fn a_clean_campaign_reports_zero_findings() {
        let (transcript, findings) = campaign(8, DEFAULT_SEED, 2, false);
        assert_eq!(findings, 0, "{transcript}");
        assert!(transcript.contains("ok   checksum_split"), "{transcript}");
        assert!(transcript.contains("campaign finished: 0 finding(s)"), "{transcript}");
    }

    #[test]
    fn transcripts_are_byte_identical_across_runs() {
        let a = campaign(8, 0xFEED, 2, false);
        let b = campaign(8, 0xFEED, 2, false);
        assert_eq!(a, b);
    }
}
