//! Metamorphic simulation invariants, run through the *real* simulation
//! stack rather than unit fixtures:
//!
//! - **Header-permutation invariance** (paper §5: middleboxes trigger
//!   solely on the `Host` header) — a request's censorship verdict must
//!   not change when censorship-irrelevant headers are added, renamed or
//!   reordered. Checked at the matcher level, the config level, and
//!   end-to-end through a client–router–server rig with a live
//!   policy-interpreted wiretap ([`PolicyBox`]) on a mirror port.
//! - **Blocklist monotonicity** — growing a blocklist can only grow the
//!   set of censored domains, never unblock one.
//! - **Shard invariance** — the sharded experiment driver produces
//!   byte-identical JSON and metrics artifacts at any thread count
//!   (the contract behind the golden-artifact diffs in CI).

use std::net::Ipv4Addr;

use lucent_bench::drive::Driver;
use lucent_bench::Scale;
use lucent_core::experiments::race::RaceOptions;
use lucent_middlebox::notice::looks_like_notice;
use lucent_middlebox::policy::Policy;
use lucent_middlebox::{HostMatcher, Instance, MiddleboxConfig, NoticeStyle, PolicyBox};
use lucent_netsim::routing::Cidr;
use lucent_netsim::{IfaceId, Network, NodeId, RouterNode, SimDuration};
use lucent_obs::Telemetry;
use lucent_packet::http::RequestBuilder;
use lucent_packet::HttpResponse;
use lucent_support::json::to_string_pretty;
use lucent_tcp::{FixedResponder, TcpHost};
use lucent_topology::IspId;

use crate::packets;
use crate::source::Source;

const MATCHERS: [HostMatcher; 3] =
    [HostMatcher::ExactToken, HostMatcher::StrictPattern, HostMatcher::LastHost];

/// Unwrap an `Option` without spending the L4 panic budget (see
/// `oracles::ok`): a miss aborts the case via `panic_any`.
fn must<T>(v: Option<T>, what: &str) -> T {
    match v {
        Some(x) => x,
        None => std::panic::panic_any(format!("{what}: unexpectedly absent")),
    }
}

/// A request carrying the same `Host` and request line as the canonical
/// browser request, but with 0–5 arbitrary innocuous (`x-…`) headers
/// shuffled around it — the censorship-irrelevant permutation of §5.
pub fn permuted_request(s: &mut Source, host: &str, path: &str) -> Vec<u8> {
    let mut headers: Vec<(String, String)> = vec![("Host".to_string(), host.to_string())];
    let extras = s.len_in(0, 5);
    for i in 0..extras {
        // `x-` prefixed names can never collide with any matcher's idea
        // of a Host line; values stay on their own line so they cannot
        // either.
        let name = format!("x-{}-{i}", s.string(packets::ALNUM_LOWER, 1, 8));
        let value = s.string("abcdefghijklmnopqrstuvwxyz0123456789._-", 0, 12);
        headers.push((name, value));
    }
    s.shuffle(&mut headers);
    let mut b = RequestBuilder::get(path);
    for (name, value) in &headers {
        b = b.header(name, value);
    }
    b.build()
}

/// Matcher- and config-level §5 invariance: every matcher extracts the
/// same domain from the canonical and the permuted request, and any
/// config reaches the same verdict on both.
pub fn header_permutation_verdicts(s: &mut Source) {
    let host = packets::host_name(s);
    let path = packets::url_path(s);
    let canonical = RequestBuilder::browser(&host, &path).build();
    let permuted = permuted_request(s, &host, &path);
    for m in MATCHERS {
        let a = m.extract(&canonical);
        let b = m.extract(&permuted);
        assert_eq!(a, b, "{m:?} changed its extraction under header permutation");
        assert_eq!(a.as_deref(), Some(host.as_str()), "{m:?} must see the host");
    }
    let blocked = s.any_bool();
    let target = if blocked { host.clone() } else { format!("not-{host}") };
    let mut cfg = MiddleboxConfig::new([target]);
    cfg.matcher = *s.pick(&MATCHERS);
    let verdict =
        |req: &[u8]| cfg.matcher.extract(req).is_some_and(|d| cfg.blocks(&d));
    assert_eq!(
        verdict(&canonical),
        verdict(&permuted),
        "verdict changed under header permutation ({:?})",
        cfg.matcher
    );
    assert_eq!(verdict(&canonical), blocked);
}

/// Config-level blocklist monotonicity: `blocks(B, d)` implies
/// `blocks(B ∪ {x}, d)` for every extra domain `x`.
pub fn blocklist_monotonicity(s: &mut Source) {
    let n = s.len_in(1, 4);
    let base: Vec<String> = (0..n).map(|_| packets::dns_name(s)).collect();
    let extra = packets::dns_name(s);
    let probe = if s.any_bool() {
        base[s.len_in(0, n - 1)].clone()
    } else {
        packets::dns_name(s)
    };
    let small = MiddleboxConfig::new(base.clone());
    let big = MiddleboxConfig::new(base.into_iter().chain([extra.clone()]));
    if small.blocks(&probe) {
        assert!(big.blocks(&probe), "adding {extra:?} to the blocklist unblocked {probe:?}");
    }
    assert!(big.blocks(&extra), "a listed domain must be blocked");
}

const CLIENT: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);
const SERVER: Ipv4Addr = Ipv4Addr::new(203, 0, 113, 2);

struct Rig {
    net: Network,
    client: NodeId,
    wm: NodeId,
}

/// client — router (mirror → WM) — server, with the server 30 ms away so
/// the wiretap's injection deterministically wins the race. The device
/// is a [`PolicyBox`] running the single-rule wiretap program derived
/// from `cfg` — the same construction path the topology uses for
/// censors without a committed policy file.
fn build_rig(cfg: MiddleboxConfig) -> Rig {
    let mut net = Network::new();
    let client = net.add_node(Box::new(TcpHost::new(CLIENT, "client", 1)));
    let mut server_host = TcpHost::new(SERVER, "server", 2);
    server_host.listen(80, move || {
        Box::new(FixedResponder::new(
            HttpResponse::new(
                200,
                "OK",
                b"<html><head><title>Real</title></head><body>content</body></html>".to_vec(),
            )
            .emit(),
        ))
    });
    let server = net.add_node(Box::new(server_host));
    let mut r = RouterNode::new(Ipv4Addr::new(10, 0, 0, 1), "r");
    r.table.add(Cidr::new(CLIENT, 24), IfaceId(0));
    r.table.add(Cidr::new(SERVER, 24), IfaceId(1));
    r.mirrors.push(IfaceId(2));
    let r = net.add_node(Box::new(r));
    let mut policy = Policy::wiretap_like(
        "wm",
        cfg.matcher,
        cfg.notice.clone(),
        cfg.fixed_ip_id,
        cfg.injection_delay_us,
        cfg.slow_injection,
    );
    policy.ports = cfg.ports.clone();
    policy.flow_timeout = cfg.flow_timeout;
    let inst = Instance { blocklist: cfg.blocklist, client_filter: cfg.client_filter, seed: cfg.seed };
    let wm = net.add_node(Box::new(PolicyBox::new(policy, inst, "wm")));
    net.connect(client, IfaceId::PRIMARY, r, IfaceId(0), SimDuration::from_millis(1));
    net.connect(r, IfaceId(1), server, IfaceId::PRIMARY, SimDuration::from_millis(31));
    net.connect(r, IfaceId(2), wm, IfaceId::PRIMARY, SimDuration::from_micros(80));
    Rig { net, client, wm }
}

fn wm_config(target: &str) -> MiddleboxConfig {
    let mut cfg = MiddleboxConfig::new([target.to_string()]);
    cfg.fixed_ip_id = Some(242);
    cfg.notice = Some(NoticeStyle::airtel_like());
    cfg
}

/// Open a connection, send `request` verbatim, and return what the
/// client ends up receiving.
fn fetch_raw(rig: &mut Rig, request: &[u8]) -> Vec<u8> {
    let sock = must(rig.net.node_mut::<TcpHost>(rig.client), "client node").connect(SERVER, 80);
    rig.net.wake(rig.client);
    rig.net.run_for(SimDuration::from_millis(100));
    must(rig.net.node_mut::<TcpHost>(rig.client), "client node").send(sock, request);
    rig.net.wake(rig.client);
    rig.net.run_for(SimDuration::from_millis(2000));
    must(rig.net.node_mut::<TcpHost>(rig.client), "client node").take_received(sock)
}

fn injections(rig: &Rig) -> u64 {
    must(rig.net.node_ref::<PolicyBox>(rig.wm), "wm node").triggers
}

/// End-to-end §5 invariance and monotonicity through a live wiretap
/// middlebox: the injection count and the client-visible outcome
/// (notice page vs real content) are identical for the canonical and
/// permuted request, and growing the blocklist never changes a blocked
/// domain's fate.
pub fn wiretap_verdicts_are_header_invariant(s: &mut Source) {
    let host = packets::host_name(s);
    let path = packets::url_path(s);
    let blocked = s.any_bool();
    let target = if blocked { host.clone() } else { format!("not-{host}") };
    let canonical = RequestBuilder::browser(&host, &path).build();
    let permuted = permuted_request(s, &host, &path);
    let extra = packets::dns_name(s);

    let observe = |cfg: MiddleboxConfig, req: &[u8]| {
        let mut rig = build_rig(cfg);
        let got = fetch_raw(&mut rig, req);
        let notice = HttpResponse::parse(&got).ok().map(|r| looks_like_notice(&r));
        (injections(&rig), notice)
    };

    let (inj_canon, notice_canon) = observe(wm_config(&target), &canonical);
    let (inj_perm, notice_perm) = observe(wm_config(&target), &permuted);
    assert_eq!(inj_canon, inj_perm, "injection count changed under header permutation");
    assert_eq!(notice_canon, notice_perm, "client outcome changed under header permutation");
    assert_eq!(inj_canon > 0, blocked, "the wiretap fired iff the host was listed");
    assert_eq!(notice_canon, Some(blocked), "the client saw the notice iff blocked");

    let mut bigger = wm_config(&target);
    bigger.blocklist.insert(format!("extra-{extra}"));
    let (inj_big, notice_big) = observe(bigger, &canonical);
    assert_eq!(inj_big, inj_canon, "growing the blocklist changed the injection count");
    assert_eq!(notice_big, notice_canon, "growing the blocklist changed the outcome");
}

/// Run the race experiment on the tiny topology at `--threads 1` and
/// `--threads max(2, threads)` and demand byte-identical result JSON and
/// metrics snapshots — the sharding layer must be observationally
/// invisible (extends `tests/it_shards.rs` into the fuzz campaign).
pub fn shard_invariance(threads: usize) -> Result<(), String> {
    let opts =
        RaceOptions { isps: vec![IspId::Airtel, IspId::Idea], attempts: 3, sites_per_isp: 1 };
    let at = |t: usize| {
        let drv = Driver::new(Scale::Tiny, t, None);
        let hub = Telemetry::new();
        let json = to_string_pretty(&drv.race(&hub, &opts));
        (json, hub.metrics_snapshot_pretty())
    };
    let threads = threads.max(2);
    let one = at(1);
    let many = at(threads);
    if one != many {
        return Err(format!(
            "race artifacts differ between --threads 1 and --threads {threads}"
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{check, Config};

    #[test]
    fn matcher_and_config_verdicts_ignore_innocuous_headers() {
        check(&Config::cases(96), header_permutation_verdicts);
    }

    #[test]
    fn blocklists_are_monotone() {
        check(&Config::cases(96), blocklist_monotonicity);
    }

    #[test]
    fn the_live_wiretap_rig_is_permutation_invariant() {
        check(&Config::cases(6), wiretap_verdicts_are_header_invariant);
    }

    #[test]
    fn sharding_is_observationally_invisible() {
        shard_invariance(4).unwrap();
    }
}
