//! `fuzz-smoke`: the bounded, seeded fuzz campaign CI runs offline.
//!
//! Runs every oracle and simulation invariant at a fixed seed and a
//! bounded case count, prints the deterministic transcript, and exits
//! non-zero on any finding. With `--features planted-bug` the campaign
//! must fail — CI uses that as a negative control proving the harness
//! detects a seeded defect.
//!
//! ```text
//! fuzz-smoke [--cases N] [--seed S] [--threads N] [--no-sim]
//! ```

use std::process::exit;

const USAGE: &str = "fuzz-smoke [--cases N] [--seed S] [--threads N] [--no-sim]
  --cases N    cases per oracle (default 64)
  --seed S     campaign seed, decimal or 0x-hex (default lucent-check's)
  --threads N  thread count exercised by the shard-invariance check (default 4)
  --no-sim     skip the simulation invariants (oracles only)";

fn bad(msg: &str) -> ! {
    eprintln!("{msg}\nusage: {USAGE}");
    exit(2);
}

fn parse_u64(flag: &str, value: Option<String>) -> u64 {
    let Some(v) = value else { bad(&format!("{flag} needs a value")) };
    let parsed = match v.strip_prefix("0x") {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => v.parse(),
    };
    match parsed {
        Ok(n) => n,
        Err(_) => bad(&format!("{flag} needs a number, got {v:?}")),
    }
}

fn main() {
    let mut cases: u32 = 64;
    let mut seed: u64 = lucent_check::runner::DEFAULT_SEED;
    let mut threads: usize = 4;
    let mut with_sim = true;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--cases" => cases = parse_u64("--cases", args.next()) as u32,
            "--seed" => seed = parse_u64("--seed", args.next()),
            "--threads" => {
                threads = parse_u64("--threads", args.next()) as usize;
                if threads == 0 {
                    bad("--threads needs a positive integer");
                }
            }
            "--no-sim" => with_sim = false,
            "--help" | "-h" => {
                println!("usage: {USAGE}");
                exit(0);
            }
            other => bad(&format!("unknown flag {other:?}")),
        }
    }
    if cases == 0 {
        bad("--cases needs a positive integer");
    }
    let (transcript, findings) = lucent_check::report::campaign(cases, seed, threads, with_sim);
    lucent_check::report::print_report(&transcript);
    if findings > 0 {
        exit(1);
    }
}
