//! A generator of Rust-ish token soup for fuzzing the `lucent-devtools`
//! scrubbing lexer and item parser.
//!
//! The output is *not* valid Rust — it is a concatenation of the
//! constructs the lexer has to get right: raw strings with hash fences,
//! nested block comments, byte and char literals with escapes,
//! lifetimes (which look like unterminated char literals), and item
//! keywords with unbalanced braces. Possibly-unterminated fragments are
//! generated on purpose: the lexer and parser both claim totality on
//! arbitrary input, and that claim is only worth something if the
//! input distribution actually covers the nasty corners.

use crate::source::Source;

const KEYWORDS: [&str; 10] =
    ["fn", "pub", "impl", "mod", "use", "struct", "let", "match", "where", "unsafe"];
const IDENT_CHARS: &str = "abcdefgxyz_ABZ0189";
const PUNCT: [&str; 14] =
    ["{", "}", "(", ")", "[", "]", ";", ":", "::", ",", "->", ".", "#", "<"];
const ESCAPES: [&str; 6] = ["\\n", "\\t", "\\\\", "\\\"", "\\'", "\\u{41}"];

fn ident(s: &mut Source) -> String {
    let mut out = s.string(IDENT_CHARS, 1, 8);
    if s.chance(1, 8) {
        out.push('é'); // multi-byte ident tail
    }
    out
}

fn string_literal(s: &mut Source) -> String {
    let mut out = String::from("\"");
    for _ in 0..s.len_in(0, 6) {
        if s.chance(1, 3) {
            let esc: &&str = s.pick(&ESCAPES);
            out.push_str(esc);
        } else {
            out.push_str(&s.string("ab{}/*\n ", 1, 4));
        }
    }
    if s.chance(1, 6) {
        return out; // unterminated
    }
    out.push('"');
    out
}

fn raw_string(s: &mut Source) -> String {
    let hashes = "#".repeat(s.len_in(0, 3));
    let mut out = format!("r{hashes}\"");
    out.push_str(&s.string("ab\"#{}\n", 0, 8));
    if s.chance(1, 6) {
        return out; // unterminated
    }
    out.push('"');
    out.push_str(&hashes);
    out
}

fn char_or_byte_literal(s: &mut Source) -> String {
    let body = if s.chance(1, 2) { s.pick(&ESCAPES).to_string() } else { s.string("axé'", 1, 1) };
    let quote = if s.chance(1, 6) { "" } else { "'" }; // maybe unterminated
    if s.chance(1, 3) {
        format!("b'{body}{quote}")
    } else {
        format!("'{body}{quote}")
    }
}

fn comment(s: &mut Source) -> String {
    if s.chance(1, 2) {
        format!("// {}\n", s.string("ab\"'{} ", 0, 8))
    } else {
        let depth = s.len_in(1, 3);
        let mut out = String::new();
        for _ in 0..depth {
            out.push_str("/* ");
            out.push_str(&s.string("ab\"' fn{} ", 0, 6));
        }
        // Close all, some, or none of the nesting levels.
        for _ in 0..s.len_in(0, depth) {
            out.push_str(" */");
        }
        out
    }
}

/// One fragment of Rust-ish soup.
fn fragment(s: &mut Source) -> String {
    match s.below(10) {
        0 => format!("{} ", s.pick(&KEYWORDS)),
        1 => format!("{} ", ident(s)),
        2 => s.pick(&PUNCT).to_string(),
        3 => string_literal(s),
        4 => raw_string(s),
        5 => char_or_byte_literal(s),
        6 => comment(s),
        7 => format!("'{} ", ident(s)), // lifetime
        8 => s.string(" \n\t", 1, 3),
        _ => s.string("0123456789", 1, 4),
    }
}

/// Generate a Rust-ish source file: token soup over the constructs the
/// devtools lexer and parser must stay total on.
pub fn soup(s: &mut Source) -> String {
    let mut out = String::new();
    for _ in 0..s.len_in(0, 48) {
        out.push_str(&fragment(s));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn soup_is_deterministic_per_tape() {
        let mut a = Source::new(7, 0);
        let one = soup(&mut a);
        let mut b = Source::replay(a.tape());
        assert_eq!(soup(&mut b), one);
    }

    #[test]
    fn soup_hits_the_tricky_constructs() {
        // Over a batch of seeds the generator must actually produce raw
        // strings, block comments, and escapes — otherwise the totality
        // oracles are fuzzing air.
        let mut raw = false;
        let mut block = false;
        let mut escape = false;
        for seed in 0..64 {
            let text = soup(&mut Source::new(seed, 0));
            raw |= text.contains("r\"") || text.contains("r#\"");
            block |= text.contains("/*");
            escape |= text.contains('\\');
        }
        assert!(raw && block && escape, "raw={raw} block={block} escape={escape}");
    }
}
