//! The property runner: deterministic cases, integrated shrinking, and
//! replayable reports.
//!
//! [`check`] supersedes `lucent_support::prop::check`. Where the old
//! harness could only name the failing seed, this one records the choice
//! tape behind the failure, greedily minimizes it ([`crate::shrink`]),
//! and re-reports the *minimal* case together with the hex tape that
//! replays it byte-for-byte via [`assert_replay`].

use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Once;

use crate::shrink;
use crate::source::Source;

/// Default base seed for property runs.
pub const DEFAULT_SEED: u64 = 0x1CEB_00DA_5EED_CA5E;

/// Default shrink execution budget.
pub const DEFAULT_SHRINK_BUDGET: u32 = 4096;

/// Runner configuration.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Number of cases to run.
    pub cases: u32,
    /// Base seed; case `i` draws from stream `i` of this seed.
    pub seed: u64,
    /// Execution budget for shrinking a failure.
    pub shrink_budget: u32,
}

impl Default for Config {
    fn default() -> Config {
        Config { cases: 96, seed: DEFAULT_SEED, shrink_budget: DEFAULT_SHRINK_BUDGET }
    }
}

impl Config {
    /// A config running `n` cases with the defaults otherwise.
    pub fn cases(n: u32) -> Config {
        Config { cases: n, ..Config::default() }
    }

    /// Same config under a different base seed.
    pub fn with_seed(mut self, seed: u64) -> Config {
        self.seed = seed;
        self
    }
}

/// A failure found by [`run`]: the original case and its shrunk form.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Index of the failing case.
    pub case: u32,
    /// Base seed the campaign ran under.
    pub seed: u64,
    /// Panic message of the original failure.
    pub message: String,
    /// Choice tape of the original failure.
    pub tape: Vec<u64>,
    /// Minimal failing tape after shrinking.
    pub minimal: Vec<u64>,
    /// Panic message of the minimal tape.
    pub minimal_message: String,
    /// Property executions spent shrinking.
    pub executions: u32,
}

impl Finding {
    /// The minimal tape as a replayable hex string (`"1.7f"`).
    pub fn minimal_hex(&self) -> String {
        tape_hex(&self.minimal)
    }

    /// A deterministic multi-line report of this finding.
    pub fn report(&self) -> String {
        format!(
            "property failed at case {} (seed {:#018x})\n  \
             original: {} draw(s): {}\n  \
             shrunk:   {} draw(s) [{}] after {} execution(s): {}\n  \
             replay:   lucent_check::assert_replay(\"{}\", prop)",
            self.case,
            self.seed,
            self.tape.len(),
            self.message,
            self.minimal.len(),
            self.minimal_hex(),
            self.executions,
            self.minimal_message,
            self.minimal_hex(),
        )
    }
}

/// Render a tape as dot-separated hex words.
pub fn tape_hex(tape: &[u64]) -> String {
    let words: Vec<String> = tape.iter().map(|w| format!("{w:x}")).collect();
    words.join(".")
}

/// Parse a dot-separated hex tape back into words. The empty string is
/// the empty (all-zero) tape.
pub fn parse_tape(hex: &str) -> Option<Vec<u64>> {
    if hex.is_empty() {
        return Some(Vec::new());
    }
    hex.split('.').map(|w| u64::from_str_radix(w, 16).ok()).collect()
}

thread_local! {
    static QUIET: Cell<bool> = const { Cell::new(false) };
}
static HOOK: Once = Once::new();

/// Install (once) a forwarding panic hook that stays silent while this
/// thread is inside a harness-controlled execution — shrinking replays a
/// failing property hundreds of times and must not spam stderr.
fn hush() {
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !QUIET.with(Cell::get) {
                prev(info);
            }
        }));
    });
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
        .unwrap_or_else(|| "<non-string panic payload>".to_string())
}

/// Run `prop` on `source` with panics captured quietly. Returns the
/// canonical recorded tape and, on failure, the panic message.
fn execute(prop: &impl Fn(&mut Source), source: &mut Source) -> Result<(), String> {
    hush();
    QUIET.with(|q| q.set(true));
    let result = catch_unwind(AssertUnwindSafe(|| prop(source)));
    QUIET.with(|q| q.set(false));
    result.map_err(|payload| panic_message(payload.as_ref()))
}

/// Run the property over `cfg.cases` deterministic cases. On the first
/// failure, shrink it and return the [`Finding`]; `None` means every
/// case passed.
pub fn run(cfg: &Config, prop: impl Fn(&mut Source)) -> Option<Finding> {
    for case in 0..cfg.cases {
        let mut source = Source::new(cfg.seed, u64::from(case));
        if let Err(message) = execute(&prop, &mut source) {
            let tape = source.tape().to_vec();
            let mut trial = |cand: &[u64]| -> Option<(Vec<u64>, String)> {
                let mut s = Source::replay(cand);
                match execute(&prop, &mut s) {
                    Err(msg) => Some((s.tape().to_vec(), msg)),
                    Ok(()) => None,
                }
            };
            let shrunk =
                shrink::minimize((tape.clone(), message.clone()), &mut trial, cfg.shrink_budget);
            return Some(Finding {
                case,
                seed: cfg.seed,
                message,
                tape,
                minimal: shrunk.tape,
                minimal_message: shrunk.message,
                executions: shrunk.executions,
            });
        }
    }
    None
}

/// Run the property and panic with a shrunk, replayable report on
/// failure — the drop-in upgrade for `lucent_support::prop::check`.
pub fn check(cfg: &Config, prop: impl Fn(&mut Source)) {
    if let Some(finding) = run(cfg, prop) {
        std::panic::panic_any(finding.report());
    }
}

/// Replay a recorded tape against the property; `Err` carries the
/// failure message.
pub fn replay(tape: &[u64], prop: impl Fn(&mut Source)) -> Result<(), String> {
    let mut s = Source::replay(tape);
    execute(&prop, &mut s)
}

/// Replay a hex tape (as printed in a [`Finding`] report) and panic with
/// its failure message — paste the tape from a CI log to reproduce a
/// shrunk case locally.
pub fn assert_replay(hex: &str, prop: impl Fn(&mut Source)) {
    let Some(tape) = parse_tape(hex) else {
        std::panic::panic_any(format!("assert_replay: unparseable tape {hex:?}"));
    };
    if let Err(message) = replay(&tape, prop) {
        std::panic::panic_any(format!("replayed [{hex}]: {message}"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_properties_return_no_finding() {
        assert!(run(&Config::cases(32), |s| {
            let v = s.range_u64(0, 100);
            assert!(v <= 100);
        })
        .is_none());
    }

    #[test]
    fn failures_shrink_to_the_boundary() {
        let cfg = Config::cases(16);
        let finding = run(&cfg, |s| {
            let v = s.any_u64();
            assert!(v <= 1000, "cap exceeded: {v}");
        })
        .expect("must fail");
        assert_eq!(finding.minimal, vec![1001]);
        assert_eq!(finding.minimal_message, "cap exceeded: 1001");
        assert_eq!(finding.minimal_hex(), "3e9");
    }

    #[test]
    fn findings_are_identical_across_runs() {
        let prop = |s: &mut Source| {
            let v = s.bytes(0, 48);
            assert!(!v.contains(&0x42), "contains the offender");
        };
        let cfg = Config::cases(64);
        let a = run(&cfg, prop).expect("must fail");
        let b = run(&cfg, prop).expect("must fail");
        assert_eq!(a.report(), b.report());
        assert_eq!(a.minimal, vec![1, 0x42]);
    }

    #[test]
    fn replay_reproduces_the_minimal_case() {
        let prop = |s: &mut Source| {
            let v = s.any_u64();
            assert!(v <= 1000, "cap exceeded: {v}");
        };
        let finding = run(&Config::default(), prop).expect("must fail");
        let err = replay(&finding.minimal, prop).expect_err("minimal tape must still fail");
        assert_eq!(err, finding.minimal_message);
        let hex = finding.minimal_hex();
        assert_eq!(parse_tape(&hex).as_deref(), Some(&finding.minimal[..]));
    }

    #[test]
    fn check_panics_with_a_replayable_report() {
        hush();
        QUIET.with(|q| q.set(true));
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            check(&Config::cases(8), |s| {
                let v = s.any_u64();
                assert!(v % 2 == 0 || v % 2 == 1); // always true
                assert!(v < 10, "big");
            });
        }));
        QUIET.with(|q| q.set(false));
        let payload = outcome.expect_err("must fail");
        let msg = payload.downcast_ref::<String>().expect("string payload");
        assert!(msg.contains("shrunk:"), "{msg}");
        assert!(msg.contains("assert_replay"), "{msg}");
        assert!(msg.contains("[a]"), "minimal odd/even-agnostic value is 10 = 0xa: {msg}");
    }

    #[test]
    fn empty_hex_is_the_empty_tape() {
        assert_eq!(parse_tape(""), Some(vec![]));
        assert_eq!(parse_tape("zz"), None);
        assert_eq!(tape_hex(&[1, 0x7f]), "1.7f");
    }
}
