//! Differential and round-trip oracles over `lucent-packet`,
//! `lucent-tcp` and `lucent-middlebox`.
//!
//! Every oracle is a property `fn(&mut Source)` that panics on
//! violation, so the same function runs under [`crate::runner::check`]
//! in a crate's test suite and inside the bounded `fuzz-smoke` campaign.
//! The catalogue:
//!
//! | oracle | claim |
//! |---|---|
//! | `checksum_split` | one-shot and incremental checksums agree |
//! | `ipv4_roundtrip` / `tcp_roundtrip` / `udp_roundtrip` / `icmp_roundtrip` | decode ∘ encode = id |
//! | `full_packet_roundtrip` | `Packet` emit→parse→emit is byte-stable (checksum repair is idempotent) |
//! | `ipv4_corruption_detected` | any single-bit header flip is rejected |
//! | `parsers_survive_garbage` | no parser panics on arbitrary bytes |
//! | `parsers_survive_corruption` | no parser panics on corrupted valid images; re-accepted images re-emit parseably |
//! | `dns_roundtrip` / `http_roundtrips` | DNS and HTTP emitters agree with their parsers |
//! | `tcb_arbitrary_segments_safe` | the TCP state machine never panics, receive buffer never shrinks |
//! | `flow_table_invariants` | flow tracking: len moves by ≤1 per packet, sweep reports exactly what it evicts |
//! | `planted_cap_is_bounded` | the planted SUT respects its cap (fails under `--features planted-bug`) |
//! | `lint_lexer_total` | the devtools scrubbing lexer preserves length and newlines on Rust-ish soup |
//! | `lint_parser_total` | the devtools item parser is total and emits sane spans on Rust-ish soup |
//! | `lint_allocsite_total` | the devtools allocation-site detector is total and never mis-spans on Rust-ish soup |
//! | `obs_histogram_merge` | telemetry merge is order/grouping-insensitive and conserves histogram buckets under shard splits |
//! | `sched_matches_heap_model` | the netsim calendar queue pops in exactly the reference binary-heap order, deadline pops included |
//! | `policy_replay_deterministic` | a compiled policy program renders a byte-identical transcript on every replay — the invariant the recorded `tests/golden/mb-*.transcript` goldens rest on |
//! | `policy_compile_total` | the policy compiler never panics and is deterministic on soup, garbage, and corrupted programs |
//! | `policy_anomaly_total` | the L11/L12 symbolic policy analyzer is total (no panic) and deterministic on randomly corrupted policy IRs |

use std::net::Ipv4Addr;

use lucent_netsim::{SimDuration, SimTime};
use lucent_packet::{
    checksum, DnsMessage, HttpRequest, HttpResponse, IcmpMessage, Ipv4Header, Packet,
    RequestParseMode, TcpFlags, TcpHeader, UdpHeader,
};
use lucent_packet::http::RequestBuilder;
use lucent_support::Bytes;
use lucent_tcp::tcb::Tcb;
use lucent_tcp::TcpState;
use lucent_middlebox::flow::FlowTable;

use crate::corrupt::corrupt;
use crate::packets;
use crate::planted;
use crate::source::Source;

/// Unwrap a parse result without spending the L4 panic budget: oracle
/// failures must abort the case (the runner catches the unwind), and
/// `panic_any` carries the message without being a panic-site token.
fn ok<T, E: std::fmt::Debug>(r: Result<T, E>, what: &str) -> T {
    match r {
        Ok(v) => v,
        Err(e) => std::panic::panic_any(format!("{what}: {e:?}")),
    }
}

/// One-shot and split incremental checksums agree at any split point.
pub fn checksum_split(s: &mut Source) {
    let data = s.bytes(0, 511);
    let split = s.len_in(0, data.len());
    let whole = checksum::of(&data);
    let mut c = checksum::Checksum::new();
    c.add(&data[..split]);
    c.add(&data[split..]);
    assert_eq!(c.finish(), whole);
}

/// IPv4 header decode ∘ encode = id.
pub fn ipv4_roundtrip(s: &mut Source) {
    let h = packets::ipv4_header(s);
    let payload = s.bytes(0, 255);
    let mut wire = Vec::new();
    h.emit(&payload, &mut wire);
    let (parsed, body) = ok(Ipv4Header::parse(&wire), "valid header must parse");
    assert_eq!(parsed, h);
    assert_eq!(body, &payload[..]);
}

/// Any single-bit flip in the 20-byte IPv4 header is rejected.
pub fn ipv4_corruption_detected(s: &mut Source) {
    let h = packets::ipv4_header(s);
    let byte = s.len_in(0, 19);
    let bit = s.below(8) as u8;
    let mut wire = Vec::new();
    h.emit(&[], &mut wire);
    wire[byte] ^= 1 << bit;
    assert!(Ipv4Header::parse(&wire).is_err(), "flipped bit {bit} of byte {byte} accepted");
}

/// TCP header decode ∘ encode = id.
pub fn tcp_roundtrip(s: &mut Source) {
    let src = packets::ipv4_addr(s);
    let dst = packets::ipv4_addr(s);
    let h = packets::tcp_header(s);
    let payload = s.bytes(0, 511);
    let mut wire = Vec::new();
    h.emit(src, dst, &payload, &mut wire);
    let (parsed, body) = ok(TcpHeader::parse(src, dst, &wire), "valid segment must parse");
    assert_eq!(parsed, h);
    assert_eq!(body, &payload[..]);
}

/// UDP header decode ∘ encode = id.
pub fn udp_roundtrip(s: &mut Source) {
    let src = packets::ipv4_addr(s);
    let dst = packets::ipv4_addr(s);
    let h = packets::udp_header(s);
    let payload = s.bytes(0, 511);
    let mut wire = Vec::new();
    h.emit(src, dst, &payload, &mut wire);
    let (parsed, body) = ok(UdpHeader::parse(src, dst, &wire), "valid datagram must parse");
    assert_eq!(parsed, h);
    assert_eq!(body, &payload[..]);
}

/// ICMP decode ∘ encode = id for all four message shapes.
pub fn icmp_roundtrip(s: &mut Source) {
    let msg = packets::icmp_message(s);
    let mut wire = Vec::new();
    msg.emit(&mut wire);
    assert_eq!(ok(IcmpMessage::parse(&wire), "valid message must parse"), msg);
}

/// Full `Packet` emit → parse = id, and parse → emit reproduces the
/// exact wire bytes: checksum repair on emission is idempotent.
pub fn full_packet_roundtrip(s: &mut Source) {
    let pkt = packets::tcp_packet(s);
    let wire = pkt.emit();
    let parsed = ok(Packet::parse(&wire), "own emission must parse");
    assert_eq!(parsed, pkt);
    assert_eq!(parsed.emit(), wire, "re-emission must be byte-stable");
}

fn feed_all_parsers(bytes: &[u8]) {
    let _ = Ipv4Header::parse(bytes);
    let _ = Packet::parse(bytes);
    let _ = DnsMessage::parse(bytes);
    let _ = HttpRequest::parse(bytes, RequestParseMode::Rfc);
    let _ = HttpRequest::parse(bytes, RequestParseMode::Strict);
    let _ = HttpResponse::parse(bytes);
}

/// No parser panics on arbitrary bytes.
pub fn parsers_survive_garbage(s: &mut Source) {
    let bytes = s.bytes(0, 255);
    feed_all_parsers(&bytes);
}

/// No parser panics on a corrupted valid wire image; and when a
/// corrupted packet is still accepted, re-emitting it yields an image
/// the parser accepts again (checksum repair is idempotent even on
/// mutated inputs).
pub fn parsers_survive_corruption(s: &mut Source) {
    let mut wire = packets::wire_image(s);
    corrupt(s, &mut wire);
    feed_all_parsers(&wire);
    if let Ok(pkt) = Packet::parse(&wire) {
        let repaired = pkt.emit();
        let reparsed = ok(Packet::parse(&repaired), "repaired image must parse");
        assert_eq!(reparsed, pkt, "repair must preserve the parsed value");
    }
}

/// DNS query and answer emit → parse = id.
pub fn dns_roundtrip(s: &mut Source) {
    let msg = packets::dns_message(s);
    let mut wire = Vec::new();
    ok(msg.emit(&mut wire), "generated names must fit");
    assert_eq!(ok(DnsMessage::parse(&wire), "own emission must parse"), msg);
}

/// HTTP request builder and response emitter agree with their parsers.
pub fn http_roundtrips(s: &mut Source) {
    let host = packets::host_name(s);
    let path = packets::url_path(s);
    let bytes = RequestBuilder::browser(&host, &path).build();
    let (req, used) =
        ok(HttpRequest::parse(&bytes, RequestParseMode::Rfc), "browser request must parse");
    assert_eq!(used, bytes.len());
    assert_eq!(req.host(), Some(host.as_str()));
    assert_eq!(req.target, path);

    let resp = packets::http_response(s);
    let parsed = ok(HttpResponse::parse(&resp.emit()), "own emission must parse");
    assert_eq!(parsed.status, resp.status);
    assert_eq!(parsed.body, resp.body);
}

const A_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
const B_IP: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

fn t(ms: u64) -> SimTime {
    SimTime(ms * 1_000)
}

/// Drive two fresh TCBs through the 3-way handshake — the shared rig
/// the `tcp` property suite used to hand-roll.
pub fn established_pair() -> (Tcb, Tcb) {
    let mut a = Tcb::connect((A_IP, 4000), (B_IP, 80), 1_000, t(0));
    let (syn_out, _) = a.poll(t(0));
    let (syn, _) = &syn_out[0];
    let mut b = Tcb::accept((B_IP, 80), (A_IP, 4000), 9_000, syn, t(0));
    for _ in 0..8 {
        let (fa, _) = a.poll(t(1));
        let (fb, _) = b.poll(t(1));
        if fa.is_empty() && fb.is_empty() {
            break;
        }
        for (h, p) in fa {
            b.on_segment(&h, &p, t(1));
        }
        for (h, p) in fb {
            a.on_segment(&h, &p, t(1));
        }
    }
    assert_eq!(a.state, TcpState::Established);
    assert_eq!(b.state, TcpState::Established);
    (a, b)
}

/// Arbitrary segments never panic the TCP state machine and never
/// shrink the receive buffer.
pub fn tcb_arbitrary_segments_safe(s: &mut Source) {
    let n = s.len_in(0, 32);
    let segs: Vec<(u8, u32, u32, Vec<u8>)> = (0..n)
        .map(|_| (s.below(0x40) as u8, s.any_u32(), s.any_u32(), s.bytes(0, 63)))
        .collect();
    let (mut a, _b) = established_pair();
    let mut last_len = 0usize;
    for (i, (flags, seq, ack, payload)) in segs.into_iter().enumerate() {
        let mut h = TcpHeader::new(80, 4000, TcpFlags(flags));
        h.seq = seq;
        h.ack = ack;
        a.on_segment(&h, &payload, t(10 + i as u64));
        let _ = a.poll(t(10 + i as u64));
        assert!(a.recv_buf.len() >= last_len || a.recv_buf.is_empty());
        last_len = a.recv_buf.len();
    }
}

/// The flow table under an arbitrary packet storm over a small endpoint
/// pool: tracked-flow count moves by at most one per packet,
/// `established_total` is monotone, and `sweep` returns exactly the
/// number of flows it evicted.
pub fn flow_table_invariants(s: &mut Source) {
    let timeout_secs = s.range_u64(1, 180);
    let mut table = FlowTable::new(SimDuration::from_secs(timeout_secs));
    let hosts = [
        Ipv4Addr::new(10, 0, 0, 1),
        Ipv4Addr::new(10, 0, 0, 2),
        Ipv4Addr::new(203, 0, 113, 1),
    ];
    let ports = [80u16, 443, 4000, 4001];
    let mut now_us: u64 = 0;
    let mut established_seen = 0u64;
    let steps = s.len_in(0, 64);
    for _ in 0..steps {
        now_us += s.range_u64(0, 2_000_000);
        if s.chance(1, 8) {
            let before = table.len();
            let evicted = table.sweep(SimTime(now_us));
            assert_eq!(
                before - table.len(),
                evicted,
                "sweep must report exactly the flows it removed"
            );
            continue;
        }
        let src = *s.pick(&hosts);
        let dst = *s.pick(&hosts);
        let mut h = TcpHeader::new(*s.pick(&ports), *s.pick(&ports), TcpFlags(s.below(0x40) as u8));
        h.seq = s.any_u32();
        h.ack = s.any_u32();
        let payload = s.bytes(0, 32);
        let pkt = Packet::tcp(src, dst, h, Bytes::from(payload));
        let before = table.len();
        let _ = table.observe(&pkt, SimTime(now_us));
        let after = table.len();
        assert!(
            after <= before + 1 && before <= after + 1,
            "one packet moved the flow count from {before} to {after}"
        );
        assert!(
            table.established_total >= established_seen,
            "established_total went backwards"
        );
        established_seen = table.established_total;
    }
}

/// The planted SUT respects its cap. Correct under default features;
/// fails (and must be found + shrunk) under `--features planted-bug`.
pub fn planted_cap_is_bounded(s: &mut Source) {
    let v = s.any_u64();
    let capped = planted::cap(v);
    assert!(
        capped <= planted::CAP,
        "planted::cap({v}) returned {capped}, above the cap {}",
        planted::CAP
    );
}

/// The devtools scrubbing lexer is total on arbitrary Rust-ish soup
/// and keeps its contract: output has the same byte length and the
/// same newline positions as the input, and `has_token` never panics.
pub fn lint_lexer_total(s: &mut Source) {
    let text = crate::rustish::soup(s);
    let scrubbed = lucent_devtools::lex::scrub(&text);
    assert_eq!(scrubbed.len(), text.len(), "scrub must preserve byte length");
    let newlines = |t: &str| -> Vec<usize> {
        t.bytes().enumerate().filter(|&(_, c)| c == b'\n').map(|(i, _)| i).collect()
    };
    assert_eq!(newlines(&scrubbed), newlines(&text), "scrub must preserve newline positions");
    let _ = lucent_devtools::lex::has_token(&scrubbed, "fn");
    let _ = lucent_devtools::lex::test_spans(&scrubbed);
}

/// The devtools item parser is total on arbitrary Rust-ish soup, and
/// every item it does extract has a sane span: 1-based lines inside
/// the file, `end_line >= line`, body ranges inside the text.
pub fn lint_parser_total(s: &mut Source) {
    let text = crate::rustish::soup(s);
    let scrubbed = lucent_devtools::lex::scrub(&text);
    let parsed = lucent_devtools::parse::parse(&scrubbed);
    let lines = scrubbed.bytes().filter(|&c| c == b'\n').count() + 1;
    for f in &parsed.fns {
        assert!(f.line >= 1 && f.line <= lines, "fn `{}` line {} of {lines}", f.name, f.line);
        assert!(f.end_line >= f.line, "fn `{}` ends before it starts", f.name);
        assert!(f.end_line <= lines, "fn `{}` end_line {} of {lines}", f.name, f.end_line);
        if let Some((lo, hi)) = f.body {
            assert!(lo <= hi && hi <= scrubbed.len(), "fn `{}` body {lo}..{hi}", f.name);
        }
    }
    for u in &parsed.uses {
        assert!(u.line >= 1 && u.line <= lines, "use `{}` line {} of {lines}", u.path, u.line);
    }
}

/// The devtools allocation-site detector (L9/L10 input) is total on
/// arbitrary Rust-ish soup and never mis-spans: every site lands on a
/// real 1-based line with a non-empty kind, and every loop span is a
/// sane 1-based range inside the file.
pub fn lint_allocsite_total(s: &mut Source) {
    let text = crate::rustish::soup(s);
    let lexed = lucent_devtools::source::Lexed::new(&text);
    let lines = text.bytes().filter(|&c| c == b'\n').count() + 1;
    for site in lucent_devtools::allocsite::alloc_sites(&lexed) {
        assert!(
            site.line >= 1 && site.line <= lines,
            "alloc site `{}` on line {} of {lines}",
            site.kind,
            site.line
        );
        assert!(!site.kind.is_empty(), "alloc site with an empty kind");
    }
    for (lo, hi) in lucent_devtools::allocsite::loop_spans(lexed.scrubbed()) {
        assert!(lo >= 1 && lo <= hi, "loop span {lo}..={hi} starts badly");
        assert!(hi <= lines, "loop span {lo}..={hi} beyond line {lines}");
    }
}

/// Telemetry merge — the operation the profiler's thread-count
/// invariance claim rests on — is commutative and associative, and
/// conserves histogram buckets under shard splits: absorbing shard
/// dumps in any order or grouping yields a registry byte-identical to
/// one that recorded every sample directly, and the merged bucket
/// counts are the element-wise sum of the per-shard bucket counts.
pub fn obs_histogram_merge(s: &mut Source) {
    use lucent_obs::Telemetry;
    const METRIC: &str = "check.merge.dwell_us";
    const COUNTER: &str = "check.merge.samples";
    let k = s.len_in(2, 5);
    let n = s.len_in(0, 64);
    let samples: Vec<(usize, u64)> =
        (0..n).map(|_| (s.len_in(0, k - 1), s.range_u64(0, 30_000_000))).collect();
    let shard = |id: usize| -> Telemetry {
        let t = Telemetry::new();
        for &(sh, v) in &samples {
            if sh == id {
                t.histogram_record(METRIC, v);
                t.counter_inc(COUNTER, "all");
            }
        }
        t
    };
    let flat = Telemetry::new();
    for &(_, v) in &samples {
        flat.histogram_record(METRIC, v);
        flat.counter_inc(COUNTER, "all");
    }

    // Element-wise sum of the per-shard bucket counts, captured before
    // any dump is drained.
    let shards: Vec<Telemetry> = (0..k).map(shard).collect();
    let mut summed: Vec<u64> = Vec::new();
    for t in &shards {
        if let Some(buckets) = t.histogram_buckets(METRIC) {
            if summed.is_empty() {
                summed = vec![0; buckets.len()];
            }
            for (acc, b) in summed.iter_mut().zip(buckets) {
                *acc += b;
            }
        }
    }

    // Forward order, reverse order, and a grouped (associativity)
    // absorb through two intermediate hubs.
    let fwd = Telemetry::new();
    for t in &shards {
        fwd.absorb(t.drain_dump());
    }
    let rev = Telemetry::new();
    for t in (0..k).map(shard).collect::<Vec<_>>().iter().rev() {
        rev.absorb(t.drain_dump());
    }
    let split = s.len_in(0, k);
    let (left, right) = (Telemetry::new(), Telemetry::new());
    for (i, t) in (0..k).map(shard).enumerate() {
        if i < split { &left } else { &right }.absorb(t.drain_dump());
    }
    let grouped = Telemetry::new();
    grouped.absorb(left.drain_dump());
    grouped.absorb(right.drain_dump());

    let want = flat.metrics_snapshot_pretty();
    assert_eq!(fwd.metrics_snapshot_pretty(), want, "shard split changed the merged registry");
    assert_eq!(rev.metrics_snapshot_pretty(), want, "absorb order changed the merged registry");
    assert_eq!(grouped.metrics_snapshot_pretty(), want, "absorb grouping changed the merged registry");

    let merged = fwd.histogram_buckets(METRIC).unwrap_or_default();
    assert_eq!(merged, summed, "merged buckets must be the per-shard element-wise sum");
    let total: u64 = merged.iter().sum();
    assert_eq!(total, n as u64, "every sample must land in exactly one bucket");
}

/// The netsim calendar-queue scheduler pops in exactly the order a
/// reference binary heap does — the strict `(time, seq)` total order —
/// on random event streams with same-tick bursts, at-now injects and
/// far-future overflow timers, across random wheel geometries. This is
/// the scheduler-swap equivalence claim the deterministic profile
/// golden pins at the system level, checked here at the structure
/// level with tiny horizons so overflow and wheel wrap are hammered.
pub fn sched_matches_heap_model(s: &mut Source) {
    use lucent_netsim::{CalendarQueue, Scheduled};
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    let slot_log2 = s.len_in(0, 6) as u32;
    let slots = 1usize << s.len_in(2, 4); // 4..=16 buckets
    let mut q = CalendarQueue::with_geometry(slot_log2, slots);
    let mut model: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
    let mut seq = 0u64;
    let mut now = 0u64;
    let steps = s.len_in(1, 96);
    for _ in 0..steps {
        // Every tier must agree on the frontier before each operation.
        assert_eq!(
            q.next_at().map(|t| t.micros()),
            model.peek().map(|&Reverse((at, _))| at),
            "next_at diverged from the model's min"
        );
        if s.chance(3, 5) {
            // A burst of pushes relative to `now`, like a node callback.
            for _ in 0..s.len_in(1, 4) {
                let delta = match s.below(4) {
                    0 => 0,                                        // inject at now
                    1 => s.range_u64(0, 40),                       // same-tick burst
                    2 => s.range_u64(0, 1 << (slot_log2 + 3)),     // in-ring latency
                    _ => s.range_u64(180_000_000, 200_000_000),    // flow-timeout tail
                };
                let at = now + delta;
                q.schedule(Scheduled {
                    at: SimTime(at),
                    queued_at: SimTime(now),
                    seq,
                    payload: seq,
                });
                model.push(Reverse((at, seq)));
                seq += 1;
            }
        } else if s.chance(1, 2) {
            // Deadline-bounded pop — the `step_before` path.
            let deadline = now + s.range_u64(0, 1 << (slot_log2 + 4));
            let got = q.pop_next_before(SimTime(deadline)).map(|i| (i.at.micros(), i.seq));
            let want = match model.peek() {
                Some(&Reverse((at, sq))) if at <= deadline => {
                    model.pop();
                    Some((at, sq))
                }
                _ => None,
            };
            assert_eq!(got, want, "pop_next_before({deadline}) diverged");
            match got {
                Some((at, _)) => now = at,
                None => now = now.max(deadline), // the driver's clock advance
            }
        } else {
            let got = q.pop_next().map(|i| (i.at.micros(), i.seq));
            let want = model.pop().map(|Reverse(p)| p);
            assert_eq!(got, want, "pop_next diverged");
            if let Some((at, _)) = got {
                now = at;
            }
        }
        assert_eq!(q.len(), model.len(), "live-count drift");
    }
    // Drain the tail: order must agree to the very last item.
    loop {
        let got = q.pop_next().map(|i| (i.at.micros(), i.seq));
        let want = model.pop().map(|Reverse(p)| p);
        assert_eq!(got, want, "drain order diverged");
        if got.is_none() {
            break;
        }
    }
    assert_eq!(q.next_at(), None, "drained queue must have no frontier");
}

/// The declarative policy engine replays deterministically: a random
/// middlebox specification, rendered to policy TOML, compiled, and
/// instantiated as a [`lucent_middlebox::PolicyBox`], must render the
/// same transcript — packets, flow rows, metrics and event logs — from
/// two fresh rigs over the same random packet script (see
/// [`crate::diffmb`]). This is the invariant that makes the recorded
/// `tests/golden/mb-*.transcript` goldens a sound stand-in for the
/// retired hardcoded middleboxes.
pub fn policy_replay_deterministic(s: &mut Source) {
    let spec = crate::diffmb::diff_spec(s);
    let steps = crate::diffmb::diff_script(s, &spec);
    if let Err(e) = crate::diffmb::spec_self_diff(&spec, &steps) {
        std::panic::panic_any(e);
    }
}

/// The policy compiler is total and deterministic: it never panics —
/// not on Rust-ish token soup, not on arbitrary bytes, not on a
/// corrupted image of a valid policy — and compiling the same text
/// twice yields identical results (policies compare equal, errors
/// pin the same line and message).
pub fn policy_compile_total(s: &mut Source) {
    use lucent_middlebox::compile::compile;
    let text = match s.below(3) {
        0 => crate::rustish::soup(s),
        1 => String::from_utf8_lossy(&s.bytes(0, 400)).into_owned(),
        _ => {
            // Mutate a valid program: splice random bytes into the
            // rendered Airtel policy.
            let mut img = crate::diffmb::airtel_spec().policy_toml().into_bytes();
            for _ in 0..s.len_in(1, 8) {
                let at = s.len_in(0, img.len() - 1);
                img[at] = img[at].wrapping_add(s.below(255) as u8 + 1);
            }
            String::from_utf8_lossy(&img).into_owned()
        }
    };
    let first = compile(&text);
    let second = compile(&text);
    match (&first, &second) {
        (Ok(a), Ok(b)) => assert_eq!(a, b, "recompilation changed the policy"),
        (Err(a), Err(b)) => {
            assert_eq!((a.line, &a.msg), (b.line, &b.msg), "recompilation changed the error")
        }
        _ => std::panic::panic_any("recompilation flipped between Ok and Err".to_string()),
    }
}

/// The L11/L12 symbolic policy analyzer is total and deterministic on
/// corrupted policy IRs: take a compiled program from the differential
/// spec generator, then mutate it into shapes the compiler itself would
/// reject — wild `after` targets, self-gates, zero/NaN/infinite
/// probabilities, empty and garbage host lists, duplicated rules — and
/// demand that both probes return without panicking and return the
/// same findings twice.
pub fn policy_anomaly_total(s: &mut Source) {
    use lucent_devtools::policycheck::{coverage_findings, probe_policy};
    use lucent_middlebox::policy::{Action, HostSet};
    let spec = crate::diffmb::diff_spec(s);
    let mut policy = match lucent_middlebox::compile::compile(&spec.policy_toml()) {
        Ok(p) => p,
        Err(e) => std::panic::panic_any(format!("rendered spec must compile: {e}")),
    };
    let copies = s.len_in(0, 4);
    for _ in 0..copies {
        let r = policy.rules[0].clone();
        policy.rules.push(r);
    }
    for j in 0..policy.rules.len() {
        if s.chance(1, 3) {
            // Often out of range or a self/forward gate the compiler
            // would never emit.
            policy.rules[j].after = Some(s.len_in(0, 9));
        }
        if s.chance(1, 4) {
            policy.rules[j].probability = Some(match s.below(4) {
                0 => 0.0,
                1 => f64::NAN,
                2 => f64::INFINITY,
                _ => 1.0,
            });
        }
        if s.chance(1, 4) {
            policy.rules[j].hosts = match s.below(3) {
                0 => HostSet::Listed(Default::default()),
                1 => {
                    let mut set = std::collections::BTreeSet::new();
                    set.insert(String::from_utf8_lossy(&s.bytes(0, 12)).into_owned());
                    HostSet::Listed(set)
                }
                _ => HostSet::Any,
            };
        }
        if s.chance(1, 5) {
            policy.rules[j].action = Action::Pass;
        }
    }
    // Rule-line tables of the wrong length exercise the pinning
    // fallback, not just the happy path.
    let lines: Vec<usize> = (0..s.len_in(0, policy.rules.len())).map(|i| i * 3 + 2).collect();
    assert_eq!(
        probe_policy(&policy, &lines),
        probe_policy(&policy, &lines),
        "the anomaly probe must be deterministic"
    );
    assert_eq!(
        coverage_findings(&policy, &lines),
        coverage_findings(&policy, &lines),
        "the coverage probe must be deterministic"
    );
}

/// A named oracle, as listed by [`all`].
pub type NamedOracle = (&'static str, fn(&mut Source));

/// The full catalogue, in deterministic report order.
pub fn all() -> Vec<NamedOracle> {
    vec![
        ("checksum_split", checksum_split),
        ("ipv4_roundtrip", ipv4_roundtrip),
        ("ipv4_corruption_detected", ipv4_corruption_detected),
        ("tcp_roundtrip", tcp_roundtrip),
        ("udp_roundtrip", udp_roundtrip),
        ("icmp_roundtrip", icmp_roundtrip),
        ("full_packet_roundtrip", full_packet_roundtrip),
        ("parsers_survive_garbage", parsers_survive_garbage),
        ("parsers_survive_corruption", parsers_survive_corruption),
        ("dns_roundtrip", dns_roundtrip),
        ("http_roundtrips", http_roundtrips),
        ("tcb_arbitrary_segments_safe", tcb_arbitrary_segments_safe),
        ("flow_table_invariants", flow_table_invariants),
        ("planted_cap_is_bounded", planted_cap_is_bounded),
        ("lint_lexer_total", lint_lexer_total),
        ("lint_parser_total", lint_parser_total),
        ("lint_allocsite_total", lint_allocsite_total),
        ("obs_histogram_merge", obs_histogram_merge),
        ("sched_matches_heap_model", sched_matches_heap_model),
        ("policy_replay_deterministic", policy_replay_deterministic),
        ("policy_compile_total", policy_compile_total),
        ("policy_anomaly_total", policy_anomaly_total),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{check, Config};

    #[test]
    fn the_catalogue_holds_at_a_fixed_seed() {
        for (name, oracle) in all() {
            if name == "planted_cap_is_bounded" && cfg!(feature = "planted-bug") {
                continue; // exercised by the planted-bug self-test instead
            }
            check(&Config::cases(48).with_seed(0xA11CE), oracle);
        }
    }
}
