//! Greedy choice-tape minimization, Hypothesis-style.
//!
//! The shrinker never looks at the generated *values* — it edits the
//! recorded tape of `u64` choices and re-runs the property on the
//! candidate. Because every generator maps smaller tape words to simpler
//! outputs (shorter vectors, lower integers, earlier alternatives) and
//! replay zero-pads past the tape end, three structural passes suffice:
//!
//! 1. **Chunk deletion** — drop contiguous windows, largest first.
//! 2. **Chunk zeroing** — overwrite contiguous windows with zeros.
//! 3. **Value minimization** — per position, binary-search the smallest
//!    word that still fails.
//!
//! Each successful trial replaces the tape with the *canonical* recorded
//! form of the failing run (unread words pruned, consumed padding made
//! explicit), so structure shifts caused by an edit are absorbed
//! immediately. The process is fully deterministic and bounded by an
//! execution budget.

/// One shrink trial: replay the property on `candidate`; if it still
/// fails, return the canonical recorded tape and the failure message.
pub type Trial<'a> = dyn FnMut(&[u64]) -> Option<(Vec<u64>, String)> + 'a;

/// The result of a minimization: final tape, its failure message, and
/// how many executions were spent.
pub struct Shrunk {
    /// The minimal failing tape found within budget.
    pub tape: Vec<u64>,
    /// The failure message of the minimal tape.
    pub message: String,
    /// Property executions consumed.
    pub executions: u32,
}

/// Shortlex order: a tape improves on another iff it is shorter, or the
/// same length and lexicographically smaller. Zero-padding on replay can
/// hand a *failing* candidate back in a canonical form no smaller than
/// the current best — accepting those would loop forever.
fn better(cand: &[u64], best: &[u64]) -> bool {
    cand.len() < best.len() || (cand.len() == best.len() && cand < best)
}

/// Run one trial if budget remains; return the canonical tape only when
/// the property failed AND the canonical form shortlex-improves on
/// `best`.
fn attempt(
    trial: &mut Trial<'_>,
    candidate: &[u64],
    best: &[u64],
    used: &mut u32,
    budget: u32,
) -> Option<(Vec<u64>, String)> {
    if *used >= budget {
        return None;
    }
    *used += 1;
    trial(candidate).filter(|(tape, _)| better(tape, best))
}

/// Minimize a known-failing tape. `start` is the original recorded tape
/// and its failure message; `budget` caps property executions.
pub fn minimize(start: (Vec<u64>, String), trial: &mut Trial<'_>, budget: u32) -> Shrunk {
    let (mut best, mut message) = start;
    let mut used = 0u32;
    loop {
        let mut improved = false;

        // Pass 1: delete contiguous chunks, largest first.
        let mut size = best.len().max(1);
        loop {
            let mut i = 0;
            while i + size <= best.len() && used < budget {
                let mut cand = best.clone();
                cand.drain(i..i + size);
                let mut accepted = attempt(trial, &cand, &best, &mut used, budget);
                if accepted.is_none() && i > 0 && best[i - 1] >= size as u64 {
                    // Deleting drawn elements usually needs the length
                    // word that sized the collection lowered in step —
                    // try the deletion again with the preceding word
                    // decremented by the window size.
                    let mut cand = best.clone();
                    cand.drain(i..i + size);
                    cand[i - 1] -= size as u64;
                    accepted = attempt(trial, &cand, &best, &mut used, budget);
                }
                match accepted {
                    Some((tape, msg)) => {
                        // Stay at `i` only when the canonical tape really
                        // got shorter (the window now holds fresh words).
                        // A same-length acceptance is lexical-only progress
                        // — zero-padding regrew, or only the decremented
                        // length word changed — and retrying the same
                        // window would shave it by `size` per execution
                        // until the budget dies.
                        let shorter = tape.len() < best.len();
                        best = tape;
                        message = msg;
                        improved = true;
                        if !shorter {
                            i += size;
                        }
                    }
                    None => i += size,
                }
            }
            if size == 1 {
                break;
            }
            size /= 2;
        }

        // Pass 2: zero out contiguous chunks.
        let mut size = best.len().max(1);
        loop {
            let mut i = 0;
            while i + size <= best.len() && used < budget {
                if best[i..i + size].iter().all(|&w| w == 0) {
                    i += size;
                    continue;
                }
                let mut cand = best.clone();
                for w in &mut cand[i..i + size] {
                    *w = 0;
                }
                if let Some((tape, msg)) = attempt(trial, &cand, &best, &mut used, budget) {
                    best = tape;
                    message = msg;
                    improved = true;
                }
                i += size;
            }
            if size == 1 {
                break;
            }
            size /= 2;
        }

        // Pass 3: per-position binary search toward zero.
        let mut i = 0;
        while i < best.len() && used < budget {
            let orig = best[i];
            if orig == 0 {
                i += 1;
                continue;
            }
            let with = |v: u64, base: &[u64]| {
                let mut c = base.to_vec();
                c[i] = v;
                c
            };
            if let Some((tape, msg)) = attempt(trial, &with(0, &best), &best, &mut used, budget) {
                best = tape;
                message = msg;
                improved = true;
                i += 1;
                continue;
            }
            // 0 passes, `orig` fails. Generators consume words modulo
            // something small, so the failure predicate over a word is
            // rarely monotone — a plain binary search from 2^63 stalls.
            // First try a cheap ascending ladder: the smallest couple of
            // values, then the low-bit masks of `orig` (which preserve
            // the consumed residue for power-of-two moduli).
            let mut hi = orig; // known failing (current best)
            let mut shifted = false;
            let mut ladder = [1u64, 2, orig & 0xff, orig & 0xffff, orig & 0xffff_ffff];
            ladder.sort_unstable();
            for v in ladder {
                if v == 0 || v >= hi || used >= budget {
                    continue;
                }
                if let Some((tape, msg)) = attempt(trial, &with(v, &best), &best, &mut used, budget)
                {
                    shifted = tape.get(i).copied() != Some(v);
                    best = tape;
                    message = msg;
                    improved = true;
                    hi = v;
                    break; // ascending: the first failing rung is the best
                }
            }
            if shifted || i >= best.len() {
                i += 1;
                continue; // the edit moved structure; revisit next loop
            }
            // Search (0, hi] for the smallest word that still fails.
            let mut lo = 0u64; // known (or assumed) passing
            while hi - lo > 1 && used < budget {
                let mid = lo + (hi - lo) / 2;
                match attempt(trial, &with(mid, &best), &best, &mut used, budget) {
                    Some((tape, msg)) => {
                        let stable = tape.get(i).copied() == Some(mid);
                        best = tape;
                        message = msg;
                        hi = mid;
                        improved = true;
                        if !stable || i >= best.len() {
                            break; // the edit shifted structure; move on
                        }
                    }
                    None => lo = mid,
                }
            }
            i += 1;
        }

        if !improved || used >= budget {
            break;
        }
    }
    Shrunk { tape: best, message, executions: used }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::Source;

    /// Wrap a property into a `Trial` without panicking machinery: the
    /// property returns `Err(msg)` to signal failure.
    fn trial_of<F>(prop: F) -> impl FnMut(&[u64]) -> Option<(Vec<u64>, String)>
    where
        F: Fn(&mut Source) -> Result<(), String>,
    {
        move |cand: &[u64]| {
            let mut s = Source::replay(cand);
            match prop(&mut s) {
                Err(msg) => Some((s.tape().to_vec(), msg)),
                Ok(()) => None,
            }
        }
    }

    #[test]
    fn single_value_shrinks_to_boundary() {
        // Fails iff the drawn value exceeds 1000: minimum counterexample
        // is exactly 1001.
        let prop = |s: &mut Source| {
            let v = s.any_u64();
            if v > 1000 {
                Err(format!("{v} too big"))
            } else {
                Ok(())
            }
        };
        let mut trial = trial_of(prop);
        let start_tape = vec![0xdead_beef_dead_beefu64];
        let start_msg = "seed".to_string();
        let out = minimize((start_tape, start_msg), &mut trial, 10_000);
        assert_eq!(out.tape, vec![1001]);
        assert_eq!(out.message, "1001 too big");
        assert!(out.executions > 0 && out.executions < 200);
    }

    #[test]
    fn byte_vector_shrinks_to_single_offender() {
        // Fails iff the drawn byte string contains 0x7F.
        let prop = |s: &mut Source| {
            let v = s.bytes(0, 64);
            if v.contains(&0x7F) {
                Err("offender present".to_string())
            } else {
                Ok(())
            }
        };
        let mut trial = trial_of(prop);
        // A fat failing tape: length 9, bytes with one 0x7F in the middle.
        let start = vec![9, 3, 4, 5, 6, 0x7F, 8, 9, 10, 11];
        let out = minimize((start, "x".to_string()), &mut trial, 10_000);
        assert_eq!(out.tape, vec![1, 0x7F], "minimal = one-byte vector [0x7F]");
    }

    #[test]
    fn minimization_is_deterministic() {
        let prop = |s: &mut Source| {
            let v = s.bytes(0, 32);
            if v.iter().map(|&b| b as u32).sum::<u32>() > 300 {
                Err("sum too big".to_string())
            } else {
                Ok(())
            }
        };
        let start: Vec<u64> = vec![20, 200, 200, 200, 9, 9, 9, 9, 9, 9, 200, 200, 1, 2, 3, 4, 5, 6, 7, 8, 9];
        let a = minimize((start.clone(), "x".into()), &mut trial_of(prop), 5_000);
        let b = minimize((start, "x".into()), &mut trial_of(prop), 5_000);
        assert_eq!(a.tape, b.tape);
        assert_eq!(a.message, b.message);
        assert_eq!(a.executions, b.executions);
    }

    #[test]
    fn budget_bounds_executions() {
        let prop = |s: &mut Source| {
            let v = s.bytes(0, 64);
            if v.len() > 2 {
                Err("long".to_string())
            } else {
                Ok(())
            }
        };
        let start: Vec<u64> = (0..65).map(|i| i + 3).collect();
        let out = minimize((start, "x".into()), &mut trial_of(prop), 7);
        assert!(out.executions <= 7);
    }
}
