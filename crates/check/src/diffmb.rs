//! The policy-engine transcript harness.
//!
//! The hardcoded `WiretapMiddlebox` / `InterceptiveMiddlebox` reference
//! structs are gone: every censor is a [`PolicyBox`] interpreting a
//! compiled program. What replaces the live legacy twin is a *recorded*
//! one — [`render_transcript`] runs a policy device through a packet
//! script in a single-device rig and renders everything observable into
//! one canonical text:
//!
//! - after every step, the device state ([`Snap`]: trigger counter, the
//!   `(time, client, domain)` trigger log, flow-table rows, black-hole
//!   set) and the packets newly arrived on both taps (arrival time and
//!   exact wire bytes, hex);
//! - at the end of the run, the pretty metrics snapshot and the debug
//!   event log of the telemetry registry — so profiler path counters,
//!   injection events, and sweep accounting stay inside the
//!   equivalence claim, not just the packets.
//!
//! The transcripts recorded while the legacy structs were still alive
//! are committed under `tests/golden/mb-*.transcript`; [`run_diff`]
//! holds today's interpreter to them byte-for-byte, and
//! [`spec_self_diff`] holds any spec to *replay determinism* (two fresh
//! rigs, identical transcripts) — the invariant the recordings rest on.
//!
//! [`run_diff`] takes the compiled policy as a parameter on purpose:
//! `tests/it_policy.rs` feeds it the planted `wrong-airtel.toml`
//! fixture to prove the suite *can* go red, and its green twin to prove
//! the red is the fixture's fault.

use std::any::Any;
use std::net::Ipv4Addr;

use lucent_middlebox::compile::compile;
use lucent_middlebox::flow::{FlowKey, Stage};
use lucent_middlebox::policy::Policy;
use lucent_middlebox::{HostMatcher, Instance, PolicyBox};
use lucent_netsim::routing::Cidr;
use lucent_netsim::{IfaceId, Network, Node, NodeCtx, NodeId, SimDuration, SimTime};
use lucent_packet::http::RequestBuilder;
use lucent_packet::{IcmpMessage, Packet, TcpFlags, TcpHeader, UdpHeader};
use lucent_support::Bytes;

use crate::source::Source;

/// The three host matchers, in draw order.
const MATCHERS: [HostMatcher; 3] =
    [HostMatcher::ExactToken, HostMatcher::StrictPattern, HostMatcher::LastHost];

/// Slow-tail probabilities as literals, so the rendered TOML pins the
/// exact `f64` the interpreter draws against.
const SLOW_P: [&str; 4] = ["0.1", "0.25", "0.5", "0.9"];

/// A randomly drawn middlebox specification — the seed both the policy
/// program and the packet script are derived from.
#[derive(Debug, Clone)]
pub struct MbSpec {
    /// Wiretap (mirror tap) or interceptive (inline) family.
    pub wiretap: bool,
    /// Host extraction discipline.
    pub matcher: HostMatcher,
    /// Notice preset name (`airtel` / `idea` / `jio`); `None` renders
    /// no page — covert on an interceptive device, bare-RST wiretap.
    pub notice: Option<&'static str>,
    /// Fixed IP-Identifier; `None` means hashed (WM) / device mark (IM).
    pub fixed_ip_id: Option<u16>,
    /// Wiretap injection delay range, microseconds.
    pub delay_us: (u64, u64),
    /// Wiretap slow tail: (probability literal, delay range).
    pub slow: Option<(&'static str, (u64, u64))>,
    /// Inspect every port rather than only 80.
    pub any_ports: bool,
    /// Restrict inspection to clients inside 10.0.0.0/8.
    pub filtered_clients: bool,
    /// Flow-state idle timeout, seconds.
    pub flow_timeout_secs: u64,
    /// Domains the device censors.
    pub blocklist: Vec<String>,
    /// Device RNG seed.
    pub seed: u64,
}

fn matcher_word(m: HostMatcher) -> &'static str {
    match m {
        HostMatcher::ExactToken => "exact-token",
        HostMatcher::StrictPattern => "strict-pattern",
        HostMatcher::LastHost => "last-host",
    }
}

impl MbSpec {
    /// The specification rendered as a policy-TOML program — the text
    /// [`spec_self_diff`] feeds through [`compile`], so the compiler is
    /// exercised by every differential case.
    pub fn policy_toml(&self) -> String {
        let mut t = String::from("[policy]\nname = \"diff-spec\"\n");
        t.push_str(if self.wiretap {
            "family = \"wiretap\"\n"
        } else {
            "family = \"interceptive\"\n"
        });
        t.push_str("\n[match]\n");
        t.push_str(if self.any_ports { "ports = \"any\"\n" } else { "ports = [80]\n" });
        t.push_str("\n[state]\n");
        t.push_str(&format!("flow_timeout_secs = {}\n", self.flow_timeout_secs));
        t.push_str("\n[[rule]]\ntrigger = \"host-header\"\n");
        t.push_str(&format!("matcher = \"{}\"\n", matcher_word(self.matcher)));
        t.push_str("hosts = \"blocklist\"\n");
        let verbs: &str = match (self.wiretap, self.notice.is_some()) {
            (true, true) => "[\"inject-notice\", \"inject-rst\"]",
            (true, false) => "[\"inject-rst\"]",
            (false, true) => "[\"inject-notice\", \"reset-server\", \"drop\"]",
            (false, false) => "[\"inject-rst\", \"reset-server\", \"drop\"]",
        };
        t.push_str(&format!("action = {verbs}\n"));
        if let Some(preset) = self.notice {
            t.push_str(&format!("notice = \"{preset}\"\n"));
        }
        match (self.fixed_ip_id, self.wiretap) {
            (Some(v), _) => t.push_str(&format!("ip_id = {v}\n")),
            (None, true) => t.push_str("ip_id = \"hashed\"\n"),
            (None, false) => t.push_str("ip_id = \"device\"\n"),
        }
        if self.wiretap {
            let (lo, hi) = self.delay_us;
            t.push_str(&format!("delay_us = {{ lo = {lo}, hi = {hi} }}\n"));
            if let Some((p, (slo, shi))) = self.slow {
                t.push_str(&format!("slow = {{ p = {p}, lo = {slo}, hi = {shi} }}\n"));
            }
        }
        t
    }

    /// The specification as a [`PolicyBox`] device instance.
    pub fn device_instance(&self) -> Instance {
        Instance::of(self.blocklist.iter().cloned(), self.client_cidrs(), self.seed)
    }

    fn client_cidrs(&self) -> Option<Vec<Cidr>> {
        if self.filtered_clients {
            let mut v = Vec::default();
            v.push(Cidr::new(Ipv4Addr::new(10, 0, 0, 0), 8));
            Some(v)
        } else {
            None
        }
    }
}

/// Draw a random middlebox specification.
pub fn diff_spec(s: &mut Source) -> MbSpec {
    let wiretap = s.any_bool();
    let notice = if s.chance(2, 3) { Some(*s.pick(&["airtel", "idea", "jio"])) } else { None };
    let lo = s.range_u64(50, 2_000);
    let n = s.len_in(1, 3);
    let mut blocklist = Vec::default();
    for i in 0..n {
        blocklist.push(format!("blocked-{i}.example"));
    }
    MbSpec {
        wiretap,
        matcher: *s.pick(&MATCHERS),
        notice,
        fixed_ip_id: if s.any_bool() { Some(s.range_u64(1, 65_000) as u16) } else { None },
        delay_us: (lo, lo + s.range_u64(0, 5_000)),
        slow: if wiretap && s.any_bool() {
            Some((*s.pick(&SLOW_P), (150_000, 400_000)))
        } else {
            None
        },
        any_ports: s.chance(1, 4),
        filtered_clients: s.chance(1, 3),
        flow_timeout_secs: s.range_u64(30, 300),
        blocklist,
        seed: s.range_u64(0, 1 << 48),
    }
}

/// The Airtel wiretap specification — the spec behind the recorded
/// `tests/golden/mb-airtel.transcript` that `tests/it_policy.rs` diffs
/// the planted `wrong-airtel.toml` fixture (and its green twin)
/// against.
pub fn airtel_spec() -> MbSpec {
    MbSpec {
        wiretap: true,
        matcher: HostMatcher::ExactToken,
        notice: Some("airtel"),
        fixed_ip_id: Some(242),
        delay_us: (300, 900),
        slow: Some(("0.3", (150_000, 400_000))),
        any_ports: false,
        filtered_clients: false,
        flow_timeout_secs: 150,
        blocklist: {
            let mut v = Vec::default();
            v.push("blocked-0.example".to_string());
            v
        },
        seed: 7,
    }
}

/// The Idea interceptive specification — covers the inline family
/// (consume, answer overtly, reset the server, black-hole) in the
/// recorded `tests/golden/mb-idea.transcript`.
pub fn idea_spec() -> MbSpec {
    MbSpec {
        wiretap: false,
        matcher: HostMatcher::StrictPattern,
        notice: Some("idea"),
        fixed_ip_id: None,
        delay_us: (300, 900),
        slow: None,
        any_ports: false,
        filtered_clients: false,
        flow_timeout_secs: 150,
        blocklist: {
            let mut v = Vec::default();
            v.push("blocked-0.example".to_string());
            v
        },
        seed: 11,
    }
}

/// One scripted action against the rig.
#[derive(Debug, Clone)]
pub enum Step {
    /// Deliver a packet to the device on `iface` at the current instant.
    Inject(IfaceId, Packet),
    /// Let simulated time pass (sweeps, flow timeouts, black-hole expiry).
    Skip(SimDuration),
}

const SERVER: Ipv4Addr = Ipv4Addr::new(93, 184, 216, 34);

/// Per-flow sequence bookkeeping for the script generator.
struct FlowGen {
    client: (Ipv4Addr, u16),
    dst_port: u16,
    seq: u32,
    sisn: u32,
    shook: bool,
}

impl FlowGen {
    fn fresh(client: (Ipv4Addr, u16), dst_port: u16, isn: u32) -> FlowGen {
        FlowGen { client, dst_port, seq: isn, sisn: isn.wrapping_mul(3).wrapping_add(777), shook: false }
    }

    fn tcp_in(&self, flags: TcpFlags, seq: u32, ack: u32, payload: Bytes) -> Step {
        let mut h = TcpHeader::new(self.client.1, self.dst_port, flags);
        h.seq = seq;
        h.ack = ack;
        Step::Inject(IfaceId(0), Packet::tcp(self.client.0, SERVER, h, payload))
    }

    fn tcp_back(&self, flags: TcpFlags, seq: u32, ack: u32) -> Step {
        let mut h = TcpHeader::new(self.dst_port, self.client.1, flags);
        h.seq = seq;
        h.ack = ack;
        Step::Inject(IfaceId(1), Packet::tcp(SERVER, self.client.0, h, Bytes::new()))
    }

    /// The three-way handshake as seen by the device.
    fn hs_steps(&mut self, out: &mut Vec<Step>) {
        out.push(self.tcp_in(TcpFlags::SYN, self.seq, 0, Bytes::new()));
        out.push(self.tcp_back(TcpFlags::SYN | TcpFlags::ACK, self.sisn, self.seq.wrapping_add(1)));
        self.seq = self.seq.wrapping_add(1);
        out.push(self.tcp_in(TcpFlags::ACK, self.seq, self.sisn.wrapping_add(1), Bytes::new()));
        self.shook = true;
    }

    /// A data segment carrying `body`, advancing the sequence space.
    fn data_step(&mut self, body: Vec<u8>) -> Step {
        let len = body.len() as u32;
        let st = self.tcp_in(
            TcpFlags::ACK | TcpFlags::PSH,
            self.seq,
            self.sisn.wrapping_add(1),
            Bytes::from(body),
        );
        self.seq = self.seq.wrapping_add(len);
        st
    }
}

/// Request-image variants: canonical, double-Host, lowercase header
/// name, Host-less, and raw garbage — the §5 evasion shapes the
/// matchers must treat identically run over run.
fn request_image(s: &mut Source, host: &str) -> Vec<u8> {
    match s.below(5) {
        0 | 1 => RequestBuilder::browser(host, "/").build(),
        2 => format!("GET / HTTP/1.1\r\nHost: decoy.example\r\nHost: {host}\r\n\r\n").into_bytes(),
        3 => format!("GET / HTTP/1.1\r\nhost: {host}\r\nAccept: */*\r\n\r\n").into_bytes(),
        _ => b"GET / HTTP/1.1\r\nX-Pad: 1\r\n\r\n".to_vec(),
    }
}

/// Draw a random packet script for `spec`: handshakes on up to three
/// flows (one outside the 10/8 client filter), blocked and clean GETs
/// in evasion variants, teardown RSTs, UDP/ICMP noise, off-port SYNs,
/// and time skips long enough to cross the sweep and timeout horizons.
pub fn diff_script(s: &mut Source, spec: &MbSpec) -> Vec<Step> {
    let mut steps = Vec::default();
    let mut a = FlowGen::fresh((Ipv4Addr::new(10, 0, 0, 2), 40_000), 80, 1_000);
    let mut b = FlowGen::fresh((Ipv4Addr::new(10, 0, 7, 9), 41_000), 80, 50_000);
    // Outside the 10/8 filter: exercises the client-eligibility gate.
    let mut c = FlowGen::fresh((Ipv4Addr::new(172, 16, 0, 9), 42_000), 80, 90_000);
    a.hs_steps(&mut steps);
    let blocked = spec.blocklist[0].clone();
    let n = s.len_in(4, 10);
    for _ in 0..n {
        match s.below(10) {
            0 | 1 => {
                let img = request_image(s, &blocked);
                steps.push(a.data_step(img));
            }
            2 => {
                let img = request_image(s, "fine.example");
                steps.push(a.data_step(img));
            }
            3 => {
                if !b.shook {
                    b.hs_steps(&mut steps);
                }
                let img = request_image(s, &blocked);
                steps.push(b.data_step(img));
            }
            4 => {
                if !c.shook {
                    c.hs_steps(&mut steps);
                }
                let img = request_image(s, &blocked);
                steps.push(c.data_step(img));
            }
            5 => {
                // Client teardown RST mid-flow.
                let st = a.tcp_in(TcpFlags::RST, a.seq, 0, Bytes::new());
                steps.push(st);
            }
            6 => {
                let h = UdpHeader::new(5353, 53);
                steps.push(Step::Inject(
                    IfaceId(0),
                    Packet::udp(a.client.0, SERVER, h, Bytes::from(s.bytes(0, 24))),
                ));
            }
            7 => {
                let msg = IcmpMessage::EchoRequest { ident: 7, seq: 1 };
                steps.push(Step::Inject(IfaceId(0), Packet::icmp(a.client.0, SERVER, msg)));
            }
            8 => {
                // SYN to a port outside the inspection set (unless
                // `any_ports`, where it opens a tracked flow instead).
                let mut d = FlowGen::fresh((Ipv4Addr::new(10, 0, 0, 2), 43_000), 8_080, 5_000);
                d.hs_steps(&mut steps);
            }
            _ => {
                let secs = if s.any_bool() { s.range_u64(5, 40) } else { s.range_u64(160, 200) };
                steps.push(Step::Skip(SimDuration::from_secs(secs)));
            }
        }
    }
    // Always end with a blocked request on the primary flow, so every
    // case exercises the firing path at least twice.
    steps.push(a.data_step(RequestBuilder::browser(&blocked, "/").build()));
    steps
}

/// A short deterministic script (no [`Source`]) for the recorded
/// goldens and the CI negative control: handshake, blocked GET, clean
/// GET, sweep-crossing skip, second blocked GET.
pub fn canned_script(spec: &MbSpec) -> Vec<Step> {
    let mut steps = Vec::default();
    let mut a = FlowGen::fresh((Ipv4Addr::new(10, 0, 0, 2), 40_000), 80, 1_000);
    a.hs_steps(&mut steps);
    let blocked = spec.blocklist[0].clone();
    steps.push(a.data_step(RequestBuilder::browser(&blocked, "/").build()));
    steps.push(a.data_step(RequestBuilder::browser("fine.example", "/").build()));
    steps.push(Step::Skip(SimDuration::from_secs(35)));
    let mut b = FlowGen::fresh((Ipv4Addr::new(10, 0, 7, 9), 41_000), 80, 50_000);
    b.hs_steps(&mut steps);
    steps.push(b.data_step(RequestBuilder::browser(&blocked, "/").build()));
    steps
}

/// A recording tap: every packet's arrival instant and exact wire bytes.
struct Tap {
    rows: Vec<(u64, Vec<u8>)>,
    tag: &'static str,
}

impl Node for Tap {
    fn on_packet(&mut self, ctx: &mut NodeCtx<'_>, _iface: IfaceId, pkt: Packet) {
        self.rows.push((ctx.now().micros(), pkt.emit()));
    }
    fn label(&self) -> &str {
        self.tag
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

struct Rig {
    net: Network,
    mb: NodeId,
    a: NodeId,
    b: NodeId,
}

fn build_rig(device: Box<dyn Node>) -> Result<Rig, String> {
    let mut net = Network::new();
    net.telemetry().enable_prof(true);
    net.telemetry()
        .set_filter_spec("wiretap=debug,interceptive=debug")
        .map_err(|e| format!("filter spec rejected: {e:?}"))?;
    let mb = net.add_node(device);
    let a = net.add_node(Box::new(Tap { rows: Vec::default(), tag: "tap-client" }));
    let b = net.add_node(Box::new(Tap { rows: Vec::default(), tag: "tap-server" }));
    net.connect(mb, IfaceId(0), a, IfaceId(0), SimDuration::from_micros(10));
    net.connect(mb, IfaceId(1), b, IfaceId(0), SimDuration::from_micros(10));
    Ok(Rig { net, mb, a, b })
}

/// Everything state-shaped the device exposes, captured after each step.
#[derive(Debug, PartialEq)]
struct Snap {
    triggers: u64,
    log: Vec<(SimTime, Ipv4Addr, String)>,
    flows: Vec<(FlowKey, Stage)>,
    black: Vec<FlowKey>,
}

fn mb_snap(net: &Network, mb: NodeId) -> Result<Snap, String> {
    let d = net.node_ref::<PolicyBox>(mb).ok_or_else(|| "policy node missing".to_string())?;
    Ok(Snap {
        triggers: d.triggers,
        log: d.trigger_log.clone(),
        flows: d.flow_rows(),
        black: d.blackhole_rows(),
    })
}

fn tap_rows(net: &Network, id: NodeId) -> Result<Vec<(u64, Vec<u8>)>, String> {
    Ok(net.node_ref::<Tap>(id).ok_or_else(|| "tap node missing".to_string())?.rows.clone())
}

/// Longest slow-tail injection is 400 ms; give every step half a second
/// of virtual time so all pending forgeries land before the snapshot.
const SETTLE: SimDuration = SimDuration(500_000);

fn apply_step(r: &mut Rig, step: &Step) {
    match step {
        Step::Inject(iface, pkt) => {
            r.net.inject(r.mb, *iface, pkt.clone());
            r.net.run_for(SETTLE);
        }
        Step::Skip(d) => r.net.run_for(*d),
    }
}

/// One tap row as a transcript line: arrival microsecond and the exact
/// wire bytes, lowercase hex.
fn hex_row(at: u64, bytes: &[u8]) -> String {
    let mut line = format!("  @{at} ");
    for b in bytes {
        line.push_str(&format!("{b:02x}"));
    }
    line
}

/// Run `policy` through `steps` in a fresh single-device rig and render
/// the canonical transcript: per-step device state and newly tapped
/// packets, then the final metrics snapshot and telemetry event log.
pub fn render_transcript(policy: Policy, spec: &MbSpec, steps: &[Step]) -> Result<String, String> {
    let mut out =
        format!("lucent-mb-transcript/1 name={} family={:?}\n", policy.name, policy.family);
    let mut rig = build_rig(Box::new(PolicyBox::new(policy, spec.device_instance(), "mb")))?;
    let mut seen = [0usize; 2];
    for (i, step) in steps.iter().enumerate() {
        match step {
            Step::Inject(iface, _) => out.push_str(&format!("= step {i}: inject iface={}\n", iface.0)),
            Step::Skip(d) => out.push_str(&format!("= step {i}: skip {}us\n", d.micros())),
        }
        apply_step(&mut rig, step);
        let snap = mb_snap(&rig.net, rig.mb)?;
        out.push_str(&format!("state: {snap:?}\n"));
        for (tag, id, slot) in [("client", rig.a, 0usize), ("server", rig.b, 1)] {
            let rows = tap_rows(&rig.net, id)?;
            out.push_str(&format!("tap {tag}:\n"));
            for (at, bytes) in &rows[seen[slot]..] {
                out.push_str(&hex_row(*at, bytes));
                out.push('\n');
            }
            seen[slot] = rows.len();
        }
    }
    out.push_str("= final\nmetrics:\n");
    out.push_str(&rig.net.telemetry().metrics_snapshot_pretty());
    if !out.ends_with('\n') {
        out.push('\n');
    }
    out.push_str("events:\n");
    out.push_str(&rig.net.telemetry().event_log());
    if !out.ends_with('\n') {
        out.push('\n');
    }
    Ok(out)
}

/// Diff a live transcript against a recording, pinpointing the first
/// divergent line. The messages say "diverged" — CI's negative control
/// greps for it.
pub fn diff_transcripts(live: &str, recorded: &str) -> Result<(), String> {
    if live == recorded {
        return Ok(());
    }
    let mut l = live.lines();
    let mut r = recorded.lines();
    let mut n = 1usize;
    loop {
        match (l.next(), r.next()) {
            (Some(a), Some(b)) if a == b => n += 1,
            (a, b) => {
                return Err(format!(
                    "transcript diverged from the recording at line {n}:\n live: {}\n gold: {}",
                    a.unwrap_or("<end of transcript>"),
                    b.unwrap_or("<end of recording>"),
                ));
            }
        }
    }
}

/// Run `policy` through `steps` and hold the transcript to `recorded`
/// byte-for-byte. `Ok(())` means behaviour identical to the recording;
/// `Err` pinpoints the first divergence.
pub fn run_diff(
    policy: Policy,
    spec: &MbSpec,
    steps: &[Step],
    recorded: &str,
) -> Result<(), String> {
    diff_transcripts(&render_transcript(policy, spec, steps)?, recorded)
}

/// Compile `spec`'s own rendered policy text and replay it through two
/// fresh rigs: the transcripts must be byte-identical. This replay
/// determinism is the invariant every recorded golden rests on (and the
/// everyday entry point of [`crate::oracles::policy_replay_deterministic`]
/// and the fuzz-smoke campaign).
pub fn spec_self_diff(spec: &MbSpec, steps: &[Step]) -> Result<(), String> {
    let policy =
        compile(&spec.policy_toml()).map_err(|e| format!("rendered policy rejected: {e}"))?;
    let first = render_transcript(policy.clone(), spec, steps)?;
    let second = render_transcript(policy, spec, steps)?;
    diff_transcripts(&second, &first)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{check, Config};

    #[test]
    fn airtel_spec_renders_a_compilable_program() {
        let spec = airtel_spec();
        let p = compile(&spec.policy_toml()).unwrap();
        assert_eq!(p.rules.len(), 1);
    }

    #[test]
    fn the_canned_script_replays_deterministically() {
        for spec in [airtel_spec(), idea_spec()] {
            spec_self_diff(&spec, &canned_script(&spec)).unwrap();
        }
    }

    #[test]
    fn random_specs_and_scripts_replay_deterministically() {
        check(&Config::cases(24), |s| {
            let spec = diff_spec(s);
            let steps = diff_script(s, &spec);
            if let Err(e) = spec_self_diff(&spec, &steps) {
                std::panic::panic_any(e);
            }
        });
    }

    #[test]
    fn a_flipped_action_is_caught() {
        // The in-process version of the CI negative control: record the
        // Airtel reference, then replay airtel minus the notice page
        // against the recording — it must diverge.
        let spec = airtel_spec();
        let steps = canned_script(&spec);
        let reference = compile(&spec.policy_toml()).unwrap();
        let recorded = render_transcript(reference, &spec, &steps).unwrap();
        let mut covert = spec.clone();
        covert.notice = None;
        let wrong = compile(&covert.policy_toml()).unwrap();
        let out = run_diff(wrong, &spec, &steps, &recorded);
        let msg = out.expect_err("the transcript diff must catch a flipped action");
        assert!(msg.contains("diverged"), "CI greps for 'diverged': {msg}");
    }

    #[test]
    fn transcripts_carry_state_taps_metrics_and_events() {
        let spec = airtel_spec();
        let steps = canned_script(&spec);
        let policy = compile(&spec.policy_toml()).unwrap();
        let t = render_transcript(policy, &spec, &steps).unwrap();
        assert!(t.starts_with("lucent-mb-transcript/1 name=diff-spec family=Wiretap\n"));
        for needle in ["= step 0", "state: Snap", "tap client:", "tap server:", "= final", "metrics:", "events:"] {
            assert!(t.contains(needle), "transcript lost its {needle:?} section:\n{t}");
        }
    }
}
