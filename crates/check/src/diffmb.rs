//! The differential equivalence harness between the declarative policy
//! engine and the hardcoded middleboxes.
//!
//! One PR of overlap is the whole point: `lucent-middlebox` keeps the
//! legacy [`WiretapMiddlebox`] / [`InterceptiveMiddlebox`] structs alive
//! alongside the generic [`PolicyBox`] interpreter, and this module
//! holds them to *byte-identical* behaviour. A random [`MbSpec`] is
//! drawn from a [`Source`], rendered to policy-TOML text (so the
//! compiler itself sits inside the differential loop), instantiated
//! both ways in twin single-device rigs, and driven through a random
//! packet script. After every step the harness diffs:
//!
//! - the full injected-packet transcripts on both taps (arrival time,
//!   interface, and the exact wire bytes);
//! - the trigger counter and the `(time, client, domain)` trigger log;
//! - the flow-table rows (key and stage) and the black-hole set;
//!
//! and at the end of the run, the pretty metrics snapshot and the
//! debug event log of both telemetry registries — so profiler path
//! counters, injection events, and sweep accounting are all inside the
//! equivalence claim, not just the packets.
//!
//! [`run_diff`] is deliberately exported with the compiled policy as a
//! parameter: `tests/it_policy.rs` feeds it the planted
//! `wrong-airtel.toml` fixture to prove the suite *can* go red, and its
//! green twin to prove the red is the fixture's fault.

use std::any::Any;
use std::net::Ipv4Addr;

use lucent_middlebox::compile::compile;
use lucent_middlebox::flow::{FlowKey, Stage};
use lucent_middlebox::policy::Policy;
use lucent_middlebox::{
    HostMatcher, Instance, InterceptiveMiddlebox, MiddleboxConfig, NoticeStyle, PolicyBox,
    WiretapMiddlebox,
};
use lucent_netsim::routing::Cidr;
use lucent_netsim::{IfaceId, Network, Node, NodeCtx, NodeId, SimDuration, SimTime};
use lucent_packet::http::RequestBuilder;
use lucent_packet::{IcmpMessage, Packet, TcpFlags, TcpHeader, UdpHeader};
use lucent_support::Bytes;

use crate::source::Source;

/// The three host matchers, in draw order.
const MATCHERS: [HostMatcher; 3] =
    [HostMatcher::ExactToken, HostMatcher::StrictPattern, HostMatcher::LastHost];

/// Slow-tail probabilities as literals: the TOML renderer and the
/// legacy config must parse the *same* decimal text, so equality of the
/// resulting `f64` is exact by construction.
const SLOW_P: [&str; 4] = ["0.1", "0.25", "0.5", "0.9"];

/// A randomly drawn middlebox specification — the common ancestor both
/// the legacy config and the rendered policy file are derived from.
#[derive(Debug, Clone)]
pub struct MbSpec {
    /// Wiretap (mirror tap) or interceptive (inline) family.
    pub wiretap: bool,
    /// Host extraction discipline.
    pub matcher: HostMatcher,
    /// Notice preset name (`airtel` / `idea` / `jio`); `None` renders
    /// no page — covert on an interceptive device, bare-RST wiretap.
    pub notice: Option<&'static str>,
    /// Fixed IP-Identifier; `None` means hashed (WM) / device mark (IM).
    pub fixed_ip_id: Option<u16>,
    /// Wiretap injection delay range, microseconds.
    pub delay_us: (u64, u64),
    /// Wiretap slow tail: (probability literal, delay range).
    pub slow: Option<(&'static str, (u64, u64))>,
    /// Inspect every port rather than only 80.
    pub any_ports: bool,
    /// Restrict inspection to clients inside 10.0.0.0/8.
    pub filtered_clients: bool,
    /// Flow-state idle timeout, seconds.
    pub flow_timeout_secs: u64,
    /// Domains the device censors.
    pub blocklist: Vec<String>,
    /// Device RNG seed.
    pub seed: u64,
}

fn style_of(name: &str) -> NoticeStyle {
    match name {
        "idea" => NoticeStyle::idea_like(),
        "jio" => NoticeStyle::jio_like(),
        _ => NoticeStyle::airtel_like(),
    }
}

fn matcher_word(m: HostMatcher) -> &'static str {
    match m {
        HostMatcher::ExactToken => "exact-token",
        HostMatcher::StrictPattern => "strict-pattern",
        HostMatcher::LastHost => "last-host",
    }
}

impl MbSpec {
    /// The specification rendered as a policy-TOML program — the text
    /// [`run_diff`]'s callers feed through [`compile`], so the compiler
    /// is exercised by every differential case.
    pub fn policy_toml(&self) -> String {
        let mut t = String::from("[policy]\nname = \"diff-spec\"\n");
        t.push_str(if self.wiretap {
            "family = \"wiretap\"\n"
        } else {
            "family = \"interceptive\"\n"
        });
        t.push_str("\n[match]\n");
        t.push_str(if self.any_ports { "ports = \"any\"\n" } else { "ports = [80]\n" });
        t.push_str("\n[state]\n");
        t.push_str(&format!("flow_timeout_secs = {}\n", self.flow_timeout_secs));
        t.push_str("\n[[rule]]\ntrigger = \"host-header\"\n");
        t.push_str(&format!("matcher = \"{}\"\n", matcher_word(self.matcher)));
        t.push_str("hosts = \"blocklist\"\n");
        let verbs: &str = match (self.wiretap, self.notice.is_some()) {
            (true, true) => "[\"inject-notice\", \"inject-rst\"]",
            (true, false) => "[\"inject-rst\"]",
            (false, true) => "[\"inject-notice\", \"reset-server\", \"drop\"]",
            (false, false) => "[\"inject-rst\", \"reset-server\", \"drop\"]",
        };
        t.push_str(&format!("action = {verbs}\n"));
        if let Some(preset) = self.notice {
            t.push_str(&format!("notice = \"{preset}\"\n"));
        }
        match (self.fixed_ip_id, self.wiretap) {
            (Some(v), _) => t.push_str(&format!("ip_id = {v}\n")),
            (None, true) => t.push_str("ip_id = \"hashed\"\n"),
            (None, false) => t.push_str("ip_id = \"device\"\n"),
        }
        if self.wiretap {
            let (lo, hi) = self.delay_us;
            t.push_str(&format!("delay_us = {{ lo = {lo}, hi = {hi} }}\n"));
            if let Some((p, (slo, shi))) = self.slow {
                t.push_str(&format!("slow = {{ p = {p}, lo = {slo}, hi = {shi} }}\n"));
            }
        }
        t
    }

    /// The same specification as a legacy [`MiddleboxConfig`].
    pub fn legacy_config(&self) -> MiddleboxConfig {
        let mut cfg = MiddleboxConfig::new(self.blocklist.iter().cloned());
        cfg.matcher = self.matcher;
        cfg.ports = if self.any_ports { None } else { Some([80].into_iter().collect()) };
        cfg.client_filter = self.client_cidrs();
        cfg.flow_timeout = SimDuration::from_secs(self.flow_timeout_secs);
        cfg.notice = self.notice.map(style_of);
        cfg.fixed_ip_id = self.fixed_ip_id;
        cfg.injection_delay_us = self.delay_us;
        cfg.slow_injection =
            self.slow.map(|(p, range)| (p.parse::<f64>().unwrap_or(0.5), range));
        cfg.seed = self.seed;
        cfg
    }

    /// The same specification as a [`PolicyBox`] device instance.
    pub fn device_instance(&self) -> Instance {
        Instance::of(self.blocklist.iter().cloned(), self.client_cidrs(), self.seed)
    }

    fn client_cidrs(&self) -> Option<Vec<Cidr>> {
        if self.filtered_clients {
            let mut v = Vec::default();
            v.push(Cidr::new(Ipv4Addr::new(10, 0, 0, 0), 8));
            Some(v)
        } else {
            None
        }
    }
}

/// Draw a random middlebox specification.
pub fn diff_spec(s: &mut Source) -> MbSpec {
    let wiretap = s.any_bool();
    let notice = if s.chance(2, 3) { Some(*s.pick(&["airtel", "idea", "jio"])) } else { None };
    let lo = s.range_u64(50, 2_000);
    let n = s.len_in(1, 3);
    let mut blocklist = Vec::default();
    for i in 0..n {
        blocklist.push(format!("blocked-{i}.example"));
    }
    MbSpec {
        wiretap,
        matcher: *s.pick(&MATCHERS),
        notice,
        fixed_ip_id: if s.any_bool() { Some(s.range_u64(1, 65_000) as u16) } else { None },
        delay_us: (lo, lo + s.range_u64(0, 5_000)),
        slow: if wiretap && s.any_bool() {
            Some((*s.pick(&SLOW_P), (150_000, 400_000)))
        } else {
            None
        },
        any_ports: s.chance(1, 4),
        filtered_clients: s.chance(1, 3),
        flow_timeout_secs: s.range_u64(30, 300),
        blocklist,
        seed: s.range_u64(0, 1 << 48),
    }
}

/// The Airtel specification — the legacy reference `tests/it_policy.rs`
/// diffs the planted `wrong-airtel.toml` fixture (and its green twin)
/// against.
pub fn airtel_spec() -> MbSpec {
    MbSpec {
        wiretap: true,
        matcher: HostMatcher::ExactToken,
        notice: Some("airtel"),
        fixed_ip_id: Some(242),
        delay_us: (300, 900),
        slow: Some(("0.3", (150_000, 400_000))),
        any_ports: false,
        filtered_clients: false,
        flow_timeout_secs: 150,
        blocklist: {
            let mut v = Vec::default();
            v.push("blocked-0.example".to_string());
            v
        },
        seed: 7,
    }
}

/// One scripted action against both twin rigs.
#[derive(Debug, Clone)]
pub enum Step {
    /// Deliver a packet to the device on `iface` at the current instant.
    Inject(IfaceId, Packet),
    /// Let simulated time pass (sweeps, flow timeouts, black-hole expiry).
    Skip(SimDuration),
}

const SERVER: Ipv4Addr = Ipv4Addr::new(93, 184, 216, 34);

/// Per-flow sequence bookkeeping for the script generator.
struct FlowGen {
    client: (Ipv4Addr, u16),
    dst_port: u16,
    seq: u32,
    sisn: u32,
    shook: bool,
}

impl FlowGen {
    fn fresh(client: (Ipv4Addr, u16), dst_port: u16, isn: u32) -> FlowGen {
        FlowGen { client, dst_port, seq: isn, sisn: isn.wrapping_mul(3).wrapping_add(777), shook: false }
    }

    fn tcp_in(&self, flags: TcpFlags, seq: u32, ack: u32, payload: Bytes) -> Step {
        let mut h = TcpHeader::new(self.client.1, self.dst_port, flags);
        h.seq = seq;
        h.ack = ack;
        Step::Inject(IfaceId(0), Packet::tcp(self.client.0, SERVER, h, payload))
    }

    fn tcp_back(&self, flags: TcpFlags, seq: u32, ack: u32) -> Step {
        let mut h = TcpHeader::new(self.dst_port, self.client.1, flags);
        h.seq = seq;
        h.ack = ack;
        Step::Inject(IfaceId(1), Packet::tcp(SERVER, self.client.0, h, Bytes::new()))
    }

    /// The three-way handshake as seen by the device.
    fn hs_steps(&mut self, out: &mut Vec<Step>) {
        out.push(self.tcp_in(TcpFlags::SYN, self.seq, 0, Bytes::new()));
        out.push(self.tcp_back(TcpFlags::SYN | TcpFlags::ACK, self.sisn, self.seq.wrapping_add(1)));
        self.seq = self.seq.wrapping_add(1);
        out.push(self.tcp_in(TcpFlags::ACK, self.seq, self.sisn.wrapping_add(1), Bytes::new()));
        self.shook = true;
    }

    /// A data segment carrying `body`, advancing the sequence space.
    fn data_step(&mut self, body: Vec<u8>) -> Step {
        let len = body.len() as u32;
        let st = self.tcp_in(
            TcpFlags::ACK | TcpFlags::PSH,
            self.seq,
            self.sisn.wrapping_add(1),
            Bytes::from(body),
        );
        self.seq = self.seq.wrapping_add(len);
        st
    }
}

/// Request-image variants: canonical, double-Host, lowercase header
/// name, Host-less, and raw garbage — the §5 evasion shapes the
/// matchers must treat identically on both implementations.
fn request_image(s: &mut Source, host: &str) -> Vec<u8> {
    match s.below(5) {
        0 | 1 => RequestBuilder::browser(host, "/").build(),
        2 => format!("GET / HTTP/1.1\r\nHost: decoy.example\r\nHost: {host}\r\n\r\n").into_bytes(),
        3 => format!("GET / HTTP/1.1\r\nhost: {host}\r\nAccept: */*\r\n\r\n").into_bytes(),
        _ => b"GET / HTTP/1.1\r\nX-Pad: 1\r\n\r\n".to_vec(),
    }
}

/// Draw a random packet script for `spec`: handshakes on up to three
/// flows (one outside the 10/8 client filter), blocked and clean GETs
/// in evasion variants, teardown RSTs, UDP/ICMP noise, off-port SYNs,
/// and time skips long enough to cross the sweep and timeout horizons.
pub fn diff_script(s: &mut Source, spec: &MbSpec) -> Vec<Step> {
    let mut steps = Vec::default();
    let mut a = FlowGen::fresh((Ipv4Addr::new(10, 0, 0, 2), 40_000), 80, 1_000);
    let mut b = FlowGen::fresh((Ipv4Addr::new(10, 0, 7, 9), 41_000), 80, 50_000);
    // Outside the 10/8 filter: exercises the client-eligibility gate.
    let mut c = FlowGen::fresh((Ipv4Addr::new(172, 16, 0, 9), 42_000), 80, 90_000);
    a.hs_steps(&mut steps);
    let blocked = spec.blocklist[0].clone();
    let n = s.len_in(4, 10);
    for _ in 0..n {
        match s.below(10) {
            0 | 1 => {
                let img = request_image(s, &blocked);
                steps.push(a.data_step(img));
            }
            2 => {
                let img = request_image(s, "fine.example");
                steps.push(a.data_step(img));
            }
            3 => {
                if !b.shook {
                    b.hs_steps(&mut steps);
                }
                let img = request_image(s, &blocked);
                steps.push(b.data_step(img));
            }
            4 => {
                if !c.shook {
                    c.hs_steps(&mut steps);
                }
                let img = request_image(s, &blocked);
                steps.push(c.data_step(img));
            }
            5 => {
                // Client teardown RST mid-flow.
                let st = a.tcp_in(TcpFlags::RST, a.seq, 0, Bytes::new());
                steps.push(st);
            }
            6 => {
                let h = UdpHeader::new(5353, 53);
                steps.push(Step::Inject(
                    IfaceId(0),
                    Packet::udp(a.client.0, SERVER, h, Bytes::from(s.bytes(0, 24))),
                ));
            }
            7 => {
                let msg = IcmpMessage::EchoRequest { ident: 7, seq: 1 };
                steps.push(Step::Inject(IfaceId(0), Packet::icmp(a.client.0, SERVER, msg)));
            }
            8 => {
                // SYN to a port outside the inspection set (unless
                // `any_ports`, where it opens a tracked flow instead).
                let mut d = FlowGen::fresh((Ipv4Addr::new(10, 0, 0, 2), 43_000), 8_080, 5_000);
                d.hs_steps(&mut steps);
            }
            _ => {
                let secs = if s.any_bool() { s.range_u64(5, 40) } else { s.range_u64(160, 200) };
                steps.push(Step::Skip(SimDuration::from_secs(secs)));
            }
        }
    }
    // Always end with a blocked request on the primary flow, so every
    // case exercises the firing path at least twice.
    steps.push(a.data_step(RequestBuilder::browser(&blocked, "/").build()));
    steps
}

/// A short deterministic script (no [`Source`]) for the CI negative
/// control: handshake, blocked GET, clean GET, sweep-crossing skip,
/// second blocked GET.
pub fn canned_script(spec: &MbSpec) -> Vec<Step> {
    let mut steps = Vec::default();
    let mut a = FlowGen::fresh((Ipv4Addr::new(10, 0, 0, 2), 40_000), 80, 1_000);
    a.hs_steps(&mut steps);
    let blocked = spec.blocklist[0].clone();
    steps.push(a.data_step(RequestBuilder::browser(&blocked, "/").build()));
    steps.push(a.data_step(RequestBuilder::browser("fine.example", "/").build()));
    steps.push(Step::Skip(SimDuration::from_secs(35)));
    let mut b = FlowGen::fresh((Ipv4Addr::new(10, 0, 7, 9), 41_000), 80, 50_000);
    b.hs_steps(&mut steps);
    steps.push(b.data_step(RequestBuilder::browser(&blocked, "/").build()));
    steps
}

/// A recording tap: every packet's arrival instant and exact wire bytes.
struct Tap {
    rows: Vec<(u64, Vec<u8>)>,
    tag: &'static str,
}

impl Node for Tap {
    fn on_packet(&mut self, ctx: &mut NodeCtx<'_>, _iface: IfaceId, pkt: Packet) {
        self.rows.push((ctx.now().micros(), pkt.emit()));
    }
    fn label(&self) -> &str {
        self.tag
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

struct Twin {
    net: Network,
    mb: NodeId,
    a: NodeId,
    b: NodeId,
}

fn build_twin(device: Box<dyn Node>) -> Result<Twin, String> {
    let mut net = Network::new();
    net.telemetry().enable_prof(true);
    net.telemetry()
        .set_filter_spec("wiretap=debug,interceptive=debug")
        .map_err(|e| format!("filter spec rejected: {e:?}"))?;
    let mb = net.add_node(device);
    let a = net.add_node(Box::new(Tap { rows: Vec::default(), tag: "tap-client" }));
    let b = net.add_node(Box::new(Tap { rows: Vec::default(), tag: "tap-server" }));
    net.connect(mb, IfaceId(0), a, IfaceId(0), SimDuration::from_micros(10));
    net.connect(mb, IfaceId(1), b, IfaceId(0), SimDuration::from_micros(10));
    Ok(Twin { net, mb, a, b })
}

/// Everything state-shaped the two implementations expose, captured
/// after each step.
#[derive(Debug, PartialEq)]
struct Snap {
    triggers: u64,
    log: Vec<(SimTime, Ipv4Addr, String)>,
    flows: Vec<(FlowKey, Stage)>,
    black: Vec<FlowKey>,
}

fn mb_snap(net: &Network, mb: NodeId, legacy: bool, wiretap: bool) -> Result<Snap, String> {
    match (legacy, wiretap) {
        (true, true) => {
            let d = net
                .node_ref::<WiretapMiddlebox>(mb)
                .ok_or_else(|| "legacy wiretap node missing".to_string())?;
            Ok(Snap {
                triggers: d.injections,
                log: d.trigger_log.clone(),
                flows: d.flow_rows(),
                black: Vec::default(),
            })
        }
        (true, false) => {
            let d = net
                .node_ref::<InterceptiveMiddlebox>(mb)
                .ok_or_else(|| "legacy interceptive node missing".to_string())?;
            Ok(Snap {
                triggers: d.interceptions,
                log: d.trigger_log.clone(),
                flows: d.flow_rows(),
                black: d.blackhole_rows(),
            })
        }
        (false, _) => {
            let d = net
                .node_ref::<PolicyBox>(mb)
                .ok_or_else(|| "policy node missing".to_string())?;
            Ok(Snap {
                triggers: d.triggers,
                log: d.trigger_log.clone(),
                flows: d.flow_rows(),
                black: d.blackhole_rows(),
            })
        }
    }
}

fn tap_rows(net: &Network, id: NodeId) -> Result<Vec<(u64, Vec<u8>)>, String> {
    Ok(net.node_ref::<Tap>(id).ok_or_else(|| "tap node missing".to_string())?.rows.clone())
}

/// Longest slow-tail injection is 400 ms; give every step half a second
/// of virtual time so all pending forgeries land before the diff.
const SETTLE: SimDuration = SimDuration(500_000);

fn apply_step(t: &mut Twin, step: &Step) {
    match step {
        Step::Inject(iface, pkt) => {
            t.net.inject(t.mb, *iface, pkt.clone());
            t.net.run_for(SETTLE);
        }
        Step::Skip(d) => t.net.run_for(*d),
    }
}

/// Run `policy` and the legacy device derived from `spec` through
/// `steps`, diffing transcripts, trigger state, flow tables, metrics
/// and event logs. `Ok(())` means byte-identical behaviour; `Err`
/// pinpoints the first divergence.
pub fn run_diff(policy: Policy, spec: &MbSpec, steps: &[Step]) -> Result<(), String> {
    let legacy_node: Box<dyn Node> = if spec.wiretap {
        Box::new(WiretapMiddlebox::new(spec.legacy_config(), "mb"))
    } else {
        Box::new(InterceptiveMiddlebox::new(spec.legacy_config(), "mb"))
    };
    let mut legacy = build_twin(legacy_node)?;
    let mut pbox = build_twin(Box::new(PolicyBox::new(policy, spec.device_instance(), "mb")))?;

    for (i, step) in steps.iter().enumerate() {
        apply_step(&mut legacy, step);
        apply_step(&mut pbox, step);
        let want = mb_snap(&legacy.net, legacy.mb, true, spec.wiretap)?;
        let got = mb_snap(&pbox.net, pbox.mb, false, spec.wiretap)?;
        if want != got {
            return Err(format!(
                "step {i} ({step:?}): device state diverged\n legacy: {want:?}\n policy: {got:?}"
            ));
        }
        for (tag, lid, pid) in
            [("client", legacy.a, pbox.a), ("server", legacy.b, pbox.b)]
        {
            let want = tap_rows(&legacy.net, lid)?;
            let got = tap_rows(&pbox.net, pid)?;
            if want != got {
                let at = want.iter().zip(&got).position(|(w, g)| w != g).unwrap_or(want.len().min(got.len()));
                return Err(format!(
                    "step {i} ({step:?}): {tag}-side transcript diverged at packet {at} \
                     (legacy {} packets, policy {})",
                    want.len(),
                    got.len()
                ));
            }
        }
    }

    let want = legacy.net.telemetry().metrics_snapshot_pretty();
    let got = pbox.net.telemetry().metrics_snapshot_pretty();
    if want != got {
        return Err(format!("metrics snapshots diverged\n--- legacy\n{want}\n--- policy\n{got}"));
    }
    let want = legacy.net.telemetry().event_log();
    let got = pbox.net.telemetry().event_log();
    if want != got {
        return Err(format!("event logs diverged\n--- legacy\n{want}\n--- policy\n{got}"));
    }
    Ok(())
}

/// Compile `spec`'s own rendered policy text and run the differential:
/// the everyday entry point ([`crate::oracles::policy_matches_legacy`]
/// and the fuzz-smoke campaign both go through here).
pub fn spec_self_diff(spec: &MbSpec, steps: &[Step]) -> Result<(), String> {
    let policy =
        compile(&spec.policy_toml()).map_err(|e| format!("rendered policy rejected: {e}"))?;
    run_diff(policy, spec, steps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{check, Config};

    #[test]
    fn airtel_spec_renders_a_compilable_program() {
        let spec = airtel_spec();
        let p = compile(&spec.policy_toml()).unwrap();
        assert_eq!(p.rules.len(), 1);
    }

    #[test]
    fn the_canned_script_matches_on_the_airtel_spec() {
        let spec = airtel_spec();
        spec_self_diff(&spec, &canned_script(&spec)).unwrap();
    }

    #[test]
    fn random_specs_and_scripts_agree() {
        check(&Config::cases(24), |s| {
            let spec = diff_spec(s);
            let steps = diff_script(s, &spec);
            if let Err(e) = spec_self_diff(&spec, &steps) {
                std::panic::panic_any(e);
            }
        });
    }

    #[test]
    fn a_flipped_action_is_caught() {
        // The in-process version of the CI negative control: airtel
        // minus the notice page must fail the differential.
        let spec = airtel_spec();
        let mut covert = spec.clone();
        covert.notice = None;
        let wrong = compile(&covert.policy_toml()).unwrap();
        let out = run_diff(wrong, &spec, &canned_script(&spec));
        assert!(out.is_err(), "the differential suite must catch a flipped action");
    }
}
