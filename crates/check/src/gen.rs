//! `Gen<T>`: first-class generator combinators over a [`Source`].
//!
//! A `Gen<T>` is just a shared closure from tape to value, so generators
//! compose (`map`, `vec`, `one_of`) while every draw still lands on the
//! single choice tape the shrinker edits. Plain `fn(&mut Source) -> T`
//! generators (see [`crate::packets`]) lift into `Gen` via [`Gen::new`].

use std::rc::Rc;

use crate::source::Source;

/// A composable generator of `T` values.
pub struct Gen<T> {
    f: Rc<dyn Fn(&mut Source) -> T>,
}

impl<T> Clone for Gen<T> {
    fn clone(&self) -> Self {
        Gen { f: Rc::clone(&self.f) }
    }
}

impl<T: 'static> Gen<T> {
    /// Lift a drawing function into a generator.
    pub fn new(f: impl Fn(&mut Source) -> T + 'static) -> Gen<T> {
        Gen { f: Rc::new(f) }
    }

    /// Draw one value.
    pub fn run(&self, s: &mut Source) -> T {
        (self.f)(s)
    }

    /// A generator that always yields `value`.
    pub fn constant(value: T) -> Gen<T>
    where
        T: Clone,
    {
        Gen::new(move |_| value.clone())
    }

    /// Transform every generated value.
    pub fn map<U: 'static>(&self, g: impl Fn(T) -> U + 'static) -> Gen<U> {
        let f = Rc::clone(&self.f);
        Gen::new(move |s| g(f(s)))
    }

    /// A vector of `lo..=hi` draws; shrinks toward `lo` elements.
    pub fn vec(&self, lo: usize, hi: usize) -> Gen<Vec<T>> {
        let f = Rc::clone(&self.f);
        Gen::new(move |s| {
            let len = s.len_in(lo, hi);
            (0..len).map(|_| f(s)).collect()
        })
    }

    /// `Some` draw or `None`; a zero tape yields `None`.
    pub fn option(&self) -> Gen<Option<T>> {
        let f = Rc::clone(&self.f);
        Gen::new(move |s| if s.any_bool() { Some(f(s)) } else { None })
    }

    /// Pick one of several generators uniformly; shrinks toward the
    /// first. The list must be non-empty.
    pub fn one_of(gens: Vec<Gen<T>>) -> Gen<T> {
        assert!(!gens.is_empty(), "Gen::one_of: empty list");
        Gen::new(move |s| {
            let i = s.below(gens.len() as u64) as usize;
            gens[i].run(s)
        })
    }
}

/// Full-width integers.
pub fn u64s() -> Gen<u64> {
    Gen::new(Source::any_u64)
}

/// Integers in `lo..=hi`.
pub fn ranged(lo: u64, hi: u64) -> Gen<u64> {
    Gen::new(move |s| s.range_u64(lo, hi))
}

/// Byte strings with length in `lo..=hi`.
pub fn byte_strings(lo: usize, hi: usize) -> Gen<Vec<u8>> {
    Gen::new(move |s| s.bytes(lo, hi))
}

/// Strings over `alphabet` with length in `lo..=hi`.
pub fn strings(alphabet: &str, lo: usize, hi: usize) -> Gen<String> {
    let alphabet = alphabet.to_string();
    Gen::new(move |s| s.string(&alphabet, lo, hi))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn combinators_stay_on_one_tape() {
        let g = ranged(1, 6).map(|v| v * 10).vec(2, 5);
        let mut a = Source::new(3, 0);
        let drawn = g.run(&mut a);
        assert!((2..=5).contains(&drawn.len()));
        assert!(drawn.iter().all(|v| (10..=60).contains(v) && v % 10 == 0));
        let mut b = Source::replay(a.tape());
        assert_eq!(g.run(&mut b), drawn, "replay yields the same structure");
    }

    #[test]
    fn one_of_shrinks_toward_the_first_alternative() {
        let g = Gen::one_of(vec![Gen::constant(1u8), Gen::constant(2), Gen::constant(3)]);
        let mut zero = Source::replay(&[]);
        assert_eq!(g.run(&mut zero), 1);
    }

    #[test]
    fn option_zero_tape_is_none() {
        let g = u64s().option();
        let mut zero = Source::replay(&[]);
        assert_eq!(g.run(&mut zero), None);
    }
}
