//! The choice tape: every random draw a property makes goes through a
//! [`Source`] and is recorded as one `u64`. A failing input therefore
//! *is* its tape — it can be replayed verbatim, mutated structurally by
//! the shrinker, and reported as a compact hex string, all without any
//! cooperation from the generators that consumed it.
//!
//! Replay semantics: a [`Source`] built from a tape returns the recorded
//! words in order and **pads with zeros** once the tape is exhausted.
//! Zero is always the "smallest" choice (minimal length, lowest value,
//! `false`, first alternative), so deleting tape suffixes can only make
//! an input simpler — the property the shrinker relies on.

use std::net::Ipv4Addr;

use lucent_support::rng::{derive, Rng64};

enum Mode {
    /// Fresh draws from a seeded RNG.
    Random(Rng64),
    /// Replaying a recorded tape; reads past the end yield 0.
    Replay { tape: Vec<u64>, pos: usize },
}

/// A recording stream of bounded random choices.
pub struct Source {
    mode: Mode,
    record: Vec<u64>,
}

impl Source {
    /// A fresh random source for `stream` under `seed` (distinct streams
    /// never share draws).
    pub fn new(seed: u64, stream: u64) -> Source {
        Source { mode: Mode::Random(derive(seed, stream)), record: Vec::new() }
    }

    /// A source replaying `tape`; reads past the end return 0.
    pub fn replay(tape: &[u64]) -> Source {
        Source { mode: Mode::Replay { tape: tape.to_vec(), pos: 0 }, record: Vec::new() }
    }

    /// Every word drawn so far, in draw order. For a replayed source
    /// this is the *canonical* tape: unread suffixes are absent and
    /// zero-padding that was actually consumed is present.
    pub fn tape(&self) -> &[u64] {
        &self.record
    }

    fn draw(&mut self) -> u64 {
        let v = match &mut self.mode {
            Mode::Random(rng) => rng.next_u64(),
            Mode::Replay { tape, pos } => {
                let v = tape.get(*pos).copied().unwrap_or(0);
                *pos += 1;
                v
            }
        };
        self.record.push(v);
        v
    }

    /// A full-width draw.
    pub fn any_u64(&mut self) -> u64 {
        self.draw()
    }

    /// A 32-bit draw (low bits of one word).
    pub fn any_u32(&mut self) -> u32 {
        self.draw() as u32
    }

    /// A 16-bit draw.
    pub fn any_u16(&mut self) -> u16 {
        self.draw() as u16
    }

    /// An 8-bit draw.
    pub fn any_u8(&mut self) -> u8 {
        self.draw() as u8
    }

    /// A boolean; tape value 0 means `false` (the shrink target).
    pub fn any_bool(&mut self) -> bool {
        self.below(2) == 1
    }

    /// A value in `0..n`. Consumes **no** tape when `n <= 1`, so
    /// degenerate choices never bloat the shrink search space.
    pub fn below(&mut self, n: u64) -> u64 {
        if n <= 1 {
            0
        } else {
            self.draw() % n
        }
    }

    /// A value in `lo..=hi`; shrinks toward `lo`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi, "range_u64: {lo} > {hi}");
        lo.wrapping_add(self.below(hi.wrapping_sub(lo).wrapping_add(1)))
    }

    /// True with probability `num/den`. Note the shrink direction: a
    /// zero draw yields `true` whenever `num > 0`, so properties should
    /// put the *simpler* behaviour on the `true` branch.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }

    /// A length in `lo..=hi`; shrinks toward `lo`.
    pub fn len_in(&mut self, lo: usize, hi: usize) -> usize {
        self.range_u64(lo as u64, hi as u64) as usize
    }

    /// A byte vector with uniform contents and a length in `lo..=hi`.
    pub fn bytes(&mut self, lo: usize, hi: usize) -> Vec<u8> {
        let len = self.len_in(lo, hi);
        (0..len).map(|_| self.any_u8()).collect()
    }

    /// A string of `lo..=hi` chars drawn uniformly from `alphabet`.
    /// The alphabet must be non-empty.
    pub fn string(&mut self, alphabet: &str, lo: usize, hi: usize) -> String {
        let chars: Vec<char> = alphabet.chars().collect();
        assert!(!chars.is_empty(), "Source::string: empty alphabet");
        let len = self.len_in(lo, hi);
        (0..len).map(|_| chars[self.below(chars.len() as u64) as usize]).collect()
    }

    /// One uniformly chosen element of a non-empty slice; shrinks toward
    /// the first element.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "Source::pick: empty slice");
        &items[self.below(items.len() as u64) as usize]
    }

    /// Fisher–Yates shuffle driven by the tape; a zero tape leaves the
    /// slice in its original order (a zero draw swaps each position with
    /// itself), so shrinking a shuffle converges on the identity.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = i - self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }

    /// An arbitrary IPv4 address.
    pub fn ipv4(&mut self) -> Ipv4Addr {
        Ipv4Addr::from(self.any_u32())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_draws_are_recorded_and_replayable() {
        let mut a = Source::new(7, 0);
        let drawn: Vec<u64> = (0..8).map(|_| a.any_u64()).collect();
        let mut b = Source::replay(a.tape());
        let replayed: Vec<u64> = (0..8).map(|_| b.any_u64()).collect();
        assert_eq!(drawn, replayed);
        assert_eq!(a.tape(), b.tape());
    }

    #[test]
    fn replay_pads_with_zeros_past_the_end() {
        let mut s = Source::replay(&[5]);
        assert_eq!(s.any_u64(), 5);
        assert_eq!(s.any_u64(), 0);
        assert!(!s.any_bool());
        assert_eq!(s.tape(), &[5, 0, 0]);
    }

    #[test]
    fn degenerate_choices_consume_no_tape() {
        let mut s = Source::new(1, 0);
        assert_eq!(s.below(1), 0);
        assert_eq!(s.below(0), 0);
        assert_eq!(s.len_in(3, 3), 3);
        assert!(s.tape().is_empty());
    }

    #[test]
    fn bounded_draws_respect_bounds() {
        let mut s = Source::new(42, 9);
        for _ in 0..256 {
            let v = s.range_u64(10, 20);
            assert!((10..=20).contains(&v));
            let b = s.bytes(2, 5);
            assert!((2..=5).contains(&b.len()));
            let t = s.string("ab", 1, 3);
            assert!((1..=3).contains(&t.len()));
            assert!(t.chars().all(|c| c == 'a' || c == 'b'));
        }
    }

    #[test]
    fn zero_tape_is_the_minimal_input() {
        let mut s = Source::replay(&[]);
        assert_eq!(s.bytes(0, 64), Vec::<u8>::new());
        assert_eq!(*s.pick(&['x', 'y', 'z']), 'x');
        let mut items = [1, 2, 3, 4];
        s.shuffle(&mut items);
        assert_eq!(items, [1, 2, 3, 4]);
    }

    #[test]
    fn distinct_streams_differ() {
        let mut a = Source::new(7, 0);
        let mut b = Source::new(7, 1);
        assert_ne!(
            (0..4).map(|_| a.any_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.any_u64()).collect::<Vec<_>>()
        );
    }
}
