//! Structured generators for every wire format in `lucent-packet`.
//!
//! These replace the ad-hoc `arb_*` builders the three `props.rs`
//! suites used to duplicate: all of them draw from the same shrinkable
//! choice tape, and each plain function lifts into a [`Gen`] via
//! [`Gen::new`] when combinator composition is wanted.

use std::net::Ipv4Addr;

use lucent_packet::{
    DnsMessage, HttpResponse, IcmpMessage, Ipv4Header, Packet, TcpFlags, TcpHeader, UdpHeader,
};
use lucent_packet::http::RequestBuilder;
use lucent_support::Bytes;

use crate::gen::Gen;
use crate::source::Source;

/// Lowercase label alphabet (domain-name shaped).
pub const ALNUM_LOWER: &str = "abcdefghijklmnopqrstuvwxyz0123456789";

/// An arbitrary IPv4 address.
pub fn ipv4_addr(s: &mut Source) -> Ipv4Addr {
    s.ipv4()
}

/// Arbitrary TCP flags (any of the 6 low bits).
pub fn tcp_flags(s: &mut Source) -> TcpFlags {
    TcpFlags(s.below(0x40) as u8)
}

/// An arbitrary TCP header, optional-MSS included.
pub fn tcp_header(s: &mut Source) -> TcpHeader {
    TcpHeader {
        src_port: s.any_u16(),
        dst_port: s.any_u16(),
        seq: s.any_u32(),
        ack: s.any_u32(),
        flags: tcp_flags(s),
        window: s.any_u16(),
        mss: if s.any_bool() { Some(s.any_u16()) } else { None },
    }
}

/// An arbitrary UDP header.
pub fn udp_header(s: &mut Source) -> UdpHeader {
    UdpHeader::new(s.any_u16(), s.any_u16())
}

/// An arbitrary IPv4 header carrying TCP (protocol 6).
pub fn ipv4_header(s: &mut Source) -> Ipv4Header {
    Ipv4Header {
        src: ipv4_addr(s),
        dst: ipv4_addr(s),
        ttl: s.any_u8(),
        protocol: 6,
        identification: s.any_u16(),
        tos: s.any_u8(),
        dont_frag: s.any_bool(),
    }
}

/// One of the four ICMP message shapes.
pub fn icmp_message(s: &mut Source) -> IcmpMessage {
    let ident = s.any_u16();
    let seq = s.any_u16();
    match s.below(4) {
        0 => IcmpMessage::EchoRequest { ident, seq },
        1 => IcmpMessage::EchoReply { ident, seq },
        2 => IcmpMessage::TimeExceeded { original: s.bytes(0, 63) },
        _ => IcmpMessage::DestUnreachable { code: 3, original: s.bytes(0, 63) },
    }
}

/// A DNS name of 1–4 lowercase-alphanumeric labels.
pub fn dns_name(s: &mut Source) -> String {
    let labels = s.len_in(1, 4);
    let parts: Vec<String> = (0..labels).map(|_| s.string(ALNUM_LOWER, 1, 16)).collect();
    parts.join(".")
}

/// An A query for an arbitrary name.
pub fn dns_query(s: &mut Source) -> DnsMessage {
    let id = s.any_u16();
    let name = dns_name(s);
    DnsMessage::query_a(id, &name)
}

/// An answer (0–5 A records) to an arbitrary query.
pub fn dns_answer(s: &mut Source) -> DnsMessage {
    let q = dns_query(s);
    let n = s.len_in(0, 5);
    let ips: Vec<Ipv4Addr> = (0..n).map(|_| ipv4_addr(s)).collect();
    let ttl = s.any_u32();
    DnsMessage::answer_a(&q, &ips, ttl)
}

/// A query or an answer.
pub fn dns_message(s: &mut Source) -> DnsMessage {
    if s.any_bool() {
        dns_answer(s)
    } else {
        dns_query(s)
    }
}

/// A plausible host name: letter first, alnum last, dots and dashes in
/// the middle — the shape `it_props.rs` used to hand-roll.
pub fn host_name(s: &mut Source) -> String {
    format!(
        "{}{}{}",
        s.string("abcdefghijklmnopqrstuvwxyz", 1, 1),
        s.string("abcdefghijklmnopqrstuvwxyz0123456789.-", 0, 30),
        s.string(ALNUM_LOWER, 1, 1),
    )
}

/// A URL path (always `/`-rooted).
pub fn url_path(s: &mut Source) -> String {
    format!("/{}", s.string("abcdefghijklmnopqrstuvwxyz0123456789/", 0, 20))
}

/// A canonical browser request for an arbitrary host and path.
pub fn http_request(s: &mut Source) -> Vec<u8> {
    let host = host_name(s);
    let path = url_path(s);
    RequestBuilder::browser(&host, &path).build()
}

/// An arbitrary HTTP response with a printable-ASCII body.
pub fn http_response(s: &mut Source) -> HttpResponse {
    let status = s.range_u64(100, 599) as u16;
    let len = s.len_in(0, 255);
    let body: Vec<u8> = (0..len).map(|_| s.range_u64(0x20, 0x7e) as u8).collect();
    HttpResponse::new(status, "Reason", body)
}

/// A full TCP packet with arbitrary header, payload, TTL and IP id.
pub fn tcp_packet(s: &mut Source) -> Packet {
    let src = ipv4_addr(s);
    let dst = ipv4_addr(s);
    let h = tcp_header(s);
    let ttl = s.range_u64(1, 255) as u8;
    let id = s.any_u16();
    let payload = s.bytes(0, 255);
    Packet::tcp(src, dst, h, Bytes::from(payload)).with_ttl(ttl).with_ip_id(id)
}

/// A valid wire image of *some* protocol: TCP packet, DNS message, or
/// HTTP request — the corpus the corruption operators mutate.
pub fn wire_image(s: &mut Source) -> Vec<u8> {
    match s.below(3) {
        0 => tcp_packet(s).emit(),
        1 => {
            let mut wire = Vec::new();
            // Emission of a generated message only fails on oversized
            // names, which `dns_name` cannot produce.
            let _ = dns_message(s).emit(&mut wire);
            wire
        }
        _ => http_request(s),
    }
}

/// `Gen` forms of the main structured generators.
pub fn packets() -> Gen<Packet> {
    Gen::new(tcp_packet)
}

/// `Gen` form of [`dns_message`].
pub fn dns_messages() -> Gen<DnsMessage> {
    Gen::new(dns_message)
}

/// `Gen` form of [`host_name`].
pub fn host_names() -> Gen<String> {
    Gen::new(host_name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generators_replay_identically() {
        let mut a = Source::new(11, 0);
        let pkt = tcp_packet(&mut a);
        let mut b = Source::replay(a.tape());
        assert_eq!(tcp_packet(&mut b), pkt);
    }

    #[test]
    fn zero_tape_yields_minimal_structures() {
        let mut s = Source::replay(&[]);
        let name = dns_name(&mut s);
        assert_eq!(name, "a", "one label, one char, first alphabet entry");
        let mut s = Source::replay(&[]);
        let host = host_name(&mut s);
        assert_eq!(host, "aa");
    }

    #[test]
    fn wire_images_are_parseable_by_their_own_parser() {
        let mut s = Source::new(5, 3);
        for _ in 0..64 {
            let pkt = tcp_packet(&mut s);
            assert!(Packet::parse(&pkt.emit()).is_ok());
        }
    }
}
