//! Integration coverage for the support substrate from the outside:
//! pinned RNG streams (the reproducibility anchor for every generated
//! world), JSON round-trips on result-shaped documents, and the Bytes
//! sharing semantics the packet layer depends on.

use lucent_support::{prop, Bytes, Json, Rng64};

/// The exact first outputs of xoshiro256** under SplitMix64 expansion.
/// These values are the contract: if they ever change, every seeded
/// topology, corpus, and experiment in the workspace silently changes
/// with them, and cross-run/cross-machine reproducibility is gone.
#[test]
fn rng_streams_are_pinned_to_exact_values() {
    let mut r = Rng64::seed_from_u64(0);
    assert_eq!(
        [r.next_u64(), r.next_u64(), r.next_u64(), r.next_u64()],
        [
            11091344671253066420,
            13793997310169335082,
            1900383378846508768,
            7684712102626143532,
        ]
    );
    // The India master seed, as used by `IndiaConfig`.
    let mut r = Rng64::seed_from_u64(0x0011_d1a0_2018);
    assert_eq!([r.next_u64(), r.next_u64()], [2680476713262644467, 6535780012306725873]);
}

#[test]
fn derived_generators_are_pinned_too() {
    let mut r = Rng64::seed_from_u64(7);
    assert_eq!(r.gen::<f64>(), 0.7005764821796896);
    assert_eq!(r.gen::<f64>(), 0.2787512294737843);
    let mut r = Rng64::seed_from_u64(7);
    assert_eq!(
        [r.gen_range(0..100u32), r.gen_range(0..100u32), r.gen_range(0..100u32)],
        [94, 74, 38]
    );
    let mut r = Rng64::seed_from_u64(7);
    assert_eq!([r.gen_bool(0.5), r.gen_bool(0.5), r.gen_bool(0.5)], [false, true, false]);
}

#[test]
fn equal_seeds_agree_and_different_seeds_diverge() {
    let mut a = Rng64::seed_from_u64(42);
    let mut b = Rng64::seed_from_u64(42);
    let mut c = Rng64::seed_from_u64(43);
    let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
    let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
    let zs: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
    assert_eq!(xs, ys);
    assert_ne!(xs, zs);
}

#[test]
fn gen_range_and_index_respect_bounds() {
    prop::check(200, |rng| {
        let v = rng.gen_range(10..20u32);
        assert!((10..20).contains(&v));
        let w = rng.gen_range(5..=5u64);
        assert_eq!(w, 5);
        let i = rng.index(7);
        assert!(i < 7);
        let p = rng.gen::<f64>();
        assert!((0.0..1.0).contains(&p));
    });
}

/// Round-trip a document shaped like the experiment result files
/// (`fig4_race.json` and friends): nested objects, arrays of records,
/// negative and fractional numbers, escapes.
#[test]
fn json_round_trips_result_shaped_documents() {
    let text = r#"{
        "experiment": "fig4_race",
        "seed": 300000002018,
        "isps": [
            {"isp": "Airtel", "attempts": 4, "win_rate": 0.7, "delta_ms": -12.5},
            {"isp": "Idea", "attempts": 4, "win_rate": 1.0, "delta_ms": 0.0}
        ],
        "notes": "quotes \" and \\ and \n survive",
        "complete": true,
        "skipped": null
    }"#;
    let doc = Json::parse(text).expect("parse");
    let once = doc.to_string();
    let twice = Json::parse(&once).expect("reparse").to_string();
    assert_eq!(once, twice, "serialization is a fixed point");
    assert_eq!(doc.get("experiment").and_then(Json::as_str), Some("fig4_race"));
    assert_eq!(doc.get("seed").and_then(Json::as_i64), Some(300000002018));
    let isps = doc.get("isps").and_then(Json::as_arr).expect("isps");
    assert_eq!(isps.len(), 2);
    assert_eq!(isps[0].get("delta_ms").and_then(Json::as_f64), Some(-12.5));
    // Pretty and compact forms parse to the same tree.
    let pretty = Json::parse(&doc.to_string_pretty()).expect("pretty reparse");
    assert_eq!(pretty.to_string(), once);
}

#[test]
fn json_serialization_is_byte_stable() {
    // Objects keep insertion order (struct declaration order), so the
    // same tree must serialize to identical bytes every time — the
    // property the Figure 4 byte-identical-results check relies on.
    let doc = Json::Obj(vec![
        ("b".into(), Json::Int(1)),
        ("a".into(), Json::Arr(vec![Json::Float(0.5), Json::Null])),
    ]);
    let first = doc.to_string();
    assert_eq!(first, doc.clone().to_string());
    assert_eq!(first, r#"{"b":1,"a":[0.5,null]}"#);
    assert_eq!(Json::parse(&first).expect("reparse").to_string(), first);
}

#[test]
fn json_rejects_malformed_input() {
    for bad in ["{", "[1,", "\"unterminated", "{\"a\" 1}", "tru", "1e", ""] {
        assert!(Json::parse(bad).is_err(), "{bad:?} must not parse");
    }
}

#[test]
fn bytes_clones_share_storage_and_slices_are_views() {
    let b = Bytes::copy_from_slice(b"GET / HTTP/1.1\r\nHost: x\r\n\r\n");
    let c = b.clone();
    assert_eq!(b.as_slice(), c.as_slice());
    // Slicing yields a view of the same content without copying the
    // underlying storage (pointer identity of the backing slice).
    let head = b.slice(0..3);
    assert_eq!(head.as_slice(), b"GET");
    assert_eq!(head.as_slice().as_ptr(), b.as_slice().as_ptr());
    let tail = b.slice(16..);
    assert_eq!(&tail.as_slice()[..4], b"Host");
    // Empty edge cases.
    let empty = Bytes::new();
    assert!(empty.is_empty());
    assert_eq!(b.slice(5..5).len(), 0);
    assert_eq!(b.slice(..).len(), b.len());
}

#[test]
fn prop_generators_hit_their_contracts() {
    prop::check(50, |rng| {
        let v = prop::vec_u8(rng, 0..16);
        assert!(v.len() < 16);
        let s = prop::alnum_lower(rng, 3..=8);
        assert!((3..=8).contains(&s.len()));
        assert!(s.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
        let letters = prop::string_of(rng, "ab", 4..=4);
        assert!(letters.chars().all(|c| c == 'a' || c == 'b'));
        let pick = prop::select(rng, &[1, 2, 3]);
        assert!([1, 2, 3].contains(pick));
    });
}
