//! A small, deterministic JSON tree, writer, and parser.
//!
//! Replaces `serde`/`serde_json` for the result files this workspace
//! emits. Object members keep insertion order (struct declaration
//! order), so the same data always serializes to the same bytes — the
//! property the Figure 4 determinism check in `tests/` relies on.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::net::Ipv4Addr;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A signed integer (also covers all unsigned values ≤ `i64::MAX`).
    Int(i64),
    /// An unsigned integer above `i64::MAX`.
    UInt(u64),
    /// A finite float (non-finite values serialize as `null`).
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; members keep insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Serialize compactly (no whitespace).
    #[allow(clippy::inherent_to_string)] // not Display: tree types serialize explicitly
    pub fn to_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serialize with two-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    /// Look up a member of an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an `f64` if it is any numeric variant.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::Int(v) => Some(v as f64),
            Json::UInt(v) => Some(v as f64),
            Json::Float(v) => Some(v),
            _ => None,
        }
    }

    /// The value as an `i64` if integral.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Json::Int(v) => Some(v),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Json::UInt(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Float(v) => {
                if v.is_finite() {
                    // `{:?}` always keeps a decimal point or exponent
                    // ("1.0", not "1"), so floats stay floats on re-parse.
                    let _ = write!(out, "{v:?}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            Json::Obj(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_escaped(out, key);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    value.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }

    /// Parse a JSON document (must consume all non-whitespace input).
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters"));
        }
        Ok(value)
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure with a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// What went wrong.
    pub message: &'static str,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &'static str) -> JsonError {
        JsonError { offset: self.pos, message }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err("unexpected character"))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return Err(self.err("expected ',' or ']'")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut members = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let value = self.value(depth + 1)?;
                    members.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Json::Obj(members));
                        }
                        _ => return Err(self.err("expected ',' or '}'")),
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = &self.bytes[self.pos + 1..self.pos + 5];
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogates are not combined; emit the
                            // replacement character (no emitter here
                            // produces surrogate pairs).
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let c = s.chars().next().ok_or_else(|| self.err("unterminated string"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        if float {
            text.parse::<f64>().map(Json::Float).map_err(|_| self.err("bad number"))
        } else if let Ok(v) = text.parse::<i64>() {
            Ok(Json::Int(v))
        } else if let Ok(v) = text.parse::<u64>() {
            Ok(Json::UInt(v))
        } else {
            text.parse::<f64>().map(Json::Float).map_err(|_| self.err("bad number"))
        }
    }
}

/// Conversion into a [`Json`] tree; the workspace's `serde::Serialize`.
///
/// Struct impls are generated by [`crate::json_object!`]; unit-variant
/// enums by [`crate::json_enum!`]; anything irregular is written by hand.
pub trait ToJson {
    /// Build the JSON tree for this value.
    fn to_json(&self) -> Json;
}

/// Serialize any [`ToJson`] value compactly.
pub fn to_string<T: ToJson + ?Sized>(value: &T) -> String {
    value.to_json().to_string()
}

/// Serialize any [`ToJson`] value with two-space indentation.
pub fn to_string_pretty<T: ToJson + ?Sized>(value: &T) -> String {
    value.to_json().to_string_pretty()
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

macro_rules! to_json_signed {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                Json::Int(*self as i64)
            }
        }
    )*};
}
to_json_signed!(i8, i16, i32, i64, isize);

macro_rules! to_json_unsigned {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Json {
                let v = *self as u64;
                if v <= i64::MAX as u64 {
                    Json::Int(v as i64)
                } else {
                    Json::UInt(v)
                }
            }
        }
    )*};
}
to_json_unsigned!(u8, u16, u32, u64, usize);

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::Float(*self)
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> Json {
        Json::Float(f64::from(*self))
    }
}

impl ToJson for str {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl ToJson for Ipv4Addr {
    fn to_json(&self) -> Json {
        Json::Str(self.to_string())
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: ToJson, B: ToJson, C: ToJson> ToJson for (A, B, C) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json(), self.2.to_json()])
    }
}

impl<K: std::fmt::Display, V: ToJson> ToJson for BTreeMap<K, V> {
    fn to_json(&self) -> Json {
        Json::Obj(self.iter().map(|(k, v)| (k.to_string(), v.to_json())).collect())
    }
}

/// Implement [`ToJson`] for a struct, serializing the listed fields in
/// order under their own names — the moral equivalent of
/// `#[derive(Serialize)]`.
#[macro_export]
macro_rules! json_object {
    ($ty:ty { $($field:ident),* $(,)? }) => {
        impl $crate::json::ToJson for $ty {
            fn to_json(&self) -> $crate::json::Json {
                $crate::json::Json::Obj(vec![
                    $((stringify!($field).to_string(), $crate::json::ToJson::to_json(&self.$field))),*
                ])
            }
        }
    };
}

/// Implement [`ToJson`] for an enum of unit variants, serializing each
/// as its name string (serde's externally-tagged default).
#[macro_export]
macro_rules! json_enum {
    ($ty:ty { $($variant:ident),* $(,)? }) => {
        impl $crate::json::ToJson for $ty {
            fn to_json(&self) -> $crate::json::Json {
                match self {
                    $(<$ty>::$variant => $crate::json::Json::Str(stringify!($variant).to_string())),*
                }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_is_deterministic_and_ordered() {
        let v = Json::Obj(vec![
            ("zeta".into(), Json::Int(1)),
            ("alpha".into(), Json::Arr(vec![Json::Bool(true), Json::Null])),
        ]);
        assert_eq!(v.to_string(), r#"{"zeta":1,"alpha":[true,null]}"#);
        assert_eq!(v.to_string(), v.clone().to_string());
    }

    #[test]
    fn pretty_format_shape() {
        let v = Json::Obj(vec![("a".into(), Json::Arr(vec![Json::Int(1), Json::Int(2)]))]);
        assert_eq!(v.to_string_pretty(), "{\n  \"a\": [\n    1,\n    2\n  ]\n}");
    }

    #[test]
    fn floats_keep_a_decimal_point() {
        assert_eq!(Json::Float(1.0).to_string(), "1.0");
        assert_eq!(Json::Float(0.25).to_string(), "0.25");
        assert_eq!(Json::Float(f64::NAN).to_string(), "null");
    }

    #[test]
    fn parse_roundtrip() {
        let text = r#"{"a":[1,2.5,"x\n\"y\""],"b":null,"c":{"d":true,"e":-7}}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.to_string(), text);
    }

    #[test]
    fn write_parse_write_is_a_fixpoint() {
        let v = Json::Obj(vec![
            ("nums".into(), Json::Arr(vec![Json::Int(-1), Json::UInt(u64::MAX), Json::Float(0.5)])),
            ("s".into(), Json::Str("tab\there".into())),
        ]);
        let once = v.to_string_pretty();
        let twice = Json::parse(&once).unwrap().to_string_pretty();
        assert_eq!(once, twice);
    }

    #[test]
    fn parser_rejects_garbage() {
        for bad in ["", "{", "[1,", "{\"a\"}", "tru", "1.2.3", "\"\\q\"", "{\"a\":1}x"] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn deep_nesting_is_bounded() {
        let deep = "[".repeat(500) + &"]".repeat(500);
        assert!(Json::parse(&deep).is_err());
    }

    struct Demo {
        name: String,
        hits: u64,
        ratio: f64,
    }
    crate::json_object!(Demo { name, hits, ratio });

    #[test]
    fn json_object_macro_serializes_in_field_order() {
        let d = Demo { name: "x".into(), hits: 3, ratio: 0.5 };
        assert_eq!(to_string(&d), r#"{"name":"x","hits":3,"ratio":0.5}"#);
    }

    #[derive(Debug, PartialEq)]
    enum Kind {
        Alpha,
        Beta,
    }
    crate::json_enum!(Kind { Alpha, Beta });

    #[test]
    fn json_enum_macro_serializes_as_name() {
        assert_eq!(to_string(&Kind::Alpha), r#""Alpha""#);
        assert_eq!(to_string(&Kind::Beta), r#""Beta""#);
    }
}
