//! Seeded, reproducible randomness: SplitMix64 seeding into xoshiro256**.
//!
//! This is the only source of randomness in the workspace. There is no
//! entropy-based constructor on purpose — every stream derives from an
//! explicit `u64` seed, so the same seed yields the same stream on every
//! platform (the generator is pure wrapping `u64` arithmetic).

/// One step of SplitMix64 (Steele, Lea, Flood 2014); used to expand a
/// single `u64` seed into the xoshiro256** state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seeded xoshiro256** generator (Blackman & Vigna).
///
/// Replaces `rand::rngs::StdRng`: same call-site surface (`seed_from_u64`,
/// `gen`, `gen_range`, `gen_bool`) but with a fixed, documented algorithm
/// whose output is stable across platforms and releases.
#[derive(Debug, Clone)]
pub struct Rng64 {
    s: [u64; 4],
}

impl Rng64 {
    /// Build a generator from a 64-bit seed via SplitMix64 expansion.
    pub fn seed_from_u64(seed: u64) -> Rng64 {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for word in &mut s {
            *word = splitmix64(&mut sm);
        }
        Rng64 { s }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1]
            .wrapping_mul(5)
            .rotate_left(7)
            .wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// The next raw 32-bit output (upper half of a 64-bit draw).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform value of any [`FromRng`] type (`u32`, `u64`, `f64`, ...).
    pub fn gen<T: FromRng>(&mut self) -> T {
        T::from_rng(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }

    /// A uniform value in the given (non-empty) range.
    ///
    /// Accepts `a..b` and `a..=b` over the common integer types. Uses a
    /// modulo reduction: for the span sizes used in the simulator the
    /// bias is below 2^-32 and irrelevant next to model error.
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// A uniform index in `0..len` (`len` must be non-zero).
    pub fn index(&mut self, len: usize) -> usize {
        debug_assert!(len > 0, "index() on empty range");
        (self.next_u64() % len as u64) as usize
    }
}

/// Derive an independent stream from a master seed: `seed ⊕ stream`
/// fed through the usual SplitMix64 expansion.
///
/// This is the sanctioned way to hand each work shard its own
/// generator (stream = shard id): the XOR keeps every stream traceable
/// to the one top-level seed, while SplitMix64 decorrelates streams
/// whose ids differ in a single bit.
pub fn derive(seed: u64, stream: u64) -> Rng64 {
    Rng64::seed_from_u64(seed ^ stream)
}

/// Types a [`Rng64`] can draw uniformly.
pub trait FromRng {
    /// Draw one uniform value.
    fn from_rng(rng: &mut Rng64) -> Self;
}

macro_rules! from_rng_int {
    ($($t:ty),*) => {$(
        impl FromRng for $t {
            fn from_rng(rng: &mut Rng64) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
from_rng_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl FromRng for bool {
    fn from_rng(rng: &mut Rng64) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl FromRng for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn from_rng(rng: &mut Rng64) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl FromRng for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn from_rng(rng: &mut Rng64) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges a [`Rng64`] can sample uniformly.
pub trait SampleRange {
    /// The element type of the range.
    type Output;
    /// Draw one uniform value from the range.
    fn sample(self, rng: &mut Rng64) -> Self::Output;
}

macro_rules! sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut Rng64) -> $t {
                assert!(self.start < self.end, "gen_range on empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, rng: &mut Rng64) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range on empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % span as u64) as $t)
            }
        }
    )*};
}
sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    fn sample(self, rng: &mut Rng64) -> f64 {
        assert!(self.start < self.end, "gen_range on empty range");
        self.start + rng.gen::<f64>() * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng64::seed_from_u64(42);
        let mut b = Rng64::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng64::seed_from_u64(1);
        let mut b = Rng64::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn ranges_are_in_bounds() {
        let mut rng = Rng64::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..=6);
            assert!((3..=6).contains(&v));
            let w = rng.gen_range(10usize..20);
            assert!((10..20).contains(&w));
            let f = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = Rng64::seed_from_u64(99);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
        let mut rng = Rng64::seed_from_u64(99);
        assert!((0..1000).all(|_| !rng.gen_bool(0.0)));
    }

    #[test]
    fn derived_streams_are_stable_and_distinct() {
        let mut a0 = derive(42, 0);
        let mut a0b = derive(42, 0);
        let mut a1 = derive(42, 1);
        // Stream 0 of seed s is the plain seed-s stream.
        let mut plain = Rng64::seed_from_u64(42);
        for _ in 0..100 {
            let v = a0.next_u64();
            assert_eq!(v, a0b.next_u64());
            assert_eq!(v, plain.next_u64());
        }
        let same = (0..64).filter(|_| a0.next_u64() == a1.next_u64()).count();
        assert_eq!(same, 0, "adjacent streams must decorrelate");
    }

    #[test]
    fn full_range_inclusive_u64() {
        let mut rng = Rng64::seed_from_u64(5);
        // Must not overflow the span computation.
        let _ = rng.gen_range(0u64..=u64::MAX);
        let _ = rng.gen_range(i64::MIN..=i64::MAX);
    }
}
