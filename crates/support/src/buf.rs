//! A minimal cheaply-clonable byte buffer, replacing the `bytes` crate's
//! `Bytes` for the patterns this workspace actually uses: build once,
//! share by reference-counted clone, read as a slice.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted byte buffer.
///
/// `Clone` is O(1) (an `Arc` bump) and [`Bytes::slice`] is a zero-copy
/// view into the same allocation. Equality and hashing are by content,
/// so types embedding `Bytes` (like `lucent_packet::Packet`) can keep
/// their derived `PartialEq`/`Hash` semantics.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// The empty buffer.
    pub fn new() -> Bytes {
        Bytes::copy_from_slice(&[])
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes { data: Arc::from(data), start: 0, end: data.len() }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// View as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    /// Copy out to an owned `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// A zero-copy sub-view sharing this buffer's allocation.
    ///
    /// Accepts the usual range forms (`a..b`, `a..`, `..b`, `..`).
    /// Panics if the range is out of bounds, matching slice indexing.
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let len = self.len();
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(lo <= hi && hi <= len, "slice {lo}..{hi} out of bounds for length {len}");
        Bytes { data: Arc::clone(&self.data), start: self.start + lo, end: self.start + hi }
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes { data: Arc::from(v.into_boxed_slice()), start: 0, end }
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Bytes {
        Bytes::copy_from_slice(s)
    }
}

impl<const N: usize> From<&[u8; N]> for Bytes {
    fn from(s: &[u8; N]) -> Bytes {
        Bytes::copy_from_slice(s)
    }
}

impl From<&str> for Bytes {
    fn from(s: &str) -> Bytes {
        Bytes::copy_from_slice(s.as_bytes())
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Bytes {
        Bytes::from(s.into_bytes())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            // Match the readable style of `bytes::Bytes` debug output.
            match b {
                b'"' => write!(f, "\\\"")?,
                b'\\' => write!(f, "\\\\")?,
                b'\n' => write!(f, "\\n")?,
                b'\r' => write!(f, "\\r")?,
                b'\t' => write!(f, "\\t")?,
                0x20..=0x7e => write!(f, "{}", b as char)?,
                other => write!(f, "\\x{other:02x}")?,
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of<T: Hash + ?Sized>(t: &T) -> u64 {
        let mut h = DefaultHasher::new();
        t.hash(&mut h);
        h.finish()
    }

    #[test]
    fn construction_and_views() {
        let b = Bytes::from(vec![1, 2, 3]);
        assert_eq!(b.len(), 3);
        assert_eq!(&b[..], &[1, 2, 3]);
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
        assert!(Bytes::new().is_empty());
        let s = Bytes::from(&b"abc"[..]);
        assert_eq!(s, *b"abc");
    }

    #[test]
    fn clone_is_shared_and_equal() {
        let a = Bytes::copy_from_slice(b"payload");
        let b = a.clone();
        assert_eq!(a, b);
        assert!(std::ptr::eq(a.as_slice(), b.as_slice()));
    }

    #[test]
    fn hash_matches_slice_hash() {
        let a = Bytes::copy_from_slice(b"xyz");
        assert_eq!(hash_of(&a), hash_of(&b"xyz"[..]));
    }

    #[test]
    fn slice_is_a_shared_view() {
        let a = Bytes::copy_from_slice(b"hello world");
        let tail = a.slice(6..);
        assert_eq!(tail, *b"world");
        let mid = a.slice(3..8);
        assert_eq!(mid, *b"lo wo");
        // Slicing a slice composes.
        assert_eq!(mid.slice(1..=2), *b"o ");
        assert_eq!(a.slice(..), a);
        assert!(a.slice(11..).is_empty());
        // Shares the parent's allocation (no copy).
        assert!(std::ptr::eq(&a.as_slice()[6], &tail.as_slice()[0]));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_out_of_bounds_panics() {
        let _ = Bytes::copy_from_slice(b"abc").slice(1..5);
    }
}
