//! A micro benchmark harness, replacing `criterion` for the `benches/`
//! targets.
//!
//! This module is the single sanctioned home of wall-clock reads in the
//! workspace: lint rule L3 bans `std::time::Instant::now` everywhere
//! except here, so simulation code can never accidentally couple results
//! to real time. Benches and the `repro` binary take their timing
//! through [`Stopwatch`] and [`Harness`].

use std::time::Instant;

/// A simple wall-clock stopwatch for end-of-run reporting.
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Start timing now.
    pub fn start() -> Stopwatch {
        Stopwatch { start: Instant::now() }
    }

    /// Seconds elapsed since start.
    pub fn elapsed_secs(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    /// Nanoseconds elapsed since start.
    pub fn elapsed_nanos(&self) -> u128 {
        self.start.elapsed().as_nanos()
    }
}

/// One measured benchmark result.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Benchmark name (`group/name` style).
    pub name: String,
    /// Iterations measured.
    pub iters: u32,
    /// Mean nanoseconds per iteration.
    pub mean_ns: f64,
    /// Fastest single iteration, nanoseconds.
    pub min_ns: f64,
}

/// A bench harness: registers named closures, times them, prints a
/// one-line summary each. An optional CLI substring filter (the first
/// non-flag argument, as with criterion/libtest) selects benchmarks.
pub struct Harness {
    filter: Option<String>,
    /// Target measuring time per benchmark, seconds.
    pub target_secs: f64,
    /// Hard cap on measured iterations.
    pub max_iters: u32,
    results: Vec<Measurement>,
}

impl Default for Harness {
    fn default() -> Self {
        Harness::new()
    }
}

impl Harness {
    /// Build a harness, reading the benchmark filter from `argv[1..]`.
    pub fn new() -> Harness {
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && a != "--bench");
        Harness { filter, target_secs: 1.0, max_iters: 200, results: Vec::new() }
    }

    /// Time `f`, printing `name: <mean> ns/iter (min <min>)`.
    pub fn bench<T>(&mut self, name: &str, mut f: impl FnMut() -> T) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        // Warm-up: one untimed call, then estimate per-iter cost.
        let warm = Stopwatch::start();
        std::hint::black_box(f());
        let est_ns = warm.elapsed_nanos().max(1) as f64;
        let budget_ns = self.target_secs * 1e9;
        let iters = ((budget_ns / est_ns) as u32).clamp(1, self.max_iters);
        let mut min_ns = f64::INFINITY;
        let total = Stopwatch::start();
        for _ in 0..iters {
            let one = Stopwatch::start();
            std::hint::black_box(f());
            min_ns = min_ns.min(one.elapsed_nanos() as f64);
        }
        let mean_ns = total.elapsed_nanos() as f64 / f64::from(iters);
        println!("bench {name:<40} {:>12} ns/iter (min {:>12} ns, {iters} iters)",
            format_ns(mean_ns), format_ns(min_ns));
        self.results.push(Measurement {
            name: name.to_string(),
            iters,
            mean_ns,
            min_ns,
        });
    }

    /// All measurements so far.
    pub fn results(&self) -> &[Measurement] {
        &self.results
    }
}

fn format_ns(ns: f64) -> String {
    format!("{ns:.0}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_measures_and_records() {
        let mut h = Harness { filter: None, target_secs: 0.01, max_iters: 10, results: Vec::new() };
        h.bench("demo/sum", || (0..1000u64).sum::<u64>());
        assert_eq!(h.results().len(), 1);
        let m = &h.results()[0];
        assert!(m.iters >= 1 && m.iters <= 10);
        assert!(m.min_ns <= m.mean_ns * 1.5 + 1.0);
    }

    #[test]
    fn filter_skips_mismatches() {
        let mut h = Harness {
            filter: Some("only-this".into()),
            target_secs: 0.01,
            max_iters: 2,
            results: Vec::new(),
        };
        h.bench("other/thing", || 1);
        assert!(h.results().is_empty());
        h.bench("group/only-this-one", || 1);
        assert_eq!(h.results().len(), 1);
    }

    #[test]
    fn stopwatch_monotone() {
        let sw = Stopwatch::start();
        let a = sw.elapsed_nanos();
        let b = sw.elapsed_nanos();
        assert!(b >= a);
    }
}
