//! A micro property-testing harness — **superseded by `lucent-check`**.
//!
//! The wire-format, TCP and integration property suites now run on the
//! `lucent-check` crate, which adds recorded choice tapes, integrated
//! shrinking and replayable failure reports on top of what this module
//! offers. New properties should use `lucent_check::{check, Config}`
//! and draw inputs from a `lucent_check::Source`; this shim stays only
//! for `support`'s own substrate tests (which cannot depend on a crate
//! above them in the layer DAG) and will shrink further as they migrate.
//!
//! Each case gets a [`Rng64`] seeded deterministically from the case
//! index, so failures are reproducible by construction: the panic
//! message names the failing case seed, and re-running the test reaches
//! the same case with the same inputs.

use crate::rng::Rng64;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Base seed mixed with the case index (golden-ratio constant).
const CASE_SEED_BASE: u64 = 0x9E37_79B9_7F4A_7C15;

/// Run `cases` property checks, each with its own deterministic RNG.
///
/// The closure draws whatever inputs it needs from the RNG and asserts
/// its property with ordinary `assert!`s. On failure the harness
/// re-raises with the case index and seed prepended.
pub fn check(cases: u32, f: impl Fn(&mut Rng64)) {
    for case in 0..cases {
        let seed = CASE_SEED_BASE ^ u64::from(case).wrapping_mul(0xA076_1D64_78BD_642F);
        let mut rng = Rng64::seed_from_u64(seed);
        let result = catch_unwind(AssertUnwindSafe(|| f(&mut rng)));
        if let Err(payload) = result {
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("<non-string panic>");
            panic!("property failed at case {case}/{cases} (seed {seed:#018x}): {msg}");
        }
    }
}

/// A `Vec<u8>` with uniform contents and a uniform length in `range`.
/// The range must be non-empty: an empty half-open range like `3..3` is
/// a caller bug (it used to silently yield `range.start` elements,
/// masking typos such as a swapped `hi..lo`).
pub fn vec_u8(rng: &mut Rng64, range: std::ops::Range<usize>) -> Vec<u8> {
    assert!(!range.is_empty(), "vec_u8: empty length range {range:?}");
    let len = rng.gen_range(range);
    (0..len).map(|_| rng.gen::<u8>()).collect()
}

/// A `Vec` of `len_range.sample()` items drawn by `item`. Like
/// [`vec_u8`], the length range must be non-empty.
pub fn vec_of<T>(
    rng: &mut Rng64,
    range: std::ops::Range<usize>,
    mut item: impl FnMut(&mut Rng64) -> T,
) -> Vec<T> {
    assert!(!range.is_empty(), "vec_of: empty length range {range:?}");
    let len = rng.gen_range(range);
    (0..len).map(|_| item(rng)).collect()
}

/// A string of `len` chars drawn uniformly from `alphabet`.
pub fn string_of(rng: &mut Rng64, alphabet: &str, len_range: std::ops::RangeInclusive<usize>) -> String {
    let chars: Vec<char> = alphabet.chars().collect();
    assert!(!chars.is_empty(), "empty alphabet");
    let len = rng.gen_range(len_range);
    (0..len).map(|_| chars[rng.index(chars.len())]).collect()
}

/// Lowercase-alphanumeric string, the common domain-label shape.
pub fn alnum_lower(rng: &mut Rng64, len_range: std::ops::RangeInclusive<usize>) -> String {
    string_of(rng, "abcdefghijklmnopqrstuvwxyz0123456789", len_range)
}

/// One uniformly chosen element of a non-empty slice.
pub fn select<'a, T>(rng: &mut Rng64, items: &'a [T]) -> &'a T {
    &items[rng.index(items.len())]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_runs_the_requested_cases() {
        let mut count = 0;
        let counter = std::cell::Cell::new(0u32);
        check(17, |_| counter.set(counter.get() + 1));
        count += counter.get();
        assert_eq!(count, 17);
    }

    #[test]
    fn failures_carry_case_context() {
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            check(8, |rng| {
                let _v: u64 = rng.gen();
                panic!("deliberate");
            })
        }));
        let err = outcome.expect_err("must fail");
        let msg = err.downcast_ref::<String>().expect("string panic");
        assert!(msg.contains("case 0/8"), "{msg}");
        assert!(msg.contains("deliberate"), "{msg}");
    }

    #[test]
    fn generators_respect_bounds() {
        check(64, |rng| {
            let v = vec_u8(rng, 0..16);
            assert!(v.len() < 16);
            let s = alnum_lower(rng, 1..=8);
            assert!((1..=8).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
            let pick = select(rng, &[1, 2, 3]);
            assert!([1, 2, 3].contains(pick));
        });
    }

    #[test]
    #[allow(clippy::reversed_empty_ranges)] // the empty range IS the subject
    fn empty_length_ranges_are_rejected() {
        // Regression: these used to silently return `range.start`
        // elements, hiding swapped-bound typos at call sites.
        let mut rng = Rng64::seed_from_u64(1);
        let r = catch_unwind(AssertUnwindSafe(|| vec_u8(&mut rng, 5..5)));
        assert!(r.is_err(), "vec_u8 must reject an empty range");
        let mut rng = Rng64::seed_from_u64(1);
        let r = catch_unwind(AssertUnwindSafe(|| vec_of(&mut rng, 7..3, |rng| rng.gen::<u8>())));
        assert!(r.is_err(), "vec_of must reject an empty range");
        let mut rng = Rng64::seed_from_u64(1);
        assert!(vec_u8(&mut rng, 0..1).is_empty(), "0..1 draws exactly zero");
    }

    #[test]
    fn same_case_same_inputs() {
        let first = std::cell::RefCell::new(Vec::new());
        check(4, |rng| first.borrow_mut().push(vec_u8(rng, 0..32)));
        let second = std::cell::RefCell::new(Vec::new());
        check(4, |rng| second.borrow_mut().push(vec_u8(rng, 0..32)));
        assert_eq!(*first.borrow(), *second.borrow());
    }
}
