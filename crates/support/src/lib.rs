//! # lucent-support
//!
//! The dependency-free substrate that makes the workspace hermetic:
//! every capability previously pulled from crates.io lives here, small
//! and auditable, so `cargo build` needs no network and the lint gate
//! (`lucent-devtools`) can enforce that it stays that way.
//!
//! * [`rng`] — seeded SplitMix64/xoshiro256** randomness (was `rand`)
//! * [`buf`] — a cheaply-clonable immutable byte buffer (was `bytes`)
//! * [`json`] — deterministic JSON tree, writer, parser, and the
//!   [`json::ToJson`] trait with derive-style macros (was `serde` +
//!   `serde_json`)
//! * [`prop`] — a micro property-testing harness (was `proptest`)
//! * [`bench`] — a micro benchmark harness and the workspace's only
//!   sanctioned wall-clock access (was `criterion`)

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod bench;
pub mod buf;
pub mod json;
pub mod prop;
pub mod rng;

pub use buf::Bytes;
pub use json::{Json, ToJson};
pub use rng::Rng64;
