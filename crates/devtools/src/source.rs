//! Source rules: L3 determinism, L4 panic budget, L5 unsafe hygiene.
//!
//! All three operate on one file at a time so they are trivially
//! testable on string fixtures. L3 and L4 consider only *non-test* code:
//! anything under a `#[cfg(test)]` item is exempt, as are files outside
//! a crate's `src/` tree (integration tests, benches).

use crate::allow::Allow;
use crate::lex::{has_token, in_spans, scrub, test_spans};
use crate::report::{Rule, Violation};

/// A file presented to the source rules. `path` is repo-relative with
/// forward slashes — allowlists match on it exactly.
pub struct SourceFile<'a> {
    pub path: &'a str,
    pub text: &'a str,
}

/// Pre-lexed view shared by the rules.
pub struct Lexed {
    scrubbed: String,
    spans: Vec<(usize, usize)>,
}

impl Lexed {
    pub fn new(text: &str) -> Lexed {
        let scrubbed = scrub(text);
        let spans = test_spans(&scrubbed);
        Lexed { scrubbed, spans }
    }

    /// The scrubbed text (length- and newline-preserving) — the input
    /// the item parser and call-graph extraction run on.
    pub fn scrubbed(&self) -> &str {
        &self.scrubbed
    }

    /// 1-based inclusive line ranges covered by `#[cfg(test)]` items.
    pub fn test_spans(&self) -> &[(usize, usize)] {
        &self.spans
    }

    /// Non-test scrubbed lines with 1-based numbers.
    fn live_lines(&self) -> impl Iterator<Item = (usize, &str)> {
        self.scrubbed
            .lines()
            .enumerate()
            .map(|(i, l)| (i + 1, l))
            .filter(|(n, _)| !in_spans(&self.spans, *n))
    }
}

/// Wall-clock and entropy sources. `Instant`/`SystemTime` are banned
/// wholesale: simulated time comes from the event loop, and the only
/// sanctioned real clock is the bench stopwatch (allowlisted).
const WALL_CLOCK: [&str; 4] = ["Instant", "SystemTime", "UNIX_EPOCH", "SystemTimeError"];

/// Entropy-seeded randomness — banned everywhere, no allowlist. The
/// workspace's only generator is seeded explicitly.
const ENTROPY: [&str; 4] = ["thread_rng", "from_entropy", "OsRng", "getrandom"];

/// Iteration-order hazards: results must not depend on hash order.
const HASH_ORDER: [&str; 2] = ["HashMap", "HashSet"];

/// RNG constructors — allowed only in seed-plumbing files, so every
/// random stream is traceable to a top-level seed.
const RNG_CONSTRUCT: [&str; 2] = ["seed_from_u64", "from_seed"];

/// Thread primitives — scheduling order is nondeterministic, so thread
/// use is confined to the schedulers whose merge discipline makes a
/// determinism argument ([`THREAD_HOMES`]). No allowlist: new thread
/// use goes through one of those pools or not at all.
const THREADING: [&str; 3] = ["std::thread", "thread::spawn", "thread::scope"];

/// The only sanctioned homes of `std::thread`: the bench shard
/// scheduler (merges results in submission order) and the lint's own
/// scan pool (merges per-file results in path order).
const THREAD_HOMES: [&str; 2] = ["crates/bench/src/shard.rs", "crates/devtools/src/pool.rs"];

/// L3: scan non-test code for determinism hazards.
pub fn check_determinism(file: &SourceFile, lexed: &Lexed, allow: &Allow) -> Vec<Violation> {
    let mut v = Vec::new();
    let clock_ok = allow.allows_wall_clock(file.path);
    let rng_ok = allow.allows_rng_construction(file.path);
    for (n, line) in lexed.live_lines() {
        for tok in ENTROPY {
            if has_token(line, tok) {
                v.push(Violation::at(
                    Rule::Determinism,
                    file.path,
                    n,
                    format!("entropy source `{tok}` — all randomness must be seeded"),
                ));
            }
        }
        if !clock_ok {
            for tok in WALL_CLOCK {
                if has_token(line, tok) {
                    v.push(Violation::at(
                        Rule::Determinism,
                        file.path,
                        n,
                        format!("wall clock `{tok}` — use simulated time or the bench stopwatch"),
                    ));
                }
            }
        }
        for tok in HASH_ORDER {
            if has_token(line, tok) {
                v.push(Violation::at(
                    Rule::Determinism,
                    file.path,
                    n,
                    format!("`{tok}` iteration order is nondeterministic — use the BTree variant"),
                ));
            }
        }
        if !THREAD_HOMES.contains(&file.path) {
            for tok in THREADING {
                if has_token(line, tok) {
                    v.push(Violation::at(
                        Rule::Determinism,
                        file.path,
                        n,
                        format!(
                            "thread primitive `{tok}` outside the sanctioned pools \
                             ({}) — submit a shard job instead",
                            THREAD_HOMES.join(", ")
                        ),
                    ));
                    break; // `std::thread::spawn` matches two tokens; report once
                }
            }
        }
        if !rng_ok {
            for tok in RNG_CONSTRUCT {
                if has_token(line, tok) {
                    v.push(Violation::at(
                        Rule::Determinism,
                        file.path,
                        n,
                        format!(
                            "RNG construction `{tok}` outside the seed-plumbing allowlist — \
                             take a `&mut SimRng` instead"
                        ),
                    ));
                }
            }
        }
    }
    v
}

/// Panic-site tokens for L4. `.expect(` keeps the dot so field or
/// method names like `expected` never match.
const PANIC_SITES: [&str; 4] = [".unwrap()", ".expect(", "panic!", "unreachable!"];

/// Count panic sites in non-test code.
pub fn count_panic_sites(lexed: &Lexed) -> usize {
    panic_site_lines(lexed).len()
}

/// 1-based lines of every panic site in non-test code, one entry per
/// site (a line with two `.unwrap()`s appears twice) — the raw input
/// of the L7 provenance pass.
pub fn panic_site_lines(lexed: &Lexed) -> Vec<usize> {
    let mut out = Vec::new();
    for (n, line) in lexed.live_lines() {
        let count: usize = PANIC_SITES.iter().map(|tok| line.match_indices(tok).count()).sum();
        out.extend(std::iter::repeat_n(n, count));
    }
    out
}

/// L4: the count must not exceed the file's baseline ceiling; files with
/// no entry get a ceiling of zero. Returns `(violations, count)`.
pub fn check_panic_budget(
    file: &SourceFile,
    lexed: &Lexed,
    allow: &Allow,
) -> (Vec<Violation>, usize) {
    let count = count_panic_sites(lexed);
    let ceiling = allow.panic_ceiling(file.path);
    if count > ceiling {
        let msg = if ceiling == 0 {
            format!(
                "{count} panic site(s) in non-test code and no baseline entry — \
                 return an error instead, or justify a lint-allow.toml entry in review"
            )
        } else {
            format!("{count} panic site(s) exceeds the shrink-only baseline of {ceiling}")
        };
        (vec![Violation::file(Rule::PanicBudget, file.path, msg)], count)
    } else {
        (Vec::new(), count)
    }
}

/// Console-print macros for L6. Library code must route diagnostics
/// through `lucent-obs`; stdout/stderr belong to the sanctioned sinks.
const PRINT_MACROS: [&str; 4] = ["println!", "eprintln!", "print!", "eprint!"];

/// Files allowed to print: the bench stopwatch's progress reporting, the
/// `repro` CLI (the workspace's one user-facing binary), the lint CLI
/// itself, and the lucent-check campaign reporter plus its `fuzz-smoke`
/// binary (a fuzz transcript is user-facing output, not diagnostics).
const PRINT_SINKS: [&str; 6] = [
    "crates/support/src/bench.rs",
    "crates/bench/src/bin/repro.rs",
    "crates/bench/src/bin/lucent-bench.rs",
    "crates/devtools/src/bin/lucent-lint.rs",
    "crates/check/src/report.rs",
    "crates/check/src/bin/fuzz-smoke.rs",
];

/// L6: no console prints in non-test library code outside the sanctioned
/// sinks.
pub fn check_print_hygiene(file: &SourceFile, lexed: &Lexed) -> Vec<Violation> {
    if PRINT_SINKS.contains(&file.path) {
        return Vec::new();
    }
    let mut v = Vec::new();
    for (n, line) in lexed.live_lines() {
        for tok in PRINT_MACROS {
            if has_token(line, tok) {
                v.push(Violation::at(
                    Rule::PrintHygiene,
                    file.path,
                    n,
                    format!("console print `{tok}` outside a sanctioned sink — emit a \
                             lucent-obs event or return the string to the caller"),
                ));
            }
        }
    }
    v
}

/// L5: every `unsafe` token in non-test code needs a `// SAFETY:`
/// comment on the same line or within the three raw lines above it.
pub fn check_unsafe(file: &SourceFile, lexed: &Lexed) -> Vec<Violation> {
    let raw_lines: Vec<&str> = file.text.lines().collect();
    let mut v = Vec::new();
    for (n, line) in lexed.live_lines() {
        if !has_token(line, "unsafe") {
            continue;
        }
        let justified = (n.saturating_sub(4)..n)
            .filter_map(|i| raw_lines.get(i))
            .any(|l| l.contains("// SAFETY:"))
            || raw_lines.get(n - 1).is_some_and(|l| l.contains("// SAFETY:"));
        if !justified {
            v.push(Violation::at(
                Rule::UnsafeHygiene,
                file.path,
                n,
                "`unsafe` without a `// SAFETY:` justification".to_string(),
            ));
        }
    }
    v
}

/// Interior-mutability wrappers that make a `static` shared mutable
/// state. Shard workers are replayed deterministically only if their
/// inputs are explicit, so these live exclusively in `[shared_state]`
/// allowlisted files.
const SHARED_STATE: [&str; 21] = [
    "Mutex",
    "RwLock",
    "RefCell",
    "Cell",
    "UnsafeCell",
    "OnceCell",
    "OnceLock",
    "LazyLock",
    "Once",
    "AtomicBool",
    "AtomicU8",
    "AtomicU16",
    "AtomicU32",
    "AtomicU64",
    "AtomicUsize",
    "AtomicI8",
    "AtomicI16",
    "AtomicI32",
    "AtomicI64",
    "AtomicIsize",
    "AtomicPtr",
];

/// Find a `static` *keyword* on the line — rejecting the `'static`
/// lifetime and identifier substrings — and report whether it declares
/// a `static mut`.
fn static_decl(line: &str) -> Option<bool> {
    let b = line.as_bytes();
    let mut from = 0;
    while let Some(pos) = line[from..].find("static") {
        let i = from + pos;
        let j = i + "static".len();
        from = j;
        let prev_ok = i == 0 || {
            let c = b[i - 1];
            c != b'\'' && !(c as char).is_alphanumeric() && c != b'_'
        };
        let next_ok = j >= b.len() || !((b[j] as char).is_alphanumeric() || b[j] == b'_');
        if prev_ok && next_ok {
            let rest = line[j..].trim_start();
            let is_mut = rest.starts_with("mut")
                && rest[3..].chars().next().is_none_or(|c| !c.is_alphanumeric() && c != '_');
            return Some(is_mut);
        }
    }
    None
}

/// L8: shard isolation. `static mut` is forbidden everywhere;
/// interior-mutability statics and `thread_local!` state are confined
/// to `[shared_state]` allowlisted files.
pub fn check_shared_state(file: &SourceFile, lexed: &Lexed, allow: &Allow) -> Vec<Violation> {
    let mut v = Vec::new();
    let allowed = allow.allows_shared_state(file.path);
    for (n, line) in lexed.live_lines() {
        let decl = static_decl(line);
        if decl == Some(true) {
            v.push(Violation::at(
                Rule::SharedState,
                file.path,
                n,
                "`static mut` is forbidden everywhere — shard workers must not share \
                 mutable state; pass it explicitly or use a [shared_state] allowlisted \
                 interior-mutability static"
                    .to_string(),
            ));
            continue;
        }
        if allowed {
            continue;
        }
        let tls = has_token(line, "thread_local");
        if decl == Some(false) || tls {
            if let Some(tok) = SHARED_STATE.iter().find(|t| has_token(line, t)) {
                v.push(Violation::at(
                    Rule::SharedState,
                    file.path,
                    n,
                    format!(
                        "interior-mutability static `{tok}` outside the [shared_state] \
                         allowlist — shared mutable state breaks shard replay"
                    ),
                ));
            } else if tls {
                v.push(Violation::at(
                    Rule::SharedState,
                    file.path,
                    n,
                    "`thread_local!` state outside the [shared_state] allowlist — \
                     per-thread state breaks shard replay"
                        .to_string(),
                ));
            }
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_l3(path: &str, text: &str, allow: &Allow) -> Vec<Violation> {
        let lexed = Lexed::new(text);
        check_determinism(&SourceFile { path, text }, &lexed, allow)
    }

    #[test]
    fn wall_clocks_are_flagged() {
        let v = run_l3("crates/x/src/a.rs", "let t = std::time::Instant::now();\n", &Allow::default());
        assert_eq!(v.len(), 1);
        assert!(v[0].msg.contains("wall clock"), "{}", v[0].msg);
        assert_eq!(v[0].line, 1);
    }

    #[test]
    fn allowlisted_bench_file_may_read_the_clock() {
        let mut allow = Allow::default();
        allow.wall_clock.push("crates/support/src/bench.rs".into());
        let v = run_l3("crates/support/src/bench.rs", "let t = Instant::now();\n", &allow);
        assert!(v.is_empty());
    }

    #[test]
    fn entropy_sources_are_flagged_even_in_allowlisted_files() {
        let mut allow = Allow::default();
        allow.wall_clock.push("crates/support/src/bench.rs".into());
        let v = run_l3("crates/support/src/bench.rs", "let r = rand::thread_rng();\n", &allow);
        assert_eq!(v.len(), 1);
        assert!(v[0].msg.contains("entropy"), "{}", v[0].msg);
    }

    #[test]
    fn hash_collections_are_flagged_outside_tests_only() {
        let src = "use std::collections::HashMap;\n#[cfg(test)]\nmod tests {\n    use std::collections::HashSet;\n}\n";
        let v = run_l3("crates/x/src/a.rs", src, &Allow::default());
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 1);
    }

    #[test]
    fn banned_names_in_strings_and_comments_do_not_trip() {
        let src = "// HashMap would be wrong here\nlet s = \"Instant::now\";\n";
        assert!(run_l3("crates/x/src/a.rs", src, &Allow::default()).is_empty());
    }

    #[test]
    fn thread_primitives_are_confined_to_the_shard_scheduler() {
        let src = "std::thread::spawn(|| {});\n";
        let v = run_l3("crates/x/src/a.rs", src, &Allow::default());
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].msg.contains("sanctioned pools"), "{}", v[0].msg);
        // The schedulers themselves are exempt — no allowlist entry needed.
        for home in super::THREAD_HOMES {
            assert!(run_l3(home, src, &Allow::default()).is_empty(), "{home}");
        }
        // `use std::thread;` + bare `thread::scope` is still caught.
        let aliased = "use std::thread;\nfn f() { thread::scope(|_| {}); }\n";
        assert_eq!(run_l3("crates/x/src/b.rs", aliased, &Allow::default()).len(), 2);
        // Mentions in comments and strings stay clean.
        let doc = "// std::thread is banned here\nlet s = \"thread::spawn\";\n";
        assert!(run_l3("crates/x/src/c.rs", doc, &Allow::default()).is_empty());
    }

    #[test]
    fn rng_construction_outside_allowlist_is_flagged() {
        let src = "let rng = SimRng::seed_from_u64(7);\n";
        let v = run_l3("crates/x/src/a.rs", src, &Allow::default());
        assert_eq!(v.len(), 1);
        assert!(v[0].msg.contains("seed-plumbing"), "{}", v[0].msg);
        let mut allow = Allow::default();
        allow.rng_construction.push("crates/x/src/a.rs".into());
        assert!(run_l3("crates/x/src/a.rs", src, &allow).is_empty());
    }

    #[test]
    fn panic_sites_are_counted_in_live_code_only() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }\nfn g() { panic!(\"boom\") }\n#[cfg(test)]\nmod tests {\n    fn t() { None::<u8>.unwrap(); }\n}\n";
        assert_eq!(count_panic_sites(&Lexed::new(src)), 2);
    }

    #[test]
    fn panic_budget_enforces_the_ceiling() {
        let text = "fn f() { x.unwrap() }\n";
        let file = SourceFile { path: "crates/x/src/a.rs", text };
        let lexed = Lexed::new(text);
        let (v, n) = check_panic_budget(&file, &lexed, &Allow::default());
        assert_eq!((v.len(), n), (1, 1));
        let mut allow = Allow::default();
        allow.panic_sites.insert("crates/x/src/a.rs".into(), 1);
        let (v, _) = check_panic_budget(&file, &lexed, &allow);
        assert!(v.is_empty());
    }

    #[test]
    fn expected_identifiers_do_not_count_as_expect() {
        let src = "let expected = 3; assert_eq!(expected, got);\n";
        assert_eq!(count_panic_sites(&Lexed::new(src)), 0);
    }

    #[test]
    fn prints_in_library_code_are_flagged() {
        let text = "fn f() { println!(\"dbg\"); eprintln!(\"warn\"); }\n";
        let lexed = Lexed::new(text);
        let v = check_print_hygiene(&SourceFile { path: "crates/x/src/a.rs", text }, &lexed);
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v[0].msg.contains("sanctioned sink"), "{}", v[0].msg);
        assert_eq!(v[0].rule.code(), "L6-print");
    }

    #[test]
    fn sanctioned_sinks_may_print() {
        let text = "fn report() { println!(\"{}\", 1); }\n";
        let lexed = Lexed::new(text);
        for path in super::PRINT_SINKS {
            assert!(check_print_hygiene(&SourceFile { path, text }, &lexed).is_empty());
        }
    }

    #[test]
    fn the_ratchet_binary_is_a_sanctioned_sink() {
        // `lucent-bench` reports pass/fail verdicts to CI on stdout by
        // design; the ratchet *library* modules it fronts must not.
        let text = "fn verdict() { println!(\"FAIL {}\", f); eprintln!(\"usage\"); }\n";
        let lexed = Lexed::new(text);
        let sink = SourceFile { path: "crates/bench/src/bin/lucent-bench.rs", text };
        assert!(check_print_hygiene(&sink, &lexed).is_empty());
        for path in ["crates/bench/src/ratchet.rs", "crates/bench/src/benchfile.rs"] {
            let v = check_print_hygiene(&SourceFile { path, text }, &lexed);
            assert_eq!(v.len(), 2, "ratchet library files stay under L6: {v:?}");
        }
    }

    #[test]
    fn the_check_reporter_is_a_sanctioned_sink() {
        // The lucent-check campaign reporter and its fuzz-smoke binary
        // print transcripts by design; any other check file must not.
        let text = "fn emit() { print!(\"{}\", t); eprintln!(\"usage\"); }\n";
        let lexed = Lexed::new(text);
        for path in ["crates/check/src/report.rs", "crates/check/src/bin/fuzz-smoke.rs"] {
            assert!(check_print_hygiene(&SourceFile { path, text }, &lexed).is_empty(), "{path}");
        }
        let v = check_print_hygiene(&SourceFile { path: "crates/check/src/runner.rs", text }, &lexed);
        assert_eq!(v.len(), 2, "non-sink check files stay under L6: {v:?}");
    }

    #[test]
    fn prints_in_test_code_and_strings_do_not_trip_l6() {
        let text = "// println! is banned here\nlet s = \"println!\";\n#[cfg(test)]\nmod tests {\n    fn t() { println!(\"ok in tests\"); }\n}\n";
        let lexed = Lexed::new(text);
        assert!(check_print_hygiene(&SourceFile { path: "crates/x/src/a.rs", text }, &lexed).is_empty());
    }

    #[test]
    fn eprintln_does_not_shadow_println_token() {
        // `eprintln!` must not double-count as `println!` (identifier
        // boundary check in the lexer).
        let text = "fn f() { eprintln!(\"x\"); }\n";
        let lexed = Lexed::new(text);
        let v = check_print_hygiene(&SourceFile { path: "crates/x/src/a.rs", text }, &lexed);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].msg.contains("eprintln!"), "{}", v[0].msg);
    }

    #[test]
    fn unjustified_unsafe_is_flagged() {
        let text = "fn f() { unsafe { core::hint::unreachable_unchecked() } }\n";
        let lexed = Lexed::new(text);
        let v = check_unsafe(&SourceFile { path: "crates/x/src/a.rs", text }, &lexed);
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn safety_comment_satisfies_l5() {
        let text = "// SAFETY: guarded by the bounds check above.\nfn f() { unsafe { g() } }\n";
        let lexed = Lexed::new(text);
        let v = check_unsafe(&SourceFile { path: "crates/x/src/a.rs", text }, &lexed);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn forbid_unsafe_code_attribute_does_not_trip_l5() {
        let text = "#![forbid(unsafe_code)]\nfn f() {}\n";
        let lexed = Lexed::new(text);
        assert!(check_unsafe(&SourceFile { path: "crates/x/src/a.rs", text }, &lexed).is_empty());
    }

    fn run_l8(path: &str, text: &str, allow: &Allow) -> Vec<Violation> {
        let lexed = Lexed::new(text);
        check_shared_state(&SourceFile { path, text }, &lexed, allow)
    }

    #[test]
    fn static_mut_is_forbidden_even_in_allowlisted_files() {
        let src = "pub static mut HITS: u32 = 0;\n";
        let v = run_l8("crates/x/src/a.rs", src, &Allow::default());
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].msg.contains("static mut"), "{}", v[0].msg);
        let mut allow = Allow::default();
        allow.shared_state.push("crates/x/src/a.rs".into());
        assert_eq!(run_l8("crates/x/src/a.rs", src, &allow).len(), 1, "no allowlist escape");
    }

    #[test]
    fn interior_mutability_statics_need_the_allowlist() {
        let src = "static REGISTRY: Mutex<Vec<u32>> = Mutex::new(Vec::new());\n";
        let v = run_l8("crates/x/src/a.rs", src, &Allow::default());
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].msg.contains("Mutex"), "{}", v[0].msg);
        let mut allow = Allow::default();
        allow.shared_state.push("crates/x/src/a.rs".into());
        assert!(run_l8("crates/x/src/a.rs", src, &allow).is_empty());
    }

    #[test]
    fn thread_local_state_needs_the_allowlist() {
        let src = "thread_local! {\n    static DEPTH: Cell<u32> = const { Cell::new(0) };\n}\n";
        let v = run_l8("crates/x/src/a.rs", src, &Allow::default());
        assert!(!v.is_empty(), "{v:?}");
        let mut allow = Allow::default();
        allow.shared_state.push("crates/x/src/a.rs".into());
        assert!(run_l8("crates/x/src/a.rs", src, &allow).is_empty());
    }

    #[test]
    fn immutable_statics_and_lifetimes_stay_clean() {
        let src = "static NAMES: [&str; 2] = [\"a\", \"b\"];\nfn f() -> &'static str { \"x\" }\nfn g<T: 'static>(t: T) {}\nlet staticky = 1;\n";
        assert!(run_l8("crates/x/src/a.rs", src, &Allow::default()).is_empty());
    }

    #[test]
    fn statics_in_test_code_are_exempt_from_l8() {
        let src = "#[cfg(test)]\nmod tests {\n    static HIT: AtomicBool = AtomicBool::new(false);\n}\n";
        assert!(run_l8("crates/x/src/a.rs", src, &Allow::default()).is_empty());
    }
}
