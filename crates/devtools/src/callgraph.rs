//! Approximate workspace call graph over the symbol index.
//!
//! Call sites are recognized lexically in scrubbed function bodies:
//! an identifier followed by `(` (optionally through a `::<…>`
//! turbofish), with the preceding tokens deciding whether the call is
//! qualified (`race::run_isp(`), a method (`.observe(`), or bare.
//! Resolution is name-based and deliberately *over-approximate*: a
//! qualifier narrows the candidate set when it matches a defining
//! file's stem or an in-file qualifier segment, otherwise every
//! same-named function is a candidate. For the L7 panic-provenance
//! ratchet an over-approximation is the safe direction — reachability
//! can only shrink by hardening code, never by confusing the resolver.

use crate::parse::next_token;
use crate::symbols::Index;

/// One lexical call site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallSite {
    pub name: String,
    /// `Some("race")` for `race::run_isp(…)`; `None` for bare calls.
    pub qualifier: Option<String>,
    /// Preceded by `.` — a method call.
    pub method: bool,
}

/// Control-flow keywords that look like calls (`if (…)`, `while (…)`)
/// plus item keywords whose following identifier is a definition, not
/// a call.
const NOT_CALLEES: [&str; 22] = [
    "if", "else", "while", "for", "loop", "match", "return", "break", "continue", "in", "as",
    "let", "fn", "pub", "use", "mod", "impl", "move", "ref", "mut", "where", "unsafe",
];

fn skip_ws(b: &[u8], mut j: usize) -> usize {
    while j < b.len() && (b[j] as char).is_whitespace() {
        j += 1;
    }
    j
}

/// Extract call sites from the scrubbed byte range `lo..hi` (a
/// function body). Total on arbitrary input.
pub fn calls_in(scrubbed: &str, lo: usize, hi: usize) -> Vec<CallSite> {
    let hi = hi.min(scrubbed.len());
    let b = &scrubbed.as_bytes()[..hi];
    let mut calls = Vec::new();
    // Last three token texts, most recent last.
    let mut prev: [String; 3] = [String::new(), String::new(), String::new()];
    let mut i = lo.min(hi);
    while let Some((s, e, ident)) = next_token(b, i) {
        let text = &scrubbed[s..e];
        i = e;
        if ident && !NOT_CALLEES.contains(&text) && prev[2] != "fn" && prev[2] != "struct" {
            let mut j = skip_ws(b, e);
            // `name::<T>(…)` — step through the turbofish.
            if j + 1 < hi && b[j] == b':' && b[j + 1] == b':' {
                let k = skip_ws(b, j + 2);
                if k < hi && b[k] == b'<' {
                    let mut depth = 1usize;
                    let mut m = k + 1;
                    while m < hi && depth > 0 {
                        match b[m] {
                            b'<' => depth += 1,
                            b'>' => depth -= 1,
                            b';' | b'{' => break,
                            _ => {}
                        }
                        m += 1;
                    }
                    j = skip_ws(b, m);
                } else {
                    j = hi; // path continues: `a::b` — `a` is not the callee
                }
            }
            if j < hi && b[j] == b'(' {
                let method = prev[2] == ".";
                let qualifier = if prev[2] == ":" && prev[1] == ":" && !prev[0].is_empty() {
                    Some(prev[0].clone())
                } else {
                    None
                };
                calls.push(CallSite { name: text.to_string(), qualifier, method });
            }
        }
        prev.rotate_left(1);
        prev[2] = text.to_string();
    }
    calls
}

/// Resolve one call site to candidate symbol indices.
fn resolve(index: &Index, site: &CallSite) -> Vec<usize> {
    let Some(cands) = index.by_name.get(&site.name) else {
        return Vec::new();
    };
    if let Some(q) = &site.qualifier {
        if !matches!(q.as_str(), "self" | "Self" | "crate" | "super") {
            let narrowed: Vec<usize> = cands
                .iter()
                .copied()
                .filter(|&i| {
                    let s = &index.syms[i];
                    s.stem == *q || s.qual.split("::").any(|seg| seg == q)
                })
                .collect();
            if !narrowed.is_empty() {
                return narrowed;
            }
        }
    }
    if site.method {
        let narrowed: Vec<usize> =
            cands.iter().copied().filter(|&i| !index.syms[i].qual.is_empty()).collect();
        if !narrowed.is_empty() {
            return narrowed;
        }
    }
    cands.clone()
}

/// Forward adjacency: `edges[caller]` is the sorted, deduplicated list
/// of callee symbol indices.
#[derive(Debug, Default)]
pub struct Graph {
    pub edges: Vec<Vec<usize>>,
    pub edge_count: usize,
}

impl Graph {
    /// Build from `(caller index, call site)` pairs.
    pub fn build<'a>(index: &Index, calls: impl Iterator<Item = (usize, &'a CallSite)>) -> Graph {
        let mut edges: Vec<Vec<usize>> = vec![Vec::new(); index.len()];
        for (caller, site) in calls {
            if caller >= edges.len() {
                continue;
            }
            for callee in resolve(index, site) {
                edges[caller].push(callee);
            }
        }
        let mut edge_count = 0;
        for adj in &mut edges {
            adj.sort_unstable();
            adj.dedup();
            edge_count += adj.len();
        }
        Graph { edges, edge_count }
    }

    /// All symbols reachable from `from` (inclusive).
    pub fn reachable(&self, from: usize) -> Vec<bool> {
        let mut seen = vec![false; self.edges.len()];
        if from >= seen.len() {
            return seen;
        }
        let mut stack = vec![from];
        seen[from] = true;
        while let Some(n) = stack.pop() {
            for &m in &self.edges[n] {
                if !seen[m] {
                    seen[m] = true;
                    stack.push(m);
                }
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::scrub;
    use crate::parse;
    use crate::symbols::Index;

    fn sites(src: &str) -> Vec<CallSite> {
        let scrubbed = scrub(src);
        calls_in(&scrubbed, 0, scrubbed.len())
    }

    #[test]
    fn bare_qualified_and_method_calls_are_classified() {
        let got = sites("helper(); race::run_isp(lab); lab.client_of(isp); parse::<u32>(s);");
        assert_eq!(
            got,
            vec![
                CallSite { name: "helper".into(), qualifier: None, method: false },
                CallSite { name: "run_isp".into(), qualifier: Some("race".into()), method: false },
                CallSite { name: "client_of".into(), qualifier: None, method: true },
                CallSite { name: "parse".into(), qualifier: None, method: false },
            ]
        );
    }

    #[test]
    fn keywords_macros_and_definitions_are_not_calls() {
        let got = sites("if (x) {} while (y) {} println!(\"x\"); fn not_a_call() {}");
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn graph_edges_resolve_through_qualifiers() {
        let a = parse::parse(&scrub("pub fn run_isp() { helper() }\nfn helper() {}\n"));
        let b = parse::parse(&scrub("pub fn drive() { race::run_isp() }\npub fn other() {}\n"));
        let index = Index::build(
            vec![
                ("crates/core/src/experiments/race.rs", a.fns.as_slice()),
                ("crates/bench/src/drive.rs", b.fns.as_slice()),
            ]
            .into_iter(),
        );
        let scrub_a = scrub("pub fn run_isp() { helper() }\nfn helper() {}\n");
        let scrub_b = scrub("pub fn drive() { race::run_isp() }\npub fn other() {}\n");
        let a_calls = calls_in(&scrub_a, 0, scrub_a.len());
        let b_calls = calls_in(&scrub_b, 0, scrub_b.len());
        let all: Vec<(usize, &CallSite)> = a_calls
            .iter()
            .map(|c| (0usize, c))
            .chain(b_calls.iter().map(|c| (2usize, c)))
            .collect();
        let g = Graph::build(&index, all.into_iter());
        assert_eq!(g.edges[0], vec![1], "run_isp -> helper");
        assert_eq!(g.edges[2], vec![0], "drive -> race::run_isp");
        let seen = g.reachable(2);
        assert!(seen[0] && seen[1] && seen[2] && !seen[3]);
        assert_eq!(g.edge_count, 2);
    }
}
