//! L11/L12 — symbolic analysis over the compiled censor-policy IR.
//!
//! Censor programs (`crates/*/policies/*.toml`) are code, and they rot
//! the way firewall rule sets rot: shadowed rules, contradictory
//! overlaps, escalation gates that can never arm, probability gates
//! that zero out an action. This module runs classic firewall-rule
//! analysis over the *compiled* [`Policy`] IR — not the TOML text — so
//! every conclusion is about what [`lucent_middlebox::policy::PolicyBox`]
//! will actually execute, not about how the file happens to be spelled.
//!
//! **L11 policy-anomaly** is predicate intersection over the match IR.
//! Two rules relate only when their matchers are identical (different
//! [`HostMatcher`]s extract different domains from the same payload, so
//! nothing is provable across them); host sets form a small lattice
//! (`Any` ⊇ everything, `Blocklist` ⊇ `Blocklist`, `Listed` compares by
//! subset; `Blocklist` and `Listed` are incomparable because the
//! blocklist is an instantiation parameter). On that lattice the
//! analyzer reports, per rule:
//!
//! - **dead rules** — fully shadowed by an earlier ungated rule with a
//!   covering host set (first-match-wins makes the later rule
//!   unreachable), or an empty literal host list;
//! - **conflicting overlaps** — a pass rule and a fire rule provably
//!   share hosts without one cleanly whitelisting the other, so the
//!   verdict depends on rule order, device state, or a coin;
//! - **unreachable `after` gates** — the gate references a pass rule
//!   (only firings set the `fired_mask`), a rule that can itself never
//!   fire, or (on hand-built IRs) an out-of-range index;
//! - **probability-mass errors** — gate weights outside `(0, 1]`, a
//!   `slow` tail that can never be drawn because there is no base
//!   delay, or an effective firing probability of zero because an
//!   always-firing (`probability = 1`) covering rule precedes it.
//!
//! **L12 policy-coverage** cross-checks the committed policy set
//! against the simulator's ground truth: every mechanism family the
//! topology can instantiate has a program, every telemetry label a
//! program can emit is one the metric assertions and taps know (the
//! table is pinned to the interpreter source by a unit test), and
//! every literal host resolves against a TLD the blocklist corpus can
//! generate. A committed policy that fails to compile is itself an L12
//! finding, pinned to the compiler's error line.
//!
//! The analyzer is **total**: any IR, including fuzzer-corrupted ones,
//! produces a deterministic report and never panics (enforced by the
//! `policy_anomaly_total` oracle in lucent-check and the workspace
//! panic-site lint).

use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::io;
use std::path::Path;

use lucent_middlebox::compile::compile_with_lines;
use lucent_middlebox::policy::{Action, Family, HostSet, Policy, Rule as PolicyRule};

use crate::allow::Allow;
use crate::report::{Rule, Violation};

/// One L11 finding against a single policy program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Anomaly {
    /// 1-based `[[rule]]` header line of the offending rule; 0 when the
    /// program was built by hand and carries no line table.
    pub line: usize,
    /// The finding. Messages are contract: the anomaly fixture corpus
    /// under `crates/middlebox/policies/fixtures/anomalies/` pins them
    /// byte-for-byte.
    pub msg: String,
}

/// Telemetry labels the interpreter can emit, per concern. Ground
/// truth for L12: the `known_labels_appear_in_the_interpreter` test
/// pins every entry verbatim to `crates/middlebox/src/policy.rs`, so
/// this table cannot rot away from the code it describes.
const KNOWN_TELEMETRY: [&str; 6] = [
    "wm.injections",
    "wm.race.slow",
    "wm.race.fast",
    "im.interceptions",
    "mb.flow.evictions",
    "mb.flow.size",
];

/// TLDs a literal host can resolve against: the blocklist corpus
/// generator's five TLDs (`crates/web/src/corpus.rs`) plus the RFC 2606
/// `.example` names the test rigs and diffmb scripts use.
const CORPUS_TLDS: [&str; 6] = ["com", "net", "org", "in", "info", "example"];

fn pinned_line(rule_lines: &[usize], i: usize) -> usize {
    rule_lines.get(i).copied().unwrap_or(0)
}

fn rule_fires(rule: &PolicyRule) -> bool {
    matches!(rule.action, Action::Fire(_))
}

/// No probability coin and no `after` predicate: the rule decides every
/// request its matcher + host set reach.
fn ungated(rule: &PolicyRule) -> bool {
    rule.probability.is_none() && rule.after.is_none()
}

/// `outer ⊇ inner` on the host-set lattice, provable across every
/// instantiation. `Blocklist` vs `Listed` is incomparable: the
/// blocklist is a per-device parameter the IR does not fix.
fn hostset_covers(outer: &HostSet, inner: &HostSet) -> bool {
    match (outer, inner) {
        (HostSet::Any, _) => true,
        (HostSet::Blocklist, HostSet::Blocklist) => true,
        (HostSet::Listed(o), HostSet::Listed(i)) => i.is_subset(o),
        _ => false,
    }
}

/// Provably non-empty intersection under the intended instantiation
/// (a device with an empty blocklist censors nothing and is not worth
/// analyzing, so `Blocklist` counts as inhabited).
fn hostset_meets(a: &HostSet, b: &HostSet) -> bool {
    match (a, b) {
        (HostSet::Any, other) | (other, HostSet::Any) => match other {
            HostSet::Listed(set) => !set.is_empty(),
            _ => true,
        },
        (HostSet::Blocklist, HostSet::Blocklist) => true,
        (HostSet::Listed(x), HostSet::Listed(y)) => x.intersection(y).next().is_some(),
        _ => false,
    }
}

fn listed_and_empty(hosts: &HostSet) -> bool {
    matches!(hosts, HostSet::Listed(set) if set.is_empty())
}

/// For each rule, the earliest earlier rule that fully shadows it under
/// first-match-wins: same matcher (same extraction on every payload),
/// ungated, covering host set. `None` means the rule can run.
fn shadowers(rules: &[PolicyRule]) -> Vec<Option<usize>> {
    let mut out = Vec::with_capacity(rules.len());
    for (i, rule) in rules.iter().enumerate() {
        let mut hit = None;
        for (e, earlier) in rules[..i].iter().enumerate() {
            if earlier.matcher == rule.matcher
                && ungated(earlier)
                && hostset_covers(&earlier.hosts, &rule.hosts)
            {
                hit = Some(e);
                break;
            }
        }
        out.push(hit);
    }
    out
}

/// Whether each rule can ever fire (set its `fired_mask` bit): it must
/// be a fire action, not shadowed dead, with an inhabitable host set,
/// and its `after` chain must bottom out in a rule that can fire. The
/// chain walk is hop-bounded so corrupted IRs with cycles or
/// out-of-range indices resolve to `false` instead of looping.
fn fire_liveness(rules: &[PolicyRule], shadow: &[Option<usize>]) -> Vec<bool> {
    let plausible = |i: usize| {
        rule_fires(&rules[i]) && shadow[i].is_none() && !listed_and_empty(&rules[i].hosts)
    };
    let mut live = Vec::with_capacity(rules.len());
    for i in 0..rules.len() {
        let mut cursor = i;
        let mut hops = 0;
        let alive = loop {
            if !plausible(cursor) {
                break false;
            }
            match rules[cursor].after {
                None => break true,
                Some(j) if j >= rules.len() => break false,
                Some(j) => {
                    cursor = j;
                    hops += 1;
                    if hops > rules.len() {
                        break false; // cyclic chain never arms
                    }
                }
            }
        };
        live.push(alive);
    }
    live
}

/// Probability-mass findings for rule `i`.
fn mass_findings(rules: &[PolicyRule], i: usize, line: usize) -> Vec<Anomaly> {
    let rule = &rules[i];
    let mut out = Vec::default();
    if let Some(p) = rule.probability {
        if !(p.is_finite() && p > 0.0 && p <= 1.0) {
            out.push(Anomaly {
                line,
                msg: "probability mass error: `probability` is outside (0, 1]".to_string(),
            });
        }
    }
    if let Action::Fire(act) = &rule.action {
        if let Some((p, _)) = act.delay.slow {
            if !(p.is_finite() && p > 0.0 && p <= 1.0) {
                out.push(Anomaly {
                    line,
                    msg: "probability mass error: `slow` probability is outside (0, 1]"
                        .to_string(),
                });
            }
            if act.delay.base.is_none() {
                out.push(Anomaly {
                    line,
                    msg: "probability mass error: `slow` tail can never be drawn without a \
                          base delay"
                        .to_string(),
                });
            }
        }
    }
    // Effective probability 0: an earlier `probability = 1` rule with a
    // covering host set always ends the scan first. Not a dead rule in
    // the L11 sense (the earlier rule is gated, so the shadow pass
    // ignores it) — but the gate never actually gates.
    for (e, earlier) in rules[..i].iter().enumerate() {
        if earlier.matcher == rule.matcher
            && earlier.after.is_none()
            && earlier.probability == Some(1.0)
            && hostset_covers(&earlier.hosts, &rule.hosts)
        {
            out.push(Anomaly {
                line,
                msg: format!(
                    "probability mass error: effective firing probability is 0 — rule #{} \
                     fires first with probability 1",
                    e + 1
                ),
            });
            break;
        }
    }
    out
}

/// Run the L11 anomaly passes over one compiled policy. Total and
/// deterministic on any IR, including hand-built and corrupted ones;
/// `rule_lines` may be shorter than the rule list (missing entries pin
/// to line 0).
pub fn probe_policy(policy: &Policy, rule_lines: &[usize]) -> Vec<Anomaly> {
    let rules = &policy.rules;
    let shadow = shadowers(rules);
    let live = fire_liveness(rules, &shadow);
    let mut out = Vec::default();
    for (i, rule) in rules.iter().enumerate() {
        let line = pinned_line(rule_lines, i);
        if listed_and_empty(&rule.hosts) {
            out.push(Anomaly { line, msg: "dead rule: empty host list".to_string() });
        }
        if let Some(e) = shadow[i] {
            out.push(Anomaly {
                line,
                msg: format!("dead rule: fully shadowed by rule #{}", e + 1),
            });
        }
        for (e, earlier) in rules[..i].iter().enumerate() {
            if earlier.matcher == rule.matcher
                && rule_fires(earlier) != rule_fires(rule)
                && hostset_meets(&earlier.hosts, &rule.hosts)
                && !(ungated(earlier) && hostset_covers(&earlier.hosts, &rule.hosts))
            {
                out.push(Anomaly {
                    line,
                    msg: format!(
                        "conflicting overlap with rule #{}: common hosts, opposite actions \
                         (pass vs fire)",
                        e + 1
                    ),
                });
                break;
            }
        }
        if let Some(j) = rule.after {
            if j >= rules.len() {
                out.push(Anomaly {
                    line,
                    msg: "unreachable `after` gate: target rule index is out of range"
                        .to_string(),
                });
            } else if !rule_fires(&rules[j]) {
                out.push(Anomaly {
                    line,
                    msg: format!(
                        "unreachable `after` gate: rule #{} is a pass rule and never fires",
                        j + 1
                    ),
                });
            } else if !live[j] {
                out.push(Anomaly {
                    line,
                    msg: format!("unreachable `after` gate: rule #{} can never fire", j + 1),
                });
            }
        }
        out.extend(mass_findings(rules, i, line));
    }
    out
}

/// Telemetry labels a compiled program can cause the interpreter to
/// emit, derived from its family and actions.
fn emitted_labels(policy: &Policy) -> Vec<&'static str> {
    let mut out = Vec::default();
    out.push("mb.flow.evictions");
    out.push("mb.flow.size");
    match policy.family {
        Family::Wiretap => {
            out.push("wm.injections");
            out.push("wm.race.fast");
            let has_slow_tail = policy.rules.iter().any(|r| match &r.action {
                Action::Fire(act) => act.delay.slow.is_some(),
                Action::Pass => false,
            });
            if has_slow_tail {
                out.push("wm.race.slow");
            }
        }
        Family::Interceptive => out.push("im.interceptions"),
    }
    out
}

/// L12 per-policy findings: unknown telemetry labels and literal hosts
/// that cannot resolve against the blocklist corpus.
pub fn coverage_findings(policy: &Policy, rule_lines: &[usize]) -> Vec<Anomaly> {
    let mut out = Vec::default();
    for label in emitted_labels(policy) {
        if !KNOWN_TELEMETRY.contains(&label) {
            out.push(Anomaly {
                line: 0,
                msg: format!("policy emits telemetry label `{label}` unknown to the simulator"),
            });
        }
    }
    for (i, rule) in policy.rules.iter().enumerate() {
        let HostSet::Listed(hosts) = &rule.hosts else { continue };
        let line = pinned_line(rule_lines, i);
        for host in hosts {
            if !well_formed_host(host) {
                out.push(Anomaly {
                    line,
                    msg: format!("dangling host-set entry `{host}`: not a well-formed domain \
                                  name"),
                });
                continue;
            }
            let tld = host.rsplit('.').next().unwrap_or("");
            if !CORPUS_TLDS.contains(&tld) {
                out.push(Anomaly {
                    line,
                    msg: format!(
                        "dangling host-set entry `{host}`: TLD `{tld}` cannot resolve against \
                         the blocklist corpus"
                    ),
                });
            }
        }
    }
    out
}

/// A lowercase dotted DNS name made of alnum-plus-hyphen labels — the
/// shape the corpus generator emits and the compiler's lowercasing
/// produces.
fn well_formed_host(host: &str) -> bool {
    host.contains('.')
        && host.split('.').all(|label| {
            !label.is_empty()
                && label
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-')
        })
}

/// Outcome of the policy phase of a gate run.
#[derive(Debug, Default)]
pub struct PolicyCheckOut {
    /// L11 violations (over-ceiling anomalies) and L12 violations
    /// (coverage breaks, always fatal).
    pub violations: Vec<Violation>,
    /// Shrinkable-ceiling notes.
    pub warnings: Vec<String>,
    /// Policy file → L11 anomaly count (files with zero findings are
    /// omitted) — the census `[policy_anomaly]` ratchets against.
    pub anomaly_counts: BTreeMap<String, usize>,
}

/// Run L11 + L12 over a workspace's committed policy files. `paths`
/// are root-relative and pre-sorted; the pass is single-threaded and
/// deterministic by construction, so `--threads` cannot perturb the
/// report bytes.
pub fn check_policy_files(
    root: &Path,
    paths: &[String],
    allow: &Allow,
) -> io::Result<PolicyCheckOut> {
    let mut out = PolicyCheckOut::default();
    let mut seen_families = BTreeSet::new();
    for rel in paths {
        let text = fs::read_to_string(root.join(rel))?;
        let (policy, rule_lines) = match compile_with_lines(&text) {
            Ok(compiled) => compiled,
            Err(e) => {
                out.violations.push(Violation::at(
                    Rule::PolicyCoverage,
                    rel,
                    e.line,
                    format!("policy does not compile: {}", e.msg),
                ));
                continue;
            }
        };
        seen_families.insert(match policy.family {
            Family::Wiretap => "wiretap",
            Family::Interceptive => "interceptive",
        });
        let anomalies = probe_policy(&policy, &rule_lines);
        let count = anomalies.len();
        let ceiling = allow.policy_anomaly_ceiling(rel);
        if count > 0 {
            out.anomaly_counts.insert(rel.clone(), count);
        }
        if count > ceiling {
            for a in &anomalies {
                out.violations.push(Violation::at(Rule::PolicyAnomaly, rel, a.line, a.msg.clone()));
            }
        } else if count < ceiling {
            out.warnings.push(format!(
                "{rel}: {count} policy anomaly(ies), baseline {ceiling} — shrink the entry"
            ));
        }
        for c in coverage_findings(&policy, &rule_lines) {
            out.violations.push(Violation::at(Rule::PolicyCoverage, rel, c.line, c.msg));
        }
    }
    // Family coverage: once any policy is committed, both mechanism
    // families the topology can instantiate need a program — otherwise
    // half the ISP profiles silently fall back to hardcoded defaults.
    if let Some(first) = paths.first() {
        for family in ["interceptive", "wiretap"] {
            if !seen_families.contains(family) {
                out.violations.push(Violation::file(
                    Rule::PolicyCoverage,
                    first,
                    format!(
                        "policy set has no {family}-family program — the topology \
                         instantiates both families"
                    ),
                ));
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lucent_middlebox::compile::{builtin, builtin_names};
    use lucent_middlebox::matcher::HostMatcher;
    use lucent_middlebox::policy::{DelaySpec, FireSpec, IpIdSpec};

    fn fire_rule(hosts: HostSet) -> PolicyRule {
        PolicyRule {
            name: None,
            matcher: HostMatcher::ExactToken,
            hosts,
            after: None,
            probability: None,
            action: Action::Fire(FireSpec {
                notice: None,
                rst: true,
                reset_server: false,
                drop_flow: false,
                ip_id: IpIdSpec::SeqHash,
                delay: DelaySpec { base: Some((300, 900)), slow: None },
            }),
        }
    }

    fn wiretap_of_rules(rules: Vec<PolicyRule>) -> Policy {
        Policy {
            name: "t".to_string(),
            family: Family::Wiretap,
            ports: None,
            flow_timeout: lucent_netsim::SimDuration::from_secs(150),
            rules,
        }
    }

    fn listed(hosts: &[&str]) -> HostSet {
        HostSet::Listed(hosts.iter().map(|h| h.to_string()).collect())
    }

    #[test]
    fn committed_isp_policies_have_zero_findings() {
        for name in builtin_names() {
            let policy = builtin(name).unwrap();
            assert_eq!(probe_policy(&policy, &[]), vec![], "{name}: L11");
            assert_eq!(coverage_findings(&policy, &[]), vec![], "{name}: L12");
        }
    }

    #[test]
    fn anomaly_fixture_corpus_is_pinned() {
        // Each fixture under policies/fixtures/anomalies/ compiles
        // cleanly and yields exactly one finding, pinned on its first
        // line as `# expect: <rule line>: <message>`.
        let corpus: [(&str, &str); 5] = [
            (
                "dead-rule",
                include_str!("../../middlebox/policies/fixtures/anomalies/dead-rule.toml"),
            ),
            (
                "conflicting-overlap",
                include_str!(
                    "../../middlebox/policies/fixtures/anomalies/conflicting-overlap.toml"
                ),
            ),
            (
                "unreachable-gate",
                include_str!(
                    "../../middlebox/policies/fixtures/anomalies/unreachable-gate.toml"
                ),
            ),
            (
                "bad-probability",
                include_str!(
                    "../../middlebox/policies/fixtures/anomalies/bad-probability.toml"
                ),
            ),
            (
                "dangling-hostset",
                include_str!(
                    "../../middlebox/policies/fixtures/anomalies/dangling-hostset.toml"
                ),
            ),
        ];
        for (name, text) in corpus {
            let first = text.lines().next().unwrap_or("");
            let expect = first
                .strip_prefix("# expect: ")
                .unwrap_or_else(|| panic!("{name}: fixture lacks `# expect:` header"));
            let (line_s, msg) = expect.split_once(": ").expect("expect header shape");
            let want_line: usize = line_s.parse().expect("expect line number");
            let (policy, lines) = compile_with_lines(text)
                .unwrap_or_else(|e| panic!("{name}: fixture must compile, got {e}"));
            let mut findings = probe_policy(&policy, &lines);
            findings.extend(coverage_findings(&policy, &lines));
            assert_eq!(findings.len(), 1, "{name}: exactly one finding, got {findings:?}");
            assert_eq!(findings[0].line, want_line, "{name}");
            assert_eq!(findings[0].msg, msg, "{name}");
        }
    }

    #[test]
    fn known_labels_appear_in_the_interpreter() {
        // Anti-rot: the L12 ground-truth table must track the code. If
        // the interpreter renames a counter, this fails before any
        // metric assertion silently stops seeing data.
        let interpreter = include_str!("../../middlebox/src/policy.rs");
        for label in KNOWN_TELEMETRY {
            let quoted = format!("\"{label}\"");
            assert!(
                interpreter.contains(&quoted),
                "label {label} is not emitted by crates/middlebox/src/policy.rs"
            );
        }
    }

    #[test]
    fn blocklist_shadow_is_a_dead_rule() {
        let policy =
            wiretap_of_rules(vec![fire_rule(HostSet::Blocklist), fire_rule(HostSet::Blocklist)]);
        let findings = probe_policy(&policy, &[3, 9]);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].line, 9);
        assert_eq!(findings[0].msg, "dead rule: fully shadowed by rule #1");
    }

    #[test]
    fn blocklist_does_not_cover_listed_sets() {
        let policy = wiretap_of_rules(vec![
            fire_rule(HostSet::Blocklist),
            fire_rule(listed(&["blocked-0.example"])),
        ]);
        assert_eq!(probe_policy(&policy, &[]), vec![]);
    }

    #[test]
    fn gated_shadowers_do_not_kill_rules() {
        let mut first = fire_rule(HostSet::Blocklist);
        first.probability = Some(0.5);
        let policy = wiretap_of_rules(vec![first, fire_rule(HostSet::Blocklist)]);
        assert_eq!(probe_policy(&policy, &[]), vec![]);
    }

    #[test]
    fn pass_fire_partial_overlap_conflicts() {
        let mut pass = fire_rule(listed(&["a.example", "b.example"]));
        pass.action = Action::Pass;
        let policy = wiretap_of_rules(vec![pass, fire_rule(listed(&["b.example", "c.example"]))]);
        let findings = probe_policy(&policy, &[4, 11]);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].line, 11);
        assert_eq!(
            findings[0].msg,
            "conflicting overlap with rule #1: common hosts, opposite actions (pass vs fire)"
        );
    }

    #[test]
    fn clean_whitelist_idiom_is_not_flagged() {
        // The committed idiom: pass a literal set, then fire on the
        // blocklist. Listed vs Blocklist is incomparable, so no overlap
        // is provable and nothing is reported.
        let mut pass = fire_rule(listed(&["ok.example"]));
        pass.action = Action::Pass;
        let policy = wiretap_of_rules(vec![pass, fire_rule(HostSet::Blocklist)]);
        assert_eq!(probe_policy(&policy, &[]), vec![]);
    }

    #[test]
    fn after_gate_on_a_pass_rule_is_unreachable() {
        // Listed vs Blocklist hosts are incomparable, so the only
        // finding is the gate on a rule that can never fire.
        let mut pass = fire_rule(listed(&["ok.example"]));
        pass.action = Action::Pass;
        let mut gated = fire_rule(HostSet::Blocklist);
        gated.after = Some(0);
        let policy = wiretap_of_rules(vec![pass, gated]);
        let findings = probe_policy(&policy, &[2, 7]);
        assert_eq!(findings.len(), 1);
        assert_eq!(
            findings[0].msg,
            "unreachable `after` gate: rule #1 is a pass rule and never fires"
        );
    }

    #[test]
    fn after_gate_on_a_dead_rule_is_unreachable() {
        let mut gated = fire_rule(HostSet::Any);
        gated.after = Some(1);
        let policy = wiretap_of_rules(vec![
            fire_rule(HostSet::Blocklist),
            fire_rule(HostSet::Blocklist), // dead: shadowed by rule 1
            gated,
        ]);
        let findings = probe_policy(&policy, &[1, 2, 3]);
        assert_eq!(findings.len(), 2, "{findings:?}");
        assert_eq!(findings[0].msg, "dead rule: fully shadowed by rule #1");
        assert_eq!(findings[1].msg, "unreachable `after` gate: rule #2 can never fire");
    }

    #[test]
    fn corrupted_irs_are_probed_without_panicking() {
        // Out-of-range gate index.
        let mut wild = fire_rule(HostSet::Blocklist);
        wild.after = Some(99);
        let policy = wiretap_of_rules(vec![wild]);
        let findings = probe_policy(&policy, &[]);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].msg, "unreachable `after` gate: target rule index is out of range");
        // Cyclic gate chain (the compiler rejects these; hand-built IRs
        // can still carry them).
        let mut a = fire_rule(HostSet::Blocklist);
        a.after = Some(1);
        let mut b = fire_rule(HostSet::Blocklist);
        b.after = Some(0);
        let cyclic = wiretap_of_rules(vec![a, b]);
        for f in probe_policy(&cyclic, &[]) {
            assert!(f.msg.contains("can never fire"), "{}", f.msg);
        }
        // Non-finite probability.
        let mut nan = fire_rule(HostSet::Blocklist);
        nan.probability = Some(f64::NAN);
        let policy = wiretap_of_rules(vec![nan]);
        let findings = probe_policy(&policy, &[]);
        assert_eq!(
            findings[0].msg,
            "probability mass error: `probability` is outside (0, 1]"
        );
    }

    #[test]
    fn empty_host_list_is_dead() {
        let policy = wiretap_of_rules(vec![fire_rule(listed(&[]))]);
        let findings = probe_policy(&policy, &[6]);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].msg, "dead rule: empty host list");
    }

    #[test]
    fn slow_tail_without_base_never_draws() {
        let mut rule = fire_rule(HostSet::Blocklist);
        if let Action::Fire(act) = &mut rule.action {
            act.delay = DelaySpec { base: None, slow: Some((0.3, (1, 2))) };
        }
        let policy = wiretap_of_rules(vec![rule]);
        let findings = probe_policy(&policy, &[]);
        assert_eq!(findings.len(), 1);
        assert_eq!(
            findings[0].msg,
            "probability mass error: `slow` tail can never be drawn without a base delay"
        );
    }

    #[test]
    fn always_firing_gate_zeroes_later_rules() {
        let mut first = fire_rule(HostSet::Blocklist);
        first.probability = Some(1.0);
        let policy = wiretap_of_rules(vec![first, fire_rule(HostSet::Blocklist)]);
        let findings = probe_policy(&policy, &[5, 12]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].line, 12);
        assert_eq!(
            findings[0].msg,
            "probability mass error: effective firing probability is 0 — rule #1 fires first \
             with probability 1"
        );
    }

    #[test]
    fn dangling_hosts_are_coverage_findings() {
        let policy = wiretap_of_rules(vec![fire_rule(listed(&["blocked.invalid"]))]);
        let findings = coverage_findings(&policy, &[8]);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].line, 8);
        assert_eq!(
            findings[0].msg,
            "dangling host-set entry `blocked.invalid`: TLD `invalid` cannot resolve against \
             the blocklist corpus"
        );
        let malformed = wiretap_of_rules(vec![fire_rule(listed(&["no dots here"]))]);
        let findings = coverage_findings(&malformed, &[]);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].msg.contains("not a well-formed domain name"), "{findings:?}");
    }

    #[test]
    fn probe_is_deterministic() {
        let mut pass = fire_rule(listed(&["a.example", "b.example"]));
        pass.action = Action::Pass;
        let mut gated = fire_rule(HostSet::Any);
        gated.after = Some(0);
        let policy = wiretap_of_rules(vec![pass, fire_rule(listed(&["b.example"])), gated]);
        assert_eq!(probe_policy(&policy, &[1, 2, 3]), probe_policy(&policy, &[1, 2, 3]));
    }
}
