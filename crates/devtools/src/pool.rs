//! A deterministic scoped map for the per-file scan — the second (and
//! last) sanctioned home of `std::thread` in the workspace, next to
//! the bench shard scheduler.
//!
//! Determinism argument: indices are statically partitioned
//! round-robin across workers, every result is placed back into its
//! slot by index, and the merged vector is returned in index order —
//! so the output is byte-identical at any thread count, which CI
//! checks by diffing `lucent-lint --json` at `--threads 1` and `4`.

/// Apply `f` to `0..n` on up to `threads` workers, returning results
/// in index order. `threads <= 1` runs inline.
pub fn map_indexed<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = threads.clamp(1, n.max(1));
    if workers <= 1 {
        return (0..n).map(f).collect();
    }
    let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for k in 0..workers {
            let f = &f;
            handles.push(scope.spawn(move || {
                let mut part = Vec::new();
                let mut i = k;
                while i < n {
                    part.push((i, f(i)));
                    i += workers;
                }
                part
            }));
        }
        for h in handles {
            match h.join() {
                Ok(part) => {
                    for (i, v) in part {
                        slots[i] = Some(v);
                    }
                }
                // A worker panic is a bug in `f`; surface it on the
                // caller's thread rather than swallowing it.
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    // Every index is assigned to exactly one worker and every worker
    // was joined, so all slots are filled.
    slots.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_arrive_in_index_order_at_any_width() {
        let serial = map_indexed(37, 1, |i| i * i);
        for threads in [2, 3, 4, 8, 64] {
            assert_eq!(map_indexed(37, threads, |i| i * i), serial, "threads={threads}");
        }
        assert_eq!(map_indexed(0, 4, |i| i), Vec::<usize>::new());
    }
}
