//! Manifest rules: L1 hermeticity and L2 layering.
//!
//! L1 — the workspace must build with the network unplugged. Every
//! dependency in every member manifest must resolve to a path inside the
//! repository, either directly (`{ path = … }`) or through a
//! `[workspace.dependencies]` entry that is itself a path.
//!
//! L2 — crates form a strict DAG:
//!
//! ```text
//! support → {obs, packet} → netsim → tcp → dns → {web, middlebox}
//!         → topology → core → bench → check
//! ```
//!
//! (`dns` sits above `tcp` because resolvers are transport apps hosted
//! on a `TcpHost`; `middlebox` needs neither. `obs` sits directly above
//! `support` so every layer from `netsim` up can emit telemetry.)
//!
//! A crate may depend only on crates in strictly lower layers. The map
//! below is the single source of truth; adding an edge means editing it
//! here, in review.

use std::collections::BTreeMap;

use crate::report::{Rule, Violation};
use crate::toml::{Doc, Value};

/// One dependency as declared in a manifest.
#[derive(Debug, Clone, PartialEq)]
pub struct Dep {
    pub name: String,
    /// The section it came from (`dependencies`, `dev-dependencies`, …).
    pub section: String,
    /// Declared with `path = …`.
    pub has_path: bool,
    /// Declared with `workspace = true`.
    pub from_workspace: bool,
    /// Declared with a registry version requirement.
    pub has_version: bool,
}

/// A parsed member manifest.
#[derive(Debug, Clone)]
pub struct Manifest {
    /// Package name (`lucent-packet`, …).
    pub package: String,
    /// Manifest path relative to the workspace root.
    pub rel_path: String,
    pub deps: Vec<Dep>,
}

const DEP_SECTIONS: [&str; 3] = ["dependencies", "dev-dependencies", "build-dependencies"];

/// Extract the package name and all dependency declarations from a
/// parsed manifest, handling both inline (`foo = { … }`) and dotted
/// (`[dependencies.foo]`) forms.
pub fn extract(doc: &Doc, rel_path: &str) -> Manifest {
    let package = doc
        .get("package", "name")
        .and_then(Value::as_str)
        .unwrap_or("<unnamed>")
        .to_string();
    let mut deps = Vec::new();
    for section in DEP_SECTIONS {
        for (name, value) in doc.section(section) {
            deps.push(classify(name, value, section));
        }
        // Dotted sub-tables: [dependencies.foo]
        let prefix = format!("{section}.");
        for sec_name in doc.sections.keys() {
            if let Some(dep_name) = sec_name.strip_prefix(&prefix) {
                let entries = doc.section(sec_name);
                let has = |k: &str| entries.iter().any(|(key, _)| key == k);
                deps.push(Dep {
                    name: dep_name.to_string(),
                    section: section.to_string(),
                    has_path: has("path"),
                    from_workspace: entries.iter().any(|(k, v)| {
                        k == "workspace" && matches!(v, Value::Bool(true))
                    }),
                    has_version: has("version"),
                });
            }
        }
    }
    Manifest { package, rel_path: rel_path.to_string(), deps }
}

fn classify(name: &str, value: &Value, section: &str) -> Dep {
    let (has_path, from_workspace, has_version) = match value {
        // `foo = "1.0"` — bare registry requirement.
        Value::Str(_) => (false, false, true),
        Value::Table(t) => (
            t.contains_key("path"),
            matches!(t.get("workspace"), Some(Value::Bool(true))),
            t.contains_key("version"),
        ),
        _ => (false, false, false),
    };
    Dep { name: name.to_string(), section: section.to_string(), has_path, from_workspace, has_version }
}

/// L1 on the root manifest: every `[workspace.dependencies]` entry must
/// be a path dependency. Returns the set of names that are path-backed,
/// for members to inherit.
pub fn check_workspace_deps(root: &Doc) -> (Vec<Violation>, Vec<String>) {
    let mut violations = Vec::new();
    let mut path_backed = Vec::new();
    for (name, value) in root.section("workspace.dependencies") {
        let ok = matches!(value, Value::Table(t) if t.contains_key("path"));
        if ok {
            path_backed.push(name.clone());
        } else {
            violations.push(Violation::file(
                Rule::Hermeticity,
                "Cargo.toml",
                format!("workspace dependency `{name}` is not a path dependency"),
            ));
        }
    }
    (violations, path_backed)
}

/// L1 on a member: every dependency must be path-backed, directly or via
/// a path-backed workspace entry.
pub fn check_hermetic(m: &Manifest, workspace_path_deps: &[String]) -> Vec<Violation> {
    let mut v = Vec::new();
    for dep in &m.deps {
        let inherited_ok =
            dep.from_workspace && workspace_path_deps.iter().any(|n| n == &dep.name);
        if dep.has_path || inherited_ok {
            continue;
        }
        let why = if dep.from_workspace {
            "inherits a workspace entry that is not path-backed"
        } else if dep.has_version {
            "declares a registry version requirement"
        } else {
            "resolves outside the repository"
        };
        v.push(Violation::file(
            Rule::Hermeticity,
            &m.rel_path,
            format!("[{}] `{}` {}", dep.section, dep.name, why),
        ));
    }
    v
}

/// The layer DAG: package → packages it may depend on. Test and example
/// packages sit above everything and may use any crate.
pub fn layer_map() -> BTreeMap<&'static str, Vec<&'static str>> {
    const SUPPORT: &str = "lucent-support";
    const OBS: &str = "lucent-obs";
    const PACKET: &str = "lucent-packet";
    const NETSIM: &str = "lucent-netsim";
    const TCP: &str = "lucent-tcp";
    const DNS: &str = "lucent-dns";
    const WEB: &str = "lucent-web";
    const MIDDLEBOX: &str = "lucent-middlebox";
    const TOPOLOGY: &str = "lucent-topology";
    const CORE: &str = "lucent-core";
    let mut m = BTreeMap::new();
    m.insert(SUPPORT, vec![]);
    // The lint links the middlebox policy IR for L11/L12 policycheck,
    // so it sits just above the middlebox layer (transitively closed).
    m.insert("lucent-devtools", vec![SUPPORT, OBS, PACKET, NETSIM, TCP, DNS, MIDDLEBOX]);
    m.insert(OBS, vec![SUPPORT]);
    m.insert(PACKET, vec![SUPPORT]);
    m.insert(NETSIM, vec![SUPPORT, OBS, PACKET]);
    m.insert(TCP, vec![SUPPORT, OBS, PACKET, NETSIM]);
    m.insert(DNS, vec![SUPPORT, OBS, PACKET, NETSIM, TCP]);
    m.insert(WEB, vec![SUPPORT, OBS, PACKET, NETSIM, TCP, DNS]);
    m.insert(MIDDLEBOX, vec![SUPPORT, OBS, PACKET, NETSIM, TCP, DNS]);
    m.insert(TOPOLOGY, vec![SUPPORT, OBS, PACKET, NETSIM, TCP, DNS, WEB, MIDDLEBOX]);
    m.insert(CORE, vec![SUPPORT, OBS, PACKET, NETSIM, TCP, DNS, WEB, MIDDLEBOX, TOPOLOGY]);
    m.insert(
        "lucent-bench",
        vec![SUPPORT, OBS, PACKET, NETSIM, TCP, DNS, WEB, MIDDLEBOX, TOPOLOGY, CORE],
    );
    // The fuzzing/property harness sits above everything it checks —
    // lower crates consume it through dev-dependencies only. It also
    // checks the lint's own lexer and parser, so the devtools crate is
    // in scope for it.
    m.insert(
        "lucent-check",
        vec![
            SUPPORT,
            OBS,
            PACKET,
            NETSIM,
            TCP,
            DNS,
            WEB,
            MIDDLEBOX,
            TOPOLOGY,
            CORE,
            "lucent-bench",
            "lucent-devtools",
        ],
    );
    m
}

/// L2: check a member's `[dependencies]` against the layer DAG. Dev
/// dependencies are exempt (tests may reach up); unknown packages (the
/// integration-test and examples packages) are exempt as top-of-stack.
pub fn check_layering(m: &Manifest) -> Vec<Violation> {
    let map = layer_map();
    let Some(allowed) = map.get(m.package.as_str()) else {
        return Vec::new();
    };
    let mut v = Vec::new();
    for dep in &m.deps {
        if dep.section != "dependencies" || !dep.name.starts_with("lucent-") {
            continue;
        }
        if !allowed.contains(&dep.name.as_str()) {
            v.push(Violation::file(
                Rule::Layering,
                &m.rel_path,
                format!(
                    "`{}` may not depend on `{}` (allowed: {})",
                    m.package,
                    dep.name,
                    if allowed.is_empty() { "nothing".to_string() } else { allowed.join(", ") }
                ),
            ));
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::toml;

    fn manifest(text: &str) -> Manifest {
        extract(&toml::parse(text).expect("toml"), "crates/x/Cargo.toml")
    }

    #[test]
    fn registry_version_dep_violates_l1() {
        let m = manifest("[package]\nname = \"lucent-x\"\n[dependencies]\nserde = \"1.0\"\n");
        let v = check_hermetic(&m, &[]);
        assert_eq!(v.len(), 1);
        assert!(v[0].msg.contains("registry version"), "{}", v[0].msg);
    }

    #[test]
    fn inline_version_table_violates_l1() {
        let m = manifest(
            "[package]\nname = \"lucent-x\"\n[dependencies]\nrand = { version = \"0.8\", default-features = false }\n",
        );
        assert_eq!(check_hermetic(&m, &[]).len(), 1);
    }

    #[test]
    fn path_and_workspace_path_deps_pass_l1() {
        let m = manifest(
            "[package]\nname = \"lucent-x\"\n[dependencies]\na = { path = \"../a\" }\nlucent-support = { workspace = true }\n",
        );
        let ws = vec!["lucent-support".to_string()];
        assert!(check_hermetic(&m, &ws).is_empty());
    }

    #[test]
    fn workspace_inheritance_without_path_backing_violates_l1() {
        let m = manifest(
            "[package]\nname = \"lucent-x\"\n[dependencies]\nserde = { workspace = true }\n",
        );
        let ws = vec!["lucent-support".to_string()];
        let v = check_hermetic(&m, &ws);
        assert_eq!(v.len(), 1);
        assert!(v[0].msg.contains("not path-backed"), "{}", v[0].msg);
    }

    #[test]
    fn dotted_dependency_tables_are_seen() {
        let m = manifest(
            "[package]\nname = \"lucent-web\"\n[dependencies.lucent-dns]\nworkspace = true\n",
        );
        assert_eq!(m.deps.len(), 1);
        assert!(m.deps[0].from_workspace);
    }

    #[test]
    fn upward_layer_edge_violates_l2() {
        let m = manifest(
            "[package]\nname = \"lucent-packet\"\n[dependencies]\nlucent-core = { workspace = true }\n",
        );
        let v = check_layering(&m);
        assert_eq!(v.len(), 1);
        assert!(v[0].msg.contains("may not depend"), "{}", v[0].msg);
    }

    #[test]
    fn sibling_layer_edge_violates_l2() {
        let m = manifest(
            "[package]\nname = \"lucent-middlebox\"\n[dependencies]\nlucent-web = { workspace = true }\n",
        );
        assert_eq!(check_layering(&m).len(), 1);
    }

    #[test]
    fn dev_dependencies_may_reach_up() {
        let m = manifest(
            "[package]\nname = \"lucent-packet\"\n[dev-dependencies]\nlucent-core = { workspace = true }\n",
        );
        assert!(check_layering(&m).is_empty());
    }

    #[test]
    fn the_dag_is_acyclic_and_transitively_closed() {
        let map = layer_map();
        for (pkg, allowed) in &map {
            for dep in allowed {
                assert!(!map[dep].contains(pkg), "cycle {pkg} <-> {dep}");
                for transitive in &map[dep] {
                    assert!(
                        allowed.contains(transitive),
                        "{pkg} allows {dep} but not its dep {transitive}"
                    );
                }
            }
        }
    }
}
