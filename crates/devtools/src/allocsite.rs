//! Allocation-site detection for the L9/L10 heap-discipline rules.
//!
//! The detector classifies the allocating idioms the event-engine
//! overhaul must drive out of the hot path: `clone()`, `to_vec()`,
//! `Vec::new` / `with_capacity`, `collect()`, `format!`, `Box::new`,
//! `String::from` and `vec![…]`. Like the L4 panic matcher it runs on
//! *scrubbed* lines (see [`crate::lex`]), so a needle inside a string
//! literal or a comment — including this crate's own rule tables —
//! never counts. One match is one site; a line with two `clone()`s
//! yields two sites.
//!
//! The grammar is deliberately token-level and over-inclusive: a cheap
//! `Rc` handle `.clone()` counts the same as a deep payload copy. For
//! a shrink-only ceiling that is the safe direction — converting a deep
//! copy to `Rc::clone(&x)` (which the detector does not match, by
//! design) registers as a shrink, and nothing allocating can hide.
//!
//! [`loop_spans`] locates the line ranges of `loop` / `while` / `for`
//! bodies so L10 can hold per-event (in-loop) allocations to a tighter
//! ceiling than one-off setup allocations.

use crate::lex::in_spans;
use crate::parse::{line_of, line_starts, next_token};
use crate::source::Lexed;

/// One detected allocation site in non-test code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllocSite {
    /// 1-based line of the match.
    pub line: usize,
    /// Which idiom matched (e.g. `"clone"`, `"vec!"`).
    pub kind: &'static str,
    /// Lexically inside a `loop`/`while`/`for` body.
    pub in_loop: bool,
}

/// The detector grammar: `(needle, kind)`. Needles whose first byte is
/// an identifier character additionally require a non-identifier byte
/// (or line start) before the match, so `MyVec::new(` never counts.
const NEEDLES: [(&str, &str); 10] = [
    (".clone()", "clone"),
    (".to_vec()", "to_vec"),
    ("Vec::new(", "Vec::new"),
    ("with_capacity(", "with_capacity"),
    (".collect(", "collect"),
    (".collect::<", "collect"),
    ("format!", "format!"),
    ("Box::new(", "Box::new"),
    ("String::from(", "String::from"),
    ("vec!", "vec!"),
];

fn is_ident(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// Count boundary-respecting occurrences of `needle` in one scrubbed
/// line, returning the byte offset of each match.
fn matches_in(line: &str, needle: &str) -> Vec<usize> {
    let lb = line.as_bytes();
    let first = needle.as_bytes()[0];
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(pos) = line[from..].find(needle) {
        let at = from + pos;
        let before_ok = !is_ident(first) || at == 0 || !is_ident(lb[at - 1]);
        if before_ok {
            out.push(at);
        }
        from = at + 1;
    }
    out
}

/// Every allocation site in the non-test lines of a lexed file, in
/// line order (kinds in grammar order within a line). Total on
/// arbitrary input.
pub fn alloc_sites(lexed: &Lexed) -> Vec<AllocSite> {
    let loops = loop_spans(lexed.scrubbed());
    let mut out = Vec::new();
    for (n, line) in lexed.scrubbed().lines().enumerate().map(|(i, l)| (i + 1, l)) {
        if in_spans(lexed.test_spans(), n) {
            continue;
        }
        for (needle, kind) in NEEDLES {
            for _ in matches_in(line, needle) {
                out.push(AllocSite { line: n, kind, in_loop: in_spans(&loops, n) });
            }
        }
    }
    out
}

/// 1-based inclusive line ranges covered by `loop` / `while` / `for`
/// bodies in scrubbed source, outermost and nested alike.
///
/// The body `{` is found by scanning forward from the keyword at zero
/// paren/bracket depth (so a closure brace inside `for x in xs.iter()`
/// headers does not start the body early), then brace-matched to its
/// closer — unbalanced braces close at end-of-file. `for` is skipped
/// when the previous token is an identifier or `>` (the `impl Trait
/// for Type` position) or the next token is `<` (`for<'a>` bounds);
/// both would otherwise sweep whole impl blocks into "loop bodies".
/// The result is over-approximate in the safe, shrink-only direction.
pub fn loop_spans(scrubbed: &str) -> Vec<(usize, usize)> {
    let b = scrubbed.as_bytes();
    let starts = line_starts(scrubbed);
    let mut spans = Vec::new();
    let mut prev = String::new();
    let mut i = 0usize;
    while let Some((s, e, ident)) = next_token(b, i) {
        let text = &scrubbed[s..e];
        i = e;
        if ident && matches!(text, "loop" | "while" | "for") {
            let impl_for = text == "for"
                && (prev.as_bytes().first().is_some_and(|&c| is_ident(c) || c >= 0x80)
                    || prev == ">");
            let hrtb = text == "for"
                && matches!(next_token(b, e), Some((hs, _, false)) if b[hs] == b'<');
            if !impl_for && !hrtb {
                if let Some(open) = body_open(b, e) {
                    let close = brace_close(b, open);
                    spans.push((line_of(&starts, open), line_of(&starts, close)));
                    // Continue scanning *inside* the body so nested
                    // loops get their own (redundant but harmless)
                    // spans; i stays at the token after the keyword.
                }
            }
        }
        prev.clear();
        prev.push_str(text);
    }
    spans
}

/// The body-opening `{` after a loop keyword: first `{` at zero
/// paren/bracket depth. `None` when a `;` or `}` intervenes (a stray
/// keyword with no body).
fn body_open(b: &[u8], from: usize) -> Option<usize> {
    let mut depth = 0usize;
    let mut j = from;
    while j < b.len() {
        match b[j] {
            b'(' | b'[' => depth += 1,
            b')' | b']' => depth = depth.saturating_sub(1),
            b'{' if depth == 0 => return Some(j),
            b';' | b'}' if depth == 0 => return None,
            _ => {}
        }
        j += 1;
    }
    None
}

/// Byte of the `}` matching the `{` at `open`; the last byte when
/// unbalanced.
fn brace_close(b: &[u8], open: usize) -> usize {
    let mut depth = 0usize;
    let mut j = open;
    while j < b.len() {
        match b[j] {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
        j += 1;
    }
    b.len().saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sites(src: &str) -> Vec<(usize, &'static str, bool)> {
        alloc_sites(&Lexed::new(src)).into_iter().map(|s| (s.line, s.kind, s.in_loop)).collect()
    }

    #[test]
    fn the_grammar_matches_each_idiom_once() {
        let src = "fn f() {\n\
                   let a = x.clone();\n\
                   let b = y.to_vec();\n\
                   let c = Vec::new();\n\
                   let d = Vec::with_capacity(8);\n\
                   let e: Vec<u8> = it.collect();\n\
                   let g = it.collect::<Vec<u8>>();\n\
                   let h = format!(\"x{}\", 1);\n\
                   let i = Box::new(7);\n\
                   let j = String::from(\"s\");\n\
                   let k = vec![0u8; 4];\n\
                   }\n";
        let got = sites(src);
        let kinds: Vec<&str> = got.iter().map(|(_, k, _)| *k).collect();
        assert_eq!(
            kinds,
            vec![
                "clone", "to_vec", "Vec::new", "with_capacity", "collect", "collect",
                "format!", "Box::new", "String::from", "vec!"
            ]
        );
        assert!(got.iter().all(|(_, _, l)| !l), "nothing here is in a loop: {got:?}");
    }

    #[test]
    fn lookalike_identifiers_and_literals_do_not_match() {
        let src = "fn f() {\n\
                   let a = MyVec::new();\n\
                   let b = reformat!(x);\n\
                   let c = \"use Vec::new() and vec![] and format!\";\n\
                   // x.clone() in a comment\n\
                   let d = Rc::clone(&x);\n\
                   let e = cloned();\n\
                   }\n";
        assert!(sites(src).is_empty(), "{:?}", sites(src));
    }

    #[test]
    fn two_sites_on_one_line_count_twice() {
        let got = sites("fn f() { (a.clone(), a.clone()) }\n");
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].0, got[1].0);
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "fn live() { x.clone(); }\n#[cfg(test)]\nmod tests {\n    fn t() { y.clone(); }\n}\n";
        assert_eq!(sites(src), vec![(1, "clone", false)]);
    }

    #[test]
    fn loop_bodies_mark_sites_in_loop() {
        let src = "fn f(xs: &[u8]) {\n\
                   let setup = Vec::new();\n\
                   for x in xs {\n\
                       let per_event = x.clone();\n\
                   }\n\
                   while go() {\n\
                       buf.push(format!(\"{x}\"));\n\
                   }\n\
                   loop {\n\
                       let v = vec![1];\n\
                       break;\n\
                   }\n\
                   }\n";
        let got = sites(src);
        assert_eq!(
            got,
            vec![
                (2, "Vec::new", false),
                (4, "clone", true),
                (7, "format!", true),
                (10, "vec!", true),
            ]
        );
    }

    #[test]
    fn impl_for_and_hrtb_are_not_loops() {
        let src = "impl fmt::Display for Report {\n\
                   fn fmt(&self) { let s = x.clone(); }\n\
                   }\n\
                   fn g<F: for<'a> Fn(&'a u8)>(f: F) { let v = vec![1]; }\n";
        let got = sites(src);
        assert_eq!(got, vec![(2, "clone", false), (4, "vec!", false)]);
        assert!(loop_spans(&crate::lex::scrub(src)).is_empty());
    }

    #[test]
    fn closure_braces_in_loop_headers_do_not_open_the_body() {
        let src = "fn f() {\n\
                   for x in xs.iter().map(|y| { y + 1 }) {\n\
                       let c = x.clone();\n\
                   }\n\
                   let after = Vec::new();\n\
                   }\n";
        let got = sites(src);
        assert_eq!(got, vec![(3, "clone", true), (5, "Vec::new", false)]);
    }

    #[test]
    fn nested_loops_and_unbalanced_braces_stay_total() {
        let src = "fn f() {\n    for a in xs {\n        while b {\n            c.clone();\n";
        let got = sites(src);
        assert_eq!(got, vec![(4, "clone", true)]);
        // Pure soup never panics.
        let _ = sites("}}} for for { { vec! while ((( loop");
    }
}
