//! Lint findings and the aggregate report the CLI prints.

use std::fmt;

/// The rule families, in gate order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// L1 — every dependency resolves inside the repository.
    Hermeticity,
    /// L2 — crate dependencies respect the layer DAG.
    Layering,
    /// L3 — no wall clocks, entropy, or iteration-order hazards.
    Determinism,
    /// L4 — panic sites stay within the shrink-only baseline.
    PanicBudget,
    /// L5 — every `unsafe` carries a `// SAFETY:` justification.
    UnsafeHygiene,
    /// L6 — no console prints outside sanctioned sinks.
    PrintHygiene,
}

impl Rule {
    pub fn code(self) -> &'static str {
        match self {
            Rule::Hermeticity => "L1-hermetic",
            Rule::Layering => "L2-layering",
            Rule::Determinism => "L3-determinism",
            Rule::PanicBudget => "L4-panic-budget",
            Rule::UnsafeHygiene => "L5-unsafe",
            Rule::PrintHygiene => "L6-print",
        }
    }
}

/// One finding. `line` is 1-based; 0 means the finding is file-level.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Violation {
    pub rule: Rule,
    pub path: String,
    pub line: usize,
    pub msg: String,
}

impl Violation {
    pub fn file(rule: Rule, path: impl Into<String>, msg: impl Into<String>) -> Violation {
        Violation { rule, path: path.into(), line: 0, msg: msg.into() }
    }

    pub fn at(rule: Rule, path: impl Into<String>, line: usize, msg: impl Into<String>) -> Violation {
        Violation { rule, path: path.into(), line, msg: msg.into() }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "{}: {}: {}", self.rule.code(), self.path, self.msg)
        } else {
            write!(f, "{}: {}:{}: {}", self.rule.code(), self.path, self.line, self.msg)
        }
    }
}

/// The full gate outcome.
#[derive(Debug, Default)]
pub struct Report {
    pub violations: Vec<Violation>,
    /// Non-fatal notes (e.g. a baseline entry that can now shrink).
    pub warnings: Vec<String>,
    pub files_scanned: usize,
    /// Total panic sites counted in non-test library code.
    pub panic_total: usize,
}

impl Report {
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    pub fn merge(&mut self, mut other: Vec<Violation>) {
        self.violations.append(&mut other);
    }
}
