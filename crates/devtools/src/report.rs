//! Lint findings and the aggregate report the CLI prints.

use std::fmt;

/// The rule families, in gate order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// L1 — every dependency resolves inside the repository.
    Hermeticity,
    /// L2 — crate dependencies respect the layer DAG.
    Layering,
    /// L3 — no wall clocks, entropy, or iteration-order hazards.
    Determinism,
    /// L4 — panic sites stay within the shrink-only baseline.
    PanicBudget,
    /// L5 — every `unsafe` carries a `// SAFETY:` justification.
    UnsafeHygiene,
    /// L6 — no console prints outside sanctioned sinks.
    PrintHygiene,
    /// L7 — panic sites reachable from experiment entry points stay
    /// within the shrink-only `[panic_reach]` baseline.
    PanicReach,
    /// L8 — no `static mut`; interior-mutability statics confined to
    /// `[shared_state]` allowlisted files.
    SharedState,
    /// L9 — allocation sites reachable from `[hot_roots]` stay within
    /// the shrink-only `[alloc_reach]` baseline.
    AllocReach,
    /// L10 — in-loop (per-event) allocation sites reachable from
    /// `[hot_roots]` stay within the tighter `[alloc_in_loop]` baseline.
    AllocInLoop,
    /// L11 — symbolic anomalies in compiled censor policies (dead
    /// rules, conflicting overlaps, unreachable gates, probability-mass
    /// errors) stay within the shrink-only `[policy_anomaly]` baseline.
    PolicyAnomaly,
    /// L12 — the committed policy set covers the simulator's ground
    /// truth: both mechanism families, known telemetry labels,
    /// corpus-resolvable host sets, and compilable programs.
    PolicyCoverage,
}

impl Rule {
    pub fn code(self) -> &'static str {
        match self {
            Rule::Hermeticity => "L1-hermetic",
            Rule::Layering => "L2-layering",
            Rule::Determinism => "L3-determinism",
            Rule::PanicBudget => "L4-panic-budget",
            Rule::UnsafeHygiene => "L5-unsafe",
            Rule::PrintHygiene => "L6-print",
            Rule::PanicReach => "L7-panic-reach",
            Rule::SharedState => "L8-shared-state",
            Rule::AllocReach => "L9-alloc-reach",
            Rule::AllocInLoop => "L10-alloc-in-loop",
            Rule::PolicyAnomaly => "L11-policy-anomaly",
            Rule::PolicyCoverage => "L12-policy-coverage",
        }
    }
}

/// One finding. `line` is 1-based; 0 means the finding is file-level.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Violation {
    pub rule: Rule,
    pub path: String,
    pub line: usize,
    pub msg: String,
}

impl Violation {
    pub fn file(rule: Rule, path: impl Into<String>, msg: impl Into<String>) -> Violation {
        Violation { rule, path: path.into(), line: 0, msg: msg.into() }
    }

    pub fn at(rule: Rule, path: impl Into<String>, line: usize, msg: impl Into<String>) -> Violation {
        Violation { rule, path: path.into(), line, msg: msg.into() }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "{}: {}: {}", self.rule.code(), self.path, self.msg)
        } else {
            write!(f, "{}: {}:{}: {}", self.rule.code(), self.path, self.line, self.msg)
        }
    }
}

/// The full gate outcome.
#[derive(Debug, Default)]
pub struct Report {
    pub violations: Vec<Violation>,
    /// Non-fatal notes (e.g. a baseline entry that can now shrink).
    pub warnings: Vec<String>,
    pub files_scanned: usize,
    /// Total panic sites counted in non-test library code.
    pub panic_total: usize,
    /// Non-test functions in the symbol index.
    pub functions: usize,
    /// Resolved call-graph edges.
    pub call_edges: usize,
    /// Per-file panic-site counts (files with zero sites omitted).
    pub panic_by_file: std::collections::BTreeMap<String, usize>,
    /// Entry id → sorted `file:line` of reachable panic sites.
    pub panic_reach: std::collections::BTreeMap<String, Vec<String>>,
    /// Total allocation sites detected in non-test library code.
    pub alloc_total: usize,
    /// Hot root id → count of reachable allocation sites (L9).
    pub alloc_reach: std::collections::BTreeMap<String, usize>,
    /// Hot root id → count of reachable in-loop allocation sites (L10).
    pub alloc_in_loop: std::collections::BTreeMap<String, usize>,
    /// Crate name → `(reachable, in_loop)` allocation sites over the
    /// union of all hot roots.
    pub hot_alloc_census: std::collections::BTreeMap<String, (usize, usize)>,
    /// Committed policy files scanned by L11/L12.
    pub policy_files: usize,
    /// Policy file → L11 anomaly count (zero-finding files omitted).
    pub policy_anomaly: std::collections::BTreeMap<String, usize>,
}

impl Report {
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    pub fn merge(&mut self, mut other: Vec<Violation>) {
        self.violations.append(&mut other);
    }

    /// Machine-readable report (schema `lucent-lint/4`). Hand-rolled on
    /// purpose: every map is a `BTreeMap` and every list is pre-sorted
    /// by the caller, so the bytes are identical across runs and thread
    /// counts — CI diffs this against a committed golden.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n  \"schema\": \"lucent-lint/4\",\n");
        count_line(&mut out, "files_scanned", self.files_scanned);
        count_line(&mut out, "functions", self.functions);
        count_line(&mut out, "call_edges", self.call_edges);
        count_line(&mut out, "panic_total", self.panic_total);
        count_line(&mut out, "alloc_total", self.alloc_total);
        count_line(&mut out, "policy_files", self.policy_files);
        count_map(&mut out, "panic_sites", &self.panic_by_file);
        out.push_str("  \"panic_reach\": {");
        let mut first = true;
        for (id, sites) in &self.panic_reach {
            out.push_str(if first { "\n" } else { ",\n" });
            first = false;
            let listed: Vec<String> = sites.iter().map(|s| json_str(s)).collect();
            out.push_str(&format!("    {}: [{}]", json_str(id), listed.join(", ")));
        }
        out.push_str(if first { "},\n" } else { "\n  },\n" });
        count_map(&mut out, "alloc_reach", &self.alloc_reach);
        count_map(&mut out, "alloc_in_loop", &self.alloc_in_loop);
        out.push_str("  \"hot_alloc_census\": {");
        first = true;
        for (krate, (total, in_loop)) in &self.hot_alloc_census {
            out.push_str(if first { "\n" } else { ",\n" });
            first = false;
            out.push_str(&format!(
                "    {}: {{\"reachable\": {total}, \"in_loop\": {in_loop}}}",
                json_str(krate)
            ));
        }
        out.push_str(if first { "},\n" } else { "\n  },\n" });
        count_map(&mut out, "policy_anomaly", &self.policy_anomaly);
        out.push_str("  \"violations\": [");
        first = true;
        for v in &self.violations {
            out.push_str(if first { "\n" } else { ",\n" });
            first = false;
            out.push_str(&format!(
                "    {{\"rule\": {}, \"path\": {}, \"line\": {}, \"msg\": {}}}",
                json_str(v.rule.code()),
                json_str(&v.path),
                v.line,
                json_str(&v.msg)
            ));
        }
        out.push_str(if first { "],\n" } else { "\n  ],\n" });
        out.push_str("  \"warnings\": [");
        first = true;
        for w in &self.warnings {
            out.push_str(if first { "\n" } else { ",\n" });
            first = false;
            out.push_str(&format!("    {}", json_str(w)));
        }
        out.push_str(if first { "]\n" } else { "\n  ]\n" });
        out.push_str("}\n");
        out
    }
}

/// Emit one `  "name": n,` scalar line of the JSON report.
fn count_line(out: &mut String, name: &str, n: usize) {
    out.push_str(&format!("  \"{name}\": {n},\n"));
}

/// Emit one `"name": {"key": n, …}` object of the JSON report, with
/// the report's two-space indent and a trailing comma.
fn count_map(out: &mut String, name: &str, map: &std::collections::BTreeMap<String, usize>) {
    out.push_str(&format!("  \"{name}\": {{"));
    let mut first = true;
    for (key, n) in map {
        out.push_str(if first { "\n" } else { ",\n" });
        first = false;
        out.push_str(&format!("    {}: {n}", json_str(key)));
    }
    out.push_str(if first { "},\n" } else { "\n  },\n" });
}

/// Minimal JSON string escaping — quotes, backslashes, and control
/// bytes; everything else (including multi-byte UTF-8) passes through.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_report_is_stable_and_escaped() {
        let mut r = Report { files_scanned: 2, panic_total: 1, functions: 3, ..Report::default() };
        r.panic_by_file.insert("crates/x/src/a.rs".into(), 1);
        r.panic_reach.insert("crates/x/src/a.rs::run".into(), vec!["crates/x/src/a.rs:4".into()]);
        r.violations.push(Violation::at(Rule::SharedState, "crates/x/src/b.rs", 7, "a \"quoted\" msg"));
        r.warnings.push("note\twith tab".into());
        r.alloc_total = 5;
        r.alloc_reach.insert("crates/x/src/a.rs::step".into(), 4);
        r.alloc_in_loop.insert("crates/x/src/a.rs::step".into(), 2);
        r.hot_alloc_census.insert("x".into(), (4, 2));
        r.policy_files = 2;
        r.policy_anomaly.insert("crates/x/policies/p.toml".into(), 3);
        let json = r.to_json();
        assert_eq!(json, r.to_json(), "emission is deterministic");
        assert!(json.contains("\"schema\": \"lucent-lint/4\""), "{json}");
        assert!(json.contains("\"policy_files\": 2"), "{json}");
        assert!(json.contains("\"crates/x/policies/p.toml\": 3"), "{json}");
        assert!(json.contains("\"alloc_total\": 5"), "{json}");
        assert!(json.contains("\"crates/x/src/a.rs::step\": 4"), "{json}");
        assert!(json.contains("\"x\": {\"reachable\": 4, \"in_loop\": 2}"), "{json}");
        assert!(json.contains("\"L8-shared-state\""), "{json}");
        assert!(json.contains("a \\\"quoted\\\" msg"), "{json}");
        assert!(json.contains("note\\twith tab"), "{json}");
        assert!(json.contains("\"crates/x/src/a.rs::run\": [\"crates/x/src/a.rs:4\"]"), "{json}");
    }

    #[test]
    fn empty_report_serializes_with_empty_collections() {
        let json = Report::default().to_json();
        assert!(json.contains("\"panic_sites\": {},"), "{json}");
        assert!(json.contains("\"alloc_reach\": {},"), "{json}");
        assert!(json.contains("\"hot_alloc_census\": {},"), "{json}");
        assert!(json.contains("\"policy_anomaly\": {},"), "{json}");
        assert!(json.contains("\"violations\": [],"), "{json}");
        assert!(json.ends_with("]\n}\n"), "{json}");
    }
}
