//! Workspace-wide symbol index: every non-test `fn` in every crate's
//! library tree, in deterministic file-then-declaration order, with a
//! name → candidates map for the approximate call-graph resolver.

use std::collections::BTreeMap;

use crate::parse::FnItem;

/// One indexed function.
#[derive(Debug, Clone)]
pub struct Symbol {
    /// Repo-relative path of the defining file.
    pub file: String,
    /// File stem (`race` for `crates/core/src/experiments/race.rs`) —
    /// matched against call-site qualifiers like `race::run_isp`.
    pub stem: String,
    pub name: String,
    /// In-file context (modules and impl self-types, `::`-joined).
    pub qual: String,
    pub is_pub: bool,
    pub line: usize,
    pub end_line: usize,
}

impl Symbol {
    /// The stable display identity: `<file>::<name>`.
    pub fn id(&self) -> String {
        format!("{}::{}", self.file, self.name)
    }
}

/// The index. Symbol indices are assigned in the order files (and fns
/// within a file) are supplied, which the caller keeps sorted — so the
/// numbering is deterministic across runs and thread counts.
#[derive(Debug, Default)]
pub struct Index {
    pub syms: Vec<Symbol>,
    pub by_name: BTreeMap<String, Vec<usize>>,
}

fn stem_of(path: &str) -> &str {
    path.rsplit('/').next().unwrap_or_default().trim_end_matches(".rs")
}

impl Index {
    /// Build from `(file path, fns)` pairs in sorted file order.
    pub fn build<'a>(files: impl Iterator<Item = (&'a str, &'a [FnItem])>) -> Index {
        let mut index = Index::default();
        for (path, fns) in files {
            let stem = stem_of(path).to_string();
            for f in fns {
                let idx = index.syms.len();
                index.by_name.entry(f.name.clone()).or_default().push(idx);
                index.syms.push(Symbol {
                    file: path.to_string(),
                    stem: stem.clone(),
                    name: f.name.clone(),
                    qual: f.qual.clone(),
                    is_pub: f.is_pub,
                    line: f.line,
                    end_line: f.end_line,
                });
            }
        }
        index
    }

    pub fn len(&self) -> usize {
        self.syms.len()
    }

    pub fn is_empty(&self) -> bool {
        self.syms.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::scrub;
    use crate::parse;

    #[test]
    fn index_is_ordered_and_searchable() {
        let a = parse::parse(&scrub("pub fn run() {}\nfn helper() {}\n"));
        let b = parse::parse(&scrub("impl Widget {\n    pub fn run(&self) {}\n}\n"));
        let files = vec![
            ("crates/x/src/alpha.rs", a.fns.as_slice()),
            ("crates/x/src/beta.rs", b.fns.as_slice()),
        ];
        let index = Index::build(files.into_iter());
        assert_eq!(index.len(), 3);
        assert_eq!(index.by_name["run"], vec![0, 2]);
        assert_eq!(index.syms[0].stem, "alpha");
        assert_eq!(index.syms[2].qual, "Widget");
        assert_eq!(index.syms[0].id(), "crates/x/src/alpha.rs::run");
    }
}
