//! The lint gate CLI.
//!
//! ```text
//! lucent-lint [--root <dir>] [--update-baseline] [--json] [--threads <n>] [--verbose]
//! ```
//!
//! Exit status 0 when the tree is clean, 1 on violations, 2 on usage or
//! I/O errors. Run from anywhere inside the workspace; the root is found
//! by walking up to the `[workspace]` manifest.
//!
//! `--json` prints the machine-readable report (schema `lucent-lint/4`)
//! to stdout and nothing else; the bytes are identical across runs and
//! `--threads` values, so CI diffs them against a committed golden.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str =
    "usage: lucent-lint [--root <dir>] [--update-baseline] [--json] [--threads <n>] [--verbose]";

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut update = false;
    let mut verbose = false;
    let mut json = false;
    let mut opts = lucent_devtools::Options::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => return usage("--root needs a directory"),
            },
            "--threads" => match args.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n >= 1 => opts.threads = n,
                _ => return usage("--threads needs a positive integer"),
            },
            "--update-baseline" => update = true,
            "--json" => json = true,
            "--verbose" | "-v" => verbose = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument {other:?}")),
        }
    }

    let root = match root.or_else(|| {
        std::env::current_dir().ok().and_then(|d| lucent_devtools::find_root(&d))
    }) {
        Some(r) => r,
        None => return usage("no workspace root found; pass --root"),
    };

    let result = if update {
        lucent_devtools::update_baseline(&root)
    } else {
        lucent_devtools::run_root_with(&root, &opts)
    };
    let report = match result {
        Ok(r) => r,
        Err(e) => {
            eprintln!("lucent-lint: i/o error: {e}");
            return ExitCode::from(2);
        }
    };

    if json && !update {
        print!("{}", report.to_json());
        return if report.ok() { ExitCode::SUCCESS } else { ExitCode::FAILURE };
    }

    for v in &report.violations {
        println!("{v}");
    }
    if verbose {
        for w in &report.warnings {
            println!("note: {w}");
        }
    }
    if update && report.ok() {
        println!(
            "lucent-lint: baseline rewritten ({} panic sites, {} alloc sites)",
            report.panic_total, report.alloc_total
        );
        return ExitCode::SUCCESS;
    }
    if report.ok() {
        let hot_alloc: usize = report.alloc_reach.values().sum();
        let hot_loop: usize = report.alloc_in_loop.values().sum();
        println!(
            "lucent-lint: clean — {} files, {} fns, {} call edges, {} panic sites within \
             baseline, {}/{} hot-reachable/in-loop alloc sites within baseline, {} note(s)",
            report.files_scanned,
            report.functions,
            report.call_edges,
            report.panic_total,
            hot_alloc,
            hot_loop,
            report.warnings.len()
        );
        ExitCode::SUCCESS
    } else {
        println!("lucent-lint: {} violation(s)", report.violations.len());
        ExitCode::FAILURE
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("lucent-lint: {msg}");
    eprintln!("{USAGE}");
    ExitCode::from(2)
}
