//! L7 panic provenance: attribute every residual panic site to the
//! public experiment entry points that can reach it through the
//! approximate call graph, and ratchet the per-entry counts against
//! the shrink-only `[panic_reach]` baseline in `lint-allow.toml`.
//!
//! Entry points are the functions whose results the paper's tables and
//! figures are built from: every top-level `pub fn` in
//! `crates/core/src/experiments/` (the `run` / `run_isp` / `prepare` /
//! `assemble` family) plus `main` in the `repro` CLI (the subcommand
//! dispatcher). A panic newly reachable from any of them is a panic on
//! a result path — the gate goes red before it can skew a verdict.

use std::collections::BTreeMap;

use crate::allow::Allow;
use crate::callgraph::Graph;
use crate::report::{Rule, Violation};
use crate::symbols::Index;
use crate::ALLOW_FILE;

/// Directory whose top-level `pub fn`s are experiment entry points.
pub const ENTRY_DIR: &str = "crates/core/src/experiments/";
/// The subcommand dispatcher binary; its `main` is an entry point.
pub const ENTRY_BIN: &str = "crates/bench/src/bin/repro.rs";

/// One panic site, attributed to its enclosing function (if any).
#[derive(Debug, Clone)]
pub struct PanicSite {
    pub file: String,
    pub line: usize,
    /// Global symbol index of the smallest enclosing non-test `fn`.
    pub owner: Option<usize>,
}

/// Symbol indices of the experiment entry points, in index order.
pub fn entry_points(index: &Index) -> Vec<usize> {
    index
        .syms
        .iter()
        .enumerate()
        .filter(|(_, s)| {
            (s.file.starts_with(ENTRY_DIR) && s.is_pub && s.qual.is_empty())
                || (s.file == ENTRY_BIN && s.name == "main")
        })
        .map(|(i, _)| i)
        .collect()
}

/// The outcome of the provenance pass.
#[derive(Debug, Default)]
pub struct ReachOutcome {
    pub violations: Vec<Violation>,
    pub warnings: Vec<String>,
    /// Entry id → sorted `file:line` of every reachable panic site.
    /// Entries with nothing reachable are omitted.
    pub reach: BTreeMap<String, Vec<String>>,
}

/// Run the provenance pass and compare against the baseline.
pub fn check_reach(
    index: &Index,
    graph: &Graph,
    sites: &[PanicSite],
    allow: &Allow,
) -> ReachOutcome {
    let mut out = ReachOutcome::default();
    let entries = entry_points(index);
    let mut seen_ids = Vec::new();
    for &entry in &entries {
        let sym = &index.syms[entry];
        let id = sym.id();
        seen_ids.push(id.clone());
        let reachable = graph.reachable(entry);
        let mut hit: Vec<String> = sites
            .iter()
            .filter(|s| s.owner.is_some_and(|o| reachable[o]))
            .map(|s| format!("{}:{}", s.file, s.line))
            .collect();
        hit.sort();
        let count = hit.len();
        let ceiling = allow.reach_ceiling(&id);
        if count > ceiling {
            let mut listed = hit.clone();
            listed.truncate(6);
            out.violations.push(Violation::file(
                Rule::PanicReach,
                &sym.file,
                format!(
                    "`{}`: {count} panic site(s) reachable from this experiment entry point \
                     exceeds the shrink-only baseline of {ceiling} — sites: {}{}",
                    sym.name,
                    listed.join(", "),
                    if count > listed.len() { ", …" } else { "" },
                ),
            ));
        } else if count < ceiling {
            out.warnings.push(format!(
                "{ALLOW_FILE}: [panic_reach] \"{id}\" = {ceiling}, but only {count} site(s) \
                 are reachable — shrink the entry"
            ));
        }
        if count > 0 {
            out.reach.insert(id, hit);
        }
    }
    // Stale baseline entries must go: an id that no longer names an
    // entry point would otherwise rot silently while looking like a
    // live ceiling.
    for id in allow.panic_reach.keys() {
        if !seen_ids.contains(id) {
            out.violations.push(Violation::file(
                Rule::PanicReach,
                ALLOW_FILE,
                format!("stale [panic_reach] entry `{id}` — no such entry point exists; remove it"),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::{self, CallSite};
    use crate::lex::scrub;
    use crate::parse;
    use crate::symbols::Index;

    /// Two-file world: an experiment entry calling a panicking helper,
    /// and an unrelated pub fn that panics but is reached by nothing.
    fn world() -> (Index, Graph, Vec<PanicSite>) {
        let exp_src = "pub fn run_isp(x: Option<u32>) -> u32 { helper(x) }\n\
                       fn helper(x: Option<u32>) -> u32 { x.unwrap() }\n";
        let other_src = "pub fn lonely(x: Option<u32>) -> u32 { x.unwrap() }\n";
        let exp = parse::parse(&scrub(exp_src));
        let other = parse::parse(&scrub(other_src));
        let index = Index::build(
            vec![
                ("crates/core/src/experiments/exp.rs", exp.fns.as_slice()),
                ("crates/web/src/other.rs", other.fns.as_slice()),
            ]
            .into_iter(),
        );
        let s = scrub(exp_src);
        let body = exp.fns[0].body.expect("body");
        let calls: Vec<(usize, CallSite)> = callgraph::calls_in(&s, body.0, body.1)
            .into_iter()
            .map(|c| (0usize, c))
            .collect();
        let graph = Graph::build(&index, calls.iter().map(|(i, c)| (*i, c)));
        let sites = vec![
            PanicSite { file: "crates/core/src/experiments/exp.rs".into(), line: 2, owner: Some(1) },
            PanicSite { file: "crates/web/src/other.rs".into(), line: 1, owner: Some(2) },
        ];
        (index, graph, sites)
    }

    #[test]
    fn entry_points_are_experiment_pub_fns_only() {
        let (index, _, _) = world();
        assert_eq!(entry_points(&index), vec![0], "helper and lonely are not entries");
    }

    #[test]
    fn reach_above_baseline_is_a_violation() {
        let (index, graph, sites) = world();
        let out = check_reach(&index, &graph, &sites, &Allow::default());
        assert_eq!(out.violations.len(), 1, "{:?}", out.violations);
        assert!(out.violations[0].msg.contains("run_isp"), "{}", out.violations[0].msg);
        assert!(out.violations[0].msg.contains("exp.rs:2"), "{}", out.violations[0].msg);
        assert_eq!(
            out.reach["crates/core/src/experiments/exp.rs::run_isp"],
            vec!["crates/core/src/experiments/exp.rs:2"]
        );
    }

    #[test]
    fn reach_at_baseline_is_clean_and_below_warns() {
        let (index, graph, sites) = world();
        let mut allow = Allow::default();
        allow
            .panic_reach
            .insert("crates/core/src/experiments/exp.rs::run_isp".into(), 1);
        let out = check_reach(&index, &graph, &sites, &allow);
        assert!(out.violations.is_empty(), "{:?}", out.violations);
        assert!(out.warnings.is_empty());

        allow
            .panic_reach
            .insert("crates/core/src/experiments/exp.rs::run_isp".into(), 3);
        let out = check_reach(&index, &graph, &sites, &allow);
        assert!(out.violations.is_empty());
        assert_eq!(out.warnings.len(), 1, "{:?}", out.warnings);
        assert!(out.warnings[0].contains("shrink"), "{}", out.warnings[0]);
    }

    #[test]
    fn stale_baseline_entries_are_violations() {
        let (index, graph, sites) = world();
        let mut allow = Allow::default();
        allow.panic_reach.insert("crates/core/src/experiments/gone.rs::run".into(), 2);
        let out = check_reach(&index, &graph, &sites, &allow);
        assert!(
            out.violations.iter().any(|v| v.msg.contains("stale [panic_reach]")),
            "{:?}",
            out.violations
        );
    }
}
