//! L9/L10 allocation provenance: attribute every allocation site to the
//! hot-path roots that can reach it through the approximate call graph,
//! and ratchet the per-root counts against the shrink-only
//! `[alloc_reach]` (L9) and `[alloc_in_loop]` (L10) baselines in
//! `lint-allow.toml`.
//!
//! Unlike L7's entry points (derived from the tree layout), hot roots
//! are *named configuration*: the `[hot_roots]` table lists the
//! `<file>::<fn>` ids of the event-engine hot path — the netsim
//! `Network` step/run family, the middlebox `on_packet`/matcher path,
//! and the `crates/packet` parse fns. A root id naming a function that
//! no longer exists in the symbol index is a violation, same as any
//! other stale allowlist entry: a ceiling guarding nothing must not
//! look live.
//!
//! When one id matches several symbols (two `parse` fns in one file,
//! or a method dispatching to many impls), the root's reach is the BFS
//! *union* — over-approximation keeps the shrink-only ceiling safe.

use std::collections::BTreeMap;

use crate::allow::Allow;
use crate::callgraph::Graph;
use crate::report::{Rule, Violation};
use crate::symbols::Index;
use crate::ALLOW_FILE;

/// One allocation site, attributed to its enclosing function (if any).
#[derive(Debug, Clone)]
pub struct HotSite {
    pub file: String,
    pub line: usize,
    /// Which detector idiom matched (`"clone"`, `"vec!"`, …).
    pub kind: &'static str,
    /// Lexically inside a `loop`/`while`/`for` body.
    pub in_loop: bool,
    /// Global symbol index of the smallest enclosing non-test `fn`.
    pub owner: Option<usize>,
}

/// The outcome of the allocation-provenance pass.
#[derive(Debug, Default)]
pub struct HotAllocOutcome {
    pub violations: Vec<Violation>,
    pub warnings: Vec<String>,
    /// Root id → count of reachable allocation sites (zero omitted).
    pub alloc_reach: BTreeMap<String, usize>,
    /// Root id → count of reachable *in-loop* sites (zero omitted).
    pub alloc_in_loop: BTreeMap<String, usize>,
    /// Crate name → `(reachable, in_loop)` over the union of all hot
    /// roots: the per-crate hot-path allocation census.
    pub census: BTreeMap<String, (usize, usize)>,
}

/// Reachable allocation counts for one root: `(total, in_loop, sites)`
/// with `sites` as sorted `file:line (kind)` strings.
fn root_reach(
    index: &Index,
    graph: &Graph,
    sites: &[HotSite],
    root: &str,
) -> Option<(usize, usize, Vec<String>, Vec<bool>)> {
    let matches: Vec<usize> =
        (0..index.syms.len()).filter(|&i| index.syms[i].id() == root).collect();
    if matches.is_empty() {
        return None;
    }
    let mut reachable = vec![false; index.len()];
    for m in matches {
        for (i, r) in graph.reachable(m).into_iter().enumerate() {
            reachable[i] = reachable[i] || r;
        }
    }
    let mut hit: Vec<(&HotSite, String)> = sites
        .iter()
        .filter(|s| s.owner.is_some_and(|o| reachable[o]))
        .map(|s| (s, format!("{}:{} ({})", s.file, s.line, s.kind)))
        .collect();
    hit.sort_by(|a, b| a.1.cmp(&b.1));
    let in_loop = hit.iter().filter(|(s, _)| s.in_loop).count();
    let listed = hit.iter().map(|(_, t)| t.clone()).collect();
    Some((hit.len(), in_loop, listed, reachable))
}

/// Current `(reachable, in_loop)` counts per hot root, plus the roots
/// that no longer resolve in the symbol index — `--update-baseline`
/// input. Roots with zero reachable sites are omitted from the counts,
/// matching the check's "omit zero entries" convention.
pub fn root_counts(
    index: &Index,
    graph: &Graph,
    sites: &[HotSite],
    roots: &[String],
) -> (BTreeMap<String, (usize, usize)>, Vec<String>) {
    let mut counts = BTreeMap::new();
    let mut stale = Vec::new();
    for root in roots {
        match root_reach(index, graph, sites, root) {
            Some((count, in_loop, _, _)) if count > 0 => {
                counts.insert(root.clone(), (count, in_loop));
            }
            Some(_) => {}
            None => stale.push(root.clone()),
        }
    }
    (counts, stale)
}

/// Run the allocation-provenance pass and compare against the baseline.
pub fn check_hot_alloc(
    index: &Index,
    graph: &Graph,
    sites: &[HotSite],
    allow: &Allow,
) -> HotAllocOutcome {
    let mut out = HotAllocOutcome::default();
    let mut union = vec![false; index.len()];
    for root in &allow.hot_roots {
        let Some((count, in_loop, listed, reachable)) = root_reach(index, graph, sites, root)
        else {
            out.violations.push(Violation::file(
                Rule::AllocReach,
                ALLOW_FILE,
                format!(
                    "stale [hot_roots] entry `{root}` — no such function in the symbol index; \
                     remove it"
                ),
            ));
            continue;
        };
        for (i, r) in reachable.into_iter().enumerate() {
            union[i] = union[i] || r;
        }
        let file = root.split("::").next().unwrap_or(root);
        let ceiling = allow.alloc_reach_ceiling(root);
        if count > ceiling {
            let mut shown = listed.clone();
            shown.truncate(6);
            out.violations.push(Violation::file(
                Rule::AllocReach,
                file,
                format!(
                    "`{root}`: {count} allocation site(s) reachable from this hot root exceeds \
                     the shrink-only baseline of {ceiling} — sites: {}{}",
                    shown.join(", "),
                    if count > shown.len() { ", …" } else { "" },
                ),
            ));
        } else if count < ceiling {
            out.warnings.push(format!(
                "{ALLOW_FILE}: [alloc_reach] \"{root}\" = {ceiling}, but only {count} site(s) \
                 are reachable — shrink the entry"
            ));
        }
        let loop_ceiling = allow.alloc_in_loop_ceiling(root);
        if in_loop > loop_ceiling {
            let mut shown: Vec<String> = sites
                .iter()
                .filter(|s| s.in_loop)
                .map(|s| format!("{}:{} ({})", s.file, s.line, s.kind))
                .filter(|t| listed.contains(t))
                .collect();
            shown.sort();
            shown.truncate(6);
            out.violations.push(Violation::file(
                Rule::AllocInLoop,
                file,
                format!(
                    "`{root}`: {in_loop} per-event (in-loop) allocation site(s) reachable from \
                     this hot root exceeds the shrink-only baseline of {loop_ceiling} — \
                     sites: {}{}",
                    shown.join(", "),
                    if in_loop > shown.len() { ", …" } else { "" },
                ),
            ));
        } else if in_loop < loop_ceiling {
            out.warnings.push(format!(
                "{ALLOW_FILE}: [alloc_in_loop] \"{root}\" = {loop_ceiling}, but only {in_loop} \
                 site(s) are reachable — shrink the entry"
            ));
        }
        if count > 0 {
            out.alloc_reach.insert(root.clone(), count);
        }
        if in_loop > 0 {
            out.alloc_in_loop.insert(root.clone(), in_loop);
        }
    }
    // Stale ceiling entries: an id in a generated table that is not a
    // configured hot root would never be checked — promote to red.
    for (section, table) in
        [("alloc_reach", &allow.alloc_reach), ("alloc_in_loop", &allow.alloc_in_loop)]
    {
        for id in table.keys() {
            if !allow.hot_roots.contains(id) {
                out.violations.push(Violation::file(
                    Rule::AllocReach,
                    ALLOW_FILE,
                    format!(
                        "stale [{section}] entry `{id}` — not a [hot_roots] entry; remove it"
                    ),
                ));
            }
        }
    }
    // Census: union-reachable sites bucketed by crate.
    for s in sites {
        if !s.owner.is_some_and(|o| union[o]) {
            continue;
        }
        let krate = s
            .file
            .strip_prefix("crates/")
            .and_then(|r| r.split('/').next())
            .unwrap_or("(root)")
            .to_string();
        let e = out.census.entry(krate).or_insert((0, 0));
        e.0 += 1;
        if s.in_loop {
            e.1 += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::{self, CallSite};
    use crate::lex::scrub;
    use crate::parse;
    use crate::symbols::Index;

    /// Two-file world: a hot `step` fn calling a helper that allocates
    /// in a loop, and a cold fn allocating on its own.
    fn world() -> (Index, Graph, Vec<HotSite>) {
        let hot_src = "pub fn step(xs: &[u8]) { handle(xs) }\n\
                       fn handle(xs: &[u8]) {\n\
                           let setup = Vec::new();\n\
                           for x in xs { let c = x.clone(); }\n\
                       }\n";
        let cold_src = "pub fn cold() -> Vec<u8> { vec![1, 2, 3] }\n";
        let hot = parse::parse(&scrub(hot_src));
        let cold = parse::parse(&scrub(cold_src));
        let index = Index::build(
            vec![
                ("crates/netsim/src/engine.rs", hot.fns.as_slice()),
                ("crates/web/src/cold.rs", cold.fns.as_slice()),
            ]
            .into_iter(),
        );
        let s = scrub(hot_src);
        let body = hot.fns[0].body.expect("body");
        let calls: Vec<(usize, CallSite)> = callgraph::calls_in(&s, body.0, body.1)
            .into_iter()
            .map(|c| (0usize, c))
            .collect();
        let graph = Graph::build(&index, calls.iter().map(|(i, c)| (*i, c)));
        let sites = vec![
            HotSite {
                file: "crates/netsim/src/engine.rs".into(),
                line: 3,
                kind: "Vec::new",
                in_loop: false,
                owner: Some(1),
            },
            HotSite {
                file: "crates/netsim/src/engine.rs".into(),
                line: 4,
                kind: "clone",
                in_loop: true,
                owner: Some(1),
            },
            HotSite {
                file: "crates/web/src/cold.rs".into(),
                line: 1,
                kind: "vec!",
                in_loop: false,
                owner: Some(2),
            },
        ];
        (index, graph, sites)
    }

    fn root_allow() -> Allow {
        let mut a = Allow::default();
        a.hot_roots.push("crates/netsim/src/engine.rs::step".into());
        a
    }

    #[test]
    fn reach_above_baseline_fires_l9_and_l10() {
        let (index, graph, sites) = world();
        let out = check_hot_alloc(&index, &graph, &sites, &root_allow());
        let l9: Vec<_> =
            out.violations.iter().filter(|v| v.rule == Rule::AllocReach).collect();
        let l10: Vec<_> =
            out.violations.iter().filter(|v| v.rule == Rule::AllocInLoop).collect();
        assert_eq!(l9.len(), 1, "{:?}", out.violations);
        assert_eq!(l10.len(), 1, "{:?}", out.violations);
        assert!(l9[0].msg.contains("engine.rs:3 (Vec::new)"), "{}", l9[0].msg);
        assert!(l9[0].msg.contains("engine.rs:4 (clone)"), "{}", l9[0].msg);
        assert!(l10[0].msg.contains("engine.rs:4 (clone)"), "{}", l10[0].msg);
        assert!(!l9[0].msg.contains("cold.rs"), "cold fn is not hot-reachable: {}", l9[0].msg);
        assert_eq!(out.alloc_reach["crates/netsim/src/engine.rs::step"], 2);
        assert_eq!(out.alloc_in_loop["crates/netsim/src/engine.rs::step"], 1);
        assert_eq!(out.census["netsim"], (2, 1));
        assert!(!out.census.contains_key("web"));
    }

    #[test]
    fn reach_at_baseline_is_clean_and_below_warns() {
        let (index, graph, sites) = world();
        let mut allow = root_allow();
        allow.alloc_reach.insert("crates/netsim/src/engine.rs::step".into(), 2);
        allow.alloc_in_loop.insert("crates/netsim/src/engine.rs::step".into(), 1);
        let out = check_hot_alloc(&index, &graph, &sites, &allow);
        assert!(out.violations.is_empty(), "{:?}", out.violations);
        assert!(out.warnings.is_empty(), "{:?}", out.warnings);

        allow.alloc_reach.insert("crates/netsim/src/engine.rs::step".into(), 5);
        allow.alloc_in_loop.insert("crates/netsim/src/engine.rs::step".into(), 3);
        let out = check_hot_alloc(&index, &graph, &sites, &allow);
        assert!(out.violations.is_empty(), "{:?}", out.violations);
        assert_eq!(out.warnings.len(), 2, "{:?}", out.warnings);
        assert!(out.warnings.iter().all(|w| w.contains("shrink")), "{:?}", out.warnings);
    }

    #[test]
    fn a_stale_hot_root_is_a_violation() {
        let (index, graph, sites) = world();
        let mut allow = Allow::default();
        allow.hot_roots.push("crates/netsim/src/engine.rs::gone".into());
        let out = check_hot_alloc(&index, &graph, &sites, &allow);
        assert_eq!(out.violations.len(), 1, "{:?}", out.violations);
        assert!(out.violations[0].msg.contains("stale [hot_roots]"), "{}", out.violations[0].msg);
    }

    #[test]
    fn stale_generated_entries_are_violations() {
        let (index, graph, sites) = world();
        let mut allow = root_allow();
        allow.alloc_reach.insert("crates/netsim/src/engine.rs::step".into(), 2);
        allow.alloc_in_loop.insert("crates/netsim/src/engine.rs::step".into(), 1);
        allow.alloc_reach.insert("crates/web/src/cold.rs::cold".into(), 1);
        let out = check_hot_alloc(&index, &graph, &sites, &allow);
        assert_eq!(out.violations.len(), 1, "{:?}", out.violations);
        assert!(
            out.violations[0].msg.contains("stale [alloc_reach] entry `crates/web/src/cold.rs::cold`"),
            "{}",
            out.violations[0].msg
        );
    }

    #[test]
    fn a_root_matching_multiple_symbols_unions_their_reach() {
        // Two fns named `parse` in one file — the root id matches both;
        // the reach must cover sites owned by either.
        let src = "pub fn parse(a: u8) { let v = Vec::new(); }\n\
                   pub fn parse(b: u16) { let w = vec![0]; }\n";
        let parsed = parse::parse(&scrub(src));
        let index =
            Index::build(vec![("crates/packet/src/http.rs", parsed.fns.as_slice())].into_iter());
        let graph = Graph::build(&index, Vec::<(usize, &CallSite)>::new().into_iter());
        let sites = vec![
            HotSite {
                file: "crates/packet/src/http.rs".into(),
                line: 1,
                kind: "Vec::new",
                in_loop: false,
                owner: Some(0),
            },
            HotSite {
                file: "crates/packet/src/http.rs".into(),
                line: 2,
                kind: "vec!",
                in_loop: false,
                owner: Some(1),
            },
        ];
        let mut allow = Allow::default();
        allow.hot_roots.push("crates/packet/src/http.rs::parse".into());
        let out = check_hot_alloc(&index, &graph, &sites, &allow);
        assert_eq!(out.alloc_reach["crates/packet/src/http.rs::parse"], 2);
    }
}
