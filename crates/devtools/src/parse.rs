//! A brace-tree item parser over *scrubbed* source (see [`crate::lex`]):
//! `fn` / `impl` / `mod` / `use` items with line spans and body byte
//! ranges. This is the substrate the workspace symbol index
//! ([`crate::symbols`]) and the approximate call graph
//! ([`crate::callgraph`]) are built on.
//!
//! The parser is total: any byte soup yields a (possibly empty) item
//! list and never panics — unbalanced braces simply close at
//! end-of-file. Because it only ever sees scrubbed text, comments and
//! literals can neither fabricate nor hide an item.

/// One `fn` item. `qual` is the enclosing context within the file —
/// module names and impl self-types joined with `::` (e.g. `Parser`
/// for a method, `detail::Parser` for a method in a nested module, and
/// the empty string for a top-level free function).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnItem {
    pub name: String,
    pub qual: String,
    pub is_pub: bool,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// 1-based line of the closing brace (equals `line` for bodyless
    /// trait-method declarations).
    pub end_line: usize,
    /// Byte range of the body interior in the scrubbed text, exclusive
    /// of the braces; `None` for bodyless declarations.
    pub body: Option<(usize, usize)>,
}

/// One `use` item, whitespace squeezed out of the path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UseItem {
    pub path: String,
    pub line: usize,
}

/// Everything the item parser extracts from one file.
#[derive(Debug, Default)]
pub struct ParsedFile {
    pub fns: Vec<FnItem>,
    pub uses: Vec<UseItem>,
}

enum Scope {
    Block,
    Mod(String),
    Impl(String),
    Fn(usize),
}

enum ItemEnd {
    /// Opening `{` of the body at this byte.
    Body(usize),
    /// Terminating `;` at this byte.
    Semi(usize),
    /// A stray `}` at this byte — the enclosing scope is closing; do
    /// not consume it.
    Stop(usize),
    Eof,
}

fn is_ident(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_' || c >= 0x80
}

/// Next token at or after `i`: `(start, end, is_ident)`. Identifiers
/// are maximal ident-byte runs; everything else is a single byte.
pub(crate) fn next_token(b: &[u8], mut i: usize) -> Option<(usize, usize, bool)> {
    while i < b.len() && (b[i] as char).is_whitespace() {
        i += 1;
    }
    if i >= b.len() {
        return None;
    }
    if is_ident(b[i]) && !b[i].is_ascii_digit() {
        let start = i;
        while i < b.len() && is_ident(b[i]) {
            i += 1;
        }
        Some((start, i, true))
    } else {
        Some((i, i + 1, false))
    }
}

/// Byte offsets of line starts; `line_of` maps a byte offset to its
/// 1-based line.
pub(crate) fn line_starts(s: &str) -> Vec<usize> {
    let mut starts = vec![0];
    for (i, c) in s.bytes().enumerate() {
        if c == b'\n' {
            starts.push(i + 1);
        }
    }
    starts
}

pub(crate) fn line_of(starts: &[usize], off: usize) -> usize {
    starts.partition_point(|&s| s <= off)
}

/// Scan forward from an item header for its body `{`, a terminating
/// `;`, or a scope-closing `}` — at zero paren/bracket depth, so
/// `fn f(x: [u8; 3])` does not end at the array-length semicolon.
fn scan_item_end(b: &[u8], from: usize) -> ItemEnd {
    let mut depth = 0usize;
    let mut j = from;
    while j < b.len() {
        match b[j] {
            b'(' | b'[' => depth += 1,
            b')' | b']' => depth = depth.saturating_sub(1),
            b'{' if depth == 0 => return ItemEnd::Body(j),
            b';' if depth == 0 => return ItemEnd::Semi(j),
            b'}' if depth == 0 => return ItemEnd::Stop(j),
            _ => {}
        }
        j += 1;
    }
    ItemEnd::Eof
}

/// The self-type of an `impl` header: `impl<T> Wrapper<T>` → `Wrapper`,
/// `impl fmt::Display for Report` → `Report`.
fn self_type(header: &str) -> String {
    let mut h = header.trim();
    if let Some(rest) = h.strip_prefix('<') {
        // Skip the generic-parameter list.
        let mut depth = 1usize;
        let mut end = rest.len();
        for (k, c) in rest.char_indices() {
            match c {
                '<' => depth += 1,
                '>' => {
                    depth -= 1;
                    if depth == 0 {
                        end = k + 1;
                        break;
                    }
                }
                _ => {}
            }
        }
        h = rest[end.min(rest.len())..].trim();
    }
    let h = match h.rfind(" for ") {
        Some(p) => &h[p + 5..],
        None => h,
    };
    let h = h.trim().trim_start_matches("dyn ").trim_start_matches('&').trim_start_matches("mut ");
    let h = h.split(" where ").next().unwrap_or_default();
    let h = h.split('<').next().unwrap_or_default();
    h.trim().rsplit("::").next().unwrap_or_default().trim().to_string()
}

fn qual_of(stack: &[Scope]) -> String {
    let parts: Vec<&str> = stack
        .iter()
        .filter_map(|s| match s {
            Scope::Mod(n) | Scope::Impl(n) => Some(n.as_str()),
            _ => None,
        })
        .collect();
    parts.join("::")
}

fn close_fn(fns: &mut [FnItem], idx: usize, pos: usize, starts: &[usize]) {
    if let Some(body) = &mut fns[idx].body {
        body.1 = pos.max(body.0);
    }
    fns[idx].end_line = line_of(starts, pos);
}

/// Parse one scrubbed file into its item list.
pub fn parse(scrubbed: &str) -> ParsedFile {
    let b = scrubbed.as_bytes();
    let starts = line_starts(scrubbed);
    let mut out = ParsedFile::default();
    let mut stack: Vec<Scope> = Vec::new();
    // Tokens since the last statement boundary (`;`, `{`, `}`) — just
    // enough context to see a `pub` / `pub(crate)` ahead of `fn`.
    let mut recent: Vec<String> = Vec::new();
    let mut i = 0usize;
    while let Some((s, e, ident)) = next_token(b, i) {
        let text = &scrubbed[s..e];
        i = e;
        if !ident {
            match b[s] {
                b'{' => {
                    stack.push(Scope::Block);
                    recent.clear();
                }
                b'}' => {
                    if let Some(Scope::Fn(idx)) = stack.pop() {
                        close_fn(&mut out.fns, idx, s, &starts);
                    }
                    recent.clear();
                }
                b';' => recent.clear(),
                _ => {
                    if recent.len() < 8 {
                        recent.push(text.to_string());
                    }
                }
            }
            continue;
        }
        match text {
            "mod" => {
                if let Some((ns, ne, true)) = next_token(b, i) {
                    let name = scrubbed[ns..ne].to_string();
                    match scan_item_end(b, ne) {
                        ItemEnd::Body(p) => {
                            stack.push(Scope::Mod(name));
                            i = p + 1;
                        }
                        ItemEnd::Semi(p) => i = p + 1,
                        ItemEnd::Stop(p) => i = p,
                        ItemEnd::Eof => i = b.len(),
                    }
                    recent.clear();
                }
            }
            "impl" => {
                match scan_item_end(b, i) {
                    ItemEnd::Body(p) => {
                        stack.push(Scope::Impl(self_type(&scrubbed[i..p])));
                        i = p + 1;
                    }
                    ItemEnd::Semi(p) => i = p + 1,
                    ItemEnd::Stop(p) => i = p,
                    ItemEnd::Eof => i = b.len(),
                }
                recent.clear();
            }
            "fn" => {
                // `fn` immediately followed by `(` is a fn-pointer
                // type, not an item.
                let Some((ns, ne, true)) = next_token(b, i) else {
                    recent.clear();
                    continue;
                };
                let name = scrubbed[ns..ne].to_string();
                let is_pub = recent.iter().any(|t| t == "pub");
                let line = line_of(&starts, s);
                let item = FnItem { name, qual: qual_of(&stack), is_pub, line, end_line: line, body: None };
                match scan_item_end(b, ne) {
                    ItemEnd::Body(p) => {
                        let idx = out.fns.len();
                        out.fns.push(FnItem { body: Some((p + 1, b.len())), ..item });
                        stack.push(Scope::Fn(idx));
                        i = p + 1;
                    }
                    ItemEnd::Semi(p) => {
                        out.fns.push(item);
                        i = p + 1;
                    }
                    ItemEnd::Stop(p) => {
                        out.fns.push(item);
                        i = p;
                    }
                    ItemEnd::Eof => {
                        out.fns.push(item);
                        i = b.len();
                    }
                }
                recent.clear();
            }
            "use" => {
                let mut end = i;
                while end < b.len() && b[end] != b';' {
                    end += 1;
                }
                let path: String =
                    scrubbed[i..end].chars().filter(|c| !c.is_whitespace()).collect();
                out.uses.push(UseItem { path, line: line_of(&starts, s) });
                i = (end + 1).min(b.len());
                recent.clear();
            }
            _ => {
                if recent.len() < 8 {
                    recent.push(text.to_string());
                }
            }
        }
    }
    // Unbalanced braces close at EOF; clamp to the last real byte so
    // end_line never points past a trailing newline.
    let eof = b.len().saturating_sub(1);
    while let Some(scope) = stack.pop() {
        if let Scope::Fn(idx) = scope {
            close_fn(&mut out.fns, idx, eof, &starts);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::scrub;

    fn parsed(src: &str) -> ParsedFile {
        parse(&scrub(src))
    }

    #[test]
    fn free_functions_methods_and_modules_get_quals() {
        let src = "pub fn top() { helper(); }\n\
                   fn helper() {}\n\
                   mod inner {\n    pub fn nested() {}\n}\n\
                   impl Widget {\n    pub fn method(&self) {}\n}\n";
        let p = parsed(src);
        let names: Vec<(&str, &str, bool)> =
            p.fns.iter().map(|f| (f.name.as_str(), f.qual.as_str(), f.is_pub)).collect();
        assert_eq!(
            names,
            vec![
                ("top", "", true),
                ("helper", "", false),
                ("nested", "inner", true),
                ("method", "Widget", true),
            ]
        );
        assert_eq!(p.fns[0].line, 1);
        assert_eq!(p.fns[0].end_line, 1);
    }

    #[test]
    fn trait_impls_use_the_self_type() {
        let src = "impl fmt::Display for Report {\n    fn fmt(&self) {}\n}\n\
                   impl<T: Clone> Wrapper<T> {\n    fn get(&self) {}\n}\n";
        let p = parsed(src);
        assert_eq!(p.fns[0].qual, "Report");
        assert_eq!(p.fns[1].qual, "Wrapper");
    }

    #[test]
    fn fn_pointer_types_and_trait_decls_are_not_bodies() {
        let src = "pub type Oracle = (&'static str, fn(&mut Source));\n\
                   trait T {\n    fn required(&self) -> u8;\n}\n";
        let p = parsed(src);
        assert_eq!(p.fns.len(), 1);
        assert_eq!(p.fns[0].name, "required");
        assert!(p.fns[0].body.is_none());
    }

    #[test]
    fn array_length_semicolons_do_not_end_the_header() {
        let p = parsed("fn f(x: [u8; 3]) -> u8 { x[0] }\n");
        assert_eq!(p.fns.len(), 1);
        assert!(p.fns[0].body.is_some());
    }

    #[test]
    fn body_spans_cover_multiline_bodies() {
        let src = "fn f() {\n    let x = 1;\n    g(x)\n}\nfn g(x: u8) -> u8 { x }\n";
        let p = parsed(src);
        assert_eq!((p.fns[0].line, p.fns[0].end_line), (1, 4));
        assert_eq!((p.fns[1].line, p.fns[1].end_line), (5, 5));
        let (lo, hi) = p.fns[0].body.expect("body");
        assert!(src[lo..hi].contains("g(x)"));
    }

    #[test]
    fn use_items_capture_squeezed_paths() {
        let p = parsed("use std::collections::{\n    BTreeMap,\n    BTreeSet,\n};\n");
        assert_eq!(p.uses.len(), 1);
        assert_eq!(p.uses[0].path, "std::collections::{BTreeMap,BTreeSet,}");
    }

    #[test]
    fn pub_from_a_previous_item_does_not_leak() {
        let p = parsed("pub use x::y;\nfn f() {}\n");
        assert!(!p.fns[0].is_pub);
        let p = parsed("pub(crate) fn g() {}\n");
        assert!(p.fns[0].is_pub);
    }

    #[test]
    fn unbalanced_braces_close_at_eof() {
        let p = parsed("fn f() {\n    let x = 1;\n");
        assert_eq!(p.fns.len(), 1);
        assert_eq!(p.fns[0].end_line, 2);
        // Stray closers never panic either.
        let p = parsed("}}} fn g() {}\n");
        assert_eq!(p.fns.len(), 1);
    }
}
