//! A deliberately small TOML subset parser — just enough for the
//! workspace's own `Cargo.toml` manifests and `lint-allow.toml`.
//!
//! Supported: `[section]` and `[dotted.section]` headers, `key = value`
//! with string / integer / boolean / array-of-string / inline-table
//! values, comments, and bare or quoted keys. Anything else is a parse
//! error — the gate would rather fail loudly than misread a manifest.

use std::collections::BTreeMap;

/// A parsed value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Str(String),
    Int(i64),
    Bool(bool),
    /// Array of strings (the only array shape our files use).
    Array(Vec<String>),
    /// Inline table `{ key = value, … }` with scalar values.
    Table(BTreeMap<String, Value>),
}

impl Value {
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_table(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Table(t) => Some(t),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[String]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }
}

/// A parsed document: section name → ordered key/value pairs. Keys
/// assigned before any header land in the `""` section. A header like
/// `[dependencies.lucent-dns]` keeps its dotted name verbatim.
#[derive(Debug, Default)]
pub struct Doc {
    pub sections: BTreeMap<String, Vec<(String, Value)>>,
    /// Section names in file order (sections can repeat in arrays of
    /// tables; we append `#n` to disambiguate `[[table]]` repeats).
    pub order: Vec<String>,
}

impl Doc {
    pub fn section(&self, name: &str) -> &[(String, Value)] {
        self.sections.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    pub fn get(&self, section: &str, key: &str) -> Option<&Value> {
        self.section(section).iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

/// Parse a document. Errors carry the 1-based line number.
pub fn parse(text: &str) -> Result<Doc, String> {
    let mut doc = Doc::default();
    let mut current = String::new();
    let mut seen_arrays: BTreeMap<String, usize> = BTreeMap::new();
    doc.sections.entry(current.clone()).or_default();
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(name) = line.strip_prefix("[[").and_then(|r| r.strip_suffix("]]")) {
            let n = seen_arrays.entry(name.to_string()).or_insert(0);
            current = format!("{name}#{n}");
            *n += 1;
            doc.order.push(current.clone());
            doc.sections.entry(current.clone()).or_default();
        } else if let Some(name) = line.strip_prefix('[').and_then(|r| r.strip_suffix(']')) {
            current = name.trim().to_string();
            doc.order.push(current.clone());
            doc.sections.entry(current.clone()).or_default();
        } else if let Some(eq) = find_eq(line) {
            let key = unquote(line[..eq].trim());
            let value = parse_value(line[eq + 1..].trim())
                .map_err(|e| format!("line {lineno}: {e}"))?;
            doc.sections.entry(current.clone()).or_default().push((key, value));
        } else {
            return Err(format!("line {lineno}: not a section, key, or comment: {line:?}"));
        }
    }
    Ok(doc)
}

/// Strip a `#` comment, respecting quoted strings.
fn strip_comment(line: &str) -> &str {
    let b = line.as_bytes();
    let mut in_str = false;
    for (i, &c) in b.iter().enumerate() {
        match c {
            b'"' => in_str = !in_str,
            b'#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Position of the first `=` outside quotes.
fn find_eq(line: &str) -> Option<usize> {
    let mut in_str = false;
    for (i, c) in line.bytes().enumerate() {
        match c {
            b'"' => in_str = !in_str,
            b'=' if !in_str => return Some(i),
            _ => {}
        }
    }
    None
}

fn unquote(s: &str) -> String {
    s.strip_prefix('"')
        .and_then(|r| r.strip_suffix('"'))
        .unwrap_or(s)
        .to_string()
}

fn parse_value(s: &str) -> Result<Value, String> {
    if s == "true" {
        return Ok(Value::Bool(true));
    }
    if s == "false" {
        return Ok(Value::Bool(false));
    }
    if let Some(body) = s.strip_prefix('"') {
        let inner = body.strip_suffix('"').ok_or_else(|| format!("unterminated string: {s}"))?;
        return Ok(Value::Str(inner.to_string()));
    }
    if let Some(body) = s.strip_prefix('[') {
        let inner = body.strip_suffix(']').ok_or_else(|| {
            format!("multi-line arrays are not supported by the subset parser: {s}")
        })?;
        let mut items = Vec::new();
        for part in split_top(inner) {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            match parse_value(part)? {
                Value::Str(v) => items.push(v),
                other => return Err(format!("non-string array element: {other:?}")),
            }
        }
        return Ok(Value::Array(items));
    }
    if let Some(body) = s.strip_prefix('{') {
        let inner = body
            .strip_suffix('}')
            .ok_or_else(|| format!("unterminated inline table: {s}"))?;
        let mut table = BTreeMap::new();
        for part in split_top(inner) {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let eq = find_eq(part).ok_or_else(|| format!("bad inline entry: {part}"))?;
            let key = unquote(part[..eq].trim());
            table.insert(key, parse_value(part[eq + 1..].trim())?);
        }
        return Ok(Value::Table(table));
    }
    if let Ok(n) = s.parse::<i64>() {
        return Ok(Value::Int(n));
    }
    Err(format!("unsupported value: {s}"))
}

/// Split on top-level commas (not inside quotes or nested braces).
fn split_top(s: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let (mut depth, mut in_str, mut start) = (0i32, false, 0usize);
    for (i, c) in s.bytes().enumerate() {
        match c {
            b'"' => in_str = !in_str,
            b'{' | b'[' if !in_str => depth += 1,
            b'}' | b']' if !in_str => depth -= 1,
            b',' if !in_str && depth == 0 => {
                parts.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    parts.push(&s[start..]);
    parts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_manifest_shape() {
        let doc = parse(
            r#"
[package]
name = "lucent-web" # trailing comment
edition.workspace = true

[dependencies]
lucent-packet = { workspace = true }
lucent-netsim = { path = "../netsim" }

[dependencies.lucent-dns]
workspace = true
"#,
        )
        .expect("parse");
        assert_eq!(doc.get("package", "name").and_then(Value::as_str), Some("lucent-web"));
        let dep = doc.get("dependencies", "lucent-packet").and_then(Value::as_table).unwrap();
        assert_eq!(dep.get("workspace"), Some(&Value::Bool(true)));
        assert_eq!(doc.get("dependencies.lucent-dns", "workspace"), Some(&Value::Bool(true)));
    }

    #[test]
    fn parses_allowlist_shapes() {
        let doc = parse(
            r#"
[panic_sites]
"crates/packet/src/dns.rs" = 12

[rng_construction]
files = ["crates/netsim/src/time.rs", "crates/web/src/corpus.rs"]
"#,
        )
        .expect("parse");
        assert_eq!(
            doc.get("panic_sites", "crates/packet/src/dns.rs").and_then(Value::as_int),
            Some(12)
        );
        assert_eq!(
            doc.get("rng_construction", "files").and_then(Value::as_array).map(<[String]>::len),
            Some(2)
        );
    }

    #[test]
    fn array_of_tables_gets_distinct_sections() {
        let doc = parse("[[test]]\nname = \"a\"\n[[test]]\nname = \"b\"\n").expect("parse");
        assert_eq!(doc.get("test#0", "name").and_then(Value::as_str), Some("a"));
        assert_eq!(doc.get("test#1", "name").and_then(Value::as_str), Some("b"));
    }

    #[test]
    fn bad_lines_are_rejected_with_line_numbers() {
        let err = parse("[a]\nnot a kv\n").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        assert!(parse("k = 1.5\n").is_err(), "floats are out of subset");
    }
}
