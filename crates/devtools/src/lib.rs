//! `lucent-devtools`: in-tree static analysis for the lucent workspace.
//!
//! The `lucent-lint` binary (and the `run_root` library entry point the
//! tier-1 gate calls) enforces six rule families:
//!
//! - **L1 hermeticity** — every dependency is a path dependency; the
//!   workspace builds with the network unplugged.
//! - **L2 layering** — crate dependencies respect the layer DAG
//!   `packet → netsim → tcp → dns → {web, middlebox} → topology →
//!   core → bench`, with `support` underneath everything.
//! - **L3 determinism** — no wall clocks outside the bench stopwatch, no
//!   entropy-seeded randomness, no hash-ordered collections, and RNG
//!   construction only in allowlisted seed-plumbing files.
//! - **L4 panic budget** — panic sites (`unwrap`/`expect`/`panic!`/
//!   `unreachable!`) in non-test code are capped per file by the
//!   shrink-only `lint-allow.toml` baseline.
//! - **L5 unsafe hygiene** — every `unsafe` carries a `// SAFETY:`
//!   justification (most crates simply `#![forbid(unsafe_code)]`).
//! - **L6 print hygiene** — no `println!`/`eprintln!` in non-test library
//!   code outside the sanctioned sinks (the bench stopwatch, the `repro`
//!   CLI, the lint CLI, and the `lucent-check` campaign reporter with
//!   its `fuzz-smoke` binary); diagnostics go through `lucent-obs`.
//!
//! The lint is dependency-free by construction: it ships its own Rust
//! scrubbing lexer and a TOML subset parser, so the gate itself cannot
//! violate L1.

#![forbid(unsafe_code)]

pub mod allow;
pub mod lex;
pub mod manifest;
pub mod report;
pub mod source;
pub mod toml;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use allow::Allow;
use report::{Report, Rule, Violation};
use source::{Lexed, SourceFile};

/// Name of the allowlist file at the workspace root.
pub const ALLOW_FILE: &str = "lint-allow.toml";

/// Run the whole gate against a workspace root. I/O errors (an
/// unreadable tree) surface as `Err`; rule findings land in the report.
pub fn run_root(root: &Path) -> io::Result<Report> {
    let mut report = Report::default();

    let allow = match fs::read_to_string(root.join(ALLOW_FILE)) {
        Ok(text) => match Allow::parse(&text) {
            Ok(a) => a,
            Err(e) => {
                report.violations.push(Violation::file(
                    Rule::PanicBudget,
                    ALLOW_FILE,
                    format!("unparseable allowlist: {e}"),
                ));
                Allow::default()
            }
        },
        Err(_) => {
            report.warnings.push(format!("{ALLOW_FILE} missing — all ceilings default to zero"));
            Allow::default()
        }
    };

    // L1 + L2 over the root and member manifests.
    let root_doc = parse_manifest(root, "Cargo.toml", &mut report);
    let workspace_path_deps = match &root_doc {
        Some(doc) => {
            let (v, names) = manifest::check_workspace_deps(doc);
            report.merge(v);
            names
        }
        None => Vec::new(),
    };
    for rel in member_manifests(root)? {
        if let Some(doc) = parse_manifest(root, &rel, &mut report) {
            let m = manifest::extract(&doc, &rel);
            report.merge(manifest::check_hermetic(&m, &workspace_path_deps));
            report.merge(manifest::check_layering(&m));
        }
    }

    // L3–L5 over library source trees; L5 additionally over test and
    // bench code (unsafe needs a justification wherever it appears).
    for rel in rust_sources(root)? {
        let text = fs::read_to_string(root.join(&rel))?;
        let file = SourceFile { path: &rel, text: &text };
        let lexed = Lexed::new(&text);
        report.files_scanned += 1;
        if in_library_tree(&rel) {
            report.merge(source::check_determinism(&file, &lexed, &allow));
            report.merge(source::check_print_hygiene(&file, &lexed));
            let (v, count) = source::check_panic_budget(&file, &lexed, &allow);
            report.merge(v);
            report.panic_total += count;
            if count < allow.panic_ceiling(&rel) {
                report.warnings.push(format!(
                    "{rel}: {count} panic site(s), baseline {} — shrink the entry",
                    allow.panic_ceiling(&rel)
                ));
            }
        }
        report.merge(source::check_unsafe(&file, &lexed));
    }

    // Baseline hygiene: entries for files that no longer exist must go.
    for path in allow.panic_sites.keys() {
        if !root.join(path).is_file() {
            report.warnings.push(format!("{ALLOW_FILE}: stale entry for missing file {path}"));
        }
    }

    report.violations.sort();
    Ok(report)
}

/// Rewrite `lint-allow.toml` with current panic counts. Ceilings only
/// ever move down: an attempt to raise one is reported as a violation
/// instead of written.
pub fn update_baseline(root: &Path) -> io::Result<Report> {
    let mut report = Report::default();
    let old = fs::read_to_string(root.join(ALLOW_FILE))
        .ok()
        .and_then(|t| Allow::parse(&t).ok())
        .unwrap_or_default();
    let mut new = old.clone();
    new.panic_sites.clear();
    for rel in rust_sources(root)? {
        if !in_library_tree(&rel) {
            continue;
        }
        let text = fs::read_to_string(root.join(&rel))?;
        let count = source::count_panic_sites(&Lexed::new(&text));
        if count == 0 {
            continue;
        }
        let prior = old.panic_sites.get(&rel).copied();
        if prior.is_some_and(|p| count > p) {
            report.violations.push(Violation::file(
                Rule::PanicBudget,
                &rel,
                format!(
                    "refusing to raise the baseline from {} to {count} — \
                     remove panic sites or edit {ALLOW_FILE} explicitly in review",
                    prior.unwrap_or(0)
                ),
            ));
            new.panic_sites.insert(rel, prior.unwrap_or(0));
        } else {
            new.panic_sites.insert(rel, count);
        }
        report.panic_total += count;
    }
    if report.ok() {
        fs::write(root.join(ALLOW_FILE), new.to_toml())?;
    }
    Ok(report)
}

/// Locate the workspace root by walking up from `start` until a
/// `Cargo.toml` containing `[workspace]` appears.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn parse_manifest(root: &Path, rel: &str, report: &mut Report) -> Option<toml::Doc> {
    let text = match fs::read_to_string(root.join(rel)) {
        Ok(t) => t,
        Err(e) => {
            report.violations.push(Violation::file(
                Rule::Hermeticity,
                rel,
                format!("unreadable manifest: {e}"),
            ));
            return None;
        }
    };
    match toml::parse(&text) {
        Ok(doc) => Some(doc),
        Err(e) => {
            report.violations.push(Violation::file(
                Rule::Hermeticity,
                rel,
                format!("manifest outside the supported TOML subset: {e}"),
            ));
            None
        }
    }
}

/// Member manifest paths relative to the root, in sorted order.
fn member_manifests(root: &Path) -> io::Result<Vec<String>> {
    let mut out = Vec::new();
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut entries: Vec<_> = fs::read_dir(&crates)?.collect::<Result<_, _>>()?;
        entries.sort_by_key(std::fs::DirEntry::file_name);
        for e in entries {
            let m = e.path().join("Cargo.toml");
            if m.is_file() {
                out.push(format!("crates/{}/Cargo.toml", e.file_name().to_string_lossy()));
            }
        }
    }
    for extra in ["tests", "examples"] {
        if root.join(extra).join("Cargo.toml").is_file() {
            out.push(format!("{extra}/Cargo.toml"));
        }
    }
    Ok(out)
}

/// Every `.rs` file under `crates/`, `tests/` and `examples/`, sorted,
/// repo-relative with forward slashes. `target/` is never entered.
fn rust_sources(root: &Path) -> io::Result<Vec<String>> {
    let mut out = Vec::new();
    for top in ["crates", "tests", "examples"] {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(&dir, root, &mut out)?;
        }
    }
    out.sort();
    Ok(out)
}

fn walk(dir: &Path, root: &Path, out: &mut Vec<String>) -> io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?.collect::<Result<_, _>>()?;
    entries.sort_by_key(std::fs::DirEntry::file_name);
    for e in entries {
        let path = e.path();
        let name = e.file_name();
        if path.is_dir() {
            if name != "target" && !name.to_string_lossy().starts_with('.') {
                walk(&path, root, out)?;
            }
        } else if path.extension().is_some_and(|x| x == "rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_string_lossy().replace('\\', "/"));
            }
        }
    }
    Ok(())
}

/// L3/L4 apply to crate library/bin code only: `crates/<name>/src/…`.
/// Integration tests, benches and examples are measurement harnesses,
/// not result paths.
fn in_library_tree(rel: &str) -> bool {
    let mut parts = rel.split('/');
    parts.next() == Some("crates") && {
        let _crate_name = parts.next();
        parts.next() == Some("src")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn library_tree_classification() {
        assert!(in_library_tree("crates/packet/src/dns.rs"));
        assert!(in_library_tree("crates/bench/src/bin/repro.rs"));
        assert!(!in_library_tree("crates/packet/tests/garbage.rs"));
        assert!(!in_library_tree("crates/bench/benches/tables.rs"));
        assert!(!in_library_tree("tests/it_end_to_end.rs"));
        assert!(!in_library_tree("examples/quickstart.rs"));
    }
}
