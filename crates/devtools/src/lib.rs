//! `lucent-devtools`: in-tree static analysis for the lucent workspace.
//!
//! The `lucent-lint` binary (and the `run_root` library entry point the
//! tier-1 gate calls) enforces twelve rule families:
//!
//! - **L1 hermeticity** — every dependency is a path dependency; the
//!   workspace builds with the network unplugged.
//! - **L2 layering** — crate dependencies respect the layer DAG
//!   `packet → netsim → tcp → dns → {web, middlebox} → topology →
//!   core → bench`, with `support` underneath everything.
//! - **L3 determinism** — no wall clocks outside the bench stopwatch, no
//!   entropy-seeded randomness, no hash-ordered collections, and RNG
//!   construction only in allowlisted seed-plumbing files.
//! - **L4 panic budget** — panic sites (`unwrap`/`expect`/`panic!`/
//!   `unreachable!`) in non-test code are capped per file by the
//!   shrink-only `lint-allow.toml` baseline.
//! - **L5 unsafe hygiene** — every `unsafe` carries a `// SAFETY:`
//!   justification (most crates simply `#![forbid(unsafe_code)]`).
//! - **L6 print hygiene** — no `println!`/`eprintln!` in non-test library
//!   code outside the sanctioned sinks (the bench stopwatch, the `repro`
//!   CLI, the lint CLI, and the `lucent-check` campaign reporter with
//!   its `fuzz-smoke` binary); diagnostics go through `lucent-obs`.
//! - **L7 panic provenance** — every residual panic site is attributed,
//!   through a workspace-wide approximate call graph, to the experiment
//!   entry points that can reach it; per-entry reachable counts are
//!   capped by the shrink-only `[panic_reach]` baseline.
//! - **L8 shard isolation** — `static mut` is forbidden everywhere, and
//!   interior-mutability statics (`Mutex`/`RefCell`/atomics/… at static
//!   scope, `thread_local!`) are confined to `[shared_state]`
//!   allowlisted files so shard workers never share mutable state.
//! - **L9 alloc provenance** — allocation sites (`clone`/`to_vec`/
//!   `Vec::new`/`with_capacity`/`collect`/`format!`/`Box::new`/
//!   `String::from`/`vec!`) reachable from the configured `[hot_roots]`
//!   (the event-engine hot path) are capped per root by the shrink-only
//!   `[alloc_reach]` baseline.
//! - **L10 per-event heap discipline** — the subset of hot-reachable
//!   allocation sites lexically inside `loop`/`while`/`for` bodies gets
//!   a separate, tighter `[alloc_in_loop]` ceiling: per-event
//!   allocations are what the arena refactor must eliminate.
//! - **L11 policy anomalies** — committed censor-policy programs
//!   (`crates/*/policies/*.toml`) are compiled to the middlebox rule IR
//!   and symbolically analyzed ([`policycheck`]): dead rules,
//!   conflicting overlaps, unreachable `after` gates, and
//!   probability-mass errors are capped per file by the shrink-only
//!   `[policy_anomaly]` baseline.
//! - **L12 policy coverage** — the policy set is cross-checked against
//!   the simulator's ground truth: both mechanism families present,
//!   emitted telemetry labels known, literal host sets resolvable
//!   against the blocklist corpus, every program compilable.
//!
//! The lint's *language frontend* is dependency-free by construction:
//! it ships its own Rust scrubbing lexer, a brace-tree item parser
//! ([`parse`]), a symbol index ([`symbols`]) with a name-based call
//! graph ([`callgraph`]), and a TOML subset parser, so the gate itself
//! cannot violate L1. The one workspace dependency is
//! `lucent-middlebox`, linked so L11/L12 analyze the *compiled* policy
//! IR — the exact programs the interpreter executes — rather than
//! re-parsing policy TOML with a second grammar.
//!
//! The per-file pass runs on the deterministic [`pool`]: files are
//! partitioned round-robin and merged in path order, so the report —
//! including its `--json` form — is byte-identical at any thread count.

#![forbid(unsafe_code)]

pub mod allocsite;
pub mod allow;
pub mod callgraph;
pub mod hotalloc;
pub mod lex;
pub mod manifest;
pub mod parse;
pub mod policycheck;
pub mod pool;
pub mod reach;
pub mod report;
pub mod source;
pub mod symbols;
pub mod toml;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use allow::Allow;
use callgraph::{CallSite, Graph};
use hotalloc::HotSite;
use lex::in_spans;
use reach::PanicSite;
use report::{Report, Rule, Violation};
use source::{Lexed, SourceFile};
use symbols::Index;

/// Name of the allowlist file at the workspace root.
pub const ALLOW_FILE: &str = "lint-allow.toml";

/// Gate options.
#[derive(Debug, Clone)]
pub struct Options {
    /// Worker threads for the per-file scan. The output is identical at
    /// any value; >1 only changes wall-clock time.
    pub threads: usize,
}

impl Default for Options {
    fn default() -> Options {
        Options { threads: 1 }
    }
}

/// Run the whole gate against a workspace root with default options.
pub fn run_root(root: &Path) -> io::Result<Report> {
    run_root_with(root, &Options::default())
}

/// Run the whole gate against a workspace root. I/O errors (an
/// unreadable tree) surface as `Err`; rule findings land in the report.
pub fn run_root_with(root: &Path, opts: &Options) -> io::Result<Report> {
    let mut report = Report::default();

    let allow = match fs::read_to_string(root.join(ALLOW_FILE)) {
        Ok(text) => match Allow::parse(&text) {
            Ok(a) => a,
            Err(e) => {
                report.violations.push(Violation::file(
                    Rule::PanicBudget,
                    ALLOW_FILE,
                    format!("unparseable allowlist: {e}"),
                ));
                Allow::default()
            }
        },
        Err(_) => {
            report.warnings.push(format!("{ALLOW_FILE} missing — all ceilings default to zero"));
            Allow::default()
        }
    };

    // L1 + L2 over the root and member manifests.
    let root_doc = parse_manifest(root, "Cargo.toml", &mut report);
    let workspace_path_deps = match &root_doc {
        Some(doc) => {
            let (v, names) = manifest::check_workspace_deps(doc);
            report.merge(v);
            names
        }
        None => Vec::new(),
    };
    for rel in member_manifests(root)? {
        if let Some(doc) = parse_manifest(root, &rel, &mut report) {
            let m = manifest::extract(&doc, &rel);
            report.merge(manifest::check_hermetic(&m, &workspace_path_deps));
            report.merge(manifest::check_layering(&m));
        }
    }

    // L3–L6 + L8 plus parsing over library source trees, on the
    // deterministic pool; L5 additionally over test and bench code
    // (unsafe needs a justification wherever it appears).
    let paths = rust_sources(root)?;
    let mut scans = pool::map_indexed(paths.len(), opts.threads, |i| scan_file(root, &paths[i], &allow));
    for s in &mut scans {
        if let Some(e) = s.read_err.take() {
            return Err(e);
        }
        report.files_scanned += 1;
        report.merge(std::mem::take(&mut s.violations));
        report.warnings.append(&mut s.warnings);
        let count = s.panic_lines.len();
        if count > 0 {
            report.panic_by_file.insert(s.rel.clone(), count);
        }
        report.panic_total += count;
    }

    // L7/L9/L10: assemble the symbol index and call graph, then ratchet
    // the per-entry reachable-panic counts and the per-hot-root
    // reachable-allocation counts.
    let (index, graph, sites, alloc) = graph_phase(&scans);
    report.functions = index.len();
    report.call_edges = graph.edge_count;
    report.alloc_total = alloc.len();
    let reach_out = reach::check_reach(&index, &graph, &sites, &allow);
    report.merge(reach_out.violations);
    report.warnings.extend(reach_out.warnings);
    report.panic_reach = reach_out.reach;
    let alloc_out = hotalloc::check_hot_alloc(&index, &graph, &alloc, &allow);
    report.merge(alloc_out.violations);
    report.warnings.extend(alloc_out.warnings);
    report.alloc_reach = alloc_out.alloc_reach;
    report.alloc_in_loop = alloc_out.alloc_in_loop;
    report.hot_alloc_census = alloc_out.census;

    // L11/L12: compile and symbolically analyze the committed censor
    // policies. The pass is single-threaded and file-order
    // deterministic, so `opts.threads` cannot perturb the report.
    let policy_paths = policy_sources(root)?;
    report.policy_files = policy_paths.len();
    let policy_out = policycheck::check_policy_files(root, &policy_paths, &allow)?;
    report.merge(policy_out.violations);
    report.warnings.extend(policy_out.warnings);
    report.policy_anomaly = policy_out.anomaly_counts;

    // Baseline hygiene: entries for files that no longer exist are
    // violations — a stale ceiling looks live while guarding nothing.
    let lists: [(&str, Rule, &[String]); 3] = [
        ("wall_clock", Rule::Determinism, &allow.wall_clock),
        ("rng_construction", Rule::Determinism, &allow.rng_construction),
        ("shared_state", Rule::SharedState, &allow.shared_state),
    ];
    for (section, rule, files) in lists {
        for path in files {
            if !root.join(path).is_file() {
                report.violations.push(Violation::file(
                    rule,
                    ALLOW_FILE,
                    format!("stale [{section}] entry for missing file {path} — remove it"),
                ));
            }
        }
    }
    for path in allow.panic_sites.keys() {
        if !root.join(path).is_file() {
            report.violations.push(Violation::file(
                Rule::PanicBudget,
                ALLOW_FILE,
                format!("stale [panic_sites] entry for missing file {path} — remove it"),
            ));
        }
    }
    for path in allow.policy_anomaly.keys() {
        if !root.join(path).is_file() {
            report.violations.push(Violation::file(
                Rule::PolicyAnomaly,
                ALLOW_FILE,
                format!("stale [policy_anomaly] entry for missing file {path} — remove it"),
            ));
        }
    }

    report.violations.sort();
    Ok(report)
}

/// Everything the per-file pass extracts; merged in path order.
struct FileScan {
    rel: String,
    read_err: Option<io::Error>,
    violations: Vec<Violation>,
    warnings: Vec<String>,
    /// 1-based lines of panic sites in non-test library code.
    panic_lines: Vec<usize>,
    /// Allocation sites in non-test library code (L9/L10 input).
    alloc_sites: Vec<allocsite::AllocSite>,
    /// Non-test `fn` items (library tree only).
    fns: Vec<parse::FnItem>,
    /// `(local fn index, call site)` pairs from non-test bodies.
    calls: Vec<(usize, CallSite)>,
}

impl FileScan {
    fn empty(rel: &str) -> FileScan {
        FileScan {
            rel: rel.to_string(),
            read_err: None,
            violations: Vec::new(),
            warnings: Vec::new(),
            panic_lines: Vec::new(),
            alloc_sites: Vec::new(),
            fns: Vec::new(),
            calls: Vec::new(),
        }
    }
}

fn scan_file(root: &Path, rel: &str, allow: &Allow) -> FileScan {
    let mut scan = FileScan::empty(rel);
    let text = match fs::read_to_string(root.join(rel)) {
        Ok(t) => t,
        Err(e) => {
            scan.read_err = Some(e);
            return scan;
        }
    };
    let file = SourceFile { path: rel, text: &text };
    let lexed = Lexed::new(&text);
    if in_library_tree(rel) {
        scan.violations.extend(source::check_determinism(&file, &lexed, allow));
        scan.violations.extend(source::check_print_hygiene(&file, &lexed));
        scan.violations.extend(source::check_shared_state(&file, &lexed, allow));
        let (v, count) = source::check_panic_budget(&file, &lexed, allow);
        scan.violations.extend(v);
        scan.panic_lines = source::panic_site_lines(&lexed);
        scan.alloc_sites = allocsite::alloc_sites(&lexed);
        if count < allow.panic_ceiling(rel) {
            scan.warnings.push(format!(
                "{rel}: {count} panic site(s), baseline {} — shrink the entry",
                allow.panic_ceiling(rel)
            ));
        }
        let parsed = parse::parse(lexed.scrubbed());
        scan.fns = parsed
            .fns
            .into_iter()
            .filter(|f| !in_spans(lexed.test_spans(), f.line))
            .collect();
        for (li, f) in scan.fns.iter().enumerate() {
            if let Some((lo, hi)) = f.body {
                scan.calls
                    .extend(callgraph::calls_in(lexed.scrubbed(), lo, hi).into_iter().map(|c| (li, c)));
            }
        }
    }
    scan.violations.extend(source::check_unsafe(&file, &lexed));
    scan
}

/// Globalize per-file symbols into the index, the call graph, and the
/// owner-attributed panic- and allocation-site lists.
fn graph_phase(scans: &[FileScan]) -> (Index, Graph, Vec<PanicSite>, Vec<HotSite>) {
    let index = Index::build(scans.iter().map(|s| (s.rel.as_str(), s.fns.as_slice())));
    let mut calls: Vec<(usize, &CallSite)> = Vec::new();
    let mut sites = Vec::new();
    let mut alloc = Vec::new();
    let mut base = 0;
    for s in scans {
        for (li, c) in &s.calls {
            calls.push((base + li, c));
        }
        // Owner: the smallest enclosing non-test fn, so a site in a
        // nested helper is attributed to the helper, not the outer fn.
        let owner_of = |line: usize| {
            s.fns
                .iter()
                .enumerate()
                .filter(|(_, f)| f.line <= line && line <= f.end_line)
                .min_by_key(|(_, f)| f.end_line - f.line)
                .map(|(li, _)| base + li)
        };
        for &line in &s.panic_lines {
            sites.push(PanicSite { file: s.rel.clone(), line, owner: owner_of(line) });
        }
        for a in &s.alloc_sites {
            alloc.push(HotSite {
                file: s.rel.clone(),
                line: a.line,
                kind: a.kind,
                in_loop: a.in_loop,
                owner: owner_of(a.line),
            });
        }
        base += s.fns.len();
    }
    let graph = Graph::build(&index, calls.into_iter());
    (index, graph, sites, alloc)
}

/// Ratchet one generated baseline table against a fresh census in one
/// sorted pass: each key takes its current count, except that an
/// attempt to *raise* a prior ceiling is refused — the prior value is
/// kept and a violation recorded, so the rewrite never happens.
/// `counts` maps table key → `(attribution path, current count)`; zero
/// counts are expected to be pre-filtered.
fn ratchet_table(
    section: &str,
    rule: Rule,
    old: &std::collections::BTreeMap<String, usize>,
    counts: &std::collections::BTreeMap<String, (String, usize)>,
    report: &mut Report,
) -> std::collections::BTreeMap<String, usize> {
    let mut new = std::collections::BTreeMap::new();
    for (key, (path, count)) in counts {
        let prior = old.get(key).copied();
        if prior.is_some_and(|p| *count > p) {
            report.violations.push(Violation::file(
                rule,
                path,
                format!(
                    "refusing to raise the [{section}] baseline for `{key}` from {} to \
                     {count} — shrink the count or edit {ALLOW_FILE} explicitly in review",
                    prior.unwrap_or(0)
                ),
            ));
            new.insert(key.clone(), prior.unwrap_or(0));
        } else {
            new.insert(key.clone(), *count);
        }
    }
    new
}

/// Rewrite `lint-allow.toml` with current panic counts, per-entry panic
/// reach, per-hot-root allocation reach, and per-policy anomaly counts
/// — all five generated tables (`[panic_sites]`, `[panic_reach]`,
/// `[alloc_reach]`, `[alloc_in_loop]`, `[policy_anomaly]`) in one
/// deterministic sorted pass. Ceilings only ever move down: an attempt
/// to raise one, or a stale `[hot_roots]` entry, is reported as a
/// violation and nothing is written.
pub fn update_baseline(root: &Path) -> io::Result<Report> {
    let mut report = Report::default();
    let old = fs::read_to_string(root.join(ALLOW_FILE))
        .ok()
        .and_then(|t| Allow::parse(&t).ok())
        .unwrap_or_default();
    let paths = rust_sources(root)?;
    let mut scans = pool::map_indexed(paths.len(), 1, |i| scan_file(root, &paths[i], &old));
    for s in &mut scans {
        if let Some(e) = s.read_err.take() {
            return Err(e);
        }
    }

    // Census first, tables second: every count is gathered before any
    // table is ratcheted, so the pass order can never skew a ceiling.
    type Counts = std::collections::BTreeMap<String, (String, usize)>;
    let mut panic_counts = Counts::new();
    for s in &scans {
        let count = s.panic_lines.len();
        if count > 0 {
            panic_counts.insert(s.rel.clone(), (s.rel.clone(), count));
            report.panic_total += count;
        }
    }
    let (index, graph, sites, alloc) = graph_phase(&scans);
    report.alloc_total = alloc.len();
    let mut reach_counts = Counts::new();
    for entry in reach::entry_points(&index) {
        let sym = &index.syms[entry];
        let reachable = graph.reachable(entry);
        let count = sites.iter().filter(|s| s.owner.is_some_and(|o| reachable[o])).count();
        if count > 0 {
            reach_counts.insert(sym.id(), (sym.file.clone(), count));
        }
    }
    let (root_counts, stale_roots) = hotalloc::root_counts(&index, &graph, &alloc, &old.hot_roots);
    for stale in stale_roots {
        report.violations.push(Violation::file(
            Rule::AllocReach,
            ALLOW_FILE,
            format!(
                "stale [hot_roots] entry `{stale}` — no such function in the symbol index; \
                 remove it before regenerating baselines"
            ),
        ));
    }
    let file_of = |id: &String| id.split("::").next().unwrap_or(id).to_string();
    let alloc_counts: Counts =
        root_counts.iter().map(|(id, (n, _))| (id.clone(), (file_of(id), *n))).collect();
    let loop_counts: Counts = root_counts
        .iter()
        .filter(|(_, (_, l))| *l > 0)
        .map(|(id, (_, l))| (id.clone(), (file_of(id), *l)))
        .collect();
    let policy_paths = policy_sources(root)?;
    let policy_out = policycheck::check_policy_files(root, &policy_paths, &old)?;
    let policy_counts: Counts = policy_out
        .anomaly_counts
        .iter()
        .map(|(path, n)| (path.clone(), (path.clone(), *n)))
        .collect();

    let mut new = old.clone();
    new.panic_sites =
        ratchet_table("panic_sites", Rule::PanicBudget, &old.panic_sites, &panic_counts, &mut report);
    new.panic_reach =
        ratchet_table("panic_reach", Rule::PanicReach, &old.panic_reach, &reach_counts, &mut report);
    new.alloc_reach =
        ratchet_table("alloc_reach", Rule::AllocReach, &old.alloc_reach, &alloc_counts, &mut report);
    new.alloc_in_loop = ratchet_table(
        "alloc_in_loop",
        Rule::AllocInLoop,
        &old.alloc_in_loop,
        &loop_counts,
        &mut report,
    );
    new.policy_anomaly = ratchet_table(
        "policy_anomaly",
        Rule::PolicyAnomaly,
        &old.policy_anomaly,
        &policy_counts,
        &mut report,
    );
    if report.ok() {
        fs::write(root.join(ALLOW_FILE), new.to_toml())?;
    }
    Ok(report)
}

/// Locate the workspace root by walking up from `start` until a
/// `Cargo.toml` containing `[workspace]` appears.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn parse_manifest(root: &Path, rel: &str, report: &mut Report) -> Option<toml::Doc> {
    let text = match fs::read_to_string(root.join(rel)) {
        Ok(t) => t,
        Err(e) => {
            report.violations.push(Violation::file(
                Rule::Hermeticity,
                rel,
                format!("unreadable manifest: {e}"),
            ));
            return None;
        }
    };
    match toml::parse(&text) {
        Ok(doc) => Some(doc),
        Err(e) => {
            report.violations.push(Violation::file(
                Rule::Hermeticity,
                rel,
                format!("manifest outside the supported TOML subset: {e}"),
            ));
            None
        }
    }
}

/// Member manifest paths relative to the root, in sorted order.
fn member_manifests(root: &Path) -> io::Result<Vec<String>> {
    let mut out = Vec::new();
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut entries: Vec<_> = fs::read_dir(&crates)?.collect::<Result<_, _>>()?;
        entries.sort_by_key(std::fs::DirEntry::file_name);
        for e in entries {
            let m = e.path().join("Cargo.toml");
            if m.is_file() {
                out.push(format!("crates/{}/Cargo.toml", e.file_name().to_string_lossy()));
            }
        }
    }
    for extra in ["tests", "examples"] {
        if root.join(extra).join("Cargo.toml").is_file() {
            out.push(format!("{extra}/Cargo.toml"));
        }
    }
    Ok(out)
}

/// Every `.rs` file under `crates/`, `tests/` and `examples/`, sorted,
/// repo-relative with forward slashes. `target/` and rule-fixture
/// trees (`fixtures/`, which hold deliberately-violating code for the
/// lint's own self-tests) are never entered.
fn rust_sources(root: &Path) -> io::Result<Vec<String>> {
    let mut out = Vec::new();
    for top in ["crates", "tests", "examples"] {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(&dir, root, &mut out)?;
        }
    }
    out.sort();
    Ok(out)
}

fn walk(dir: &Path, root: &Path, out: &mut Vec<String>) -> io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?.collect::<Result<_, _>>()?;
    entries.sort_by_key(std::fs::DirEntry::file_name);
    for e in entries {
        let path = e.path();
        let name = e.file_name();
        if path.is_dir() {
            if name != "target" && name != "fixtures" && !name.to_string_lossy().starts_with('.') {
                walk(&path, root, out)?;
            }
        } else if path.extension().is_some_and(|x| x == "rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_string_lossy().replace('\\', "/"));
            }
        }
    }
    Ok(())
}

/// Every committed censor-policy file: `crates/<name>/policies/*.toml`,
/// sorted, repo-relative. Deliberately non-recursive — the `fixtures/`
/// subtree under a policies directory holds malformed and
/// deliberately-anomalous programs for the analyzer's own tests and is
/// never part of the committed set.
fn policy_sources(root: &Path) -> io::Result<Vec<String>> {
    let mut out = Vec::new();
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut entries: Vec<_> = fs::read_dir(&crates)?.collect::<Result<_, _>>()?;
        entries.sort_by_key(std::fs::DirEntry::file_name);
        for e in entries {
            let dir = e.path().join("policies");
            if !dir.is_dir() {
                continue;
            }
            let mut files: Vec<_> = fs::read_dir(&dir)?.collect::<Result<_, _>>()?;
            files.sort_by_key(std::fs::DirEntry::file_name);
            for f in files {
                let path = f.path();
                if path.is_file() && path.extension().is_some_and(|x| x == "toml") {
                    if let Ok(rel) = path.strip_prefix(root) {
                        out.push(rel.to_string_lossy().replace('\\', "/"));
                    }
                }
            }
        }
    }
    out.sort();
    Ok(out)
}

/// L3/L4 apply to crate library/bin code only: `crates/<name>/src/…`.
/// Integration tests, benches and examples are measurement harnesses,
/// not result paths.
fn in_library_tree(rel: &str) -> bool {
    let mut parts = rel.split('/');
    parts.next() == Some("crates") && {
        let _crate_name = parts.next();
        parts.next() == Some("src")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn library_tree_classification() {
        assert!(in_library_tree("crates/packet/src/dns.rs"));
        assert!(in_library_tree("crates/bench/src/bin/repro.rs"));
        assert!(!in_library_tree("crates/packet/tests/garbage.rs"));
        assert!(!in_library_tree("crates/bench/benches/tables.rs"));
        assert!(!in_library_tree("tests/it_end_to_end.rs"));
        assert!(!in_library_tree("examples/quickstart.rs"));
    }
}
