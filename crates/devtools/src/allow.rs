//! The shrink-only allowlist: `lint-allow.toml` at the workspace root.
//!
//! Policy: entries may be *removed* or their counts *reduced* as code is
//! hardened; they must never be added or raised. The gate enforces the
//! ceiling; review enforces the direction.

use std::collections::BTreeMap;

use crate::toml::{self, Value};

/// Parsed allowlist.
#[derive(Debug, Default, Clone)]
pub struct Allow {
    /// Files permitted to read a wall clock (`Instant`, `SystemTime`).
    pub wall_clock: Vec<String>,
    /// Files permitted to construct RNGs (seed plumbing sources).
    pub rng_construction: Vec<String>,
    /// Files permitted to hold interior-mutability statics (L8).
    pub shared_state: Vec<String>,
    /// Per-file panic-site ceilings for non-test library code.
    pub panic_sites: BTreeMap<String, usize>,
    /// Per-entry-point ceilings on reachable panic sites (L7). Keys
    /// are entry ids, `<file>::<fn name>`.
    pub panic_reach: BTreeMap<String, usize>,
    /// Hot-path roots for L9/L10, as `<file>::<fn name>` ids. This is
    /// *configuration*, not a generated baseline: name the event-engine
    /// entry points allocation provenance should be measured from.
    pub hot_roots: Vec<String>,
    /// Per-hot-root ceilings on reachable allocation sites (L9).
    pub alloc_reach: BTreeMap<String, usize>,
    /// Per-hot-root ceilings on reachable in-loop allocation sites
    /// (L10) — the per-event allocations the arena refactor must kill.
    pub alloc_in_loop: BTreeMap<String, usize>,
    /// Per-policy-file ceilings on L11 anomaly findings from the
    /// symbolic policycheck analyzer.
    pub policy_anomaly: BTreeMap<String, usize>,
}

impl Allow {
    /// Parse `lint-allow.toml` text.
    pub fn parse(text: &str) -> Result<Allow, String> {
        let doc = toml::parse(text)?;
        let files = |section: &str| -> Vec<String> {
            doc.get(section, "files")
                .and_then(Value::as_array)
                .map(<[String]>::to_vec)
                .unwrap_or_default()
        };
        let ceilings = |section: &str| -> Result<BTreeMap<String, usize>, String> {
            let mut out = BTreeMap::new();
            for (key, v) in doc.section(section) {
                let n = v.as_int().ok_or_else(|| format!("{section}.{key}: expected an integer"))?;
                if n < 0 {
                    return Err(format!("{section}.{key}: negative ceiling"));
                }
                out.insert(key.clone(), n as usize);
            }
            Ok(out)
        };
        let roots = doc
            .get("hot_roots", "roots")
            .and_then(Value::as_array)
            .map(<[String]>::to_vec)
            .unwrap_or_default();
        Ok(Allow {
            wall_clock: files("wall_clock"),
            rng_construction: files("rng_construction"),
            shared_state: files("shared_state"),
            panic_sites: ceilings("panic_sites")?,
            panic_reach: ceilings("panic_reach")?,
            hot_roots: roots,
            alloc_reach: ceilings("alloc_reach")?,
            alloc_in_loop: ceilings("alloc_in_loop")?,
            policy_anomaly: ceilings("policy_anomaly")?,
        })
    }

    pub fn allows_wall_clock(&self, path: &str) -> bool {
        self.wall_clock.iter().any(|p| p == path)
    }

    pub fn allows_rng_construction(&self, path: &str) -> bool {
        self.rng_construction.iter().any(|p| p == path)
    }

    pub fn allows_shared_state(&self, path: &str) -> bool {
        self.shared_state.iter().any(|p| p == path)
    }

    pub fn panic_ceiling(&self, path: &str) -> usize {
        self.panic_sites.get(path).copied().unwrap_or(0)
    }

    /// Ceiling on panic sites reachable from the entry point `id`.
    pub fn reach_ceiling(&self, id: &str) -> usize {
        self.panic_reach.get(id).copied().unwrap_or(0)
    }

    /// Ceiling on allocation sites reachable from the hot root `id`.
    pub fn alloc_reach_ceiling(&self, id: &str) -> usize {
        self.alloc_reach.get(id).copied().unwrap_or(0)
    }

    /// Ceiling on in-loop allocation sites reachable from `id`.
    pub fn alloc_in_loop_ceiling(&self, id: &str) -> usize {
        self.alloc_in_loop.get(id).copied().unwrap_or(0)
    }

    /// Ceiling on L11 policy anomalies in the policy file `path`.
    pub fn policy_anomaly_ceiling(&self, path: &str) -> usize {
        self.policy_anomaly.get(path).copied().unwrap_or(0)
    }

    /// Serialize back to TOML (used by `--update-baseline`): the file
    /// lists in stable sorted order so diffs stay reviewable.
    pub fn to_toml(&self) -> String {
        let mut out = String::new();
        out.push_str(
            "# lucent-lint allowlist. SHRINK-ONLY: entries may be removed or\n\
             # reduced as code is hardened, never added or increased. The gate\n\
             # (tests/lint_gate.rs) fails the build when a ceiling is exceeded.\n\n",
        );
        // One line per array: the subset parser does not read
        // multi-line arrays.
        let list = |name: &str, files: &[String]| {
            let quoted: Vec<String> = files.iter().map(|f| format!("\"{f}\"")).collect();
            format!("[{name}]\nfiles = [{}]\n\n", quoted.join(", "))
        };
        out.push_str(&list("wall_clock", &self.wall_clock));
        out.push_str(&list("rng_construction", &self.rng_construction));
        out.push_str("# Files that may hold interior-mutability statics (L8). `static mut`\n");
        out.push_str("# is forbidden everywhere, allowlist or not.\n");
        out.push_str(&list("shared_state", &self.shared_state));
        out.push_str("# Panic sites (unwrap/expect/panic!/unreachable!) in non-test code,\n");
        out.push_str("# per file. Regenerate with `lucent-lint --update-baseline`.\n");
        out.push_str("[panic_sites]\n");
        for (path, n) in &self.panic_sites {
            out.push_str(&format!("\"{path}\" = {n}\n"));
        }
        out.push('\n');
        out.push_str("# Panic sites reachable from each experiment entry point, through\n");
        out.push_str("# the approximate call graph (L7). Keys are `<file>::<fn>`.\n");
        out.push_str("# Regenerate with `lucent-lint --update-baseline`.\n");
        out.push_str("[panic_reach]\n");
        for (id, n) in &self.panic_reach {
            out.push_str(&format!("\"{id}\" = {n}\n"));
        }
        out.push('\n');
        out.push_str("# Hot-path roots for allocation provenance (L9/L10). This table is\n");
        out.push_str("# configuration, not a generated baseline: it names the event-engine\n");
        out.push_str("# entry points. A root no longer in the symbol index is a violation.\n");
        out.push_str("[hot_roots]\n");
        let quoted: Vec<String> = self.hot_roots.iter().map(|r| format!("\"{r}\"")).collect();
        out.push_str(&format!("roots = [{}]\n\n", quoted.join(", ")));
        out.push_str("# Allocation sites reachable from each hot root (L9). Keys are\n");
        out.push_str("# `<file>::<fn>`. Regenerate with `lucent-lint --update-baseline`.\n");
        out.push_str("[alloc_reach]\n");
        for (id, n) in &self.alloc_reach {
            out.push_str(&format!("\"{id}\" = {n}\n"));
        }
        out.push('\n');
        out.push_str("# Per-event (in-loop) allocation sites reachable from each hot root\n");
        out.push_str("# (L10) — the subset the arena refactor must drive to zero.\n");
        out.push_str("# Regenerate with `lucent-lint --update-baseline`.\n");
        out.push_str("[alloc_in_loop]\n");
        for (id, n) in &self.alloc_in_loop {
            out.push_str(&format!("\"{id}\" = {n}\n"));
        }
        out.push('\n');
        out.push_str("# Symbolic policy anomalies (L11) per committed policy file —\n");
        out.push_str("# dead/shadowed rules, conflicting overlaps, unreachable gates,\n");
        out.push_str("# probability-mass errors. Regenerate with `lucent-lint\n");
        out.push_str("# --update-baseline`.\n");
        out.push_str("[policy_anomaly]\n");
        for (path, n) in &self.policy_anomaly {
            out.push_str(&format!("\"{path}\" = {n}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_through_to_toml() {
        let mut a = Allow::default();
        a.wall_clock.push("crates/support/src/bench.rs".into());
        a.rng_construction.push("crates/netsim/src/time.rs".into());
        a.panic_sites.insert("crates/packet/src/dns.rs".into(), 7);
        a.shared_state.push("crates/check/src/runner.rs".into());
        a.panic_reach.insert("crates/core/src/experiments/race.rs::run_isp".into(), 2);
        a.hot_roots.push("crates/netsim/src/network.rs::step".into());
        a.alloc_reach.insert("crates/netsim/src/network.rs::step".into(), 9);
        a.alloc_in_loop.insert("crates/netsim/src/network.rs::step".into(), 3);
        a.policy_anomaly.insert("crates/middlebox/policies/airtel-wm.toml".into(), 1);
        let b = Allow::parse(&a.to_toml()).expect("round trip");
        assert_eq!(b.wall_clock, a.wall_clock);
        assert_eq!(b.rng_construction, a.rng_construction);
        assert_eq!(b.panic_sites, a.panic_sites);
        assert_eq!(b.shared_state, a.shared_state);
        assert_eq!(b.panic_reach, a.panic_reach);
        assert_eq!(b.hot_roots, a.hot_roots);
        assert_eq!(b.alloc_reach, a.alloc_reach);
        assert_eq!(b.alloc_in_loop, a.alloc_in_loop);
        assert_eq!(b.policy_anomaly, a.policy_anomaly);
    }

    #[test]
    fn missing_sections_default_to_empty() {
        let a = Allow::parse("").expect("empty ok");
        assert!(a.wall_clock.is_empty());
        assert_eq!(a.panic_ceiling("x"), 0);
    }

    #[test]
    fn negative_ceilings_are_rejected() {
        assert!(Allow::parse("[panic_sites]\n\"x.rs\" = -1\n").is_err());
    }
}
