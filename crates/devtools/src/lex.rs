//! A minimal Rust lexer for lint purposes: scrub comments and literals
//! out of source text, and locate `#[cfg(test)]` regions.
//!
//! The lint rules match tokens against *scrubbed* text so that a banned
//! name inside a string literal or a comment (for example, in this very
//! crate's rule tables) never trips a rule. Scrubbing preserves byte
//! length and every newline, so line numbers in the scrubbed text map
//! one-to-one onto the original file.

/// Replace the interior of comments, string literals, char literals and
/// raw strings with spaces. Newlines are kept so line structure survives.
pub fn scrub(src: &str) -> String {
    let b = src.as_bytes();
    let mut out = Vec::with_capacity(b.len());
    let mut i = 0;
    while i < b.len() {
        match b[i] {
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                while i < b.len() && b[i] != b'\n' {
                    out.push(b' ');
                    i += 1;
                }
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                let mut depth = 1usize;
                out.extend_from_slice(b"  ");
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        out.extend_from_slice(b"  ");
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        out.extend_from_slice(b"  ");
                        i += 2;
                    } else {
                        out.push(if b[i] == b'\n' { b'\n' } else { b' ' });
                        i += 1;
                    }
                }
            }
            b'r' if is_raw_string_start(b, i) => {
                let hashes = count_hashes(b, i + 1);
                // Blank `r`, the hashes, and the opening quote at once.
                out.resize(out.len() + hashes + 2, b' ');
                i += hashes + 2;
                loop {
                    if i >= b.len() {
                        break;
                    }
                    if b[i] == b'"' && closes_raw(b, i, hashes) {
                        out.resize(out.len() + hashes + 1, b' ');
                        i += hashes + 1;
                        break;
                    }
                    out.push(if b[i] == b'\n' { b'\n' } else { b' ' });
                    i += 1;
                }
            }
            b'"' => {
                out.push(b' ');
                i += 1;
                while i < b.len() {
                    match b[i] {
                        // `\X` — blank both bytes, but never a newline
                        // (a `\` + newline is the line-continuation
                        // escape, and newlines must survive scrubbing).
                        b'\\' if i + 1 < b.len() => {
                            out.push(b' ');
                            out.push(if b[i + 1] == b'\n' { b'\n' } else { b' ' });
                            i += 2;
                        }
                        b'"' => {
                            out.push(b' ');
                            i += 1;
                            break;
                        }
                        b'\n' => {
                            out.push(b'\n');
                            i += 1;
                        }
                        _ => {
                            out.push(b' ');
                            i += 1;
                        }
                    }
                }
            }
            b'\'' if is_char_literal(b, i) => {
                out.push(b' ');
                i += 1;
                while i < b.len() {
                    match b[i] {
                        b'\\' if i + 1 < b.len() => {
                            out.push(b' ');
                            out.push(if b[i + 1] == b'\n' { b'\n' } else { b' ' });
                            i += 2;
                        }
                        b'\'' => {
                            out.push(b' ');
                            i += 1;
                            break;
                        }
                        // A char literal cannot span a line; an
                        // unterminated one ends at the newline so the
                        // rest of the file is still scanned.
                        b'\n' => break,
                        _ => {
                            out.push(b' ');
                            i += 1;
                        }
                    }
                }
            }
            c => {
                out.push(c);
                i += 1;
            }
        }
    }
    // Replacements are ASCII and non-ASCII bytes pass through verbatim,
    // so the buffer stays valid UTF-8; lossy conversion avoids a panic
    // path without changing the output.
    String::from_utf8_lossy(&out).into_owned()
}

/// `r"` / `r#"` / `br"` — a raw-string opener at `i` (pointing at `r`).
fn is_raw_string_start(b: &[u8], i: usize) -> bool {
    // Reject identifiers ending in `r` (e.g. `var"` cannot occur, but
    // `for` / `ptr` followed by `"` is not valid Rust either; the risk
    // is `r` as the tail of an ident like `foo_r#"` which is not real
    // code). Require the previous char to be a non-ident char or `b`.
    if i > 0 {
        let p = b[i - 1];
        if (p.is_ascii_alphanumeric() || p == b'_') && p != b'b' {
            return false;
        }
    }
    let mut j = i + 1;
    while j < b.len() && b[j] == b'#' {
        j += 1;
    }
    j < b.len() && b[j] == b'"'
}

fn count_hashes(b: &[u8], mut i: usize) -> usize {
    let start = i;
    while i < b.len() && b[i] == b'#' {
        i += 1;
    }
    i - start
}

fn closes_raw(b: &[u8], i: usize, hashes: usize) -> bool {
    (1..=hashes).all(|k| i + k < b.len() && b[i + k] == b'#')
}

/// Distinguish a char literal from a lifetime: `'a'` and `'\n'` are
/// literals; `'a` in `&'a str` is not.
fn is_char_literal(b: &[u8], i: usize) -> bool {
    if i + 1 >= b.len() {
        return false;
    }
    if b[i + 1] == b'\\' {
        return true;
    }
    i + 2 < b.len() && b[i + 2] == b'\''
}

/// Whether `line` contains `tok` as a whole token: the characters just
/// before and after the match must not be identifier characters.
pub fn has_token(line: &str, tok: &str) -> bool {
    let lb = line.as_bytes();
    let mut from = 0;
    while let Some(pos) = line[from..].find(tok) {
        let at = from + pos;
        let before_ok = at == 0 || !is_ident(lb[at - 1]);
        let end = at + tok.len();
        let after_ok = end >= lb.len() || !is_ident(lb[end]);
        if before_ok && after_ok {
            return true;
        }
        from = at + 1;
    }
    false
}

fn is_ident(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// 1-based line ranges (inclusive) covered by `#[cfg(test)]` items in
/// scrubbed source. The attribute gates the item that follows: we skip
/// further attributes, then brace-match the item body (or stop at `;`
/// for braceless items such as `#[cfg(test)] use …;`).
pub fn test_spans(scrubbed: &str) -> Vec<(usize, usize)> {
    let b = scrubbed.as_bytes();
    let mut spans = Vec::new();
    let mut i = 0;
    while let Some(pos) = scrubbed[i..].find("#[cfg(test)]") {
        let start = i + pos;
        let mut j = start + "#[cfg(test)]".len();
        // Skip whitespace and any further attributes before the item.
        loop {
            while j < b.len() && (b[j] as char).is_whitespace() {
                j += 1;
            }
            if j < b.len() && b[j] == b'#' {
                while j < b.len() && b[j] != b']' {
                    j += 1;
                }
                j += 1;
            } else {
                break;
            }
        }
        // Find the end of the item: `;` before any `{`, else the
        // matching close brace.
        let mut depth = 0usize;
        let mut end = j;
        while end < b.len() {
            match b[end] {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                b';' if depth == 0 => break,
                _ => {}
            }
            end += 1;
        }
        let line_of = |off: usize| 1 + scrubbed[..off.min(scrubbed.len())].matches('\n').count();
        spans.push((line_of(start), line_of(end)));
        i = end.min(b.len().saturating_sub(1)).max(start + 1);
        if i >= b.len() {
            break;
        }
    }
    spans
}

/// Whether 1-based `line` falls in any span.
pub fn in_spans(spans: &[(usize, usize)], line: usize) -> bool {
    spans.iter().any(|&(a, b)| (a..=b).contains(&line))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scrub_preserves_length_and_newlines() {
        let src = "let x = \"Instant::now()\"; // Instant::now\nlet y = 1;\n";
        let s = scrub(src);
        assert_eq!(s.len(), src.len());
        assert_eq!(s.matches('\n').count(), src.matches('\n').count());
        assert!(!s.contains("Instant"));
        assert!(s.contains("let y = 1;"));
    }

    #[test]
    fn scrub_handles_raw_strings_and_chars() {
        let src = r##"let s = r#"HashMap in "raw""#; let c = 'h'; let l: &'static str = x;"##;
        let s = scrub(src);
        assert!(!s.contains("HashMap"));
        assert!(s.contains("&'static str"), "lifetimes survive: {s}");
    }

    #[test]
    fn scrub_handles_nested_block_comments() {
        let s = scrub("a /* x /* HashMap */ y */ b");
        assert!(!s.contains("HashMap"));
        assert!(s.starts_with('a') && s.ends_with('b'));
    }

    #[test]
    fn unterminated_char_literal_stops_at_the_newline() {
        // Found by the `lint_lexer_total` fuzz oracle: an unterminated
        // byte/char literal used to blank the rest of the file,
        // including its newlines.
        let src = "b'\\n// \nlet x = 1;\n";
        let s = scrub(src);
        assert_eq!(s.len(), src.len());
        assert_eq!(
            s.match_indices('\n').collect::<Vec<_>>(),
            src.match_indices('\n').collect::<Vec<_>>()
        );
        assert!(s.contains("let x = 1;"), "code after the literal is still scanned: {s:?}");
    }

    #[test]
    fn token_boundaries_are_respected() {
        assert!(has_token("use std::collections::HashMap;", "HashMap"));
        assert!(!has_token("forbid(unsafe_code)", "unsafe"));
        assert!(!has_token("MyHashMapLike", "HashMap"));
        assert!(has_token("std::time::Instant::now()", "Instant::now"));
    }

    #[test]
    fn test_spans_cover_the_gated_module() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n  fn a() {}\n}\nfn after() {}\n";
        let spans = test_spans(&scrub(src));
        assert_eq!(spans, vec![(2, 5)]);
        assert!(!in_spans(&spans, 1));
        assert!(in_spans(&spans, 4));
        assert!(!in_spans(&spans, 6));
    }

    #[test]
    fn braceless_cfg_test_items_end_at_semicolon() {
        let src = "#[cfg(test)]\nuse foo::Bar;\nfn live() {}\n";
        let spans = test_spans(&scrub(src));
        assert_eq!(spans, vec![(1, 2)]);
        assert!(!in_spans(&spans, 3));
    }
}
