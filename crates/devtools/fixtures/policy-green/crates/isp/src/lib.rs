//! Carrier crate for the anomaly-free policy files under `policies/`.
