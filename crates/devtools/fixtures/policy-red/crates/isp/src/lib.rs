//! Carrier crate for the seeded-anomaly policy files under `policies/`.
