//! Seeded L8 violations: shared mutable state at static scope.

use std::sync::Mutex;

pub static REGISTRY: Mutex<Vec<u32>> = Mutex::new(Vec::new());

pub static mut HITS: u32 = 0;
