//! Allowlisted interior-mutability static — clean under L8.

use std::sync::Mutex;

pub static REGISTRY: Mutex<Vec<u32>> = Mutex::new(Vec::new());
