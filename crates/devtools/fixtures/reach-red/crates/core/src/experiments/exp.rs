//! Seeded L7 violation: the entry point reaches a panicking helper.

pub fn run_isp(sample: Option<u32>) -> u32 {
    helper(sample)
}

fn helper(sample: Option<u32>) -> u32 {
    sample.unwrap()
}
