//! Same hot path as `alloc-red`, but the baselines cover the site.

pub fn step(packets: &[Vec<u8>]) -> usize {
    let mut total = 0;
    for p in packets {
        total += handle(p.clone());
    }
    total
}

fn handle(p: Vec<u8>) -> usize {
    p.len()
}
