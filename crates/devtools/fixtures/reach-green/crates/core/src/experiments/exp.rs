//! Baseline-covered L7 reach: one panic site reachable from `run_isp`,
//! ceiling one.

pub fn run_isp(sample: Option<u32>) -> u32 {
    helper(sample)
}

fn helper(sample: Option<u32>) -> u32 {
    sample.unwrap()
}
