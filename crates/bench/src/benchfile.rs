//! The `BENCH_repro.json` side file as a typed, versioned schema.
//!
//! Each entry is keyed `{experiment}@{scale}@threads={N}` (or a tool
//! key like `lucent-lint@workspace@threads=4`) and carries the
//! `lucent-bench/1` value schema:
//!
//! ```json
//! { "events": 123456, "events_per_sec": 77722.5, "wall_secs": 1.59 }
//! ```
//!
//! `wall_secs` is mandatory; `events` and `events_per_sec` are optional
//! so tool entries that have no simulator-event notion (the lint pass)
//! stay representable. **Unknown keys are rejected**, both on load and
//! on upsert: the perf ratchet diffs these files across commits, and a
//! silently-carried stray key would make two semantically equal files
//! compare unequal forever. Schema growth therefore has to happen here,
//! by extending [`KNOWN_KEYS`], never ad hoc at a call site.
//!
//! Everything is rendered with sorted keys and two-space indentation so
//! the committed file diffs minimally under upserts.

use std::path::Path;

use lucent_support::{Json, ToJson};

/// The value-schema version this module reads and writes.
pub const SCHEMA: &str = "lucent-bench/1";

/// Every key an entry value may carry, sorted. Extend this list (and
/// [`Entry`]) to grow the schema; anything else is a load/upsert error.
pub const KNOWN_KEYS: [&str; 3] = ["events", "events_per_sec", "wall_secs"];

/// One benchmark measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct Entry {
    /// Wall-clock seconds for the whole run. Mandatory.
    pub wall_secs: f64,
    /// Simulator events processed (hub + shards). Absent for tool
    /// entries with no event notion.
    pub events: Option<u64>,
    /// Throughput, `events / wall_secs`. Absent when `events` is.
    pub events_per_sec: Option<f64>,
}

impl Entry {
    /// The entry's JSON value with sorted keys, omitting absent fields.
    pub fn to_json(&self) -> Json {
        let mut members = Vec::default();
        if let Some(ev) = self.events {
            members.push(("events".to_string(), ev.to_json()));
        }
        if let Some(eps) = self.events_per_sec {
            members.push(("events_per_sec".to_string(), eps.to_json()));
        }
        members.push(("wall_secs".to_string(), self.wall_secs.to_json()));
        Json::Obj(members)
    }

    /// Parse one entry value, rejecting unknown keys and non-finite or
    /// negative measurements. The finiteness check is load-bearing: a
    /// NaN would make every ratchet band comparison vacuously false,
    /// and an `inf` events_per_sec (e.g. from a `1e999` literal) would
    /// ratchet the up-only baseline to a floor no run can ever meet.
    pub fn from_json(key: &str, value: &Json) -> Result<Entry, String> {
        let Json::Obj(members) = value else {
            return Err(format!("entry {key:?}: expected an object"));
        };
        let mut wall: Option<f64> = None;
        let mut events = None;
        let mut events_per_sec = None;
        for (k, v) in members {
            match k.as_str() {
                "wall_secs" => {
                    wall = Some(checked_measure(key, "wall_secs", v)?);
                }
                "events" => {
                    events = Some(
                        as_u64(v)
                            .ok_or_else(|| format!("entry {key:?}: events must be a non-negative integer"))?,
                    );
                }
                "events_per_sec" => {
                    events_per_sec = Some(checked_measure(key, "events_per_sec", v)?);
                }
                other => {
                    return Err(format!(
                        "entry {key:?}: unknown key {other:?} (schema {SCHEMA} allows {KNOWN_KEYS:?})"
                    ));
                }
            }
        }
        let Some(wall_secs) = wall else {
            return Err(format!("entry {key:?}: missing wall_secs"));
        };
        Ok(Entry { wall_secs, events, events_per_sec })
    }
}

/// A measurement must be a finite, non-negative number — anything else
/// poisons the shrink/grow-only ratchet comparisons downstream.
fn checked_measure(key: &str, field: &str, v: &Json) -> Result<f64, String> {
    let n = v.as_f64().ok_or_else(|| format!("entry {key:?}: {field} must be a number"))?;
    if !n.is_finite() || n < 0.0 {
        return Err(format!(
            "entry {key:?}: {field} must be finite and non-negative, got {n}"
        ));
    }
    Ok(n)
}

fn as_u64(v: &Json) -> Option<u64> {
    match *v {
        Json::Int(n) if n >= 0 => Some(n as u64),
        Json::UInt(n) => Some(n),
        _ => None,
    }
}

/// Parse a whole bench file. Entries come back in file order; use
/// [`render`] to write them back sorted.
pub fn parse(text: &str) -> Result<Vec<(String, Entry)>, String> {
    let doc = Json::parse(text).map_err(|e| e.to_string())?;
    let Json::Obj(members) = doc else {
        return Err("bench file: expected a top-level object".to_string());
    };
    let mut entries = Vec::with_capacity(members.len());
    for (key, value) in &members {
        entries.push((key.clone(), Entry::from_json(key, value)?));
    }
    Ok(entries)
}

/// Load a bench file; a missing file is an empty set, a malformed one
/// is an error (never silently discarded — these files are ratchet
/// baselines).
pub fn load(path: &Path) -> Result<Vec<(String, Entry)>, String> {
    match std::fs::read_to_string(path) {
        Ok(text) => parse(&text),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Vec::new()),
        Err(e) => Err(format!("cannot read {}: {e}", path.display())),
    }
}

/// Render entries sorted by key, pretty-printed.
pub fn render(entries: &[(String, Entry)]) -> String {
    let mut sorted: Vec<&(String, Entry)> = entries.iter().collect();
    sorted.sort_by(|a, b| a.0.cmp(&b.0));
    Json::Obj(sorted.iter().map(|(k, e)| (k.clone(), e.to_json())).collect()).to_string_pretty()
}

/// Insert or replace the measurement under `key`.
pub fn upsert(entries: &mut Vec<(String, Entry)>, key: &str, entry: Entry) {
    match entries.iter_mut().find(|(k, _)| k == key) {
        Some(slot) => slot.1 = entry,
        None => entries.push((key.to_string(), entry)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full() -> Entry {
        Entry { wall_secs: 1.5, events: Some(3000), events_per_sec: Some(2000.0) }
    }

    #[test]
    fn roundtrips_and_sorts_keys() {
        let mut entries = vec![("b@tiny@threads=1".to_string(), full())];
        upsert(&mut entries, "a@tiny@threads=1", Entry { wall_secs: 0.5, events: None, events_per_sec: None });
        let text = render(&entries);
        assert!(text.find("a@tiny").unwrap() < text.find("b@tiny").unwrap(), "{text}");
        let back = parse(&text).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[1].1, full());
        assert_eq!(render(&back), text, "render∘parse must be a fixpoint");
    }

    #[test]
    fn upsert_replaces_in_place() {
        let mut entries = vec![("k".to_string(), full())];
        upsert(&mut entries, "k", Entry { wall_secs: 9.0, events: None, events_per_sec: None });
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].1.wall_secs, 9.0);
        assert_eq!(entries[0].1.events, None);
    }

    #[test]
    fn unknown_keys_are_rejected() {
        let err = parse(r#"{"k": {"wall_secs": 1.0, "cpu_secs": 2.0}}"#).unwrap_err();
        assert!(err.contains("unknown key"), "{err}");
        assert!(err.contains("cpu_secs"), "{err}");
    }

    #[test]
    fn wall_secs_is_mandatory() {
        let err = parse(r#"{"k": {"events": 5}}"#).unwrap_err();
        assert!(err.contains("missing wall_secs"), "{err}");
    }

    #[test]
    fn non_finite_measurements_are_rejected() {
        // `1e999` overflows f64 parsing to +inf — the realistic way a
        // non-finite value enters a JSON benchfile.
        let err = parse(r#"{"k": {"wall_secs": 1e999}}"#).unwrap_err();
        assert!(err.contains("finite"), "{err}");
        let err = parse(r#"{"k": {"wall_secs": 1.0, "events_per_sec": 1e999}}"#).unwrap_err();
        assert!(err.contains("events_per_sec"), "{err}");
        assert!(err.contains("finite"), "{err}");
    }

    #[test]
    fn negative_measurements_are_rejected() {
        let err = parse(r#"{"k": {"wall_secs": -1.0}}"#).unwrap_err();
        assert!(err.contains("non-negative"), "{err}");
        let err = parse(r#"{"k": {"wall_secs": 1.0, "events_per_sec": -2.0}}"#).unwrap_err();
        assert!(err.contains("events_per_sec"), "{err}");
    }

    #[test]
    fn legacy_wall_only_entries_parse() {
        let entries = parse(r#"{"lucent-lint@workspace@threads=4": {"wall_secs": 0.131}}"#).unwrap();
        assert_eq!(entries[0].1.events, None);
        assert_eq!(entries[0].1.events_per_sec, None);
    }
}
