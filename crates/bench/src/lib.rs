//! # lucent-bench
//!
//! The reproduction harness: the `repro` binary regenerates every table
//! and figure of the paper (at a configurable scale), the `lucent-bench`
//! binary enforces the shrink-only events/sec ratchet against a
//! committed baseline, and the Criterion benches measure both the
//! experiments and the substrate.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

use lucent_core::lab::Lab;
use lucent_topology::{India, IndiaConfig};

pub mod benchfile;
pub mod drive;
pub mod ratchet;
pub mod shard;

/// Scale presets for the simulated world.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Structure-only world (fast; unit-test sized).
    Tiny,
    /// ~10× reduced world with all phenomena present (default).
    Small,
    /// The paper's numbers: 1200 PBWs, 448+182 resolvers, 40 cores/ISP.
    Paper,
}

impl Scale {
    /// Parse a scale name.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "tiny" => Some(Scale::Tiny),
            "small" => Some(Scale::Small),
            "paper" | "full" => Some(Scale::Paper),
            _ => None,
        }
    }

    /// The matching config.
    pub fn config(self) -> IndiaConfig {
        match self {
            Scale::Tiny => IndiaConfig::tiny(),
            Scale::Small => IndiaConfig::small(),
            Scale::Paper => IndiaConfig::paper(),
        }
    }

    /// Build a lab at this scale.
    pub fn lab(self) -> Lab {
        Lab::new(India::build(self.config()))
    }

    /// Default per-experiment caps: (sites, inside targets, hosts/path,
    /// consistency paths).
    pub fn caps(self) -> Caps {
        match self {
            Scale::Tiny => Caps {
                sites: Some(40),
                inside_targets: 12,
                hosts_per_path: 40,
                consistency_paths: 6,
            },
            Scale::Small => Caps {
                sites: Some(120),
                inside_targets: 40,
                hosts_per_path: 120,
                consistency_paths: 12,
            },
            Scale::Paper => Caps {
                sites: None,
                inside_targets: 200,
                hosts_per_path: 400,
                consistency_paths: 40,
            },
        }
    }
}

/// Per-experiment effort caps.
#[derive(Debug, Clone, Copy)]
pub struct Caps {
    /// PBW cap (None = all).
    pub sites: Option<usize>,
    /// Popular-site targets for inside coverage scans.
    pub inside_targets: usize,
    /// PBW Hosts replayed per probed path.
    pub hosts_per_path: usize,
    /// Poisoned paths per ISP in the Figure-5 consistency phase.
    pub consistency_paths: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing() {
        assert_eq!(Scale::parse("tiny"), Some(Scale::Tiny));
        assert_eq!(Scale::parse("paper"), Some(Scale::Paper));
        assert_eq!(Scale::parse("full"), Some(Scale::Paper));
        assert_eq!(Scale::parse("bogus"), None);
    }

    #[test]
    fn paper_caps_are_uncapped_on_sites() {
        assert!(Scale::Paper.caps().sites.is_none());
        assert!(Scale::Tiny.caps().sites.is_some());
    }
}
