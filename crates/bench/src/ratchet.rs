//! The shrink-only performance ratchet.
//!
//! A committed baseline (`BENCH_baseline.json`, same schema as the
//! bench file — see [`crate::benchfile`]) records the throughput CI has
//! already demonstrated. [`check`] compares a fresh measurement against
//! it under a tolerance band; [`update`] tightens the baseline and
//! **refuses to loosen it**:
//!
//! - `events_per_sec` may only ratchet **up** (the stored floor is the
//!   max of old and new),
//! - `wall_secs` may only ratchet **down** (min of old and new),
//!
//! mirroring the lucent-lint ceilings in `lint-allow.toml`. The band
//! exists because wall clocks are noisy across machines; it bounds how
//! far below the floor a run may land before CI calls it a regression.
//! A band ≥ 1.0 would make the throughput check vacuous
//! (`floor × (1 − band) ≤ 0`), so [`check`] rejects it up front.

use crate::benchfile::Entry;

/// The verdict of one [`check`] run.
#[derive(Debug, Default)]
pub struct Outcome {
    /// Regressions (and structural problems) that must fail CI.
    pub failures: Vec<String>,
    /// Non-fatal observations, e.g. "improved; tighten the baseline".
    pub notes: Vec<String>,
}

impl Outcome {
    /// True when nothing failed.
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }
}

fn find<'a>(entries: &'a [(String, Entry)], key: &str) -> Option<&'a Entry> {
    entries.iter().find(|(k, _)| k == key).map(|(_, e)| e)
}

/// Compare `measured` against `baseline` under `band` (a fraction,
/// e.g. 0.25 = ±25%). Every baseline key must be present in the
/// measurement with an `events_per_sec`; throughput below
/// `floor × (1 − band)` or wall time above `ceiling × (1 + band)` is a
/// failure. Throughput above `floor × (1 + band)` earns a note
/// suggesting a baseline update. Measured keys absent from the
/// baseline are noted, never failed — the ratchet only guards what it
/// has already locked in.
pub fn check(measured: &[(String, Entry)], baseline: &[(String, Entry)], band: f64) -> Outcome {
    let mut out = Outcome::default();
    if !(0.0..1.0).contains(&band) {
        out.failures.push(format!(
            "band {band} is outside [0, 1): at band >= 1 the throughput floor collapses to 0 \
             and the check is vacuous"
        ));
        return out;
    }
    for (key, base) in baseline {
        let Some(base_eps) = base.events_per_sec else {
            out.failures.push(format!("baseline {key:?} lacks events_per_sec; re-seed the baseline"));
            continue;
        };
        let Some(m) = find(measured, key) else {
            out.failures.push(format!("no measurement for baseline key {key:?}"));
            continue;
        };
        let Some(eps) = m.events_per_sec else {
            out.failures.push(format!("measurement {key:?} lacks events_per_sec"));
            continue;
        };
        let floor = base_eps * (1.0 - band);
        let ceiling = base.wall_secs * (1.0 + band);
        if eps < floor {
            out.failures.push(format!(
                "{key}: events/sec regression: {eps:.0} < {floor:.0} \
                 (baseline {base_eps:.0}, band {band})"
            ));
        } else if eps > base_eps * (1.0 + band) {
            out.notes.push(format!(
                "{key}: {eps:.0} events/sec beats the baseline {base_eps:.0} by more than the \
                 band; run update-baseline to lock it in"
            ));
        }
        if m.wall_secs > ceiling {
            out.failures.push(format!(
                "{key}: wall-time regression: {:.3}s > {ceiling:.3}s \
                 (baseline {:.3}s, band {band})",
                m.wall_secs, base.wall_secs
            ));
        }
    }
    for (key, m) in measured {
        if find(baseline, key).is_none() && m.events_per_sec.is_some() {
            out.notes.push(format!("{key}: not in baseline yet; update-baseline will add it"));
        }
    }
    out
}

/// Tighten `baseline` from `measured`, refusing on any [`check`]
/// failure (a regression must never be laundered into a new floor).
/// Keys in both ratchet shrink-only; measured keys with throughput are
/// added; baseline-only keys are kept untouched.
pub fn update(
    measured: &[(String, Entry)],
    baseline: &[(String, Entry)],
    band: f64,
) -> Result<Vec<(String, Entry)>, Outcome> {
    let outcome = check(measured, baseline, band);
    if !outcome.ok() {
        return Err(outcome);
    }
    let mut next: Vec<(String, Entry)> = Vec::new();
    for (key, base) in baseline {
        let mut entry = base.clone();
        if let Some(m) = find(measured, key) {
            if let (Some(old), Some(new)) = (entry.events_per_sec, m.events_per_sec) {
                entry.events_per_sec = Some(old.max(new));
            }
            entry.wall_secs = entry.wall_secs.min(m.wall_secs);
            if m.events.is_some() {
                entry.events = m.events;
            }
        }
        next.push((key.clone(), entry));
    }
    for (key, m) in measured {
        if find(baseline, key).is_none() && m.events_per_sec.is_some() {
            next.push((key.clone(), m.clone()));
        }
    }
    Ok(next)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(wall: f64, eps: f64) -> Entry {
        Entry { wall_secs: wall, events: Some((wall * eps) as u64), events_per_sec: Some(eps) }
    }

    fn one(key: &str, e: Entry) -> Vec<(String, Entry)> {
        vec![(key.to_string(), e)]
    }

    #[test]
    fn in_band_measurement_passes() {
        let base = one("k", entry(1.0, 1000.0));
        let out = check(&one("k", entry(1.1, 900.0)), &base, 0.25);
        assert!(out.ok(), "{:?}", out.failures);
    }

    #[test]
    fn throughput_below_floor_fails() {
        let base = one("k", entry(1.0, 1000.0));
        let out = check(&one("k", entry(2.0, 500.0)), &base, 0.25);
        assert!(!out.ok());
        assert!(out.failures[0].contains("events/sec regression"), "{:?}", out.failures);
    }

    #[test]
    fn wall_above_ceiling_fails_even_with_good_throughput() {
        let base = one("k", entry(1.0, 1000.0));
        // Twice the events in twice the wall: same throughput, blown wall.
        let out = check(&one("k", entry(2.6, 1000.0)), &base, 0.25);
        assert!(!out.ok());
        assert!(out.failures[0].contains("wall-time regression"), "{:?}", out.failures);
    }

    #[test]
    fn missing_key_and_missing_eps_fail() {
        let base = one("k", entry(1.0, 1000.0));
        assert!(!check(&[], &base, 0.25).ok());
        let no_eps = one("k", Entry { wall_secs: 1.0, events: None, events_per_sec: None });
        assert!(!check(&no_eps, &base, 0.25).ok());
    }

    #[test]
    fn vacuous_band_is_rejected() {
        let base = one("k", entry(1.0, 1000.0));
        let out = check(&one("k", entry(1.0, 1.0)), &base, 1.0);
        assert!(!out.ok());
        assert!(out.failures[0].contains("vacuous"), "{:?}", out.failures);
    }

    #[test]
    fn update_ratchets_shrink_only() {
        let base = one("k", entry(1.0, 1000.0));
        // Faster run: eps up, wall down → both ratchet.
        let next = update(&one("k", entry(0.8, 1250.0)), &base, 0.25).unwrap();
        assert_eq!(next[0].1.events_per_sec, Some(1250.0));
        assert_eq!(next[0].1.wall_secs, 0.8);
        // In-band slower run: floor and ceiling must NOT loosen.
        let next2 = update(&one("k", entry(0.9, 1150.0)), &next, 0.25).unwrap();
        assert_eq!(next2[0].1.events_per_sec, Some(1250.0));
        assert_eq!(next2[0].1.wall_secs, 0.8);
    }

    #[test]
    fn update_refuses_regressions_and_adds_new_keys() {
        let base = one("k", entry(1.0, 1000.0));
        assert!(update(&one("k", entry(4.0, 250.0)), &base, 0.25).is_err());
        let mut measured = one("k", entry(1.0, 1000.0));
        measured.push(("fresh".to_string(), entry(2.0, 500.0)));
        let next = update(&measured, &base, 0.25).unwrap();
        assert_eq!(next.len(), 2);
        assert_eq!(next[1].0, "fresh");
    }

    #[test]
    fn baseline_only_keys_survive_update() {
        let mut base = one("k", entry(1.0, 1000.0));
        base.push(("legacy".to_string(), entry(5.0, 10.0)));
        // "legacy" missing from the measurement fails check, so feed a
        // measurement covering both.
        let mut measured = one("k", entry(1.0, 1000.0));
        measured.push(("legacy".to_string(), entry(5.0, 10.0)));
        let next = update(&measured, &base, 0.25).unwrap();
        assert_eq!(next.len(), 2);
    }
}
