//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! repro [EXPERIMENT] [--scale tiny|small|paper] [--json DIR]
//!       [--trace SPEC] [--metrics-out PATH] [--threads N]
//!
//! EXPERIMENT: table1 | table2 | table3 | fig1 | fig2 | fig3 | fig4 |
//!             fig5 | race | triggers | evasion | dns-mechanism | https |
//!             anonymity | world | threshold-audit | ablate-race | ablate-ooni | all
//! ```
//!
//! Text tables go to stdout; with `--json DIR` each experiment also
//! writes a machine-readable result file.
//!
//! `--trace SPEC` installs a `target=level` event filter (e.g.
//! `wiretap=debug,tcp=info` or just `trace` for everything) and turns on
//! span collection; after the run a JSON-lines event log
//! (`trace-events.jsonl`) and a Chrome trace-event file
//! (`chrome-trace.json`, loadable in `chrome://tracing` or Perfetto) are
//! written next to the JSON results (or the current directory).
//! `--metrics-out PATH` writes the deterministic metrics snapshot.
//!
//! `--threads N` shards the per-ISP experiments (table1, fig2, race,
//! triggers, evasion, anonymity) across N OS threads; every artifact is
//! byte-identical to `--threads 1` (default: available parallelism).
//! Wall-time, event count, and events/sec per run land in
//! `BENCH_repro.json` next to the JSON results (`lucent-bench` ratchets
//! against these).
//!
//! `--profile PATH` turns on the profiler and writes a two-plane
//! profile: a `deterministic` section (virtual-time scheduler dwell
//! histograms, per-event-kind pop counts, middlebox path counters,
//! per-shard totals — byte-identical across runs and `--threads`
//! values) and a `wall` section (per-phase timers, per-shard busy/idle,
//! events/sec — explicitly nondeterministic). A Chrome trace-event
//! phase view lands next to it at `PATH` with extension `.phases.json`.

use std::fs;
use std::path::PathBuf;

use lucent_bench::drive::Driver;
use lucent_bench::{shard, Caps, Scale};
use lucent_core::experiments::{
    categories, dns_mechanism, evasion, fig2, fig5, https_note, mechanism, race, table1, table2,
    table3, tracer_demo,
};
use lucent_core::lab::Lab;
use lucent_core::metrics::PrecisionRecall;
use lucent_core::probe::manual::inspect;
use lucent_core::probe::ooni::web_connectivity_with;
use lucent_topology::{India, IspId};

const USAGE: &str = "repro [EXPERIMENT] [--scale tiny|small|paper] [--json DIR] \
                     [--trace SPEC] [--metrics-out PATH] [--profile PATH] [--threads N]";

struct Args {
    experiment: String,
    scale: Scale,
    json_dir: Option<PathBuf>,
    trace: Option<String>,
    metrics_out: Option<PathBuf>,
    profile: Option<PathBuf>,
    threads: usize,
}

fn parse_args() -> Args {
    let mut experiment = "all".to_string();
    let mut scale = Scale::Small;
    let mut json_dir = None;
    let mut trace = None;
    let mut metrics_out = None;
    let mut profile = None;
    let mut threads = shard::default_threads();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => {
                let v = args.next().unwrap_or_default();
                scale = Scale::parse(&v).unwrap_or_else(|| {
                    eprintln!("unknown scale {v:?}; use tiny|small|paper");
                    std::process::exit(2);
                });
            }
            "--json" => {
                json_dir = Some(PathBuf::from(args.next().unwrap_or_else(|| ".".into())));
            }
            "--trace" => {
                trace = Some(args.next().unwrap_or_else(|| {
                    eprintln!("--trace needs a spec, e.g. wiretap=debug,tcp=info");
                    std::process::exit(2);
                }));
            }
            "--metrics-out" => {
                metrics_out = Some(PathBuf::from(args.next().unwrap_or_else(|| {
                    eprintln!("--metrics-out needs a file path");
                    std::process::exit(2);
                })));
            }
            "--profile" => {
                profile = Some(PathBuf::from(args.next().unwrap_or_else(|| {
                    eprintln!("--profile needs a file path");
                    std::process::exit(2);
                })));
            }
            "--threads" => {
                let v = args.next().unwrap_or_default();
                threads = match v.parse::<usize>() {
                    Ok(n) if n >= 1 => n,
                    _ => {
                        eprintln!("--threads needs a positive integer, got {v:?}");
                        std::process::exit(2);
                    }
                };
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            // An unknown --flag must not fall through to the EXPERIMENT
            // arm: it would be reported as an unknown experiment (or
            // silently shadow a valid one given earlier).
            flag if flag.starts_with("--") => {
                eprintln!("unknown flag {flag:?}\nusage: {USAGE}");
                std::process::exit(2);
            }
            other => experiment = other.to_string(),
        }
    }
    Args { experiment, scale, json_dir, trace, metrics_out, profile, threads }
}

fn emit_json<T: lucent_support::ToJson>(dir: &Option<PathBuf>, name: &str, value: &T) {
    if let Some(dir) = dir {
        let _ = fs::create_dir_all(dir);
        let path = dir.join(format!("{name}.json"));
        let s = lucent_support::json::to_string_pretty(value);
        if let Err(e) = fs::write(&path, s) {
            eprintln!("warn: cannot write {}: {e}", path.display());
        }
    }
}

fn run_table1(drv: &Driver, obs: &lucent_obs::Telemetry, caps: Caps, json: &Option<PathBuf>) {
    let t = drv.table1(obs, &table1::Table1Options { max_sites: caps.sites, ..Default::default() });
    println!("{t}\n");
    emit_json(json, "table1", &t);
}

fn run_table2(lab: &mut Lab, caps: Caps, json: &Option<PathBuf>) -> table2::Table2 {
    let opts = table2::Table2Options {
        inside_targets: caps.inside_targets,
        hosts_per_path: caps.hosts_per_path,
        max_sites: caps.sites,
        ..Default::default()
    };
    let t = table2::run(lab, &opts);
    println!("{t}\n");
    emit_json(json, "table2", &t);
    t
}

fn run_categories(lab: &Lab, scans: &table2::Table2, json: &Option<PathBuf>) {
    let cats = categories::from_scans(lab, &scans.scans);
    println!("{cats}\n");
    emit_json(json, "categories", &cats);
}

fn run_fig5(lab: &mut Lab, scans: &table2::Table2, caps: Caps, json: &Option<PathBuf>) {
    let mut rows = Vec::new();
    for scan in &scans.scans {
        let isp = IspId::ALL
            .into_iter()
            .find(|i| i.name() == scan.isp)
            .expect("scan isp known");
        if isp == IspId::Jio {
            // The paper's Figure 5 plots Airtel, Vodafone, Idea.
            continue;
        }
        rows.push(fig5::from_scan(lab, isp, scan, caps.consistency_paths));
    }
    let f = fig5::Fig5 { rows };
    println!("{f}\n");
    emit_json(json, "fig5", &f);
}

fn run_table3(lab: &mut Lab, caps: Caps, json: &Option<PathBuf>) {
    let t = table3::run(lab, &table3::Table3Options { max_sites: caps.sites, ..Default::default() });
    println!("{t}\n");
    emit_json(json, "table3", &t);
}

fn run_fig1(lab: &mut Lab, json: &Option<PathBuf>) {
    match tracer_demo::run(lab, IspId::Idea) {
        Some(demo) => {
            println!("{demo}\n");
            emit_json(json, "fig1", &demo);
        }
        None => println!("fig1: no censored path found (unexpected)\n"),
    }
}

fn run_fig2(drv: &Driver, obs: &lucent_obs::Telemetry, caps: Caps, json: &Option<PathBuf>) {
    let f = drv.fig2(obs, &fig2::Fig2Options { max_sites: caps.sites, ..Default::default() });
    println!("{f}\n");
    emit_json(json, "fig2", &f);
}

fn run_fig3(lab: &mut Lab, json: &Option<PathBuf>) {
    match mechanism::figure3(lab) {
        Some(m) => {
            println!("Figure 3 (interceptive mechanism, Idea):\n{m}\n");
            emit_json(json, "fig3", &m);
        }
        None => println!("fig3: no covered remote path (unexpected for Idea)\n"),
    }
}

fn run_fig4(lab: &mut Lab, json: &Option<PathBuf>) {
    match mechanism::figure4(lab) {
        Some(m) => {
            println!("Figure 4 (wiretap mechanism, Airtel):\n{m}\n");
            emit_json(json, "fig4", &m);
        }
        None => println!("fig4: no covered remote path from the Airtel client\n"),
    }
}

fn run_race(drv: &Driver, obs: &lucent_obs::Telemetry, json: &Option<PathBuf>) {
    let r = drv.race(obs, &race::RaceOptions::default());
    println!("{r}\n");
    emit_json(json, "race", &r);
}

fn run_triggers(drv: &Driver, obs: &lucent_obs::Telemetry, json: &Option<PathBuf>) {
    let t = drv.triggers(obs, &[IspId::Airtel, IspId::Idea, IspId::Vodafone, IspId::Jio]);
    println!("{t}\n");
    emit_json(json, "triggers", &t);
}

fn run_evasion(drv: &Driver, obs: &lucent_obs::Telemetry, json: &Option<PathBuf>) {
    let e = drv.evasion(obs, &evasion::EvasionOptions::default());
    println!("{e}\n");
    emit_json(json, "evasion", &e);
}

fn run_anonymity(drv: &Driver, obs: &lucent_obs::Telemetry, json: &Option<PathBuf>) {
    let a = drv.anonymity(obs, &[IspId::Airtel, IspId::Idea, IspId::Vodafone, IspId::Jio], 30);
    println!("{a}\n");
    emit_json(json, "anonymity", &a);
}

fn run_https(lab: &mut Lab, json: &Option<PathBuf>) {
    let h = https_note::run(
        lab,
        &[IspId::Airtel, IspId::Idea, IspId::Vodafone, IspId::Jio, IspId::Mtnl, IspId::Bsnl],
        20,
    );
    println!("{h}\n");
    emit_json(json, "https", &h);
}

fn run_dns_mechanism(lab: &mut Lab, json: &Option<PathBuf>) {
    let d = dns_mechanism::run(lab, 3);
    println!("{d}\n");
    emit_json(json, "dns_mechanism", &d);
}

fn run_threshold_audit(lab: &mut Lab, caps: Caps, json: &Option<PathBuf>) {
    println!("Threshold audit (§3.1): flagged-by-0.3-diff sites cleared by manual inspection");
    let mut results = Vec::new();
    for isp in [IspId::Airtel, IspId::Idea, IspId::Vodafone] {
        let audit = table1::threshold_audit(lab, isp, caps.sites);
        println!(
            "  {}: flagged {}, cleared {} ({:.0}%)",
            audit.isp,
            audit.flagged,
            audit.cleared,
            audit.cleared_fraction() * 100.0
        );
        results.push(audit);
    }
    println!();
    emit_json(json, "threshold_audit", &results);
}

/// Ablation: sweep the wiretap slow-injection probability and measure the
/// render rate (DESIGN.md §5 — the paper's ≈3/10 emerges from this knob).
fn run_ablate_race(scale: Scale, json: &Option<PathBuf>) {
    println!("Ablation: wiretap slow-path probability → render rate (Airtel model)");
    let mut rows = Vec::new();
    for slow_prob in [0.0, 0.15, 0.3, 0.5, 0.8] {
        let mut cfg = scale.config();
        if let Some(p) = cfg.http.get_mut(&IspId::Airtel) {
            p.slow_injection = Some((slow_prob, (150_000, 400_000)));
        }
        let mut lab = Lab::new(India::build(cfg));
        let r = race::run(
            &mut lab,
            &race::RaceOptions { isps: vec![IspId::Airtel], attempts: 10, sites_per_isp: 4 },
        );
        let row = &r.rows[0];
        println!(
            "  slow_prob {:.2}: rendered {}/{} ({:.0}%)",
            slow_prob,
            row.rendered,
            row.attempts,
            row.rate() * 100.0
        );
        rows.push((slow_prob, row.rendered, row.attempts));
    }
    println!();
    emit_json(json, "ablate_race", &rows);
}

/// Ablation: sweep OONI's body-proportion threshold and report the
/// precision/recall trade-off in one ISP.
fn run_ablate_ooni(lab: &mut Lab, caps: Caps, json: &Option<PathBuf>) {
    println!("Ablation: OONI body-proportion threshold → precision/recall (Idea)");
    let sites: Vec<_> = match caps.sites {
        Some(n) => lab.india.corpus.pbw.iter().copied().take(n.min(60)).collect(),
        None => lab.india.corpus.pbw.iter().copied().take(200).collect(),
    };
    // Manual verdicts once.
    let manual: Vec<bool> = sites
        .iter()
        .map(|&s| inspect(lab, IspId::Idea, s).blocked)
        .collect();
    let mut rows = Vec::new();
    for threshold in [0.3, 0.5, 0.7, 0.9] {
        let mut pr = PrecisionRecall::default();
        for (&site, &actual) in sites.iter().zip(&manual) {
            let m = web_connectivity_with(lab, IspId::Idea, site, threshold);
            pr.record(m.verdict.is_some(), actual);
        }
        println!(
            "  threshold {:.1}: precision {:.2}, recall {:.2}",
            threshold,
            pr.precision(),
            pr.recall()
        );
        rows.push((threshold, pr));
    }
    println!();
    emit_json(json, "ablate_ooni", &rows);
}

fn main() {
    let args = parse_args();
    let caps = args.scale.caps();
    println!(
        "lucent repro — scale {:?} ({} PBWs{}), {} thread(s)\n",
        args.scale,
        caps.sites.map(|n| n.to_string()).unwrap_or_else(|| "all".into()),
        if args.json_dir.is_some() { ", writing JSON" } else { "" },
        args.threads,
    );
    let start = lucent_support::bench::Stopwatch::start();
    let mut lab = args.scale.lab();
    let obs = lab.india.net.telemetry();
    if let Some(spec) = &args.trace {
        if let Err(e) = obs.set_filter_spec(spec) {
            eprintln!("bad --trace spec {spec:?}: {e}");
            std::process::exit(2);
        }
        obs.enable_spans(true);
        obs.set_thread_name(0, "sim");
    }
    if args.profile.is_some() {
        // After the world is built, matching what each shard does: the
        // deterministic plane profiles the experiments, not the build.
        obs.enable_prof(true);
    }
    println!(
        "world built: {} sites, {} ISPs, {} events so far ({:.1}s)\n",
        lab.india.corpus.sites().len(),
        lab.india.isps.len(),
        lab.india.net.events_processed(),
        start.elapsed_secs()
    );
    let mut phases = Vec::new();
    let mut phase_from = phase_mark(&start, &mut phases, "prepare", 0);
    let json = &args.json_dir;
    let drv = Driver::new(args.scale, args.threads, args.trace.clone())
        .with_prof(args.profile.is_some());
    match args.experiment.as_str() {
        "table1" => run_table1(&drv, &obs, caps, json),
        "table2" => {
            run_table2(&mut lab, caps, json);
        }
        "table3" => run_table3(&mut lab, caps, json),
        "fig1" => run_fig1(&mut lab, json),
        "fig2" => run_fig2(&drv, &obs, caps, json),
        "fig3" => run_fig3(&mut lab, json),
        "fig4" => run_fig4(&mut lab, json),
        "fig5" => {
            let scans = run_table2(&mut lab, caps, json);
            run_fig5(&mut lab, &scans, caps, json);
        }
        "race" => run_race(&drv, &obs, json),
        "triggers" => run_triggers(&drv, &obs, json),
        "evasion" => run_evasion(&drv, &obs, json),
        "dns-mechanism" => run_dns_mechanism(&mut lab, json),
        "https" => run_https(&mut lab, json),
        "anonymity" => run_anonymity(&drv, &obs, json),
        "world" => println!("{}", lab.india.summary()),
        "threshold-audit" => run_threshold_audit(&mut lab, caps, json),
        "ablate-race" => run_ablate_race(args.scale, json),
        "ablate-ooni" => run_ablate_ooni(&mut lab, caps, json),
        "all" => {
            run_fig1(&mut lab, json);
            run_table1(&drv, &obs, caps, json);
            run_threshold_audit(&mut lab, caps, json);
            let scans = run_table2(&mut lab, caps, json);
            run_fig5(&mut lab, &scans, caps, json);
            run_categories(&lab, &scans, json);
            run_table3(&mut lab, caps, json);
            run_fig2(&drv, &obs, caps, json);
            run_fig3(&mut lab, json);
            run_fig4(&mut lab, json);
            run_race(&drv, &obs, json);
            run_triggers(&drv, &obs, json);
            run_evasion(&drv, &obs, json);
            run_dns_mechanism(&mut lab, json);
            run_https(&mut lab, json);
            run_anonymity(&drv, &obs, json);
        }
        other => {
            eprintln!("unknown experiment {other:?}; see --help");
            std::process::exit(2);
        }
    }
    phase_from = phase_mark(&start, &mut phases, "run", phase_from);
    if args.trace.is_some() {
        let dir = args.json_dir.clone().unwrap_or_else(|| PathBuf::from("."));
        let _ = std::fs::create_dir_all(&dir);
        write_or_die(&dir.join("trace-events.jsonl"), &obs.event_log());
        write_or_die(&dir.join("chrome-trace.json"), &obs.chrome_trace());
        println!(
            "trace: {} event(s) recorded ({} dropped at the ring cap) -> {}",
            obs.event_count(),
            obs.events_dropped(),
            dir.display()
        );
    }
    if let Some(path) = &args.metrics_out {
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            let _ = std::fs::create_dir_all(parent);
        }
        write_or_die(path, &obs.metrics_snapshot_pretty());
        println!("metrics snapshot -> {}", path.display());
    }
    phase_mark(&start, &mut phases, "assemble", phase_from);
    if obs.events_dropped() > 0 {
        eprintln!(
            "warn: {} telemetry event(s) dropped at the ring cap — event-derived \
             artifacts are incomplete; narrow --trace or run a smaller scale",
            obs.events_dropped()
        );
    }
    let wall = start.elapsed_secs();
    let events = lab.india.net.events_processed() + drv.shard_events();
    let rate = if wall > 0.0 { events as f64 / wall } else { 0.0 };
    if let Some(path) = &args.profile {
        write_profile(path, &args, &obs, &lab, &drv, phases, wall, events);
    }
    println!(
        "done in {wall:.1}s wall, {events} simulator events ({rate:.0} events/s), virtual time {}",
        lab.now()
    );
    record_bench(&args, wall, events);
}

/// Close the phase that started at `from` µs (process wall clock) under
/// `name`, returning the new phase start.
fn phase_mark(
    start: &lucent_support::bench::Stopwatch,
    phases: &mut Vec<lucent_obs::prof::WallPhase>,
    name: &str,
    from: u64,
) -> u64 {
    let now = (start.elapsed_nanos() / 1_000) as u64;
    phases.push(lucent_obs::prof::WallPhase {
        name: name.to_string(),
        start_us: from,
        dur_us: now.saturating_sub(from),
    });
    now
}

/// Write the two-plane profile to `path` and the Chrome trace-event
/// phase view next to it (`path` with extension `.phases.json`).
#[allow(clippy::too_many_arguments)] // one-shot exporter, not an API
fn write_profile(
    path: &std::path::Path,
    args: &Args,
    obs: &lucent_obs::Telemetry,
    lab: &Lab,
    drv: &Driver,
    phases: Vec<lucent_obs::prof::WallPhase>,
    wall: f64,
    events: u64,
) {
    use lucent_support::Json;
    let wall_plane = lucent_obs::prof::WallPlane {
        phases,
        pools: drv.pool_walls(),
        threads: args.threads,
        events,
        wall_secs: wall,
    };
    let profile = Json::Obj(vec![
        (
            "deterministic".to_string(),
            lucent_obs::prof::deterministic_json(obs, lab.india.net.queue_depth_hwm()),
        ),
        ("schema".to_string(), Json::Str(lucent_obs::prof::SCHEMA.to_string())),
        ("wall".to_string(), wall_plane.render_json()),
    ]);
    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        let _ = std::fs::create_dir_all(parent);
    }
    write_or_die(path, &profile.to_string_pretty());
    let chrome_path = path.with_extension("phases.json");
    write_or_die(&chrome_path, &wall_plane.phases_chrome());
    println!("profile -> {} (phase view: {})", path.display(), chrome_path.display());
}

/// Upsert this run's measurement into `BENCH_repro.json` under the
/// versioned [`lucent_bench::benchfile`] schema (`wall_secs`, `events`,
/// `events_per_sec`), keyed by experiment, scale and thread count so
/// speedup across `--threads` values can be read off one file. The file
/// sits next to the JSON results (or in the current directory) and is a
/// measurement artifact — it is deliberately NOT part of the
/// determinism-diffed outputs; `lucent-bench check` ratchets against it.
fn record_bench(args: &Args, wall: f64, events: u64) {
    use lucent_bench::benchfile;
    let dir = args.json_dir.clone().unwrap_or_else(|| PathBuf::from("."));
    let _ = fs::create_dir_all(&dir);
    let path = dir.join("BENCH_repro.json");
    let mut entries = match benchfile::load(&path) {
        Ok(entries) => entries,
        Err(e) => {
            eprintln!("warn: {e}; rewriting {} from scratch", path.display());
            Vec::new()
        }
    };
    let key = format!(
        "{}@{}@threads={}",
        args.experiment,
        format!("{:?}", args.scale).to_lowercase(),
        args.threads
    );
    // Guard the throughput derivation against zero or sub-resolution
    // wall times: `events / 0.0` is `inf`, and one `inf` written here
    // would ratchet the up-only baseline to a floor no later run can
    // meet. Record "events present, eps absent" instead and warn.
    let events_per_sec = (wall > 0.0).then(|| events as f64 / wall).filter(|eps| eps.is_finite());
    if events_per_sec.is_none() {
        eprintln!(
            "warn: wall time {wall}s is too small to derive events/sec for {} events; \
             recording the event count without a throughput figure",
            events
        );
    }
    let entry = benchfile::Entry { wall_secs: wall, events: Some(events), events_per_sec };
    benchfile::upsert(&mut entries, &key, entry);
    if let Err(e) = fs::write(&path, benchfile::render(&entries)) {
        eprintln!("warn: cannot write {}: {e}", path.display());
    }
}

/// Write an exporter artifact, failing loudly: a half-written trace is
/// worse than an aborted run.
fn write_or_die(path: &std::path::Path, contents: &str) {
    if let Err(e) = std::fs::write(path, contents) {
        eprintln!("cannot write {}: {e}", path.display());
        std::process::exit(1);
    }
}
