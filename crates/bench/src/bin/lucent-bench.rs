//! `lucent-bench` — the shrink-only events/sec perf ratchet.
//!
//! ```text
//! lucent-bench check           [--bench PATH] [--baseline PATH] [--band F]
//! lucent-bench update-baseline [--bench PATH] [--baseline PATH] [--band F]
//! ```
//!
//! `check` compares the measurements in `--bench` (default
//! `BENCH_repro.json`, as written by `repro`) against the committed
//! `--baseline` (default `BENCH_baseline.json`) under a ±`--band`
//! tolerance (default 0.25 = ±25%), exiting 1 on any regression.
//! `update-baseline` tightens the baseline in place — events/sec only
//! ratchets up, wall time only down — and **refuses** to run when the
//! measurement regresses, so a bad run can never become the new floor.

use std::path::PathBuf;

use lucent_bench::{benchfile, ratchet};

const USAGE: &str = "lucent-bench <check|update-baseline> \
                     [--bench PATH] [--baseline PATH] [--band F]";

struct Args {
    command: String,
    bench: PathBuf,
    baseline: PathBuf,
    band: f64,
}

fn parse_args() -> Args {
    let mut command = String::new();
    let mut bench = PathBuf::from("BENCH_repro.json");
    let mut baseline = PathBuf::from("BENCH_baseline.json");
    let mut band = 0.25;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--bench" => bench = PathBuf::from(need(&mut args, "--bench")),
            "--baseline" => baseline = PathBuf::from(need(&mut args, "--baseline")),
            "--band" => {
                let v = need(&mut args, "--band");
                band = match v.parse::<f64>() {
                    Ok(f) if (0.0..1.0).contains(&f) => f,
                    _ => {
                        eprintln!("--band needs a fraction in [0, 1), got {v:?}");
                        std::process::exit(2);
                    }
                };
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            flag if flag.starts_with("--") => {
                eprintln!("unknown flag {flag:?}\nusage: {USAGE}");
                std::process::exit(2);
            }
            cmd if command.is_empty() => command = cmd.to_string(),
            extra => {
                eprintln!("unexpected argument {extra:?}\nusage: {USAGE}");
                std::process::exit(2);
            }
        }
    }
    if command.is_empty() {
        eprintln!("usage: {USAGE}");
        std::process::exit(2);
    }
    Args { command, bench, baseline, band }
}

fn need(args: &mut impl Iterator<Item = String>, flag: &str) -> String {
    match args.next() {
        Some(v) => v,
        None => {
            eprintln!("{flag} needs a value\nusage: {USAGE}");
            std::process::exit(2);
        }
    }
}

fn load_or_die(path: &std::path::Path, what: &str) -> Vec<(String, benchfile::Entry)> {
    match benchfile::load(path) {
        Ok(entries) => entries,
        Err(e) => {
            eprintln!("cannot load {what} {}: {e}", path.display());
            std::process::exit(2);
        }
    }
}

fn main() {
    let args = parse_args();
    let measured = load_or_die(&args.bench, "bench file");
    let baseline = load_or_die(&args.baseline, "baseline");
    if baseline.is_empty() && args.command == "check" {
        eprintln!(
            "baseline {} is empty or missing; seed it with update-baseline",
            args.baseline.display()
        );
        std::process::exit(2);
    }
    match args.command.as_str() {
        "check" => {
            let outcome = ratchet::check(&measured, &baseline, args.band);
            report(&outcome);
            if !outcome.ok() {
                println!(
                    "perf ratchet: {} regression(s) against {} (band ±{:.0}%)",
                    outcome.failures.len(),
                    args.baseline.display(),
                    args.band * 100.0
                );
                std::process::exit(1);
            }
            println!(
                "perf ratchet: {} baseline key(s) within band ±{:.0}%",
                baseline.len(),
                args.band * 100.0
            );
        }
        "update-baseline" => match ratchet::update(&measured, &baseline, args.band) {
            Ok(next) => {
                if let Err(e) = std::fs::write(&args.baseline, benchfile::render(&next)) {
                    eprintln!("cannot write {}: {e}", args.baseline.display());
                    std::process::exit(1);
                }
                println!(
                    "perf ratchet: baseline {} tightened to {} key(s)",
                    args.baseline.display(),
                    next.len()
                );
            }
            Err(outcome) => {
                report(&outcome);
                println!(
                    "perf ratchet: refusing to update {}: measurement carries {} regression(s)",
                    args.baseline.display(),
                    outcome.failures.len()
                );
                std::process::exit(1);
            }
        },
        other => {
            eprintln!("unknown command {other:?}\nusage: {USAGE}");
            std::process::exit(2);
        }
    }
}

fn report(outcome: &ratchet::Outcome) {
    for f in &outcome.failures {
        println!("FAIL {f}");
    }
    for n in &outcome.notes {
        println!("note {n}");
    }
}
