//! Deterministic shard scheduler: independent work units (one per ISP,
//! or per resolver batch) each build their own seeded [`Lab`] and drain
//! their own telemetry; a pool of OS threads runs the queue and results
//! come back **in submission order**, so every artifact derived from
//! them is byte-identical between `--threads 1` and `--threads N`.
//!
//! This module is the only sanctioned home of `std::thread` in the
//! workspace (enforced by lucent-lint L3): determinism is an argument
//! about *this* scheduler, not about arbitrary thread use.

use std::collections::VecDeque;
use std::sync::Mutex;

use lucent_core::lab::Lab;
use lucent_obs::TelemetryDump;
use lucent_support::rng::{derive, Rng64};
use lucent_topology::{India, IndiaConfig};

/// Everything a shard job may touch: a private world built from the
/// shared config, and an RNG stream derived as `seed ⊕ shard_id` so no
/// two shards ever share randomness.
pub struct ShardCtx {
    /// Index of this work unit in submission order.
    pub shard_id: u64,
    /// Private world; never shared across shards.
    pub lab: Lab,
    /// Per-shard RNG stream (`derive(config.seed, shard_id)`).
    pub rng: Rng64,
}

/// A unit of work: runs against its own [`ShardCtx`], returns a row.
pub type Job<'a, T> = Box<dyn FnOnce(&mut ShardCtx) -> T + Send + 'a>;

/// One shard's output: the job's value plus the shard-local telemetry,
/// ready to be absorbed into a hub registry in submission order.
pub struct ShardOut<T> {
    /// The job's value.
    pub value: T,
    /// Drained metrics/events/spans of the shard's private world.
    pub dump: TelemetryDump,
    /// Simulator events the shard's network processed (for the
    /// events/s accounting the hub can no longer see).
    pub events: u64,
    /// Wall-clock seconds this shard's job ran for — the busy side of
    /// the profiler's busy-vs-idle pool accounting. Nondeterministic;
    /// never merged into telemetry.
    pub busy_secs: f64,
}

/// The scheduler: a config every shard rebuilds its world from, a
/// thread budget, and an optional trace filter installed on each
/// shard's registry *after* the world is built (hub parity: `repro`
/// installs its filter only after `Scale::lab()` returns).
pub struct Pool {
    config: IndiaConfig,
    threads: usize,
    trace: Option<String>,
    prof: bool,
}

impl Pool {
    /// A pool over `threads` OS threads (clamped to ≥ 1). `trace` is a
    /// filter spec for shard registries; pass a spec already validated
    /// on the hub — an invalid one is ignored here rather than panicking
    /// mid-shard.
    pub fn new(config: IndiaConfig, threads: usize, trace: Option<String>) -> Pool {
        Pool { config, threads: threads.max(1), trace, prof: false }
    }

    /// Enable the deterministic profiler plane on every shard registry
    /// (mirroring how the hub enables it after the world is built).
    pub fn with_prof(mut self, on: bool) -> Pool {
        self.prof = on;
        self
    }

    /// Run every job against its own fresh [`ShardCtx`] and return the
    /// outputs **in submission order**, regardless of which thread
    /// finished first. With `threads == 1` (or a single job) everything
    /// runs inline on the caller's thread — no spawn, identical
    /// semantics, which is what makes the determinism claim testable.
    pub fn run<T: Send>(&self, jobs: Vec<Job<'_, T>>) -> Vec<ShardOut<T>> {
        self.run_tagged("pool", jobs)
    }

    /// [`Pool::run`], labelling per-shard profiler samples
    /// `tag/shard-NN`. The label depends only on the tag and the
    /// submission index, never on a thread id, so the merged registry
    /// stays byte-identical at any `--threads N`.
    pub fn run_tagged<T: Send>(&self, tag: &str, jobs: Vec<Job<'_, T>>) -> Vec<ShardOut<T>> {
        let n = jobs.len();
        if self.threads == 1 || n <= 1 {
            return jobs
                .into_iter()
                .enumerate()
                .map(|(i, job)| self.run_one(tag, i as u64, job))
                .collect();
        }
        let queue: Mutex<VecDeque<(usize, Job<'_, T>)>> =
            Mutex::new(jobs.into_iter().enumerate().collect());
        let results: Mutex<Vec<Option<ShardOut<T>>>> =
            Mutex::new((0..n).map(|_| None).collect());
        std::thread::scope(|scope| {
            for _ in 0..self.threads.min(n) {
                scope.spawn(|| loop {
                    let next = lock(&queue).pop_front();
                    let Some((i, job)) = next else { break };
                    let out = self.run_one(tag, i as u64, job);
                    lock(&results)[i] = Some(out);
                });
            }
        });
        results.into_inner().unwrap_or_else(|p| p.into_inner()).into_iter().flatten().collect()
    }

    fn run_one<T>(&self, tag: &str, shard_id: u64, job: Job<'_, T>) -> ShardOut<T> {
        let lab = Lab::new(India::build(self.config.clone()));
        let obs = lab.india.net.telemetry();
        if let Some(spec) = &self.trace {
            let _ = obs.set_filter_spec(spec);
            obs.enable_spans(true);
        }
        if self.prof {
            obs.enable_prof(true);
        }
        let sw = lucent_support::bench::Stopwatch::start();
        let mut ctx = ShardCtx { shard_id, rng: derive(self.config.seed, shard_id), lab };
        let value = job(&mut ctx);
        let busy_secs = sw.elapsed_secs();
        let events = ctx.lab.india.net.events_processed();
        if self.prof {
            // Shard-local totals under a (tag, submission-index) label:
            // unique per shard, so counter merge and last-writer-wins
            // gauge merge are both order-insensitive.
            let label = format!("{tag}/shard-{shard_id:02}");
            obs.counter_add(lucent_obs::prof::SHARD_EVENTS, &label, events);
            obs.gauge_set(
                lucent_obs::prof::SHARD_QUEUE_HWM,
                &label,
                ctx.lab.india.net.queue_depth_hwm() as i64,
            );
        }
        let dump = obs.drain_dump();
        ShardOut { value, dump, events, busy_secs }
    }
}

/// Lock a mutex, recovering from poisoning (a panicked sibling shard
/// must not cascade into a second panic here).
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// The default `--threads`: available hardware parallelism, 1 if
/// unknown.
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lucent_topology::IspId;

    fn isp_client_row(ctx: &mut ShardCtx, isp: IspId) -> String {
        let client = ctx.lab.client_of(isp);
        format!("{}:{client:?}:{}", isp.name(), ctx.rng.next_u64())
    }

    fn rows_at(threads: usize) -> (Vec<String>, String) {
        let pool = Pool::new(IndiaConfig::tiny(), threads, None);
        let isps = [IspId::Mtnl, IspId::Idea, IspId::Airtel];
        let jobs: Vec<Job<'_, String>> = isps
            .iter()
            .map(|&isp| Box::new(move |ctx: &mut ShardCtx| isp_client_row(ctx, isp)) as _)
            .collect();
        let outs = pool.run(jobs);
        let hub = lucent_obs::Telemetry::new();
        let mut rows = Vec::new();
        for out in outs {
            rows.push(out.value);
            hub.absorb(out.dump);
        }
        (rows, hub.metrics_snapshot_pretty())
    }

    #[test]
    fn submission_order_and_bytes_survive_threading() {
        let (r1, m1) = rows_at(1);
        let (r4, m4) = rows_at(4);
        assert_eq!(r1, r4);
        assert_eq!(m1, m4);
        assert!(r1[0].starts_with("MTNL:"), "{r1:?}");
    }

    #[test]
    fn shard_rngs_are_distinct_streams() {
        let mut a = derive(7, 0);
        let mut b = derive(7, 1);
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
