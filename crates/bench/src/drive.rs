//! The sharded experiment driver: turns each experiment's per-ISP (or
//! per-resolver-chunk) entry points into shard jobs, runs them on a
//! [`Pool`], and merges rows **and telemetry** back in submission
//! order. `repro` and the determinism integration test share this code,
//! so what CI proves byte-identical is exactly what users run.

use lucent_core::experiments::{anonymity, evasion, fig2, race, table1, triggers};
use lucent_core::probe::dns_scan::{survey_batch, ResolverScan};
use lucent_obs::prof::PoolWall;
use lucent_obs::Telemetry;
use lucent_support::bench::Stopwatch;
use lucent_topology::IspId;

use crate::shard::{Job, Pool, ShardOut};
use crate::Scale;

/// Resolver-chunk size for the Figure 2 survey phase. Fixed (never a
/// function of the thread count) so the shard decomposition — and with
/// it every derived artifact — is identical at any `--threads N`.
const RESOLVER_CHUNK: usize = 16;

/// A sharded experiment run: scale, thread budget, optional trace spec
/// replicated onto every shard registry.
pub struct Driver {
    scale: Scale,
    threads: usize,
    trace: Option<String>,
    prof: bool,
    shard_events: std::cell::Cell<u64>,
    walls: std::cell::RefCell<Vec<PoolWall>>,
}

impl Driver {
    /// A driver for `scale` over `threads` OS threads; `trace` is a
    /// filter spec (already validated on the hub) replicated onto every
    /// shard registry.
    pub fn new(scale: Scale, threads: usize, trace: Option<String>) -> Driver {
        Driver {
            scale,
            threads,
            trace,
            prof: false,
            shard_events: std::cell::Cell::new(0),
            // `default()` rather than `new()`: the lint's name-based
            // call graph puts every `Vec::new` in a fn named `new` into
            // the hot-root closure; this constructor is cold.
            walls: std::cell::RefCell::default(),
        }
    }

    /// Enable the profiler on every shard registry, and collect
    /// wall-clock pool accounting ([`Driver::pool_walls`]) per run.
    pub fn with_prof(mut self, on: bool) -> Driver {
        self.prof = on;
        self
    }

    /// Simulator events processed by all shards so far — the hub
    /// network never sees these, so events/s accounting needs them.
    pub fn shard_events(&self) -> u64 {
        self.shard_events.get()
    }

    /// Wall accounting for every sharded pool run so far, in run order.
    /// Empty unless the driver was built [`Driver::with_prof`].
    pub fn pool_walls(&self) -> Vec<PoolWall> {
        self.walls.borrow().clone()
    }

    fn pool(&self) -> Pool {
        Pool::new(self.scale.config(), self.threads, self.trace.clone()).with_prof(self.prof)
    }

    /// Run `jobs` on a fresh pool under `tag`, recording busy-vs-idle
    /// wall stats when profiling (wall-clock plane only — the shard
    /// outputs themselves stay deterministic).
    fn run_pool<'a, T: Send>(&self, tag: &'static str, jobs: Vec<Job<'a, T>>) -> Vec<ShardOut<T>> {
        let sw = Stopwatch::start();
        let outs = self.pool().run_tagged(tag, jobs);
        if self.prof {
            self.walls.borrow_mut().push(PoolWall {
                tag: tag.to_string(),
                wall_secs: sw.elapsed_secs(),
                busy_secs: outs.iter().map(|o| o.busy_secs).collect(),
            });
        }
        outs
    }

    /// Absorb shard telemetry into `hub` in submission order and return
    /// the values in the same order.
    fn merge<T>(&self, hub: &Telemetry, outs: Vec<ShardOut<T>>) -> Vec<T> {
        outs.into_iter()
            .map(|out| {
                self.shard_events.set(self.shard_events.get().saturating_add(out.events));
                hub.absorb(out.dump);
                out.value
            })
            .collect()
    }

    /// X2, one shard per ISP.
    pub fn race(&self, hub: &Telemetry, opts: &race::RaceOptions) -> race::Race {
        let jobs: Vec<Job<'_, race::RaceRow>> = opts
            .isps
            .iter()
            .map(|&isp| Box::new(move |ctx: &mut crate::shard::ShardCtx| race::run_isp(&mut ctx.lab, isp, opts)) as _)
            .collect();
        race::Race { rows: self.merge(hub, self.run_pool("race", jobs)) }
    }

    /// Table 1, one shard per ISP.
    pub fn table1(&self, hub: &Telemetry, opts: &table1::Table1Options) -> table1::Table1 {
        let jobs: Vec<Job<'_, (table1::IspAccuracy, usize)>> = opts
            .isps
            .iter()
            .map(|&isp| {
                Box::new(move |ctx: &mut crate::shard::ShardCtx| {
                    let sites = table1::site_sample(&ctx.lab, opts.max_sites);
                    (table1::run_isp(&mut ctx.lab, isp, &sites), sites.len())
                }) as _
            })
            .collect();
        let rows = self.merge(hub, self.run_pool("table1", jobs));
        let sites_tested = rows.first().map(|(_, n)| *n).unwrap_or(0);
        table1::Table1 { rows: rows.into_iter().map(|(r, _)| r).collect(), sites_tested }
    }

    /// Figure 2 in two phases: per-ISP discovery (open resolvers +
    /// uncensored reference), then per-(ISP, resolver-chunk) surveys
    /// whose scans concatenate in submission order.
    pub fn fig2(&self, hub: &Telemetry, opts: &fig2::Fig2Options) -> fig2::Fig2 {
        let prep_jobs: Vec<Job<'_, fig2::IspPrep>> = opts
            .isps
            .iter()
            .map(|&isp| {
                Box::new(move |ctx: &mut crate::shard::ShardCtx| {
                    fig2::prepare_isp(&mut ctx.lab, isp, opts)
                }) as _
            })
            .collect();
        let prep = self.merge(hub, self.run_pool("fig2.prepare", prep_jobs));

        let mut chunk_jobs: Vec<Job<'_, Vec<ResolverScan>>> = Vec::new();
        let mut chunks_per_isp = Vec::new();
        for (&isp, (resolvers, reference)) in opts.isps.iter().zip(&prep) {
            let mut chunks = 0;
            for chunk in resolvers.chunks(RESOLVER_CHUNK) {
                chunks += 1;
                let max_sites = opts.max_sites;
                chunk_jobs.push(Box::new(move |ctx: &mut crate::shard::ShardCtx| {
                    let pbw = fig2::pbw_sample(&ctx.lab, max_sites);
                    survey_batch(&mut ctx.lab, isp, chunk, &pbw, reference)
                }) as _);
            }
            chunks_per_isp.push(chunks);
        }
        let mut scans = self.merge(hub, self.run_pool("fig2.survey", chunk_jobs)).into_iter();

        let mut rows = Vec::new();
        for ((&isp, (resolvers, _)), chunks) in
            opts.isps.iter().zip(prep.iter()).zip(chunks_per_isp)
        {
            let poisoned: Vec<ResolverScan> =
                scans.by_ref().take(chunks).flatten().collect();
            rows.push(fig2::assemble_row(isp, resolvers.clone(), poisoned));
        }
        fig2::Fig2 { rows }
    }

    /// X4, one shard per ISP.
    pub fn evasion(&self, hub: &Telemetry, opts: &evasion::EvasionOptions) -> evasion::Evasion {
        let jobs: Vec<Job<'_, (std::collections::BTreeMap<String, evasion::EvasionCell>, bool)>> =
            opts.isps
                .iter()
                .map(|&isp| {
                    Box::new(move |ctx: &mut crate::shard::ShardCtx| {
                        evasion::run_isp(&mut ctx.lab, isp, opts)
                    }) as _
                })
                .collect();
        let cells = self.merge(hub, self.run_pool("evasion", jobs));
        let mut matrix = std::collections::BTreeMap::new();
        let mut fully = std::collections::BTreeMap::new();
        for (&isp, (per_technique, full)) in opts.isps.iter().zip(cells) {
            matrix.insert(isp.name().to_string(), per_technique);
            fully.insert(isp.name().to_string(), full);
        }
        evasion::Evasion { matrix, fully_evaded: fully }
    }

    /// X3, one shard per ISP.
    pub fn triggers(&self, hub: &Telemetry, isps: &[IspId]) -> triggers::Triggers {
        let jobs: Vec<Job<'_, triggers::TriggerRow>> = isps
            .iter()
            .map(|&isp| Box::new(move |ctx: &mut crate::shard::ShardCtx| triggers::run_isp(&mut ctx.lab, isp)) as _)
            .collect();
        triggers::Triggers { rows: self.merge(hub, self.run_pool("triggers", jobs)) }
    }

    /// §6.1, one shard per ISP.
    pub fn anonymity(
        &self,
        hub: &Telemetry,
        isps: &[IspId],
        max_paths: usize,
    ) -> anonymity::Anonymity {
        let jobs: Vec<Job<'_, anonymity::AnonymityRow>> = isps
            .iter()
            .map(|&isp| {
                Box::new(move |ctx: &mut crate::shard::ShardCtx| {
                    anonymity::run_isp(&mut ctx.lab, isp, max_paths)
                }) as _
            })
            .collect();
        anonymity::Anonymity { rows: self.merge(hub, self.run_pool("anonymity", jobs)) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn driver(threads: usize) -> Driver {
        Driver::new(Scale::Tiny, threads, None)
    }

    #[test]
    fn race_rows_are_thread_count_invariant() {
        let opts = race::RaceOptions {
            isps: vec![IspId::Airtel, IspId::Idea],
            attempts: 3,
            sites_per_isp: 1,
        };
        let hub1 = Telemetry::new();
        let r1 = driver(1).race(&hub1, &opts);
        let hub4 = Telemetry::new();
        let r4 = driver(4).race(&hub4, &opts);
        assert_eq!(format!("{r1}"), format!("{r4}"));
        assert_eq!(hub1.metrics_snapshot_pretty(), hub4.metrics_snapshot_pretty());
    }

    #[test]
    fn profiled_pools_label_shards_and_record_walls() {
        let opts = race::RaceOptions {
            isps: vec![IspId::Airtel, IspId::Idea],
            attempts: 2,
            sites_per_isp: 1,
        };
        let prof_snapshot = |threads: usize| {
            let drv = driver(threads).with_prof(true);
            let hub = Telemetry::new();
            drv.race(&hub, &opts);
            let walls = drv.pool_walls();
            assert_eq!(walls.len(), 1);
            assert_eq!(walls[0].tag, "race");
            assert_eq!(walls[0].busy_secs.len(), 2);
            lucent_obs::prof::deterministic_json(&hub, 0).to_string_pretty()
        };
        let det1 = prof_snapshot(1);
        let det4 = prof_snapshot(4);
        assert_eq!(det1, det4, "deterministic plane must be thread-count invariant");
        assert!(det1.contains("race/shard-00"), "{det1}");
        assert!(det1.contains("race/shard-01"), "{det1}");
    }
}
