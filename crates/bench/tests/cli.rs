//! CLI contract tests for the `repro` binary: flag validation exits 2
//! with usage, `--help` exits 0, and `--json` creates its output
//! directory (nested paths included) before writing result files.

use std::path::PathBuf;
use std::process::Command;

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

/// A per-test scratch directory under the target tree.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lucent-repro-cli-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn unknown_flags_exit_2_with_usage() {
    let out = repro().arg("--frobnicate").output().expect("spawn repro");
    assert_eq!(out.status.code(), Some(2), "unknown flag must exit 2");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown flag"), "{stderr}");
    assert!(stderr.contains("usage:"), "{stderr}");
}

#[test]
fn unknown_experiments_exit_2() {
    let out =
        repro().args(["definitely-not-an-experiment", "--scale", "tiny"]).output().expect("spawn");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown experiment"), "{stderr}");
}

#[test]
fn zero_threads_is_rejected() {
    let out = repro().args(["--threads", "0"]).output().expect("spawn repro");
    assert_eq!(out.status.code(), Some(2), "--threads 0 must exit 2");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("positive integer"), "{stderr}");
}

#[test]
fn help_exits_0_with_usage() {
    let out = repro().arg("--help").output().expect("spawn repro");
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("repro ["), "{stdout}");
}

#[test]
fn json_dir_is_created_on_demand() {
    // A nested, non-existent directory: emit_json must create the whole
    // chain rather than fail or scatter files.
    let dir = scratch("json").join("deeply").join("nested");
    let out = repro()
        .args(["fig1", "--scale", "tiny", "--json"])
        .arg(&dir)
        .output()
        .expect("spawn repro");
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(dir.join("fig1.json").is_file(), "fig1.json must appear under the new directory");
    let bench = dir.join("BENCH_repro.json");
    assert!(bench.is_file(), "the wall-time record lands next to the results");
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn profile_needs_a_path_and_writes_both_views() {
    let out = repro().args(["race", "--scale", "tiny", "--profile"]).output().expect("spawn");
    assert_eq!(out.status.code(), Some(2), "--profile without a path must exit 2");

    let root = scratch("profile");
    std::fs::create_dir_all(&root).expect("scratch dir");
    let path = root.join("prof").join("profile.json");
    let out = repro()
        .args(["race", "--scale", "tiny", "--threads", "2", "--profile"])
        .arg(&path)
        .current_dir(&root)
        .output()
        .expect("spawn repro");
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    let text = std::fs::read_to_string(&path).expect("profile written");
    assert!(text.contains("\"schema\": \"lucent-prof/1\""), "{text}");
    assert!(text.contains("\"deterministic\""), "{text}");
    assert!(text.contains("\"wall\""), "{text}");
    let phases = std::fs::read_to_string(path.with_extension("phases.json"))
        .expect("phase view written next to the profile");
    assert!(phases.contains("traceEvents"), "{phases}");
    // The bench side file carries the versioned throughput schema.
    let bench = std::fs::read_to_string(root.join("BENCH_repro.json")).expect("bench file");
    assert!(bench.contains("\"events_per_sec\""), "{bench}");
    let _ = std::fs::remove_dir_all(root);
}

#[test]
fn metrics_out_creates_parent_directories() {
    let root = scratch("metrics");
    std::fs::create_dir_all(&root).expect("scratch dir");
    let path = root.join("a").join("b").join("metrics.json");
    let out = repro()
        .args(["world", "--scale", "tiny", "--metrics-out"])
        .arg(&path)
        // Run from the scratch root so the BENCH_repro.json side file
        // lands there, not in the source tree.
        .current_dir(&root)
        .output()
        .expect("spawn repro");
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(path.is_file(), "metrics snapshot must appear under the new parents");
    let _ = std::fs::remove_dir_all(root);
}
