//! CLI contract tests for the `lucent-bench` ratchet binary: corrupt
//! benchfiles — non-finite or absent measurements — must fail `check`
//! loudly at load time, never flow NaN/inf into the band comparisons.

use std::path::{Path, PathBuf};
use std::process::Command;

fn bench() -> Command {
    Command::new(env!("CARGO_BIN_EXE_lucent-bench"))
}

/// A per-test scratch directory under the temp tree.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lucent-bench-cli-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

const GOOD: &str = r#"{"all@small@threads=1": {"events": 1000, "events_per_sec": 500.0, "wall_secs": 2.0}}"#;

fn run_check(dir: &Path, bench_text: &str, baseline_text: &str) -> std::process::Output {
    let bench_path = dir.join("bench.json");
    let base_path = dir.join("baseline.json");
    std::fs::write(&bench_path, bench_text).expect("write bench");
    std::fs::write(&base_path, baseline_text).expect("write baseline");
    bench()
        .args(["check", "--bench"])
        .arg(&bench_path)
        .args(["--baseline"])
        .arg(&base_path)
        .args(["--band", "0.5"])
        .output()
        .expect("spawn lucent-bench")
}

#[test]
fn a_clean_benchfile_passes_check() {
    let dir = scratch("clean");
    let out = run_check(&dir, GOOD, GOOD);
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn an_infinite_throughput_benchfile_fails_check_loudly() {
    // `1e999` parses as +inf — exactly the value a zero-wall-time run
    // would have written before the throughput guard. If this loaded
    // silently, `update-baseline` would lock the floor at infinity.
    let dir = scratch("inf");
    let bad = r#"{"all@small@threads=1": {"events": 1000, "events_per_sec": 1e999, "wall_secs": 2.0}}"#;
    let out = run_check(&dir, bad, GOOD);
    assert_eq!(out.status.code(), Some(2), "corrupt benchfile must exit 2");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("finite"), "{stderr}");
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn a_corrupt_baseline_also_fails_check_loudly() {
    // The poisoned file on the *baseline* side must be just as fatal:
    // NaN band comparisons are vacuously false, which would wave every
    // regression through.
    let dir = scratch("badbase");
    let bad = r#"{"all@small@threads=1": {"events": 1000, "wall_secs": -3.0}}"#;
    let out = run_check(&dir, GOOD, bad);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("non-negative"), "{stderr}");
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn a_missing_wall_secs_field_fails_check_loudly() {
    let dir = scratch("nowall");
    let bad = r#"{"all@small@threads=1": {"events": 1000, "events_per_sec": 500.0}}"#;
    let out = run_check(&dir, bad, GOOD);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("missing wall_secs"), "{stderr}");
    let _ = std::fs::remove_dir_all(dir);
}
