//! Substrate microbenchmarks: wire formats, the event engine, the TCP
//! stack, topology construction — plus the structured-vs-wire fidelity
//! ablation from DESIGN.md §5.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::net::Ipv4Addr;

use lucent_packet::http::RequestBuilder;
use lucent_packet::tcp::{TcpFlags, TcpHeader};
use lucent_packet::{DnsMessage, Packet};
use lucent_topology::{India, IndiaConfig};

fn bench_packet_roundtrip(c: &mut Criterion) {
    let src = Ipv4Addr::new(10, 0, 0, 1);
    let dst = Ipv4Addr::new(203, 0, 113, 80);
    let mut h = TcpHeader::new(40000, 80, TcpFlags::ACK | TcpFlags::PSH);
    h.seq = 0x1000;
    let payload = RequestBuilder::browser("blocked.example.in", "/").build();
    let pkt = Packet::tcp(src, dst, h, payload);
    c.bench_function("packet/tcp_emit_parse", |b| {
        b.iter(|| {
            let wire = pkt.emit();
            Packet::parse(&wire).expect("roundtrip")
        })
    });
    let query = DnsMessage::query_a(7, "blocked.example.in");
    c.bench_function("packet/dns_emit_parse", |b| {
        b.iter(|| {
            let mut wire = Vec::new();
            query.emit(&mut wire).expect("emit");
            DnsMessage::parse(&wire).expect("parse")
        })
    });
}

fn bench_event_engine(c: &mut Criterion) {
    // Ping-pong throughput between two hosts through two routers.
    use lucent_netsim::routing::Cidr;
    use lucent_netsim::{IfaceId, Network, RouterNode, SimDuration};
    use lucent_tcp::{FixedResponder, TcpHost};
    c.bench_function("netsim/http_fetch_through_routers", |b| {
        b.iter_batched(
            || {
                let mut net = Network::new();
                let client_ip = Ipv4Addr::new(10, 0, 0, 2);
                let server_ip = Ipv4Addr::new(203, 0, 113, 2);
                let client = net.add_node(Box::new(TcpHost::new(client_ip, "c", 1)));
                let mut server_host = TcpHost::new(server_ip, "s", 2);
                server_host.listen(80, || Box::new(FixedResponder::new(b"HTTP/1.1 200 OK\r\n\r\nok".to_vec())));
                let server = net.add_node(Box::new(server_host));
                let mut r = RouterNode::new(Ipv4Addr::new(10, 0, 0, 1), "r");
                r.table.add(Cidr::new(client_ip, 24), IfaceId(0));
                r.table.add(Cidr::new(server_ip, 24), IfaceId(1));
                let r = net.add_node(Box::new(r));
                net.connect(client, IfaceId::PRIMARY, r, IfaceId(0), SimDuration::from_millis(1));
                net.connect(r, IfaceId(1), server, IfaceId::PRIMARY, SimDuration::from_millis(1));
                (net, client, server_ip)
            },
            |(mut net, client, server_ip)| {
                let sock = net.node_mut::<lucent_tcp::TcpHost>(client).connect(server_ip, 80);
                net.wake(client);
                net.run_for(lucent_netsim::SimDuration::from_millis(50));
                net.node_mut::<lucent_tcp::TcpHost>(client).send(sock, b"GET / HTTP/1.1\r\nHost: x\r\n\r\n");
                net.wake(client);
                net.run_for(lucent_netsim::SimDuration::from_millis(200));
                assert!(!net.node_mut::<lucent_tcp::TcpHost>(client).take_received(sock).is_empty());
                net.events_processed()
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_wire_fidelity_ablation(c: &mut Criterion) {
    // DESIGN.md §5: structured fast path vs serialize+parse at every link.
    use lucent_netsim::routing::Cidr;
    use lucent_netsim::{IfaceId, Network, RouterNode, SimDuration};
    use lucent_tcp::{FixedResponder, TcpHost};
    let mut g = c.benchmark_group("fidelity");
    for fidelity in [false, true] {
        let name = if fidelity { "wire" } else { "structured" };
        g.bench_function(name, |b| {
            b.iter_batched(
                || {
                    let mut net = Network::new();
                    net.set_wire_fidelity(fidelity);
                    let client_ip = Ipv4Addr::new(10, 0, 0, 2);
                    let server_ip = Ipv4Addr::new(203, 0, 113, 2);
                    let client = net.add_node(Box::new(TcpHost::new(client_ip, "c", 1)));
                    let mut server_host = TcpHost::new(server_ip, "s", 2);
                    server_host.listen(80, || {
                        Box::new(FixedResponder::new(b"HTTP/1.1 200 OK\r\n\r\nok".to_vec()))
                    });
                    let server = net.add_node(Box::new(server_host));
                    let mut r = RouterNode::new(Ipv4Addr::new(10, 0, 0, 1), "r");
                    r.table.add(Cidr::new(client_ip, 24), IfaceId(0));
                    r.table.add(Cidr::new(server_ip, 24), IfaceId(1));
                    let r = net.add_node(Box::new(r));
                    net.connect(client, IfaceId::PRIMARY, r, IfaceId(0), SimDuration::from_millis(1));
                    net.connect(r, IfaceId(1), server, IfaceId::PRIMARY, SimDuration::from_millis(1));
                    (net, client, server_ip)
                },
                |(mut net, client, server_ip)| {
                    let sock = net.node_mut::<lucent_tcp::TcpHost>(client).connect(server_ip, 80);
                    net.wake(client);
                    net.run_for(lucent_netsim::SimDuration::from_millis(50));
                    net.node_mut::<lucent_tcp::TcpHost>(client)
                        .send(sock, b"GET / HTTP/1.1\r\nHost: x\r\n\r\n");
                    net.wake(client);
                    net.run_for(lucent_netsim::SimDuration::from_millis(200));
                    net.events_processed()
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_topology_build(c: &mut Criterion) {
    c.bench_function("topology/build_tiny", |b| b.iter(|| India::build(IndiaConfig::tiny())));
    let mut g = c.benchmark_group("topology");
    g.sample_size(10);
    g.bench_function("build_small", |b| b.iter(|| India::build(IndiaConfig::small())));
    g.finish();
}

criterion_group!(
    benches,
    bench_packet_roundtrip,
    bench_event_engine,
    bench_wire_fidelity_ablation,
    bench_topology_build
);
criterion_main!(benches);
