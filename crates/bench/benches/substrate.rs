//! Substrate microbenchmarks: wire formats, the event engine, the TCP
//! stack, topology construction — plus the structured-vs-wire fidelity
//! ablation from DESIGN.md §5.

use lucent_support::bench::Harness;
use std::net::Ipv4Addr;

use lucent_packet::http::RequestBuilder;
use lucent_packet::tcp::{TcpFlags, TcpHeader};
use lucent_packet::{DnsMessage, Packet};
use lucent_topology::{India, IndiaConfig};

fn bench_packet_roundtrip(h: &mut Harness) {
    let src = Ipv4Addr::new(10, 0, 0, 1);
    let dst = Ipv4Addr::new(203, 0, 113, 80);
    let mut th = TcpHeader::new(40000, 80, TcpFlags::ACK | TcpFlags::PSH);
    th.seq = 0x1000;
    let payload = RequestBuilder::browser("blocked.example.in", "/").build();
    let pkt = Packet::tcp(src, dst, th, payload);
    h.bench("packet/tcp_emit_parse", || {
        let wire = pkt.emit();
        Packet::parse(&wire).expect("roundtrip")
    });
    let query = DnsMessage::query_a(7, "blocked.example.in");
    h.bench("packet/dns_emit_parse", || {
        let mut wire = Vec::new();
        query.emit(&mut wire).expect("emit");
        DnsMessage::parse(&wire).expect("parse")
    });
}

/// A two-host, one-router network for fetch benches.
fn fetch_world(fidelity: bool) -> (lucent_netsim::Network, lucent_netsim::NodeId, Ipv4Addr) {
    use lucent_netsim::routing::Cidr;
    use lucent_netsim::{IfaceId, Network, RouterNode, SimDuration};
    use lucent_tcp::{FixedResponder, TcpHost};
    let mut net = Network::new();
    net.set_wire_fidelity(fidelity);
    let client_ip = Ipv4Addr::new(10, 0, 0, 2);
    let server_ip = Ipv4Addr::new(203, 0, 113, 2);
    let client = net.add_node(Box::new(TcpHost::new(client_ip, "c", 1)));
    let mut server_host = TcpHost::new(server_ip, "s", 2);
    server_host.listen(80, || Box::new(FixedResponder::new(b"HTTP/1.1 200 OK\r\n\r\nok".to_vec())));
    let server = net.add_node(Box::new(server_host));
    let mut r = RouterNode::new(Ipv4Addr::new(10, 0, 0, 1), "r");
    r.table.add(Cidr::new(client_ip, 24), IfaceId(0));
    r.table.add(Cidr::new(server_ip, 24), IfaceId(1));
    let r = net.add_node(Box::new(r));
    net.connect(client, IfaceId::PRIMARY, r, IfaceId(0), SimDuration::from_millis(1));
    net.connect(r, IfaceId(1), server, IfaceId::PRIMARY, SimDuration::from_millis(1));
    (net, client, server_ip)
}

fn run_fetch(
    mut net: lucent_netsim::Network,
    client: lucent_netsim::NodeId,
    server_ip: Ipv4Addr,
) -> u64 {
    let sock = net.node_mut::<lucent_tcp::TcpHost>(client).unwrap().connect(server_ip, 80);
    net.wake(client);
    net.run_for(lucent_netsim::SimDuration::from_millis(50));
    net.node_mut::<lucent_tcp::TcpHost>(client).unwrap().send(sock, b"GET / HTTP/1.1\r\nHost: x\r\n\r\n");
    net.wake(client);
    net.run_for(lucent_netsim::SimDuration::from_millis(200));
    assert!(!net.node_mut::<lucent_tcp::TcpHost>(client).unwrap().take_received(sock).is_empty());
    net.events_processed()
}

fn bench_event_engine(h: &mut Harness) {
    // Ping-pong throughput between two hosts through a router. Setup is
    // rebuilt per iteration (the network is consumed by the fetch).
    h.bench("netsim/http_fetch_through_routers", || {
        let (net, client, server_ip) = fetch_world(true);
        run_fetch(net, client, server_ip)
    });
}

fn bench_wire_fidelity_ablation(h: &mut Harness) {
    // DESIGN.md §5: structured fast path vs serialize+parse at every link.
    for fidelity in [false, true] {
        let name = if fidelity { "fidelity/wire" } else { "fidelity/structured" };
        h.bench(name, || {
            let (net, client, server_ip) = fetch_world(fidelity);
            run_fetch(net, client, server_ip)
        });
    }
}

fn bench_topology_build(h: &mut Harness) {
    h.bench("topology/build_tiny", || India::build(IndiaConfig::tiny()));
    h.bench("topology/build_small", || India::build(IndiaConfig::small()));
}

fn main() {
    let mut h = Harness::new();
    h.target_secs = 2.0;
    h.max_iters = 50;
    bench_packet_roundtrip(&mut h);
    bench_event_engine(&mut h);
    bench_wire_fidelity_ablation(&mut h);
    bench_topology_build(&mut h);
}
