//! Experiment benches: one per table of the paper, at tiny scale (the
//! point is regression tracking of experiment cost, not absolute time).

use criterion::{criterion_group, criterion_main, Criterion};

use lucent_bench::Scale;
use lucent_core::experiments::{table1, table2, table3};
use lucent_topology::IspId;

fn bench_table1(c: &mut Criterion) {
    let mut g = c.benchmark_group("tables");
    g.sample_size(10);
    g.bench_function("table1_tiny", |b| {
        b.iter(|| {
            let mut lab = Scale::Tiny.lab();
            table1::run(
                &mut lab,
                &table1::Table1Options { isps: vec![IspId::Idea], max_sites: Some(10) },
            )
        })
    });
    g.finish();
}

fn bench_table2(c: &mut Criterion) {
    let mut g = c.benchmark_group("tables");
    g.sample_size(10);
    g.bench_function("table2_tiny", |b| {
        b.iter(|| {
            let mut lab = Scale::Tiny.lab();
            table2::run(
                &mut lab,
                &table2::Table2Options {
                    isps: vec![IspId::Idea],
                    inside_targets: 8,
                    hosts_per_path: 20,
                    max_sites: Some(20),
                    consistency_paths: 4,
                },
            )
        })
    });
    g.finish();
}

fn bench_table3(c: &mut Criterion) {
    let mut g = c.benchmark_group("tables");
    g.sample_size(10);
    g.bench_function("table3_tiny", |b| {
        b.iter(|| {
            let mut lab = Scale::Tiny.lab();
            table3::run(
                &mut lab,
                &table3::Table3Options { victims: vec![IspId::Nkn], max_sites: Some(20) },
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench_table1, bench_table2, bench_table3);
criterion_main!(benches);
