//! Experiment benches: one per table of the paper, at tiny scale (the
//! point is regression tracking of experiment cost, not absolute time).

use lucent_support::bench::Harness;

use lucent_bench::Scale;
use lucent_core::experiments::{table1, table2, table3};
use lucent_topology::IspId;

fn main() {
    let mut h = Harness::new();
    h.target_secs = 2.0;
    h.max_iters = 10;
    h.bench("tables/table1_tiny", || {
        let mut lab = Scale::Tiny.lab();
        table1::run(
            &mut lab,
            &table1::Table1Options { isps: vec![IspId::Idea], max_sites: Some(10) },
        )
    });
    h.bench("tables/table2_tiny", || {
        let mut lab = Scale::Tiny.lab();
        table2::run(
            &mut lab,
            &table2::Table2Options {
                isps: vec![IspId::Idea],
                inside_targets: 8,
                hosts_per_path: 20,
                max_sites: Some(20),
                consistency_paths: 4,
            },
        )
    });
    h.bench("tables/table3_tiny", || {
        let mut lab = Scale::Tiny.lab();
        table3::run(
            &mut lab,
            &table3::Table3Options { victims: vec![IspId::Nkn], max_sites: Some(20) },
        )
    });
}
