//! Experiment benches: one per figure, plus the race and evasion
//! measurements, at tiny scale.

use lucent_support::bench::Harness;

use lucent_bench::Scale;
use lucent_core::anticensor::Technique;
use lucent_core::experiments::{dns_mechanism, evasion, fig2, race, tracer_demo};
use lucent_topology::IspId;

fn main() {
    let mut h = Harness::new();
    h.target_secs = 2.0;
    h.max_iters = 10;
    h.bench("figures/fig1_tracer_tiny", || {
        let mut lab = Scale::Tiny.lab();
        tracer_demo::run(&mut lab, IspId::Idea)
    });
    h.bench("figures/fig2_dns_tiny", || {
        let mut lab = Scale::Tiny.lab();
        fig2::run(
            &mut lab,
            &fig2::Fig2Options { isps: vec![IspId::Mtnl], scan_stride: 4, max_sites: Some(20) },
        )
    });
    h.bench("figures/race_tiny", || {
        let mut lab = Scale::Tiny.lab();
        race::run(
            &mut lab,
            &race::RaceOptions { isps: vec![IspId::Idea], attempts: 4, sites_per_isp: 2 },
        )
    });
    h.bench("figures/evasion_tiny", || {
        let mut lab = Scale::Tiny.lab();
        evasion::run(
            &mut lab,
            &evasion::EvasionOptions {
                isps: vec![IspId::Idea],
                sites_per_isp: 2,
                techniques: vec![Technique::ExtraSpaceBeforeValue, Technique::SegmentedRequest],
            },
        )
    });
    h.bench("figures/dns_mechanism_control", dns_mechanism::synthetic_injection_control);
}
