//! Experiment benches: one per figure, plus the race and evasion
//! measurements, at tiny scale.

use criterion::{criterion_group, criterion_main, Criterion};

use lucent_bench::Scale;
use lucent_core::experiments::{dns_mechanism, evasion, fig2, race, tracer_demo};
use lucent_core::anticensor::Technique;
use lucent_topology::IspId;

fn bench_fig1_tracer(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("fig1_tracer_tiny", |b| {
        b.iter(|| {
            let mut lab = Scale::Tiny.lab();
            tracer_demo::run(&mut lab, IspId::Idea)
        })
    });
    g.finish();
}

fn bench_fig2(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("fig2_dns_tiny", |b| {
        b.iter(|| {
            let mut lab = Scale::Tiny.lab();
            fig2::run(
                &mut lab,
                &fig2::Fig2Options { isps: vec![IspId::Mtnl], scan_stride: 4, max_sites: Some(20) },
            )
        })
    });
    g.finish();
}

fn bench_race(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("race_tiny", |b| {
        b.iter(|| {
            let mut lab = Scale::Tiny.lab();
            race::run(
                &mut lab,
                &race::RaceOptions { isps: vec![IspId::Idea], attempts: 4, sites_per_isp: 2 },
            )
        })
    });
    g.finish();
}

fn bench_evasion(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("evasion_tiny", |b| {
        b.iter(|| {
            let mut lab = Scale::Tiny.lab();
            evasion::run(
                &mut lab,
                &evasion::EvasionOptions {
                    isps: vec![IspId::Idea],
                    sites_per_isp: 2,
                    techniques: vec![Technique::ExtraSpaceBeforeValue, Technique::SegmentedRequest],
                },
            )
        })
    });
    g.finish();
}

fn bench_dns_mechanism(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("dns_mechanism_control", |b| {
        b.iter(dns_mechanism::synthetic_injection_control)
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_fig1_tracer,
    bench_fig2,
    bench_race,
    bench_evasion,
    bench_dns_mechanism
);
criterion_main!(benches);
