//! The router node: longest-prefix forwarding, TTL handling, ICMP
//! generation, optional anonymity, and wiretap mirror ports.

use std::any::Any;
use std::collections::BTreeSet;

use lucent_packet::{IcmpMessage, Packet, Transport};

use crate::node::{IfaceId, Node, NodeCtx};
use crate::routing::RouteTable;
use crate::time::SimDuration;

/// A router.
///
/// Besides plain forwarding this models the behaviours the paper's
/// tooling depends on:
///
/// * **TTL expiry** → ICMP Time Exceeded back to the source — unless the
///   router is *anonymized* ("asterisked" in traceroute output; Section 6.1
///   observes that routers hosting middleboxes never respond).
/// * **Mirror ports**: a set of interfaces that receive a copy of every
///   forwarded packet — the wiretap attachment for WM middleboxes. The
///   copy is taken *after* TTL decrement, i.e. the tap sits on the output
///   link, which gives wiretap and inline middleboxes identical TTL
///   visibility semantics.
/// * **Echo replies** to pings addressed to the router itself, and ICMP
///   port-unreachable for stray UDP to the router.
#[derive(Debug)]
pub struct RouterNode {
    /// The router's own address, used as the source of ICMP it originates.
    pub ip: std::net::Ipv4Addr,
    /// Forwarding table.
    pub table: RouteTable,
    /// When true the router never originates ICMP (time exceeded or
    /// unreachable): it appears as `*` in traceroutes.
    pub anonymized: bool,
    /// Interfaces that receive a copy of every forwarded packet.
    pub mirrors: Vec<IfaceId>,
    /// When non-empty, only packets forwarded out of these interfaces are
    /// mirrored (a tap on specific links rather than the whole router).
    pub mirror_only_egress: BTreeSet<IfaceId>,
    /// Per-packet forwarding latency added on top of link latency.
    pub forward_delay: SimDuration,
    label: String,
    /// Forwarded-packet counter (diagnostics).
    pub forwarded: u64,
}

impl RouterNode {
    /// A responsive router with an empty table.
    pub fn new(ip: std::net::Ipv4Addr, label: impl Into<String>) -> Self {
        RouterNode {
            ip,
            table: RouteTable::new(),
            anonymized: false,
            mirrors: Vec::default(),
            mirror_only_egress: BTreeSet::new(),
            forward_delay: SimDuration::from_micros(50),
            label: label.into(),
            forwarded: 0,
        }
    }

    /// Builder: mark anonymized.
    pub fn anonymized(mut self) -> Self {
        self.anonymized = true;
        self
    }

    /// Builder: add a mirror (tap) interface.
    pub fn with_mirror(mut self, iface: IfaceId) -> Self {
        self.mirrors.push(iface);
        self
    }

    fn icmp_back(&self, ctx: &mut NodeCtx<'_>, to: std::net::Ipv4Addr, msg: IcmpMessage) {
        if self.anonymized {
            return;
        }
        let kind = match &msg {
            IcmpMessage::TimeExceeded { .. } => "time-exceeded",
            IcmpMessage::DestUnreachable { .. } => "dest-unreachable",
            IcmpMessage::EchoReply { .. } => "echo-reply",
            IcmpMessage::EchoRequest { .. } => "echo-request",
        };
        if let Some(iface) = self.table.lookup(to) {
            ctx.obs().counter_inc("netsim.icmp_tx", kind);
            let pkt = Packet::icmp(self.ip, to, msg);
            ctx.send(iface, pkt);
        }
    }
}

impl Node for RouterNode {
    fn on_packet(&mut self, ctx: &mut NodeCtx<'_>, in_iface: IfaceId, mut pkt: Packet) {
        // Addressed to the router itself?
        if pkt.dst() == self.ip {
            match &pkt.transport {
                Transport::Icmp(IcmpMessage::EchoRequest { ident, seq }) => {
                    let reply = IcmpMessage::EchoReply { ident: *ident, seq: *seq };
                    self.icmp_back(ctx, pkt.src(), reply);
                }
                Transport::Udp(..) => {
                    let msg = IcmpMessage::DestUnreachable { code: 3, original: pkt.icmp_quote() };
                    self.icmp_back(ctx, pkt.src(), msg);
                }
                _ => ctx.trace_drop(&pkt, "router-no-service"),
            }
            return;
        }
        // Transit: TTL check.
        if pkt.ip.ttl <= 1 {
            ctx.trace_drop(&pkt, "ttl-expired");
            ctx.obs().counter_inc("netsim.router.ttl_expired", ctx.label());
            let msg = IcmpMessage::TimeExceeded { original: pkt.icmp_quote() };
            self.icmp_back(ctx, pkt.src(), msg);
            return;
        }
        pkt.ip.ttl -= 1;
        let Some(out) = self.table.lookup_flow(pkt.src(), pkt.dst()) else {
            ctx.trace_drop(&pkt, "no-route");
            let msg = IcmpMessage::DestUnreachable { code: 0, original: pkt.icmp_quote() };
            self.icmp_back(ctx, pkt.src(), msg);
            return;
        };
        // Never hairpin a packet back out the interface it arrived on;
        // that indicates a routing loop in the topology under test.
        if out == in_iface {
            ctx.trace_drop(&pkt, "hairpin");
            return;
        }
        self.forwarded += 1;
        ctx.obs().counter_inc("netsim.router.forwarded", ctx.label());
        // The egress filter is loop-invariant: evaluate it once so an
        // unmirrored egress costs nothing per tap.
        if self.mirror_only_egress.is_empty() || self.mirror_only_egress.contains(&out) {
            for &m in &self.mirrors {
                ctx.send(m, pkt.clone());
            }
        }
        ctx.send_delayed(out, pkt, self.forward_delay);
    }

    fn label(&self) -> &str {
        &self.label
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Network;
    use crate::node::WAKE;
    use crate::routing::Cidr;
    use crate::time::SimDuration;
    use lucent_packet::{TcpFlags, TcpHeader, UdpHeader};
    use std::net::Ipv4Addr;

    /// A sink host that remembers everything it receives and can send one
    /// prepared packet on WAKE.
    struct Sink {
        outbox: Option<Packet>,
        inbox: Vec<Packet>,
    }

    impl Sink {
        fn new() -> Self {
            Sink { outbox: None, inbox: Vec::new() }
        }
    }

    impl Node for Sink {
        fn on_packet(&mut self, _ctx: &mut NodeCtx<'_>, _iface: IfaceId, pkt: Packet) {
            self.inbox.push(pkt);
        }
        fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, token: u64) {
            if token == WAKE {
                if let Some(p) = self.outbox.take() {
                    ctx.send(IfaceId::PRIMARY, p);
                }
            }
        }
        fn label(&self) -> &str {
            "sink"
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    const CLIENT: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);
    const SERVER: Ipv4Addr = Ipv4Addr::new(203, 0, 113, 2);
    const R1: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const R2: Ipv4Addr = Ipv4Addr::new(203, 0, 113, 1);

    /// client -- r1 -- r2 -- server, optional tap host on r2.
    fn chain(tap: bool) -> (Network, crate::node::NodeId, crate::node::NodeId, Option<crate::node::NodeId>) {
        let mut net = Network::new();
        let client = net.add_node(Box::new(Sink::new()));
        let server = net.add_node(Box::new(Sink::new()));
        let mut r1 = RouterNode::new(R1, "r1");
        r1.table.add(Cidr::new(CLIENT, 24), IfaceId(0));
        r1.table.add(Cidr::new(SERVER, 24), IfaceId(1));
        let mut r2 = RouterNode::new(R2, "r2");
        r2.table.add(Cidr::new(CLIENT, 24), IfaceId(0));
        r2.table.add(Cidr::new(SERVER, 24), IfaceId(1));
        if tap {
            r2.mirrors.push(IfaceId(2));
        }
        let r1 = net.add_node(Box::new(r1));
        let r2 = net.add_node(Box::new(r2));
        let ms = SimDuration::from_millis(1);
        net.connect(client, IfaceId::PRIMARY, r1, IfaceId(0), ms);
        net.connect(r1, IfaceId(1), r2, IfaceId(0), ms);
        net.connect(r2, IfaceId(1), server, IfaceId::PRIMARY, ms);
        let tap_node = tap.then(|| {
            let t = net.add_node(Box::new(Sink::new()));
            net.connect(r2, IfaceId(2), t, IfaceId::PRIMARY, SimDuration::from_micros(100));
            t
        });
        (net, client, server, tap_node)
    }

    fn udp_probe(ttl: u8) -> Packet {
        let mut p = Packet::udp(CLIENT, SERVER, UdpHeader::new(33434, 33434), &b"probe"[..]);
        p.ip.ttl = ttl;
        p
    }

    fn send_from_client(net: &mut Network, client: crate::node::NodeId, pkt: Packet) {
        net.node_mut::<Sink>(client).unwrap().outbox = Some(pkt);
        net.wake(client);
        net.run_until_idle(1000);
    }

    #[test]
    fn forwards_end_to_end_and_decrements_ttl() {
        let (mut net, client, server, _) = chain(false);
        send_from_client(&mut net, client, udp_probe(64));
        let inbox = &net.node_ref::<Sink>(server).unwrap().inbox;
        assert_eq!(inbox.len(), 1);
        assert_eq!(inbox[0].ip.ttl, 62);
    }

    #[test]
    fn ttl_expiry_elicits_time_exceeded_from_correct_hop() {
        let (mut net, client, _, _) = chain(false);
        send_from_client(&mut net, client, udp_probe(1));
        let inbox = &net.node_ref::<Sink>(client).unwrap().inbox;
        assert_eq!(inbox.len(), 1);
        assert_eq!(inbox[0].src(), R1);
        assert!(matches!(inbox[0].as_icmp(), Some(IcmpMessage::TimeExceeded { .. })));

        let (mut net, client, _, _) = chain(false);
        send_from_client(&mut net, client, udp_probe(2));
        let inbox = &net.node_ref::<Sink>(client).unwrap().inbox;
        assert_eq!(inbox[0].src(), R2);
    }

    #[test]
    fn time_exceeded_quotes_original_packet() {
        let (mut net, client, _, _) = chain(false);
        send_from_client(&mut net, client, udp_probe(1));
        let inbox = &net.node_ref::<Sink>(client).unwrap().inbox;
        let Some(IcmpMessage::TimeExceeded { original }) = inbox[0].as_icmp() else {
            panic!("expected time exceeded");
        };
        // The quote clips the payload, so the IP total-length check would
        // fail a full parse; read the address fields straight from the
        // quoted header bytes like real traceroute does.
        assert_eq!(original.len(), 28);
        assert_eq!(Ipv4Addr::new(original[12], original[13], original[14], original[15]), CLIENT);
        assert_eq!(Ipv4Addr::new(original[16], original[17], original[18], original[19]), SERVER);
        // The first 4 transport bytes are the UDP ports.
        assert_eq!(u16::from_be_bytes([original[20], original[21]]), 33434);
    }

    #[test]
    fn anonymized_router_is_silent() {
        let (mut net, client, _, _) = chain(false);
        // Anonymize r1 after construction.
        let r1_id = crate::node::NodeId(2);
        net.node_mut::<RouterNode>(r1_id).unwrap().anonymized = true;
        send_from_client(&mut net, client, udp_probe(1));
        assert!(net.node_ref::<Sink>(client).unwrap().inbox.is_empty());
    }

    #[test]
    fn router_replies_to_ping_and_udp_to_self() {
        let (mut net, client, _, _) = chain(false);
        let ping = Packet::icmp(CLIENT, R2, IcmpMessage::EchoRequest { ident: 1, seq: 1 });
        send_from_client(&mut net, client, ping);
        let inbox = &net.node_ref::<Sink>(client).unwrap().inbox;
        assert!(matches!(inbox[0].as_icmp(), Some(IcmpMessage::EchoReply { ident: 1, seq: 1 })));

        let (mut net, client, _, _) = chain(false);
        let udp = Packet::udp(CLIENT, R1, UdpHeader::new(1, 33434), &b"x"[..]);
        send_from_client(&mut net, client, udp);
        let inbox = &net.node_ref::<Sink>(client).unwrap().inbox;
        assert!(matches!(
            inbox[0].as_icmp(),
            Some(IcmpMessage::DestUnreachable { code: 3, .. })
        ));
    }

    #[test]
    fn mirror_iface_receives_copy_and_server_still_gets_packet() {
        let (mut net, client, server, tap) = chain(true);
        let tcp = Packet::tcp(
            CLIENT,
            SERVER,
            TcpHeader::new(4000, 80, TcpFlags::SYN),
            &b""[..],
        );
        send_from_client(&mut net, client, tcp);
        assert_eq!(net.node_ref::<Sink>(server).unwrap().inbox.len(), 1);
        let tap_inbox = &net.node_ref::<Sink>(tap.unwrap()).unwrap().inbox;
        assert_eq!(tap_inbox.len(), 1);
        // Tap sees the post-decrement TTL (output-link semantics).
        assert_eq!(tap_inbox[0].ip.ttl, 62);
    }

    #[test]
    fn no_route_elicits_net_unreachable() {
        let (mut net, client, _, _) = chain(false);
        let stray = Packet::udp(CLIENT, Ipv4Addr::new(8, 8, 8, 8), UdpHeader::new(1, 2), &b""[..]);
        send_from_client(&mut net, client, stray);
        let inbox = &net.node_ref::<Sink>(client).unwrap().inbox;
        assert!(matches!(
            inbox[0].as_icmp(),
            Some(IcmpMessage::DestUnreachable { code: 0, .. })
        ));
    }

    #[test]
    fn mirror_only_egress_filters_direction() {
        let (mut net, client, server, tap) = chain(true);
        let r2_id = crate::node::NodeId(3);
        // Only mirror packets egressing toward the server (iface 1).
        net.node_mut::<RouterNode>(r2_id).unwrap().mirror_only_egress.insert(IfaceId(1));
        // Client→server is mirrored...
        send_from_client(&mut net, client, udp_probe(64));
        assert_eq!(net.node_ref::<Sink>(tap.unwrap()).unwrap().inbox.len(), 1);
        // ...server→client is not.
        let back = Packet::udp(SERVER, CLIENT, UdpHeader::new(9, 9), &b""[..]);
        net.node_mut::<Sink>(server).unwrap().outbox = Some(back);
        net.wake(server);
        net.run_until_idle(1000);
        assert_eq!(net.node_ref::<Sink>(tap.unwrap()).unwrap().inbox.len(), 1);
        assert_eq!(net.node_ref::<Sink>(client).unwrap().inbox.len(), 1);
    }
}
