//! CIDR prefixes, longest-prefix-match forwarding tables, and an
//! all-pairs route computation used by topology builders.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;
use std::net::Ipv4Addr;
use std::str::FromStr;

use crate::node::IfaceId;

/// An IPv4 CIDR prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Cidr {
    /// Network address (host bits are masked off at construction).
    pub addr: Ipv4Addr,
    /// Prefix length, 0..=32.
    pub len: u8,
}

impl Cidr {
    /// Construct, masking host bits.
    pub fn new(addr: Ipv4Addr, len: u8) -> Self {
        assert!(len <= 32, "prefix length {len} > 32");
        let mask = Self::mask(len);
        Cidr { addr: Ipv4Addr::from(u32::from(addr) & mask), len }
    }

    /// A host route (`/32`).
    pub fn host(addr: Ipv4Addr) -> Self {
        Cidr { addr, len: 32 }
    }

    fn mask(len: u8) -> u32 {
        if len == 0 {
            0
        } else {
            u32::MAX << (32 - u32::from(len))
        }
    }

    /// True if `ip` falls within this prefix.
    pub fn contains(&self, ip: Ipv4Addr) -> bool {
        u32::from(ip) & Self::mask(self.len) == u32::from(self.addr)
    }

    /// The `i`-th host address within the prefix (0-based from the network
    /// address). Panics if `i` exceeds the prefix size.
    pub fn nth(&self, i: u32) -> Ipv4Addr {
        let size: u64 = 1u64 << (32 - u32::from(self.len));
        assert!((u64::from(i)) < size, "host index {i} outside /{}", self.len);
        Ipv4Addr::from(u32::from(self.addr) + i)
    }

    /// Number of addresses covered.
    pub fn size(&self) -> u64 {
        1u64 << (32 - u32::from(self.len))
    }
}

impl fmt::Display for Cidr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.addr, self.len)
    }
}

impl FromStr for Cidr {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (addr, len) = s.split_once('/').ok_or_else(|| format!("no '/' in {s:?}"))?;
        let addr: Ipv4Addr = addr.parse().map_err(|e| format!("{e}"))?;
        let len: u8 = len.parse().map_err(|e| format!("{e}"))?;
        if len > 32 {
            return Err(format!("prefix length {len} > 32"));
        }
        Ok(Cidr::new(addr, len))
    }
}

/// A longest-prefix-match forwarding table mapping prefixes to one or
/// more out-ifaces (equal-cost multipath, selected by destination hash).
#[derive(Debug, Clone, Default)]
pub struct RouteTable {
    routes: Vec<(Cidr, Vec<IfaceId>)>,
}

/// Deterministic per-destination hash used for ECMP next-hop selection —
/// the mechanism that gives a single vantage point *different* router
/// paths to different destinations, which is what makes "fraction of
/// paths intercepted" a measurable quantity.
fn ecmp_hash(ip: Ipv4Addr) -> u32 {
    let mut x = u32::from(ip);
    x ^= x >> 16;
    x = x.wrapping_mul(0x7feb_352d);
    x ^= x >> 15;
    x = x.wrapping_mul(0x846c_a68b);
    x ^ (x >> 16)
}

impl RouteTable {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Install a single-path route. Later insertions of the same prefix
    /// replace the earlier one.
    pub fn add(&mut self, prefix: Cidr, iface: IfaceId) {
        self.add_multi(prefix, vec![iface]);
    }

    /// Install an ECMP route over several interfaces.
    pub fn add_multi(&mut self, prefix: Cidr, ifaces: Vec<IfaceId>) {
        assert!(!ifaces.is_empty(), "route must have at least one next hop");
        if let Some(slot) = self.routes.iter_mut().find(|(p, _)| *p == prefix) {
            slot.1 = ifaces;
        } else {
            self.routes.push((prefix, ifaces));
        }
    }

    /// Longest-prefix-match lookup keyed on the destination alone;
    /// multipath routes hash the destination. Prefer
    /// [`RouteTable::lookup_flow`] in forwarding paths — it keeps flows
    /// symmetric.
    pub fn lookup(&self, ip: Ipv4Addr) -> Option<IfaceId> {
        self.lookup_flow(ip, ip)
    }

    /// Longest-prefix-match lookup for a packet `src → dst`.
    ///
    /// Multipath routes pick the next hop from a *symmetric* flow hash
    /// (`h(src) ⊕ h(dst)`): both directions of a conversation traverse
    /// the same equal-cost member. This mirrors how operators configure
    /// ECMP around stateful inspection devices — and it is precisely what
    /// lets the paper's middleboxes observe complete handshakes.
    pub fn lookup_flow(&self, src: Ipv4Addr, dst: Ipv4Addr) -> Option<IfaceId> {
        self.routes
            .iter()
            .filter(|(p, _)| p.contains(dst))
            .max_by_key(|(p, _)| p.len)
            .map(|(_, ifaces)| {
                if ifaces.len() == 1 {
                    ifaces[0]
                } else {
                    let h = ecmp_hash(src) ^ ecmp_hash(dst);
                    ifaces[h as usize % ifaces.len()]
                }
            })
    }

    /// Number of installed routes.
    pub fn len(&self) -> usize {
        self.routes.len()
    }

    /// True when no routes are installed.
    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }

    /// Iterate over installed routes (prefix, next hops).
    pub fn iter(&self) -> impl Iterator<Item = &(Cidr, Vec<IfaceId>)> {
        self.routes.iter()
    }
}

/// Abstract topology description used to compute forwarding tables before
/// the concrete [`crate::Network`] is wired.
///
/// Vertices are dense indices that the topology builder later maps to node
/// ids; edges carry the interface number each endpoint uses.
#[derive(Debug, Default, Clone)]
pub struct RouteGraph {
    n: usize,
    /// adjacency\[u\] = (v, cost, iface-at-u)
    adj: Vec<Vec<(usize, u64, IfaceId)>>,
    adverts: Vec<(usize, Cidr)>,
}

impl RouteGraph {
    /// A graph with `n` vertices and no edges.
    pub fn new(n: usize) -> Self {
        RouteGraph { n, adj: vec![Vec::new(); n], adverts: Vec::new() }
    }

    /// Add an undirected edge. `iface_u`/`iface_v` are the interface
    /// numbers at each end; `cost` is typically the link latency.
    pub fn edge(&mut self, u: usize, v: usize, cost: u64, iface_u: IfaceId, iface_v: IfaceId) {
        self.adj[u].push((v, cost, iface_u));
        self.adj[v].push((u, cost, iface_v));
    }

    /// Declare that vertex `owner` originates `prefix`.
    pub fn advertise(&mut self, owner: usize, prefix: Cidr) {
        self.adverts.push((owner, prefix));
    }

    /// Compute forwarding tables for all vertices: shortest path (by cost,
    /// ties broken by lower vertex index then lower interface number) from
    /// every vertex toward every advertised prefix.
    pub fn compute(&self) -> Vec<RouteTable> {
        let mut tables = vec![RouteTable::new(); self.n];
        for &(owner, prefix) in &self.adverts {
            let dist = self.dijkstra(owner);
            for u in 0..self.n {
                if u == owner || dist[u] == u64::MAX {
                    continue;
                }
                // Next hop: neighbor v minimizing dist[v] + cost(u,v).
                let mut best: Option<(u64, usize, IfaceId)> = None;
                for &(v, cost, iface) in &self.adj[u] {
                    if dist[v] == u64::MAX {
                        continue;
                    }
                    let through = dist[v].saturating_add(cost);
                    let cand = (through, v, iface);
                    best = Some(match best {
                        None => cand,
                        Some(b) if (cand.0, cand.1, cand.2 .0) < (b.0, b.1, b.2 .0) => cand,
                        Some(b) => b,
                    });
                }
                if let Some((_, _, iface)) = best {
                    tables[u].add(prefix, iface);
                }
            }
        }
        tables
    }

    fn dijkstra(&self, src: usize) -> Vec<u64> {
        let mut dist = vec![u64::MAX; self.n];
        dist[src] = 0;
        let mut heap = BinaryHeap::new();
        heap.push(Reverse((0u64, src)));
        while let Some(Reverse((d, u))) = heap.pop() {
            if d > dist[u] {
                continue;
            }
            for &(v, cost, _) in &self.adj[u] {
                let nd = d.saturating_add(cost);
                if nd < dist[v] {
                    dist[v] = nd;
                    heap.push(Reverse((nd, v)));
                }
            }
        }
        dist
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cidr_masks_host_bits() {
        let c: Cidr = "10.1.2.3/24".parse().unwrap();
        assert_eq!(c.addr, Ipv4Addr::new(10, 1, 2, 0));
        assert!(c.contains(Ipv4Addr::new(10, 1, 2, 255)));
        assert!(!c.contains(Ipv4Addr::new(10, 1, 3, 0)));
        assert_eq!(c.to_string(), "10.1.2.0/24");
        assert_eq!(c.size(), 256);
        assert_eq!(c.nth(7), Ipv4Addr::new(10, 1, 2, 7));
    }

    #[test]
    fn cidr_zero_and_full_length() {
        let all: Cidr = "0.0.0.0/0".parse().unwrap();
        assert!(all.contains(Ipv4Addr::new(255, 255, 255, 255)));
        let host = Cidr::host(Ipv4Addr::new(5, 5, 5, 5));
        assert!(host.contains(Ipv4Addr::new(5, 5, 5, 5)));
        assert!(!host.contains(Ipv4Addr::new(5, 5, 5, 6)));
    }

    #[test]
    fn cidr_parse_errors() {
        assert!("10.0.0.0".parse::<Cidr>().is_err());
        assert!("10.0.0.0/33".parse::<Cidr>().is_err());
        assert!("notanip/8".parse::<Cidr>().is_err());
    }

    #[test]
    fn lpm_prefers_longer_prefix() {
        let mut t = RouteTable::new();
        t.add("10.0.0.0/8".parse().unwrap(), IfaceId(0));
        t.add("10.1.0.0/16".parse().unwrap(), IfaceId(1));
        t.add("0.0.0.0/0".parse().unwrap(), IfaceId(2));
        assert_eq!(t.lookup(Ipv4Addr::new(10, 1, 5, 5)), Some(IfaceId(1)));
        assert_eq!(t.lookup(Ipv4Addr::new(10, 2, 5, 5)), Some(IfaceId(0)));
        assert_eq!(t.lookup(Ipv4Addr::new(8, 8, 8, 8)), Some(IfaceId(2)));
    }

    #[test]
    fn route_replacement() {
        let mut t = RouteTable::new();
        t.add("10.0.0.0/8".parse().unwrap(), IfaceId(0));
        t.add("10.0.0.0/8".parse().unwrap(), IfaceId(3));
        assert_eq!(t.len(), 1);
        assert_eq!(t.lookup(Ipv4Addr::new(10, 0, 0, 1)), Some(IfaceId(3)));
    }

    #[test]
    fn graph_routes_follow_shortest_path() {
        // 0 --1ms-- 1 --1ms-- 2
        //  \________10ms_____/
        let mut g = RouteGraph::new(3);
        g.edge(0, 1, 1000, IfaceId(0), IfaceId(0));
        g.edge(1, 2, 1000, IfaceId(1), IfaceId(0));
        g.edge(0, 2, 10_000, IfaceId(1), IfaceId(1));
        g.advertise(2, "203.0.113.0/24".parse().unwrap());
        let tables = g.compute();
        // Vertex 0 routes via vertex 1 (iface 0), not the direct slow link.
        assert_eq!(tables[0].lookup(Ipv4Addr::new(203, 0, 113, 7)), Some(IfaceId(0)));
        assert_eq!(tables[1].lookup(Ipv4Addr::new(203, 0, 113, 7)), Some(IfaceId(1)));
        // The owner itself gets no route to its own prefix.
        assert_eq!(tables[2].lookup(Ipv4Addr::new(203, 0, 113, 7)), None);
    }

    #[test]
    fn graph_tie_break_is_deterministic() {
        // Two equal-cost paths 0-1-3 and 0-2-3: vertex 1 must win (lower id).
        let mut g = RouteGraph::new(4);
        g.edge(0, 1, 1000, IfaceId(0), IfaceId(0));
        g.edge(0, 2, 1000, IfaceId(1), IfaceId(0));
        g.edge(1, 3, 1000, IfaceId(1), IfaceId(0));
        g.edge(2, 3, 1000, IfaceId(1), IfaceId(1));
        g.advertise(3, "198.51.100.0/24".parse().unwrap());
        let t = g.compute();
        assert_eq!(t[0].lookup(Ipv4Addr::new(198, 51, 100, 1)), Some(IfaceId(0)));
    }

    #[test]
    fn unreachable_vertices_get_no_route() {
        let mut g = RouteGraph::new(3);
        g.edge(0, 1, 1, IfaceId(0), IfaceId(0));
        // vertex 2 is isolated
        g.advertise(2, "192.0.2.0/24".parse().unwrap());
        let t = g.compute();
        assert!(t[0].is_empty());
        assert!(t[1].is_empty());
    }
}
