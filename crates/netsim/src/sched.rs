//! The event scheduler: a calendar queue (bucketed timing wheel) keyed
//! on [`SimTime`] with strict `(time, seq)` ordering.
//!
//! The engine's event mix is dominated by near-future work — link
//! latencies of microseconds to tens of milliseconds — with a thin tail
//! of far-future flow timers (the 2–3 minute middlebox flow timeouts).
//! A binary heap pays `O(log n)` per operation on every event; a
//! calendar queue pays `O(1)` amortized for the dense near-future mass
//! and only falls back to heap ordering for the sparse tail.
//!
//! Layout: three tiers, partitioned by the event's *slot*
//! (`at.micros() >> SLOT_LOG2`, i.e. 1024 µs per slot by default)
//! relative to the wheel's `base_slot`:
//!
//! * **due** — a small heap of every item with `slot <= base_slot`,
//!   including same-instant pushes landing at the current time. Pops
//!   come from here, so ordering within a slot is exact `(at, seq)`.
//! * **ring** — `SLOTS` unsorted buckets covering
//!   `base_slot < slot <= base_slot + SLOTS` (about one virtual second).
//!   The slot range is exactly one wheel revolution, so `slot & mask`
//!   is collision-free.
//! * **overflow** — a heap of everything beyond the ring horizon.
//!
//! Advancing: when `due` drains, the wheel scans forward from
//! `base_slot + 1` to the first non-empty bucket and dumps it into
//! `due`; if the whole ring is empty it jumps straight to the earliest
//! overflow slot. After *every* advance the overflow heap is drained of
//! items that now fall inside the horizon — skipping this would let a
//! later ring push overtake an earlier overflow item. `base_slot` is
//! monotone, and each empty bucket is scanned past at most once per
//! virtual second of simulated time, so scanning amortizes to a few
//! comparisons per event.
//!
//! Determinism: `(at, seq)` is a *strict* total order over live items
//! (`seq` is unique), and every tier respects the slot partition, so
//! pop order is identical to a single binary heap's — the scheduler
//! swap is invisible to the event stream, which the deterministic-plane
//! profile golden pins down.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// Default log2 of the slot width in microseconds (1024 µs ≈ 1 ms).
pub const SLOT_LOG2: u32 = 10;
/// Default number of ring buckets (horizon ≈ 1.05 virtual seconds).
pub const SLOTS: usize = 1024;

/// One scheduled item: the engine's `(time, seq)` key plus payload.
#[derive(Debug)]
pub struct Scheduled<T> {
    /// When the item fires.
    pub at: SimTime,
    /// When it was enqueued (virtual time) — dwell = `at - queued_at`.
    pub queued_at: SimTime,
    /// FIFO tiebreak within an instant; unique per queue.
    pub seq: u64,
    /// The caller's event.
    pub payload: T,
}

impl<T> PartialEq for Scheduled<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<T> Eq for Scheduled<T> {}
impl<T> PartialOrd for Scheduled<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Scheduled<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// A calendar queue over [`Scheduled`] items. See the module docs for
/// the tier invariants.
pub struct CalendarQueue<T> {
    due: BinaryHeap<Reverse<Scheduled<T>>>,
    ring: Vec<Vec<Scheduled<T>>>,
    overflow: BinaryHeap<Reverse<Scheduled<T>>>,
    /// Highest slot whose items live in `due`; monotone.
    base_slot: u64,
    len: usize,
    slot_log2: u32,
    mask: u64,
}

impl<T> CalendarQueue<T> {
    /// A queue with the default geometry (1024 µs slots, 1024 buckets).
    pub fn fresh() -> Self {
        Self::with_geometry(SLOT_LOG2, SLOTS)
    }

    /// A queue with `2^slot_log2` µs slots and `slots` ring buckets
    /// (`slots` must be a power of two). Exposed so the equivalence
    /// oracle can shrink the horizon and force overflow traffic.
    pub fn with_geometry(slot_log2: u32, slots: usize) -> Self {
        assert!(slots.is_power_of_two(), "ring size must be a power of two");
        let mut ring = Vec::default();
        ring.resize_with(slots, Vec::default);
        CalendarQueue {
            due: BinaryHeap::default(),
            ring,
            overflow: BinaryHeap::default(),
            base_slot: 0,
            len: 0,
            slot_log2,
            mask: (slots - 1) as u64,
        }
    }

    fn slot_of(&self, at: SimTime) -> u64 {
        at.micros() >> self.slot_log2
    }

    /// Number of ring buckets (the wheel horizon in slots).
    fn horizon(&self) -> u64 {
        self.mask + 1
    }

    /// Live items.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the queue holds no items.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Insert an item. `O(1)` amortized for items inside the wheel
    /// horizon, `O(log overflow)` beyond it.
    pub fn schedule(&mut self, item: Scheduled<T>) {
        let slot = self.slot_of(item.at);
        self.len += 1;
        if slot <= self.base_slot {
            self.due.push(Reverse(item));
        } else if slot - self.base_slot <= self.horizon() {
            self.ring[(slot & self.mask) as usize].push(item);
        } else {
            self.overflow.push(Reverse(item));
        }
    }

    /// Remove and return the earliest item by `(at, seq)`.
    pub fn pop_next(&mut self) -> Option<Scheduled<T>> {
        self.pop_next_before(SimTime(u64::MAX))
    }

    /// Remove and return the earliest item if it fires at or before
    /// `deadline`. The wheel advances eagerly even on a `None` return,
    /// parking the earliest item in the `due` heap — so a driver
    /// polling in small time slices pays the bucket scan once, not per
    /// slice.
    pub fn pop_next_before(&mut self, deadline: SimTime) -> Option<Scheduled<T>> {
        if self.len == 0 {
            return None;
        }
        if self.due.is_empty() {
            self.advance();
        }
        debug_assert!(!self.due.is_empty(), "len > 0 but no tier produced an item");
        if self.due.peek().is_some_and(|Reverse(i)| i.at <= deadline) {
            let item = self.due.pop().map(|Reverse(i)| i);
            self.len -= 1;
            return item;
        }
        None
    }

    /// The `at` of the earliest item, without removing it.
    pub fn next_at(&self) -> Option<SimTime> {
        // Tier order is total: every `due` time precedes every ring
        // time (slot <= base_slot vs slot > base_slot), and every ring
        // time precedes every overflow time (inside vs beyond horizon).
        if let Some(Reverse(item)) = self.due.peek() {
            return Some(item.at);
        }
        for s in self.base_slot + 1..=self.base_slot + self.horizon() {
            let bucket = &self.ring[(s & self.mask) as usize];
            if let Some(min) = bucket.iter().map(|i| (i.at, i.seq)).min() {
                return Some(min.0);
            }
        }
        self.overflow.peek().map(|Reverse(i)| i.at)
    }

    /// Move `base_slot` forward to the next occupied slot and refill
    /// `due`. Caller guarantees `len > 0` and `due` is empty.
    fn advance(&mut self) {
        let mut found = false;
        for s in self.base_slot + 1..=self.base_slot + self.horizon() {
            let idx = (s & self.mask) as usize;
            if !self.ring[idx].is_empty() {
                self.base_slot = s;
                for item in self.ring[idx].drain(..) {
                    self.due.push(Reverse(item));
                }
                found = true;
                break;
            }
        }
        if !found {
            // Whole ring empty: jump to the earliest overflow slot.
            if let Some(Reverse(min)) = self.overflow.peek() {
                self.base_slot = self.slot_of(min.at);
            }
        }
        // Restore the tier invariant: anything in overflow that now
        // falls inside the horizon moves into the wheel (or straight
        // into `due` for the slot we just advanced to). Without this,
        // a ring push made after the advance could be popped before an
        // earlier overflow item.
        while let Some(Reverse(head)) = self.overflow.peek() {
            let slot = self.slot_of(head.at);
            if slot > self.base_slot + self.horizon() {
                break;
            }
            let Some(Reverse(item)) = self.overflow.pop() else {
                break;
            };
            if slot <= self.base_slot {
                self.due.push(Reverse(item));
            } else {
                self.ring[(slot & self.mask) as usize].push(item);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item(at_us: u64, seq: u64) -> Scheduled<u64> {
        Scheduled { at: SimTime(at_us), queued_at: SimTime::ZERO, seq, payload: seq }
    }

    fn drain_order(q: &mut CalendarQueue<u64>) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        while let Some(i) = q.pop_next() {
            out.push((i.at.micros(), i.seq));
        }
        out
    }

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut q = CalendarQueue::fresh();
        q.schedule(item(5_000, 0));
        q.schedule(item(1_000, 1));
        q.schedule(item(1_000, 2));
        q.schedule(item(0, 3));
        assert_eq!(q.len(), 4);
        assert_eq!(drain_order(&mut q), vec![(0, 3), (1_000, 1), (1_000, 2), (5_000, 0)]);
        assert!(q.is_empty());
    }

    #[test]
    fn far_future_items_route_through_overflow() {
        // 180 s flow timeout vs millisecond traffic, default horizon ~1 s.
        let mut q = CalendarQueue::fresh();
        q.schedule(item(180_000_000, 0));
        q.schedule(item(2_000, 1));
        assert_eq!(drain_order(&mut q), vec![(2_000, 1), (180_000_000, 0)]);
    }

    #[test]
    fn overflow_drains_before_later_ring_pushes() {
        // Regression shape for the advance() invariant: an overflow
        // item must not be overtaken by a ring item pushed after the
        // wheel advanced past the original horizon.
        let mut q = CalendarQueue::with_geometry(4, 8); // 16 µs slots, 128 µs horizon
        q.schedule(item(10, 0));
        q.schedule(item(500, 1)); // beyond the 128 µs horizon: overflow
        assert_eq!(q.pop_next().map(|i| i.seq), Some(0));
        // The wheel will jump to slot(500); a push landing just before
        // 500 µs must still come out first.
        q.schedule(item(499, 2));
        q.schedule(item(501, 3));
        assert_eq!(drain_order(&mut q), vec![(499, 2), (500, 1), (501, 3)]);
    }

    #[test]
    fn same_instant_pushes_at_base_go_to_due() {
        let mut q = CalendarQueue::fresh();
        q.schedule(item(0, 0));
        assert_eq!(q.pop_next().map(|i| i.seq), Some(0));
        // Injected "now" work while the wheel sits at slot 0.
        q.schedule(item(0, 1));
        q.schedule(item(0, 2));
        assert_eq!(drain_order(&mut q), vec![(0, 1), (0, 2)]);
    }

    #[test]
    fn next_at_sees_every_tier() {
        let mut q = CalendarQueue::with_geometry(4, 8);
        assert_eq!(q.next_at(), None);
        q.schedule(item(10_000, 0)); // overflow
        assert_eq!(q.next_at(), Some(SimTime(10_000)));
        q.schedule(item(40, 1)); // ring
        assert_eq!(q.next_at(), Some(SimTime(40)));
        q.schedule(item(0, 2)); // due
        assert_eq!(q.next_at(), Some(SimTime(0)));
        // Peeking never consumes.
        assert_eq!(q.len(), 3);
        assert_eq!(drain_order(&mut q), vec![(0, 2), (40, 1), (10_000, 0)]);
    }

    #[test]
    fn matches_a_heap_model_on_a_mixed_burst() {
        // Dense same-tick bursts + sparse tail, tiny geometry so every
        // tier is exercised; the check-crate oracle does the randomized
        // version of this against the same model.
        let mut q = CalendarQueue::with_geometry(2, 4);
        let mut model = std::collections::BinaryHeap::new();
        let times = [0u64, 0, 3, 3, 3, 17, 17, 40, 1_000, 1_000, 7, 0, 999];
        for (seq, &t) in times.iter().enumerate() {
            q.schedule(item(t, seq as u64));
            model.push(Reverse((t, seq as u64)));
        }
        let mut want = Vec::new();
        while let Some(Reverse(pair)) = model.pop() {
            want.push(pair);
        }
        assert_eq!(drain_order(&mut q), want);
    }
}
