//! Packet tracing — the simulator's `pcap`.
//!
//! The paper's methodology leans on inspecting captures ("Inspecting the
//! network traffic for the said message exchanges through pcap ...");
//! [`TraceHandle`] is the equivalent: a shared, filterable record of every
//! packet a selected set of nodes sent, received or dropped.

use std::cell::RefCell;
use std::collections::BTreeSet;
use std::fmt;
use std::rc::Rc;

use lucent_packet::Packet;

use crate::node::NodeId;
use crate::time::SimTime;

/// Direction of a traced packet relative to the recording node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dir {
    /// Transmitted by the node.
    Tx,
    /// Delivered to the node.
    Rx,
    /// Dropped by the node, with a reason.
    Drop(&'static str),
}

/// One captured packet.
#[derive(Debug, Clone)]
pub struct TraceEntry {
    /// Virtual capture time.
    pub time: SimTime,
    /// The node at which the packet was captured.
    pub node: NodeId,
    /// The node's label at capture time.
    pub label: String,
    /// Direction relative to `node`.
    pub dir: Dir,
    /// The packet itself.
    pub packet: Packet,
}

impl fmt::Display for TraceEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let dir = match self.dir {
            Dir::Tx => "tx".to_string(),
            Dir::Rx => "rx".to_string(),
            Dir::Drop(r) => format!("drop({r})"),
        };
        let p = &self.packet;
        let proto = match &p.transport {
            lucent_packet::Transport::Tcp(h, body) => {
                format!("TCP {}→{} [{}] seq={} ack={} len={}", h.src_port, h.dst_port, h.flags, h.seq, h.ack, body.len())
            }
            lucent_packet::Transport::Udp(h, body) => {
                format!("UDP {}→{} len={}", h.src_port, h.dst_port, body.len())
            }
            lucent_packet::Transport::Icmp(m) => format!("ICMP {:?}", m.type_code()),
        };
        write!(
            f,
            "{} {}#{} {} {} ttl={} {} → {}",
            self.time, self.label, self.node.0, dir, proto, p.ip.ttl, p.src(), p.dst()
        )
    }
}

#[derive(Default)]
struct TraceState {
    enabled: bool,
    /// When `Some`, only these nodes are recorded; `None` records all.
    filter: Option<BTreeSet<NodeId>>,
    entries: Vec<TraceEntry>,
}

/// Shared handle to the capture buffer. Cheap to clone; single-threaded
/// (the simulator itself is single-threaded by design).
#[derive(Clone, Default)]
pub struct TraceHandle {
    state: Rc<RefCell<TraceState>>,
}

impl TraceHandle {
    /// New, disabled trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Start recording every node.
    pub fn enable_all(&self) {
        let mut s = self.state.borrow_mut();
        s.enabled = true;
        s.filter = None;
    }

    /// Start recording only the given nodes.
    pub fn enable_nodes(&self, nodes: impl IntoIterator<Item = NodeId>) {
        let mut s = self.state.borrow_mut();
        s.enabled = true;
        s.filter = Some(nodes.into_iter().collect());
    }

    /// Stop recording (entries are kept).
    pub fn disable(&self) {
        self.state.borrow_mut().enabled = false;
    }

    /// Discard all captured entries.
    pub fn clear(&self) {
        self.state.borrow_mut().entries.clear();
    }

    /// Copy out the capture.
    pub fn entries(&self) -> Vec<TraceEntry> {
        self.state.borrow().entries.clone()
    }

    /// Number of captured entries.
    pub fn len(&self) -> usize {
        self.state.borrow().entries.len()
    }

    /// True when no entries are captured.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub(crate) fn record(&self, time: SimTime, node: NodeId, label: &str, dir: Dir, pkt: &Packet) {
        let mut s = self.state.borrow_mut();
        if !s.enabled {
            return;
        }
        if let Some(filter) = &s.filter {
            if !filter.contains(&node) {
                return;
            }
        }
        s.entries.push(TraceEntry {
            time,
            node,
            label: label.to_string(),
            dir,
            packet: pkt.clone(),
        });
    }

    /// Render the capture as a multi-line text transcript, one packet per
    /// line — the artifact Figures 3 and 4 of the paper are drawn from.
    pub fn transcript(&self) -> String {
        self.entries()
            .iter()
            .map(|e| e.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lucent_packet::{Packet, UdpHeader};
    use std::net::Ipv4Addr;

    fn pkt() -> Packet {
        Packet::udp(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            UdpHeader::new(1, 2),
            &b"x"[..],
        )
    }

    #[test]
    fn disabled_trace_records_nothing() {
        let t = TraceHandle::new();
        t.record(SimTime::ZERO, NodeId(0), "n", Dir::Tx, &pkt());
        assert!(t.is_empty());
    }

    #[test]
    fn filter_restricts_nodes() {
        let t = TraceHandle::new();
        t.enable_nodes([NodeId(1)]);
        t.record(SimTime::ZERO, NodeId(0), "a", Dir::Tx, &pkt());
        t.record(SimTime::ZERO, NodeId(1), "b", Dir::Rx, &pkt());
        assert_eq!(t.len(), 1);
        assert_eq!(t.entries()[0].node, NodeId(1));
    }

    #[test]
    fn enable_all_then_clear() {
        let t = TraceHandle::new();
        t.enable_all();
        t.record(SimTime::ZERO, NodeId(7), "n", Dir::Drop("why"), &pkt());
        assert_eq!(t.len(), 1);
        let line = t.transcript();
        assert!(line.contains("drop(why)"), "{line}");
        assert!(line.contains("UDP 1→2"), "{line}");
        t.clear();
        assert!(t.is_empty());
    }

    #[test]
    fn clones_share_state() {
        let t = TraceHandle::new();
        let t2 = t.clone();
        t.enable_all();
        t2.record(SimTime::ZERO, NodeId(0), "n", Dir::Tx, &pkt());
        assert_eq!(t.len(), 1);
    }
}
