//! Packet tracing — the simulator's `pcap`.
//!
//! The paper's methodology leans on inspecting captures ("Inspecting the
//! network traffic for the said message exchanges through pcap ...");
//! [`TraceHandle`] is the equivalent: a shared, filterable record of every
//! packet a selected set of nodes sent, received or dropped.
//!
//! The capture buffer is a bounded ring (oldest entries evict first), and
//! every recorded packet is also offered to the `lucent-obs` event bus
//! under target `pkttrace` at [`Level::Trace`] — one trace pipeline, two
//! consumers: the structured event log and the legacy in-memory capture.

use std::cell::RefCell;
use std::collections::{BTreeSet, VecDeque};
use std::fmt;
use std::rc::Rc;

use lucent_obs::{Json, Level, Telemetry};
use lucent_packet::Packet;

use crate::node::NodeId;
use crate::time::SimTime;

/// Default capture-ring capacity. Paper-scale runs stream millions of
/// packets; the ring keeps memory flat while retaining the recent past.
pub const DEFAULT_TRACE_CAP: usize = 262_144;

/// Direction of a traced packet relative to the recording node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dir {
    /// Transmitted by the node.
    Tx,
    /// Delivered to the node.
    Rx,
    /// Dropped by the node, with a reason.
    Drop(&'static str),
}

/// One captured packet.
#[derive(Debug, Clone)]
pub struct TraceEntry {
    /// Virtual capture time.
    pub time: SimTime,
    /// The node at which the packet was captured.
    pub node: NodeId,
    /// The node's label at capture time.
    pub label: String,
    /// Direction relative to `node`.
    pub dir: Dir,
    /// The packet itself.
    pub packet: Packet,
}

/// One-line transport summary used by both the transcript and the event
/// bus.
fn proto_summary(p: &Packet) -> String {
    match &p.transport {
        lucent_packet::Transport::Tcp(h, body) => {
            format!("TCP {}→{} [{}] seq={} ack={} len={}", h.src_port, h.dst_port, h.flags, h.seq, h.ack, body.len())
        }
        lucent_packet::Transport::Udp(h, body) => {
            format!("UDP {}→{} len={}", h.src_port, h.dst_port, body.len())
        }
        lucent_packet::Transport::Icmp(m) => format!("ICMP {:?}", m.type_code()),
    }
}

impl fmt::Display for TraceEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let dir = match self.dir {
            Dir::Tx => "tx".to_string(),
            Dir::Rx => "rx".to_string(),
            Dir::Drop(r) => format!("drop({r})"),
        };
        let p = &self.packet;
        write!(
            f,
            "{} {}#{} {} {} ttl={} {} → {}",
            self.time,
            self.label,
            self.node.0,
            dir,
            proto_summary(p),
            p.ip.ttl,
            p.src(),
            p.dst()
        )
    }
}

#[derive(Default)]
struct TraceState {
    enabled: bool,
    /// When `Some`, only these nodes are recorded; `None` records all.
    filter: Option<BTreeSet<NodeId>>,
    entries: VecDeque<TraceEntry>,
    cap: usize,
    evicted: u64,
    /// The obs event bus; every recorded packet is offered to it.
    bus: Option<Telemetry>,
}

/// Shared handle to the capture buffer. Cheap to clone; single-threaded
/// (the simulator itself is single-threaded by design).
#[derive(Clone, Default)]
pub struct TraceHandle {
    state: Rc<RefCell<TraceState>>,
}

impl TraceHandle {
    /// New, disabled trace with the default ring capacity.
    pub fn new() -> Self {
        let t = TraceHandle::default();
        t.state.borrow_mut().cap = DEFAULT_TRACE_CAP;
        t
    }

    /// Start recording every node.
    pub fn enable_all(&self) {
        let mut s = self.state.borrow_mut();
        s.enabled = true;
        s.filter = None;
    }

    /// Start recording only the given nodes.
    pub fn enable_nodes(&self, nodes: impl IntoIterator<Item = NodeId>) {
        let mut s = self.state.borrow_mut();
        s.enabled = true;
        s.filter = Some(nodes.into_iter().collect());
    }

    /// Stop recording (entries are kept).
    pub fn disable(&self) {
        self.state.borrow_mut().enabled = false;
    }

    /// Bound the capture ring to `cap` entries, evicting oldest first.
    pub fn set_cap(&self, cap: usize) {
        let mut s = self.state.borrow_mut();
        s.cap = cap;
        while s.entries.len() > cap {
            s.entries.pop_front();
            s.evicted += 1;
        }
    }

    /// How many entries have been evicted from the ring so far.
    pub fn evicted(&self) -> u64 {
        self.state.borrow().evicted
    }

    /// Discard all captured entries.
    pub fn clear(&self) {
        self.state.borrow_mut().entries.clear();
    }

    /// Copy out the capture, oldest first.
    pub fn entries(&self) -> Vec<TraceEntry> {
        self.state.borrow().entries.iter().cloned().collect()
    }

    /// Number of captured entries.
    pub fn len(&self) -> usize {
        self.state.borrow().entries.len()
    }

    /// True when no entries are captured.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Route recorded packets into the given telemetry handle's event
    /// stream (target `pkttrace`, level `trace`).
    pub(crate) fn attach_bus(&self, bus: Telemetry) {
        self.state.borrow_mut().bus = Some(bus);
    }

    pub(crate) fn record(&self, time: SimTime, node: NodeId, label: &str, dir: Dir, pkt: &Packet) {
        let mut s = self.state.borrow_mut();
        // The event bus sees every packet the obs filter asks for,
        // independent of the legacy capture's enable/filter state.
        if let Some(bus) = &s.bus {
            if bus.enabled("pkttrace", Level::Trace) {
                // One exact-capacity field vector per event: 6 common
                // fields plus the drop reason.
                let mut fields = Vec::with_capacity(7);
                let name = match dir {
                    Dir::Tx => "tx",
                    Dir::Rx => "rx",
                    Dir::Drop(why) => {
                        fields.push(("reason".to_string(), Json::Str(why.to_string())));
                        "drop"
                    }
                };
                fields.extend([
                    ("node".to_string(), Json::UInt(u64::from(node.0))),
                    ("label".to_string(), Json::Str(label.to_string())),
                    ("proto".to_string(), Json::Str(proto_summary(pkt))),
                    ("ttl".to_string(), Json::UInt(u64::from(pkt.ip.ttl))),
                    ("src".to_string(), Json::Str(pkt.src().to_string())),
                    ("dst".to_string(), Json::Str(pkt.dst().to_string())),
                ]);
                bus.event(time.micros(), Level::Trace, "pkttrace", name, fields);
            }
        }
        if !s.enabled {
            return;
        }
        if let Some(filter) = &s.filter {
            if !filter.contains(&node) {
                return;
            }
        }
        if s.cap == 0 {
            s.evicted += 1;
            return;
        }
        if s.entries.len() >= s.cap {
            s.entries.pop_front();
            s.evicted += 1;
        }
        s.entries.push_back(TraceEntry {
            time,
            node,
            label: label.to_string(),
            dir,
            // Under wire fidelity the payloads are `Bytes` views into
            // one shared buffer, so this capture clone is a handful of
            // `Arc` bumps, not a deep copy of the packet body.
            packet: pkt.clone(),
        });
    }

    /// Render the capture as a multi-line text transcript, one packet per
    /// line — the artifact Figures 3 and 4 of the paper are drawn from.
    pub fn transcript(&self) -> String {
        self.entries()
            .iter()
            .map(|e| e.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lucent_packet::{Packet, UdpHeader};
    use std::net::Ipv4Addr;

    fn pkt() -> Packet {
        Packet::udp(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            UdpHeader::new(1, 2),
            &b"x"[..],
        )
    }

    #[test]
    fn disabled_trace_records_nothing() {
        let t = TraceHandle::new();
        t.record(SimTime::ZERO, NodeId(0), "n", Dir::Tx, &pkt());
        assert!(t.is_empty());
    }

    #[test]
    fn filter_restricts_nodes() {
        let t = TraceHandle::new();
        t.enable_nodes([NodeId(1)]);
        t.record(SimTime::ZERO, NodeId(0), "a", Dir::Tx, &pkt());
        t.record(SimTime::ZERO, NodeId(1), "b", Dir::Rx, &pkt());
        assert_eq!(t.len(), 1);
        assert_eq!(t.entries()[0].node, NodeId(1));
    }

    #[test]
    fn enable_all_then_clear() {
        let t = TraceHandle::new();
        t.enable_all();
        t.record(SimTime::ZERO, NodeId(7), "n", Dir::Drop("why"), &pkt());
        assert_eq!(t.len(), 1);
        let line = t.transcript();
        assert!(line.contains("drop(why)"), "{line}");
        assert!(line.contains("UDP 1→2"), "{line}");
        t.clear();
        assert!(t.is_empty());
    }

    #[test]
    fn clones_share_state() {
        let t = TraceHandle::new();
        let t2 = t.clone();
        t.enable_all();
        t2.record(SimTime::ZERO, NodeId(0), "n", Dir::Tx, &pkt());
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn ring_cap_evicts_oldest() {
        let t = TraceHandle::new();
        t.enable_all();
        t.set_cap(2);
        for i in 0..5 {
            t.record(SimTime(i), NodeId(0), "n", Dir::Tx, &pkt());
        }
        assert_eq!(t.len(), 2);
        assert_eq!(t.evicted(), 3);
        let kept: Vec<u64> = t.entries().iter().map(|e| e.time.0).collect();
        assert_eq!(kept, vec![3, 4]);
    }

    #[test]
    fn recorded_packets_reach_the_event_bus() {
        let bus = Telemetry::new();
        bus.set_filter_spec("pkttrace=trace").expect("spec");
        let t = TraceHandle::new();
        t.attach_bus(bus.clone());
        // The bus sees packets even while the legacy capture is disabled.
        t.record(SimTime(9), NodeId(3), "client", Dir::Drop("firewall"), &pkt());
        assert!(t.is_empty());
        assert_eq!(bus.event_count(), 1);
        let log = bus.event_log();
        assert!(log.contains("\"target\":\"pkttrace\""), "{log}");
        assert!(log.contains("\"reason\":\"firewall\""), "{log}");
        assert!(log.contains("\"label\":\"client\""), "{log}");
    }

    #[test]
    fn bus_respects_the_obs_filter() {
        let bus = Telemetry::new();
        let t = TraceHandle::new();
        t.attach_bus(bus.clone());
        t.record(SimTime::ZERO, NodeId(0), "n", Dir::Tx, &pkt());
        assert_eq!(bus.event_count(), 0, "filter off: nothing routed");
    }
}
