//! The [`Network`]: nodes, links, the event queue and the virtual clock.

use std::collections::BTreeMap;

use lucent_obs::Telemetry;
use lucent_packet::{Bytes, Packet};

use crate::node::{IfaceId, Node, NodeCtx, NodeId, WAKE};
use crate::sched::{CalendarQueue, Scheduled};
use crate::slab::{PacketSlab, PacketSlot};
use crate::time::{SimDuration, SimTime};
use crate::trace::{Dir, TraceHandle};

/// Why the engine itself discarded a packet (node-level drops are traced by
/// the nodes; these are wiring-level).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DropReason {
    /// Sent out an interface with no link attached.
    UnconnectedIface,
    /// Wire-fidelity mode could not re-parse the packet's own octets —
    /// the structured and on-the-wire views disagree.
    WireFidelity,
}

#[derive(Debug, Clone, Copy)]
struct Endpoint {
    peer: NodeId,
    peer_iface: IfaceId,
    latency: SimDuration,
}

enum EventKind {
    /// Delivery of a packet held in the slab; the event owns the slot
    /// and exactly one `reclaim` happens when it pops.
    Deliver { node: NodeId, iface: IfaceId, slot: PacketSlot },
    Timer { node: NodeId, token: u64 },
}

/// Engine internals shared with [`NodeCtx`]; lives in its own struct so a
/// node callback can enqueue effects while its own box is temporarily out
/// of the node table.
pub(crate) struct Inner {
    pub(crate) now: SimTime,
    sched: CalendarQueue<EventKind>,
    packets: PacketSlab,
    seq: u64,
    links: Vec<Vec<Option<Endpoint>>>,
    pub(crate) trace: TraceHandle,
    pub(crate) telemetry: Telemetry,
    drops: BTreeMap<DropReason, u64>,
    events_processed: u64,
    queue_hwm: u64,
    wire_fidelity: bool,
}

impl Inner {
    fn push(&mut self, at: SimTime, kind: EventKind) {
        let seq = self.seq;
        self.seq += 1;
        self.sched.schedule(Scheduled { at, queued_at: self.now, seq, payload: kind });
        // Track the high-water mark unconditionally: one compare per
        // push, and the profiler can report it without having been
        // enabled before the world was built.
        let depth = self.sched.len() as u64;
        if depth > self.queue_hwm {
            self.queue_hwm = depth;
        }
    }

    pub(crate) fn transmit(
        &mut self,
        from: NodeId,
        label: &str,
        iface: IfaceId,
        pkt: Packet,
        extra_delay: SimDuration,
    ) {
        self.trace.record(self.now, from, label, Dir::Tx, &pkt);
        // Wire-fidelity mode: serialize to octets and reparse at every
        // link, proving the structured fast path hides nothing (and
        // measuring what that fidelity costs — see the substrate bench).
        // The reparse borrows payload bytes out of the emitted buffer
        // zero-copy rather than copying them back out.
        let pkt = if self.wire_fidelity {
            let wire = Bytes::from(pkt.emit());
            match Packet::parse_bytes(&wire) {
                Ok(p) => {
                    debug_assert_eq!(p, pkt);
                    p
                }
                Err(_) => {
                    // A packet whose own octets do not round-trip cannot
                    // exist on a real wire: count it and drop it instead
                    // of taking the whole simulation down.
                    *self.drops.entry(DropReason::WireFidelity).or_insert(0) += 1;
                    self.telemetry.counter_inc("netsim.dropped", "wire-fidelity");
                    self.trace.record(self.now, from, label, Dir::Drop("wire-fidelity"), &pkt);
                    return;
                }
            }
        } else {
            pkt
        };
        let ep = self
            .links
            .get(from.0 as usize)
            .and_then(|ifaces| ifaces.get(usize::from(iface.0)))
            .copied()
            .flatten();
        match ep {
            Some(ep) => {
                let delay = ep.latency + extra_delay;
                self.telemetry.histogram_record("netsim.link.latency_us", delay.micros());
                let at = self.now + delay;
                let slot = self.packets.stash(pkt);
                self.push(at, EventKind::Deliver { node: ep.peer, iface: ep.peer_iface, slot });
            }
            None => {
                *self.drops.entry(DropReason::UnconnectedIface).or_insert(0) += 1;
                self.telemetry.counter_inc("netsim.dropped", "unconnected-iface");
            }
        }
    }

    pub(crate) fn schedule_timer(&mut self, node: NodeId, delay: SimDuration, token: u64) {
        let at = self.now + delay;
        self.push(at, EventKind::Timer { node, token });
    }
}

/// A simulated network: a set of [`Node`]s wired by point-to-point links,
/// advanced one event at a time.
///
/// ```
/// use lucent_netsim::{Network, RouterNode, SimDuration, IfaceId};
/// use lucent_netsim::routing::Cidr;
/// use std::net::Ipv4Addr;
///
/// let mut net = Network::new();
/// let r = net.add_node(Box::new(RouterNode::new(Ipv4Addr::new(10, 0, 0, 1), "r1")));
/// assert_eq!(net.node_count(), 1);
/// net.node_mut::<RouterNode>(r).unwrap().table.add(Cidr::new(Ipv4Addr::new(10, 0, 0, 0), 8), IfaceId(0));
/// net.run_for(SimDuration::from_millis(5));
/// assert_eq!(net.now().millis(), 5);
/// ```
pub struct Network {
    inner: Inner,
    nodes: Vec<Option<Box<dyn Node>>>,
    labels: Vec<String>,
}

impl Default for Network {
    fn default() -> Self {
        Self::new()
    }
}

impl Network {
    /// An empty network at time zero.
    pub fn new() -> Self {
        let telemetry = Telemetry::new();
        let trace = TraceHandle::new();
        // UFCS spells out that this is a cheap shared-state handle, not
        // a deep copy — same convention as `Rc::clone(&x)`.
        trace.attach_bus(Telemetry::clone(&telemetry));
        Network {
            inner: Inner {
                now: SimTime::ZERO,
                sched: CalendarQueue::fresh(),
                packets: PacketSlab::default(),
                seq: 0,
                links: Vec::default(),
                trace,
                telemetry,
                drops: BTreeMap::new(),
                events_processed: 0,
                queue_hwm: 0,
                wire_fidelity: false,
            },
            nodes: Vec::default(),
            labels: Vec::default(),
        }
    }

    /// Add a node; returns its id.
    ///
    /// Panics if the node table outgrows the 32-bit id space: like
    /// [`Network::connect`], topology-construction bugs fail loudly at
    /// build time instead of silently aliasing ids later.
    pub fn add_node(&mut self, node: Box<dyn Node>) -> NodeId {
        let count = self.nodes.len();
        assert!(
            u32::try_from(count).is_ok(),
            "node table overflow: {count} nodes exhausts the u32 id space"
        );
        let id = NodeId(count as u32);
        self.inner.telemetry.set_thread_name(u64::from(id.0), node.label());
        self.labels.push(node.label().to_string());
        self.nodes.push(Some(node));
        self.inner.links.push(Vec::new());
        id
    }

    /// Connect `(a, ai)` to `(b, bi)` with symmetric latency.
    ///
    /// Panics if either interface is already connected: topology bugs must
    /// fail loudly at build time, not silently misroute packets later.
    pub fn connect(&mut self, a: NodeId, ai: IfaceId, b: NodeId, bi: IfaceId, latency: SimDuration) {
        let slot_a = Self::iface_slot(&mut self.inner.links, a, ai);
        assert!(slot_a.is_none(), "iface {ai:?} of node {a:?} already connected");
        *slot_a = Some(Endpoint { peer: b, peer_iface: bi, latency });
        let slot_b = Self::iface_slot(&mut self.inner.links, b, bi);
        assert!(slot_b.is_none(), "iface {bi:?} of node {b:?} already connected");
        *slot_b = Some(Endpoint { peer: a, peer_iface: ai, latency });
    }

    fn iface_slot(
        links: &mut [Vec<Option<Endpoint>>],
        n: NodeId,
        i: IfaceId,
    ) -> &mut Option<Endpoint> {
        let ifaces = &mut links[n.0 as usize];
        let idx = usize::from(i.0);
        if ifaces.len() <= idx {
            ifaces.resize(idx + 1, None);
        }
        &mut ifaces[idx]
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.inner.now
    }

    /// The shared packet trace.
    pub fn trace(&self) -> TraceHandle {
        self.inner.trace.clone()
    }

    /// The shared telemetry handle (events, metrics, spans).
    pub fn telemetry(&self) -> Telemetry {
        self.inner.telemetry.clone()
    }

    /// The label a node was added with.
    pub fn label_of(&self, id: NodeId) -> &str {
        self.labels.get(id.0 as usize).map(String::as_str).unwrap_or("")
    }

    /// Enable wire-fidelity mode: every transmitted packet is serialized
    /// to octets and re-parsed (checksums verified) before delivery.
    /// Slower; used by fidelity tests and the substrate ablation bench.
    pub fn set_wire_fidelity(&mut self, on: bool) {
        self.inner.wire_fidelity = on;
    }

    /// Number of nodes in the network.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of point-to-point links (each `connect` call is one link).
    pub fn link_count(&self) -> usize {
        self.inner
            .links
            .iter()
            .map(|ifaces| ifaces.iter().filter(|e| e.is_some()).count())
            .sum::<usize>()
            / 2
    }

    /// Total events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.inner.events_processed
    }

    /// Deepest the event queue has ever been — a deterministic function
    /// of the event stream, profiled as scheduler back-pressure.
    pub fn queue_depth_hwm(&self) -> u64 {
        self.inner.queue_hwm
    }

    /// Wiring-level drop counters.
    pub fn drops(&self, reason: DropReason) -> u64 {
        self.inner.drops.get(&reason).copied().unwrap_or(0)
    }

    /// Borrow a node, downcast to its concrete type. `None` when the id
    /// is unknown, the node's box is temporarily out of the table
    /// (mid-dispatch), or the node is not a `T`.
    pub fn node_ref<T: Node>(&self, id: NodeId) -> Option<&T> {
        self.nodes
            .get(id.0 as usize)?
            .as_ref()?
            .as_any()
            .downcast_ref::<T>()
    }

    /// Borrow a node mutably, downcast to its concrete type. `None`
    /// under the same conditions as [`Network::node_ref`].
    pub fn node_mut<T: Node>(&mut self, id: NodeId) -> Option<&mut T> {
        self.nodes
            .get_mut(id.0 as usize)?
            .as_mut()?
            .as_any_mut()
            .downcast_mut::<T>()
    }

    /// Enqueue a [`crate::WAKE`] timer for `node` at the current instant —
    /// the driver-side kick after mutating application state through
    /// [`Network::node_mut`].
    pub fn wake(&mut self, node: NodeId) {
        self.inner.schedule_timer(node, SimDuration::ZERO, WAKE);
    }

    /// Deliver `pkt` to `node` on `iface` at the current instant, as if it
    /// had arrived from a link. Used by tests and fault injection.
    pub fn inject(&mut self, node: NodeId, iface: IfaceId, pkt: Packet) {
        let slot = self.inner.packets.stash(pkt);
        self.inner.push(self.inner.now, EventKind::Deliver { node, iface, slot });
    }

    /// The time of the next pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.inner.sched.next_at()
    }

    /// Most packets ever simultaneously in flight — the packet slab's
    /// resident footprint.
    pub fn packets_in_flight_hwm(&self) -> usize {
        self.inner.packets.live_hwm()
    }

    /// Process one event. Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some(ev) = self.inner.sched.pop_next() else {
            return false;
        };
        self.dispatch(ev);
        true
    }

    fn dispatch(&mut self, ev: Scheduled<EventKind>) {
        debug_assert!(ev.at >= self.inner.now, "time went backwards");
        self.inner.now = ev.at;
        self.inner.events_processed += 1;
        if self.inner.telemetry.spans_enabled() {
            // One slice per event-loop dispatch, spanning the virtual
            // time the event spent in flight, on the destination node's
            // track — the Chrome-trace view of the event loop.
            let (name, tid) = match &ev.payload {
                EventKind::Deliver { node, .. } => ("deliver", u64::from(node.0)),
                EventKind::Timer { node, token } if *token == WAKE => {
                    ("wake", u64::from(node.0))
                }
                EventKind::Timer { node, .. } => ("timer", u64::from(node.0)),
            };
            let ts = ev.queued_at.micros();
            self.inner.telemetry.span(name, "netsim", ts, ev.at.micros() - ts, tid);
        }
        if self.inner.telemetry.prof_enabled() {
            // The profiler's per-kind pop counter and virtual-time
            // dwell (enqueue → dispatch) histogram. Static labels only:
            // this path runs once per simulator event.
            let kind = match &ev.payload {
                EventKind::Deliver { .. } => "deliver",
                EventKind::Timer { token, .. } if *token == WAKE => "wake",
                EventKind::Timer { .. } => "timer",
            };
            let dwell = ev.at.micros() - ev.queued_at.micros();
            self.inner.telemetry.prof_pop(kind, dwell);
        }
        match ev.payload {
            EventKind::Deliver { node, iface, slot } => {
                // Reclaim before the node lookup so the slot is freed
                // even when the destination was removed mid-flight.
                let Some(pkt) = self.inner.packets.reclaim(slot) else {
                    return; // not live: already treated as dropped
                };
                let Some(mut boxed) = self.nodes.get_mut(node.0 as usize).and_then(Option::take)
                else {
                    return; // node removed or mid-dispatch: drop
                };
                let label = std::mem::take(&mut self.labels[node.0 as usize]);
                self.inner.trace.record(self.inner.now, node, &label, Dir::Rx, &pkt);
                {
                    let mut ctx = NodeCtx { inner: &mut self.inner, node, label: &label };
                    boxed.on_packet(&mut ctx, iface, pkt);
                }
                self.labels[node.0 as usize] = label;
                self.nodes[node.0 as usize] = Some(boxed);
            }
            EventKind::Timer { node, token } => {
                let Some(mut boxed) = self.nodes.get_mut(node.0 as usize).and_then(Option::take)
                else {
                    return;
                };
                let label = std::mem::take(&mut self.labels[node.0 as usize]);
                {
                    let mut ctx = NodeCtx { inner: &mut self.inner, node, label: &label };
                    boxed.on_timer(&mut ctx, token);
                }
                self.labels[node.0 as usize] = label;
                self.nodes[node.0 as usize] = Some(boxed);
            }
        }
    }

    /// Process the next event only if it is due at or before `deadline`.
    ///
    /// Returns `true` if an event was processed. When the next event lies
    /// beyond the deadline (or the queue is empty), the clock is advanced
    /// to `deadline` and `false` is returned — the driver's virtual
    /// timeout primitive. Goes through the scheduler's deadline-aware
    /// pop rather than a read-only peek, so slice-polling drivers never
    /// rescan the wheel.
    pub fn step_before(&mut self, deadline: SimTime) -> bool {
        match self.inner.sched.pop_next_before(deadline) {
            Some(ev) => {
                self.dispatch(ev);
                true
            }
            None => {
                if self.inner.now < deadline {
                    self.inner.now = deadline;
                }
                false
            }
        }
    }

    /// Run until the queue is empty or `max_events` have been processed.
    /// Returns the number of events processed.
    pub fn run_until_idle(&mut self, max_events: u64) -> u64 {
        let mut n = 0;
        while n < max_events && self.step() {
            n += 1;
        }
        n
    }

    /// Run all events due at or before `deadline`, then advance the clock
    /// to `deadline`.
    pub fn run_until(&mut self, deadline: SimTime) {
        while self.step_before(deadline) {}
    }

    /// Run for `d` of virtual time from now.
    pub fn run_for(&mut self, d: SimDuration) {
        let deadline = self.inner.now + d;
        self.run_until(deadline);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lucent_packet::{Packet, UdpHeader};
    use std::any::Any;
    use std::net::Ipv4Addr;

    /// Echoes every UDP packet back out the interface it came from, after
    /// a configurable think time.
    struct Echo {
        think: SimDuration,
        seen: u32,
    }

    impl Node for Echo {
        fn on_packet(&mut self, ctx: &mut NodeCtx<'_>, iface: IfaceId, pkt: Packet) {
            self.seen += 1;
            let reply = Packet::udp(pkt.dst(), pkt.src(), UdpHeader::new(7, 7), &b"echo"[..]);
            ctx.send_delayed(iface, reply, self.think);
        }
        fn label(&self) -> &str {
            "echo"
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    /// Counts deliveries; on WAKE sends one probe.
    struct Probe {
        target_iface: IfaceId,
        got: Vec<SimTime>,
    }

    impl Node for Probe {
        fn on_packet(&mut self, ctx: &mut NodeCtx<'_>, _iface: IfaceId, _pkt: Packet) {
            self.got.push(ctx.now());
        }
        fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, token: u64) {
            if token == WAKE {
                let p = Packet::udp(
                    Ipv4Addr::new(10, 0, 0, 1),
                    Ipv4Addr::new(10, 0, 0, 2),
                    UdpHeader::new(7, 7),
                    &b"ping"[..],
                );
                ctx.send(self.target_iface, p);
            }
        }
        fn label(&self) -> &str {
            "probe"
        }
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
    }

    fn two_node_net(latency_ms: u64, think_ms: u64) -> (Network, NodeId, NodeId) {
        let mut net = Network::new();
        let a = net.add_node(Box::new(Probe { target_iface: IfaceId::PRIMARY, got: vec![] }));
        let b = net.add_node(Box::new(Echo { think: SimDuration::from_millis(think_ms), seen: 0 }));
        net.connect(a, IfaceId::PRIMARY, b, IfaceId::PRIMARY, SimDuration::from_millis(latency_ms));
        (net, a, b)
    }

    #[test]
    fn round_trip_latency_is_symmetric() {
        let (mut net, a, b) = two_node_net(5, 2);
        net.wake(a);
        net.run_until_idle(100);
        assert_eq!(net.node_ref::<Echo>(b).unwrap().seen, 1);
        let got = &net.node_ref::<Probe>(a).unwrap().got;
        assert_eq!(got.len(), 1);
        // 5ms there + 2ms think + 5ms back.
        assert_eq!(got[0], SimTime::ZERO + SimDuration::from_millis(12));
    }

    #[test]
    fn unconnected_iface_counts_drop() {
        let mut net = Network::new();
        let a = net.add_node(Box::new(Probe { target_iface: IfaceId(3), got: vec![] }));
        net.wake(a);
        net.run_until_idle(10);
        assert_eq!(net.drops(DropReason::UnconnectedIface), 1);
    }

    #[test]
    fn step_before_respects_deadline_and_advances_clock() {
        let (mut net, a, _) = two_node_net(50, 0);
        net.wake(a);
        // Only the wake timer (t=0) and the transmit fit before t=10ms.
        let deadline = SimTime::ZERO + SimDuration::from_millis(10);
        net.run_until(deadline);
        assert_eq!(net.now(), deadline);
        assert!(net.node_ref::<Probe>(a).unwrap().got.is_empty());
        // Finishing the run delivers the echo at 100ms.
        net.run_until_idle(100);
        assert_eq!(net.node_ref::<Probe>(a).unwrap().got.len(), 1);
        assert_eq!(net.now(), SimTime::ZERO + SimDuration::from_millis(100));
    }

    #[test]
    fn events_at_same_instant_preserve_fifo_order() {
        // Two wakes at t=0 must fire in the order they were enqueued.
        let (mut net, a, _) = two_node_net(1, 0);
        net.wake(a);
        net.wake(a);
        net.run_until_idle(100);
        assert_eq!(net.node_ref::<Probe>(a).unwrap().got.len(), 2);
        assert_eq!(net.events_processed(), 2 + 2 + 2); // 2 wakes, 2 delivers at echo, 2 replies
    }

    #[test]
    #[should_panic(expected = "already connected")]
    fn double_connect_panics() {
        let (mut net, a, b) = two_node_net(1, 0);
        net.connect(a, IfaceId::PRIMARY, b, IfaceId(1), SimDuration::ZERO);
    }

    #[test]
    fn inject_delivers_immediately() {
        let (mut net, _, b) = two_node_net(1, 0);
        let p = Packet::udp(
            Ipv4Addr::new(1, 1, 1, 1),
            Ipv4Addr::new(2, 2, 2, 2),
            UdpHeader::new(9, 9),
            &b"inj"[..],
        );
        net.inject(b, IfaceId::PRIMARY, p);
        net.run_until_idle(10);
        assert_eq!(net.node_ref::<Echo>(b).unwrap().seen, 1);
    }

    #[test]
    fn run_until_idle_respects_event_budget() {
        let (mut net, a, _) = two_node_net(1, 1);
        net.wake(a);
        let n = net.run_until_idle(2);
        assert_eq!(n, 2);
        assert!(net.peek_time().is_some());
    }

    #[test]
    fn wire_fidelity_mode_preserves_behaviour() {
        let run = |fidelity: bool| {
            let (mut net, a, b) = {
                let (net, a, b) = two_node_net(5, 2);
                (net, a, b)
            };
            net.set_wire_fidelity(fidelity);
            net.wake(a);
            net.run_until_idle(100);
            (
                net.node_ref::<Echo>(b).unwrap().seen,
                net.node_ref::<Probe>(a).unwrap().got.clone(),
                net.events_processed(),
            )
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn profiler_counts_pops_dwell_and_queue_hwm() {
        let (mut net, a, _) = two_node_net(5, 2);
        net.telemetry().enable_prof(true);
        net.wake(a);
        net.run_until_idle(100);
        let t = net.telemetry();
        assert_eq!(
            t.counter_total("prof.sched.pops"),
            net.events_processed(),
            "every pop is profiled"
        );
        assert_eq!(t.counter("prof.sched.pops", "wake"), 1);
        assert!(t.counter("prof.sched.pops", "deliver") >= 2);
        assert!(net.queue_depth_hwm() >= 1);
        let dwell: u64 = t
            .histogram_buckets("prof.sched.dwell_us.deliver")
            .unwrap()
            .iter()
            .sum();
        assert_eq!(dwell, t.counter("prof.sched.pops", "deliver"), "dwell counts conserve pops");
    }

    #[test]
    fn profiling_leaves_results_untouched() {
        let run = |prof: bool| {
            let (mut net, a, b) = two_node_net(5, 2);
            net.telemetry().enable_prof(prof);
            net.wake(a);
            net.run_until_idle(100);
            (
                net.node_ref::<Echo>(b).unwrap().seen,
                net.node_ref::<Probe>(a).unwrap().got.clone(),
                net.events_processed(),
                net.queue_depth_hwm(),
            )
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn trace_records_tx_and_rx() {
        let (mut net, a, _) = two_node_net(1, 0);
        net.trace().enable_all();
        net.wake(a);
        net.run_until_idle(100);
        let entries = net.trace().entries();
        // probe tx, echo rx, echo tx, probe rx
        assert_eq!(entries.len(), 4);
        assert!(matches!(entries[0].dir, Dir::Tx));
        assert!(matches!(entries[1].dir, Dir::Rx));
        assert_eq!(entries[0].label, "probe");
        assert_eq!(entries[1].label, "echo");
    }
}
