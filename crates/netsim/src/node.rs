//! The [`Node`] trait every simulated element implements, and the
//! [`NodeCtx`] handle through which a node interacts with the network
//! during a callback.

use std::any::Any;
use std::net::Ipv4Addr;

use lucent_obs::Telemetry;
use lucent_packet::Packet;

use crate::network::Inner;
use crate::time::{SimDuration, SimTime};
use crate::trace::Dir;

/// Identifies a node within one [`crate::Network`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// Identifies an interface of a node (small dense index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IfaceId(pub u8);

impl IfaceId {
    /// Interface 0 — the only interface of single-homed hosts.
    pub const PRIMARY: IfaceId = IfaceId(0);
}

/// Timer token conventionally used by [`crate::Network::wake`] to ask a
/// node to examine externally-mutated application state.
pub const WAKE: u64 = u64::MAX;

/// A simulated network element.
///
/// Implementations must be deterministic: any randomness comes from an RNG
/// the node owns, seeded at construction.
pub trait Node: Any {
    /// A packet has arrived on `iface`.
    fn on_packet(&mut self, ctx: &mut NodeCtx<'_>, iface: IfaceId, pkt: Packet);

    /// A timer set via [`NodeCtx::set_timer`] (or [`crate::Network::wake`])
    /// has fired.
    fn on_timer(&mut self, _ctx: &mut NodeCtx<'_>, _token: u64) {}

    /// Short human-readable label for traces.
    fn label(&self) -> &str {
        "node"
    }

    /// Upcast for driver-side downcasting.
    fn as_any(&self) -> &dyn Any;

    /// Upcast (mutable) for driver-side downcasting.
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

/// The capabilities a node has while handling an event.
///
/// Borrowed from the [`crate::Network`] for the duration of one callback;
/// all effects (sends, timers) are enqueued, never synchronous, which is
/// what keeps the simulation deterministic and re-entrancy-free.
pub struct NodeCtx<'a> {
    pub(crate) inner: &'a mut Inner,
    pub(crate) node: NodeId,
    pub(crate) label: &'a str,
}

impl NodeCtx<'_> {
    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.inner.now
    }

    /// The id of the node being called.
    pub fn id(&self) -> NodeId {
        self.node
    }

    /// Transmit `pkt` out of `iface`. Delivery is enqueued after the link
    /// latency; if the interface is unconnected the packet is counted as
    /// dropped.
    pub fn send(&mut self, iface: IfaceId, pkt: Packet) {
        self.inner.transmit(self.node, self.label, iface, pkt, SimDuration::ZERO);
    }

    /// Transmit after an extra node-local delay (processing time), on top
    /// of the link latency. Wiretap middleboxes use this to model the
    /// injection race.
    pub fn send_delayed(&mut self, iface: IfaceId, pkt: Packet, delay: SimDuration) {
        self.inner.transmit(self.node, self.label, iface, pkt, delay);
    }

    /// Arrange for [`Node::on_timer`] with `token` after `delay`.
    pub fn set_timer(&mut self, delay: SimDuration, token: u64) {
        self.inner.schedule_timer(self.node, delay, token);
    }

    /// Record an Rx trace entry for a packet this node consumed. Tx entries
    /// are recorded automatically by [`NodeCtx::send`]; nodes that *drop* a
    /// packet can call this to leave evidence for debugging. Every drop
    /// also ticks the `netsim.dropped` counter, labelled by reason.
    pub fn trace_drop(&mut self, pkt: &Packet, why: &'static str) {
        self.inner.telemetry.counter_inc("netsim.dropped", why);
        self.inner.trace.record(self.inner.now, self.node, self.label, Dir::Drop(why), pkt);
    }

    /// The node's label (as registered with the network).
    pub fn label(&self) -> &str {
        self.label
    }

    /// The shared telemetry handle, for emitting events and metrics from
    /// inside a node callback.
    pub fn obs(&self) -> &Telemetry {
        &self.inner.telemetry
    }
}

/// Convenience: the address a single-homed node uses, carried by several
/// node implementations. Defined here so every crate agrees on the shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HostAddr {
    /// The node's IPv4 address.
    pub ip: Ipv4Addr,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iface_primary_is_zero() {
        assert_eq!(IfaceId::PRIMARY, IfaceId(0));
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let mut s = HashSet::new();
        s.insert(NodeId(1));
        s.insert(NodeId(2));
        assert!(s.contains(&NodeId(1)));
        assert!(NodeId(1) < NodeId(2));
    }
}
