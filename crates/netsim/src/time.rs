//! Virtual time: the simulator never reads a wall clock.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// The simulator's canonical seeded random number generator.
///
/// Every stream of randomness in the workspace is an explicitly seeded
/// [`lucent_support::rng::Rng64`]; this alias marks the sanctioned
/// construction point. Lint rule L3 (`lucent-devtools`) restricts RNG
/// construction to an allowlist anchored on this module, so no code can
/// quietly introduce wall-clock or entropy-derived randomness.
pub type SimRng = lucent_support::rng::Rng64;

/// An instant of virtual time, in microseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of virtual time, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// Simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Microseconds since epoch.
    pub fn micros(self) -> u64 {
        self.0
    }

    /// Whole milliseconds since epoch.
    pub fn millis(self) -> u64 {
        self.0 / 1_000
    }

    /// The span since an earlier instant; saturates at zero.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// Zero span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from microseconds.
    pub fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Construct from milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Construct from seconds.
    pub fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Microseconds in this span.
    pub fn micros(self) -> u64 {
        self.0
    }

    /// Scale by an integer factor.
    pub fn saturating_mul(self, k: u64) -> Self {
        SimDuration(self.0.saturating_mul(k))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        self.0 = self.0.saturating_add(d.0);
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{:06}s", self.0 / 1_000_000, self.0 % 1_000_000)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_and_ordering() {
        let t = SimTime::ZERO + SimDuration::from_millis(5);
        assert_eq!(t.micros(), 5_000);
        assert_eq!(t.millis(), 5);
        assert!(t > SimTime::ZERO);
        assert_eq!(t.since(SimTime::ZERO), SimDuration::from_millis(5));
        assert_eq!(SimTime::ZERO.since(t), SimDuration::ZERO); // saturating
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_secs(2), SimDuration::from_millis(2_000));
        assert_eq!(SimDuration::from_millis(3), SimDuration::from_micros(3_000));
        assert_eq!(SimDuration::from_secs(1).saturating_mul(3), SimDuration::from_secs(3));
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimTime(1_500_000).to_string(), "1.500000s");
        assert_eq!(SimDuration(250).to_string(), "250us");
        assert_eq!(SimDuration(2_500).to_string(), "2.500ms");
        assert_eq!(SimDuration(1_200_000).to_string(), "1.200s");
    }

    #[test]
    fn saturation_at_extremes() {
        let huge = SimTime(u64::MAX);
        assert_eq!(huge + SimDuration::from_secs(1), huge);
        assert_eq!(SimDuration(u64::MAX).saturating_mul(2), SimDuration(u64::MAX));
        assert_eq!(SimDuration(5) - SimDuration(9), SimDuration::ZERO);
    }
}
