//! # lucent-netsim
//!
//! A deterministic, discrete-event, packet-level network simulator.
//!
//! Everything the measurement study in *Where The Light Gets In* does to a
//! network happens through packets: TTL manipulation, TCP state, forged
//! injections, packet races. This crate provides exactly that substrate —
//! nodes exchanging [`lucent_packet::Packet`] values over latency links
//! under a virtual clock — and nothing higher. TCP stacks, DNS resolvers,
//! web servers and censorship middleboxes are separate crates implementing
//! the [`Node`] trait.
//!
//! Design points (in the smoltcp tradition):
//!
//! * **Deterministic**: one event queue ordered by `(time, sequence)` —
//!   a calendar queue ([`sched`]) whose pop order is provably identical
//!   to a binary heap's; every source of randomness is an explicitly
//!   seeded RNG owned by the node that needs it. The same seed replays
//!   the same packet trace. In-flight packets live in a slab ([`slab`])
//!   so queued events stay small.
//! * **Event-driven**: nodes implement [`Node::on_packet`]/[`Node::on_timer`]
//!   and never block. External drivers (the measurement harness) poke nodes
//!   through [`Network::wake`] and downcasting accessors, then step the
//!   clock.
//! * **No global state**: a [`Network`] is a plain value; tests build dozens.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod network;
pub mod node;
pub mod router;
pub mod routing;
pub mod sched;
pub mod slab;
pub mod time;
pub mod trace;

pub use network::{DropReason, Network};
pub use node::{IfaceId, Node, NodeCtx, NodeId, WAKE};
pub use sched::{CalendarQueue, Scheduled};
pub use slab::PacketSlab;
pub use router::RouterNode;
pub use time::{SimDuration, SimRng, SimTime};
pub use trace::{Dir, TraceEntry, TraceHandle};

// The telemetry handle travels with the network; re-exported so node
// crates need not name `lucent-obs` for the common case.
pub use lucent_obs::Telemetry;
