//! A slab store for in-flight packets, so queued `Deliver` events carry
//! a 4-byte slot index instead of an owned [`Packet`].
//!
//! Lifecycle: [`PacketSlab::stash`] on transmit/inject, exactly one
//! [`PacketSlab::reclaim`] when the delivery event pops (before the
//! destination node is even looked up, so a packet addressed to a
//! removed node is still freed). Freed slots go on a free list and are
//! reused LIFO, which keeps the backing vector at the in-flight
//! high-water mark instead of growing with total traffic.
//!
//! This is a pure storage move: the slab introduces no ordering of its
//! own, so the event stream — and with it the deterministic profile
//! plane — is untouched by the indirection.

use lucent_packet::Packet;

/// An index into the [`PacketSlab`]; owned by exactly one queued
/// delivery event between `stash` and `reclaim`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketSlot(pub(crate) u32);

/// Slab of in-flight packets with LIFO slot reuse.
#[derive(Default)]
pub struct PacketSlab {
    slots: Vec<Option<Packet>>,
    free: Vec<u32>,
    live: usize,
    live_hwm: usize,
}

impl PacketSlab {
    /// Store a packet, returning its slot. Reuses a freed slot when one
    /// exists; otherwise grows the backing vector.
    pub fn stash(&mut self, pkt: Packet) -> PacketSlot {
        self.live += 1;
        if self.live > self.live_hwm {
            self.live_hwm = self.live;
        }
        match self.free.pop() {
            Some(idx) => {
                self.slots[idx as usize] = Some(pkt);
                PacketSlot(idx)
            }
            None => {
                let idx = self.slots.len();
                // Mirrors `Network::add_node`: id-space exhaustion is a
                // build-scale bug that must fail loudly, not wrap.
                assert!(
                    u32::try_from(idx).is_ok(),
                    "packet slab overflow: {idx} in-flight packets exceeds u32 slot space"
                );
                self.slots.push(Some(pkt));
                PacketSlot(idx as u32)
            }
        }
    }

    /// Take the packet back and free its slot. `None` if the slot is
    /// not live (double reclaim or a forged index) — callers treat that
    /// as a dropped delivery rather than a panic.
    pub fn reclaim(&mut self, slot: PacketSlot) -> Option<Packet> {
        let pkt = self.slots.get_mut(slot.0 as usize)?.take()?;
        self.live -= 1;
        self.free.push(slot.0);
        Some(pkt)
    }

    /// Packets currently in flight.
    pub fn live(&self) -> usize {
        self.live
    }

    /// Most packets ever simultaneously in flight — the slab's resident
    /// footprint in slots.
    pub fn live_hwm(&self) -> usize {
        self.live_hwm
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lucent_packet::UdpHeader;
    use std::net::Ipv4Addr;

    fn pkt(tag: u8) -> Packet {
        Packet::udp(
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            UdpHeader::new(1, 2),
            &[tag][..],
        )
    }

    #[test]
    fn stash_then_reclaim_roundtrips() {
        let mut slab = PacketSlab::default();
        let a = slab.stash(pkt(1));
        let b = slab.stash(pkt(2));
        assert_eq!(slab.live(), 2);
        assert_eq!(slab.reclaim(b).unwrap().as_udp().unwrap().1[0], 2);
        assert_eq!(slab.reclaim(a).unwrap().as_udp().unwrap().1[0], 1);
        assert_eq!(slab.live(), 0);
        assert_eq!(slab.live_hwm(), 2);
    }

    #[test]
    fn slots_are_reused_lifo() {
        let mut slab = PacketSlab::default();
        let a = slab.stash(pkt(1));
        assert!(slab.reclaim(a).is_some());
        let b = slab.stash(pkt(2));
        assert_eq!(a, b, "freed slot is reused");
        assert_eq!(slab.live_hwm(), 1, "reuse keeps the footprint flat");
    }

    #[test]
    fn double_reclaim_is_none_not_panic() {
        let mut slab = PacketSlab::default();
        let a = slab.stash(pkt(1));
        assert!(slab.reclaim(a).is_some());
        assert!(slab.reclaim(a).is_none());
        assert!(slab.reclaim(PacketSlot(99)).is_none());
    }
}
