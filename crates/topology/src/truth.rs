//! Ground truth: the oracle against which measurements are scored.
//!
//! The paper validates every automated verdict by manual inspection; the
//! simulator's equivalent is this record of what was *actually* deployed.
//! Experiments never read it to make measurements — only to score them
//! (precision/recall, coverage error, consistency error).

use std::collections::{BTreeMap, BTreeSet};
use std::net::Ipv4Addr;

use lucent_web::SiteId;

use crate::ids::IspId;

/// The deployed censorship, exactly as built.
#[derive(Debug, Default, Clone)]
pub struct GroundTruth {
    /// Per ISP: the master HTTP blocklist (union of device lists).
    pub http_master: BTreeMap<IspId, BTreeSet<SiteId>>,
    /// Per ISP: per-device (core index, inspects-outside?, blocklist).
    pub http_devices: BTreeMap<IspId, Vec<(usize, bool, BTreeSet<SiteId>)>>,
    /// Per ISP: master DNS blocklist.
    pub dns_master: BTreeMap<IspId, BTreeSet<SiteId>>,
    /// Per ISP: per-poisoned-resolver (address, blocklist).
    pub dns_resolvers: BTreeMap<IspId, Vec<(Ipv4Addr, BTreeSet<SiteId>)>>,
    /// Border (victim, censor) → blocklist enforced on that interconnect.
    pub borders: BTreeMap<(IspId, IspId), BTreeSet<SiteId>>,
}

impl GroundTruth {
    /// Does `isp` censor `site` over HTTP on at least one internal path?
    pub fn http_blocked(&self, isp: IspId, site: SiteId) -> bool {
        self.http_master.get(&isp).map(|s| s.contains(&site)).unwrap_or(false)
    }

    /// Does any poisoned resolver of `isp` manipulate `site`?
    pub fn dns_blocked(&self, isp: IspId, site: SiteId) -> bool {
        self.dns_master.get(&isp).map(|s| s.contains(&site)).unwrap_or(false)
    }

    /// Is `site` censored for clients of `isp` by *anyone* — the ISP's own
    /// devices, its poisoned resolvers, or a transit border device?
    pub fn blocked_for_client(&self, isp: IspId, site: SiteId) -> bool {
        self.http_blocked(isp, site)
            || self.dns_blocked(isp, site)
            || self
                .borders
                .iter()
                .any(|((victim, _), sites)| *victim == isp && sites.contains(&site))
    }

    /// Collateral set for a (victim, censor) pair.
    pub fn border_blocklist(&self, victim: IspId, censor: IspId) -> Option<&BTreeSet<SiteId>> {
        self.borders.get(&(victim, censor))
    }

    /// True ISP-level device consistency: average over blocked sites of
    /// the fraction of devices blocking each (the quantity Figure 5
    /// estimates from path probing).
    pub fn true_http_consistency(&self, isp: IspId) -> Option<f64> {
        let master = self.http_master.get(&isp)?;
        let devices = self.http_devices.get(&isp)?;
        if master.is_empty() || devices.is_empty() {
            return None;
        }
        let mut acc = 0.0;
        for site in master {
            let blocking = devices.iter().filter(|(_, _, bl)| bl.contains(site)).count();
            acc += blocking as f64 / devices.len() as f64;
        }
        Some(acc / master.len() as f64)
    }

    /// True resolver consistency (the Figure-2 quantity).
    pub fn true_dns_consistency(&self, isp: IspId) -> Option<f64> {
        let master = self.dns_master.get(&isp)?;
        let resolvers = self.dns_resolvers.get(&isp)?;
        if master.is_empty() || resolvers.is_empty() {
            return None;
        }
        let mut acc = 0.0;
        for site in master {
            let blocking = resolvers.iter().filter(|(_, bl)| bl.contains(site)).count();
            acc += blocking as f64 / resolvers.len() as f64;
        }
        Some(acc / master.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn truth() -> GroundTruth {
        let mut t = GroundTruth::default();
        let s = |ids: &[u32]| ids.iter().map(|&i| SiteId(i)).collect::<BTreeSet<_>>();
        t.http_master.insert(IspId::Airtel, s(&[1, 2, 3, 4]));
        t.http_devices.insert(
            IspId::Airtel,
            vec![(0, true, s(&[1, 2])), (1, false, s(&[1]))],
        );
        t.dns_master.insert(IspId::Mtnl, s(&[5, 6]));
        t.dns_resolvers.insert(
            IspId::Mtnl,
            vec![("10.0.0.1".parse().unwrap(), s(&[5])), ("10.0.0.2".parse().unwrap(), s(&[5, 6]))],
        );
        t.borders.insert((IspId::Nkn, IspId::Vodafone), s(&[7]));
        t
    }

    #[test]
    fn blocked_lookups() {
        let t = truth();
        assert!(t.http_blocked(IspId::Airtel, SiteId(1)));
        assert!(!t.http_blocked(IspId::Airtel, SiteId(9)));
        assert!(t.dns_blocked(IspId::Mtnl, SiteId(6)));
        assert!(t.blocked_for_client(IspId::Nkn, SiteId(7)), "collateral counts");
        assert!(!t.blocked_for_client(IspId::Nkn, SiteId(1)));
    }

    #[test]
    fn consistency_math() {
        let t = truth();
        // Site 1: 2/2 devices; 2: 1/2; 3: 0/2; 4: 0/2 → mean 0.375.
        assert!((t.true_http_consistency(IspId::Airtel).unwrap() - 0.375).abs() < 1e-9);
        // Site 5: 2/2; site 6: 1/2 → 0.75.
        assert!((t.true_dns_consistency(IspId::Mtnl).unwrap() - 0.75).abs() < 1e-9);
        assert!(t.true_http_consistency(IspId::Jio).is_none());
    }
}
