//! Construction of the full India network.

use std::collections::{BTreeMap, BTreeSet};
use std::net::Ipv4Addr;

use lucent_netsim::SimRng;

use lucent_dns::{catalog, DnsCatalog, PoisonMode, RegionId, ResolverApp, SharedCatalog};
use lucent_middlebox::{builtin, Instance, MiddleboxConfig, NoticeStyle, Policy, PolicyBox};
use lucent_netsim::routing::Cidr;
use lucent_netsim::{IfaceId, Network, Node, NodeId, RouterNode, SimDuration};
use lucent_tcp::{FixedResponder, TcpHost};
use lucent_web::{Corpus, IpAllocator, ServerConfig, SiteId, WebServerApp};

use crate::ids::IspId;
use crate::profile::{HttpProfile, IndiaConfig, MbKind};
use crate::truth::GroundTruth;

/// Handles into one built ISP.
#[derive(Debug)]
pub struct Isp {
    /// Which AS this is.
    pub id: IspId,
    /// Content region.
    pub region: RegionId,
    /// The announced /16.
    pub prefix: Cidr,
    /// Gateway router.
    pub gateway: NodeId,
    /// Parallel core routers.
    pub cores: Vec<NodeId>,
    /// Leaf (access) routers, one per internal /24.
    pub leaves: Vec<NodeId>,
    /// Internal /24 prefixes.
    pub leaf_prefixes: Vec<Cidr>,
    /// The measurement client hosted in this ISP.
    pub client: NodeId,
    /// Its address.
    pub client_ip: Ipv4Addr,
    /// Hosts with open TCP port 80, two per leaf prefix (the targets of
    /// the outside-vantage scans).
    pub edge_hosts: Vec<(Ipv4Addr, NodeId)>,
    /// Every open DNS resolver (honest and poisoned).
    pub resolvers: Vec<(Ipv4Addr, NodeId)>,
    /// The resolver the ISP hands to its clients.
    pub default_resolver: Ipv4Addr,
    /// The ISP's censorship-notice web host (poisoned DNS points here).
    pub notice_ip: Ipv4Addr,
    /// Deployed middleboxes: (core index, node, kind).
    pub devices: Vec<(usize, NodeId, MbKind)>,
}

/// The whole built world.
pub struct India {
    /// The configuration it was built from.
    pub cfg: IndiaConfig,
    /// The simulator.
    pub net: Network,
    /// The website corpus.
    pub corpus: Corpus,
    /// The shared DNS catalog.
    pub catalog: SharedCatalog,
    /// Per-ISP handles.
    pub isps: BTreeMap<IspId, Isp>,
    /// Hosting pool prefixes (even indices attach to internet exchange A,
    /// odd to B).
    pub hosting_pools: Vec<Cidr>,
    /// Every web-hosting node by address.
    pub hosting: Vec<(Ipv4Addr, NodeId)>,
    /// External vantage points (PlanetLab/cloud stand-ins, also the
    /// controlled remote servers of the corroboration experiments).
    pub external_vps: Vec<(Ipv4Addr, NodeId)>,
    /// The Tor-exit-like uncensored vantage.
    pub tor: NodeId,
    /// Its address.
    pub tor_ip: Ipv4Addr,
    /// The OONI-style control vantage.
    pub control: NodeId,
    /// Its address.
    pub control_ip: Ipv4Addr,
    /// A public honest resolver (the "Google DNS" of this world).
    pub public_dns: NodeId,
    /// Its address.
    pub public_dns_ip: Ipv4Addr,
    /// Ground truth for scoring.
    pub truth: GroundTruth,
}

/// Deterministic unit-interval hash (SplitMix64 finalizer) — used for
/// stable per-(isp, device, site) inclusion decisions.
pub fn det_unit(parts: &[u64]) -> f64 {
    let mut x = 0x9e37_79b9_7f4a_7c15u64;
    for &p in parts {
        x = x.wrapping_add(p).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x ^= x >> 27;
    }
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    (x >> 11) as f64 / (1u64 << 53) as f64
}

/// Seeded sample of `n` distinct items.
fn sample_sites(rng: &mut SimRng, pool: &[SiteId], n: usize) -> BTreeSet<SiteId> {
    let mut items: Vec<SiteId> = pool.to_vec();
    let n = n.min(items.len());
    for i in 0..n {
        let j = rng.gen_range(i..items.len());
        items.swap(i, j);
    }
    items.truncate(n);
    items.into_iter().collect()
}

/// Link helper that allocates interface numbers on both ends.
struct Wire {
    next: BTreeMap<NodeId, u8>,
}

impl Wire {
    fn new() -> Self {
        Wire { next: BTreeMap::new() }
    }

    fn alloc(&mut self, node: NodeId) -> IfaceId {
        let slot = self.next.entry(node).or_insert(0);
        let iface = IfaceId(*slot);
        // Saturate at 255: no build plan comes within an order of
        // magnitude of that many interfaces, and if one ever did, the
        // repeated iface id trips `connect`'s already-connected check
        // instead of panicking here mid-build.
        *slot = slot.saturating_add(1);
        iface
    }

    /// Connect two routers/middleboxes, allocating ifaces on both sides.
    fn link(&mut self, net: &mut Network, a: NodeId, b: NodeId, lat: SimDuration) -> (IfaceId, IfaceId) {
        let ia = self.alloc(a);
        let ib = self.alloc(b);
        net.connect(a, ia, b, ib, lat);
        (ia, ib)
    }

    /// Attach a single-homed host (iface 0) to a router.
    fn attach(&mut self, net: &mut Network, host: NodeId, router: NodeId, lat: SimDuration) -> IfaceId {
        let ir = self.alloc(router);
        net.connect(host, IfaceId::PRIMARY, router, ir, lat);
        ir
    }
}

/// Apply an edit to a router created earlier in this same build. Every
/// caller passes an id it just received from `add_node`, so a miss can
/// only mean the build plan itself is inconsistent — the edit is
/// skipped rather than applied to the wrong node, and the resulting
/// routing hole surfaces in the topology tests.
fn edit_router(net: &mut Network, id: NodeId, f: impl FnOnce(&mut RouterNode)) {
    if let Some(r) = net.node_mut::<RouterNode>(id) {
        f(r);
    }
}

const MS: fn(u64) -> SimDuration = SimDuration::from_millis;

impl India {
    /// Build the world from `cfg`.
    pub fn build(cfg: IndiaConfig) -> India {
        let mut rng = SimRng::seed_from_u64(cfg.seed);
        let mut net = Network::new();
        let mut wire = Wire::new();
        let mut truth = GroundTruth::default();

        // ----- corpus & catalog ------------------------------------------
        // Hosting pools scatter across distinct /16s, the way real CDNs
        // and hosters do — which is what defeats "same AS ⇒ same site"
        // DNS-consistency heuristics and produces OONI's CDN false
        // positives.
        const POOL_BASES: [(u8, u8); 6] =
            [(151, 101), (104, 16), (185, 199), (172, 67), (146, 75), (199, 232)];
        let hosting_pools: Vec<Cidr> = (0..cfg.hosting_pools)
            .map(|p| {
                let (a, b) = POOL_BASES[p % POOL_BASES.len()];
                Cidr::new(Ipv4Addr::new(a, b, p as u8, 0), 24)
            })
            .collect();
        let mut alloc = IpAllocator::new(hosting_pools.clone());
        let corpus = Corpus::generate(&cfg.corpus, &mut alloc);
        let mut catalog_inner = DnsCatalog::new();
        corpus.populate_dns(&mut catalog_inner);
        let catalog = catalog::shared(catalog_inner);
        let directory = corpus.directory();

        // ----- internet exchanges ----------------------------------------
        let inet_a = net.add_node(Box::new(RouterNode::new(Ipv4Addr::new(100, 100, 0, 1), "inet-a")));
        let inet_b = net.add_node(Box::new(RouterNode::new(Ipv4Addr::new(100, 100, 0, 2), "inet-b")));
        let (a_to_b, b_to_a) = wire.link(&mut net, inet_a, inet_b, MS(2));

        // ----- hosting pools ---------------------------------------------
        let mut hosting: Vec<(Ipv4Addr, NodeId)> = Vec::new();
        let hosting_ips = corpus.hosting_ips();
        for (p, pool) in hosting_pools.iter().enumerate() {
            let router = net.add_node(Box::new(RouterNode::new(pool.nth(1), format!("pool{p}"))));
            let inet = if p % 2 == 0 { inet_a } else { inet_b };
            let lat = MS(15 + (p as u64 * 7) % 30);
            let (inet_if, pool_up) = wire.link(&mut net, inet, router, lat);
            edit_router(&mut net, inet, |r| r.table.add(*pool, inet_if));
            edit_router(&mut net, router, |r| {
                r.table.add(Cidr::new(Ipv4Addr::new(0, 0, 0, 0), 0), pool_up)
            });
            let region: RegionId = 100 + p as RegionId;
            for &ip in hosting_ips.iter().filter(|ip| pool.contains(**ip)) {
                let mut host = TcpHost::new(ip, format!("web-{ip}"), cfg.seed);
                let server_cfg = ServerConfig { region, directory: directory.clone() };
                host.listen(80, WebServerApp::factory(server_cfg));
                host.listen(443, lucent_web::TlsLikeApp::factory());
                let id = net.add_node(Box::new(host));
                let rif = wire.attach(&mut net, id, router, SimDuration::from_micros(500));
                edit_router(&mut net, router, |r| r.table.add(Cidr::host(ip), rif));
                hosting.push((ip, id));
            }
        }

        // ----- external vantage points, Tor exit, OONI control -----------
        let mut external_vps = Vec::new();
        let vp_specs: [(Ipv4Addr, RegionId, u64); 8] = [
            (Ipv4Addr::new(128, 112, 139, 10), 110, 25),
            (Ipv4Addr::new(131, 159, 14, 10), 111, 35),
            (Ipv4Addr::new(155, 98, 38, 10), 112, 45),
            (Ipv4Addr::new(129, 97, 74, 10), 113, 28),
            (Ipv4Addr::new(193, 10, 64, 10), 114, 52),
            (Ipv4Addr::new(139, 19, 142, 10), 115, 33),
            (Ipv4Addr::new(35, 180, 12, 10), 116, 41),
            (Ipv4Addr::new(52, 66, 7, 10), 117, 22),
        ];
        let attach_external = |net: &mut Network,
                                   wire: &mut Wire,
                                   ip: Ipv4Addr,
                                   label: &str,
                                   region: RegionId,
                                   lat_ms: u64,
                                   serve: bool|
         -> NodeId {
            let router_ip = Ipv4Addr::new(ip.octets()[0], ip.octets()[1], ip.octets()[2], 1);
            let router = net.add_node(Box::new(RouterNode::new(router_ip, format!("{label}-r"))));
            let (inet_if, up) = wire.link(net, inet_a, router, MS(lat_ms));
            edit_router(net, inet_a, |r| r.table.add(Cidr::new(ip, 24), inet_if));
            edit_router(net, router, |r| {
                r.table.add(Cidr::new(Ipv4Addr::new(0, 0, 0, 0), 0), up)
            });
            let mut host = TcpHost::new(ip, label, cfg.seed ^ u64::from(u32::from(ip)));
            if serve {
                let server_cfg = ServerConfig { region, directory: directory.clone() };
                host.listen(80, WebServerApp::factory(server_cfg));
            }
            let id = net.add_node(Box::new(host));
            let rif = wire.attach(net, id, router, SimDuration::from_micros(500));
            edit_router(net, router, |r| r.table.add(Cidr::host(ip), rif));
            id
        };
        for (ip, region, lat) in vp_specs {
            let id = attach_external(&mut net, &mut wire, ip, &format!("vp-{region}"), region, lat, true);
            external_vps.push((ip, id));
        }
        let tor_ip = Ipv4Addr::new(171, 25, 193, 10);
        let tor = attach_external(&mut net, &mut wire, tor_ip, "tor-exit", 120, 40, false);
        let control_ip = Ipv4Addr::new(37, 218, 245, 10);
        let control = attach_external(&mut net, &mut wire, control_ip, "ooni-control", 103, 38, false);
        // A well-known public resolver outside every censor's reach —
        // Google DNS in the paper's evasion section and OONI's control
        // resolution both rely on one.
        let public_dns_ip = Ipv4Addr::new(8, 8, 8, 10);
        let public_dns = attach_external(&mut net, &mut wire, public_dns_ip, "public-dns", 122, 30, false);
        if let Some(host) = net.node_mut::<TcpHost>(public_dns) {
            host.set_udp_app(53, Box::new(ResolverApp::honest(catalog.clone(), 122)));
        }

        // ----- ISPs --------------------------------------------------------
        let mut isps = BTreeMap::new();
        let mut gateway_of: BTreeMap<IspId, NodeId> = BTreeMap::new();
        for isp_id in IspId::ALL {
            let isp = Self::build_isp(
                isp_id, &cfg, &mut net, &mut wire, &mut rng, &corpus, &catalog, &directory, &mut truth,
            );
            gateway_of.insert(isp_id, isp.gateway);
            isps.insert(isp_id, isp);
        }

        // ----- attach direct ISPs to both exchanges -----------------------
        let even_pools: Vec<Cidr> =
            hosting_pools.iter().copied().enumerate().filter(|(p, _)| p % 2 == 0).map(|(_, c)| c).collect();
        let odd_pools: Vec<Cidr> =
            hosting_pools.iter().copied().enumerate().filter(|(p, _)| p % 2 == 1).map(|(_, c)| c).collect();

        let mut exchange_iface: BTreeMap<(IspId, bool), IfaceId> = BTreeMap::new();
        for isp_id in IspId::ALL.iter().copied().filter(|i| i.transits().is_none()) {
            let gw = gateway_of[&isp_id];
            let (ia, ga) = wire.link(&mut net, inet_a, gw, MS(8));
            let (ib, gb) = wire.link(&mut net, inet_b, gw, MS(8));
            edit_router(&mut net, inet_a, |r| r.table.add(isp_id.prefix(), ia));
            edit_router(&mut net, inet_b, |r| r.table.add(isp_id.prefix(), ib));
            exchange_iface.insert((isp_id, false), ia);
            exchange_iface.insert((isp_id, true), ib);
            edit_router(&mut net, gw, |gw_router| {
                for pool in &even_pools {
                    gw_router.table.add(*pool, ga);
                }
                for pool in &odd_pools {
                    gw_router.table.add(*pool, gb);
                }
                gw_router.table.add(Cidr::new(Ipv4Addr::new(0, 0, 0, 0), 0), ga);
            });
        }
        // Inter-exchange fallthrough: exchange A learns explicit routes to
        // the odd (B-side) pools; everything B does not know falls back to
        // A.
        for (p, pool) in hosting_pools.iter().enumerate() {
            if p % 2 == 1 {
                edit_router(&mut net, inet_a, |r| r.table.add(*pool, a_to_b));
            }
        }
        edit_router(&mut net, inet_b, |r| {
            r.table.add(Cidr::new(Ipv4Addr::new(0, 0, 0, 0), 0), b_to_a)
        });

        // ----- victims: transit interconnects + border devices ------------
        for isp_id in IspId::ALL.iter().copied() {
            let Some((censor_a, censor_b)) = isp_id.transits() else { continue };
            let gw = gateway_of[&isp_id];
            let single_homed = censor_a == censor_b;
            let mut up_ifaces = Vec::new();
            for (side_idx, censor) in [(0usize, censor_a), (1usize, censor_b)] {
                if side_idx == 1 && single_homed {
                    break;
                }
                let count = cfg.collateral.get(&(isp_id, censor)).copied().unwrap_or(0);
                let censor_gw = gateway_of[&censor];
                let censor_profile = cfg.http.get(&censor);
                let via_even = side_idx == 0;
                let blocklist = Self::border_blocklist(
                    &mut rng, &corpus, &hosting_pools, count, via_even, single_homed,
                );
                truth.borders.insert((isp_id, censor), blocklist.iter().copied().collect());
                let mb_cfg = Self::device_config(
                    &cfg,
                    censor,
                    censor_profile,
                    blocklist.iter().map(|s| corpus.site(*s).domain.clone()),
                    None,
                    0x1000 + u64::from(u32::from(isp_id.prefix().addr)) + side_idx as u64,
                );
                let victim_iface = match censor_profile.map(|p| p.kind) {
                    Some(MbKind::InterceptiveOvert) | Some(MbKind::InterceptiveCovert) => {
                        let im = net.add_node(Self::censor_node(
                            censor,
                            censor_profile,
                            mb_cfg,
                            format!("border-im-{}-{}", isp_id.name(), censor.name()),
                        ));
                        let (v_if, _) = wire.link(&mut net, gw, im, MS(4));
                        let (_, c_if) = wire.link(&mut net, im, censor_gw, MS(1));
                        edit_router(&mut net, censor_gw, |r| r.table.add(isp_id.prefix(), c_if));
                        v_if
                    }
                    _ => {
                        // WM (or no profile): censor-owned border router with tap.
                        let br_ip = censor.prefix().nth(0xfd00 + side_idx as u32);
                        let border = net.add_node(Box::new(RouterNode::new(
                            br_ip,
                            format!("border-{}-{}", isp_id.name(), censor.name()),
                        )));
                        let (v_if, b_down) = wire.link(&mut net, gw, border, MS(4));
                        let (b_up, c_if) = wire.link(&mut net, border, censor_gw, MS(1));
                        let wm = net.add_node(Self::censor_node(
                            censor,
                            censor_profile,
                            mb_cfg,
                            format!("border-wm-{}-{}", isp_id.name(), censor.name()),
                        ));
                        let tap = wire.alloc(border);
                        net.connect(border, tap, wm, IfaceId::PRIMARY, SimDuration::from_micros(80));
                        edit_router(&mut net, border, |b| {
                            b.mirrors.push(tap);
                            b.anonymized = true;
                            b.table.add(isp_id.prefix(), b_down);
                            b.table.add(Cidr::new(Ipv4Addr::new(0, 0, 0, 0), 0), b_up);
                        });
                        edit_router(&mut net, censor_gw, |r| r.table.add(isp_id.prefix(), c_if));
                        v_if
                    }
                };
                up_ifaces.push(victim_iface);
                // Exchanges route the victim prefix through this censor.
                let (exchange, key) = if via_even { (inet_a, (censor, false)) } else { (inet_b, (censor, true)) };
                let ex_if = exchange_iface[&key];
                edit_router(&mut net, exchange, |r| r.table.add(isp_id.prefix(), ex_if));
                if single_homed {
                    let ex_if_b = exchange_iface[&(censor, true)];
                    edit_router(&mut net, inet_b, |r| r.table.add(isp_id.prefix(), ex_if_b));
                }
            }
            // Victim gateway routing: even pools via side 0, odd via side 1.
            let Some(&side_a) = up_ifaces.first() else { continue };
            let side_b = *up_ifaces.get(1).unwrap_or(&side_a);
            edit_router(&mut net, gw, |gw_router| {
                for pool in &even_pools {
                    gw_router.table.add(*pool, side_a);
                }
                for pool in &odd_pools {
                    gw_router.table.add(*pool, side_b);
                }
                gw_router.table.add(Cidr::new(Ipv4Addr::new(0, 0, 0, 0), 0), side_a);
            });
        }

        India {
            cfg,
            net,
            corpus,
            catalog,
            isps,
            hosting_pools,
            hosting,
            external_vps,
            tor,
            tor_ip,
            control,
            control_ip,
            public_dns,
            public_dns_ip,
            truth,
        }
    }

    /// A human-readable inventory of the built world — the `repro world`
    /// output and a quick sanity artifact for docs.
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "world: {} nodes, {} links, {} sites ({} PBW + {} popular), {} hosting hosts",
            self.net.node_count(),
            self.net.link_count(),
            self.corpus.sites().len(),
            self.corpus.pbw.len(),
            self.corpus.popular.len(),
            self.hosting.len(),
        );
        for (id, isp) in &self.isps {
            let http = self
                .truth
                .http_master
                .get(id)
                .map(|m| format!("{} devices / {} blocked", isp.devices.len(), m.len()))
                .unwrap_or_else(|| "no HTTP filtering".into());
            let dns = self
                .truth
                .dns_master
                .get(id)
                .map(|m| {
                    format!(
                        "{} of {} resolvers poisoned / {} blocked",
                        self.truth.dns_resolvers.get(id).map(Vec::len).unwrap_or(0),
                        isp.resolvers.len(),
                        m.len()
                    )
                })
                .unwrap_or_else(|| "honest DNS".into());
            let transit = id
                .transits()
                .map(|(a, b)| {
                    if a == b {
                        format!(" (transit via {a})")
                    } else {
                        format!(" (transit via {a}/{b})")
                    }
                })
                .unwrap_or_default();
            let _ = writeln!(
                out,
                "  {:<9} {} cores, {} leaves, client {}{}: HTTP [{}], DNS [{}]",
                id.name(),
                isp.cores.len(),
                isp.leaves.len(),
                isp.client_ip,
                transit,
                http,
                dns,
            );
        }
        for ((victim, censor), sites) in &self.truth.borders {
            let _ = writeln!(out, "  border {victim}←{censor}: {} sites", sites.len());
        }
        out
    }

    /// The compiled censor program for `censor`: the ISP's committed
    /// policy file when one exists, otherwise a program derived from
    /// the profile primitives (Tata's border wiretap, bespoke tests).
    /// The derivation is also the safety net should a builtin ever fail
    /// to compile — a divergence there cannot hide, because the
    /// differential equivalence suite compares behaviour, not source.
    fn policy_for(censor: IspId, profile: Option<&HttpProfile>, mb: &MiddleboxConfig) -> Policy {
        let builtin_name = match censor {
            IspId::Airtel => Some("airtel-wm"),
            IspId::Jio => Some("jio-wm"),
            IspId::Idea => Some("idea-im"),
            IspId::Vodafone => Some("vodafone-im"),
            _ => None,
        };
        if let Some(name) = builtin_name {
            if let Ok(policy) = builtin(name) {
                return policy;
            }
        }
        let mut policy = match profile.map(|p| p.kind) {
            Some(MbKind::InterceptiveOvert | MbKind::InterceptiveCovert) => {
                Policy::interceptive_like(
                    censor.name(),
                    mb.matcher,
                    mb.notice.clone(),
                    mb.fixed_ip_id,
                )
            }
            _ => Policy::wiretap_like(
                censor.name(),
                mb.matcher,
                mb.notice.clone(),
                mb.fixed_ip_id,
                mb.injection_delay_us,
                mb.slow_injection,
            ),
        };
        policy.ports = mb.ports.clone();
        policy.flow_timeout = mb.flow_timeout;
        policy
    }

    /// Construct the censor device node: a [`PolicyBox`] interpreting
    /// the ISP's policy program.
    fn censor_node(
        censor: IspId,
        profile: Option<&HttpProfile>,
        mb_cfg: MiddleboxConfig,
        label: String,
    ) -> Box<dyn Node> {
        let policy = Self::policy_for(censor, profile, &mb_cfg);
        let inst = Instance {
            blocklist: mb_cfg.blocklist,
            client_filter: mb_cfg.client_filter,
            seed: mb_cfg.seed,
        };
        Box::new(PolicyBox::new(policy, inst, label))
    }

    /// The per-device [`MiddleboxConfig`] for a censor. `device_tag`
    /// distinguishes sibling devices: without it every device of an ISP
    /// would share one RNG stream and their injection-delay draws would
    /// be identical in lockstep.
    fn device_config(
        cfg: &IndiaConfig,
        censor: IspId,
        profile: Option<&HttpProfile>,
        domains: impl IntoIterator<Item = String>,
        client_filter: Option<Vec<Cidr>>,
        device_tag: u64,
    ) -> MiddleboxConfig {
        let mut mb = MiddleboxConfig::new(domains);
        if let Some(p) = profile {
            mb.matcher = p.matcher;
            mb.notice = p.notice.clone();
            mb.fixed_ip_id = p.fixed_ip_id;
            mb.slow_injection = p.slow_injection;
        }
        mb.client_filter = client_filter;
        mb.seed = cfg.seed
            ^ u64::from(u32::from(censor.prefix().addr))
            ^ device_tag.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        mb
    }

    /// Sites eligible for a border blocklist: alive, single-replica,
    /// hosted in pools on the right side of the even/odd split.
    fn border_blocklist(
        rng: &mut SimRng,
        corpus: &Corpus,
        pools: &[Cidr],
        count: usize,
        via_even: bool,
        any_parity: bool,
    ) -> Vec<SiteId> {
        let pool_index = |ip: Ipv4Addr| pools.iter().position(|p| p.contains(ip));
        let eligible: Vec<SiteId> = corpus
            .pbw
            .iter()
            .copied()
            .filter(|&id| {
                let s = corpus.site(id);
                if !s.is_alive() || s.regional_dns || s.replicas.len() != 1 {
                    return false;
                }
                match pool_index(s.replicas[0]) {
                    Some(p) => any_parity || (p % 2 == 0) == via_even,
                    None => false,
                }
            })
            .collect();
        sample_sites(rng, &eligible, count).into_iter().collect()
    }

    #[allow(clippy::too_many_arguments)]
    fn build_isp(
        isp_id: IspId,
        cfg: &IndiaConfig,
        net: &mut Network,
        wire: &mut Wire,
        rng: &mut SimRng,
        corpus: &Corpus,
        catalog: &SharedCatalog,
        directory: &lucent_web::SharedDirectory,
        truth: &mut GroundTruth,
    ) -> Isp {
        let prefix = isp_id.prefix();
        let region = isp_id.region();
        let base = prefix.addr.octets();
        let k = cfg.cores_per_isp;
        let l = cfg.leaves_per_isp;
        let ip = |third: u8, fourth: u8| Ipv4Addr::new(base[0], base[1], third, fourth);

        let gateway =
            net.add_node(Box::new(RouterNode::new(ip(255, 1), format!("{}-gw", isp_id.name()))));
        let cores: Vec<NodeId> = (0..k)
            .map(|c| {
                net.add_node(Box::new(RouterNode::new(
                    ip(254, (c + 1) as u8),
                    format!("{}-core{}", isp_id.name(), c),
                )))
            })
            .collect();
        let leaves: Vec<NodeId> = (0..l)
            .map(|leaf| {
                net.add_node(Box::new(RouterNode::new(
                    ip(leaf as u8, 1),
                    format!("{}-leaf{}", isp_id.name(), leaf),
                )))
            })
            .collect();
        let leaf_prefixes: Vec<Cidr> = (0..l).map(|leaf| Cidr::new(ip(leaf as u8, 0), 24)).collect();

        // --- HTTP devices: which cores are covered -----------------------
        let http_profile = cfg.http.get(&isp_id);
        let mut devices: Vec<(usize, NodeId, MbKind)> = Vec::new();
        let mut device_plan: Vec<(usize, bool, BTreeSet<SiteId>)> = Vec::new();
        let mut master: BTreeSet<SiteId> = BTreeSet::new();
        let mut covered: BTreeMap<usize, (bool, BTreeSet<SiteId>)> = BTreeMap::new();
        if let Some(p) = http_profile {
            let n_inside = (p.coverage_inside * k as f64).round() as usize;
            let n_outside = (p.coverage_outside * k as f64).round() as usize;
            master = sample_sites(rng, &corpus.pbw, p.blocked_sites);
            // Shuffle core indices deterministically.
            let mut order: Vec<usize> = (0..k).collect();
            for i in 0..k {
                let j = rng.gen_range(i..k);
                order.swap(i, j);
            }
            // Partition-with-multiplicity blocklists: every master site
            // lands on `max(1, round(q_s · n_devices))` devices. This
            // pins two measurable quantities simultaneously: the union
            // over devices equals the master list (Table 2's per-ISP
            // blocked counts), and the average per-site device fraction
            // tracks `consistency_q` (Figure 5). A plain Bernoulli draw
            // cannot satisfy both for low-consistency ISPs.
            if n_inside > 0 {
                let mut device_sets: Vec<BTreeSet<SiteId>> = vec![BTreeSet::new(); n_inside];
                for &site in &master {
                    let q = p.consistency_q.0
                        + (p.consistency_q.1 - p.consistency_q.0)
                            * det_unit(&[cfg.seed, u64::from(u32::from(prefix.addr)), site.0 as u64]);
                    let copies = ((q * n_inside as f64).round() as usize).clamp(1, n_inside);
                    let start = (det_unit(&[
                        cfg.seed ^ 0xdead,
                        u64::from(u32::from(prefix.addr)),
                        site.0 as u64,
                    ]) * n_inside as f64) as usize
                        % n_inside;
                    for j in 0..copies {
                        device_sets[(start + j) % n_inside].insert(site);
                    }
                }
                for (rank, &core_idx) in order.iter().take(n_inside).enumerate() {
                    let sees_outside = rank < n_outside;
                    covered.insert(core_idx, (sees_outside, device_sets[rank].clone()));
                }
            }
        }

        // --- wire gateway↔cores (inserting IMs where covered) ------------
        // `covered` is only ever populated under `Some(profile)`, so the
        // match pairs each covered core with the profile kind without a
        // fallible re-lookup; a covered core with no profile (impossible
        // by construction) degrades to a plain uncensored link.
        for (c, &core) in cores.iter().enumerate() {
            let device_here = covered.get(&c).cloned();
            match (device_here, http_profile.map(|p| p.kind)) {
                (
                    Some((sees_outside, blocklist)),
                    Some(kind @ (MbKind::InterceptiveOvert | MbKind::InterceptiveCovert)),
                ) => {
                    let client_filter = if sees_outside { None } else { Some(vec![prefix]) };
                    let mb_cfg = Self::device_config(
                        cfg,
                        isp_id,
                        http_profile,
                        blocklist.iter().map(|s| corpus.site(*s).domain.clone()),
                        client_filter,
                        c as u64,
                    );
                    let im = net.add_node(Self::censor_node(
                        isp_id,
                        http_profile,
                        mb_cfg,
                        format!("{}-im{}", isp_id.name(), c),
                    ));
                    let (_gw_if, _) = wire.link(net, gateway, im, MS(1));
                    let (_, _core_if) = wire.link(net, im, core, SimDuration::from_micros(500));
                    edit_router(net, core, |r| r.anonymized = true);
                    devices.push((c, im, kind));
                    device_plan.push((c, sees_outside, blocklist));
                }
                (Some((sees_outside, blocklist)), Some(kind)) => {
                    wire.link(net, gateway, core, MS(1));
                    // Wiretap on a mirror port of this core.
                    let client_filter = if sees_outside { None } else { Some(vec![prefix]) };
                    let mb_cfg = Self::device_config(
                        cfg,
                        isp_id,
                        http_profile,
                        blocklist.iter().map(|s| corpus.site(*s).domain.clone()),
                        client_filter,
                        c as u64,
                    );
                    let wm = net.add_node(Self::censor_node(
                        isp_id,
                        http_profile,
                        mb_cfg,
                        format!("{}-wm{}", isp_id.name(), c),
                    ));
                    let tap = wire.alloc(core);
                    net.connect(core, tap, wm, IfaceId::PRIMARY, SimDuration::from_micros(80));
                    edit_router(net, core, |core_router| {
                        core_router.mirrors.push(tap);
                        core_router.anonymized = true;
                    });
                    devices.push((c, wm, kind));
                    device_plan.push((c, sees_outside, blocklist));
                }
                _ => {
                    wire.link(net, gateway, core, MS(1));
                }
            }
        }
        if http_profile.is_some() {
            truth.http_master.insert(isp_id, master.clone());
            truth.http_devices.insert(isp_id, device_plan);
        }

        // --- wire cores↔leaves (full mesh) --------------------------------
        // leaf_core_ifaces[leaf][core] = iface at the leaf toward that core.
        let mut leaf_core_ifaces: Vec<Vec<IfaceId>> = vec![Vec::new(); l];
        for &core in cores.iter() {
            for (leaf, &leaf_node) in leaves.iter().enumerate() {
                let (core_if, leaf_if) = wire.link(net, core, leaf_node, MS(1));
                edit_router(net, core, |r| r.table.add(leaf_prefixes[leaf], core_if));
                leaf_core_ifaces[leaf].push(leaf_if);
            }
            // Core default: back up to the gateway (iface 0 — the first
            // link allocated on every core).
            edit_router(net, core, |r| {
                r.table.add(Cidr::new(Ipv4Addr::new(0, 0, 0, 0), 0), IfaceId(0))
            });
        }
        for (leaf, ifaces) in leaf_core_ifaces.iter().enumerate() {
            edit_router(net, leaves[leaf], |r| {
                r.table.add_multi(Cidr::new(Ipv4Addr::new(0, 0, 0, 0), 0), ifaces.clone())
            });
        }
        // Gateway spreads inbound across cores (ifaces 0..k-1 in creation
        // order — gateway's first k links all go to cores or IMs).
        let gw_core_ifaces: Vec<IfaceId> = (0..k as u8).map(IfaceId).collect();
        edit_router(net, gateway, |r| r.table.add_multi(prefix, gw_core_ifaces));

        // --- hosts ---------------------------------------------------------
        let attach_host = |net: &mut Network, wire: &mut Wire, host: TcpHost, leaf: usize| -> NodeId {
            let hip = host.ip;
            let id = net.add_node(Box::new(host));
            let rif = wire.attach(net, id, leaves[leaf], SimDuration::from_micros(500));
            edit_router(net, leaves[leaf], |r| r.table.add(Cidr::host(hip), rif));
            id
        };

        let client_ip = ip(0, 50);
        let client = attach_host(net, wire, TcpHost::new(client_ip, format!("{}-client", isp_id.name()), cfg.seed ^ 1), 0);

        let mut edge_hosts = Vec::new();
        for leaf in 0..l {
            for fourth in [10u8, 11] {
                let hip = ip(leaf as u8, fourth);
                let mut host = TcpHost::new(hip, format!("{}-edge-{hip}", isp_id.name()), cfg.seed ^ 2);
                let server_cfg = ServerConfig { region, directory: directory.clone() };
                host.listen(80, WebServerApp::factory(server_cfg));
                let id = attach_host(net, wire, host, leaf);
                edge_hosts.push((hip, id));
            }
        }

        // Notice host: serves the ISP's block page for anything.
        let notice_ip = ip(0, 80);
        let notice_style = http_profile
            .and_then(|p| p.notice.clone())
            .unwrap_or_else(|| NoticeStyle {
                iframe_url: format!("http://www.{}.in/dot-compliance", isp_id.name().to_lowercase()),
                server_header: "nginx".into(),
                statutory_text: "Blocked as per DoT directions.".into(),
            });
        let mut notice_host = TcpHost::new(notice_ip, format!("{}-notice", isp_id.name()), cfg.seed ^ 3);
        let notice_page = notice_style.render().emit();
        notice_host.listen(80, move || Box::new(FixedResponder::new(notice_page.clone())));
        attach_host(net, wire, notice_host, 0);

        // --- resolvers -------------------------------------------------------
        let mut resolvers = Vec::new();
        // Every ISP runs one honest resolver clients may use.
        let honest_ip = ip(0, 53);
        let mut honest = TcpHost::new(honest_ip, format!("{}-resolver", isp_id.name()), cfg.seed ^ 4);
        honest.set_udp_app(53, Box::new(ResolverApp::honest(catalog.clone(), region)));
        let honest_id = attach_host(net, wire, honest, 0);
        resolvers.push((honest_ip, honest_id));

        let mut default_resolver = honest_ip;
        if let Some(dp) = cfg.dns.get(&isp_id) {
            let dns_master = sample_sites(rng, &corpus.pbw, dp.blocked_sites);
            truth.dns_master.insert(isp_id, dns_master.clone());
            let mut poisoned_truth = Vec::new();
            let extra = dp.resolvers.saturating_sub(1); // honest one exists
            for i in 0..extra {
                let leaf = i % l;
                let fourth = 100 + (i / l) as u8;
                let rip = ip(leaf as u8, fourth);
                let mut host = TcpHost::new(rip, format!("{}-dns-{rip}", isp_id.name()), cfg.seed ^ 5);
                let app = if i < dp.poisoned {
                    let mut blocklist: BTreeSet<SiteId> = dns_master
                        .iter()
                        .copied()
                        .filter(|site| {
                            let q = dp.consistency_q.0
                                + (dp.consistency_q.1 - dp.consistency_q.0)
                                    * det_unit(&[cfg.seed ^ 0xd15, u64::from(u32::from(prefix.addr)), site.0 as u64]);
                            det_unit(&[
                                cfg.seed ^ 0xd16,
                                u64::from(u32::from(prefix.addr)),
                                i as u64,
                                site.0 as u64,
                            ]) < q
                        })
                        .collect();
                    // A poisoned resolver that manipulates nothing is
                    // indistinguishable from an honest one; give each at
                    // least one entry so the deployment counts are real.
                    if blocklist.is_empty() {
                        if let Some(&first) = dns_master.iter().nth(i % dns_master.len().max(1)) {
                            blocklist.insert(first);
                        }
                    }
                    poisoned_truth.push((rip, blocklist.clone()));
                    let mode = if det_unit(&[cfg.seed ^ 0xd17, i as u64]) < dp.static_ip_fraction {
                        PoisonMode::StaticIp(notice_ip)
                    } else {
                        PoisonMode::Bogon(Ipv4Addr::new(10, 10, 34, 34 + (i % 4) as u8))
                    };
                    ResolverApp::poisoned(
                        catalog.clone(),
                        region,
                        blocklist.iter().map(|s| lucent_packet::dns::Name::new(&corpus.site(*s).domain)),
                        mode,
                    )
                } else {
                    ResolverApp::honest(catalog.clone(), region)
                };
                host.set_udp_app(53, Box::new(app));
                let id = attach_host(net, wire, host, leaf);
                resolvers.push((rip, id));
            }
            truth.dns_resolvers.insert(isp_id, poisoned_truth);
            // Clients of a DNS-censoring ISP are handed a poisoned
            // resolver (the first one, if any were deployed).
            if dp.poisoned > 0 && resolvers.len() > 1 {
                default_resolver = resolvers[1].0;
            }
        }

        Isp {
            id: isp_id,
            region,
            prefix,
            gateway,
            cores,
            leaves,
            leaf_prefixes,
            client,
            client_ip,
            edge_hosts,
            resolvers,
            default_resolver,
            notice_ip,
            devices,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::IndiaConfig;

    #[test]
    fn tiny_world_builds() {
        let india = India::build(IndiaConfig::tiny());
        assert_eq!(india.isps.len(), 10);
        assert!(!india.hosting.is_empty());
        assert_eq!(india.external_vps.len(), 8);
        // Every measured ISP has a client.
        for isp in india.isps.values() {
            assert!(isp.prefix.contains(isp.client_ip));
            assert!(!isp.edge_hosts.is_empty());
        }
    }

    #[test]
    fn device_counts_match_coverage() {
        let india = India::build(IndiaConfig::tiny());
        let k = india.cfg.cores_per_isp as f64;
        for (isp_id, profile) in &india.cfg.http {
            let want = (profile.coverage_inside * k).round() as usize;
            let have = india.isps[isp_id].devices.len();
            assert_eq!(have, want, "{isp_id}");
        }
        // Non-HTTP ISPs deploy nothing internally.
        assert!(india.isps[&IspId::Mtnl].devices.is_empty());
        assert!(india.isps[&IspId::Nkn].devices.is_empty());
    }

    #[test]
    fn resolver_counts_match_profiles() {
        let india = India::build(IndiaConfig::tiny());
        let cfg = &india.cfg;
        assert_eq!(
            india.isps[&IspId::Mtnl].resolvers.len(),
            cfg.dns[&IspId::Mtnl].resolvers,
        );
        assert_eq!(
            india.truth.dns_resolvers[&IspId::Mtnl].len(),
            cfg.dns[&IspId::Mtnl].poisoned,
        );
        // Non-DNS ISPs still have their one honest resolver.
        assert_eq!(india.isps[&IspId::Airtel].resolvers.len(), 1);
    }

    #[test]
    fn ground_truth_consistency_is_near_target() {
        // The partition-with-multiplicity blocklists guarantee every
        // master site appears on at least one device, which puts a floor
        // of 1/n_devices under the achievable consistency: ISPs whose
        // paper consistency lies below that floor (Vodafone at reduced
        // scale) saturate at it. Everything else must track the target.
        let india = India::build(IndiaConfig::small());
        for (isp_id, p) in &india.cfg.http {
            if p.coverage_inside == 0.0 {
                continue;
            }
            let n_devices = india.truth.http_devices[isp_id].len() as f64;
            let measured = india.truth.true_http_consistency(*isp_id).unwrap();
            let target = ((p.consistency_q.0 + p.consistency_q.1) / 2.0).max(1.0 / n_devices);
            assert!(
                (measured - target).abs() < 0.12,
                "{isp_id}: measured {measured:.3} vs target {target:.3} ({n_devices} devices)"
            );
        }
    }

    #[test]
    fn device_union_equals_master_list() {
        // The other half of the partition guarantee: the union over the
        // ISP's devices is exactly the master blocklist (what makes the
        // measured Table 2 blocked counts track the paper's).
        let india = India::build(IndiaConfig::small());
        for (isp_id, devices) in &india.truth.http_devices {
            if devices.is_empty() {
                continue;
            }
            let mut union = BTreeSet::new();
            for (_, _, bl) in devices {
                union.extend(bl.iter().copied());
            }
            assert_eq!(&union, &india.truth.http_master[isp_id], "{isp_id}");
        }
    }

    #[test]
    fn borders_exist_for_every_collateral_pair() {
        let india = India::build(IndiaConfig::tiny());
        for ((victim, censor), want) in &india.cfg.collateral {
            let got = india.truth.border_blocklist(*victim, *censor).map(|s| s.len()).unwrap_or(0);
            assert!(
                got <= *want && got + 3 >= *want.min(&got.saturating_add(3)),
                "({victim},{censor}): got {got}, want {want}"
            );
            assert!(got > 0 || *want == 0, "({victim},{censor}) empty");
        }
    }

    #[test]
    fn build_is_deterministic() {
        let a = India::build(IndiaConfig::tiny());
        let b = India::build(IndiaConfig::tiny());
        assert_eq!(a.truth.http_master, b.truth.http_master);
        assert_eq!(a.truth.dns_master, b.truth.dns_master);
        assert_eq!(a.truth.borders, b.truth.borders);
        for (id, isp) in &a.isps {
            assert_eq!(isp.client_ip, b.isps[id].client_ip);
            assert_eq!(isp.resolvers.len(), b.isps[id].resolvers.len());
        }
    }
}
