//! # lucent-topology
//!
//! The India model: nine ISPs plus TATA transit, wired into one
//! [`lucent_netsim::Network`] together with external vantage points, a
//! Tor-exit-like uncensored vantage, an OONI-style control host, and the
//! hosting infrastructure serving the [`lucent_web`] corpus.
//!
//! Calibration targets come straight from the paper:
//!
//! * **Table 2** — per-ISP HTTP coverage inside/outside, middlebox type
//!   and blocked-site counts (Airtel WM 75.2/54.2/234, Idea IM-overt
//!   92/90/338, Vodafone IM-covert 11/2.5/483, Jio WM 6.4/0/200);
//! * **Figure 2** — MTNL 448 resolvers (383 poisoned, consistency
//!   ≈42.4%), BSNL 182 (17 poisoned, ≈7.5%);
//! * **Figure 5** — middlebox consistency Idea ≈76.8%, Airtel ≈12.3%,
//!   Vodafone ≈11.6%;
//! * **Table 3** — collateral damage through transit (NKN←Vodafone 69 /
//!   TATA 8, Sify←TATA 142 / Airtel 2, Siti←Airtel 110, MTNL←TATA 134 /
//!   Airtel 25, BSNL←TATA 156 / Airtel 1).
//!
//! The coverage fractions are realized *structurally*: every ISP has `K`
//! parallel core routers, clients and inbound flows are spread across
//! them by destination-hashed ECMP, and censorship devices sit on a
//! calibrated subset of cores. The inside/outside asymmetry comes from
//! per-device client-source filters (the mechanism the paper hypothesizes
//! for Jio's invisible-from-outside middleboxes). Everything else — the
//! race, statefulness, trigger rules — lives in `lucent-middlebox` and
//! emerges rather than being scripted.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod build;
pub mod ids;
pub mod profile;
pub mod truth;

pub use build::{India, Isp};
pub use ids::IspId;
pub use profile::{DnsProfile, HttpProfile, IndiaConfig, MbKind};
pub use truth::GroundTruth;
