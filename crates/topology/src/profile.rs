//! Per-ISP censorship profiles and the overall simulation configuration,
//! with calibration constants lifted from the paper's tables.

use std::collections::BTreeMap;

use lucent_middlebox::{HostMatcher, NoticeStyle};
use lucent_web::CorpusConfig;

use crate::ids::IspId;

/// Which middlebox family an ISP deploys.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MbKind {
    /// Wiretap middlebox on router mirror ports.
    Wiretap,
    /// Interceptive middlebox with a notification page.
    InterceptiveOvert,
    /// Interceptive middlebox answering with a bare RST.
    InterceptiveCovert,
}

/// HTTP-filtering deployment of one ISP (Table 2 + Figure 5 targets).
#[derive(Debug, Clone)]
pub struct HttpProfile {
    /// Device family.
    pub kind: MbKind,
    /// Host-extraction behaviour.
    pub matcher: HostMatcher,
    /// Notification style (`None` only for covert devices).
    pub notice: Option<NoticeStyle>,
    /// Fraction of core paths whose devices inspect *inside* clients.
    pub coverage_inside: f64,
    /// Fraction of core paths whose devices also inspect *outside*
    /// clients (≤ `coverage_inside`).
    pub coverage_outside: f64,
    /// Size of the ISP's master blocklist (sites sampled from the PBWs).
    pub blocked_sites: usize,
    /// Per-site device-inclusion probability range: each site gets a
    /// stable q ∈ [lo, hi]; each device blocks it with probability q.
    /// The mean of this range is the ISP's Figure-5 consistency.
    pub consistency_q: (f64, f64),
    /// Fixed IP-Identifier on injected packets (Airtel: 242).
    pub fixed_ip_id: Option<u16>,
    /// Wiretap slow-path: (probability, delay range µs).
    pub slow_injection: Option<(f64, (u64, u64))>,
}

/// DNS-poisoning deployment of one ISP (Figure 2 targets).
#[derive(Debug, Clone)]
pub struct DnsProfile {
    /// Total open resolvers.
    pub resolvers: usize,
    /// How many of them are poisoned.
    pub poisoned: usize,
    /// Master DNS blocklist size.
    pub blocked_sites: usize,
    /// Per-site resolver-inclusion probability range (mean = Figure-2
    /// consistency).
    pub consistency_q: (f64, f64),
    /// Fraction of poisoned resolvers answering with the ISP's static
    /// notice address; the rest answer with a bogon.
    pub static_ip_fraction: f64,
}

/// Collateral-damage calibration: how many sites a transit censor blocks
/// for a victim (Table 3).
pub type CollateralPlan = BTreeMap<(IspId, IspId), usize>;

/// The whole-simulation configuration.
#[derive(Debug, Clone)]
pub struct IndiaConfig {
    /// Parallel core routers per ISP (path-diversity resolution: coverage
    /// is quantized to 1/K).
    pub cores_per_isp: usize,
    /// Leaf routers (= internal /24 prefixes) per ISP.
    pub leaves_per_isp: usize,
    /// Corpus generation parameters.
    pub corpus: CorpusConfig,
    /// Number of /24 hosting pools on the simulated internet.
    pub hosting_pools: usize,
    /// HTTP censorship deployments.
    pub http: BTreeMap<IspId, HttpProfile>,
    /// DNS censorship deployments.
    pub dns: BTreeMap<IspId, DnsProfile>,
    /// Collateral calibration (victim, censor) → blocked-site count.
    pub collateral: CollateralPlan,
    /// Master seed.
    pub seed: u64,
}

impl IndiaConfig {
    /// Full paper-scale configuration: 1200 PBWs, 1000 popular sites,
    /// MTNL 448/383 and BSNL 182/17 resolvers, 40 cores per ISP.
    pub fn paper() -> Self {
        Self::with_scale(40, 24, CorpusConfig::default(), (448, 383), (182, 17))
    }

    /// A small configuration for tests: same structure, ~10× smaller.
    pub fn small() -> Self {
        let corpus = CorpusConfig {
            pbw_count: 120,
            popular_count: 60,
            ..CorpusConfig::default()
        };
        Self::with_scale(20, 6, corpus, (40, 34), (24, 3))
    }

    /// A micro configuration for unit tests that only need structure.
    pub fn tiny() -> Self {
        let corpus = CorpusConfig {
            pbw_count: 40,
            popular_count: 20,
            ..CorpusConfig::default()
        };
        Self::with_scale(8, 3, corpus, (8, 6), (6, 1))
    }

    fn with_scale(
        cores: usize,
        leaves: usize,
        corpus: CorpusConfig,
        mtnl_res: (usize, usize),
        bsnl_res: (usize, usize),
    ) -> Self {
        let pbw = corpus.pbw_count;
        // Scale the paper's absolute counts to the configured corpus size
        // (ratios preserved: 234/1200, 338/1200, 483/1200, 200/1200).
        let scale = |paper_count: usize| ((paper_count * pbw) as f64 / 1200.0).round() as usize;
        let mut http = BTreeMap::new();
        http.insert(
            IspId::Airtel,
            HttpProfile {
                kind: MbKind::Wiretap,
                matcher: HostMatcher::ExactToken,
                notice: Some(NoticeStyle::airtel_like()),
                coverage_inside: 0.752,
                coverage_outside: 0.542,
                blocked_sites: scale(234),
                consistency_q: (0.02, 0.23),
                fixed_ip_id: Some(242),
                slow_injection: Some((0.3, (150_000, 400_000))),
            },
        );
        http.insert(
            IspId::Idea,
            HttpProfile {
                kind: MbKind::InterceptiveOvert,
                matcher: HostMatcher::StrictPattern,
                notice: Some(NoticeStyle::idea_like()),
                coverage_inside: 0.92,
                coverage_outside: 0.90,
                blocked_sites: scale(338),
                consistency_q: (0.56, 0.98),
                fixed_ip_id: None,
                slow_injection: None,
            },
        );
        http.insert(
            IspId::Vodafone,
            HttpProfile {
                kind: MbKind::InterceptiveCovert,
                matcher: HostMatcher::LastHost,
                notice: None,
                coverage_inside: 0.11,
                coverage_outside: 0.025,
                blocked_sites: scale(483),
                consistency_q: (0.02, 0.21),
                fixed_ip_id: None,
                slow_injection: None,
            },
        );
        http.insert(
            IspId::Jio,
            HttpProfile {
                kind: MbKind::Wiretap,
                matcher: HostMatcher::ExactToken,
                notice: Some(NoticeStyle::jio_like()),
                coverage_inside: 0.064,
                coverage_outside: 0.0,
                blocked_sites: scale(200),
                consistency_q: (0.20, 0.50),
                fixed_ip_id: None,
                slow_injection: Some((0.3, (150_000, 400_000))),
            },
        );
        // TATA censors only as transit (border devices); no internal
        // coverage is modelled, so inside/outside are zero.
        http.insert(
            IspId::Tata,
            HttpProfile {
                kind: MbKind::Wiretap,
                matcher: HostMatcher::ExactToken,
                notice: Some(NoticeStyle {
                    iframe_url: "http://www.tatacommunications.com/dot-blocked".into(),
                    server_header: "nginx".into(),
                    statutory_text: "Blocked under DoT instructions.".into(),
                }),
                coverage_inside: 0.0,
                coverage_outside: 0.0,
                blocked_sites: scale(220),
                consistency_q: (0.3, 0.9),
                fixed_ip_id: None,
                slow_injection: None,
            },
        );

        let mut dns = BTreeMap::new();
        dns.insert(
            IspId::Mtnl,
            DnsProfile {
                resolvers: mtnl_res.0,
                poisoned: mtnl_res.1,
                blocked_sites: scale(400),
                consistency_q: (0.10, 0.78),
                static_ip_fraction: 0.8,
            },
        );
        dns.insert(
            IspId::Bsnl,
            DnsProfile {
                resolvers: bsnl_res.0,
                poisoned: bsnl_res.1,
                blocked_sites: scale(300),
                consistency_q: (0.01, 0.14),
                static_ip_fraction: 0.7,
            },
        );

        let mut collateral = BTreeMap::new();
        collateral.insert((IspId::Nkn, IspId::Vodafone), scale(69));
        collateral.insert((IspId::Nkn, IspId::Tata), scale(8));
        collateral.insert((IspId::Sify, IspId::Tata), scale(142));
        collateral.insert((IspId::Sify, IspId::Airtel), scale(2).max(1));
        collateral.insert((IspId::Siti, IspId::Airtel), scale(110));
        collateral.insert((IspId::Mtnl, IspId::Tata), scale(134));
        collateral.insert((IspId::Mtnl, IspId::Airtel), scale(25));
        collateral.insert((IspId::Bsnl, IspId::Tata), scale(156));
        collateral.insert((IspId::Bsnl, IspId::Airtel), scale(1).max(1));

        IndiaConfig {
            cores_per_isp: cores,
            leaves_per_isp: leaves,
            corpus,
            hosting_pools: 16,
            http,
            dns,
            collateral,
            seed: 0x0011_d1a0_2018,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_published_counts() {
        let cfg = IndiaConfig::paper();
        assert_eq!(cfg.http[&IspId::Airtel].blocked_sites, 234);
        assert_eq!(cfg.http[&IspId::Idea].blocked_sites, 338);
        assert_eq!(cfg.http[&IspId::Vodafone].blocked_sites, 483);
        assert_eq!(cfg.http[&IspId::Jio].blocked_sites, 200);
        assert_eq!(cfg.dns[&IspId::Mtnl].resolvers, 448);
        assert_eq!(cfg.dns[&IspId::Mtnl].poisoned, 383);
        assert_eq!(cfg.dns[&IspId::Bsnl].resolvers, 182);
        assert_eq!(cfg.dns[&IspId::Bsnl].poisoned, 17);
        assert_eq!(cfg.collateral[&(IspId::Siti, IspId::Airtel)], 110);
    }

    #[test]
    fn small_config_preserves_ratios() {
        let cfg = IndiaConfig::small();
        // 234/1200 of 120 ≈ 23.
        assert_eq!(cfg.http[&IspId::Airtel].blocked_sites, 23);
        assert!(cfg.http[&IspId::Vodafone].blocked_sites > cfg.http[&IspId::Idea].blocked_sites);
        assert!(cfg.collateral[&(IspId::Bsnl, IspId::Airtel)] >= 1);
    }

    #[test]
    fn consistency_means_track_figure5() {
        let cfg = IndiaConfig::paper();
        let mean = |q: (f64, f64)| (q.0 + q.1) / 2.0;
        assert!((mean(cfg.http[&IspId::Idea].consistency_q) - 0.768).abs() < 0.03);
        assert!((mean(cfg.http[&IspId::Airtel].consistency_q) - 0.123).abs() < 0.03);
        assert!((mean(cfg.http[&IspId::Vodafone].consistency_q) - 0.116).abs() < 0.03);
        assert!((mean(cfg.dns[&IspId::Mtnl].consistency_q) - 0.424).abs() < 0.03);
        assert!((mean(cfg.dns[&IspId::Bsnl].consistency_q) - 0.075).abs() < 0.015);
    }

    #[test]
    fn only_covert_profiles_lack_notices() {
        let cfg = IndiaConfig::paper();
        for (isp, p) in &cfg.http {
            if p.kind == MbKind::InterceptiveCovert {
                assert!(p.notice.is_none(), "{isp}");
            } else {
                assert!(p.notice.is_some(), "{isp}");
            }
        }
    }
}
