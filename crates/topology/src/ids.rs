//! ISP identities and static facts about them.

use std::fmt;

use lucent_netsim::routing::Cidr;

/// The autonomous systems modelled, after the paper's nine ISPs plus the
/// TATA transit network implicated in the collateral-damage analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum IspId {
    /// Bharti Airtel — HTTP filtering via wiretap middleboxes.
    Airtel,
    /// Vodafone — HTTP filtering via covert interceptive middleboxes.
    Vodafone,
    /// Idea Cellular — HTTP filtering via overt interceptive middleboxes.
    Idea,
    /// Reliance Jio — wiretap middleboxes invisible from outside.
    Jio,
    /// MTNL — DNS poisoning (383 of 448 resolvers).
    Mtnl,
    /// BSNL — DNS poisoning (17 of 182 resolvers).
    Bsnl,
    /// NKN, the National Knowledge Network — non-censorious.
    Nkn,
    /// Sify — non-censorious.
    Sify,
    /// Siti — non-censorious.
    Siti,
    /// TATA Communications — censorious transit.
    Tata,
}

impl IspId {
    /// All modelled ASes in a stable order.
    pub const ALL: [IspId; 10] = [
        IspId::Airtel,
        IspId::Vodafone,
        IspId::Idea,
        IspId::Jio,
        IspId::Mtnl,
        IspId::Bsnl,
        IspId::Nkn,
        IspId::Sify,
        IspId::Siti,
        IspId::Tata,
    ];

    /// The nine ISPs the paper measures (everything except TATA, which is
    /// only reachable as transit).
    pub const MEASURED: [IspId; 9] = [
        IspId::Airtel,
        IspId::Vodafone,
        IspId::Idea,
        IspId::Jio,
        IspId::Mtnl,
        IspId::Bsnl,
        IspId::Nkn,
        IspId::Sify,
        IspId::Siti,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            IspId::Airtel => "Airtel",
            IspId::Vodafone => "Vodafone",
            IspId::Idea => "Idea",
            IspId::Jio => "Jio",
            IspId::Mtnl => "MTNL",
            IspId::Bsnl => "BSNL",
            IspId::Nkn => "NKN",
            IspId::Sify => "Sify",
            IspId::Siti => "Siti",
            IspId::Tata => "TATA",
        }
    }

    /// The /16 this AS announces in the simulation.
    pub fn prefix(self) -> Cidr {
        let second = match self {
            IspId::Airtel => 144,
            IspId::Vodafone => 104,
            IspId::Idea => 96,
            IspId::Jio => 36,
            IspId::Mtnl => 180,
            IspId::Bsnl => 200,
            IspId::Nkn => 139,
            IspId::Sify => 150,
            IspId::Siti => 60,
            IspId::Tata => 140,
        };
        let first = match self {
            IspId::Airtel => 59,
            IspId::Vodafone => 42,
            IspId::Idea => 117,
            IspId::Jio => 49,
            IspId::Mtnl => 59,
            IspId::Bsnl => 117,
            IspId::Nkn => 14,
            IspId::Sify => 202,
            IspId::Siti => 103,
            IspId::Tata => 14,
        };
        Cidr::new(std::net::Ipv4Addr::new(first, second, 0, 0), 16)
    }

    /// The content region this AS belongs to (drives CDN steering and
    /// dynamic content).
    pub fn region(self) -> lucent_dns::RegionId {
        match self {
            IspId::Airtel => 1,
            IspId::Vodafone => 2,
            IspId::Idea => 3,
            IspId::Jio => 4,
            IspId::Mtnl => 5,
            IspId::Bsnl => 6,
            IspId::Nkn => 7,
            IspId::Sify => 8,
            IspId::Siti => 9,
            IspId::Tata => 10,
        }
    }

    /// Transit providers of the non-directly-attached (victim) ASes, in
    /// (group-A, group-B) order: traffic to even-indexed hosting pools
    /// rides A, odd-indexed pools ride B. `None` means this AS attaches
    /// to the internet exchange directly.
    pub fn transits(self) -> Option<(IspId, IspId)> {
        match self {
            IspId::Nkn => Some((IspId::Vodafone, IspId::Tata)),
            IspId::Sify => Some((IspId::Tata, IspId::Airtel)),
            IspId::Siti => Some((IspId::Airtel, IspId::Airtel)),
            IspId::Mtnl => Some((IspId::Tata, IspId::Airtel)),
            IspId::Bsnl => Some((IspId::Tata, IspId::Airtel)),
            _ => None,
        }
    }
}

impl fmt::Display for IspId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn prefixes_are_disjoint() {
        let prefixes: Vec<Cidr> = IspId::ALL.iter().map(|i| i.prefix()).collect();
        for (i, a) in prefixes.iter().enumerate() {
            for b in &prefixes[i + 1..] {
                assert!(!a.contains(b.addr), "{a} overlaps {b}");
                assert!(!b.contains(a.addr), "{b} overlaps {a}");
            }
        }
    }

    #[test]
    fn regions_are_unique() {
        let regions: HashSet<_> = IspId::ALL.iter().map(|i| i.region()).collect();
        assert_eq!(regions.len(), IspId::ALL.len());
    }

    #[test]
    fn victims_have_transits_and_carriers_do_not() {
        for isp in [IspId::Nkn, IspId::Sify, IspId::Siti, IspId::Mtnl, IspId::Bsnl] {
            assert!(isp.transits().is_some(), "{isp}");
        }
        for isp in [IspId::Airtel, IspId::Vodafone, IspId::Idea, IspId::Jio, IspId::Tata] {
            assert!(isp.transits().is_none(), "{isp}");
        }
    }

    #[test]
    fn transit_providers_are_direct_attachments() {
        for isp in IspId::ALL {
            if let Some((a, b)) = isp.transits() {
                assert!(a.transits().is_none(), "{isp}'s transit {a} must be direct");
                assert!(b.transits().is_none(), "{isp}'s transit {b} must be direct");
            }
        }
    }
}
