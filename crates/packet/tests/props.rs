//! Property-based tests for every wire format: roundtrips, parser safety
//! on arbitrary bytes, and checksum integrity under corruption.

use std::net::Ipv4Addr;

use lucent_support::prop;
use lucent_support::rng::Rng64;
use lucent_support::Bytes;

use lucent_packet::{
    checksum, DnsMessage, HttpRequest, HttpResponse, IcmpMessage, Ipv4Header, Packet,
    RequestParseMode, TcpFlags, TcpHeader, UdpHeader,
};

fn arb_ip(rng: &mut Rng64) -> Ipv4Addr {
    Ipv4Addr::from(rng.gen::<u32>())
}

fn arb_tcp_header(rng: &mut Rng64) -> TcpHeader {
    TcpHeader {
        src_port: rng.gen(),
        dst_port: rng.gen(),
        seq: rng.gen(),
        ack: rng.gen(),
        flags: TcpFlags(rng.gen_range(0u8..0x40)),
        window: rng.gen(),
        mss: if rng.gen() { Some(rng.gen()) } else { None },
    }
}

fn arb_ipv4_header(rng: &mut Rng64) -> Ipv4Header {
    Ipv4Header {
        src: arb_ip(rng),
        dst: arb_ip(rng),
        ttl: rng.gen(),
        protocol: 6,
        identification: rng.gen(),
        tos: rng.gen(),
        dont_frag: rng.gen(),
    }
}

#[test]
fn checksum_split_invariance() {
    prop::check(256, |rng| {
        let data = prop::vec_u8(rng, 0..512);
        let split = rng.gen_range(0usize..512).min(data.len());
        let whole = checksum::of(&data);
        let mut c = checksum::Checksum::new();
        c.add(&data[..split]);
        c.add(&data[split..]);
        assert_eq!(c.finish(), whole);
    });
}

#[test]
fn ipv4_roundtrip() {
    prop::check(256, |rng| {
        let h = arb_ipv4_header(rng);
        let payload = prop::vec_u8(rng, 0..256);
        let mut wire = Vec::new();
        h.emit(&payload, &mut wire);
        let (parsed, body) = Ipv4Header::parse(&wire).unwrap();
        assert_eq!(parsed, h);
        assert_eq!(body, &payload[..]);
    });
}

#[test]
fn ipv4_single_byte_corruption_detected_in_header() {
    prop::check(256, |rng| {
        let h = arb_ipv4_header(rng);
        let byte = rng.gen_range(0usize..20);
        let bit = rng.gen_range(0u8..8);
        let mut wire = Vec::new();
        h.emit(&[], &mut wire);
        wire[byte] ^= 1 << bit;
        // Any single-bit flip in the header must be rejected (checksum,
        // version, or length checks).
        assert!(Ipv4Header::parse(&wire).is_err());
    });
}

#[test]
fn tcp_roundtrip() {
    prop::check(256, |rng| {
        let (src, dst) = (arb_ip(rng), arb_ip(rng));
        let h = arb_tcp_header(rng);
        let payload = prop::vec_u8(rng, 0..512);
        let mut wire = Vec::new();
        h.emit(src, dst, &payload, &mut wire);
        let (parsed, body) = TcpHeader::parse(src, dst, &wire).unwrap();
        assert_eq!(parsed, h);
        assert_eq!(body, &payload[..]);
    });
}

#[test]
fn udp_roundtrip() {
    prop::check(256, |rng| {
        let (src, dst) = (arb_ip(rng), arb_ip(rng));
        let h = UdpHeader::new(rng.gen(), rng.gen());
        let payload = prop::vec_u8(rng, 0..512);
        let mut wire = Vec::new();
        h.emit(src, dst, &payload, &mut wire);
        let (parsed, body) = UdpHeader::parse(src, dst, &wire).unwrap();
        assert_eq!(parsed, h);
        assert_eq!(body, &payload[..]);
    });
}

#[test]
fn icmp_roundtrip() {
    prop::check(256, |rng| {
        let (ident, seq) = (rng.gen(), rng.gen());
        let orig = prop::vec_u8(rng, 0..64);
        for msg in [
            IcmpMessage::EchoRequest { ident, seq },
            IcmpMessage::EchoReply { ident, seq },
            IcmpMessage::TimeExceeded { original: orig.clone() },
            IcmpMessage::DestUnreachable { code: 3, original: orig.clone() },
        ] {
            let mut wire = Vec::new();
            msg.emit(&mut wire);
            assert_eq!(IcmpMessage::parse(&wire).unwrap(), msg);
        }
    });
}

#[test]
fn full_packet_roundtrip() {
    prop::check(256, |rng| {
        let (src, dst) = (arb_ip(rng), arb_ip(rng));
        let h = arb_tcp_header(rng);
        let ttl = rng.gen_range(1u8..=255);
        let ident = rng.gen::<u16>();
        let payload = prop::vec_u8(rng, 0..256);
        let pkt = Packet::tcp(src, dst, h, Bytes::from(payload)).with_ttl(ttl).with_ip_id(ident);
        let parsed = Packet::parse(&pkt.emit()).unwrap();
        assert_eq!(parsed, pkt);
    });
}

#[test]
fn ip_parser_never_panics() {
    prop::check(256, |rng| {
        let bytes = prop::vec_u8(rng, 0..128);
        let _ = Ipv4Header::parse(&bytes);
        let _ = Packet::parse(&bytes);
    });
}

#[test]
fn dns_parser_never_panics() {
    prop::check(256, |rng| {
        let bytes = prop::vec_u8(rng, 0..256);
        let _ = DnsMessage::parse(&bytes);
    });
}

#[test]
fn http_parsers_never_panic() {
    prop::check(256, |rng| {
        let bytes = prop::vec_u8(rng, 0..256);
        let _ = HttpRequest::parse(&bytes, RequestParseMode::Rfc);
        let _ = HttpRequest::parse(&bytes, RequestParseMode::Strict);
        let _ = HttpResponse::parse(&bytes);
    });
}

#[test]
fn dns_query_roundtrip() {
    prop::check(256, |rng| {
        let id = rng.gen::<u16>();
        let labels = prop::vec_of(rng, 1..5, |rng| prop::alnum_lower(rng, 1..=16));
        let name = labels.join(".");
        let q = DnsMessage::query_a(id, &name);
        let mut wire = Vec::new();
        q.emit(&mut wire).unwrap();
        let parsed = DnsMessage::parse(&wire).unwrap();
        assert_eq!(parsed, q);
    });
}

#[test]
fn dns_answer_roundtrip() {
    prop::check(256, |rng| {
        let id = rng.gen::<u16>();
        let ips = prop::vec_of(rng, 0..6, arb_ip);
        let ttl = rng.gen::<u32>();
        let q = DnsMessage::query_a(id, "host.example.com");
        let a = DnsMessage::answer_a(&q, &ips, ttl);
        let mut wire = Vec::new();
        a.emit(&mut wire).unwrap();
        let parsed = DnsMessage::parse(&wire).unwrap();
        assert_eq!(parsed.a_records(), ips);
        assert_eq!(parsed, a);
    });
}

#[test]
fn http_request_builder_roundtrip() {
    prop::check(256, |rng| {
        let path = format!("/{}", prop::string_of(rng, "abcdefghijklmnopqrstuvwxyz0123456789/", 0..=20));
        let host = prop::string_of(rng, "abcdefghijklmnopqrstuvwxyz0123456789.", 1..=30);
        let bytes = lucent_packet::http::RequestBuilder::browser(&host, &path).build();
        let (req, used) = HttpRequest::parse(&bytes, RequestParseMode::Rfc).unwrap();
        assert_eq!(used, bytes.len());
        assert_eq!(req.host(), Some(host.as_str()));
        assert_eq!(req.target, path);
    });
}

#[test]
fn http_response_roundtrip() {
    prop::check(256, |rng| {
        let status = rng.gen_range(100u16..600);
        let body = prop::vec_of(rng, 0..256, |rng| rng.gen_range(0x20u8..0x7f));
        let resp = HttpResponse::new(status, "Reason", body.clone());
        let parsed = HttpResponse::parse(&resp.emit()).unwrap();
        assert_eq!(parsed.status, status);
        assert_eq!(parsed.body, body);
    });
}
