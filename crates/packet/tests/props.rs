//! Property-based tests for every wire format: roundtrips, parser safety
//! on arbitrary bytes, and checksum integrity under corruption.

use std::net::Ipv4Addr;

use bytes::Bytes;
use proptest::prelude::*;

use lucent_packet::{
    checksum, DnsMessage, HttpRequest, HttpResponse, IcmpMessage, Ipv4Header, Packet,
    RequestParseMode, TcpFlags, TcpHeader, UdpHeader,
};

fn arb_ip() -> impl Strategy<Value = Ipv4Addr> {
    any::<u32>().prop_map(Ipv4Addr::from)
}

fn arb_tcp_header() -> impl Strategy<Value = TcpHeader> {
    (
        any::<u16>(),
        any::<u16>(),
        any::<u32>(),
        any::<u32>(),
        0u8..0x40,
        any::<u16>(),
        proptest::option::of(any::<u16>()),
    )
        .prop_map(|(sp, dp, seq, ack, flags, window, mss)| TcpHeader {
            src_port: sp,
            dst_port: dp,
            seq,
            ack,
            flags: TcpFlags(flags),
            window,
            mss,
        })
}

fn arb_ipv4_header() -> impl Strategy<Value = Ipv4Header> {
    (arb_ip(), arb_ip(), any::<u8>(), any::<u16>(), any::<u8>(), any::<bool>()).prop_map(
        |(src, dst, ttl, ident, tos, df)| Ipv4Header {
            src,
            dst,
            ttl,
            protocol: 6,
            identification: ident,
            tos,
            dont_frag: df,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn checksum_split_invariance(data in proptest::collection::vec(any::<u8>(), 0..512), split in 0usize..512) {
        let split = split.min(data.len());
        let whole = checksum::of(&data);
        let mut c = checksum::Checksum::new();
        c.add(&data[..split]);
        c.add(&data[split..]);
        prop_assert_eq!(c.finish(), whole);
    }

    #[test]
    fn ipv4_roundtrip(h in arb_ipv4_header(), payload in proptest::collection::vec(any::<u8>(), 0..256)) {
        let mut wire = Vec::new();
        h.emit(&payload, &mut wire);
        let (parsed, body) = Ipv4Header::parse(&wire).unwrap();
        prop_assert_eq!(parsed, h);
        prop_assert_eq!(body, &payload[..]);
    }

    #[test]
    fn ipv4_single_byte_corruption_detected_in_header(
        h in arb_ipv4_header(),
        byte in 0usize..20,
        bit in 0u8..8,
    ) {
        let mut wire = Vec::new();
        h.emit(&[], &mut wire);
        wire[byte] ^= 1 << bit;
        // Any single-bit flip in the header must be rejected (checksum,
        // version, or length checks).
        prop_assert!(Ipv4Header::parse(&wire).is_err());
    }

    #[test]
    fn tcp_roundtrip(
        src in arb_ip(), dst in arb_ip(),
        h in arb_tcp_header(),
        payload in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let mut wire = Vec::new();
        h.emit(src, dst, &payload, &mut wire);
        let (parsed, body) = TcpHeader::parse(src, dst, &wire).unwrap();
        prop_assert_eq!(parsed, h);
        prop_assert_eq!(body, &payload[..]);
    }

    #[test]
    fn udp_roundtrip(
        src in arb_ip(), dst in arb_ip(),
        sp in any::<u16>(), dp in any::<u16>(),
        payload in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let h = UdpHeader::new(sp, dp);
        let mut wire = Vec::new();
        h.emit(src, dst, &payload, &mut wire);
        let (parsed, body) = UdpHeader::parse(src, dst, &wire).unwrap();
        prop_assert_eq!(parsed, h);
        prop_assert_eq!(body, &payload[..]);
    }

    #[test]
    fn icmp_roundtrip(ident in any::<u16>(), seq in any::<u16>(), orig in proptest::collection::vec(any::<u8>(), 0..64)) {
        for msg in [
            IcmpMessage::EchoRequest { ident, seq },
            IcmpMessage::EchoReply { ident, seq },
            IcmpMessage::TimeExceeded { original: orig.clone() },
            IcmpMessage::DestUnreachable { code: 3, original: orig.clone() },
        ] {
            let mut wire = Vec::new();
            msg.emit(&mut wire);
            prop_assert_eq!(IcmpMessage::parse(&wire).unwrap(), msg);
        }
    }

    #[test]
    fn full_packet_roundtrip(
        src in arb_ip(), dst in arb_ip(),
        h in arb_tcp_header(),
        ttl in 1u8..=255,
        ident in any::<u16>(),
        payload in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let pkt = Packet::tcp(src, dst, h, Bytes::from(payload)).with_ttl(ttl).with_ip_id(ident);
        let parsed = Packet::parse(&pkt.emit()).unwrap();
        prop_assert_eq!(parsed, pkt);
    }

    #[test]
    fn ip_parser_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
        let _ = Ipv4Header::parse(&bytes);
        let _ = Packet::parse(&bytes);
    }

    #[test]
    fn dns_parser_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = DnsMessage::parse(&bytes);
    }

    #[test]
    fn http_parsers_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = HttpRequest::parse(&bytes, RequestParseMode::Rfc);
        let _ = HttpRequest::parse(&bytes, RequestParseMode::Strict);
        let _ = HttpResponse::parse(&bytes);
    }

    #[test]
    fn dns_query_roundtrip(id in any::<u16>(), labels in proptest::collection::vec("[a-z0-9]{1,16}", 1..5)) {
        let name = labels.join(".");
        let q = DnsMessage::query_a(id, &name);
        let mut wire = Vec::new();
        q.emit(&mut wire).unwrap();
        let parsed = DnsMessage::parse(&wire).unwrap();
        prop_assert_eq!(parsed, q);
    }

    #[test]
    fn dns_answer_roundtrip(
        id in any::<u16>(),
        ips in proptest::collection::vec(arb_ip(), 0..6),
        ttl in any::<u32>(),
    ) {
        let q = DnsMessage::query_a(id, "host.example.com");
        let a = DnsMessage::answer_a(&q, &ips, ttl);
        let mut wire = Vec::new();
        a.emit(&mut wire).unwrap();
        let parsed = DnsMessage::parse(&wire).unwrap();
        prop_assert_eq!(parsed.a_records(), ips);
        prop_assert_eq!(parsed, a);
    }

    #[test]
    fn http_request_builder_roundtrip(
        path in "/[a-z0-9/]{0,20}",
        host in "[a-z0-9.]{1,30}",
    ) {
        let bytes = lucent_packet::http::RequestBuilder::browser(&host, &path).build();
        let (req, used) = HttpRequest::parse(&bytes, RequestParseMode::Rfc).unwrap();
        prop_assert_eq!(used, bytes.len());
        prop_assert_eq!(req.host(), Some(host.as_str()));
        prop_assert_eq!(req.target, path);
    }

    #[test]
    fn http_response_roundtrip(
        status in 100u16..600,
        body in proptest::collection::vec(0x20u8..0x7f, 0..256),
    ) {
        let resp = HttpResponse::new(status, "Reason", body.clone());
        let parsed = HttpResponse::parse(&resp.emit()).unwrap();
        prop_assert_eq!(parsed.status, status);
        prop_assert_eq!(parsed.body, body);
    }
}
