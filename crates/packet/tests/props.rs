//! Property-based tests for every wire format, driven by the
//! `lucent-check` harness: roundtrips, parser safety on arbitrary and
//! corrupted bytes, and checksum integrity.
//!
//! The ad-hoc `arb_*` builders that used to live here are gone — the
//! structured generators now live in `lucent_check::packets` and the
//! properties themselves in `lucent_check::oracles`, where the fuzz
//! campaign (`fuzz-smoke`) also runs them. This suite pins each oracle
//! into `cargo test -p lucent-packet` with a deeper case count, and a
//! failure reports a shrunk, replayable tape instead of a bare seed.

use lucent_check::{check, oracles, Config};

fn cfg() -> Config {
    Config::cases(256)
}

#[test]
fn checksum_split_invariance() {
    check(&cfg(), oracles::checksum_split);
}

#[test]
fn ipv4_roundtrip() {
    check(&cfg(), oracles::ipv4_roundtrip);
}

#[test]
fn ipv4_single_bit_corruption_detected_in_header() {
    check(&cfg(), oracles::ipv4_corruption_detected);
}

#[test]
fn tcp_roundtrip() {
    check(&cfg(), oracles::tcp_roundtrip);
}

#[test]
fn udp_roundtrip() {
    check(&cfg(), oracles::udp_roundtrip);
}

#[test]
fn icmp_roundtrip() {
    check(&cfg(), oracles::icmp_roundtrip);
}

#[test]
fn full_packet_roundtrip() {
    check(&cfg(), oracles::full_packet_roundtrip);
}

#[test]
fn parsers_never_panic_on_garbage() {
    check(&cfg(), oracles::parsers_survive_garbage);
}

#[test]
fn parsers_never_panic_on_corrupted_valid_images() {
    check(&cfg(), oracles::parsers_survive_corruption);
}

#[test]
fn dns_roundtrip() {
    check(&cfg(), oracles::dns_roundtrip);
}

#[test]
fn http_roundtrips() {
    check(&cfg(), oracles::http_roundtrips);
}
