//! Garbage-input regression tests: every parser in the crate must reject
//! malformed bytes with a `ParseError` — never panic, never mis-parse.
//!
//! The property tests in `props.rs` throw random bytes at the parsers;
//! this file pins down the *specific* failure modes the paper's
//! measurement pipeline met in the wild: truncation at arbitrary
//! boundaries, hostile DNS compression, inconsistent length fields, and
//! non-UTF-8 HTTP heads.

use std::net::Ipv4Addr;

use lucent_packet::error::ParseError;
use lucent_packet::http::RequestBuilder;
use lucent_packet::tcp::{TcpFlags, TcpHeader};
use lucent_packet::{
    DnsMessage, HttpRequest, HttpResponse, IcmpMessage, Ipv4Header, Packet, RequestParseMode,
    UdpHeader,
};

const SRC: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
const DST: Ipv4Addr = Ipv4Addr::new(203, 0, 113, 80);

/// Every strict prefix of a valid wire message must be rejected: all
/// formats carry length fields or counts that promise the missing bytes.
#[test]
fn every_truncation_of_a_full_packet_is_rejected() {
    let mut h = TcpHeader::new(40_000, 80, TcpFlags::SYN);
    h.seq = 7;
    let payload = RequestBuilder::browser("blocked.example.in", "/").build();
    let pkt = Packet::tcp(SRC, DST, h, payload);
    let wire = pkt.emit();
    for cut in 0..wire.len() {
        assert!(
            Packet::parse(&wire[..cut]).is_err(),
            "prefix of {cut}/{} bytes must not parse",
            wire.len()
        );
    }
    assert!(Packet::parse(&wire).is_ok());
}

#[test]
fn every_truncation_of_a_dns_answer_is_rejected() {
    let q = DnsMessage::query_a(77, "a.very.long.domain.example.in");
    let ips = [Ipv4Addr::new(1, 2, 3, 4), Ipv4Addr::new(5, 6, 7, 8)];
    let a = DnsMessage::answer_a(&q, &ips, 3600);
    let mut wire = Vec::new();
    a.emit(&mut wire).expect("emit");
    for cut in 0..wire.len() {
        assert!(DnsMessage::parse(&wire[..cut]).is_err(), "dns prefix {cut} must not parse");
    }
    assert!(DnsMessage::parse(&wire).is_ok());
}

#[test]
fn dns_counts_promising_absent_records_are_rejected() {
    // Header claims 40 questions; the buffer ends after the header.
    let mut buf = vec![0u8; 12];
    buf[4..6].copy_from_slice(&40u16.to_be_bytes());
    assert!(DnsMessage::parse(&buf).is_err());
    // 65535 answers with no question section either.
    let mut buf = vec![0u8; 12];
    buf[6..8].copy_from_slice(&0xffffu16.to_be_bytes());
    assert!(DnsMessage::parse(&buf).is_err());
}

#[test]
fn dns_pointer_past_end_is_rejected() {
    let mut buf = vec![0x00, 0x01, 0x01, 0x00, 0x00, 0x01, 0, 0, 0, 0, 0, 0];
    buf.extend_from_slice(&[0xc0, 0xff]); // pointer to offset 255: out of bounds
    buf.extend_from_slice(&[0, 1, 0, 1]);
    assert_eq!(DnsMessage::parse(&buf), Err(ParseError::BadName));
}

#[test]
fn dns_rdlen_overrunning_buffer_is_rejected() {
    let q = DnsMessage::query_a(9, "x.com");
    let a = DnsMessage::answer_a(&q, &[Ipv4Addr::new(9, 9, 9, 9)], 60);
    let mut wire = Vec::new();
    a.emit(&mut wire).expect("emit");
    // The A rdata (4 bytes) sits at the tail; claim 400 bytes instead.
    let rdlen_at = wire.len() - 4 - 2;
    wire[rdlen_at..rdlen_at + 2].copy_from_slice(&400u16.to_be_bytes());
    assert_eq!(DnsMessage::parse(&wire), Err(ParseError::BadLength { what: "dns" }));
}

#[test]
fn dns_label_length_overrunning_buffer_is_rejected() {
    let mut buf = vec![0x00, 0x01, 0x01, 0x00, 0x00, 0x01, 0, 0, 0, 0, 0, 0];
    buf.push(63); // label of 63 bytes... followed by 2
    buf.extend_from_slice(b"ab");
    assert_eq!(DnsMessage::parse(&buf), Err(ParseError::BadName));
}

#[test]
fn ipv4_length_field_inconsistencies_are_rejected() {
    let h = Ipv4Header {
        src: SRC,
        dst: DST,
        ttl: 64,
        protocol: 6,
        identification: 1,
        tos: 0,
        dont_frag: true,
    };
    let mut wire = Vec::new();
    h.emit(b"payload", &mut wire);
    // Claim a total length beyond the buffer.
    let mut bad = wire.clone();
    bad[2..4].copy_from_slice(&(wire.len() as u16 + 5).to_be_bytes());
    assert!(Ipv4Header::parse(&bad).is_err());
    // Claim an IHL pointing past the end.
    let mut bad = wire.clone();
    bad[0] = 0x4f; // IHL 15 words = 60 bytes of header
    assert!(Ipv4Header::parse(&bad).is_err());
}

#[test]
fn udp_length_field_inconsistencies_are_rejected() {
    let h = UdpHeader::new(5353, 53);
    let mut wire = Vec::new();
    h.emit(SRC, DST, b"hello", &mut wire);
    let mut bad = wire.clone();
    bad[4..6].copy_from_slice(&(wire.len() as u16 + 1).to_be_bytes());
    assert!(UdpHeader::parse(SRC, DST, &bad).is_err());
    let mut bad = wire;
    bad[4..6].copy_from_slice(&3u16.to_be_bytes()); // below the 8-byte header
    assert!(UdpHeader::parse(SRC, DST, &bad).is_err());
}

#[test]
fn icmp_truncations_are_rejected() {
    let msg = IcmpMessage::EchoRequest { ident: 1, seq: 2 };
    let mut wire = Vec::new();
    msg.emit(&mut wire);
    for cut in 0..wire.len() {
        assert!(IcmpMessage::parse(&wire[..cut]).is_err(), "icmp prefix {cut}");
    }
}

#[test]
fn http_head_with_invalid_utf8_is_rejected_not_panicked() {
    let mut bytes = b"GET / HTTP/1.1\r\nHost: ".to_vec();
    bytes.extend_from_slice(&[0xff, 0xfe, 0x80]);
    bytes.extend_from_slice(b"\r\n\r\n");
    assert!(HttpRequest::parse(&bytes, RequestParseMode::Rfc).is_err());
    assert!(HttpRequest::parse(&bytes, RequestParseMode::Strict).is_err());

    let mut resp = b"HTTP/1.1 200 ".to_vec();
    resp.extend_from_slice(&[0xff, 0x00, 0xc3]);
    resp.extend_from_slice(b"\r\n\r\nbody");
    assert!(HttpResponse::parse(&resp).is_err());
}

#[test]
fn http_without_header_terminator_is_rejected() {
    let bytes = b"GET / HTTP/1.1\r\nHost: x.com\r\n"; // no blank line
    assert!(HttpRequest::parse(bytes, RequestParseMode::Rfc).is_err());
    assert!(HttpResponse::parse(b"HTTP/1.1 200 OK\r\n").is_err());
}

#[test]
fn http_mangled_request_lines_are_rejected() {
    for bad in [
        &b"\r\n\r\n"[..],                           // empty head
        &b"GET\r\n\r\n"[..],                        // missing target + version
        &b"GET /\r\n\r\n"[..],                      // missing version
        &b"HTTP/1.1 GET /\r\n\r\n"[..],             // shuffled
        &b"\x00\x01\x02 / HTTP/1.1\r\n\r\n"[..],    // binary method
    ] {
        assert!(
            HttpRequest::parse(bad, RequestParseMode::Rfc).is_err(),
            "{:?} must not parse",
            String::from_utf8_lossy(bad)
        );
    }
}

#[test]
fn http_mangled_status_lines_are_rejected() {
    for bad in [&b"200 OK\r\n\r\n"[..], &b"HTTP/1.1 abc OK\r\n\r\n"[..], &b"\r\n\r\n"[..]] {
        assert!(HttpResponse::parse(bad).is_err(), "{:?}", String::from_utf8_lossy(bad));
    }
}

/// The packet parser must refuse non-IPv4 and claim-vs-reality protocol
/// mismatches rather than mis-attributing bytes.
#[test]
fn packet_parse_rejects_wrong_version_and_protocol_garbage() {
    let mut h = TcpHeader::new(1, 2, TcpFlags::SYN);
    h.seq = 1;
    let wire = Packet::tcp(SRC, DST, h, lucent_support::Bytes::new()).emit();
    // Flip the IP version nibble to 6.
    let mut bad = wire.clone();
    bad[0] = (bad[0] & 0x0f) | 0x60;
    assert!(Packet::parse(&bad).is_err());
    // An unknown transport protocol number.
    let mut bad = wire;
    bad[9] = 200;
    // Header checksum covers the protocol byte; recompute so only the
    // protocol field is "wrong".
    bad[10] = 0;
    bad[11] = 0;
    let cks = lucent_packet::checksum::of(&bad[..20]);
    bad[10..12].copy_from_slice(&cks.to_be_bytes());
    assert!(Packet::parse(&bad).is_err());
}
