//! UDP header representation, parse and emit (RFC 768).

use std::net::Ipv4Addr;

use crate::checksum::{self, Checksum};
use crate::error::ParseError;
use crate::ipv4::PROTO_UDP;

/// UDP header length.
pub const HEADER_LEN: usize = 8;

/// An owned UDP header. The length field is derived at emit time.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct UdpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port (53 for all DNS traffic modelled here).
    pub dst_port: u16,
}

impl UdpHeader {
    /// Construct a header.
    pub fn new(src_port: u16, dst_port: u16) -> Self {
        UdpHeader { src_port, dst_port }
    }

    /// Serialize header + payload with the pseudo-header checksum.
    pub fn emit(&self, src: Ipv4Addr, dst: Ipv4Addr, payload: &[u8], out: &mut Vec<u8>) {
        let start = out.len();
        let len = (HEADER_LEN + payload.len()) as u16;
        out.extend_from_slice(&self.src_port.to_be_bytes());
        out.extend_from_slice(&self.dst_port.to_be_bytes());
        out.extend_from_slice(&len.to_be_bytes());
        out.extend_from_slice(&[0, 0]);
        out.extend_from_slice(payload);
        let mut c = Checksum::new();
        checksum::pseudo_header(&mut c, src, dst, PROTO_UDP, len);
        c.add(&out[start..]);
        let mut ck = c.finish();
        if ck == 0 {
            ck = 0xffff; // RFC 768: transmitted zero means "no checksum"
        }
        out[start + 6..start + 8].copy_from_slice(&ck.to_be_bytes());
    }

    /// Parse a UDP datagram, verifying length and checksum.
    pub fn parse(
        src: Ipv4Addr,
        dst: Ipv4Addr,
        buf: &[u8],
    ) -> Result<(UdpHeader, &[u8]), ParseError> {
        if buf.len() < HEADER_LEN {
            return Err(ParseError::Truncated { what: "udp", need: HEADER_LEN, have: buf.len() });
        }
        let len = usize::from(u16::from_be_bytes([buf[4], buf[5]]));
        if len < HEADER_LEN || len > buf.len() {
            return Err(ParseError::BadLength { what: "udp" });
        }
        let ck_field = u16::from_be_bytes([buf[6], buf[7]]);
        if ck_field != 0 {
            let mut c = Checksum::new();
            checksum::pseudo_header(&mut c, src, dst, PROTO_UDP, len as u16);
            c.add(&buf[..len]);
            if c.finish() != 0 {
                return Err(ParseError::BadChecksum { what: "udp" });
            }
        }
        Ok((
            UdpHeader {
                src_port: u16::from_be_bytes([buf[0], buf[1]]),
                dst_port: u16::from_be_bytes([buf[2], buf[3]]),
            },
            &buf[HEADER_LEN..len],
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: Ipv4Addr = Ipv4Addr::new(172, 16, 0, 1);
    const B: Ipv4Addr = Ipv4Addr::new(8, 8, 8, 8);

    #[test]
    fn emit_parse_roundtrip() {
        let h = UdpHeader::new(5353, 53);
        let mut out = Vec::new();
        h.emit(A, B, b"dns query bytes", &mut out);
        let (parsed, body) = UdpHeader::parse(A, B, &out).unwrap();
        assert_eq!(parsed, h);
        assert_eq!(body, b"dns query bytes");
    }

    #[test]
    fn corrupted_payload_fails_checksum() {
        let h = UdpHeader::new(1000, 53);
        let mut out = Vec::new();
        h.emit(A, B, b"hello", &mut out);
        let last = out.len() - 1;
        out[last] ^= 0x01;
        assert_eq!(UdpHeader::parse(A, B, &out), Err(ParseError::BadChecksum { what: "udp" }));
    }

    #[test]
    fn zero_checksum_means_unchecked() {
        let h = UdpHeader::new(1, 2);
        let mut out = Vec::new();
        h.emit(A, B, b"data", &mut out);
        out[6] = 0;
        out[7] = 0;
        // Checksum disabled: parse must accept regardless of payload.
        assert!(UdpHeader::parse(A, B, &out).is_ok());
    }

    #[test]
    fn length_field_bounds_payload() {
        let h = UdpHeader::new(1, 2);
        let mut out = Vec::new();
        h.emit(A, B, b"abcd", &mut out);
        out[4..6].copy_from_slice(&100u16.to_be_bytes());
        assert_eq!(UdpHeader::parse(A, B, &out), Err(ParseError::BadLength { what: "udp" }));
        out[4..6].copy_from_slice(&4u16.to_be_bytes());
        assert_eq!(UdpHeader::parse(A, B, &out), Err(ParseError::BadLength { what: "udp" }));
    }

    #[test]
    fn truncated_header_rejected() {
        assert!(matches!(
            UdpHeader::parse(A, B, &[1, 2, 3]),
            Err(ParseError::Truncated { .. })
        ));
    }
}
