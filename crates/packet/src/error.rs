//! Parse-path error type shared by every wire format in this crate.

use core::fmt;

/// Error returned by every `parse` function in this crate.
///
/// Parsing untrusted bytes must never panic; every failure mode is reported
/// through this enum so callers (the simulator's wire-fidelity mode, fuzz
/// tests, middlebox scanners) can distinguish truncation from corruption.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The buffer is shorter than the fixed header of the protocol.
    Truncated {
        /// Protocol whose header was being parsed.
        what: &'static str,
        /// Bytes required to make progress.
        need: usize,
        /// Bytes actually available.
        have: usize,
    },
    /// A length or offset field points outside the buffer.
    BadLength {
        /// Protocol whose length field was inconsistent.
        what: &'static str,
    },
    /// A version / type / magic field holds an unsupported value.
    Unsupported {
        /// Protocol that rejected the field.
        what: &'static str,
        /// The offending value, widened for display.
        value: u32,
    },
    /// A checksum did not verify.
    BadChecksum {
        /// Protocol whose checksum failed.
        what: &'static str,
    },
    /// DNS name decompression exceeded limits (loop or over-long name).
    BadName,
    /// The bytes are not a syntactically valid HTTP message in the
    /// requested parse mode.
    BadHttp {
        /// Human-readable reason, static so errors stay allocation-free.
        reason: &'static str,
    },
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Truncated { what, need, have } => {
                write!(f, "{what}: truncated (need {need} bytes, have {have})")
            }
            ParseError::BadLength { what } => write!(f, "{what}: inconsistent length field"),
            ParseError::Unsupported { what, value } => {
                write!(f, "{what}: unsupported field value {value}")
            }
            ParseError::BadChecksum { what } => write!(f, "{what}: checksum mismatch"),
            ParseError::BadName => write!(f, "dns: malformed or looping compressed name"),
            ParseError::BadHttp { reason } => write!(f, "http: {reason}"),
        }
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_human_readable() {
        let e = ParseError::Truncated { what: "ipv4", need: 20, have: 7 };
        assert_eq!(e.to_string(), "ipv4: truncated (need 20 bytes, have 7)");
        let e = ParseError::BadChecksum { what: "tcp" };
        assert!(e.to_string().contains("tcp"));
        let e = ParseError::Unsupported { what: "ipv4", value: 6 };
        assert!(e.to_string().contains('6'));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(ParseError::BadName, ParseError::BadName);
        assert_ne!(
            ParseError::BadLength { what: "udp" },
            ParseError::BadLength { what: "tcp" }
        );
    }
}
