//! DNS message wire format (RFC 1035): header, questions, resource
//! records, A/CNAME rdata, and name compression (parsed, never emitted).

use std::fmt;
use std::net::Ipv4Addr;

use crate::error::ParseError;

/// Maximum length of a domain name on the wire (RFC 1035 §2.3.4).
const MAX_NAME_LEN: usize = 255;
/// Cap on compression-pointer hops, defeating pointer loops.
const MAX_POINTER_HOPS: usize = 32;

/// A fully-qualified domain name, stored lowercase without the trailing dot.
///
/// DNS matching is case-insensitive; normalizing at construction keeps every
/// comparison in the resolver substrate a plain equality test.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Name(String);

impl Name {
    /// Build a name from a dotted string; normalizes case and strips any
    /// trailing dot. Empty labels (other than the root itself) are invalid
    /// on the wire but tolerated here for ergonomic construction of test
    /// fixtures — `emit` will reject them.
    pub fn new(s: &str) -> Self {
        Name(s.trim_end_matches('.').to_ascii_lowercase())
    }

    /// The dotted representation without trailing dot.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Iterate over labels.
    pub fn labels(&self) -> impl Iterator<Item = &str> {
        self.0.split('.').filter(|l| !l.is_empty())
    }

    /// Append this name, uncompressed, to `out`.
    fn emit(&self, out: &mut Vec<u8>) -> Result<(), ParseError> {
        let mut total = 0usize;
        for label in self.labels() {
            if label.len() > 63 {
                return Err(ParseError::BadName);
            }
            total += label.len() + 1;
            if total > MAX_NAME_LEN {
                return Err(ParseError::BadName);
            }
            out.push(label.len() as u8);
            out.extend_from_slice(label.as_bytes());
        }
        out.push(0);
        Ok(())
    }

    /// Decode a (possibly compressed) name starting at `pos` in `msg`.
    ///
    /// Returns the name and the offset just past its *in-place* encoding
    /// (i.e. past the first pointer if one is used).
    fn parse(msg: &[u8], pos: usize) -> Result<(Name, usize), ParseError> {
        let mut labels: Vec<String> = Vec::new();
        let mut cursor = pos;
        let mut end_after: Option<usize> = None;
        let mut hops = 0usize;
        let mut total = 0usize;
        loop {
            let &len = msg.get(cursor).ok_or(ParseError::BadName)?;
            if len & 0xc0 == 0xc0 {
                let &lo = msg.get(cursor + 1).ok_or(ParseError::BadName)?;
                if end_after.is_none() {
                    end_after = Some(cursor + 2);
                }
                cursor = usize::from(u16::from_be_bytes([len & 0x3f, lo]));
                hops += 1;
                if hops > MAX_POINTER_HOPS {
                    return Err(ParseError::BadName);
                }
            } else if len == 0 {
                let end = end_after.unwrap_or(cursor + 1);
                let name = Name(labels.join(".")); // already lowercased below
                return Ok((name, end));
            } else if len & 0xc0 != 0 {
                return Err(ParseError::BadName); // reserved label types
            } else {
                let len = usize::from(len);
                total += len + 1;
                if total > MAX_NAME_LEN {
                    return Err(ParseError::BadName);
                }
                let bytes = msg
                    .get(cursor + 1..cursor + 1 + len)
                    .ok_or(ParseError::BadName)?;
                let label: String = bytes.iter().map(|b| (*b as char).to_ascii_lowercase()).collect();
                labels.push(label);
                cursor += 1 + len;
            }
        }
    }
}

impl fmt::Display for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Record/query type. Only the types the measurement pipeline uses are
/// first-class; everything else is carried numerically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DnsType {
    /// IPv4 address record.
    A,
    /// Canonical-name alias.
    Cname,
    /// Any other type, by number.
    Other(u16),
}

impl DnsType {
    /// Numeric type code.
    pub fn code(self) -> u16 {
        match self {
            DnsType::A => 1,
            DnsType::Cname => 5,
            DnsType::Other(n) => n,
        }
    }

    /// From numeric code.
    pub fn from_code(n: u16) -> Self {
        match n {
            1 => DnsType::A,
            5 => DnsType::Cname,
            other => DnsType::Other(other),
        }
    }
}

/// Response code (RFC 1035 §4.1.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rcode {
    /// No error.
    NoError,
    /// Format error.
    FormErr,
    /// Server failure.
    ServFail,
    /// Name does not exist.
    NxDomain,
    /// Query refused.
    Refused,
    /// Any other code.
    Other(u8),
}

impl Rcode {
    /// Numeric code.
    pub fn code(self) -> u8 {
        match self {
            Rcode::NoError => 0,
            Rcode::FormErr => 1,
            Rcode::ServFail => 2,
            Rcode::NxDomain => 3,
            Rcode::Refused => 5,
            Rcode::Other(n) => n,
        }
    }

    /// From numeric code.
    pub fn from_code(n: u8) -> Self {
        match n {
            0 => Rcode::NoError,
            1 => Rcode::FormErr,
            2 => Rcode::ServFail,
            3 => Rcode::NxDomain,
            5 => Rcode::Refused,
            other => Rcode::Other(other),
        }
    }
}

/// Decoded DNS header flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DnsFlags {
    /// True for responses, false for queries.
    pub response: bool,
    /// Recursion desired.
    pub rd: bool,
    /// Recursion available.
    pub ra: bool,
    /// Authoritative answer.
    pub aa: bool,
    /// Response code.
    pub rcode: Rcode,
}

impl Default for DnsFlags {
    fn default() -> Self {
        DnsFlags { response: false, rd: true, ra: false, aa: false, rcode: Rcode::NoError }
    }
}

/// A question entry.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DnsQuestion {
    /// Queried name.
    pub name: Name,
    /// Queried type.
    pub qtype: DnsType,
}

/// A resource record in the answer section.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DnsRecord {
    /// Owner name.
    pub name: Name,
    /// Time-to-live, seconds.
    pub ttl: u32,
    /// Record data.
    pub data: RecordData,
}

/// Typed rdata.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum RecordData {
    /// An IPv4 address.
    A(Ipv4Addr),
    /// A canonical-name alias.
    Cname(Name),
    /// Opaque rdata for other types.
    Other {
        /// Type code.
        rtype: u16,
        /// Raw rdata bytes.
        bytes: Vec<u8>,
    },
}

impl RecordData {
    /// The type code of this rdata.
    pub fn rtype(&self) -> u16 {
        match self {
            RecordData::A(_) => 1,
            RecordData::Cname(_) => 5,
            RecordData::Other { rtype, .. } => *rtype,
        }
    }
}

/// A DNS message: header, one-or-more questions, answers.
///
/// Authority and additional sections are not modelled — no system in the
/// paper inspects them — but their counts parse as zero and emit as zero,
/// so wire compatibility is preserved.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DnsMessage {
    /// Transaction id, echoed by responders.
    pub id: u16,
    /// Header flags.
    pub flags: DnsFlags,
    /// Question section.
    pub questions: Vec<DnsQuestion>,
    /// Answer section.
    pub answers: Vec<DnsRecord>,
}

impl DnsMessage {
    /// Build a standard recursive A query.
    pub fn query_a(id: u16, name: &str) -> Self {
        DnsMessage {
            id,
            flags: DnsFlags::default(),
            questions: vec![DnsQuestion { name: Name::new(name), qtype: DnsType::A }],
            answers: Vec::new(),
        }
    }

    /// Build a response to `query` carrying the given A records.
    pub fn answer_a(query: &DnsMessage, ips: &[Ipv4Addr], ttl: u32) -> Self {
        let name = query.questions.first().map(|q| q.name.clone()).unwrap_or_else(|| Name::new(""));
        DnsMessage {
            id: query.id,
            flags: DnsFlags { response: true, rd: query.flags.rd, ra: true, aa: false, rcode: Rcode::NoError },
            questions: query.questions.clone(),
            answers: ips
                .iter()
                .map(|ip| DnsRecord { name: name.clone(), ttl, data: RecordData::A(*ip) })
                .collect(),
        }
    }

    /// Build an NXDOMAIN (or other error) response to `query`.
    pub fn error(query: &DnsMessage, rcode: Rcode) -> Self {
        DnsMessage {
            id: query.id,
            flags: DnsFlags { response: true, rd: query.flags.rd, ra: true, aa: false, rcode },
            questions: query.questions.clone(),
            answers: Vec::new(),
        }
    }

    /// All A-record addresses in the answer section.
    pub fn a_records(&self) -> Vec<Ipv4Addr> {
        self.answers
            .iter()
            .filter_map(|r| match r.data {
                RecordData::A(ip) => Some(ip),
                _ => None,
            })
            .collect()
    }

    /// Serialize to wire format (no compression).
    pub fn emit(&self, out: &mut Vec<u8>) -> Result<(), ParseError> {
        out.extend_from_slice(&self.id.to_be_bytes());
        let mut flags: u16 = 0;
        if self.flags.response {
            flags |= 0x8000;
        }
        if self.flags.aa {
            flags |= 0x0400;
        }
        if self.flags.rd {
            flags |= 0x0100;
        }
        if self.flags.ra {
            flags |= 0x0080;
        }
        flags |= u16::from(self.flags.rcode.code() & 0x0f);
        out.extend_from_slice(&flags.to_be_bytes());
        out.extend_from_slice(&(self.questions.len() as u16).to_be_bytes());
        out.extend_from_slice(&(self.answers.len() as u16).to_be_bytes());
        out.extend_from_slice(&0u16.to_be_bytes()); // NSCOUNT
        out.extend_from_slice(&0u16.to_be_bytes()); // ARCOUNT
        for q in &self.questions {
            q.name.emit(out)?;
            out.extend_from_slice(&q.qtype.code().to_be_bytes());
            out.extend_from_slice(&1u16.to_be_bytes()); // class IN
        }
        for r in &self.answers {
            r.name.emit(out)?;
            out.extend_from_slice(&r.data.rtype().to_be_bytes());
            out.extend_from_slice(&1u16.to_be_bytes());
            out.extend_from_slice(&r.ttl.to_be_bytes());
            match &r.data {
                RecordData::A(ip) => {
                    out.extend_from_slice(&4u16.to_be_bytes());
                    out.extend_from_slice(&ip.octets());
                }
                RecordData::Cname(name) => {
                    let mut rdata = Vec::new();
                    name.emit(&mut rdata)?;
                    out.extend_from_slice(&(rdata.len() as u16).to_be_bytes());
                    out.extend_from_slice(&rdata);
                }
                RecordData::Other { bytes, .. } => {
                    out.extend_from_slice(&(bytes.len() as u16).to_be_bytes());
                    out.extend_from_slice(bytes);
                }
            }
        }
        Ok(())
    }

    /// Parse a message from wire format, following compression pointers.
    pub fn parse(buf: &[u8]) -> Result<DnsMessage, ParseError> {
        if buf.len() < 12 {
            return Err(ParseError::Truncated { what: "dns", need: 12, have: buf.len() });
        }
        let id = u16::from_be_bytes([buf[0], buf[1]]);
        let flags_raw = u16::from_be_bytes([buf[2], buf[3]]);
        let flags = DnsFlags {
            response: flags_raw & 0x8000 != 0,
            aa: flags_raw & 0x0400 != 0,
            rd: flags_raw & 0x0100 != 0,
            ra: flags_raw & 0x0080 != 0,
            rcode: Rcode::from_code((flags_raw & 0x0f) as u8),
        };
        let qdcount = u16::from_be_bytes([buf[4], buf[5]]);
        let ancount = u16::from_be_bytes([buf[6], buf[7]]);
        let nscount = u16::from_be_bytes([buf[8], buf[9]]);
        let arcount = u16::from_be_bytes([buf[10], buf[11]]);
        let mut pos = 12;
        let mut questions = Vec::with_capacity(usize::from(qdcount.min(16)));
        for _ in 0..qdcount {
            let (name, next) = Name::parse(buf, pos)?;
            pos = next;
            let ty = buf.get(pos..pos + 2).ok_or(ParseError::BadLength { what: "dns" })?;
            let qtype = DnsType::from_code(u16::from_be_bytes([ty[0], ty[1]]));
            pos += 4; // type + class
            if pos > buf.len() {
                return Err(ParseError::BadLength { what: "dns" });
            }
            questions.push(DnsQuestion { name, qtype });
        }
        let mut answers = Vec::with_capacity(usize::from(ancount.min(32)));
        let total_rrs = u32::from(ancount) + u32::from(nscount) + u32::from(arcount);
        for i in 0..total_rrs {
            let (name, next) = Name::parse(buf, pos)?;
            pos = next;
            let fixed = buf.get(pos..pos + 10).ok_or(ParseError::BadLength { what: "dns" })?;
            let rtype = u16::from_be_bytes([fixed[0], fixed[1]]);
            let ttl = u32::from_be_bytes([fixed[4], fixed[5], fixed[6], fixed[7]]);
            let rdlen = usize::from(u16::from_be_bytes([fixed[8], fixed[9]]));
            pos += 10;
            let rdata = buf.get(pos..pos + rdlen).ok_or(ParseError::BadLength { what: "dns" })?;
            let rdata_pos = pos;
            pos += rdlen;
            if i >= u32::from(ancount) {
                continue; // skip authority/additional records
            }
            let data = match rtype {
                1 if rdlen == 4 => RecordData::A(Ipv4Addr::new(rdata[0], rdata[1], rdata[2], rdata[3])),
                5 => {
                    let (cname, _) = Name::parse(buf, rdata_pos)?;
                    RecordData::Cname(cname)
                }
                _ => RecordData::Other { rtype, bytes: rdata.to_vec() },
            };
            answers.push(DnsRecord { name, ttl, data });
        }
        Ok(DnsMessage { id, flags, questions, answers })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_normalizes_case_and_dot() {
        let n = Name::new("WWW.Example.COM.");
        assert_eq!(n.as_str(), "www.example.com");
        assert_eq!(n.labels().count(), 3);
    }

    #[test]
    fn query_roundtrip() {
        let q = DnsMessage::query_a(0x1234, "blocked.example.in");
        let mut out = Vec::new();
        q.emit(&mut out).unwrap();
        let parsed = DnsMessage::parse(&out).unwrap();
        assert_eq!(parsed, q);
    }

    #[test]
    fn answer_roundtrip_with_multiple_a() {
        let q = DnsMessage::query_a(7, "cdn.example.com");
        let ips = ["1.2.3.4".parse().unwrap(), "5.6.7.8".parse().unwrap()];
        let a = DnsMessage::answer_a(&q, &ips, 300);
        let mut out = Vec::new();
        a.emit(&mut out).unwrap();
        let parsed = DnsMessage::parse(&out).unwrap();
        assert_eq!(parsed, a);
        assert_eq!(parsed.a_records(), ips);
    }

    #[test]
    fn nxdomain_roundtrip() {
        let q = DnsMessage::query_a(9, "gone.example.com");
        let e = DnsMessage::error(&q, Rcode::NxDomain);
        let mut out = Vec::new();
        e.emit(&mut out).unwrap();
        let parsed = DnsMessage::parse(&out).unwrap();
        assert_eq!(parsed.flags.rcode, Rcode::NxDomain);
        assert!(parsed.answers.is_empty());
    }

    #[test]
    fn cname_roundtrip() {
        let q = DnsMessage::query_a(3, "www.example.com");
        let mut a = DnsMessage::answer_a(&q, &["9.9.9.9".parse().unwrap()], 60);
        a.answers.insert(
            0,
            DnsRecord {
                name: Name::new("www.example.com"),
                ttl: 60,
                data: RecordData::Cname(Name::new("edge.cdn.example.net")),
            },
        );
        let mut out = Vec::new();
        a.emit(&mut out).unwrap();
        assert_eq!(DnsMessage::parse(&out).unwrap(), a);
    }

    #[test]
    fn parses_compressed_names() {
        // Hand-encode: query for a.b + answer whose name is a pointer to
        // offset 12 (the question name).
        let mut buf = vec![
            0x00, 0x01, 0x81, 0x80, // id, flags: response
            0x00, 0x01, 0x00, 0x01, 0x00, 0x00, 0x00, 0x00,
        ];
        buf.extend_from_slice(&[1, b'a', 1, b'b', 0]); // "a.b" at offset 12
        buf.extend_from_slice(&[0, 1, 0, 1]); // qtype A, class IN
        buf.extend_from_slice(&[0xc0, 12]); // pointer to offset 12
        buf.extend_from_slice(&[0, 1, 0, 1, 0, 0, 0, 60, 0, 4, 10, 0, 0, 1]);
        let msg = DnsMessage::parse(&buf).unwrap();
        assert_eq!(msg.questions[0].name.as_str(), "a.b");
        assert_eq!(msg.answers[0].name.as_str(), "a.b");
        assert_eq!(msg.a_records(), vec![Ipv4Addr::new(10, 0, 0, 1)]);
    }

    #[test]
    fn pointer_loop_is_rejected() {
        let mut buf = vec![0x00, 0x01, 0x01, 0x00, 0x00, 0x01, 0, 0, 0, 0, 0, 0];
        buf.extend_from_slice(&[0xc0, 12]); // points at itself
        buf.extend_from_slice(&[0, 1, 0, 1]);
        assert_eq!(DnsMessage::parse(&buf), Err(ParseError::BadName));
    }

    #[test]
    fn overlong_label_rejected_on_emit() {
        let long = "x".repeat(64);
        let q = DnsMessage::query_a(1, &format!("{long}.com"));
        let mut out = Vec::new();
        assert_eq!(q.emit(&mut out), Err(ParseError::BadName));
    }

    #[test]
    fn overlong_name_rejected_on_emit() {
        let label = "y".repeat(63);
        let name = [label.as_str(); 5].join(".");
        let q = DnsMessage::query_a(1, &name);
        let mut out = Vec::new();
        assert_eq!(q.emit(&mut out), Err(ParseError::BadName));
    }

    #[test]
    fn truncated_and_garbage_rejected() {
        assert!(DnsMessage::parse(&[0, 1, 2]).is_err());
        let q = DnsMessage::query_a(5, "ok.com");
        let mut out = Vec::new();
        q.emit(&mut out).unwrap();
        assert!(DnsMessage::parse(&out[..out.len() - 3]).is_err());
    }

    #[test]
    fn parse_skips_authority_and_additional() {
        // One answer + nscount 1: second record must be skipped, not parsed
        // into answers.
        let q = DnsMessage::query_a(2, "s.com");
        let a = DnsMessage::answer_a(&q, &["1.1.1.1".parse().unwrap()], 30);
        let mut out = Vec::new();
        a.emit(&mut out).unwrap();
        // Patch NSCOUNT to 1 and append a minimal NS-ish record.
        out[8..10].copy_from_slice(&1u16.to_be_bytes());
        out.extend_from_slice(&[0]); // root name
        out.extend_from_slice(&[0, 2, 0, 1, 0, 0, 0, 10, 0, 1, b'x']);
        let parsed = DnsMessage::parse(&out).unwrap();
        assert_eq!(parsed.answers.len(), 1);
    }

    #[test]
    fn wire_names_parse_case_insensitively() {
        let mut out = Vec::new();
        DnsMessage::query_a(1, "MiXeD.CoM").emit(&mut out).unwrap();
        let parsed = DnsMessage::parse(&out).unwrap();
        assert_eq!(parsed.questions[0].name.as_str(), "mixed.com");
    }
}
