//! IPv4 header representation, parse and emit (RFC 791).

use std::net::Ipv4Addr;

use crate::checksum;
use crate::error::ParseError;

/// IP protocol number for ICMP.
pub const PROTO_ICMP: u8 = 1;
/// IP protocol number for TCP.
pub const PROTO_TCP: u8 = 6;
/// IP protocol number for UDP.
pub const PROTO_UDP: u8 = 17;

/// The fixed 20-byte IPv4 header length (options are not used by any system
/// modelled here; parse tolerates them, emit never produces them).
pub const HEADER_LEN: usize = 20;

/// An owned IPv4 header.
///
/// `total_len` is *not* stored: it is derived from the payload at emit time
/// so the structured and wire representations can never disagree.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Ipv4Header {
    /// Source address. Middleboxes forge this field; nothing in the
    /// simulator ever validates it against topology, exactly like the
    /// networks in the paper.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// Time-to-live. Decremented by every router; the Iterative Network
    /// Tracer manipulates this directly.
    pub ttl: u8,
    /// IP protocol number of the payload ([`PROTO_TCP`] etc).
    pub protocol: u8,
    /// Identification field. Airtel's wiretap middleboxes stamp the fixed
    /// value 242 here — the hook the paper's client-side firewall rule uses.
    pub identification: u16,
    /// DSCP/ECN byte; carried verbatim, never interpreted.
    pub tos: u8,
    /// Don't-fragment flag. The simulator never fragments, but crafted
    /// probes set it and the wire format must carry it.
    pub dont_frag: bool,
}

impl Ipv4Header {
    /// A conventional header with TTL 64, as emitted by client stacks.
    pub fn new(src: Ipv4Addr, dst: Ipv4Addr, protocol: u8) -> Self {
        Ipv4Header {
            src,
            dst,
            ttl: 64,
            protocol,
            identification: 0,
            tos: 0,
            dont_frag: true,
        }
    }

    /// Serialize the header followed by `payload` into `out`.
    ///
    /// The header checksum is computed over the final header bytes.
    pub fn emit(&self, payload: &[u8], out: &mut Vec<u8>) {
        let total_len = (HEADER_LEN + payload.len()) as u16;
        let start = out.len();
        out.push(0x45); // version 4, IHL 5
        out.push(self.tos);
        out.extend_from_slice(&total_len.to_be_bytes());
        out.extend_from_slice(&self.identification.to_be_bytes());
        let frag: u16 = if self.dont_frag { 0x4000 } else { 0 };
        out.extend_from_slice(&frag.to_be_bytes());
        out.push(self.ttl);
        out.push(self.protocol);
        out.extend_from_slice(&[0, 0]); // checksum placeholder
        out.extend_from_slice(&self.src.octets());
        out.extend_from_slice(&self.dst.octets());
        let ck = checksum::of(&out[start..start + HEADER_LEN]);
        out[start + 10..start + 12].copy_from_slice(&ck.to_be_bytes());
        out.extend_from_slice(payload);
    }

    /// Parse a header from the front of `buf`.
    ///
    /// Returns the header and the payload slice delimited by `total_len`.
    /// The header checksum is verified; options are accepted and skipped.
    pub fn parse(buf: &[u8]) -> Result<(Ipv4Header, &[u8]), ParseError> {
        if buf.len() < HEADER_LEN {
            return Err(ParseError::Truncated { what: "ipv4", need: HEADER_LEN, have: buf.len() });
        }
        let version = buf[0] >> 4;
        if version != 4 {
            return Err(ParseError::Unsupported { what: "ipv4", value: u32::from(version) });
        }
        let ihl = usize::from(buf[0] & 0x0f) * 4;
        if ihl < HEADER_LEN || buf.len() < ihl {
            return Err(ParseError::BadLength { what: "ipv4" });
        }
        if !checksum::verify(&buf[..ihl]) {
            return Err(ParseError::BadChecksum { what: "ipv4" });
        }
        let total_len = usize::from(u16::from_be_bytes([buf[2], buf[3]]));
        if total_len < ihl || total_len > buf.len() {
            return Err(ParseError::BadLength { what: "ipv4" });
        }
        let frag = u16::from_be_bytes([buf[6], buf[7]]);
        let header = Ipv4Header {
            src: Ipv4Addr::new(buf[12], buf[13], buf[14], buf[15]),
            dst: Ipv4Addr::new(buf[16], buf[17], buf[18], buf[19]),
            ttl: buf[8],
            protocol: buf[9],
            identification: u16::from_be_bytes([buf[4], buf[5]]),
            tos: buf[1],
            dont_frag: frag & 0x4000 != 0,
        };
        Ok((header, &buf[ihl..total_len]))
    }
}

/// Test whether `ip` falls in any of the bogon ranges the paper checks
/// poisoned DNS answers against (RFC 1918, loopback, link-local, CGN,
/// TEST-NETs, class E, unspecified).
pub fn is_bogon(ip: Ipv4Addr) -> bool {
    let o = ip.octets();
    ip.is_private()
        || ip.is_loopback()
        || ip.is_link_local()
        || ip.is_unspecified()
        || ip.is_broadcast()
        || ip.is_documentation()
        || o[0] == 100 && (64..128).contains(&o[1]) // 100.64/10 CGN
        || o[0] >= 240 // class E
        || o[0] == 192 && o[1] == 0 && o[2] == 0 // 192.0.0/24
        || o[0] == 198 && (o[1] == 18 || o[1] == 19) // 198.18/15 benchmark
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hdr() -> Ipv4Header {
        Ipv4Header {
            src: Ipv4Addr::new(10, 1, 2, 3),
            dst: Ipv4Addr::new(203, 0, 113, 9),
            ttl: 9,
            protocol: PROTO_TCP,
            identification: 242,
            tos: 0,
            dont_frag: true,
        }
    }

    #[test]
    fn emit_parse_roundtrip() {
        let payload = b"GET / HTTP/1.1\r\n\r\n";
        let mut out = Vec::new();
        hdr().emit(payload, &mut out);
        assert_eq!(out.len(), HEADER_LEN + payload.len());
        let (parsed, body) = Ipv4Header::parse(&out).unwrap();
        assert_eq!(parsed, hdr());
        assert_eq!(body, payload);
    }

    #[test]
    fn parse_rejects_truncation() {
        let mut out = Vec::new();
        hdr().emit(b"abc", &mut out);
        for cut in 0..HEADER_LEN {
            assert!(matches!(
                Ipv4Header::parse(&out[..cut]),
                Err(ParseError::Truncated { .. })
            ));
        }
    }

    #[test]
    fn parse_rejects_corrupt_checksum() {
        let mut out = Vec::new();
        hdr().emit(b"", &mut out);
        out[8] = out[8].wrapping_add(1); // bump TTL without fixing checksum
        assert_eq!(Ipv4Header::parse(&out), Err(ParseError::BadChecksum { what: "ipv4" }));
    }

    #[test]
    fn parse_rejects_wrong_version() {
        let mut out = Vec::new();
        hdr().emit(b"", &mut out);
        out[0] = 0x65;
        assert!(matches!(Ipv4Header::parse(&out), Err(ParseError::Unsupported { .. })));
    }

    #[test]
    fn parse_rejects_total_len_beyond_buffer() {
        let mut out = Vec::new();
        hdr().emit(b"xy", &mut out);
        // Claim 4 extra bytes, then re-fix the header checksum so the
        // length check (not the checksum) is what trips.
        let longer = (out.len() as u16 + 4).to_be_bytes();
        out[2..4].copy_from_slice(&longer);
        out[10] = 0;
        out[11] = 0;
        let ck = checksum::of(&out[..HEADER_LEN]);
        out[10..12].copy_from_slice(&ck.to_be_bytes());
        assert_eq!(Ipv4Header::parse(&out), Err(ParseError::BadLength { what: "ipv4" }));
    }

    #[test]
    fn trailing_bytes_after_total_len_are_ignored() {
        let mut out = Vec::new();
        hdr().emit(b"hi", &mut out);
        out.extend_from_slice(b"ethernet padding");
        let (_, body) = Ipv4Header::parse(&out).unwrap();
        assert_eq!(body, b"hi");
    }

    #[test]
    fn bogon_classification() {
        for ip in ["10.0.0.1", "192.168.4.4", "172.16.9.1", "127.0.0.1", "169.254.1.1",
                   "100.64.0.1", "0.0.0.0", "240.1.1.1", "198.18.0.5", "192.0.2.1"] {
            assert!(is_bogon(ip.parse().unwrap()), "{ip} should be bogon");
        }
        for ip in ["8.8.8.8", "1.1.1.1", "203.0.114.1", "59.144.0.1", "100.128.0.1"] {
            assert!(!is_bogon(ip.parse().unwrap()), "{ip} should not be bogon");
        }
    }
}
