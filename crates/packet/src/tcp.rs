//! TCP header representation, parse and emit (RFC 793), with the
//! pseudo-header checksum.

use std::fmt;
use std::net::Ipv4Addr;

use crate::checksum::{self, Checksum};
use crate::error::ParseError;
use crate::ipv4::PROTO_TCP;

/// Fixed TCP header length without options. `emit` writes only the MSS
/// option when asked; everything modelled in the paper fits in that.
pub const HEADER_LEN: usize = 20;

/// TCP flag bits, stored as a compact bitset.
///
/// The middleboxes in the paper are identified by the exact flag
/// combinations they inject (`FIN`, `FIN|PSH`, bare `RST`), so flags are
/// first-class here.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct TcpFlags(pub u8);

impl TcpFlags {
    /// FIN: sender is done sending.
    pub const FIN: TcpFlags = TcpFlags(0x01);
    /// SYN: synchronize sequence numbers.
    pub const SYN: TcpFlags = TcpFlags(0x02);
    /// RST: abort the connection.
    pub const RST: TcpFlags = TcpFlags(0x04);
    /// PSH: push buffered data to the application.
    pub const PSH: TcpFlags = TcpFlags(0x08);
    /// ACK: the acknowledgment field is significant.
    pub const ACK: TcpFlags = TcpFlags(0x10);
    /// URG: urgent pointer significant (carried, never interpreted).
    pub const URG: TcpFlags = TcpFlags(0x20);

    /// Empty flag set.
    pub fn empty() -> Self {
        TcpFlags(0)
    }

    /// True if every bit of `other` is set in `self`.
    pub fn contains(self, other: TcpFlags) -> bool {
        self.0 & other.0 == other.0
    }

    /// True if any bit of `other` is set in `self`.
    pub fn intersects(self, other: TcpFlags) -> bool {
        self.0 & other.0 != 0
    }
}

impl std::ops::BitOr for TcpFlags {
    type Output = TcpFlags;
    fn bitor(self, rhs: TcpFlags) -> TcpFlags {
        TcpFlags(self.0 | rhs.0)
    }
}

impl fmt::Display for TcpFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names = [
            (TcpFlags::SYN, "SYN"),
            (TcpFlags::ACK, "ACK"),
            (TcpFlags::FIN, "FIN"),
            (TcpFlags::RST, "RST"),
            (TcpFlags::PSH, "PSH"),
            (TcpFlags::URG, "URG"),
        ];
        let mut first = true;
        for (bit, name) in names {
            if self.contains(bit) {
                if !first {
                    write!(f, "|")?;
                }
                write!(f, "{name}")?;
                first = false;
            }
        }
        if first {
            write!(f, "(none)")?;
        }
        Ok(())
    }
}

/// An owned TCP header.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TcpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port. Censorship middleboxes in the paper gate on 80.
    pub dst_port: u16,
    /// Sequence number.
    pub seq: u32,
    /// Acknowledgment number (meaningful when ACK flag set).
    pub ack: u32,
    /// Flag bits.
    pub flags: TcpFlags,
    /// Receive window.
    pub window: u16,
    /// Maximum segment size option; emitted only on SYN segments when set.
    pub mss: Option<u16>,
}

impl TcpHeader {
    /// A header with the given endpoints and flags, zero seq/ack, and a
    /// conventional 64 KiB-1 window.
    pub fn new(src_port: u16, dst_port: u16, flags: TcpFlags) -> Self {
        TcpHeader {
            src_port,
            dst_port,
            seq: 0,
            ack: 0,
            flags,
            window: 0xffff,
            mss: None,
        }
    }

    /// Length of the emitted header, including options and padding.
    pub fn header_len(&self) -> usize {
        if self.mss.is_some() {
            HEADER_LEN + 4
        } else {
            HEADER_LEN
        }
    }

    /// Serialize header + payload into `out`, computing the checksum over
    /// the RFC 793 pseudo-header for the given IP endpoints.
    pub fn emit(&self, src: Ipv4Addr, dst: Ipv4Addr, payload: &[u8], out: &mut Vec<u8>) {
        let start = out.len();
        let hlen = self.header_len();
        out.extend_from_slice(&self.src_port.to_be_bytes());
        out.extend_from_slice(&self.dst_port.to_be_bytes());
        out.extend_from_slice(&self.seq.to_be_bytes());
        out.extend_from_slice(&self.ack.to_be_bytes());
        let data_off = ((hlen / 4) as u8) << 4;
        out.push(data_off);
        out.push(self.flags.0);
        out.extend_from_slice(&self.window.to_be_bytes());
        out.extend_from_slice(&[0, 0]); // checksum placeholder
        out.extend_from_slice(&[0, 0]); // urgent pointer
        if let Some(mss) = self.mss {
            out.push(2); // kind: MSS
            out.push(4); // length
            out.extend_from_slice(&mss.to_be_bytes());
        }
        out.extend_from_slice(payload);
        let seg_len = (hlen + payload.len()) as u16;
        let mut c = Checksum::new();
        checksum::pseudo_header(&mut c, src, dst, PROTO_TCP, seg_len);
        c.add(&out[start..]);
        let ck = c.finish();
        out[start + 16..start + 18].copy_from_slice(&ck.to_be_bytes());
    }

    /// Parse a TCP segment; verifies the pseudo-header checksum against the
    /// provided IP endpoints and returns the header plus payload slice.
    pub fn parse(
        src: Ipv4Addr,
        dst: Ipv4Addr,
        buf: &[u8],
    ) -> Result<(TcpHeader, &[u8]), ParseError> {
        if buf.len() < HEADER_LEN {
            return Err(ParseError::Truncated { what: "tcp", need: HEADER_LEN, have: buf.len() });
        }
        let data_off = usize::from(buf[12] >> 4) * 4;
        if data_off < HEADER_LEN || buf.len() < data_off {
            return Err(ParseError::BadLength { what: "tcp" });
        }
        let mut c = Checksum::new();
        checksum::pseudo_header(&mut c, src, dst, PROTO_TCP, buf.len() as u16);
        c.add(buf);
        if c.finish() != 0 {
            return Err(ParseError::BadChecksum { what: "tcp" });
        }
        let mut mss = None;
        let mut opts = &buf[HEADER_LEN..data_off];
        while let Some((&kind, rest)) = opts.split_first() {
            match kind {
                0 => break,             // end of options
                1 => opts = rest,       // NOP
                _ => {
                    let Some((&len, _)) = rest.split_first() else {
                        return Err(ParseError::BadLength { what: "tcp-opt" });
                    };
                    let len = usize::from(len);
                    if len < 2 || opts.len() < len {
                        return Err(ParseError::BadLength { what: "tcp-opt" });
                    }
                    if kind == 2 && len == 4 {
                        mss = Some(u16::from_be_bytes([opts[2], opts[3]]));
                    }
                    opts = &opts[len..];
                }
            }
        }
        let header = TcpHeader {
            src_port: u16::from_be_bytes([buf[0], buf[1]]),
            dst_port: u16::from_be_bytes([buf[2], buf[3]]),
            seq: u32::from_be_bytes([buf[4], buf[5], buf[6], buf[7]]),
            ack: u32::from_be_bytes([buf[8], buf[9], buf[10], buf[11]]),
            flags: TcpFlags(buf[13] & 0x3f),
            window: u16::from_be_bytes([buf[14], buf[15]]),
            mss,
        };
        Ok((header, &buf[data_off..]))
    }
}

/// Sequence-number arithmetic helpers (mod 2^32), used by the TCP state
/// machine and by middleboxes crafting in-window injections.
pub mod seq {
    /// `a < b` in sequence space.
    pub fn lt(a: u32, b: u32) -> bool {
        (a.wrapping_sub(b) as i32) < 0
    }
    /// `a <= b` in sequence space.
    pub fn le(a: u32, b: u32) -> bool {
        a == b || lt(a, b)
    }
    /// `lo <= x < hi` in sequence space.
    pub fn in_range(x: u32, lo: u32, hi: u32) -> bool {
        le(lo, x) && lt(x, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 1);
    const B: Ipv4Addr = Ipv4Addr::new(10, 0, 0, 2);

    fn hdr() -> TcpHeader {
        TcpHeader {
            src_port: 43211,
            dst_port: 80,
            seq: 0xdead_beef,
            ack: 0x0102_0304,
            flags: TcpFlags::ACK | TcpFlags::PSH,
            window: 29200,
            mss: None,
        }
    }

    #[test]
    fn emit_parse_roundtrip() {
        let mut out = Vec::new();
        hdr().emit(A, B, b"payload bytes", &mut out);
        let (parsed, body) = TcpHeader::parse(A, B, &out).unwrap();
        assert_eq!(parsed, hdr());
        assert_eq!(body, b"payload bytes");
    }

    #[test]
    fn mss_option_roundtrip() {
        let mut h = hdr();
        h.flags = TcpFlags::SYN;
        h.mss = Some(1460);
        let mut out = Vec::new();
        h.emit(A, B, b"", &mut out);
        assert_eq!(out.len(), 24);
        let (parsed, body) = TcpHeader::parse(A, B, &out).unwrap();
        assert_eq!(parsed.mss, Some(1460));
        assert!(body.is_empty());
    }

    #[test]
    fn checksum_binds_ip_endpoints() {
        let mut out = Vec::new();
        hdr().emit(A, B, b"x", &mut out);
        // Same bytes claimed to come from a different source must fail:
        // this is what lets endpoints detect corrupted forgeries, and why
        // middleboxes must forge checksums correctly (ours do).
        assert_eq!(
            TcpHeader::parse(Ipv4Addr::new(10, 0, 0, 3), B, &out),
            Err(ParseError::BadChecksum { what: "tcp" })
        );
    }

    #[test]
    fn parse_rejects_bad_data_offset() {
        let mut out = Vec::new();
        hdr().emit(A, B, b"", &mut out);
        out[12] = 0x30; // data offset 12 bytes < 20
        assert!(matches!(TcpHeader::parse(A, B, &out), Err(ParseError::BadLength { .. })));
    }

    #[test]
    fn parse_rejects_truncated_options() {
        // Hand-build a header claiming 24 bytes of header in a 21-byte buf.
        let mut out = Vec::new();
        hdr().emit(A, B, b"", &mut out);
        out[12] = 0x60;
        assert!(TcpHeader::parse(A, B, &out).is_err());
    }

    #[test]
    fn flags_display_and_ops() {
        let f = TcpFlags::FIN | TcpFlags::PSH | TcpFlags::ACK;
        assert!(f.contains(TcpFlags::FIN));
        assert!(f.intersects(TcpFlags::RST | TcpFlags::PSH));
        assert!(!f.intersects(TcpFlags::RST));
        assert_eq!(f.to_string(), "ACK|FIN|PSH");
        assert_eq!(TcpFlags::empty().to_string(), "(none)");
    }

    #[test]
    fn seq_arithmetic_wraps() {
        assert!(seq::lt(0xffff_fff0, 0x10));
        assert!(!seq::lt(0x10, 0xffff_fff0));
        assert!(seq::in_range(0xffff_ffff, 0xffff_fff0, 0x10));
        assert!(!seq::in_range(0x10, 0xffff_fff0, 0x10));
        assert!(seq::le(5, 5));
    }

    #[test]
    fn unknown_options_are_skipped() {
        // NOP, NOP, unknown kind 254 len 6, then padding to offset.
        let mut h = hdr();
        h.mss = Some(9000);
        let mut out = Vec::new();
        h.emit(A, B, b"z", &mut out);
        // Overwrite MSS option with an unknown one of the same size and
        // refresh the checksum by zeroing + recomputing.
        out[20] = 254;
        out[21] = 4;
        out[16] = 0;
        out[17] = 0;
        let mut c = Checksum::new();
        checksum::pseudo_header(&mut c, A, B, PROTO_TCP, out.len() as u16);
        c.add(&out);
        let ck = c.finish();
        out[16..18].copy_from_slice(&ck.to_be_bytes());
        let (parsed, body) = TcpHeader::parse(A, B, &out).unwrap();
        assert_eq!(parsed.mss, None);
        assert_eq!(body, b"z");
    }
}
