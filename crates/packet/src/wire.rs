//! The structured packet type moved between simulator nodes, plus full
//! wire serialization proving it hides nothing.

use lucent_support::Bytes;
use std::net::Ipv4Addr;

use crate::error::ParseError;
use crate::icmp::IcmpMessage;
use crate::ipv4::{self, Ipv4Header};
use crate::tcp::TcpHeader;
use crate::udp::UdpHeader;

/// Transport-layer content of a packet.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Transport {
    /// A TCP segment: header plus payload bytes.
    Tcp(TcpHeader, Bytes),
    /// A UDP datagram: header plus payload bytes.
    Udp(UdpHeader, Bytes),
    /// An ICMP message.
    Icmp(IcmpMessage),
}

impl Transport {
    /// The IP protocol number for this transport.
    pub fn protocol(&self) -> u8 {
        match self {
            Transport::Tcp(..) => ipv4::PROTO_TCP,
            Transport::Udp(..) => ipv4::PROTO_UDP,
            Transport::Icmp(..) => ipv4::PROTO_ICMP,
        }
    }
}

/// A full IPv4 packet as moved between simulator nodes.
///
/// The invariant `ip.protocol == transport.protocol()` is maintained by the
/// constructors; `parse` re-establishes it from the wire.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Packet {
    /// Network-layer header.
    pub ip: Ipv4Header,
    /// Transport-layer content.
    pub transport: Transport,
}

impl Packet {
    /// Build a TCP packet with a conventional IP header (TTL 64).
    pub fn tcp(src: Ipv4Addr, dst: Ipv4Addr, header: TcpHeader, payload: impl Into<Bytes>) -> Self {
        Packet {
            ip: Ipv4Header::new(src, dst, ipv4::PROTO_TCP),
            transport: Transport::Tcp(header, payload.into()),
        }
    }

    /// Build a UDP packet with a conventional IP header.
    pub fn udp(src: Ipv4Addr, dst: Ipv4Addr, header: UdpHeader, payload: impl Into<Bytes>) -> Self {
        Packet {
            ip: Ipv4Header::new(src, dst, ipv4::PROTO_UDP),
            transport: Transport::Udp(header, payload.into()),
        }
    }

    /// Build an ICMP packet with a conventional IP header.
    pub fn icmp(src: Ipv4Addr, dst: Ipv4Addr, msg: IcmpMessage) -> Self {
        Packet {
            ip: Ipv4Header::new(src, dst, ipv4::PROTO_ICMP),
            transport: Transport::Icmp(msg),
        }
    }

    /// Set the IP TTL (builder style, used heavily by the tracer probes).
    pub fn with_ttl(mut self, ttl: u8) -> Self {
        self.ip.ttl = ttl;
        self
    }

    /// Set the IP identification field (e.g. Airtel's fixed 242).
    pub fn with_ip_id(mut self, id: u16) -> Self {
        self.ip.identification = id;
        self
    }

    /// Source address shorthand.
    pub fn src(&self) -> Ipv4Addr {
        self.ip.src
    }

    /// Destination address shorthand.
    pub fn dst(&self) -> Ipv4Addr {
        self.ip.dst
    }

    /// The TCP view of this packet, if it is TCP.
    pub fn as_tcp(&self) -> Option<(&TcpHeader, &Bytes)> {
        match &self.transport {
            Transport::Tcp(h, p) => Some((h, p)),
            _ => None,
        }
    }

    /// The UDP view of this packet, if it is UDP.
    pub fn as_udp(&self) -> Option<(&UdpHeader, &Bytes)> {
        match &self.transport {
            Transport::Udp(h, p) => Some((h, p)),
            _ => None,
        }
    }

    /// The ICMP view of this packet, if it is ICMP.
    pub fn as_icmp(&self) -> Option<&IcmpMessage> {
        match &self.transport {
            Transport::Icmp(m) => Some(m),
            _ => None,
        }
    }

    /// Serialize the entire packet to wire octets (IP header + transport).
    pub fn emit(&self) -> Vec<u8> {
        let mut transport_bytes = Vec::new();
        match &self.transport {
            Transport::Tcp(h, p) => h.emit(self.ip.src, self.ip.dst, p, &mut transport_bytes),
            Transport::Udp(h, p) => h.emit(self.ip.src, self.ip.dst, p, &mut transport_bytes),
            Transport::Icmp(m) => m.emit(&mut transport_bytes),
        }
        let mut out = Vec::with_capacity(ipv4::HEADER_LEN + transport_bytes.len());
        let mut ip = self.ip.clone();
        ip.protocol = self.transport.protocol();
        ip.emit(&transport_bytes, &mut out);
        out
    }

    /// Parse a packet from wire octets, verifying every checksum. The
    /// payload bytes are copied out of `buf`; when the octets already
    /// live in a shared [`Bytes`] buffer, [`Packet::parse_bytes`]
    /// borrows them zero-copy instead.
    pub fn parse(buf: &[u8]) -> Result<Packet, ParseError> {
        let (ip, payload) = Ipv4Header::parse(buf)?;
        let transport = match ip.protocol {
            ipv4::PROTO_TCP => {
                let (h, p) = TcpHeader::parse(ip.src, ip.dst, payload)?;
                Transport::Tcp(h, Bytes::copy_from_slice(p))
            }
            ipv4::PROTO_UDP => {
                let (h, p) = UdpHeader::parse(ip.src, ip.dst, payload)?;
                Transport::Udp(h, Bytes::copy_from_slice(p))
            }
            ipv4::PROTO_ICMP => Transport::Icmp(IcmpMessage::parse(payload)?),
            other => {
                return Err(ParseError::Unsupported { what: "ip-proto", value: u32::from(other) })
            }
        };
        Ok(Packet { ip, transport })
    }

    /// Parse a packet from wire octets held in a shared buffer,
    /// verifying every checksum. Unlike [`Packet::parse`], transport
    /// payloads come back as zero-copy [`Bytes::slice`] views into
    /// `buf`'s allocation — the hot wire-fidelity reparse path moves
    /// no payload bytes.
    pub fn parse_bytes(buf: &Bytes) -> Result<Packet, ParseError> {
        let octets: &[u8] = buf;
        let (ip, l4) = Ipv4Header::parse(octets)?;
        // `Ipv4Header::parse` returned `octets[ihl..total_len]`; recover
        // the transport offset from the already-validated IHL nibble.
        let l4_off = usize::from(octets[0] & 0x0f) * 4;
        let l4_end = l4_off + l4.len();
        let transport = match ip.protocol {
            ipv4::PROTO_TCP => {
                // The TCP payload is a suffix of the segment.
                let (h, p) = TcpHeader::parse(ip.src, ip.dst, l4)?;
                Transport::Tcp(h, buf.slice(l4_end - p.len()..l4_end))
            }
            ipv4::PROTO_UDP => {
                // The UDP payload starts right after the fixed header
                // (the datagram may end before the IP payload does).
                let (h, p) = UdpHeader::parse(ip.src, ip.dst, l4)?;
                let start = l4_off + crate::udp::HEADER_LEN;
                Transport::Udp(h, buf.slice(start..start + p.len()))
            }
            ipv4::PROTO_ICMP => Transport::Icmp(IcmpMessage::parse(l4)?),
            other => {
                return Err(ParseError::Unsupported { what: "ip-proto", value: u32::from(other) })
            }
        };
        Ok(Packet { ip, transport })
    }

    /// The leading wire bytes of this packet (IP header + 8), as embedded in
    /// ICMP time-exceeded/unreachable messages by real routers.
    pub fn icmp_quote(&self) -> Vec<u8> {
        let mut wire = self.emit();
        wire.truncate(ipv4::HEADER_LEN + 8);
        wire
    }
}

#[cfg(test)]
impl Ipv4Header {
    /// Test helper: parse a quoted (possibly payload-truncated) header.
    fn parse_prefix_for_test(buf: &[u8]) -> (Ipv4Header, &[u8]) {
        // ICMP quotes clip the payload, so total_len exceeds the buffer;
        // bypass the length check by parsing fields directly.
        let header = Ipv4Header {
            src: Ipv4Addr::new(buf[12], buf[13], buf[14], buf[15]),
            dst: Ipv4Addr::new(buf[16], buf[17], buf[18], buf[19]),
            ttl: buf[8],
            protocol: buf[9],
            identification: u16::from_be_bytes([buf[4], buf[5]]),
            tos: buf[1],
            dont_frag: u16::from_be_bytes([buf[6], buf[7]]) & 0x4000 != 0,
        };
        (header, &buf[20..])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tcp::TcpFlags;

    const C: Ipv4Addr = Ipv4Addr::new(100, 1, 1, 1);
    const S: Ipv4Addr = Ipv4Addr::new(203, 0, 113, 80);

    #[test]
    fn tcp_packet_roundtrip() {
        let h = TcpHeader { seq: 1000, ack: 2000, ..TcpHeader::new(40000, 80, TcpFlags::ACK | TcpFlags::PSH) };
        let pkt = Packet::tcp(C, S, h, &b"GET / HTTP/1.1\r\nHost: x\r\n\r\n"[..]).with_ttl(9);
        let wire = pkt.emit();
        let parsed = Packet::parse(&wire).unwrap();
        assert_eq!(parsed, pkt);
        assert_eq!(parsed.ip.ttl, 9);
    }

    #[test]
    fn udp_packet_roundtrip() {
        let pkt = Packet::udp(C, S, UdpHeader::new(5000, 53), &b"query"[..]).with_ip_id(242);
        let parsed = Packet::parse(&pkt.emit()).unwrap();
        assert_eq!(parsed, pkt);
        assert_eq!(parsed.ip.identification, 242);
    }

    #[test]
    fn icmp_packet_roundtrip() {
        let inner = Packet::udp(C, S, UdpHeader::new(1, 2), &b"x"[..]);
        let pkt = Packet::icmp(S, C, IcmpMessage::TimeExceeded { original: inner.icmp_quote() });
        let parsed = Packet::parse(&pkt.emit()).unwrap();
        assert_eq!(parsed, pkt);
    }

    #[test]
    fn icmp_quote_is_header_plus_eight() {
        let pkt = Packet::udp(C, S, UdpHeader::new(33434, 53), &b"trace probe payload"[..]);
        let quote = pkt.icmp_quote();
        assert_eq!(quote.len(), ipv4::HEADER_LEN + 8);
        // The quoted bytes still identify src/dst and ports.
        let (ip, rest) = Ipv4Header::parse_prefix_for_test(&quote);
        assert_eq!(ip.src, C);
        assert_eq!(ip.dst, S);
        assert_eq!(u16::from_be_bytes([rest[0], rest[1]]), 33434);
    }

    #[test]
    fn parse_bytes_agrees_with_parse_and_borrows_payload() {
        let tcp = Packet::tcp(
            C,
            S,
            TcpHeader { seq: 7, ..TcpHeader::new(40000, 80, TcpFlags::PSH) },
            &b"GET /blocked HTTP/1.1\r\n\r\n"[..],
        );
        let udp = Packet::udp(C, S, UdpHeader::new(5000, 53), &b"query"[..]);
        for pkt in [tcp, udp] {
            let wire = Bytes::from(pkt.emit());
            let zero = Packet::parse_bytes(&wire).unwrap();
            assert_eq!(zero, Packet::parse(&wire).unwrap());
            assert_eq!(zero, pkt);
            // The payload is a view into the wire buffer, not a copy.
            let payload = match &zero.transport {
                Transport::Tcp(_, p) | Transport::Udp(_, p) => p,
                Transport::Icmp(_) => unreachable!(),
            };
            let off = wire.len() - payload.len();
            assert!(std::ptr::eq(&wire[off], &payload[0]), "payload must share the allocation");
        }
    }

    #[test]
    fn parse_bytes_udp_payload_respects_datagram_length() {
        // An IP payload longer than the UDP length field: the trailing
        // bytes are not part of the datagram and must not leak into the
        // zero-copy payload slice.
        let pkt = Packet::udp(C, S, UdpHeader::new(1, 2), &b"abc"[..]);
        let mut wire = pkt.emit();
        wire.extend_from_slice(b"ZZ"); // trailer beyond the UDP length
        // Fix the IP total length + checksum to cover the trailer.
        let total = wire.len() as u16;
        wire[2..4].copy_from_slice(&total.to_be_bytes());
        wire[10] = 0;
        wire[11] = 0;
        let ck = crate::checksum::of(&wire[..ipv4::HEADER_LEN]);
        wire[10..12].copy_from_slice(&ck.to_be_bytes());
        let parsed = Packet::parse_bytes(&Bytes::from(wire)).unwrap();
        assert_eq!(parsed.as_udp().unwrap().1, &b"abc"[..]);
    }

    #[test]
    fn parse_rejects_unknown_protocol() {
        let pkt = Packet::udp(C, S, UdpHeader::new(1, 2), &b"x"[..]);
        let mut wire = pkt.emit();
        wire[9] = 47; // GRE
        // Fix the IP checksum for the altered protocol byte.
        wire[10] = 0;
        wire[11] = 0;
        let ck = crate::checksum::of(&wire[..ipv4::HEADER_LEN]);
        wire[10..12].copy_from_slice(&ck.to_be_bytes());
        assert!(matches!(Packet::parse(&wire), Err(ParseError::Unsupported { .. })));
    }

    #[test]
    fn protocol_field_tracks_transport() {
        let mut pkt = Packet::udp(C, S, UdpHeader::new(1, 2), &b"x"[..]);
        // Deliberately desynchronize, emit must repair.
        pkt.ip.protocol = 99;
        let wire = pkt.emit();
        let parsed = Packet::parse(&wire).unwrap();
        assert!(parsed.as_udp().is_some());
    }
}
