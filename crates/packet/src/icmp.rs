//! ICMPv4 messages (RFC 792): echo, time-exceeded and destination
//! unreachable — the three message types the paper's tooling depends on
//! (traceroute and the Iterative Network Tracer).

use crate::checksum;
use crate::error::ParseError;

/// An owned ICMPv4 message.
///
/// Time-exceeded and unreachable messages carry the leading bytes of the
/// original datagram (IP header + 8 bytes in real networks; we keep
/// whatever was supplied) so traceroute-style tools can match responses to
/// the probes that elicited them.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum IcmpMessage {
    /// Echo request (type 8), as sent by `ping`/UDP-less traceroute probes.
    EchoRequest {
        /// Identifier used to demultiplex concurrent pingers.
        ident: u16,
        /// Monotone sequence number.
        seq: u16,
    },
    /// Echo reply (type 0).
    EchoReply {
        /// Identifier echoed from the request.
        ident: u16,
        /// Sequence echoed from the request.
        seq: u16,
    },
    /// TTL expired in transit (type 11, code 0). The workhorse of both
    /// traceroute and the Iterative Network Tracer.
    TimeExceeded {
        /// Leading bytes of the expired datagram.
        original: Vec<u8>,
    },
    /// Destination unreachable (type 3).
    DestUnreachable {
        /// Code: 0 net, 1 host, 3 port unreachable.
        code: u8,
        /// Leading bytes of the offending datagram.
        original: Vec<u8>,
    },
}

impl IcmpMessage {
    /// The ICMP type number of this message.
    pub fn type_code(&self) -> (u8, u8) {
        match self {
            IcmpMessage::EchoReply { .. } => (0, 0),
            IcmpMessage::EchoRequest { .. } => (8, 0),
            IcmpMessage::TimeExceeded { .. } => (11, 0),
            IcmpMessage::DestUnreachable { code, .. } => (3, *code),
        }
    }

    /// Serialize into `out` with a valid ICMP checksum.
    pub fn emit(&self, out: &mut Vec<u8>) {
        let start = out.len();
        let (ty, code) = self.type_code();
        out.push(ty);
        out.push(code);
        out.extend_from_slice(&[0, 0]); // checksum placeholder
        match self {
            IcmpMessage::EchoRequest { ident, seq } | IcmpMessage::EchoReply { ident, seq } => {
                out.extend_from_slice(&ident.to_be_bytes());
                out.extend_from_slice(&seq.to_be_bytes());
            }
            IcmpMessage::TimeExceeded { original }
            | IcmpMessage::DestUnreachable { original, .. } => {
                out.extend_from_slice(&[0, 0, 0, 0]); // unused
                out.extend_from_slice(original);
            }
        }
        let ck = checksum::of(&out[start..]);
        out[start + 2..start + 4].copy_from_slice(&ck.to_be_bytes());
    }

    /// Parse an ICMP message, verifying its checksum.
    pub fn parse(buf: &[u8]) -> Result<IcmpMessage, ParseError> {
        if buf.len() < 8 {
            return Err(ParseError::Truncated { what: "icmp", need: 8, have: buf.len() });
        }
        if !checksum::verify(buf) {
            return Err(ParseError::BadChecksum { what: "icmp" });
        }
        let ident = u16::from_be_bytes([buf[4], buf[5]]);
        let seq = u16::from_be_bytes([buf[6], buf[7]]);
        match (buf[0], buf[1]) {
            (0, 0) => Ok(IcmpMessage::EchoReply { ident, seq }),
            (8, 0) => Ok(IcmpMessage::EchoRequest { ident, seq }),
            (11, 0) => Ok(IcmpMessage::TimeExceeded { original: buf[8..].to_vec() }),
            (3, code) => Ok(IcmpMessage::DestUnreachable { code, original: buf[8..].to_vec() }),
            (ty, _) => Err(ParseError::Unsupported { what: "icmp", value: u32::from(ty) }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn echo_roundtrip() {
        for msg in [
            IcmpMessage::EchoRequest { ident: 77, seq: 3 },
            IcmpMessage::EchoReply { ident: 77, seq: 3 },
        ] {
            let mut out = Vec::new();
            msg.emit(&mut out);
            assert_eq!(IcmpMessage::parse(&out).unwrap(), msg);
        }
    }

    #[test]
    fn time_exceeded_carries_original() {
        let msg = IcmpMessage::TimeExceeded { original: b"original ip header + 8".to_vec() };
        let mut out = Vec::new();
        msg.emit(&mut out);
        assert_eq!(IcmpMessage::parse(&out).unwrap(), msg);
    }

    #[test]
    fn unreachable_codes_roundtrip() {
        for code in [0u8, 1, 3] {
            let msg = IcmpMessage::DestUnreachable { code, original: vec![1, 2, 3, 4] };
            let mut out = Vec::new();
            msg.emit(&mut out);
            assert_eq!(IcmpMessage::parse(&out).unwrap(), msg);
        }
    }

    #[test]
    fn corrupt_checksum_rejected() {
        let msg = IcmpMessage::EchoRequest { ident: 1, seq: 1 };
        let mut out = Vec::new();
        msg.emit(&mut out);
        out[5] ^= 1;
        assert_eq!(IcmpMessage::parse(&out), Err(ParseError::BadChecksum { what: "icmp" }));
    }

    #[test]
    fn unknown_type_rejected() {
        let mut out = vec![42u8, 0, 0, 0, 0, 0, 0, 0];
        let ck = checksum::of(&out);
        out[2..4].copy_from_slice(&ck.to_be_bytes());
        assert!(matches!(IcmpMessage::parse(&out), Err(ParseError::Unsupported { .. })));
    }

    #[test]
    fn short_buffer_rejected() {
        assert!(matches!(IcmpMessage::parse(&[11, 0, 0]), Err(ParseError::Truncated { .. })));
    }
}
