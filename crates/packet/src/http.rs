//! HTTP/1.x messages with byte-exact fidelity.
//!
//! The censorship phenomena reproduced from the paper are *byte-level*:
//! middleboxes match the literal token `Host` (case-sensitively, or with a
//! strict `"Host: "` pattern), while RFC 2616-compliant origin servers
//! accept any header-name case and tolerate extra whitespace around values.
//! A request is therefore represented as its raw bytes, built by
//! [`RequestBuilder`] and *interpreted* by parsers of configurable
//! strictness — the same bytes can legitimately parse differently for a
//! server and a middlebox, which is exactly the gap evasion exploits.

use std::fmt::Write as _;

use crate::error::ParseError;

/// How tolerant a request parser is. Origin servers in the simulator use
/// [`RequestParseMode::Rfc`]; test fixtures use `Strict` to assert builders
/// emit canonical messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestParseMode {
    /// RFC 2616/7230 semantics: header names case-insensitive, optional
    /// whitespace (spaces and tabs) around values, first-header-wins for
    /// `Host` lookup.
    Rfc,
    /// Canonical-form only: exactly one space after the colon, title-case
    /// irrelevant but no leading/trailing value whitespace.
    Strict,
}

/// A parsed HTTP request. Header names and values are kept exactly as they
/// appeared on the wire; semantic lookups normalize on the fly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpRequest {
    /// Request method (`GET` in everything modelled here).
    pub method: String,
    /// Request target (path).
    pub target: String,
    /// Protocol version string, e.g. `HTTP/1.1`.
    pub version: String,
    /// Headers in wire order: (raw name, raw value with surrounding
    /// whitespace already trimmed per the parse mode).
    pub headers: Vec<(String, String)>,
}

impl HttpRequest {
    /// Parse one request head from `buf`.
    ///
    /// Returns the request and the number of bytes consumed (up to and
    /// including the terminating blank line). Trailing bytes belong to the
    /// next pipelined message — the covert-interceptive-middlebox evasion
    /// depends on servers honoring this framing.
    pub fn parse(buf: &[u8], mode: RequestParseMode) -> Result<(HttpRequest, usize), ParseError> {
        let end = find_head_end(buf).ok_or(ParseError::BadHttp { reason: "no blank line" })?;
        let head = &buf[..end - 4]; // without the \r\n\r\n
        let mut lines = head.split(|&b| b == b'\n').map(|l| l.strip_suffix(b"\r").unwrap_or(l));
        let request_line = lines.next().ok_or(ParseError::BadHttp { reason: "empty head" })?;
        let line = std::str::from_utf8(request_line)
            .map_err(|_| ParseError::BadHttp { reason: "request line not utf-8" })?;
        let mut parts = line.split(' ').filter(|p| !p.is_empty());
        let method = parts.next().ok_or(ParseError::BadHttp { reason: "missing method" })?;
        // RFC 7230 §3.2.6: a method is a token — visible ASCII minus
        // separators. Binary bytes here mean we are not looking at HTTP.
        if !method.bytes().all(|b| b.is_ascii_alphanumeric() || b"!#$%&'*+-.^_`|~".contains(&b)) {
            return Err(ParseError::BadHttp { reason: "method not a token" });
        }
        let target = parts.next().ok_or(ParseError::BadHttp { reason: "missing target" })?;
        let version = parts.next().ok_or(ParseError::BadHttp { reason: "missing version" })?;
        if !version.starts_with("HTTP/") {
            return Err(ParseError::BadHttp { reason: "bad version" });
        }
        let mut headers = Vec::new();
        for raw in lines {
            if raw.is_empty() {
                continue;
            }
            let text = std::str::from_utf8(raw)
                .map_err(|_| ParseError::BadHttp { reason: "header not utf-8" })?;
            let colon = text.find(':').ok_or(ParseError::BadHttp { reason: "header missing colon" })?;
            let name = &text[..colon];
            let value_raw = &text[colon + 1..];
            let value = match mode {
                RequestParseMode::Rfc => value_raw.trim_matches([' ', '\t']),
                RequestParseMode::Strict => {
                    let v = value_raw
                        .strip_prefix(' ')
                        .ok_or(ParseError::BadHttp { reason: "strict: need single space" })?;
                    if v.starts_with(' ') || v.starts_with('\t') || v.ends_with(' ') || v.ends_with('\t')
                    {
                        return Err(ParseError::BadHttp { reason: "strict: extra whitespace" });
                    }
                    v
                }
            };
            if name.is_empty() || name.contains(' ') {
                return Err(ParseError::BadHttp { reason: "bad header name" });
            }
            headers.push((name.to_string(), value.to_string()));
        }
        Ok((
            HttpRequest {
                method: method.to_string(),
                target: target.to_string(),
                version: version.to_string(),
                headers,
            },
            end,
        ))
    }

    /// RFC semantics for the `Host` header: case-insensitive name match,
    /// first occurrence wins.
    pub fn host(&self) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case("host"))
            .map(|(_, v)| v.as_str())
    }

    /// Look up any header by case-insensitive name (first occurrence).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// Locate the end of a message head: index just past the first
/// `\r\n\r\n`, or `None` if incomplete.
pub fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n").map(|i| i + 4)
}

/// Builder producing byte-exact HTTP/1.x requests.
///
/// Every fudging technique from Section 5 of the paper maps to one method
/// here; [`RequestBuilder::build`] returns the literal bytes that will ride
/// in TCP payloads.
///
/// ```
/// use lucent_packet::http::RequestBuilder;
///
/// // A canonical browser request…
/// let plain = RequestBuilder::browser("blocked.example", "/").build();
/// assert!(plain.starts_with(b"GET / HTTP/1.1\r\n"));
///
/// // …and a whitespace-fudged one that a strict middlebox parser
/// // misreads while an RFC server serves it normally.
/// let fudged = RequestBuilder::get("/")
///     .raw_line("Host:  blocked.example")
///     .build();
/// assert!(fudged.windows(2).any(|w| w == b":\x20"));
/// ```
#[derive(Debug, Clone)]
pub struct RequestBuilder {
    method: String,
    target: String,
    version: String,
    lines: Vec<String>,
}

impl RequestBuilder {
    /// Start a standard `GET <path> HTTP/1.1` request.
    pub fn get(path: &str) -> Self {
        RequestBuilder {
            method: "GET".into(),
            target: path.into(),
            version: "HTTP/1.1".into(),
            lines: Vec::new(),
        }
    }

    /// Override the version token (e.g. `HTTP/2.0` probing).
    pub fn version(mut self, v: &str) -> Self {
        self.version = v.into();
        self
    }

    /// Override the method token case (e.g. `get`).
    pub fn method(mut self, m: &str) -> Self {
        self.method = m.into();
        self
    }

    /// Append a canonical `Name: value` header.
    pub fn header(mut self, name: &str, value: &str) -> Self {
        self.lines.push(format!("{name}: {value}"));
        self
    }

    /// Append a header line *verbatim* — no colon-space normalization.
    /// This is how whitespace-fudged and duplicate `Host` lines are built.
    pub fn raw_line(mut self, line: &str) -> Self {
        self.lines.push(line.to_string());
        self
    }

    /// The canonical browser-like request for `host`: title-case `Host`,
    /// a plausible `User-Agent`, `Accept` and `Connection` headers.
    pub fn browser(host: &str, path: &str) -> Self {
        RequestBuilder::get(path)
            .header("Host", host)
            .header("User-Agent", "Mozilla/5.0 (X11; Linux x86_64) lucent/0.1")
            .header("Accept", "text/html,application/xhtml+xml")
            .header("Connection", "keep-alive")
    }

    /// Serialize to wire bytes.
    pub fn build(&self) -> Vec<u8> {
        let mut out = String::new();
        let _ = write!(out, "{} {} {}\r\n", self.method, self.target, self.version);
        for line in &self.lines {
            let _ = write!(out, "{line}\r\n");
        }
        out.push_str("\r\n");
        out.into_bytes()
    }
}

/// An HTTP response: status line, headers, body.
///
/// Responses are structured (not raw) because nothing in the paper depends
/// on response byte quirks — OONI and the probes compare status, header
/// *names*, body length and `<title>`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpResponse {
    /// Status code (200, 302, 400, ...).
    pub status: u16,
    /// Reason phrase.
    pub reason: String,
    /// Headers in order (name, value).
    pub headers: Vec<(String, String)>,
    /// Message body bytes.
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// Build a response with a `Content-Length` header derived from `body`.
    pub fn new(status: u16, reason: &str, body: Vec<u8>) -> Self {
        let headers = vec![("Content-Length".to_string(), body.len().to_string())];
        HttpResponse { status, reason: reason.to_string(), headers: headers_with_defaults(headers), body }
    }

    /// Append a header.
    pub fn with_header(mut self, name: &str, value: &str) -> Self {
        self.headers.push((name.to_string(), value.to_string()));
        self
    }

    /// Serialize to wire bytes.
    pub fn emit(&self) -> Vec<u8> {
        let mut out = String::new();
        let _ = write!(out, "HTTP/1.1 {} {}\r\n", self.status, self.reason);
        for (n, v) in &self.headers {
            let _ = write!(out, "{n}: {v}\r\n");
        }
        out.push_str("\r\n");
        let mut bytes = out.into_bytes();
        bytes.extend_from_slice(&self.body);
        bytes
    }

    /// Parse a response from wire bytes. The body is everything after the
    /// blank line, clipped to `Content-Length` when present.
    pub fn parse(buf: &[u8]) -> Result<HttpResponse, ParseError> {
        let end = find_head_end(buf).ok_or(ParseError::BadHttp { reason: "no blank line" })?;
        let head = std::str::from_utf8(&buf[..end - 4])
            .map_err(|_| ParseError::BadHttp { reason: "head not utf-8" })?;
        let mut lines = head.split("\r\n");
        let status_line = lines.next().ok_or(ParseError::BadHttp { reason: "empty head" })?;
        let mut parts = status_line.splitn(3, ' ');
        let version = parts.next().unwrap_or("");
        if !version.starts_with("HTTP/") {
            return Err(ParseError::BadHttp { reason: "bad status line" });
        }
        let status: u16 = parts
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or(ParseError::BadHttp { reason: "bad status code" })?;
        let reason = parts.next().unwrap_or("").to_string();
        let mut headers = Vec::new();
        for line in lines {
            if line.is_empty() {
                continue;
            }
            let colon = line.find(':').ok_or(ParseError::BadHttp { reason: "header missing colon" })?;
            headers.push((
                line[..colon].to_string(),
                line[colon + 1..].trim_matches([' ', '\t']).to_string(),
            ));
        }
        let mut body = buf[end..].to_vec();
        if let Some(cl) = headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case("content-length"))
            .and_then(|(_, v)| v.parse::<usize>().ok())
        {
            body.truncate(cl);
        }
        Ok(HttpResponse { status, reason, headers, body })
    }

    /// Look up a header (case-insensitive, first occurrence).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Header *names*, lowercased and sorted — OONI's header comparison
    /// looks at names only.
    pub fn header_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.headers.iter().map(|(n, _)| n.to_ascii_lowercase()).collect();
        names.sort();
        names.dedup();
        names
    }

    /// Extract the `<title>` text from an HTML body, if any.
    pub fn title(&self) -> Option<String> {
        let body = std::str::from_utf8(&self.body).ok()?;
        let lower = body.to_ascii_lowercase();
        let start = lower.find("<title>")? + "<title>".len();
        let end = lower[start..].find("</title>")? + start;
        Some(body[start..end].trim().to_string())
    }
}

fn headers_with_defaults(mut headers: Vec<(String, String)>) -> Vec<(String, String)> {
    headers.push(("Connection".to_string(), "close".to_string()));
    headers
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn browser_request_builds_canonically() {
        let bytes = RequestBuilder::browser("blocked.example.in", "/").build();
        let text = String::from_utf8(bytes.clone()).unwrap();
        assert!(text.starts_with("GET / HTTP/1.1\r\n"));
        assert!(text.contains("Host: blocked.example.in\r\n"));
        assert!(text.ends_with("\r\n\r\n"));
        let (req, used) = HttpRequest::parse(&bytes, RequestParseMode::Strict).unwrap();
        assert_eq!(used, bytes.len());
        assert_eq!(req.host(), Some("blocked.example.in"));
        assert_eq!(req.method, "GET");
    }

    #[test]
    fn rfc_parse_accepts_case_fudged_host() {
        // Section 5: "HOst", "HoST", "HOST" must all reach the RFC server.
        for fudge in ["HOst", "HoST", "HoSt", "HOST", "host"] {
            let bytes = RequestBuilder::get("/")
                .raw_line(&format!("{fudge}: blocked.example.in"))
                .build();
            let (req, _) = HttpRequest::parse(&bytes, RequestParseMode::Rfc).unwrap();
            assert_eq!(req.host(), Some("blocked.example.in"), "fudge {fudge}");
        }
    }

    #[test]
    fn rfc_parse_trims_extra_whitespace_in_value() {
        // Section 5: "Host:  blocked.com" and "Host:blocked.com  " variants.
        for line in [
            "Host:  blocked.example.in",
            "Host:\tblocked.example.in",
            "Host: blocked.example.in  ",
            "Host:blocked.example.in",
            "Host:   blocked.example.in\t",
        ] {
            let bytes = RequestBuilder::get("/").raw_line(line).build();
            let (req, _) = HttpRequest::parse(&bytes, RequestParseMode::Rfc).unwrap();
            assert_eq!(req.host(), Some("blocked.example.in"), "line {line:?}");
        }
    }

    #[test]
    fn strict_parse_rejects_whitespace_fudging() {
        let bytes = RequestBuilder::get("/").raw_line("Host:  two.spaces").build();
        assert!(HttpRequest::parse(&bytes, RequestParseMode::Strict).is_err());
        let bytes = RequestBuilder::get("/").raw_line("Host: trailing ").build();
        assert!(HttpRequest::parse(&bytes, RequestParseMode::Strict).is_err());
    }

    #[test]
    fn first_host_wins_for_rfc_semantics() {
        let bytes = RequestBuilder::get("/")
            .header("Host", "first.example")
            .header("Host", "second.example")
            .build();
        let (req, _) = HttpRequest::parse(&bytes, RequestParseMode::Rfc).unwrap();
        assert_eq!(req.host(), Some("first.example"));
    }

    #[test]
    fn pipelined_framing_returns_consumed_length() {
        // The covert-IM evasion: server must treat the first \r\n\r\n as the
        // end of the request and the trailing "Host:" line as a *separate*
        // (malformed) message.
        let mut bytes = RequestBuilder::get("/").header("Host", "blocked.example.in").build();
        let tail = b"Host: allowed.example.com\r\n\r\n";
        bytes.extend_from_slice(tail);
        let (req, used) = HttpRequest::parse(&bytes, RequestParseMode::Rfc).unwrap();
        assert_eq!(req.host(), Some("blocked.example.in"));
        assert_eq!(&bytes[used..], tail);
        // The leftover does not parse as a valid request (no request line).
        assert!(HttpRequest::parse(&bytes[used..], RequestParseMode::Rfc).is_err());
    }

    #[test]
    fn incomplete_head_reports_no_blank_line() {
        let partial = b"GET / HTTP/1.1\r\nHost: x";
        assert_eq!(
            HttpRequest::parse(partial, RequestParseMode::Rfc),
            Err(ParseError::BadHttp { reason: "no blank line" })
        );
    }

    #[test]
    fn response_roundtrip_and_title() {
        let body = b"<html><head><title>Blocked Site</title></head><body>hi</body></html>".to_vec();
        let resp = HttpResponse::new(200, "OK", body).with_header("Server", "nginx");
        let wire = resp.emit();
        let parsed = HttpResponse::parse(&wire).unwrap();
        assert_eq!(parsed.status, 200);
        assert_eq!(parsed.title().as_deref(), Some("Blocked Site"));
        assert_eq!(parsed.header("server"), Some("nginx"));
        assert!(parsed.header_names().contains(&"content-length".to_string()));
    }

    #[test]
    fn response_without_title_returns_none() {
        let resp = HttpResponse::new(200, "OK", b"<html><body>iframe only</body></html>".to_vec());
        assert_eq!(resp.title(), None);
    }

    #[test]
    fn content_length_clips_body() {
        let mut wire = HttpResponse::new(200, "OK", b"12345".to_vec()).emit();
        wire.extend_from_slice(b"garbage-after-body");
        let parsed = HttpResponse::parse(&wire).unwrap();
        assert_eq!(parsed.body, b"12345");
    }

    #[test]
    fn malformed_responses_rejected() {
        assert!(HttpResponse::parse(b"not http\r\n\r\n").is_err());
        assert!(HttpResponse::parse(b"HTTP/1.1 abc OK\r\n\r\n").is_err());
        assert!(HttpResponse::parse(b"HTTP/1.1 200 OK\r\nbadheader\r\n\r\n").is_err());
    }

    #[test]
    fn http2_version_token_is_carried() {
        let bytes = RequestBuilder::get("/").version("HTTP/2.0").header("Host", "x.com").build();
        let (req, _) = HttpRequest::parse(&bytes, RequestParseMode::Rfc).unwrap();
        assert_eq!(req.version, "HTTP/2.0");
    }

    #[test]
    fn header_lookup_is_case_insensitive() {
        let bytes = RequestBuilder::get("/")
            .header("User-Agent", "x")
            .header("Host", "h.example")
            .build();
        let (req, _) = HttpRequest::parse(&bytes, RequestParseMode::Rfc).unwrap();
        assert_eq!(req.header("user-agent"), Some("x"));
        assert_eq!(req.header("USER-AGENT"), Some("x"));
        assert_eq!(req.header("absent"), None);
    }
}
